//===- verify/DataflowChecks.cpp - Dataflow-family checks -----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/DataflowChecks.h"

#include "verify/ArchiveChecks.h"
#include "verify/Checks.h"

#include <algorithm>
#include <iterator>
#include <string>

using namespace twpp;
using namespace twpp::verify;

namespace {

void checkBlockList(const std::vector<BlockId> &Blocks, const Function &F,
                    const std::string &Loc, const char *SetName,
                    DiagnosticEngine &Engine) {
  BlockId Prev = 0;
  for (BlockId Block : Blocks) {
    if (Block < 1 || Block > F.blockCount())
      Engine.report(checks::DataflowFactBlocks, Severity::Error,
                    std::string(SetName) + " set names block " +
                        std::to_string(Block) + " but " + F.Name +
                        " has blocks 1.." + std::to_string(F.blockCount()),
                    Loc);
    if (Block <= Prev)
      Engine.report(checks::DataflowFactBlocks, Severity::Error,
                    std::string(SetName) +
                        " set not sorted strictly ascending at block " +
                        std::to_string(Block),
                    Loc);
    Prev = Block;
  }
}

} // namespace

void verify::runFactSpecChecks(const BlockFactSpec &Spec, const Function &F,
                               const std::string &FactName,
                               DiagnosticEngine &Engine) {
  const std::string Loc = F.Name + " / " + FactName;
  checkBlockList(Spec.GenBlocks, F, Loc, "GEN", Engine);
  checkBlockList(Spec.KillBlocks, F, Loc, "KILL", Engine);
  std::vector<BlockId> Both;
  std::set_intersection(Spec.GenBlocks.begin(), Spec.GenBlocks.end(),
                        Spec.KillBlocks.begin(), Spec.KillBlocks.end(),
                        std::back_inserter(Both));
  for (BlockId Block : Both)
    Engine.report(checks::DataflowFactBlocks, Severity::Error,
                  "block " + std::to_string(Block) +
                      " appears in both GEN and KILL (specs resolve the "
                      "overlap before emitting block sets)",
                  Loc);
}

void verify::runAnnotatedCfgChecks(const AnnotatedDynamicCfg &Cfg,
                                   const std::string &Loc,
                                   DiagnosticEngine &Engine) {
  const size_t N = Cfg.Nodes.size();
  uint64_t Total = 0;
  BlockId PrevHead = 0;
  bool Sound = true;
  for (size_t I = 0; I < N; ++I) {
    const AnnotatedNode &Node = Cfg.Nodes[I];
    std::string NodeLoc = Loc + " / node " + std::to_string(I);
    if (I > 0 && Node.Head <= PrevHead) {
      Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                    "nodes not sorted strictly by DBB head", NodeLoc);
      Sound = false;
    }
    PrevHead = Node.Head;
    if (Node.StaticBlocks.empty() || Node.StaticBlocks.front() != Node.Head) {
      Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                    "static block list does not start with the DBB head",
                    NodeLoc);
      Sound = false;
    }
    runTimestampSetChecks(Node.Times, NodeLoc, Engine);
    Total += Node.Times.count();
    for (uint32_t Pred : Node.Preds)
      if (Pred >= N) {
        Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                      "predecessor index " + std::to_string(Pred) +
                          " out of range",
                      NodeLoc);
        Sound = false;
      } else if (std::find(Cfg.Nodes[Pred].Succs.begin(),
                           Cfg.Nodes[Pred].Succs.end(),
                           static_cast<uint32_t>(I)) ==
                 Cfg.Nodes[Pred].Succs.end()) {
        Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                      "edge from node " + std::to_string(Pred) +
                          " recorded as predecessor but missing from its "
                          "successor list",
                      NodeLoc);
        Sound = false;
      }
    for (uint32_t Succ : Node.Succs)
      if (Succ >= N) {
        Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                      "successor index " + std::to_string(Succ) +
                          " out of range",
                      NodeLoc);
        Sound = false;
      } else if (std::find(Cfg.Nodes[Succ].Preds.begin(),
                           Cfg.Nodes[Succ].Preds.end(),
                           static_cast<uint32_t>(I)) ==
                 Cfg.Nodes[Succ].Preds.end()) {
        Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                      "edge to node " + std::to_string(Succ) +
                          " recorded as successor but missing from its "
                          "predecessor list",
                      NodeLoc);
        Sound = false;
      }
  }
  if (Total != Cfg.Length) {
    Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                  "node annotations hold " + std::to_string(Total) +
                      " timestamps but the graph declares length " +
                      std::to_string(Cfg.Length),
                  Loc);
    return;
  }
  if (!Sound)
    return;
  // Counts match; verify the node annotations tile 1..Length exactly by
  // checking disjointness pairwise via intersection of run-compressed
  // sets (cheap: dynamic CFGs have few distinct DBBs).
  for (size_t A = 0; A < N; ++A)
    for (size_t B = A + 1; B < N; ++B) {
      TimestampSet Overlap = Cfg.Nodes[A].Times.intersect(Cfg.Nodes[B].Times);
      if (!Overlap.empty())
        Engine.report(checks::DataflowAnnotationPartition, Severity::Error,
                      "nodes " + std::to_string(A) + " and " +
                          std::to_string(B) +
                          " both claim timestamp " +
                          std::to_string(Overlap.min()),
                      Loc);
    }
}

void verify::runAnnotationSourceChecks(const AnnotatedDynamicCfg &Cfg,
                                       const TwppTrace &Trace,
                                       const DbbDictionary &Dictionary,
                                       const std::string &Loc,
                                       DiagnosticEngine &Engine) {
  if (!Engine.checkEnabled(checks::DataflowAnnotationSubset))
    return;
  if (Cfg.Length != Trace.Length)
    Engine.report(checks::DataflowAnnotationSubset, Severity::Error,
                  "annotated CFG declares length " +
                      std::to_string(Cfg.Length) +
                      " but the owning trace has " +
                      std::to_string(Trace.Length),
                  Loc);
  for (size_t I = 0; I < Cfg.Nodes.size(); ++I) {
    const AnnotatedNode &Node = Cfg.Nodes[I];
    std::string NodeLoc = Loc + " / node " + std::to_string(I);
    const TimestampSet *Source = Trace.timestampsOf(Node.Head);
    if (!Source) {
      Engine.report(checks::DataflowAnnotationSubset, Severity::Error,
                    "DBB head " + std::to_string(Node.Head) +
                        " does not appear in the owning trace",
                    NodeLoc);
      continue;
    }
    if (!(Node.Times == *Source))
      Engine.report(checks::DataflowAnnotationSubset, Severity::Error,
                    "node annotation is not the owning trace's timestamp "
                    "set for block " +
                        std::to_string(Node.Head) +
                        " (annotation holds " +
                        std::to_string(Node.Times.count()) +
                        " timestamps, trace holds " +
                        std::to_string(Source->count()) + ")",
                    NodeLoc);
    const std::vector<BlockId> *Chain = Dictionary.findChain(Node.Head);
    const std::vector<BlockId> Expected =
        Chain ? *Chain : std::vector<BlockId>{Node.Head};
    if (Node.StaticBlocks != Expected)
      Engine.report(checks::DataflowAnnotationSubset, Severity::Error,
                    "node's static block list does not match the "
                    "dictionary chain for head " +
                        std::to_string(Node.Head),
                    NodeLoc);
  }
  // Every trace block must be represented in the CFG.
  for (const auto &[Block, Set] : Trace.Blocks)
    if (Cfg.nodeIndexOf(Block) == AnnotatedDynamicCfg::npos)
      Engine.report(checks::DataflowAnnotationSubset, Severity::Error,
                    "trace block " + std::to_string(Block) +
                        " has no node in the annotated CFG",
                    Loc);
}
