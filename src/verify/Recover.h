//===- verify/Recover.h - Torn-archive salvage ------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Salvage of damaged TWPP archives — the library behind twpp_recover.
/// The archive's index layout makes partial recovery natural: every
/// function block is an independent extent, so salvage walks the index,
/// keeps each block that decodes and passes the per-table verifier
/// checks, splices dropped functions out of the dynamic call graph
/// (hoisting their surviving callees onto the nearest kept ancestor at
/// the dropped call's anchor), and rewrites a fresh archive from what
/// remains. The rewritten archive is re-verified end to end before it is
/// reported as salvaged: the contract is "verifier-clean output or a
/// named diagnostic", never a best guess and never a crash — allocation
/// failures (real or injected) surface as twpp-recover-alloc.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_RECOVER_H
#define TWPP_VERIFY_RECOVER_H

#include "verify/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace twpp::recover {

/// What salvage found, kept and lost. Diagnostics use the
/// twpp-recover-* check ids (verify/Checks.h): warnings for dropped
/// data, errors for damage that defeats salvage.
struct SalvageReport {
  uint64_t InputBytes = 0;
  uint64_t OutputBytes = 0;
  /// Function count claimed by the header, clamped to what the file can
  /// physically hold.
  uint32_t FunctionsTotal = 0;
  uint32_t FunctionsKept = 0;
  /// Ids of dropped functions, capped at DroppedFunctionIdCap entries
  /// (FunctionsDropped has the full count).
  std::vector<uint32_t> DroppedFunctions;
  uint32_t FunctionsDropped = 0;
  /// Calls recorded by dropped functions' index rows (best effort — a
  /// corrupt row's count is not trusted).
  uint64_t CallsLost = 0;
  bool DcgRecovered = false;
  /// True when a verifier-clean archive was produced.
  bool Salvaged = false;
  std::vector<verify::Diagnostic> Diagnostics;

  static constexpr size_t DroppedFunctionIdCap = 64;

  /// True when any error-severity diagnostic was filed.
  bool fatal() const;
};

/// Salvages a verifier-clean archive from possibly-damaged \p Bytes into
/// \p Out. Never throws: allocation failures are caught and reported.
/// \returns Report.Salvaged.
bool salvageArchive(const std::vector<uint8_t> &Bytes,
                    std::vector<uint8_t> &Out, SalvageReport &Report);

/// File-level wrapper: reads \p InputPath, salvages, and writes the
/// result atomically to \p OutputPath. IO failures land in the report as
/// twpp-recover-input / twpp-recover-output errors.
bool salvageArchiveFile(const std::string &InputPath,
                        const std::string &OutputPath,
                        SalvageReport &Report);

/// Human-readable report (diagnostic lines plus a summary).
std::string renderSalvageReportText(const SalvageReport &Report);

/// {"schema": "twpp-recover-v1", ...} machine form for CI artifacts.
std::string renderSalvageReportJson(const SalvageReport &Report);

} // namespace twpp::recover

#endif // TWPP_VERIFY_RECOVER_H
