//===- verify/Checks.cpp - Check catalog ----------------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/Checks.h"

using namespace twpp;
using namespace twpp::verify;

const std::vector<CheckInfo> &verify::checkCatalog() {
  static const std::vector<CheckInfo> Catalog = {
      // Archive family.
      {checks::ArchiveHeader, "archive", Severity::Error,
       "archive magic/version valid and header, index and DCG extents fit "
       "the file"},
      {checks::ArchiveIndexBounds, "archive", Severity::Error,
       "index rows reference in-bounds, non-overlapping function blocks "
       "outside the header/index/DCG regions"},
      {checks::ArchiveIndexOrder, "archive", Severity::Warning,
       "function blocks laid out in call-count-descending order (the "
       "paper's most-frequent-first access layout)"},
      {checks::ArchiveBlockDecode, "archive", Severity::Error,
       "every function block decodes and its index call count matches the "
       "decoded table"},
      {checks::ArchiveDcgDecode, "archive", Severity::Error,
       "the DCG extent LZW-decompresses and decodes as a call graph"},
      {checks::ArchiveSeriesOrder, "archive", Severity::Error,
       "timestamp series entries strictly increasing with valid strides "
       "(Lo <= Hi, Step >= 1, (Hi-Lo) % Step == 0, positive timestamps)"},
      {checks::ArchiveSeriesSignEncoding, "archive", Severity::Error,
       "sign-delimited series encoding round-trips and runs are packed "
       "canonically (maximal greedy runs)"},
      {checks::ArchiveTracePartition, "archive", Severity::Error,
       "per trace string, the block timestamp sets form an exact partition "
       "of 1..Length"},
      {checks::ArchiveDedupIntegrity, "archive", Severity::Error,
       "unique-trace table referential integrity: (string, dictionary) "
       "indices in range, use counts positive and summing to the call "
       "count, no duplicate pairs"},
      {checks::ArchivePoolDedup, "archive", Severity::Warning,
       "trace-string and dictionary pools hold no byte-identical "
       "duplicates and no unreferenced entries"},
      {checks::DbbChainStructure, "archive", Severity::Error,
       "DBB dictionaries well-formed: chains of length >= 2, sorted by "
       "head, heads unique, chain bodies disjoint from other chains "
       "(acyclic one-level expansion)"},
      {checks::DbbChainMaximality, "archive", Severity::Warning,
       "every (trace, dictionary) pair re-compacts to itself: chains are "
       "maximal and every occurrence was collapsed"},
      {checks::DcgConsistency, "archive", Severity::Error,
       "DCG is a forest with forward child edges, in-range functions and "
       "trace indices, and non-decreasing anchors bounded by the parent "
       "trace length"},
      {checks::DcgCallCounts, "archive", Severity::Error,
       "per-function DCG node counts equal the function tables' call "
       "counts"},

      // Recover family.
      {checks::RecoverInput, "recover", Severity::Error,
       "the damaged file is recognizably a TWPP archive (magic, version, "
       "minimum header) and its header fields are usable"},
      {checks::RecoverIndexRow, "recover", Severity::Warning,
       "an index row was unreadable or referenced bytes past the end of "
       "the file; that function was dropped from the salvage"},
      {checks::RecoverBlock, "recover", Severity::Warning,
       "a function block failed to decode or verify (or disagreed with "
       "the call graph); that function was dropped from the salvage"},
      {checks::RecoverDcg, "recover", Severity::Error,
       "the dynamic call graph could not be recovered and surviving "
       "function tables still record calls"},
      {checks::RecoverAlloc, "recover", Severity::Error,
       "an allocation failed while rebuilding the archive"},
      {checks::RecoverVerify, "recover", Severity::Error,
       "the rewritten archive still fails verification (damage the "
       "salvage strategies cannot isolate)"},
      {checks::RecoverOutput, "recover", Severity::Error,
       "the salvaged archive could not be written"},

      // IR family.
      {checks::IrEmptyFunction, "ir", Severity::Error,
       "every function has at least one basic block (block 1 is the "
       "entry)"},
      {checks::IrEdgeTarget, "ir", Severity::Error,
       "every terminator successor names an existing block (no edges to "
       "missing blocks)"},
      {checks::IrTerminator, "ir", Severity::Error,
       "terminators well-formed: branch conditions and return values "
       "reference in-range expressions"},
      {checks::IrExprCycle, "ir", Severity::Error,
       "expression pools are acyclic and operand indices are in range"},
      {checks::IrCallTarget, "ir", Severity::Error,
       "call statements target existing functions"},
      {checks::IrUnreachableBlock, "ir", Severity::Warning,
       "every block is reachable from the function entry"},
      {checks::IrDefBeforeUse, "ir", Severity::Warning,
       "no variable is read on a path before any definition (params count "
       "as defined)"},

      // Mem family.
      {checks::MemReconcile, "mem", Severity::Error,
       "decoding the archive under the allocation tracker attributes the "
       "same bytes the obs::deepSize audit finds in the decoded structures "
       "(within the documented 1% + 1 KiB tolerance)"},
      {checks::MemNegativeLive, "mem", Severity::Error,
       "no tracker account holds negative live bytes (alloc/free "
       "instrumentation is balanced)"},
      {checks::MemFootprintModel, "mem", Severity::Warning,
       "the decoded in-memory footprint is at least the paper-model "
       "serialized estimate (wpp/Sizes) — smaller would mean the model or "
       "the audit drifted"},

      // Dataflow family.
      {checks::DataflowFactBlocks, "dataflow", Severity::Error,
       "GEN/KILL sets reference real IR blocks of the owning function, "
       "sorted and duplicate-free"},
      {checks::DataflowAnnotationPartition, "dataflow", Severity::Error,
       "annotated-CFG node timestamps partition 1..Length and edges are "
       "in-range and symmetric"},
      {checks::DataflowAnnotationSubset, "dataflow", Severity::Error,
       "annotated-CFG node timestamps equal the owning trace's set for "
       "that block"},

      // Thread family (version-2 thread-aware archives).
      {checks::ArchiveSection, "archive", Severity::Error,
       "version-2 section trailer well-formed: known tags only, no "
       "duplicates, extents inside the file, thread table present, every "
       "section decodes"},
      {checks::ThreadPartition, "thread", Severity::Error,
       "thread table dense (thread i has id i), the merged body holds "
       "threads x functionCount tables, and per thread the use-counted "
       "trace lengths sum to the recorded block count (timestamps cover "
       "1..N per thread)"},
      {checks::ThreadSyncEdges, "thread", Severity::Error,
       "happens-before edges reference valid (thread, timestamp) pairs: "
       "threads in range, times within each thread's block count, fork "
       "edges targeting time 0, known edge kinds"},
      {checks::ThreadAccessBounds, "thread", Severity::Error,
       "access tables sorted by strictly ascending address with non-empty "
       "read/write sets whose timestamps lie within the owning thread's "
       "1..N block clock"},

      // Race family.
      {checks::RaceClockMonotone, "race", Severity::Error,
       "vector clocks derived from the edge list are monotone along each "
       "thread's program order and never claim knowledge of the thread's "
       "own future"},
  };
  return Catalog;
}

const CheckInfo *verify::findCheck(std::string_view Id) {
  for (const CheckInfo &Info : checkCatalog())
    if (Id == Info.Id)
      return &Info;
  return nullptr;
}
