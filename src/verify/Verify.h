//===- verify/Verify.h - TWPP invariant verifier entry points ---*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella entry points for the verifier: run a whole archive file, and
/// install the TWPP_VERIFY post-stage assertions into the compaction
/// pipeline. The three check families live in ArchiveChecks.h,
/// IrChecks.h and DataflowChecks.h; docs/VERIFY.md is the catalog.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_VERIFY_H
#define TWPP_VERIFY_VERIFY_H

#include "verify/ArchiveChecks.h"
#include "verify/Checks.h"
#include "verify/DataflowChecks.h"
#include "verify/Diagnostics.h"
#include "verify/IrChecks.h"
#include "verify/MemoryChecks.h"

#include <string>

namespace twpp::verify {

/// Reads \p Path and runs the full archive family over it. \returns false
/// only when the file cannot be read at all (an IO error, not a
/// diagnostic); malformed bytes produce diagnostics and return true.
bool verifyArchiveFile(const std::string &Path, DiagnosticEngine &Engine);

/// Installs the archive-family checks as TWPP_VERIFY post-stage
/// assertions: with the environment variable set, compactWpp, the
/// streaming compactor and encodeArchive re-verify their output under an
/// obs "verify" phase span, record verify.* counters, print any
/// diagnostics to stderr and abort the process on an error-severity
/// finding. Without TWPP_VERIFY the hooks never fire. Idempotent.
void installPipelineVerifier();

} // namespace twpp::verify

#endif // TWPP_VERIFY_VERIFY_H
