//===- verify/Verify.cpp - TWPP invariant verifier entry points -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "support/FileIO.h"
#include "wpp/Twpp.h"
#include "wpp/VerifyHooks.h"

#include <cstdio>
#include <cstdlib>

using namespace twpp;
using namespace twpp::verify;

bool verify::verifyArchiveFile(const std::string &Path,
                               DiagnosticEngine &Engine) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return false;
  runArchiveBytesChecks(Bytes, Engine);
  return true;
}

namespace {

/// Glob for the pipeline assertions: TWPP_VERIFY_CHECKS when set, else
/// every check (the archive family is all the pipeline hooks can reach).
const char *hookGlob() {
  const char *Env = std::getenv("TWPP_VERIFY_CHECKS");
  return Env && Env[0] != '\0' ? Env : "*";
}

void recordAndEnforce(const DiagnosticEngine &Engine, const char *Stage) {
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    M.counter(obs::names::VerifyRuns).add();
    M.counter(obs::names::VerifyDiagnostics)
        .add(Engine.diagnostics().size());
    M.counter(obs::names::VerifyErrors).add(Engine.count(Severity::Error));
    M.counter(obs::names::VerifyWarnings)
        .add(Engine.count(Severity::Warning));
  }
  if (Engine.empty())
    return;
  std::string Text = renderDiagnosticsText(Engine);
  std::fprintf(stderr, "twpp verify (%s stage):\n%s", Stage, Text.c_str());
  if (!Engine.clean()) {
    std::fprintf(stderr,
                 "twpp verify: aborting on error-severity diagnostics "
                 "(TWPP_VERIFY is set)\n");
    std::abort();
  }
}

void verifyWppHook(const TwppWpp &Wpp, const char *Stage) {
  obs::PhaseSpan Span("verify");
  DiagnosticEngine Engine(hookGlob());
  runWppChecks(Wpp, Engine);
  recordAndEnforce(Engine, Stage);
}

void verifyArchiveBytesHook(const std::vector<uint8_t> &Bytes,
                            const char *Stage) {
  obs::PhaseSpan Span("verify");
  DiagnosticEngine Engine(hookGlob());
  runArchiveBytesChecks(Bytes, Engine);
  recordAndEnforce(Engine, Stage);
}

} // namespace

void verify::installPipelineVerifier() {
  VerifyHooks &Hooks = verifyHooks();
  Hooks.VerifyWpp = verifyWppHook;
  Hooks.VerifyArchiveBytes = verifyArchiveBytesHook;
}
