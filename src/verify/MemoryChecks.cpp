//===- verify/MemoryChecks.cpp - Memory observability audits --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/MemoryChecks.h"

#include "obs/Memory.h"
#include "verify/Checks.h"
#include "wpp/Archive.h"
#include "wpp/DeepSize.h"
#include "wpp/Sizes.h"

#include <string>

using namespace twpp;
using namespace twpp::verify;

namespace {

uint64_t paperModelBytes(const TwppWpp &Wpp) {
  uint64_t Bytes = 0;
  for (const TwppFunctionTable &Table : Wpp.Functions) {
    for (const TwppTrace &Trace : Table.TraceStrings)
      Bytes += twppTraceBytes(Trace);
    for (const DbbDictionary &Dict : Table.Dictionaries)
      Bytes += dictionaryBytes(Dict);
  }
  return Bytes;
}

std::string bytesStr(uint64_t Bytes) {
  return std::to_string(Bytes) + " bytes";
}

} // namespace

bool verify::auditArchiveMemory(const std::string &Path, MemoryAudit &Audit,
                                TwppWpp *Wpp, IoMode Mode) {
  Audit = MemoryAudit();
  TwppWpp Local;
  TwppWpp &Out = Wpp ? *Wpp : Local;

  ArchiveReader Reader;
  if (!Reader.open(Path, Mode))
    return false;

  // Decode with tracking force-enabled, capturing the instrumented
  // decoders' records into a private account (the decode entry points
  // nest IfUnscoped, so nothing leaks into the global archive.decode
  // tag). The flag is process-global: audits are not safe to run
  // concurrently with other instrumented work, which holds for the
  // single-threaded verifier and test flows that use them.
  bool WasEnabled = obs::memTrackingEnabled();
  obs::setMemTrackingEnabled(true);
  bool Decoded;
  obs::MemAccount Capture;
  {
    obs::MemScope Scope(Capture);
    Decoded = Reader.readAll(Out);
  }
  obs::setMemTrackingEnabled(WasEnabled);
  if (!Decoded)
    return false;

  int64_t Live = Capture.liveBytes();
  Audit.TrackedBytes = Live > 0 ? static_cast<uint64_t>(Live) : 0;
  Audit.DeepBytes = obs::deepSize(Out);
  Audit.ModelBytes = paperModelBytes(Out);
  Audit.Decoded = true;
  return true;
}

void verify::runMemoryChecks(const std::string &Path,
                             DiagnosticEngine &Engine) {
  // Unbalanced instrumentation shows up as negative live bytes in the
  // process-global registry, independent of any archive.
  if (Engine.checkEnabled(checks::MemNegativeLive))
    for (const obs::MemTracker::Snapshot &S : obs::memTracker().snapshot())
      if (S.LiveBytes < 0)
        Engine.report(checks::MemNegativeLive, Severity::Error,
                      "tag '" + S.Tag + "' holds " +
                          std::to_string(S.LiveBytes) +
                          " live bytes (frees outran allocs: " +
                          std::to_string(S.Frees) + " frees vs " +
                          std::to_string(S.Allocs) + " allocs)",
                      "mem tracker");

  bool WantReconcile = Engine.checkEnabled(checks::MemReconcile);
  bool WantModel = Engine.checkEnabled(checks::MemFootprintModel);
  if (!WantReconcile && !WantModel)
    return;

  if (!obs::memTrackingCompiled()) {
    // Built with TWPP_NO_MEM_TRACKING: nothing records, so there is
    // nothing to reconcile. A note keeps the skip visible without
    // failing the build's verification runs.
    Engine.report(checks::MemReconcile, Severity::Note,
                  "allocation tracking compiled out "
                  "(TWPP_NO_MEM_TRACKING); reconcile audit skipped",
                  Path);
    return;
  }

  MemoryAudit Audit;
  if (!auditArchiveMemory(Path, Audit))
    return; // the archive byte checks already diagnosed it

  if (WantReconcile) {
    uint64_t Delta = Audit.TrackedBytes > Audit.DeepBytes
                         ? Audit.TrackedBytes - Audit.DeepBytes
                         : Audit.DeepBytes - Audit.TrackedBytes;
    if (Delta > memReconcileToleranceBytes(Audit.DeepBytes))
      Engine.report(checks::MemReconcile, Severity::Error,
                    "tracker attributed " + bytesStr(Audit.TrackedBytes) +
                        " during decode but the deep-size audit finds " +
                        bytesStr(Audit.DeepBytes) + " (delta " +
                        bytesStr(Delta) + " exceeds the 1% + 1 KiB "
                        "tolerance); an instrumented decoder and "
                        "obs::deepSize disagree",
                    Path);
  }

  if (WantModel && Audit.DeepBytes < Audit.ModelBytes)
    Engine.report(checks::MemFootprintModel, Severity::Warning,
                  "decoded in-memory footprint " + bytesStr(Audit.DeepBytes) +
                      " is below the paper-model serialized estimate " +
                      bytesStr(Audit.ModelBytes) +
                      "; the wpp/Sizes model or the deep-size audit drifted",
                  Path);
}
