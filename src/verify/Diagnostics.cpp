//===- verify/Diagnostics.cpp - Static-check diagnostics ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/Diagnostics.h"

#include "obs/Json.h"

using namespace twpp;
using namespace twpp::verify;

bool verify::checkIdMatchesGlob(std::string_view Id, std::string_view Glob) {
  // Iterative wildcard match with single-star backtracking: globs here
  // are short ("twpp-archive-*"), so this is plenty.
  size_t I = 0, G = 0;
  size_t StarG = std::string_view::npos, StarI = 0;
  while (I < Id.size()) {
    if (G < Glob.size() && (Glob[G] == Id[I] || Glob[G] == '?')) {
      ++I;
      ++G;
    } else if (G < Glob.size() && Glob[G] == '*') {
      StarG = G++;
      StarI = I;
    } else if (StarG != std::string_view::npos) {
      G = StarG + 1;
      I = ++StarI;
    } else {
      return false;
    }
  }
  while (G < Glob.size() && Glob[G] == '*')
    ++G;
  return G == Glob.size();
}

std::string verify::renderDiagnosticsText(const DiagnosticEngine &Engine) {
  std::string Out;
  for (const Diagnostic &D : Engine.diagnostics()) {
    Out += severityName(D.Sev);
    Out += ": [";
    Out += D.CheckId;
    Out += "] ";
    if (!D.Location.empty()) {
      Out += D.Location;
      Out += ": ";
    }
    Out += D.Message;
    if (D.ByteOffset != NoByteOffset) {
      Out += " (byte ";
      Out += std::to_string(D.ByteOffset);
      Out += ")";
    }
    Out += "\n";
  }
  Out += std::to_string(Engine.count(Severity::Error)) + " error(s), " +
         std::to_string(Engine.count(Severity::Warning)) + " warning(s), " +
         std::to_string(Engine.count(Severity::Note)) + " note(s)\n";
  return Out;
}

std::string verify::renderDiagnosticsJson(const DiagnosticEngine &Engine) {
  std::string Out = "{\n  \"schema\": \"twpp-verify-v1\",\n  \"summary\": {";
  Out += "\"errors\": " + std::to_string(Engine.count(Severity::Error));
  Out += ", \"warnings\": " + std::to_string(Engine.count(Severity::Warning));
  Out += ", \"notes\": " + std::to_string(Engine.count(Severity::Note));
  Out += "},\n  \"diagnostics\": [";
  bool First = true;
  for (const Diagnostic &D : Engine.diagnostics()) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"check\": " + obs::jsonStringLiteral(D.CheckId);
    Out += ", \"severity\": ";
    Out += obs::jsonStringLiteral(severityName(D.Sev));
    Out += ", \"location\": " + obs::jsonStringLiteral(D.Location);
    Out += ", \"message\": " + obs::jsonStringLiteral(D.Message);
    if (D.ByteOffset != NoByteOffset)
      Out += ", \"byteOffset\": " + std::to_string(D.ByteOffset);
    Out += "}";
  }
  Out += First ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}
