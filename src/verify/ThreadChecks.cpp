//===- verify/ThreadChecks.cpp - Thread/race invariant checks -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/ThreadChecks.h"

#include "races/HappensBefore.h"
#include "verify/Checks.h"

#include <string>

using namespace twpp;
using namespace twpp::verify;

namespace {

/// Uncompacted length of unique trace \p T (timestamp count times chain
/// length per block) — the thread partition check's unit of account.
uint64_t expandedTraceLength(const TwppFunctionTable &Table, uint32_t T) {
  auto [StringIdx, DictIdx] = Table.Traces[T];
  if (StringIdx >= Table.TraceStrings.size() ||
      DictIdx >= Table.Dictionaries.size())
    return 0;
  const TwppTrace &Trace = Table.TraceStrings[StringIdx];
  const DbbDictionary &Dict = Table.Dictionaries[DictIdx];
  uint64_t Length = 0;
  for (const auto &[Block, Set] : Trace.Blocks) {
    const std::vector<BlockId> *Chain = Dict.findChain(Block);
    Length += Set.count() * (Chain ? Chain->size() : 1);
  }
  return Length;
}

void checkThreadPartition(const ConcurrencyInfo &Conc, const TwppWpp *Body,
                          DiagnosticEngine &Engine) {
  for (size_t T = 0; T != Conc.Threads.size(); ++T)
    if (Conc.Threads[T].Id != T)
      Engine.report(checks::ThreadPartition, Severity::Error,
                    "thread table row " + std::to_string(T) +
                        " carries id " + std::to_string(Conc.Threads[T].Id) +
                        " (ids must be dense)",
                    "thread table");
  if (!Body)
    return;
  uint64_t Expected =
      static_cast<uint64_t>(Conc.Threads.size()) * Conc.FunctionCount;
  if (Body->Functions.size() != Expected) {
    Engine.report(checks::ThreadPartition, Severity::Error,
                  "merged body holds " +
                      std::to_string(Body->Functions.size()) +
                      " function tables but the thread table implies " +
                      std::to_string(Expected),
                  "thread table");
    return;
  }
  // Per thread, the use-counted uncompacted trace lengths must sum to
  // the recorded block count: the thread's per-function timestamp sets
  // then cover its 1..N block clock exactly (each function's 1..Length
  // partition is checked by the archive family already).
  for (size_t T = 0; T != Conc.Threads.size(); ++T) {
    uint64_t Total = 0;
    for (uint32_t F = 0; F != Conc.FunctionCount; ++F) {
      const TwppFunctionTable &Table =
          Body->Functions[T * Conc.FunctionCount + F];
      for (uint32_t I = 0; I != Table.Traces.size(); ++I)
        Total += Table.UseCounts[I] * expandedTraceLength(Table, I);
    }
    if (Total != Conc.Threads[T].BlockCount)
      Engine.report(checks::ThreadPartition, Severity::Error,
                    "thread " + std::to_string(T) + " records " +
                        std::to_string(Conc.Threads[T].BlockCount) +
                        " block events but its traces account for " +
                        std::to_string(Total),
                    "thread " + std::to_string(T));
  }
}

void checkSyncEdges(const ConcurrencyInfo &Conc, DiagnosticEngine &Engine) {
  for (size_t I = 0; I != Conc.Edges.size(); ++I) {
    const HbEdge &E = Conc.Edges[I];
    std::string Loc = "edge " + std::to_string(I);
    if (E.FromThread >= Conc.Threads.size() ||
        E.ToThread >= Conc.Threads.size()) {
      Engine.report(checks::ThreadSyncEdges, Severity::Error,
                    "edge references thread " +
                        std::to_string(std::max(E.FromThread, E.ToThread)) +
                        " but the table holds " +
                        std::to_string(Conc.Threads.size()) + " threads",
                    Loc);
      continue;
    }
    if (E.FromTime > Conc.Threads[E.FromThread].BlockCount)
      Engine.report(checks::ThreadSyncEdges, Severity::Error,
                    "source time " + std::to_string(E.FromTime) +
                        " exceeds thread " + std::to_string(E.FromThread) +
                        "'s block count " +
                        std::to_string(Conc.Threads[E.FromThread].BlockCount),
                    Loc);
    if (E.ToTime > Conc.Threads[E.ToThread].BlockCount)
      Engine.report(checks::ThreadSyncEdges, Severity::Error,
                    "target time " + std::to_string(E.ToTime) +
                        " exceeds thread " + std::to_string(E.ToThread) +
                        "'s block count " +
                        std::to_string(Conc.Threads[E.ToThread].BlockCount),
                    Loc);
    if (E.EdgeKind == HbEdge::Kind::Fork && E.ToTime != 0)
      Engine.report(checks::ThreadSyncEdges, Severity::Error,
                    "fork edge must target time 0 (before the child's "
                    "first event), not " +
                        std::to_string(E.ToTime),
                    Loc);
    if (E.FromThread == E.ToThread)
      Engine.report(checks::ThreadSyncEdges, Severity::Error,
                    "self edge (program order needs no edges)", Loc);
  }
}

void checkAccessBounds(const ConcurrencyInfo &Conc,
                       DiagnosticEngine &Engine) {
  if (Conc.Accesses.size() != Conc.Threads.size()) {
    Engine.report(checks::ThreadAccessBounds, Severity::Error,
                  "access tables for " +
                      std::to_string(Conc.Accesses.size()) +
                      " threads but the table holds " +
                      std::to_string(Conc.Threads.size()),
                  "access tables");
    return;
  }
  for (size_t T = 0; T != Conc.Accesses.size(); ++T) {
    uint64_t N = Conc.Threads[T].BlockCount;
    const std::vector<AddressAccess> &Accs = Conc.Accesses[T].Accesses;
    for (size_t I = 0; I != Accs.size(); ++I) {
      const AddressAccess &Acc = Accs[I];
      std::string Loc =
          "thread " + std::to_string(T) + " address " + std::to_string(I);
      if (I > 0 && Acc.Addr <= Accs[I - 1].Addr)
        Engine.report(checks::ThreadAccessBounds, Severity::Error,
                      "addresses not strictly ascending", Loc);
      if (Acc.Reads.empty() && Acc.Writes.empty())
        Engine.report(checks::ThreadAccessBounds, Severity::Error,
                      "entry with neither reads nor writes", Loc);
      for (const TimestampSet *Set : {&Acc.Reads, &Acc.Writes})
        if (!Set->empty() && Set->max() > N)
          Engine.report(checks::ThreadAccessBounds, Severity::Error,
                        "access timestamp " + std::to_string(Set->max()) +
                            " exceeds the thread's block count " +
                            std::to_string(N),
                        Loc);
    }
  }
}

void checkClockMonotone(const ConcurrencyInfo &Conc,
                        DiagnosticEngine &Engine) {
  races::HappensBefore Hb = races::buildHappensBefore(Conc);
  for (uint32_t I : Hb.OutOfOrderEdges)
    Engine.report(checks::RaceClockMonotone, Severity::Error,
                  "edge " + std::to_string(I) +
                      " targets a time before an already-applied edge "
                      "(clocks would run backwards)",
                  "edge " + std::to_string(I));
  for (size_t T = 0; T != Hb.Threads.size(); ++T) {
    const std::vector<races::ClockCheckpoint> &Cps =
        Hb.Threads[T].Checkpoints;
    for (size_t I = 0; I != Cps.size(); ++I) {
      std::string Loc = "thread " + std::to_string(T) + " checkpoint " +
                        std::to_string(I);
      if (I > 0 && !Cps[I - 1].Clock.dominatedBy(Cps[I].Clock))
        Engine.report(checks::RaceClockMonotone, Severity::Error,
                      "clock not monotone along program order", Loc);
      if (Cps[I].Clock[T] > Cps[I].Time)
        Engine.report(checks::RaceClockMonotone, Severity::Error,
                      "checkpoint at time " + std::to_string(Cps[I].Time) +
                          " claims knowledge of the thread's own future (" +
                          std::to_string(Cps[I].Clock[T]) + ")",
                      Loc);
    }
  }
}

} // namespace

void verify::runConcurrencyChecks(const ConcurrencyInfo &Conc,
                                  const TwppWpp *Body,
                                  DiagnosticEngine &Engine) {
  checkThreadPartition(Conc, Body, Engine);
  checkSyncEdges(Conc, Engine);
  checkAccessBounds(Conc, Engine);
  checkClockMonotone(Conc, Engine);
}
