//===- verify/ArchiveChecks.h - Archive-family invariant checks -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The archive family: structural invariants of the compacted TWPP, both
/// in-memory (TwppWpp) and on disk (raw archive bytes). These are the
/// FORMATS.md invariants as executable checks — sign-encoded series
/// order, exact trace partitions, DBB dictionary shape and maximality,
/// dedup-table referential integrity, index layout, and DCG/call-count
/// consistency. Everything runs without reconstructing the raw WPP: the
/// most expensive check (chain maximality) touches each *unique* trace
/// once, which is exactly the economy the paper's representation buys.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_ARCHIVECHECKS_H
#define TWPP_VERIFY_ARCHIVECHECKS_H

#include "verify/Diagnostics.h"
#include "wpp/Twpp.h"

#include <cstdint>
#include <vector>

namespace twpp::verify {

/// Runs every in-memory archive-family check over \p Wpp.
void runWppChecks(const TwppWpp &Wpp, DiagnosticEngine &Engine);

/// Runs the raw-byte checks (header, index bounds and layout, block and
/// DCG decodability) over complete archive \p Bytes; when the archive
/// decodes, chains into runWppChecks on the decoded form.
void runArchiveBytesChecks(const std::vector<uint8_t> &Bytes,
                           DiagnosticEngine &Engine);

/// Checks one function table in isolation (location strings are prefixed
/// "function <F>"). Exposed for targeted tests and the pipeline hook.
void runFunctionTableChecks(const TwppFunctionTable &Table, uint32_t F,
                            DiagnosticEngine &Engine);

/// Checks one timestamp set (series order, strides, sign encoding).
void runTimestampSetChecks(const TimestampSet &Set, const std::string &Loc,
                           DiagnosticEngine &Engine);

} // namespace twpp::verify

#endif // TWPP_VERIFY_ARCHIVECHECKS_H
