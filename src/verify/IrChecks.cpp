//===- verify/IrChecks.cpp - IR/CFG-family invariant checks ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/IrChecks.h"

#include "verify/Checks.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

using namespace twpp;
using namespace twpp::verify;

namespace {

std::string blockLoc(const Function &F, BlockId Block) {
  return F.Name + " / block " + std::to_string(Block);
}

std::string stmtLoc(const Function &F, BlockId Block, size_t Stmt) {
  return blockLoc(F, Block) + " / stmt " + std::to_string(Stmt);
}

bool isUnary(ExprKind Kind) {
  return Kind == ExprKind::Not || Kind == ExprKind::Neg;
}

bool isLeaf(ExprKind Kind) {
  return Kind == ExprKind::Const || Kind == ExprKind::Var;
}

//===----------------------------------------------------------------------===//
// Expression pool: operand indices in range, no cycles.
//===----------------------------------------------------------------------===//

/// Colors for the iterative DFS over the expression "pool graph".
enum class Color : uint8_t { White, Grey, Black };

/// \returns true when the pool is sound (in-range, acyclic); blocks and
/// terminators only validate their root indices once this holds.
bool checkExprPool(const Function &F, DiagnosticEngine &Engine) {
  const std::string Loc = F.Name + " / expression pool";
  bool Ok = true;
  const uint32_t N = static_cast<uint32_t>(F.Exprs.size());
  for (uint32_t I = 0; I < N; ++I) {
    const Expr &E = F.Exprs[I];
    if (isLeaf(E.Kind))
      continue;
    if (E.Lhs >= N || (!isUnary(E.Kind) && E.Rhs >= N)) {
      Engine.report(checks::IrExprCycle, Severity::Error,
                    "expression " + std::to_string(I) +
                        " references an operand outside the pool of " +
                        std::to_string(N),
                    Loc);
      Ok = false;
    }
  }
  if (!Ok)
    return false;
  std::vector<Color> Colors(N, Color::White);
  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Colors[Root] != Color::White)
      continue;
    // Iterative DFS; a grey node reached again closes a cycle.
    std::vector<std::pair<uint32_t, uint8_t>> Stack = {{Root, 0}};
    while (!Stack.empty()) {
      auto &[Node, Edge] = Stack.back();
      const Expr &E = F.Exprs[Node];
      Colors[Node] = Color::Grey;
      const uint8_t Arity = isLeaf(E.Kind) ? 0 : (isUnary(E.Kind) ? 1 : 2);
      if (Edge >= Arity) {
        Colors[Node] = Color::Black;
        Stack.pop_back();
        continue;
      }
      uint32_t Child = Edge == 0 ? E.Lhs : E.Rhs;
      ++Edge;
      if (Colors[Child] == Color::Grey) {
        Engine.report(checks::IrExprCycle, Severity::Error,
                      "expression " + std::to_string(Child) +
                          " participates in a reference cycle",
                      Loc);
        return false;
      }
      if (Colors[Child] == Color::White)
        Stack.push_back({Child, 0});
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Blocks: statement operands, call targets, terminators, edges.
//===----------------------------------------------------------------------===//

void checkBlocks(const Function &F, const Module &M, bool ExprsOk,
                 DiagnosticEngine &Engine) {
  const uint32_t ExprCount = static_cast<uint32_t>(F.Exprs.size());
  auto ExprInRange = [&](uint32_t Index) {
    return ExprsOk && Index < ExprCount;
  };
  for (BlockId B = 1; B <= F.blockCount(); ++B) {
    const BasicBlock &Block = F.block(B);
    for (size_t S = 0; S < Block.Stmts.size(); ++S) {
      const Stmt &St = Block.Stmts[S];
      switch (St.StmtKind) {
      case Stmt::Kind::Assign:
      case Stmt::Kind::Print:
        if (!ExprInRange(St.ExprIndex))
          Engine.report(checks::IrExprCycle, Severity::Error,
                        "statement operand references expression " +
                            std::to_string(St.ExprIndex) +
                            " outside the pool",
                        stmtLoc(F, B, S));
        break;
      case Stmt::Kind::Read:
        break;
      case Stmt::Kind::Call:
        if (St.Callee >= M.Functions.size())
          Engine.report(checks::IrCallTarget, Severity::Error,
                        "call targets function " +
                            std::to_string(St.Callee) +
                            " but the module holds " +
                            std::to_string(M.Functions.size()),
                        stmtLoc(F, B, S));
        for (uint32_t Arg : St.Args)
          if (!ExprInRange(Arg))
            Engine.report(checks::IrExprCycle, Severity::Error,
                          "call argument references expression " +
                              std::to_string(Arg) + " outside the pool",
                          stmtLoc(F, B, S));
        break;
      }
    }
    switch (Block.Term) {
    case BasicBlock::Terminator::Jump:
      if (Block.TrueSucc < 1 || Block.TrueSucc > F.blockCount())
        Engine.report(checks::IrEdgeTarget, Severity::Error,
                      "jump targets missing block " +
                          std::to_string(Block.TrueSucc),
                      blockLoc(F, B));
      break;
    case BasicBlock::Terminator::Branch:
      if (!ExprInRange(Block.CondExpr))
        Engine.report(checks::IrTerminator, Severity::Error,
                      "branch condition references expression " +
                          std::to_string(Block.CondExpr) +
                          " outside the pool",
                      blockLoc(F, B));
      for (BlockId Succ : {Block.TrueSucc, Block.FalseSucc})
        if (Succ < 1 || Succ > F.blockCount())
          Engine.report(checks::IrEdgeTarget, Severity::Error,
                        "branch targets missing block " +
                            std::to_string(Succ),
                        blockLoc(F, B));
      break;
    case BasicBlock::Terminator::Return:
      if (Block.HasRetValue && !ExprInRange(Block.RetExpr))
        Engine.report(checks::IrTerminator, Severity::Error,
                      "return value references expression " +
                          std::to_string(Block.RetExpr) +
                          " outside the pool",
                      blockLoc(F, B));
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Reachability + def-before-use (forward must-defined dataflow).
//===----------------------------------------------------------------------===//

/// \returns the reachable-block mask (1-based indexing; index 0 unused).
std::vector<bool> checkReachability(const Function &F,
                                    DiagnosticEngine &Engine) {
  std::vector<bool> Reached(F.blockCount() + 1, false);
  std::vector<BlockId> Work = {1};
  Reached[1] = true;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId Succ : F.block(B).successors())
      if (Succ >= 1 && Succ <= F.blockCount() && !Reached[Succ]) {
        Reached[Succ] = true;
        Work.push_back(Succ);
      }
  }
  if (Engine.checkEnabled(checks::IrUnreachableBlock))
    for (BlockId B = 1; B <= F.blockCount(); ++B)
      if (!Reached[B])
        Engine.report(checks::IrUnreachableBlock, Severity::Warning,
                      "block is unreachable from the function entry",
                      blockLoc(F, B));
  return Reached;
}

/// Forward must-defined analysis: a variable is surely defined at a point
/// iff it is defined on *every* path from the entry. Reads of variables
/// that are not surely defined get a warning (the interpreter defaults
/// them to 0, so this is lint, not an execution error).
void checkDefBeforeUse(const Function &F, const Module &M,
                       const std::vector<bool> &Reached,
                       DiagnosticEngine &Engine) {
  if (!Engine.checkEnabled(checks::IrDefBeforeUse))
    return;
  const uint32_t N = F.blockCount();
  if (N == 0)
    return;
  // Out-of-pool roots were already reported by checkBlocks as errors;
  // skip them here so stmtUses/collectExprUses never walk out of range.
  const uint32_t ExprCount = static_cast<uint32_t>(F.Exprs.size());
  auto StmtRootsOk = [&](const Stmt &St) {
    switch (St.StmtKind) {
    case Stmt::Kind::Assign:
    case Stmt::Kind::Print:
      return St.ExprIndex < ExprCount;
    case Stmt::Kind::Read:
      return true;
    case Stmt::Kind::Call:
      return std::all_of(St.Args.begin(), St.Args.end(),
                         [&](uint32_t Arg) { return Arg < ExprCount; });
    }
    return false;
  };

  // Per-block GEN (variables the block itself defines) — statement-level
  // precision is handled in the final reporting pass.
  std::vector<std::vector<VarId>> Gen(N + 1);
  for (BlockId B = 1; B <= N; ++B)
    for (const Stmt &St : F.block(B).Stmts)
      if (St.Target != NoVar)
        Gen[B].push_back(St.Target);

  std::vector<std::vector<BlockId>> Preds(N + 1);
  for (BlockId B = 1; B <= N; ++B)
    for (BlockId Succ : F.block(B).successors())
      if (Succ >= 1 && Succ <= N)
        Preds[Succ].push_back(B);

  // IN/OUT as sorted VarId vectors; Top (everything) is represented by
  // {AllDefined} until first lowered. Params are defined at entry.
  std::vector<VarId> EntryIn(F.Params.begin(), F.Params.end());
  std::sort(EntryIn.begin(), EntryIn.end());
  EntryIn.erase(std::unique(EntryIn.begin(), EntryIn.end()), EntryIn.end());

  auto Union = [](std::vector<VarId> A, const std::vector<VarId> &B) {
    std::vector<VarId> Out;
    std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                   std::back_inserter(Out));
    return Out;
  };
  auto Intersect = [](const std::vector<VarId> &A,
                      const std::vector<VarId> &B) {
    std::vector<VarId> Out;
    std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                          std::back_inserter(Out));
    return Out;
  };

  std::vector<std::vector<VarId>> In(N + 1), Out(N + 1);
  std::vector<bool> OutValid(N + 1, false);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B = 1; B <= N; ++B) {
      if (!Reached[B])
        continue;
      std::vector<VarId> NewIn;
      if (B == 1) {
        NewIn = EntryIn;
      } else {
        bool First = true;
        for (BlockId P : Preds[B]) {
          if (!Reached[P] || !OutValid[P])
            continue;
          NewIn = First ? Out[P] : Intersect(NewIn, Out[P]);
          First = false;
        }
        if (First)
          continue; // no computed predecessor yet
      }
      std::vector<VarId> SortedGen = Gen[B];
      std::sort(SortedGen.begin(), SortedGen.end());
      SortedGen.erase(std::unique(SortedGen.begin(), SortedGen.end()),
                      SortedGen.end());
      std::vector<VarId> NewOut = Union(NewIn, SortedGen);
      if (!OutValid[B] || NewIn != In[B] || NewOut != Out[B]) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        OutValid[B] = true;
        Changed = true;
      }
    }
  }

  // Report: walk each reachable block, tracking defs statement by
  // statement on top of the block's IN set.
  for (BlockId B = 1; B <= N; ++B) {
    if (!Reached[B] || !OutValid[B])
      continue;
    std::vector<VarId> Defined = In[B];
    auto IsDefined = [&Defined](VarId V) {
      return std::binary_search(Defined.begin(), Defined.end(), V);
    };
    auto Define = [&Defined](VarId V) {
      auto It = std::lower_bound(Defined.begin(), Defined.end(), V);
      if (It == Defined.end() || *It != V)
        Defined.insert(It, V);
    };
    const BasicBlock &Block = F.block(B);
    for (size_t S = 0; S < Block.Stmts.size(); ++S) {
      const Stmt &St = Block.Stmts[S];
      if (StmtRootsOk(St))
        for (VarId Use : stmtUses(F, St))
          if (!IsDefined(Use))
            Engine.report(checks::IrDefBeforeUse, Severity::Warning,
                          "variable '" + M.varName(Use) +
                              "' may be read before any definition",
                          stmtLoc(F, B, S));
      if (St.Target != NoVar)
        Define(St.Target);
    }
    std::vector<VarId> TermUses;
    if (Block.Term == BasicBlock::Terminator::Branch &&
        Block.CondExpr < ExprCount)
      collectExprUses(F, Block.CondExpr, TermUses);
    else if (Block.Term == BasicBlock::Terminator::Return &&
             Block.HasRetValue && Block.RetExpr < ExprCount)
      collectExprUses(F, Block.RetExpr, TermUses);
    for (VarId Use : TermUses)
      if (!IsDefined(Use))
        Engine.report(checks::IrDefBeforeUse, Severity::Warning,
                      "variable '" + M.varName(Use) +
                          "' may be read before any definition in the "
                          "terminator",
                      blockLoc(F, B));
  }
}

} // namespace

void verify::runFunctionChecks(const Function &F, const Module &M,
                               DiagnosticEngine &Engine) {
  if (F.Blocks.empty()) {
    Engine.report(checks::IrEmptyFunction, Severity::Error,
                  "function has no basic blocks (block 1 is the entry)",
                  F.Name);
    return;
  }
  bool ExprsOk = checkExprPool(F, Engine);
  checkBlocks(F, M, ExprsOk, Engine);
  std::vector<bool> Reached = checkReachability(F, Engine);
  if (ExprsOk)
    checkDefBeforeUse(F, M, Reached, Engine);
}

void verify::runModuleChecks(const Module &M, DiagnosticEngine &Engine) {
  for (const Function &F : M.Functions)
    runFunctionChecks(F, M, Engine);
  if (M.MainId >= M.Functions.size())
    Engine.report(checks::IrCallTarget, Severity::Error,
                  "module entry point " + std::to_string(M.MainId) +
                      " names a missing function",
                  "module");
}
