//===- verify/DataflowChecks.h - Dataflow-family checks ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow family: checks over the inputs the profile-limited
/// analyses consume — GEN/KILL fact specs derived from the IR, and
/// timestamp-annotated dynamic CFGs built from TWPP traces. These close
/// the loop between the archive and IR families: the annotation checks
/// assert that an AnnotatedDynamicCfg is a faithful view of its owning
/// trace, and the fact checks assert that block sets name real IR blocks.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_DATAFLOWCHECKS_H
#define TWPP_VERIFY_DATAFLOWCHECKS_H

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/IrFacts.h"
#include "ir/Ir.h"
#include "verify/Diagnostics.h"

namespace twpp::verify {

/// Checks that \p Spec's GEN/KILL block sets are sorted, duplicate-free,
/// disjoint views of real blocks of \p F. \p FactName labels locations.
void runFactSpecChecks(const BlockFactSpec &Spec, const Function &F,
                       const std::string &FactName, DiagnosticEngine &Engine);

/// Checks \p Cfg's internal shape (timestamp partition of 1..Length,
/// in-range and symmetric edges, nodes sorted by head).
void runAnnotatedCfgChecks(const AnnotatedDynamicCfg &Cfg,
                           const std::string &Loc, DiagnosticEngine &Engine);

/// Checks \p Cfg against the trace it was built from: every node's
/// timestamp set must equal the owning trace's set for that DBB head.
void runAnnotationSourceChecks(const AnnotatedDynamicCfg &Cfg,
                               const TwppTrace &Trace,
                               const DbbDictionary &Dictionary,
                               const std::string &Loc,
                               DiagnosticEngine &Engine);

} // namespace twpp::verify

#endif // TWPP_VERIFY_DATAFLOWCHECKS_H
