//===- verify/Diagnostics.h - Static-check diagnostics ----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic vocabulary of the TWPP invariant verifier: a clang-tidy
/// style (check-id, severity, message, location) record plus the engine
/// that collects them. Every check in verify/ reports through a
/// DiagnosticEngine; the engine owns the check-id filter (the CLI's
/// --checks=<glob>) and the severity tally the exit-code contract keys
/// off.
///
/// This header is deliberately dependency-free and header-only up to the
/// emitters: lower layers (wpp/Archive.cpp's decode-error reporting) embed
/// a Diagnostic without linking twpp_verify. Only the text/JSON renderers
/// live in Diagnostics.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_DIAGNOSTICS_H
#define TWPP_VERIFY_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace twpp::verify {

/// Severity ladder; Error is what flips the exit code.
enum class Severity : uint8_t { Note, Warning, Error };

inline const char *severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

/// Sentinel for "no byte offset": the diagnostic is about a decoded
/// structure, not a file position.
inline constexpr uint64_t NoByteOffset = ~uint64_t(0);

/// One finding. CheckId is stable ("twpp-archive-series-order") so CI
/// globs and docs/VERIFY.md can reference it forever; Location is a
/// human path into the structure ("function 3 / string 2 / block 7" or a
/// section name for raw-byte findings).
struct Diagnostic {
  std::string CheckId;
  Severity Sev = Severity::Error;
  std::string Message;
  std::string Location;
  uint64_t ByteOffset = NoByteOffset;
};

/// True when \p Id matches \p Glob ('*' matches any run, '?' one char —
/// enough for the --checks=twpp-archive-* CI filters).
bool checkIdMatchesGlob(std::string_view Id, std::string_view Glob);

/// Collects diagnostics, applying the check-id filter and keeping the
/// per-severity tally.
class DiagnosticEngine {
public:
  /// \p Glob filters by check id; "*" (the default) admits everything.
  explicit DiagnosticEngine(std::string Glob = "*") : Glob(std::move(Glob)) {}

  /// True when \p CheckId passes the filter — checks query this before
  /// doing expensive work.
  bool checkEnabled(std::string_view CheckId) const {
    return checkIdMatchesGlob(CheckId, Glob);
  }

  /// Files \p D unless its check id is filtered out.
  void report(Diagnostic D) {
    if (!checkEnabled(D.CheckId))
      return;
    Counts[static_cast<size_t>(D.Sev)]++;
    Diags.push_back(std::move(D));
  }

  /// Convenience for the common call shape.
  void report(std::string_view CheckId, Severity Sev, std::string Message,
              std::string Location = "",
              uint64_t ByteOffset = NoByteOffset) {
    report(Diagnostic{std::string(CheckId), Sev, std::move(Message),
                      std::move(Location), ByteOffset});
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  size_t count(Severity S) const { return Counts[static_cast<size_t>(S)]; }
  size_t errorCount() const { return count(Severity::Error); }
  bool empty() const { return Diags.empty(); }

  /// True when nothing at error severity was filed — the CLI's exit-0
  /// condition.
  bool clean() const { return errorCount() == 0; }

  const std::string &glob() const { return Glob; }

private:
  std::string Glob;
  std::vector<Diagnostic> Diags;
  size_t Counts[3] = {0, 0, 0};
};

/// Renders every diagnostic as "<severity>: [<check-id>] <location>:
/// <message>" lines plus a summary line, the CLI's text output.
std::string renderDiagnosticsText(const DiagnosticEngine &Engine);

/// Renders {"schema":"twpp-verify-v1", "summary":{...},
/// "diagnostics":[...]} reusing obs/Json.h escaping.
std::string renderDiagnosticsJson(const DiagnosticEngine &Engine);

} // namespace twpp::verify

#endif // TWPP_VERIFY_DIAGNOSTICS_H
