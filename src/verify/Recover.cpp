//===- verify/Recover.cpp - Torn-archive salvage --------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/Recover.h"

#include "obs/Json.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "support/LZW.h"
#include "verify/ArchiveChecks.h"
#include "verify/Checks.h"
#include "wpp/Archive.h"

#include <algorithm>
#include <new>

using namespace twpp;
using namespace twpp::recover;
using namespace twpp::verify;

namespace {

// The fixed layout (wpp/Archive.h). Salvage parses the header by hand
// because ArchiveReader rejects at the first inconsistency, while salvage
// must keep going past one.
constexpr uint32_t ArchiveMagic = 0x54575050;
constexpr uint32_t ArchiveVersion = 1;
constexpr size_t PrefixSize = 12;
constexpr size_t DcgFieldsSize = 16;
constexpr size_t IndexRowSize = 24;
constexpr size_t HeaderSize = PrefixSize + DcgFieldsSize;

uint32_t le32At(const std::vector<uint8_t> &Bytes, size_t Pos) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Bytes[Pos + I]) << (8 * I);
  return V;
}

uint64_t le64At(const std::vector<uint8_t> &Bytes, size_t Pos) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
  return V;
}

/// Mirror of the verifier's anchor bound (verify/ArchiveChecks.cpp
/// checkDcg): the uncompacted length behind unique trace \p T.
uint64_t expandedTraceLength(const TwppFunctionTable &Table, uint32_t T) {
  auto [StringIdx, DictIdx] = Table.Traces[T];
  if (StringIdx >= Table.TraceStrings.size() ||
      DictIdx >= Table.Dictionaries.size())
    return 0;
  const TwppTrace &Trace = Table.TraceStrings[StringIdx];
  const DbbDictionary &Dict = Table.Dictionaries[DictIdx];
  uint64_t Length = 0;
  for (const auto &[Block, Set] : Trace.Blocks) {
    const std::vector<BlockId> *Chain = Dict.findChain(Block);
    Length += Set.count() * (Chain ? Chain->size() : 1);
  }
  return Length;
}

/// Removes every node whose function is dropped (or out of range),
/// hoisting each removed node's surviving descendants onto its nearest
/// kept ancestor at the anchor where the removed call sat. Subtrees are
/// temporally nested, so descendants always carry larger indices than
/// their ancestors — processing in reverse index order has every child's
/// replacement ready before its parent needs it, and the monotone index
/// remap preserves the forward-edge invariant.
DynamicCallGraph spliceDcg(const DynamicCallGraph &Dcg,
                           const std::vector<bool> &DropFn,
                           size_t FunctionCount) {
  const size_t N = Dcg.Nodes.size();
  auto Dropped = [&](const DcgNode &Node) {
    return Node.Function >= FunctionCount || DropFn[Node.Function];
  };
  std::vector<std::vector<uint32_t>> Replacement(N);
  std::vector<bool> Keep(N, false);
  for (size_t I = N; I-- > 0;) {
    const DcgNode &Node = Dcg.Nodes[I];
    Keep[I] = !Dropped(Node);
    if (Keep[I])
      continue;
    std::vector<uint32_t> Hoisted;
    for (uint32_t Child : Node.Children) {
      // Backward or out-of-range edges are corrupt; dropping them may
      // orphan a subtree, which the final re-verification then reports.
      if (Child >= N || Child <= I)
        continue;
      if (Keep[Child])
        Hoisted.push_back(Child);
      else
        Hoisted.insert(Hoisted.end(), Replacement[Child].begin(),
                       Replacement[Child].end());
    }
    Replacement[I] = std::move(Hoisted);
  }

  std::vector<uint32_t> NewIndex(N, 0);
  uint32_t Next = 0;
  for (size_t I = 0; I < N; ++I)
    if (Keep[I])
      NewIndex[I] = Next++;

  DynamicCallGraph Out;
  Out.Nodes.reserve(Next);
  for (size_t I = 0; I < N; ++I) {
    if (!Keep[I])
      continue;
    const DcgNode &Node = Dcg.Nodes[I];
    DcgNode New{Node.Function, Node.TraceIndex, {}, {}};
    for (size_t C = 0; C < Node.Children.size(); ++C) {
      uint32_t Child = Node.Children[C];
      if (Child >= N || Child <= I)
        continue;
      uint32_t Anchor = C < Node.Anchors.size() ? Node.Anchors[C] : 0;
      if (Keep[Child]) {
        New.Children.push_back(NewIndex[Child]);
        New.Anchors.push_back(Anchor);
      } else {
        for (uint32_t R : Replacement[Child]) {
          New.Children.push_back(NewIndex[R]);
          New.Anchors.push_back(Anchor);
        }
      }
    }
    Out.Nodes.push_back(std::move(New));
  }
  for (uint32_t Root : Dcg.Roots) {
    if (Root >= N)
      continue;
    if (Keep[Root])
      Out.Roots.push_back(NewIndex[Root]);
    else
      for (uint32_t R : Replacement[Root])
        Out.Roots.push_back(NewIndex[R]);
  }
  return Out;
}

/// Files a diagnostic into the report.
void note(SalvageReport &Report, const char *CheckId, Severity Sev,
          std::string Message, std::string Location = "",
          uint64_t ByteOffset = NoByteOffset) {
  Report.Diagnostics.push_back(Diagnostic{
      CheckId, Sev, std::move(Message), std::move(Location), ByteOffset});
}

/// Records function \p F as dropped (capping the id list) and notes why.
void dropFunction(SalvageReport &Report, std::vector<bool> &DropFn,
                  uint32_t F, const char *CheckId, std::string Message,
                  uint64_t ByteOffset = NoByteOffset) {
  if (DropFn[F])
    return;
  DropFn[F] = true;
  ++Report.FunctionsDropped;
  if (Report.DroppedFunctions.size() < SalvageReport::DroppedFunctionIdCap)
    Report.DroppedFunctions.push_back(F);
  note(Report, CheckId, Severity::Warning, std::move(Message),
       "function " + std::to_string(F), ByteOffset);
}

bool salvageImpl(const std::vector<uint8_t> &Bytes, std::vector<uint8_t> &Out,
                 SalvageReport &Report) {
  Report.InputBytes = Bytes.size();
  if (Bytes.size() < HeaderSize) {
    note(Report, checks::RecoverInput, Severity::Error,
         "file holds " + std::to_string(Bytes.size()) +
             " bytes, smaller than the fixed header (" +
             std::to_string(HeaderSize) + ")",
         "header", 0);
    return false;
  }
  if (le32At(Bytes, 0) != ArchiveMagic) {
    note(Report, checks::RecoverInput, Severity::Error,
         "bad magic (not a TWPP archive)", "header", 0);
    return false;
  }
  if (le32At(Bytes, 4) != ArchiveVersion) {
    note(Report, checks::RecoverInput, Severity::Error,
         "unsupported archive version", "header", 4);
    return false;
  }

  uint32_t ClaimedCount = le32At(Bytes, 8);
  uint64_t MaxRows = (Bytes.size() - HeaderSize) / IndexRowSize;
  uint32_t Count = ClaimedCount;
  if (ClaimedCount > MaxRows) {
    // A corrupt count must not drive the allocation below; rows beyond
    // what the file physically holds are unreadable anyway.
    Count = static_cast<uint32_t>(MaxRows);
    note(Report, checks::RecoverIndexRow, Severity::Warning,
         "header claims " + std::to_string(ClaimedCount) +
             " functions but the file can hold at most " +
             std::to_string(MaxRows) + " index rows; functions " +
             std::to_string(Count) + ".." + std::to_string(ClaimedCount - 1) +
             " are lost",
         "header", 8);
  }
  Report.FunctionsTotal = Count;

  // The DCG: recover it if its extent is intact and decodes.
  uint64_t DcgOffset = le64At(Bytes, PrefixSize);
  uint64_t DcgLength = le64At(Bytes, PrefixSize + 8);
  DynamicCallGraph Dcg;
  if (DcgOffset > Bytes.size() || DcgLength > Bytes.size() - DcgOffset) {
    note(Report, checks::RecoverDcg, Severity::Warning,
         "DCG extent (offset " + std::to_string(DcgOffset) + ", length " +
             std::to_string(DcgLength) + ") runs past end of file",
         "dcg", PrefixSize);
  } else {
    std::vector<uint8_t> Compressed(Bytes.begin() + DcgOffset,
                                    Bytes.begin() + DcgOffset + DcgLength);
    std::vector<uint8_t> Serialized;
    if (!lzwDecompress(Compressed, Serialized))
      note(Report, checks::RecoverDcg, Severity::Warning,
           "DCG bytes do not LZW-decompress", "dcg", DcgOffset);
    else if (!decodeDcg(Serialized, Dcg))
      note(Report, checks::RecoverDcg, Severity::Warning,
           "decompressed DCG does not decode as a call graph", "dcg",
           DcgOffset);
    else
      Report.DcgRecovered = true;
  }

  // Walk the index; keep every block that decodes and verifies on its
  // own. Each block is an independent extent, so one torn block costs
  // exactly one function.
  std::vector<TwppFunctionTable> Tables(Count);
  std::vector<bool> DropFn(Count, false);
  std::vector<uint64_t> IndexCalls(Count, 0);
  for (uint32_t F = 0; F < Count; ++F) {
    fault::maybeFailAlloc();
    size_t Row = HeaderSize + static_cast<size_t>(F) * IndexRowSize;
    uint64_t Offset = le64At(Bytes, Row);
    uint64_t Length = le64At(Bytes, Row + 8);
    IndexCalls[F] = le64At(Bytes, Row + 16);
    if (Offset > Bytes.size() || Length > Bytes.size() - Offset) {
      dropFunction(Report, DropFn, F, checks::RecoverIndexRow,
                   "block extent (offset " + std::to_string(Offset) +
                       ", length " + std::to_string(Length) +
                       ") runs past end of file",
                   Row);
      continue;
    }
    std::vector<uint8_t> Block(Bytes.begin() + Offset,
                               Bytes.begin() + Offset + Length);
    if (!decodeTwppFunctionTable(Block, Tables[F])) {
      dropFunction(Report, DropFn, F, checks::RecoverBlock,
                   "function block does not decode", Offset);
      Tables[F] = TwppFunctionTable();
      continue;
    }
    DiagnosticEngine TableEngine;
    runFunctionTableChecks(Tables[F], F, TableEngine);
    if (!TableEngine.clean()) {
      dropFunction(Report, DropFn, F, checks::RecoverBlock,
                   "function block decodes but fails verification (" +
                       TableEngine.diagnostics().front().Message + ")",
                   Offset);
      Tables[F] = TwppFunctionTable();
    }
  }

  // Cross-check surviving tables against the DCG; a disagreement means
  // one of the two is damaged in a way the independent checks missed, so
  // the function is dropped too. Each check depends only on the function
  // itself (splicing other functions out never changes this function's
  // node set), so one pass reaches the fixpoint.
  if (Report.DcgRecovered) {
    std::vector<uint64_t> NodeCounts(Count, 0);
    bool UnknownCallee = false;
    for (const DcgNode &Node : Dcg.Nodes) {
      if (Node.Function < Count)
        ++NodeCounts[Node.Function];
      else
        UnknownCallee = true;
    }
    if (UnknownCallee)
      note(Report, checks::RecoverBlock, Severity::Warning,
           "DCG records calls to functions beyond the recovered index; "
           "those calls are spliced out",
           "dcg");
    for (const DcgNode &Node : Dcg.Nodes) {
      if (Node.Function >= Count || DropFn[Node.Function])
        continue;
      uint32_t F = Node.Function;
      const TwppFunctionTable &Table = Tables[F];
      if (Node.TraceIndex >= Table.Traces.size()) {
        dropFunction(Report, DropFn, F, checks::RecoverBlock,
                     "DCG references unique trace " +
                         std::to_string(Node.TraceIndex) +
                         " the recovered block does not hold");
        continue;
      }
      if (Node.Anchors.size() != Node.Children.size()) {
        dropFunction(Report, DropFn, F, checks::RecoverBlock,
                     "DCG node has mismatched child/anchor counts");
        continue;
      }
      uint64_t TraceLength = expandedTraceLength(Table, Node.TraceIndex);
      uint32_t Prev = 0;
      for (uint32_t Anchor : Node.Anchors) {
        if (Anchor < Prev || Anchor > TraceLength) {
          dropFunction(Report, DropFn, F, checks::RecoverBlock,
                       "DCG anchors inconsistent with the recovered "
                       "trace");
          break;
        }
        Prev = Anchor;
      }
    }
    for (uint32_t F = 0; F < Count; ++F)
      if (!DropFn[F] && NodeCounts[F] != Tables[F].CallCount)
        dropFunction(Report, DropFn, F, checks::RecoverBlock,
                     "DCG holds " + std::to_string(NodeCounts[F]) +
                         " calls but the recovered block records " +
                         std::to_string(Tables[F].CallCount));
  }

  for (uint32_t F = 0; F < Count; ++F) {
    if (DropFn[F]) {
      Report.CallsLost += std::max(IndexCalls[F], Tables[F].CallCount);
      Tables[F] = TwppFunctionTable();
    } else {
      ++Report.FunctionsKept;
    }
  }

  if (!Report.DcgRecovered) {
    uint64_t KeptCalls = 0;
    for (uint32_t F = 0; F < Count; ++F)
      KeptCalls += Tables[F].CallCount;
    if (KeptCalls > 0) {
      note(Report, checks::RecoverDcg, Severity::Error,
           "the call graph is unrecoverable and the surviving function "
           "tables still record " +
               std::to_string(KeptCalls) +
               " calls; an archive cannot link them without it",
           "dcg");
      return false;
    }
    // Zero surviving calls: an empty call graph is vacuously consistent.
    Dcg = DynamicCallGraph();
  }

  fault::maybeFailAlloc();
  TwppWpp Salvaged;
  Salvaged.Dcg = spliceDcg(Dcg, DropFn, Count);
  Salvaged.Functions = std::move(Tables);
  Out = encodeArchive(Salvaged);

  // The contract gate: what twpp_recover writes must pass the full
  // byte-level verifier, or salvage reports failure — never a
  // plausible-looking but broken archive.
  DiagnosticEngine Final;
  runArchiveBytesChecks(Out, Final);
  if (!Final.clean()) {
    note(Report, checks::RecoverVerify, Severity::Error,
         "rewritten archive still fails verification (" +
             std::to_string(Final.errorCount()) + " errors; first: " +
             Final.diagnostics().front().Message + ")");
    Out.clear();
    return false;
  }
  Report.OutputBytes = Out.size();
  return true;
}

} // namespace

bool SalvageReport::fatal() const {
  for (const Diagnostic &D : Diagnostics)
    if (D.Sev == Severity::Error)
      return true;
  return false;
}

bool recover::salvageArchive(const std::vector<uint8_t> &Bytes,
                             std::vector<uint8_t> &Out,
                             SalvageReport &Report) {
  Out.clear();
  try {
    Report.Salvaged = salvageImpl(Bytes, Out, Report);
  } catch (const std::bad_alloc &) {
    note(Report, checks::RecoverAlloc, Severity::Error,
         "allocation failed while rebuilding the archive");
    Out.clear();
    Report.Salvaged = false;
  }
  return Report.Salvaged;
}

bool recover::salvageArchiveFile(const std::string &InputPath,
                                 const std::string &OutputPath,
                                 SalvageReport &Report) {
  std::vector<uint8_t> Bytes;
  IoError Read = readFileBytes(InputPath, Bytes);
  if (!Read) {
    note(Report, checks::RecoverInput, Severity::Error,
         "cannot read input: " + Read.message());
    return false;
  }
  std::vector<uint8_t> Out;
  if (!salvageArchive(Bytes, Out, Report))
    return false;
  IoError Write = writeFileBytesAtomic(OutputPath, Out);
  if (!Write) {
    note(Report, checks::RecoverOutput, Severity::Error,
         "cannot write salvaged archive: " + Write.message());
    Report.Salvaged = false;
    return false;
  }
  return true;
}

std::string recover::renderSalvageReportText(const SalvageReport &Report) {
  std::string Text;
  for (const Diagnostic &D : Report.Diagnostics) {
    Text += severityName(D.Sev);
    Text += ": [" + D.CheckId + "]";
    if (!D.Location.empty())
      Text += " " + D.Location + ":";
    Text += " " + D.Message + "\n";
  }
  Text += "input: " + std::to_string(Report.InputBytes) + " bytes, " +
          std::to_string(Report.FunctionsTotal) + " functions\n";
  if (Report.Salvaged) {
    Text += "salvaged: " + std::to_string(Report.FunctionsKept) + "/" +
            std::to_string(Report.FunctionsTotal) + " functions, DCG " +
            (Report.DcgRecovered ? "recovered" : "empty") + ", " +
            std::to_string(Report.OutputBytes) + " bytes written";
    if (Report.CallsLost > 0)
      Text += " (" + std::to_string(Report.CallsLost) + " calls lost)";
    Text += "\n";
  } else {
    Text += "not salvaged\n";
  }
  return Text;
}

std::string recover::renderSalvageReportJson(const SalvageReport &Report) {
  auto Bool = [](bool B) { return B ? "true" : "false"; };
  std::string Json = "{\n  \"schema\": \"twpp-recover-v1\",\n";
  Json += "  \"salvaged\": " + std::string(Bool(Report.Salvaged)) + ",\n";
  Json += "  \"input_bytes\": " + std::to_string(Report.InputBytes) + ",\n";
  Json += "  \"output_bytes\": " + std::to_string(Report.OutputBytes) + ",\n";
  Json +=
      "  \"functions_total\": " + std::to_string(Report.FunctionsTotal) +
      ",\n";
  Json += "  \"functions_kept\": " + std::to_string(Report.FunctionsKept) +
          ",\n";
  Json +=
      "  \"functions_dropped\": " + std::to_string(Report.FunctionsDropped) +
      ",\n";
  Json += "  \"dropped_function_ids\": [";
  for (size_t I = 0; I < Report.DroppedFunctions.size(); ++I)
    Json += (I ? ", " : "") + std::to_string(Report.DroppedFunctions[I]);
  Json += "],\n";
  Json += "  \"calls_lost\": " + std::to_string(Report.CallsLost) + ",\n";
  Json += "  \"dcg_recovered\": " + std::string(Bool(Report.DcgRecovered)) +
          ",\n";
  Json += "  \"diagnostics\": [";
  for (size_t I = 0; I < Report.Diagnostics.size(); ++I) {
    const Diagnostic &D = Report.Diagnostics[I];
    Json += I ? ",\n    " : "\n    ";
    Json += "{\"check\": " + obs::jsonStringLiteral(D.CheckId) +
            ", \"severity\": " +
            obs::jsonStringLiteral(severityName(D.Sev)) +
            ", \"location\": " + obs::jsonStringLiteral(D.Location) +
            ", \"message\": " + obs::jsonStringLiteral(D.Message) + "}";
  }
  Json += Report.Diagnostics.empty() ? "]\n" : "\n  ]\n";
  Json += "}\n";
  return Json;
}
