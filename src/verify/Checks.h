//===- verify/Checks.h - Check catalog ---------------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable catalog of every invariant check the verifier implements:
/// id, family, default severity and a one-line summary. The catalog is
/// the single source of truth behind `twpp_verify --list-checks` and
/// docs/VERIFY.md; check implementations reference these ids via the
/// `checks::` constants so the catalog, the code and the docs cannot
/// drift apart silently (VerifyTest pins them together).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_CHECKS_H
#define TWPP_VERIFY_CHECKS_H

#include "verify/Diagnostics.h"

#include <vector>

namespace twpp::verify {

/// Stable check ids. Never renumber or rename — CI globs, committed
/// baselines and user scripts key off these strings.
namespace checks {

// Archive family: the compacted representation itself (in-memory form
// and raw archive bytes).
inline constexpr const char *ArchiveHeader = "twpp-archive-header";
inline constexpr const char *ArchiveIndexBounds = "twpp-archive-index-bounds";
inline constexpr const char *ArchiveIndexOrder = "twpp-archive-index-order";
inline constexpr const char *ArchiveBlockDecode = "twpp-archive-block-decode";
inline constexpr const char *ArchiveDcgDecode = "twpp-archive-dcg-decode";
inline constexpr const char *ArchiveSeriesOrder = "twpp-archive-series-order";
inline constexpr const char *ArchiveSeriesSignEncoding =
    "twpp-archive-series-sign-encoding";
inline constexpr const char *ArchiveTracePartition =
    "twpp-archive-trace-partition";
inline constexpr const char *ArchiveDedupIntegrity =
    "twpp-archive-dedup-integrity";
inline constexpr const char *ArchivePoolDedup = "twpp-archive-pool-dedup";
inline constexpr const char *DbbChainStructure = "twpp-dbb-chain-structure";
inline constexpr const char *DbbChainMaximality = "twpp-dbb-chain-maximality";
inline constexpr const char *DcgConsistency = "twpp-dcg-consistency";
inline constexpr const char *DcgCallCounts = "twpp-dcg-call-counts";
inline constexpr const char *ArchiveSection = "twpp-archive-section";

// Thread family: the version-2 thread-aware trailer (thread table,
// happens-before edges, access sets) against the merged body.
inline constexpr const char *ThreadPartition = "twpp-thread-partition";
inline constexpr const char *ThreadSyncEdges = "twpp-thread-sync-edges";
inline constexpr const char *ThreadAccessBounds = "twpp-thread-access-bounds";

// Race family: the happens-before engine's structural preconditions.
inline constexpr const char *RaceClockMonotone = "twpp-race-clock-monotone";

// Recover family: diagnostics of the twpp_recover salvage tool
// (verify/Recover.h). Warnings mark data the salvage dropped; errors
// mark damage salvage cannot work around.
inline constexpr const char *RecoverInput = "twpp-recover-input";
inline constexpr const char *RecoverIndexRow = "twpp-recover-index-row";
inline constexpr const char *RecoverBlock = "twpp-recover-block";
inline constexpr const char *RecoverDcg = "twpp-recover-dcg";
inline constexpr const char *RecoverAlloc = "twpp-recover-alloc";
inline constexpr const char *RecoverVerify = "twpp-recover-verify";
inline constexpr const char *RecoverOutput = "twpp-recover-output";

// IR family: lowered mini-language modules (src/ir/, src/lang/Lower).
inline constexpr const char *IrEmptyFunction = "twpp-ir-empty-function";
inline constexpr const char *IrEdgeTarget = "twpp-ir-edge-target";
inline constexpr const char *IrTerminator = "twpp-ir-terminator";
inline constexpr const char *IrExprCycle = "twpp-ir-expr-cycle";
inline constexpr const char *IrCallTarget = "twpp-ir-call-target";
inline constexpr const char *IrUnreachableBlock = "twpp-ir-unreachable-block";
inline constexpr const char *IrDefBeforeUse = "twpp-ir-def-before-use";

// Mem family: memory observability audits (verify/MemoryChecks.h) — the
// obs/Memory.h tracker reconciled against obs::deepSize walks of decoded
// archives and the wpp/Sizes paper model.
inline constexpr const char *MemReconcile = "twpp-mem-reconcile";
inline constexpr const char *MemNegativeLive = "twpp-mem-negative-live";
inline constexpr const char *MemFootprintModel = "twpp-mem-footprint-model";

// Dataflow family: GEN/KILL fact specs and annotated dynamic CFGs.
inline constexpr const char *DataflowFactBlocks = "twpp-dataflow-fact-blocks";
inline constexpr const char *DataflowAnnotationPartition =
    "twpp-dataflow-annotation-partition";
inline constexpr const char *DataflowAnnotationSubset =
    "twpp-dataflow-annotation-subset";

} // namespace checks

/// One catalog row.
struct CheckInfo {
  const char *Id;
  const char *Family; ///< "archive", "recover", "ir", "mem", "dataflow",
                      ///< "thread" or "race".
  Severity DefaultSev;
  const char *Summary;
};

/// Every implemented check, in catalog order (archive, recover, ir, mem,
/// dataflow, thread, race).
const std::vector<CheckInfo> &checkCatalog();

/// Catalog row for \p Id, or nullptr for an unknown id.
const CheckInfo *findCheck(std::string_view Id);

} // namespace twpp::verify

#endif // TWPP_VERIFY_CHECKS_H
