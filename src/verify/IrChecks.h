//===- verify/IrChecks.h - IR/CFG-family invariant checks -------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR family: structural and flow checks over lowered mini-language
/// modules (src/ir/, src/lang/Lower output). Where ir/Ir.h's
/// verifyFunction answers a bare yes/no, these checks name the violated
/// invariant, locate it (function / block / statement) and keep going, so
/// one run reports every problem in a module.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_IRCHECKS_H
#define TWPP_VERIFY_IRCHECKS_H

#include "ir/Ir.h"
#include "verify/Diagnostics.h"

namespace twpp::verify {

/// Runs every IR-family check over one function of \p M.
void runFunctionChecks(const Function &F, const Module &M,
                       DiagnosticEngine &Engine);

/// Runs every IR-family check over every function of \p M.
void runModuleChecks(const Module &M, DiagnosticEngine &Engine);

} // namespace twpp::verify

#endif // TWPP_VERIFY_IRCHECKS_H
