//===- verify/ArchiveChecks.cpp - Archive-family invariant checks ---------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "verify/ArchiveChecks.h"

#include "support/ByteStream.h"
#include "support/LZW.h"
#include "verify/Checks.h"
#include "verify/ThreadChecks.h"
#include "wpp/Archive.h"
#include "wpp/Dbb.h"
#include "wpp/DynamicCallGraph.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

using namespace twpp;
using namespace twpp::verify;

namespace {

// The archive layout constants, mirrored from wpp/Archive.cpp (the
// format is pinned by docs/FORMATS.md and ArchiveCorruptionTest).
constexpr uint32_t ArchiveMagic = 0x54575050; // "TWPP"
constexpr uint32_t ArchiveVersion = 1;
constexpr uint32_t ArchiveVersionThreads = 2;
constexpr size_t PrefixSize = 12;
constexpr size_t DcgFieldsSize = 16;
constexpr size_t IndexRowSize = 24;
constexpr size_t SectionHeadSize = 12; // tag (fixed32) + length (fixed64)

// Cap on materializing a trace's full timestamp vector for the partition
// check; anything larger is structurally absurd for this repo's scales
// and gets a note instead of an allocation.
constexpr uint64_t PartitionMaterializeCap = uint64_t(1) << 26;

std::string fnLoc(uint32_t F) { return "function " + std::to_string(F); }

//===----------------------------------------------------------------------===//
// Timestamp series checks.
//===----------------------------------------------------------------------===//

/// \returns true when the series entries themselves are sound (the
/// round-trip check is only meaningful on a well-ordered set).
bool checkSeriesOrder(const TimestampSet &Set, const std::string &Loc,
                      DiagnosticEngine &Engine) {
  if (Set.empty()) {
    Engine.report(checks::ArchiveSeriesOrder, Severity::Error,
                  "block entry carries an empty timestamp set", Loc);
    return false;
  }
  bool Ok = true;
  Timestamp PrevHi = 0;
  const std::vector<SeriesRun> &Runs = Set.runs();
  for (size_t I = 0; I < Runs.size(); ++I) {
    const SeriesRun &Run = Runs[I];
    std::string RunLoc = Loc + " / series entry " + std::to_string(I);
    if (Run.Lo < 1) {
      Engine.report(checks::ArchiveSeriesOrder, Severity::Error,
                    "timestamp " + std::to_string(Run.Lo) +
                        " is not positive (timestamps are 1-based)",
                    RunLoc);
      Ok = false;
    }
    if (Run.Hi < Run.Lo) {
      Engine.report(checks::ArchiveSeriesOrder, Severity::Error,
                    "series upper bound " + std::to_string(Run.Hi) +
                        " below lower bound " + std::to_string(Run.Lo),
                    RunLoc);
      Ok = false;
    }
    if (Run.Step < 1) {
      Engine.report(checks::ArchiveSeriesOrder, Severity::Error,
                    "series stride must be >= 1", RunLoc);
      Ok = false;
    } else if (Run.Hi >= Run.Lo && (Run.Hi - Run.Lo) % Run.Step != 0) {
      Engine.report(checks::ArchiveSeriesOrder, Severity::Error,
                    "series span " + std::to_string(Run.Hi - Run.Lo) +
                        " is not a multiple of stride " +
                        std::to_string(Run.Step),
                    RunLoc);
      Ok = false;
    }
    if (I > 0 && Run.Lo <= PrevHi) {
      Engine.report(checks::ArchiveSeriesOrder, Severity::Error,
                    "series entries not strictly increasing (" +
                        std::to_string(Run.Lo) + " follows " +
                        std::to_string(PrevHi) + ")",
                    RunLoc);
      Ok = false;
    }
    PrevHi = Run.Hi;
  }
  return Ok;
}

} // namespace

void verify::runTimestampSetChecks(const TimestampSet &Set,
                                   const std::string &Loc,
                                   DiagnosticEngine &Engine) {
  if (!checkSeriesOrder(Set, Loc, Engine))
    return;
  if (!Engine.checkEnabled(checks::ArchiveSeriesSignEncoding))
    return;
  TimestampSet Back;
  if (!TimestampSet::decodeSigned(Set.encodeSigned(), Back) || !(Back == Set)) {
    Engine.report(checks::ArchiveSeriesSignEncoding, Severity::Error,
                  "sign-delimited encoding does not round-trip", Loc);
    return;
  }
  if (!(TimestampSet::fromSorted(Set.toVector()) == Set))
    Engine.report(checks::ArchiveSeriesSignEncoding, Severity::Error,
                  "runs are not canonically packed (fromSorted of the "
                  "element sequence yields different runs)",
                  Loc);
}

namespace {

//===----------------------------------------------------------------------===//
// Per-trace-string checks: block order + exact timestamp partition.
//===----------------------------------------------------------------------===//

void checkTraceString(const TwppTrace &Trace, const std::string &Loc,
                      DiagnosticEngine &Engine) {
  bool BlocksSorted = true;
  uint64_t Total = 0;
  BlockId PrevBlock = 0;
  for (size_t I = 0; I < Trace.Blocks.size(); ++I) {
    const auto &[Block, Set] = Trace.Blocks[I];
    std::string BlockLoc = Loc + " / block " + std::to_string(Block);
    if (I > 0 && Block <= PrevBlock) {
      Engine.report(checks::ArchiveTracePartition, Severity::Error,
                    "block entries not sorted strictly ascending by id",
                    BlockLoc);
      BlocksSorted = false;
    }
    PrevBlock = Block;
    runTimestampSetChecks(Set, BlockLoc, Engine);
    Total += Set.count();
  }
  if (!Engine.checkEnabled(checks::ArchiveTracePartition))
    return;
  if (Total != Trace.Length) {
    Engine.report(checks::ArchiveTracePartition, Severity::Error,
                  "timestamp sets hold " + std::to_string(Total) +
                      " timestamps but the trace declares length " +
                      std::to_string(Trace.Length),
                  Loc);
    return;
  }
  if (!BlocksSorted)
    return;
  if (Total > PartitionMaterializeCap) {
    Engine.report(checks::ArchiveTracePartition, Severity::Note,
                  "trace too long to materialize; partition check limited "
                  "to the count comparison",
                  Loc);
    return;
  }
  // Counts match; only overlaps (with matching gaps) can still hide.
  std::vector<Timestamp> All;
  All.reserve(Total);
  for (const auto &[Block, Set] : Trace.Blocks) {
    std::vector<Timestamp> Part = Set.toVector();
    All.insert(All.end(), Part.begin(), Part.end());
  }
  std::sort(All.begin(), All.end());
  for (size_t I = 0; I < All.size(); ++I) {
    if (All[I] != I + 1) {
      Engine.report(
          checks::ArchiveTracePartition, Severity::Error,
          All[I] <= (I > 0 ? All[I - 1] : 0)
              ? "timestamp " + std::to_string(All[I]) +
                    " appears in more than one block's set"
              : "time step " + std::to_string(I + 1) +
                    " is covered by no block's set",
          Loc);
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// Dedup table + pool checks.
//===----------------------------------------------------------------------===//

void checkDedupTables(const TwppFunctionTable &Table, const std::string &Loc,
                      DiagnosticEngine &Engine) {
  if (Table.UseCounts.size() != Table.Traces.size()) {
    Engine.report(checks::ArchiveDedupIntegrity, Severity::Error,
                  "use-count table has " +
                      std::to_string(Table.UseCounts.size()) +
                      " entries for " + std::to_string(Table.Traces.size()) +
                      " unique traces",
                  Loc);
    return;
  }
  uint64_t TotalUses = 0;
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  for (size_t T = 0; T < Table.Traces.size(); ++T) {
    auto [StringIdx, DictIdx] = Table.Traces[T];
    std::string TraceLoc = Loc + " / trace " + std::to_string(T);
    if (StringIdx >= Table.TraceStrings.size())
      Engine.report(checks::ArchiveDedupIntegrity, Severity::Error,
                    "trace-string index " + std::to_string(StringIdx) +
                        " out of range (pool holds " +
                        std::to_string(Table.TraceStrings.size()) + ")",
                    TraceLoc);
    if (DictIdx >= Table.Dictionaries.size())
      Engine.report(checks::ArchiveDedupIntegrity, Severity::Error,
                    "dictionary index " + std::to_string(DictIdx) +
                        " out of range (pool holds " +
                        std::to_string(Table.Dictionaries.size()) + ")",
                    TraceLoc);
    if (Table.UseCounts[T] == 0)
      Engine.report(checks::ArchiveDedupIntegrity, Severity::Error,
                    "unique trace has use count 0", TraceLoc);
    TotalUses += Table.UseCounts[T];
    if (!Seen.insert({StringIdx, DictIdx}).second)
      Engine.report(checks::ArchiveDedupIntegrity, Severity::Error,
                    "duplicate (string " + std::to_string(StringIdx) +
                        ", dictionary " + std::to_string(DictIdx) +
                        ") pair — redundant path trace elimination failed",
                    TraceLoc);
  }
  if (TotalUses != Table.CallCount)
    Engine.report(checks::ArchiveDedupIntegrity, Severity::Error,
                  "use counts sum to " + std::to_string(TotalUses) +
                      " but the table records " +
                      std::to_string(Table.CallCount) + " calls",
                  Loc);
}

void checkPools(const TwppFunctionTable &Table, const std::string &Loc,
                DiagnosticEngine &Engine) {
  if (!Engine.checkEnabled(checks::ArchivePoolDedup))
    return;
  std::vector<bool> StringUsed(Table.TraceStrings.size(), false);
  std::vector<bool> DictUsed(Table.Dictionaries.size(), false);
  for (auto [StringIdx, DictIdx] : Table.Traces) {
    if (StringIdx < StringUsed.size())
      StringUsed[StringIdx] = true;
    if (DictIdx < DictUsed.size())
      DictUsed[DictIdx] = true;
  }
  for (size_t I = 0; I < StringUsed.size(); ++I)
    if (!StringUsed[I])
      Engine.report(checks::ArchivePoolDedup, Severity::Warning,
                    "trace string " + std::to_string(I) +
                        " is referenced by no unique trace",
                    Loc);
  for (size_t I = 0; I < DictUsed.size(); ++I)
    if (!DictUsed[I])
      Engine.report(checks::ArchivePoolDedup, Severity::Warning,
                    "dictionary " + std::to_string(I) +
                        " is referenced by no unique trace",
                    Loc);
  // Pairwise duplicate scan with a cheap shape pre-filter; pools are the
  // deduplicated sets, so they are small by construction.
  for (size_t A = 0; A < Table.TraceStrings.size(); ++A)
    for (size_t B = A + 1; B < Table.TraceStrings.size(); ++B) {
      if (Table.TraceStrings[A].Length != Table.TraceStrings[B].Length ||
          Table.TraceStrings[A].Blocks.size() !=
              Table.TraceStrings[B].Blocks.size())
        continue;
      if (Table.TraceStrings[A] == Table.TraceStrings[B])
        Engine.report(checks::ArchivePoolDedup, Severity::Warning,
                      "trace strings " + std::to_string(A) + " and " +
                          std::to_string(B) +
                          " are identical — pool deduplication failed",
                      Loc);
    }
  for (size_t A = 0; A < Table.Dictionaries.size(); ++A)
    for (size_t B = A + 1; B < Table.Dictionaries.size(); ++B) {
      if (hashDictionary(Table.Dictionaries[A]) !=
          hashDictionary(Table.Dictionaries[B]))
        continue;
      if (Table.Dictionaries[A] == Table.Dictionaries[B])
        Engine.report(checks::ArchivePoolDedup, Severity::Warning,
                      "dictionaries " + std::to_string(A) + " and " +
                          std::to_string(B) +
                          " are identical — pool deduplication failed",
                      Loc);
    }
}

//===----------------------------------------------------------------------===//
// DBB dictionary checks.
//===----------------------------------------------------------------------===//

void checkDictionary(const DbbDictionary &Dict, const std::string &Loc,
                     DiagnosticEngine &Engine) {
  std::set<BlockId> Heads;
  BlockId PrevHead = 0;
  for (size_t C = 0; C < Dict.Chains.size(); ++C) {
    const std::vector<BlockId> &Chain = Dict.Chains[C];
    std::string ChainLoc = Loc + " / chain " + std::to_string(C);
    if (Chain.size() < 2) {
      Engine.report(checks::DbbChainStructure, Severity::Error,
                    "chain shorter than 2 blocks (dynamic basic blocks "
                    "collapse only multi-block runs)",
                    ChainLoc);
      continue;
    }
    if (C > 0 && Chain.front() <= PrevHead)
      Engine.report(checks::DbbChainStructure, Severity::Error,
                    "chains not sorted strictly by head id (head " +
                        std::to_string(Chain.front()) + " follows " +
                        std::to_string(PrevHead) + ")",
                    ChainLoc);
    PrevHead = Chain.front();
    Heads.insert(Chain.front());
  }
  // A chain body mentioning another chain's head makes one-level
  // expansion ambiguous (the paper's DBBs are vertex-disjoint CFG paths).
  std::map<BlockId, size_t> Owner;
  for (size_t C = 0; C < Dict.Chains.size(); ++C) {
    const std::vector<BlockId> &Chain = Dict.Chains[C];
    if (Chain.size() < 2)
      continue;
    for (size_t I = 0; I < Chain.size(); ++I) {
      std::string ChainLoc = Loc + " / chain " + std::to_string(C);
      if (I > 0 && Heads.count(Chain[I]))
        Engine.report(checks::DbbChainStructure, Severity::Error,
                      "chain body contains block " +
                          std::to_string(Chain[I]) +
                          ", which heads another chain (expansion would "
                          "be ambiguous)",
                      ChainLoc);
      auto [It, Inserted] = Owner.emplace(Chain[I], C);
      if (!Inserted && It->second != C)
        Engine.report(checks::DbbChainStructure, Severity::Error,
                      "block " + std::to_string(Chain[I]) +
                          " belongs to chains " +
                          std::to_string(It->second) + " and " +
                          std::to_string(C) +
                          " (chains must be vertex-disjoint)",
                      ChainLoc);
    }
  }
}

/// The gold-standard maximality check: a unique (trace, dictionary) pair
/// must be a fixed point of DBB compaction. Expands each *unique* trace
/// once (never per call, never to the raw WPP) and re-runs stage 3.
void checkChainMaximality(const TwppFunctionTable &Table,
                          const std::string &Loc, DiagnosticEngine &Engine) {
  if (!Engine.checkEnabled(checks::DbbChainMaximality))
    return;
  std::set<std::pair<uint32_t, uint32_t>> Done;
  for (auto [StringIdx, DictIdx] : Table.Traces) {
    if (StringIdx >= Table.TraceStrings.size() ||
        DictIdx >= Table.Dictionaries.size())
      continue; // dedup-integrity already reported it.
    if (!Done.insert({StringIdx, DictIdx}).second)
      continue;
    std::vector<BlockId> Seq;
    if (!blockSequenceFromTwpp(Table.TraceStrings[StringIdx], Seq))
      continue; // trace-partition already reported it.
    CompactedTrace Compacted;
    Compacted.Blocks = std::move(Seq);
    Compacted.Dictionary = Table.Dictionaries[DictIdx];
    CompactedTrace Recompacted = compactWithDbbs(expandDbbs(Compacted));
    std::string PairLoc = Loc + " / string " + std::to_string(StringIdx) +
                          " / dictionary " + std::to_string(DictIdx);
    if (Recompacted.Blocks != Compacted.Blocks)
      Engine.report(checks::DbbChainMaximality, Severity::Warning,
                    "re-compacting the expanded trace yields a different "
                    "block sequence — some chain occurrence was left "
                    "uncollapsed",
                    PairLoc);
    else if (!(Recompacted.Dictionary == Compacted.Dictionary))
      Engine.report(checks::DbbChainMaximality, Severity::Warning,
                    "re-compacting the expanded trace yields a different "
                    "dictionary — chains are non-maximal or spurious",
                    PairLoc);
  }
}

//===----------------------------------------------------------------------===//
// DCG checks.
//===----------------------------------------------------------------------===//

/// Length of the *uncompacted* path trace behind unique trace \p T of
/// table \p Table (what DCG anchors are ordinals into), computed from the
/// compacted form: each block's timestamp count times its chain length.
uint64_t expandedTraceLength(const TwppFunctionTable &Table, uint32_t T) {
  auto [StringIdx, DictIdx] = Table.Traces[T];
  if (StringIdx >= Table.TraceStrings.size() ||
      DictIdx >= Table.Dictionaries.size())
    return 0;
  const TwppTrace &Trace = Table.TraceStrings[StringIdx];
  const DbbDictionary &Dict = Table.Dictionaries[DictIdx];
  uint64_t Length = 0;
  for (const auto &[Block, Set] : Trace.Blocks) {
    const std::vector<BlockId> *Chain = Dict.findChain(Block);
    Length += Set.count() * (Chain ? Chain->size() : 1);
  }
  return Length;
}

void checkDcg(const TwppWpp &Wpp, DiagnosticEngine &Engine) {
  const DynamicCallGraph &Dcg = Wpp.Dcg;
  const size_t N = Dcg.Nodes.size();
  std::vector<uint32_t> ParentCount(N, 0);
  std::map<std::pair<FunctionId, uint32_t>, uint64_t> LengthCache;

  for (size_t I = 0; I < N; ++I) {
    const DcgNode &Node = Dcg.Nodes[I];
    std::string Loc = "dcg node " + std::to_string(I);
    bool FunctionOk = Node.Function < Wpp.Functions.size();
    if (!FunctionOk)
      Engine.report(checks::DcgConsistency, Severity::Error,
                    "callee function " + std::to_string(Node.Function) +
                        " does not exist (archive holds " +
                        std::to_string(Wpp.Functions.size()) + ")",
                    Loc);
    bool TraceOk =
        FunctionOk &&
        Node.TraceIndex < Wpp.Functions[Node.Function].Traces.size();
    if (FunctionOk && !TraceOk)
      Engine.report(checks::DcgConsistency, Severity::Error,
                    "trace index " + std::to_string(Node.TraceIndex) +
                        " out of range for function " +
                        std::to_string(Node.Function) + " (" +
                        std::to_string(
                            Wpp.Functions[Node.Function].Traces.size()) +
                        " unique traces)",
                    Loc);
    if (Node.Anchors.size() != Node.Children.size())
      Engine.report(checks::DcgConsistency, Severity::Error,
                    std::to_string(Node.Children.size()) +
                        " children but " +
                        std::to_string(Node.Anchors.size()) + " anchors",
                    Loc);
    uint64_t TraceLength = 0;
    if (TraceOk) {
      auto Key = std::make_pair(Node.Function, Node.TraceIndex);
      auto It = LengthCache.find(Key);
      if (It == LengthCache.end())
        It = LengthCache
                 .emplace(Key, expandedTraceLength(
                                   Wpp.Functions[Node.Function],
                                   Node.TraceIndex))
                 .first;
      TraceLength = It->second;
    }
    for (size_t C = 0; C < Node.Children.size(); ++C) {
      uint32_t Child = Node.Children[C];
      if (Child >= N) {
        Engine.report(checks::DcgConsistency, Severity::Error,
                      "child index " + std::to_string(Child) +
                          " out of range",
                      Loc);
        continue;
      }
      if (Child <= I)
        Engine.report(checks::DcgConsistency, Severity::Error,
                      "child index " + std::to_string(Child) +
                          " not greater than parent (calls are recorded "
                          "in creation order)",
                      Loc);
      else
        ++ParentCount[Child];
    }
    uint32_t PrevAnchor = 0;
    for (size_t C = 0; C < Node.Anchors.size(); ++C) {
      uint32_t Anchor = Node.Anchors[C];
      if (Anchor < PrevAnchor) {
        Engine.report(checks::DcgConsistency, Severity::Error,
                      "anchors not non-decreasing (anchor " +
                          std::to_string(Anchor) + " follows " +
                          std::to_string(PrevAnchor) + ")",
                      Loc);
        break;
      }
      PrevAnchor = Anchor;
      if (TraceOk && Anchor > TraceLength) {
        Engine.report(checks::DcgConsistency, Severity::Error,
                      "anchor " + std::to_string(Anchor) +
                          " exceeds the call's uncompacted trace length " +
                          std::to_string(TraceLength),
                      Loc);
        break;
      }
    }
  }

  std::vector<bool> IsRoot(N, false);
  for (uint32_t Root : Dcg.Roots) {
    if (Root >= N)
      Engine.report(checks::DcgConsistency, Severity::Error,
                    "root index " + std::to_string(Root) + " out of range",
                    "dcg roots");
    else
      IsRoot[Root] = true;
  }
  for (size_t I = 0; I < N; ++I) {
    std::string Loc = "dcg node " + std::to_string(I);
    if (IsRoot[I] && ParentCount[I] != 0)
      Engine.report(checks::DcgConsistency, Severity::Error,
                    "root node also appears as a child", Loc);
    else if (!IsRoot[I] && ParentCount[I] == 0)
      Engine.report(checks::DcgConsistency, Severity::Error,
                    "node is neither a root nor any node's child "
                    "(orphaned call)",
                    Loc);
    else if (!IsRoot[I] && ParentCount[I] > 1)
      Engine.report(checks::DcgConsistency, Severity::Error,
                    "node has " + std::to_string(ParentCount[I]) +
                        " parents (the DCG must be a forest)",
                    Loc);
  }

  if (Engine.checkEnabled(checks::DcgCallCounts)) {
    std::vector<uint64_t> NodeCounts(Wpp.Functions.size(), 0);
    for (const DcgNode &Node : Dcg.Nodes)
      if (Node.Function < NodeCounts.size())
        ++NodeCounts[Node.Function];
    for (uint32_t F = 0; F < Wpp.Functions.size(); ++F)
      if (NodeCounts[F] != Wpp.Functions[F].CallCount)
        Engine.report(checks::DcgCallCounts, Severity::Error,
                      "DCG holds " + std::to_string(NodeCounts[F]) +
                          " calls but the function table records " +
                          std::to_string(Wpp.Functions[F].CallCount),
                      fnLoc(F));
  }
}

//===----------------------------------------------------------------------===//
// Version-2 section trailer.
//===----------------------------------------------------------------------===//

/// Walks the section trailer of a version-2 archive ([DcgEnd, end of
/// file) as tag/length/payload records), reporting twpp-archive-section
/// errors, and decodes the three thread sections into \p Conc.
/// \returns true when the trailer is structurally sound and every
/// section decoded (only then are the thread/race checks meaningful).
bool checkSectionTrailer(const std::vector<uint8_t> &Bytes, uint64_t DcgEnd,
                         ConcurrencyInfo &Conc, DiagnosticEngine &Engine) {
  const uint64_t Size = Bytes.size();
  struct SectionRec {
    uint32_t Tag = 0;
    uint64_t Offset = 0;
    uint64_t Length = 0;
  };
  std::vector<SectionRec> Sections;
  auto Find = [&Sections](uint32_t Tag) -> const SectionRec * {
    for (const SectionRec &S : Sections)
      if (S.Tag == Tag)
        return &S;
    return nullptr;
  };

  uint64_t Pos = DcgEnd;
  while (Pos < Size) {
    if (Size - Pos < SectionHeadSize) {
      Engine.report(checks::ArchiveSection, Severity::Error,
                    "truncated section record at offset " +
                        std::to_string(Pos),
                    "section directory", Pos);
      return false;
    }
    ByteReader Head(
        ByteSpan(Bytes.data() + static_cast<size_t>(Pos), SectionHeadSize));
    SectionRec Sec;
    Sec.Tag = Head.readFixed32();
    Sec.Length = Head.readFixed64();
    Sec.Offset = Pos + SectionHeadSize;
    if (Sec.Tag != ArchiveSectionThreads && Sec.Tag != ArchiveSectionHbEdges &&
        Sec.Tag != ArchiveSectionAccesses) {
      char Buf[9];
      std::snprintf(Buf, sizeof(Buf), "%08x", Sec.Tag);
      Engine.report(checks::ArchiveSection, Severity::Error,
                    "unknown archive section tag 0x" + std::string(Buf),
                    "section directory", Pos);
      return false;
    }
    if (Sec.Length > Size - Sec.Offset) {
      Engine.report(checks::ArchiveSection, Severity::Error,
                    "section payload runs past end of file",
                    "section directory", Pos);
      return false;
    }
    if (Find(Sec.Tag)) {
      Engine.report(checks::ArchiveSection, Severity::Error,
                    "duplicate archive section tag", "section directory", Pos);
      return false;
    }
    Sections.push_back(Sec);
    Pos = Sec.Offset + Sec.Length;
  }

  bool Ok = true;
  // THRD must decode before ACCS (the access decoder validates its
  // thread count against the table), so decode in fixed tag order rather
  // than file order.
  const struct {
    uint32_t Tag;
    const char *Name;
  } Expected[] = {{ArchiveSectionThreads, "THRD"},
                  {ArchiveSectionHbEdges, "HBEG"},
                  {ArchiveSectionAccesses, "ACCS"}};
  for (const auto &[Tag, Name] : Expected) {
    const SectionRec *Sec = Find(Tag);
    if (!Sec) {
      Engine.report(checks::ArchiveSection, Severity::Error,
                    "version 2 archive is missing the " + std::string(Name) +
                        " section",
                    "section directory", DcgEnd);
      Ok = false;
      continue;
    }
    ByteSpan Payload = ByteSpan(Bytes).subspan(Sec->Offset, Sec->Length);
    if (!decodeArchiveSection(Tag, Payload, Conc)) {
      Engine.report(checks::ArchiveSection, Severity::Error,
                    std::string(Name) + " section does not decode",
                    std::string(Name) + " section", Sec->Offset);
      Ok = false;
    }
  }
  return Ok;
}

} // namespace

void verify::runFunctionTableChecks(const TwppFunctionTable &Table,
                                    uint32_t F, DiagnosticEngine &Engine) {
  std::string Loc = fnLoc(F);
  for (size_t S = 0; S < Table.TraceStrings.size(); ++S)
    checkTraceString(Table.TraceStrings[S],
                     Loc + " / string " + std::to_string(S), Engine);
  for (size_t D = 0; D < Table.Dictionaries.size(); ++D)
    checkDictionary(Table.Dictionaries[D],
                    Loc + " / dictionary " + std::to_string(D), Engine);
  checkDedupTables(Table, Loc, Engine);
  checkPools(Table, Loc, Engine);
  checkChainMaximality(Table, Loc, Engine);
}

void verify::runWppChecks(const TwppWpp &Wpp, DiagnosticEngine &Engine) {
  for (uint32_t F = 0; F < Wpp.Functions.size(); ++F)
    runFunctionTableChecks(Wpp.Functions[F], F, Engine);
  checkDcg(Wpp, Engine);
}

void verify::runArchiveBytesChecks(const std::vector<uint8_t> &Bytes,
                                   DiagnosticEngine &Engine) {
  const uint64_t Size = Bytes.size();
  if (Size < PrefixSize + DcgFieldsSize) {
    Engine.report(checks::ArchiveHeader, Severity::Error,
                  "file of " + std::to_string(Size) +
                      " bytes is smaller than the fixed header",
                  "header", 0);
    return;
  }
  ByteReader Reader(Bytes);
  uint32_t Magic = Reader.readFixed32();
  uint32_t Version = Reader.readFixed32();
  uint32_t FunctionCount = Reader.readFixed32();
  uint64_t DcgOffset = Reader.readFixed64();
  uint64_t DcgLength = Reader.readFixed64();
  if (Magic != ArchiveMagic) {
    Engine.report(checks::ArchiveHeader, Severity::Error,
                  "bad magic (not a TWPP archive)", "header", 0);
    return;
  }
  if (Version != ArchiveVersion && Version != ArchiveVersionThreads) {
    Engine.report(checks::ArchiveHeader, Severity::Error,
                  "unsupported version " + std::to_string(Version), "header",
                  4);
    return;
  }
  const uint64_t IndexEnd =
      PrefixSize + DcgFieldsSize +
      static_cast<uint64_t>(FunctionCount) * IndexRowSize;
  if (static_cast<uint64_t>(FunctionCount) * IndexRowSize >
      Size - PrefixSize - DcgFieldsSize) {
    Engine.report(checks::ArchiveHeader, Severity::Error,
                  "function count " + std::to_string(FunctionCount) +
                      " implies an index larger than the file",
                  "header", 8);
    return;
  }
  bool DcgExtentOk = true;
  if (DcgOffset > Size || DcgLength > Size - DcgOffset) {
    Engine.report(checks::ArchiveHeader, Severity::Error,
                  "DCG extent (offset " + std::to_string(DcgOffset) +
                      ", length " + std::to_string(DcgLength) +
                      ") runs past end of file",
                  "dcg extent", PrefixSize);
    DcgExtentOk = false;
  }

  struct Row {
    uint64_t Offset = 0, Length = 0, CallCount = 0;
    bool InBounds = false;
  };
  std::vector<Row> Rows(FunctionCount);
  for (uint32_t F = 0; F < FunctionCount; ++F) {
    const uint64_t RowAt =
        PrefixSize + DcgFieldsSize + static_cast<uint64_t>(F) * IndexRowSize;
    Row &R = Rows[F];
    R.Offset = Reader.readFixed64();
    R.Length = Reader.readFixed64();
    R.CallCount = Reader.readFixed64();
    std::string Loc = "index row " + std::to_string(F);
    if (R.Offset > Size || R.Length > Size - R.Offset) {
      Engine.report(checks::ArchiveIndexBounds, Severity::Error,
                    "block extent (offset " + std::to_string(R.Offset) +
                        ", length " + std::to_string(R.Length) +
                        ") runs past end of file",
                    Loc, RowAt);
      continue;
    }
    if (R.Length > 0 && R.Offset < IndexEnd) {
      Engine.report(checks::ArchiveIndexBounds, Severity::Error,
                    "block overlaps the header/index region", Loc, RowAt);
      continue;
    }
    R.InBounds = true;
  }

  // Non-overlap over every in-bounds extent (function blocks + DCG).
  struct Extent {
    uint64_t Offset, Length;
    std::string Name;
  };
  std::vector<Extent> Extents;
  for (uint32_t F = 0; F < FunctionCount; ++F)
    if (Rows[F].InBounds && Rows[F].Length > 0)
      Extents.push_back({Rows[F].Offset, Rows[F].Length,
                         "function " + std::to_string(F) + " block"});
  if (DcgExtentOk && DcgLength > 0)
    Extents.push_back({DcgOffset, DcgLength, "dcg"});
  std::sort(Extents.begin(), Extents.end(),
            [](const Extent &A, const Extent &B) {
              return A.Offset < B.Offset;
            });
  for (size_t I = 1; I < Extents.size(); ++I)
    if (Extents[I].Offset < Extents[I - 1].Offset + Extents[I - 1].Length)
      Engine.report(checks::ArchiveIndexBounds, Severity::Error,
                    Extents[I].Name + " overlaps " + Extents[I - 1].Name,
                    Extents[I].Name, Extents[I].Offset);

  // Most-frequent-first layout (paper Section 3): walking blocks in file
  // order, call counts must never increase.
  if (Engine.checkEnabled(checks::ArchiveIndexOrder)) {
    std::vector<uint32_t> ByOffset;
    for (uint32_t F = 0; F < FunctionCount; ++F)
      if (Rows[F].InBounds)
        ByOffset.push_back(F);
    std::stable_sort(ByOffset.begin(), ByOffset.end(),
                     [&Rows](uint32_t A, uint32_t B) {
                       return Rows[A].Offset < Rows[B].Offset;
                     });
    for (size_t I = 1; I < ByOffset.size(); ++I)
      if (Rows[ByOffset[I]].CallCount > Rows[ByOffset[I - 1]].CallCount) {
        Engine.report(
            checks::ArchiveIndexOrder, Severity::Warning,
            "function " + std::to_string(ByOffset[I]) + " (" +
                std::to_string(Rows[ByOffset[I]].CallCount) +
                " calls) is stored after function " +
                std::to_string(ByOffset[I - 1]) + " (" +
                std::to_string(Rows[ByOffset[I - 1]].CallCount) +
                " calls) — blocks must be laid out most-frequent first",
            "index", 0);
        break;
      }
  }

  // Decode every function block and the DCG; on full success, chain into
  // the in-memory family.
  bool AllDecoded = DcgExtentOk;
  TwppWpp Wpp;
  Wpp.Functions.resize(FunctionCount);
  for (uint32_t F = 0; F < FunctionCount; ++F) {
    const Row &R = Rows[F];
    if (!R.InBounds) {
      AllDecoded = false;
      continue;
    }
    std::vector<uint8_t> Block(Bytes.begin() + static_cast<size_t>(R.Offset),
                               Bytes.begin() +
                                   static_cast<size_t>(R.Offset + R.Length));
    std::string Loc = "function " + std::to_string(F) + " block";
    if (!decodeTwppFunctionTable(Block, Wpp.Functions[F])) {
      Engine.report(checks::ArchiveBlockDecode, Severity::Error,
                    "function block does not decode", Loc, R.Offset);
      AllDecoded = false;
      continue;
    }
    if (Wpp.Functions[F].CallCount != R.CallCount)
      Engine.report(checks::ArchiveBlockDecode, Severity::Error,
                    "index records " + std::to_string(R.CallCount) +
                        " calls but the decoded table records " +
                        std::to_string(Wpp.Functions[F].CallCount),
                    Loc, R.Offset);
  }
  if (DcgExtentOk) {
    std::vector<uint8_t> Compressed(
        Bytes.begin() + static_cast<size_t>(DcgOffset),
        Bytes.begin() + static_cast<size_t>(DcgOffset + DcgLength));
    std::vector<uint8_t> Raw;
    if (!lzwDecompress(Compressed, Raw)) {
      Engine.report(checks::ArchiveDcgDecode, Severity::Error,
                    "DCG does not LZW-decompress", "dcg", DcgOffset);
      AllDecoded = false;
    } else if (!decodeDcg(Raw, Wpp.Dcg)) {
      Engine.report(checks::ArchiveDcgDecode, Severity::Error,
                    "decompressed DCG does not decode as a call graph",
                    "dcg", DcgOffset);
      AllDecoded = false;
    }
  }
  if (AllDecoded)
    runWppChecks(Wpp, Engine);

  // Version 2: the thread trailer, then the thread/race families over it.
  if (Version == ArchiveVersionThreads && DcgExtentOk) {
    ConcurrencyInfo Conc;
    if (checkSectionTrailer(Bytes, DcgOffset + DcgLength, Conc, Engine))
      runConcurrencyChecks(Conc, AllDecoded ? &Wpp : nullptr, Engine);
  }
}
