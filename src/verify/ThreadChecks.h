//===- verify/ThreadChecks.h - Thread/race invariant checks -----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread and race check families over a decoded ConcurrencyInfo:
/// the structural invariants the compacted race engine assumes. An
/// archive that passes these gives the engine sound input; one that
/// fails them can make any race verdict, which is why they are all
/// errors by default.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_THREADCHECKS_H
#define TWPP_VERIFY_THREADCHECKS_H

#include "verify/Diagnostics.h"
#include "wpp/Concurrent.h"

namespace twpp::verify {

/// Runs the twpp-thread-* and twpp-race-* checks. \p Body is the merged
/// thread-major body when available (nullptr skips the partition check
/// against trace lengths — e.g. when function blocks failed to decode).
void runConcurrencyChecks(const ConcurrencyInfo &Conc, const TwppWpp *Body,
                          DiagnosticEngine &Engine);

} // namespace twpp::verify

#endif // TWPP_VERIFY_THREADCHECKS_H
