//===- verify/MemoryChecks.h - Memory observability audits ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twpp-mem-* check family: audits the memory observability layer
/// itself. An archive is decoded with the obs/Memory.h allocation tracker
/// capturing into a private account; the attributed bytes are then
/// reconciled against an independent obs::deepSize walk of the decoded
/// structures (twpp-mem-reconcile), the tracker registry is scanned for
/// unbalanced instrumentation (twpp-mem-negative-live), and the in-memory
/// footprint is sanity-checked against the wpp/Sizes paper-model estimate
/// (twpp-mem-footprint-model).
///
/// Tolerance: tracker vs deepSize must agree within 1% + 1 KiB — both are
/// size()-based byte models of the same structures, so anything beyond
/// rounding slack means an instrumented decoder and the audit walk
/// disagree about what a structure holds.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_VERIFY_MEMORYCHECKS_H
#define TWPP_VERIFY_MEMORYCHECKS_H

#include "verify/Diagnostics.h"
#include "wpp/Archive.h" // IoMode
#include "wpp/Twpp.h"

#include <cstdint>
#include <string>

namespace twpp {
namespace verify {

/// Result of decoding one archive under the allocation tracker.
struct MemoryAudit {
  /// Bytes the instrumented decoders attributed (live at end of decode).
  uint64_t TrackedBytes = 0;
  /// obs::deepSize of the decoded TwppWpp.
  uint64_t DeepBytes = 0;
  /// Paper-model serialized estimate (wpp/Sizes: twppTraceBytes +
  /// dictionaryBytes over every function table).
  uint64_t ModelBytes = 0;
  /// False when the archive did not open or decode.
  bool Decoded = false;
};

/// Allowed |tracked - deep| slack of the reconcile check: 1% of the deep
/// size plus 1 KiB.
inline uint64_t memReconcileToleranceBytes(uint64_t DeepBytes) {
  return DeepBytes / 100 + 1024;
}

/// Decodes \p Path with tracking force-enabled into a private account and
/// fills \p Audit. \p Wpp (optional) receives the decoded representation.
/// \p Mode picks the read path (defaults to the process-wide mode, which
/// the CLIs' --io flag controls); the audit figures must be identical in
/// both, since mapped bytes land on the fixed archive.mmap tag, never in
/// the scoped capture. Returns Audit.Decoded.
bool auditArchiveMemory(const std::string &Path, MemoryAudit &Audit,
                        TwppWpp *Wpp = nullptr,
                        IoMode Mode = defaultArchiveIoMode());

/// Runs the twpp-mem-* family over \p Path, honouring \p Engine's check
/// glob. No-op diagnostics-wise when the archive is unreadable (the
/// archive byte checks already cover that).
void runMemoryChecks(const std::string &Path, DiagnosticEngine &Engine);

} // namespace verify
} // namespace twpp

#endif // TWPP_VERIFY_MEMORYCHECKS_H
