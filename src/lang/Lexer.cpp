//===- lang/Lexer.cpp - Tokenizer for the mini language -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>

using namespace twpp;

namespace {

TokenKind keywordKind(const std::string &Text) {
  if (Text == "fn")
    return TokenKind::KwFn;
  if (Text == "let")
    return TokenKind::KwLet;
  if (Text == "if")
    return TokenKind::KwIf;
  if (Text == "else")
    return TokenKind::KwElse;
  if (Text == "while")
    return TokenKind::KwWhile;
  if (Text == "return")
    return TokenKind::KwReturn;
  if (Text == "call")
    return TokenKind::KwCall;
  if (Text == "read")
    return TokenKind::KwRead;
  if (Text == "print")
    return TokenKind::KwPrint;
  if (Text == "break")
    return TokenKind::KwBreak;
  if (Text == "continue")
    return TokenKind::KwContinue;
  return TokenKind::Ident;
}

} // namespace

bool twpp::tokenize(const std::string &Source, std::vector<Token> &Tokens,
                    std::string &Error) {
  Tokens.clear();
  Error.clear();
  size_t Pos = 0, N = Source.size();
  uint32_t Line = 1, Column = 1;

  auto Advance = [&](size_t Count = 1) {
    for (size_t I = 0; I < Count && Pos < N; ++I) {
      if (Source[Pos] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
      ++Pos;
    }
  };
  auto Peek = [&](size_t Ahead = 0) -> char {
    return Pos + Ahead < N ? Source[Pos + Ahead] : '\0';
  };
  auto Fail = [&](const std::string &Message) {
    Error = std::to_string(Line) + ":" + std::to_string(Column) + ": " +
            Message;
    return false;
  };
  auto Emit = [&](TokenKind Kind, std::string Text, uint32_t TokLine,
                  uint32_t TokColumn) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = TokLine;
    T.Column = TokColumn;
    Tokens.push_back(std::move(T));
  };

  while (Pos < N) {
    char C = Peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments: '//' to end of line.
    if (C == '/' && Peek(1) == '/') {
      while (Pos < N && Peek() != '\n')
        Advance();
      continue;
    }
    uint32_t TokLine = Line, TokColumn = Column;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (Pos < N && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                         Peek() == '_')) {
        Text += Peek();
        Advance();
      }
      TokenKind Kind = keywordKind(Text);
      Emit(Kind, std::move(Text), TokLine, TokColumn);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      bool Overflow = false;
      int64_t Value = 0;
      while (Pos < N && std::isdigit(static_cast<unsigned char>(Peek()))) {
        int Digit = Peek() - '0';
        if (Value > (INT64_MAX - Digit) / 10)
          Overflow = true;
        else
          Value = Value * 10 + Digit;
        Text += Peek();
        Advance();
      }
      if (Overflow)
        return Fail("integer literal '" + Text + "' overflows");
      Token T;
      T.Kind = TokenKind::Integer;
      T.Text = std::move(Text);
      T.IntValue = Value;
      T.Line = TokLine;
      T.Column = TokColumn;
      Tokens.push_back(std::move(T));
      continue;
    }
    auto Two = [&](char Second, TokenKind Kind) {
      if (Peek(1) != Second)
        return false;
      Emit(Kind, std::string{C, Second}, TokLine, TokColumn);
      Advance(2);
      return true;
    };
    switch (C) {
    case '(':
      Emit(TokenKind::LParen, "(", TokLine, TokColumn);
      Advance();
      continue;
    case ')':
      Emit(TokenKind::RParen, ")", TokLine, TokColumn);
      Advance();
      continue;
    case '{':
      Emit(TokenKind::LBrace, "{", TokLine, TokColumn);
      Advance();
      continue;
    case '}':
      Emit(TokenKind::RBrace, "}", TokLine, TokColumn);
      Advance();
      continue;
    case ',':
      Emit(TokenKind::Comma, ",", TokLine, TokColumn);
      Advance();
      continue;
    case ';':
      Emit(TokenKind::Semi, ";", TokLine, TokColumn);
      Advance();
      continue;
    case '+':
      Emit(TokenKind::Plus, "+", TokLine, TokColumn);
      Advance();
      continue;
    case '-':
      Emit(TokenKind::Minus, "-", TokLine, TokColumn);
      Advance();
      continue;
    case '*':
      Emit(TokenKind::Star, "*", TokLine, TokColumn);
      Advance();
      continue;
    case '/':
      Emit(TokenKind::Slash, "/", TokLine, TokColumn);
      Advance();
      continue;
    case '%':
      Emit(TokenKind::Percent, "%", TokLine, TokColumn);
      Advance();
      continue;
    case '<':
      if (Two('=', TokenKind::Le))
        continue;
      Emit(TokenKind::Lt, "<", TokLine, TokColumn);
      Advance();
      continue;
    case '>':
      if (Two('=', TokenKind::Ge))
        continue;
      Emit(TokenKind::Gt, ">", TokLine, TokColumn);
      Advance();
      continue;
    case '=':
      if (Two('=', TokenKind::EqEq))
        continue;
      Emit(TokenKind::Assign, "=", TokLine, TokColumn);
      Advance();
      continue;
    case '!':
      if (Two('=', TokenKind::NotEq))
        continue;
      Emit(TokenKind::Not, "!", TokLine, TokColumn);
      Advance();
      continue;
    case '&':
      if (Two('&', TokenKind::AndAnd))
        continue;
      return Fail("expected '&&'");
    case '|':
      if (Two('|', TokenKind::OrOr))
        continue;
      return Fail("expected '||'");
    default:
      return Fail(std::string("unexpected character '") + C + "'");
    }
  }
  Token Eof;
  Eof.Kind = TokenKind::Eof;
  Eof.Line = Line;
  Eof.Column = Column;
  Tokens.push_back(std::move(Eof));
  return true;
}
