//===- lang/Lexer.h - Tokenizer for the mini language -----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the mini imperative language used to author traced
/// programs (the substitute for the paper's SPECint95 + Trimaran inputs).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_LANG_LEXER_H
#define TWPP_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace twpp {

/// Token kinds of the mini language.
enum class TokenKind : uint8_t {
  Eof,
  Ident,
  Integer,
  // Keywords.
  KwFn,
  KwLet,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwCall,
  KwRead,
  KwPrint,
  KwBreak,
  KwContinue,
  // Punctuation / operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Assign,  // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Not,
};

/// One token with its source location (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

/// Tokenizes \p Source. On success returns true and fills \p Tokens
/// (terminated by an Eof token); on failure fills \p Error with a
/// "line:col: message" diagnostic.
bool tokenize(const std::string &Source, std::vector<Token> &Tokens,
              std::string &Error);

} // namespace twpp

#endif // TWPP_LANG_LEXER_H
