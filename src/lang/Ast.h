//===- lang/Ast.h - Abstract syntax tree of the mini language ---*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST produced by the parser and consumed by the lowering pass.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_LANG_AST_H
#define TWPP_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace twpp {

/// Expression node.
struct AstExpr {
  enum class Kind : uint8_t { Integer, Var, Unary, Binary };
  /// Operator spelling for Unary ("-", "!") and Binary ("+", "<=", ...).
  Kind NodeKind = Kind::Integer;
  int64_t IntValue = 0;
  std::string Name;
  std::string Op;
  std::unique_ptr<AstExpr> Lhs;
  std::unique_ptr<AstExpr> Rhs;
};

struct AstStmt;
using AstBlock = std::vector<std::unique_ptr<AstStmt>>;

/// Statement node.
struct AstStmt {
  enum class Kind : uint8_t {
    Assign, Call, Read, Print, If, While, Return, Break, Continue
  };
  Kind NodeKind = Kind::Assign;
  uint32_t Line = 0;

  // Assign: Target = Value. Call: [Target =] call Callee(Args).
  std::string Target;
  std::unique_ptr<AstExpr> Value; ///< Assign value / Print operand /
                                  ///< Return value / If-While condition.
  std::string Callee;
  std::vector<std::unique_ptr<AstExpr>> Args;
  bool HasValue = false; ///< Return carries a value; Call assigns Target.

  AstBlock Then; ///< If-then / While body.
  AstBlock Else; ///< If-else.
};

/// Function definition.
struct AstFunction {
  std::string Name;
  std::vector<std::string> Params;
  AstBlock Body;
  uint32_t Line = 0;
};

/// A whole source file.
struct AstProgram {
  std::vector<AstFunction> Functions;
};

} // namespace twpp

#endif // TWPP_LANG_AST_H
