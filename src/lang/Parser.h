//===- lang/Parser.h - Recursive-descent parser ------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the mini language. Grammar (EBNF):
///
///   program := fndef*
///   fndef   := 'fn' IDENT '(' [IDENT {',' IDENT}] ')' block
///   block   := '{' stmt* '}'
///   stmt    := ['let'] IDENT '=' ('call' IDENT '(' args ')' | expr) ';'
///            | 'call' IDENT '(' args ')' ';'
///            | 'read' IDENT ';'
///            | 'print' expr ';'
///            | 'if' '(' expr ')' block ['else' block]
///            | 'while' '(' expr ')' block
///            | 'return' [expr] ';'
///   expr    := precedence-climbing over || && == != < <= > >= + - * / %
///              with unary ! and -.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_LANG_PARSER_H
#define TWPP_LANG_PARSER_H

#include "lang/Ast.h"

#include <string>

namespace twpp {

/// Parses \p Source into \p Program. On failure returns false and fills
/// \p Error with a "line:col: message" diagnostic.
bool parseProgram(const std::string &Source, AstProgram &Program,
                  std::string &Error);

} // namespace twpp

#endif // TWPP_LANG_PARSER_H
