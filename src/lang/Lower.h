//===- lang/Lower.h - AST to IR lowering ------------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the mini language AST into the CFG-based IR. Structured control
/// flow becomes explicit blocks: `if` produces then/else/join blocks,
/// `while` produces header/body/exit blocks (the loop shapes that give the
/// compaction pipeline its DBB chains and arithmetic timestamp series).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_LANG_LOWER_H
#define TWPP_LANG_LOWER_H

#include "ir/Ir.h"
#include "lang/Ast.h"

#include <string>

namespace twpp {

/// Lowers \p Program into \p M. The entry point is the function named
/// "main" (or the first function when no "main" exists). On failure
/// returns false and fills \p Error.
bool lowerProgram(const AstProgram &Program, Module &M, std::string &Error);

/// Convenience: parse + lower in one step.
bool compileProgram(const std::string &Source, Module &M, std::string &Error);

} // namespace twpp

#endif // TWPP_LANG_LOWER_H
