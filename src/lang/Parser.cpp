//===- lang/Parser.cpp - Recursive-descent parser --------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

using namespace twpp;

namespace {

/// Recursive-descent parser with single-token lookahead.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string &Error)
      : Tokens(std::move(Tokens)), Error(Error) {}

  bool run(AstProgram &Program) {
    while (!at(TokenKind::Eof)) {
      AstFunction Fn;
      if (!parseFunction(Fn))
        return false;
      Program.Functions.push_back(std::move(Fn));
    }
    if (Program.Functions.empty())
      return fail("empty program: expected at least one 'fn'");
    return true;
  }

private:
  const Token &peek() const { return Tokens[Pos]; }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }

  const Token &advance() { return Tokens[Pos++]; }

  bool fail(const std::string &Message) {
    Error = std::to_string(peek().Line) + ":" + std::to_string(peek().Column) +
            ": " + Message;
    return false;
  }

  bool expect(TokenKind Kind, const char *What) {
    if (!at(Kind))
      return fail(std::string("expected ") + What);
    advance();
    return true;
  }

  bool parseFunction(AstFunction &Fn) {
    Fn.Line = peek().Line;
    if (!expect(TokenKind::KwFn, "'fn'"))
      return false;
    if (!at(TokenKind::Ident))
      return fail("expected function name");
    Fn.Name = advance().Text;
    if (!expect(TokenKind::LParen, "'('"))
      return false;
    if (!at(TokenKind::RParen)) {
      while (true) {
        if (!at(TokenKind::Ident))
          return fail("expected parameter name");
        Fn.Params.push_back(advance().Text);
        if (at(TokenKind::Comma)) {
          advance();
          continue;
        }
        break;
      }
    }
    if (!expect(TokenKind::RParen, "')'"))
      return false;
    return parseBlock(Fn.Body);
  }

  bool parseBlock(AstBlock &Block) {
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    while (!at(TokenKind::RBrace)) {
      if (at(TokenKind::Eof))
        return fail("unexpected end of input inside block");
      auto Stmt = std::make_unique<AstStmt>();
      if (!parseStmt(*Stmt))
        return false;
      Block.push_back(std::move(Stmt));
    }
    advance(); // consume '}'
    return true;
  }

  bool parseCallTail(AstStmt &S) {
    if (!at(TokenKind::Ident))
      return fail("expected callee name after 'call'");
    S.Callee = advance().Text;
    if (!expect(TokenKind::LParen, "'('"))
      return false;
    if (!at(TokenKind::RParen)) {
      while (true) {
        std::unique_ptr<AstExpr> Arg;
        if (!parseExpr(Arg))
          return false;
        S.Args.push_back(std::move(Arg));
        if (at(TokenKind::Comma)) {
          advance();
          continue;
        }
        break;
      }
    }
    return expect(TokenKind::RParen, "')'");
  }

  bool parseStmt(AstStmt &S) {
    S.Line = peek().Line;
    switch (peek().Kind) {
    case TokenKind::KwLet:
    case TokenKind::Ident: {
      if (at(TokenKind::KwLet))
        advance();
      if (!at(TokenKind::Ident))
        return fail("expected variable name");
      S.Target = advance().Text;
      if (!expect(TokenKind::Assign, "'='"))
        return false;
      if (at(TokenKind::KwCall)) {
        advance();
        S.NodeKind = AstStmt::Kind::Call;
        S.HasValue = true;
        if (!parseCallTail(S))
          return false;
      } else {
        S.NodeKind = AstStmt::Kind::Assign;
        if (!parseExpr(S.Value))
          return false;
      }
      return expect(TokenKind::Semi, "';'");
    }
    case TokenKind::KwCall: {
      advance();
      S.NodeKind = AstStmt::Kind::Call;
      if (!parseCallTail(S))
        return false;
      return expect(TokenKind::Semi, "';'");
    }
    case TokenKind::KwRead: {
      advance();
      S.NodeKind = AstStmt::Kind::Read;
      if (!at(TokenKind::Ident))
        return fail("expected variable after 'read'");
      S.Target = advance().Text;
      return expect(TokenKind::Semi, "';'");
    }
    case TokenKind::KwPrint: {
      advance();
      S.NodeKind = AstStmt::Kind::Print;
      if (!parseExpr(S.Value))
        return false;
      return expect(TokenKind::Semi, "';'");
    }
    case TokenKind::KwIf: {
      advance();
      S.NodeKind = AstStmt::Kind::If;
      if (!expect(TokenKind::LParen, "'('"))
        return false;
      if (!parseExpr(S.Value))
        return false;
      if (!expect(TokenKind::RParen, "')'"))
        return false;
      if (!parseBlock(S.Then))
        return false;
      if (at(TokenKind::KwElse)) {
        advance();
        if (!parseBlock(S.Else))
          return false;
      }
      return true;
    }
    case TokenKind::KwWhile: {
      advance();
      S.NodeKind = AstStmt::Kind::While;
      if (!expect(TokenKind::LParen, "'('"))
        return false;
      if (!parseExpr(S.Value))
        return false;
      if (!expect(TokenKind::RParen, "')'"))
        return false;
      return parseBlock(S.Then);
    }
    case TokenKind::KwBreak: {
      advance();
      S.NodeKind = AstStmt::Kind::Break;
      return expect(TokenKind::Semi, "';'");
    }
    case TokenKind::KwContinue: {
      advance();
      S.NodeKind = AstStmt::Kind::Continue;
      return expect(TokenKind::Semi, "';'");
    }
    case TokenKind::KwReturn: {
      advance();
      S.NodeKind = AstStmt::Kind::Return;
      if (!at(TokenKind::Semi)) {
        S.HasValue = true;
        if (!parseExpr(S.Value))
          return false;
      }
      return expect(TokenKind::Semi, "';'");
    }
    default:
      return fail("expected statement");
    }
  }

  /// Binding power of a binary operator token; 0 when not binary.
  static int precedenceOf(TokenKind Kind) {
    switch (Kind) {
    case TokenKind::OrOr:
      return 1;
    case TokenKind::AndAnd:
      return 2;
    case TokenKind::EqEq:
    case TokenKind::NotEq:
      return 3;
    case TokenKind::Lt:
    case TokenKind::Le:
    case TokenKind::Gt:
    case TokenKind::Ge:
      return 4;
    case TokenKind::Plus:
    case TokenKind::Minus:
      return 5;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent:
      return 6;
    default:
      return 0;
    }
  }

  bool parseExpr(std::unique_ptr<AstExpr> &Out) {
    return parseBinary(Out, 1);
  }

  bool parseBinary(std::unique_ptr<AstExpr> &Out, int MinPrec) {
    if (!parseUnary(Out))
      return false;
    while (true) {
      int Prec = precedenceOf(peek().Kind);
      if (Prec < MinPrec || Prec == 0)
        return true;
      std::string Op = advance().Text;
      std::unique_ptr<AstExpr> Rhs;
      if (!parseBinary(Rhs, Prec + 1))
        return false;
      auto Node = std::make_unique<AstExpr>();
      Node->NodeKind = AstExpr::Kind::Binary;
      Node->Op = std::move(Op);
      Node->Lhs = std::move(Out);
      Node->Rhs = std::move(Rhs);
      Out = std::move(Node);
    }
  }

  bool parseUnary(std::unique_ptr<AstExpr> &Out) {
    if (at(TokenKind::Not) || at(TokenKind::Minus)) {
      std::string Op = advance().Text;
      std::unique_ptr<AstExpr> Operand;
      if (!parseUnary(Operand))
        return false;
      auto Node = std::make_unique<AstExpr>();
      Node->NodeKind = AstExpr::Kind::Unary;
      Node->Op = std::move(Op);
      Node->Lhs = std::move(Operand);
      Out = std::move(Node);
      return true;
    }
    return parsePrimary(Out);
  }

  bool parsePrimary(std::unique_ptr<AstExpr> &Out) {
    if (at(TokenKind::Integer)) {
      auto Node = std::make_unique<AstExpr>();
      Node->NodeKind = AstExpr::Kind::Integer;
      Node->IntValue = advance().IntValue;
      Out = std::move(Node);
      return true;
    }
    if (at(TokenKind::Ident)) {
      auto Node = std::make_unique<AstExpr>();
      Node->NodeKind = AstExpr::Kind::Var;
      Node->Name = advance().Text;
      Out = std::move(Node);
      return true;
    }
    if (at(TokenKind::LParen)) {
      advance();
      if (!parseExpr(Out))
        return false;
      return expect(TokenKind::RParen, "')'");
    }
    return fail("expected expression");
  }

  std::vector<Token> Tokens;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool twpp::parseProgram(const std::string &Source, AstProgram &Program,
                        std::string &Error) {
  Program = AstProgram();
  std::vector<Token> Tokens;
  if (!tokenize(Source, Tokens, Error))
    return false;
  Parser P(std::move(Tokens), Error);
  return P.run(Program);
}
