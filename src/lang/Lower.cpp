//===- lang/Lower.cpp - AST to IR lowering ---------------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"

#include "ir/IrBuilder.h"
#include "lang/Parser.h"

#include <unordered_map>

using namespace twpp;

namespace {

/// Lowers one function body; shared lookup tables live in ProgramLowering.
class FunctionLowering {
public:
  FunctionLowering(FunctionBuilder &Builder,
                   const std::unordered_map<std::string, FunctionId> &FnIds,
                   const std::unordered_map<std::string, size_t> &FnArity,
                   std::string &Error)
      : Builder(Builder), FnIds(FnIds), FnArity(FnArity), Error(Error) {}

  bool run(const AstFunction &Fn) {
    for (const std::string &Param : Fn.Params)
      Builder.param(Param);
    BlockId Entry = Builder.newBlock();
    BlockId End = 0;
    if (!lowerBlock(Fn.Body, Entry, End))
      return false;
    if (End != 0)
      Builder.ret(End);
    return true;
  }

private:
  bool fail(uint32_t Line, const std::string &Message) {
    Error = "line " + std::to_string(Line) + ": " + Message;
    return false;
  }

  bool lowerExpr(const AstExpr &E, uint32_t &Out, uint32_t Line) {
    switch (E.NodeKind) {
    case AstExpr::Kind::Integer:
      Out = Builder.constant(E.IntValue);
      return true;
    case AstExpr::Kind::Var:
      Out = Builder.varRef(Builder.var(E.Name));
      return true;
    case AstExpr::Kind::Unary: {
      uint32_t Operand;
      if (!lowerExpr(*E.Lhs, Operand, Line))
        return false;
      Out = Builder.unary(E.Op == "!" ? ExprKind::Not : ExprKind::Neg,
                          Operand);
      return true;
    }
    case AstExpr::Kind::Binary: {
      uint32_t Lhs, Rhs;
      if (!lowerExpr(*E.Lhs, Lhs, Line) || !lowerExpr(*E.Rhs, Rhs, Line))
        return false;
      ExprKind Kind;
      if (E.Op == "+")
        Kind = ExprKind::Add;
      else if (E.Op == "-")
        Kind = ExprKind::Sub;
      else if (E.Op == "*")
        Kind = ExprKind::Mul;
      else if (E.Op == "/")
        Kind = ExprKind::Div;
      else if (E.Op == "%")
        Kind = ExprKind::Mod;
      else if (E.Op == "<")
        Kind = ExprKind::Lt;
      else if (E.Op == "<=")
        Kind = ExprKind::Le;
      else if (E.Op == ">")
        Kind = ExprKind::Gt;
      else if (E.Op == ">=")
        Kind = ExprKind::Ge;
      else if (E.Op == "==")
        Kind = ExprKind::Eq;
      else if (E.Op == "!=")
        Kind = ExprKind::Ne;
      else if (E.Op == "&&")
        Kind = ExprKind::And;
      else if (E.Op == "||")
        Kind = ExprKind::Or;
      else
        return fail(Line, "unknown operator '" + E.Op + "'");
      Out = Builder.binary(Kind, Lhs, Rhs);
      return true;
    }
    }
    return fail(Line, "malformed expression");
  }

  /// Lowers \p Block starting in \p Current. \p End receives the block
  /// where control continues, or 0 when every path returned.
  bool lowerBlock(const AstBlock &Block, BlockId Current, BlockId &End) {
    for (const auto &StmtPtr : Block) {
      const AstStmt &S = *StmtPtr;
      if (Current == 0)
        return fail(S.Line, "unreachable statement after 'return'");
      switch (S.NodeKind) {
      case AstStmt::Kind::Assign: {
        uint32_t Value;
        if (!lowerExpr(*S.Value, Value, S.Line))
          return false;
        Builder.assign(Current, Builder.var(S.Target), Value);
        break;
      }
      case AstStmt::Kind::Read:
        Builder.read(Current, Builder.var(S.Target));
        break;
      case AstStmt::Kind::Print: {
        uint32_t Value;
        if (!lowerExpr(*S.Value, Value, S.Line))
          return false;
        Builder.print(Current, Value);
        break;
      }
      case AstStmt::Kind::Call: {
        auto IdIt = FnIds.find(S.Callee);
        if (IdIt == FnIds.end())
          return fail(S.Line, "call to undefined function '" + S.Callee + "'");
        if (FnArity.at(S.Callee) != S.Args.size())
          return fail(S.Line, "wrong argument count for '" + S.Callee + "'");
        std::vector<uint32_t> Args;
        for (const auto &Arg : S.Args) {
          uint32_t Value;
          if (!lowerExpr(*Arg, Value, S.Line))
            return false;
          Args.push_back(Value);
        }
        VarId Target = S.HasValue ? Builder.var(S.Target) : NoVar;
        Builder.call(Current, IdIt->second, std::move(Args), Target);
        break;
      }
      case AstStmt::Kind::If: {
        uint32_t Cond;
        if (!lowerExpr(*S.Value, Cond, S.Line))
          return false;
        BlockId ThenEntry = Builder.newBlock();
        BlockId ThenEnd = 0;
        if (!lowerBlock(S.Then, ThenEntry, ThenEnd))
          return false;
        BlockId ElseEntry = 0, ElseEnd = 0;
        if (!S.Else.empty()) {
          ElseEntry = Builder.newBlock();
          if (!lowerBlock(S.Else, ElseEntry, ElseEnd))
            return false;
        }
        if (ThenEnd == 0 && !S.Else.empty() && ElseEnd == 0) {
          // Both arms return; no join block.
          Builder.branch(Current, Cond, ThenEntry, ElseEntry);
          Current = 0;
          break;
        }
        BlockId Join = Builder.newBlock();
        Builder.branch(Current, Cond, ThenEntry,
                       ElseEntry != 0 ? ElseEntry : Join);
        if (ThenEnd != 0)
          Builder.jump(ThenEnd, Join);
        if (ElseEnd != 0)
          Builder.jump(ElseEnd, Join);
        Current = Join;
        break;
      }
      case AstStmt::Kind::While: {
        BlockId Header = Builder.newBlock();
        Builder.jump(Current, Header);
        uint32_t Cond;
        if (!lowerExpr(*S.Value, Cond, S.Line))
          return false;
        // The exit block is created before the body so break statements
        // inside the body have a target.
        BlockId Body = Builder.newBlock();
        BlockId Exit = Builder.newBlock();
        Builder.branch(Header, Cond, Body, Exit);
        Loops.push_back({Header, Exit});
        BlockId BodyEnd = 0;
        bool Ok = lowerBlock(S.Then, Body, BodyEnd);
        Loops.pop_back();
        if (!Ok)
          return false;
        if (BodyEnd != 0)
          Builder.jump(BodyEnd, Header);
        Current = Exit;
        break;
      }
      case AstStmt::Kind::Break: {
        if (Loops.empty())
          return fail(S.Line, "'break' outside of a loop");
        Builder.jump(Current, Loops.back().Exit);
        Current = 0;
        break;
      }
      case AstStmt::Kind::Continue: {
        if (Loops.empty())
          return fail(S.Line, "'continue' outside of a loop");
        Builder.jump(Current, Loops.back().Header);
        Current = 0;
        break;
      }
      case AstStmt::Kind::Return: {
        if (S.HasValue) {
          uint32_t Value;
          if (!lowerExpr(*S.Value, Value, S.Line))
            return false;
          Builder.retValue(Current, Value);
        } else {
          Builder.ret(Current);
        }
        Current = 0;
        break;
      }
      }
    }
    End = Current;
    return true;
  }

  /// Enclosing loops, innermost last (targets for break/continue).
  struct LoopContext {
    BlockId Header;
    BlockId Exit;
  };

  FunctionBuilder &Builder;
  const std::unordered_map<std::string, FunctionId> &FnIds;
  const std::unordered_map<std::string, size_t> &FnArity;
  std::string &Error;
  std::vector<LoopContext> Loops;
};

} // namespace

bool twpp::lowerProgram(const AstProgram &Program, Module &M,
                        std::string &Error) {
  M = Module();
  std::unordered_map<std::string, FunctionId> FnIds;
  std::unordered_map<std::string, size_t> FnArity;
  for (const AstFunction &Fn : Program.Functions) {
    if (FnIds.count(Fn.Name)) {
      Error = "line " + std::to_string(Fn.Line) + ": duplicate function '" +
              Fn.Name + "'";
      return false;
    }
    FnIds.emplace(Fn.Name, static_cast<FunctionId>(FnIds.size()));
    FnArity.emplace(Fn.Name, Fn.Params.size());
  }

  for (const AstFunction &Fn : Program.Functions) {
    FunctionBuilder Builder(M, Fn.Name);
    FunctionLowering Lowering(Builder, FnIds, FnArity, Error);
    if (!Lowering.run(Fn))
      return false;
  }

  auto MainIt = FnIds.find("main");
  M.MainId = MainIt != FnIds.end() ? MainIt->second : 0;
  if (!verifyModule(M)) {
    Error = "internal error: lowered module failed verification";
    return false;
  }
  return true;
}

bool twpp::compileProgram(const std::string &Source, Module &M,
                          std::string &Error) {
  AstProgram Program;
  if (!parseProgram(Source, Program, Error))
    return false;
  return lowerProgram(Program, M, Error);
}
