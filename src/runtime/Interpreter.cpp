//===- runtime/Interpreter.cpp - Tracing IR interpreter --------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include <unordered_map>

using namespace twpp;

struct Interpreter::Frame {
  std::unordered_map<VarId, int64_t> Vars;

  int64_t get(VarId Var) const {
    auto It = Vars.find(Var);
    return It == Vars.end() ? 0 : It->second;
  }
  void set(VarId Var, int64_t Value) { Vars[Var] = Value; }
};

int64_t Interpreter::evalExpr(const Function &F, const Frame &Env,
                              uint32_t ExprIndex) {
  const Expr &E = F.Exprs[ExprIndex];
  switch (E.Kind) {
  case ExprKind::Const:
    return E.Value;
  case ExprKind::Var:
    return Env.get(E.Var);
  case ExprKind::Not:
    return evalExpr(F, Env, E.Lhs) == 0 ? 1 : 0;
  case ExprKind::Neg:
    return -evalExpr(F, Env, E.Lhs);
  default:
    break;
  }
  int64_t L = evalExpr(F, Env, E.Lhs);
  int64_t R = evalExpr(F, Env, E.Rhs);
  switch (E.Kind) {
  case ExprKind::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(L) +
                                static_cast<uint64_t>(R));
  case ExprKind::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(L) -
                                static_cast<uint64_t>(R));
  case ExprKind::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(L) *
                                static_cast<uint64_t>(R));
  case ExprKind::Div:
    return R == 0 ? 0 : L / R;
  case ExprKind::Mod:
    return R == 0 ? 0 : L % R;
  case ExprKind::Lt:
    return L < R;
  case ExprKind::Le:
    return L <= R;
  case ExprKind::Gt:
    return L > R;
  case ExprKind::Ge:
    return L >= R;
  case ExprKind::Eq:
    return L == R;
  case ExprKind::Ne:
    return L != R;
  case ExprKind::And:
    return (L != 0 && R != 0) ? 1 : 0;
  case ExprKind::Or:
    return (L != 0 || R != 0) ? 1 : 0;
  default:
    return 0;
  }
}

bool Interpreter::runFunction(const Function &F,
                              const std::vector<int64_t> &Args,
                              uint32_t Depth, int64_t &ReturnValue,
                              ExecutionResult &Result) {
  if (Depth > DepthLimit) {
    Result.Error = "call depth limit exceeded in '" + F.Name + "'";
    return false;
  }
  // Every early exit below must balance this with onExit so that even an
  // aborted run yields a well-formed (reconstructible) trace.
  Sink.onEnter(F.Id);
  Frame Env;
  for (size_t I = 0; I < F.Params.size(); ++I)
    Env.set(F.Params[I], I < Args.size() ? Args[I] : 0);

  BlockId Current = 1;
  while (true) {
    if (++StepsUsed > StepLimit) {
      Result.Error = "step limit exceeded in '" + F.Name + "'";
      Sink.onExit();
      return false;
    }
    Sink.onBlock(Current);
    ++Result.BlocksExecuted;
    const BasicBlock &Block = F.block(Current);

    for (const Stmt &S : Block.Stmts) {
      switch (S.StmtKind) {
      case Stmt::Kind::Assign:
        Env.set(S.Target, evalExpr(F, Env, S.ExprIndex));
        break;
      case Stmt::Kind::Read: {
        int64_t Value = 0;
        if (Inputs && InputCursor < Inputs->size())
          Value = (*Inputs)[InputCursor++];
        Env.set(S.Target, Value);
        break;
      }
      case Stmt::Kind::Print:
        Result.Output.push_back(evalExpr(F, Env, S.ExprIndex));
        break;
      case Stmt::Kind::Call: {
        std::vector<int64_t> CallArgs;
        CallArgs.reserve(S.Args.size());
        for (uint32_t Arg : S.Args)
          CallArgs.push_back(evalExpr(F, Env, Arg));
        int64_t Value = 0;
        if (!runFunction(M.Functions[S.Callee], CallArgs, Depth + 1, Value,
                         Result)) {
          Sink.onExit();
          return false;
        }
        if (S.Target != NoVar)
          Env.set(S.Target, Value);
        break;
      }
      }
    }

    switch (Block.Term) {
    case BasicBlock::Terminator::Jump:
      Current = Block.TrueSucc;
      break;
    case BasicBlock::Terminator::Branch:
      Current = evalExpr(F, Env, Block.CondExpr) != 0 ? Block.TrueSucc
                                                      : Block.FalseSucc;
      break;
    case BasicBlock::Terminator::Return:
      ReturnValue =
          Block.HasRetValue ? evalExpr(F, Env, Block.RetExpr) : 0;
      Sink.onExit();
      return true;
    }
  }
}

ExecutionResult Interpreter::run(const std::vector<int64_t> &RunInputs) {
  ExecutionResult Result;
  Inputs = &RunInputs;
  InputCursor = 0;
  StepsUsed = 0;
  int64_t ReturnValue = 0;
  Result.Completed = runFunction(M.Functions[M.MainId], {}, 0, ReturnValue,
                                 Result);
  Inputs = nullptr;
  return Result;
}

RawTrace twpp::traceExecution(const Module &M,
                              const std::vector<int64_t> &Inputs,
                              ExecutionResult &Result) {
  CollectingSink Sink(static_cast<uint32_t>(M.Functions.size()));
  Interpreter Interp(M, Sink);
  Result = Interp.run(Inputs);
  return Sink.take();
}
