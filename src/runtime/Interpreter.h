//===- runtime/Interpreter.h - Tracing IR interpreter -----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an ir::Module and emits the whole program path through a
/// TraceSink — the stand-in for the paper's Trimaran-instrumented binaries:
/// every function entry, basic block execution, and function exit becomes a
/// trace event.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_RUNTIME_INTERPRETER_H
#define TWPP_RUNTIME_INTERPRETER_H

#include "ir/Ir.h"
#include "trace/Events.h"

#include <cstdint>
#include <string>
#include <vector>

namespace twpp {

/// Outcome of one traced execution.
struct ExecutionResult {
  bool Completed = false;       ///< False on step/depth limit or error.
  std::string Error;            ///< Diagnostic when !Completed.
  std::vector<int64_t> Output;  ///< Values produced by 'print'.
  uint64_t BlocksExecuted = 0;  ///< Dynamic block count.
};

/// Tracing interpreter. Integer-only semantics; division and modulo by
/// zero yield 0 so synthetic workloads cannot fault.
class Interpreter {
public:
  /// \p Sink receives the WPP events of each run.
  Interpreter(const Module &M, TraceSink &Sink) : M(M), Sink(Sink) {}

  /// Caps on runaway programs (defaults generous for the workloads).
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }
  void setDepthLimit(uint32_t Limit) { DepthLimit = Limit; }

  /// Runs main with \p Inputs feeding 'read' statements (exhausted reads
  /// yield 0).
  ExecutionResult run(const std::vector<int64_t> &Inputs);

private:
  struct Frame;

  /// Executes one call; returns false when a limit was hit (result error
  /// already set).
  bool runFunction(const Function &F, const std::vector<int64_t> &Args,
                   uint32_t Depth, int64_t &ReturnValue,
                   ExecutionResult &Result);

  int64_t evalExpr(const Function &F, const Frame &Env, uint32_t ExprIndex);

  const Module &M;
  TraceSink &Sink;
  uint64_t StepLimit = 50'000'000;
  uint32_t DepthLimit = 200;
  uint64_t StepsUsed = 0;
  size_t InputCursor = 0;
  const std::vector<int64_t> *Inputs = nullptr;
};

/// Convenience: compile-free helper that runs \p M and collects the raw
/// WPP in one call.
RawTrace traceExecution(const Module &M, const std::vector<int64_t> &Inputs,
                        ExecutionResult &Result);

} // namespace twpp

#endif // TWPP_RUNTIME_INTERPRETER_H
