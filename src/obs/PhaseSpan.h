//===- obs/PhaseSpan.h - RAII hierarchical phase timers ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wall-time spans over support/Timer.h. A span covers one pipeline
/// phase; spans nest, and the registry accumulates per-path call counts,
/// total time and self time (total minus child spans), so a run of the
/// full pipeline yields a breakdown like
///
///   compact            1x   12.3ms   (self 0.1ms)
///   compact/partition  1x    4.0ms
///   compact/dbb        1x    5.2ms
///   compact/twpp       1x    3.0ms
///
/// When collection is disabled a span costs one relaxed atomic load and
/// records nothing.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_PHASESPAN_H
#define TWPP_OBS_PHASESPAN_H

#include "obs/Metrics.h"
#include "support/Timer.h"

#include <string>
#include <string_view>

namespace twpp::obs {

/// Times the enclosing scope and records it under the hierarchical path
/// formed by every live enclosing span on this thread.
class PhaseSpan {
public:
  explicit PhaseSpan(std::string_view Name) {
    if (!enabled())
      return;
    Active = true;
    Parent = currentSpan();
    Path = Parent ? Parent->Path + "/" + std::string(Name)
                  : std::string(Name);
    currentSpan() = this;
    Watch.reset();
  }

  ~PhaseSpan() {
    if (!Active)
      return;
    double TotalUs = Watch.elapsedUs();
    metrics().recordSpan(Path, TotalUs, TotalUs - ChildUs);
    if (Parent)
      Parent->ChildUs += TotalUs;
    currentSpan() = Parent;
  }

  PhaseSpan(const PhaseSpan &) = delete;
  PhaseSpan &operator=(const PhaseSpan &) = delete;

  /// Full hierarchical path ("compact/dbb"); empty when inactive.
  const std::string &path() const { return Path; }

private:
  static PhaseSpan *&currentSpan() {
    thread_local PhaseSpan *Top = nullptr;
    return Top;
  }

  Stopwatch Watch;
  std::string Path;
  PhaseSpan *Parent = nullptr;
  double ChildUs = 0;
  bool Active = false;
};

} // namespace twpp::obs

#endif // TWPP_OBS_PHASESPAN_H
