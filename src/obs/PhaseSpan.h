//===- obs/PhaseSpan.h - RAII hierarchical phase timers ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wall-time spans over support/Timer.h. A span covers one pipeline
/// phase; spans nest, and the registry accumulates per-path call counts,
/// total time and self time (total minus child spans), so a run of the
/// full pipeline yields a breakdown like
///
///   compact            1x   12.3ms   (self 0.1ms)
///   compact/partition  1x    4.0ms
///   compact/dbb        1x    5.2ms
///   compact/twpp       1x    3.0ms
///
/// When event tracing (obs/Trace.h) is on, every span additionally emits
/// a Begin/End pair into the calling thread's ring, so the same
/// instrumentation feeds both the aggregate span table and the timeline.
/// Spans may carry one numeric arg ("function": 12) that surfaces in the
/// exported trace.
///
/// Tasks running on pool workers lose the enqueuing thread's span stack;
/// ScopedRoot re-installs the captured path as the worker-side root so a
/// task's spans aggregate under "compact/dbb/pool" instead of a bare
/// "pool" (see support/ThreadPool.cpp).
///
/// When both collection and tracing are disabled a span costs two
/// relaxed atomic loads and records nothing.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_PHASESPAN_H
#define TWPP_OBS_PHASESPAN_H

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Timer.h"

#include <string>
#include <string_view>
#include <utility>

namespace twpp::obs {

/// Times the enclosing scope and records it under the hierarchical path
/// formed by every live enclosing span on this thread.
class PhaseSpan {
public:
  explicit PhaseSpan(std::string_view Name) : PhaseSpan(Name, nullptr, 0) {}

  /// Span with one numeric arg, carried into the trace export only (the
  /// aggregate span table keys by path, which must stay low-cardinality).
  PhaseSpan(std::string_view Name, const char *ArgName, int64_t ArgValue) {
    bool Metrics = enabled();
    Tracing = tracingEnabled();
    if (!Metrics && !Tracing)
      return;
    Active = true;
    RecordMetrics = Metrics;
    Parent = currentSpan();
    if (Parent)
      Path = Parent->Path + "/" + std::string(Name);
    else if (externalRoot().empty())
      Path = std::string(Name);
    else
      Path = externalRoot() + "/" + std::string(Name);
    currentSpan() = this;
    if (Tracing)
      traceBegin(Name, ArgName, ArgValue);
    Watch.reset();
  }

  ~PhaseSpan() {
    if (!Active)
      return;
    double TotalUs = Watch.elapsedUs();
    if (Tracing)
      traceEnd();
    if (RecordMetrics)
      metrics().recordSpan(Path, TotalUs, TotalUs - ChildUs);
    if (Parent)
      Parent->ChildUs += TotalUs;
    currentSpan() = Parent;
  }

  PhaseSpan(const PhaseSpan &) = delete;
  PhaseSpan &operator=(const PhaseSpan &) = delete;

  /// Full hierarchical path ("compact/dbb"); empty when inactive.
  const std::string &path() const { return Path; }

  /// The path of the innermost live span on this thread (the external
  /// root when none is open) — what ThreadPool::run captures to parent a
  /// task's worker-side spans.
  static std::string currentPath() {
    if (PhaseSpan *Top = currentSpan())
      return Top->Path;
    return externalRoot();
  }

  /// Installs \p Root as this thread's span-path root for the guard's
  /// lifetime: spans opened with no live parent prefix their path with
  /// it. Used by pool workers to nest task spans under the enqueuing
  /// phase ("compact/dbb"). Nesting guards restores the previous root.
  class ScopedRoot {
  public:
    explicit ScopedRoot(std::string Root)
        : Saved(std::exchange(externalRoot(), std::move(Root))) {}
    ~ScopedRoot() { externalRoot() = std::move(Saved); }
    ScopedRoot(const ScopedRoot &) = delete;
    ScopedRoot &operator=(const ScopedRoot &) = delete;

  private:
    std::string Saved;
  };

private:
  static PhaseSpan *&currentSpan() {
    thread_local PhaseSpan *Top = nullptr;
    return Top;
  }

  static std::string &externalRoot() {
    thread_local std::string Root;
    return Root;
  }

  Stopwatch Watch;
  std::string Path;
  PhaseSpan *Parent = nullptr;
  double ChildUs = 0;
  bool Active = false;
  bool RecordMetrics = false;
  bool Tracing = false;
};

} // namespace twpp::obs

#endif // TWPP_OBS_PHASESPAN_H
