//===- obs/Trace.cpp - Chrome trace-event JSON exporter -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"
#include "support/FileIO.h"

#include <cinttypes>
#include <cstdio>

using namespace twpp;
using namespace twpp::obs;

namespace {

/// Microseconds with sub-us precision, the unit chrome://tracing expects
/// in "ts".
std::string tsUs(uint64_t TsNs, uint64_t BaseNs) {
  char Buffer[48];
  uint64_t Delta = TsNs >= BaseNs ? TsNs - BaseNs : 0;
  std::snprintf(Buffer, sizeof(Buffer), "%" PRIu64 ".%03u", Delta / 1000,
                static_cast<unsigned>(Delta % 1000));
  return Buffer;
}

/// The fields every event shares. \p Ph is the trace-event phase letter.
std::string eventHead(char Ph, uint32_t Tid, uint64_t TsNs, uint64_t BaseNs) {
  std::string Out = "{\"ph\": \"";
  Out += Ph;
  Out += "\", \"pid\": 1, \"tid\": " + std::to_string(Tid) +
         ", \"ts\": " + tsUs(TsNs, BaseNs);
  return Out;
}

void appendEvent(std::string &Out, bool &First, std::string Event) {
  Out += First ? "\n    " : ",\n    ";
  Out += Event;
  First = false;
}

} // namespace

std::string obs::exportTraceJson(const TraceRecorder &Recorder) {
  std::vector<TraceRecorder::ThreadSnapshot> Threads = Recorder.snapshot();

  // Normalize timestamps to the earliest surviving event so the viewer
  // opens at t=0 instead of hours of steady-clock uptime.
  uint64_t BaseNs = UINT64_MAX;
  for (const auto &T : Threads)
    for (const TraceRecord &R : T.Records)
      if (R.TsNs < BaseNs)
        BaseNs = R.TsNs;
  if (BaseNs == UINT64_MAX)
    BaseNs = 0;

  std::string Out = "{\n  \"traceEvents\": [";
  bool First = true;

  std::string ProcessMeta =
      "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"ts\": 0, "
      "\"name\": \"process_name\", \"args\": {\"name\": \"twpp\"}}";
  appendEvent(Out, First, std::move(ProcessMeta));

  uint64_t TotalDropped = 0;
  for (const auto &T : Threads) {
    TotalDropped += T.Dropped;
    appendEvent(Out, First,
                "{\"ph\": \"M\", \"pid\": 1, \"tid\": " +
                    std::to_string(T.Tid) + ", \"ts\": 0, "
                    "\"name\": \"thread_name\", \"args\": {\"name\": " +
                    jsonStringLiteral(T.Name) + "}}");

    // Re-balance B/E against ring wraparound: an E whose B was
    // overwritten is dropped, a B still open at the window's end gets a
    // synthetic E at the thread's last timestamp, so every exported tid
    // carries balanced, properly nested slices.
    uint64_t Depth = 0;
    uint64_t LastTs = BaseNs;
    for (const TraceRecord &R : T.Records) {
      LastTs = R.TsNs;
      switch (R.K) {
      case TraceRecord::Kind::Begin: {
        ++Depth;
        std::string Event = eventHead('B', T.Tid, R.TsNs, BaseNs);
        Event += ", \"name\": " + jsonStringLiteral(R.Name);
        if (R.HasArg)
          Event += ", \"args\": {" + jsonStringLiteral(R.ArgName) + ": " +
                   std::to_string(R.Value) + "}";
        Event += "}";
        appendEvent(Out, First, std::move(Event));
        break;
      }
      case TraceRecord::Kind::End: {
        if (Depth == 0)
          break; // Opening B lost to wraparound.
        --Depth;
        appendEvent(Out, First, eventHead('E', T.Tid, R.TsNs, BaseNs) + "}");
        break;
      }
      case TraceRecord::Kind::Instant: {
        std::string Event = eventHead('i', T.Tid, R.TsNs, BaseNs);
        Event += ", \"name\": " + jsonStringLiteral(R.Name) + ", \"s\": \"t\"";
        if (R.HasArg)
          Event += ", \"args\": {" + jsonStringLiteral(R.ArgName) + ": " +
                   std::to_string(R.Value) + "}";
        Event += "}";
        appendEvent(Out, First, std::move(Event));
        break;
      }
      case TraceRecord::Kind::Counter: {
        std::string Event = eventHead('C', T.Tid, R.TsNs, BaseNs);
        Event += ", \"name\": " + jsonStringLiteral(R.Name) +
                 ", \"args\": {\"value\": " + std::to_string(R.Value) + "}";
        Event += "}";
        appendEvent(Out, First, std::move(Event));
        break;
      }
      case TraceRecord::Kind::FlowStart: {
        std::string Event = eventHead('s', T.Tid, R.TsNs, BaseNs);
        Event += ", \"name\": " + jsonStringLiteral(R.Name) +
                 ", \"cat\": \"flow\", \"id\": " + std::to_string(R.FlowId);
        Event += "}";
        appendEvent(Out, First, std::move(Event));
        break;
      }
      case TraceRecord::Kind::FlowFinish: {
        std::string Event = eventHead('f', T.Tid, R.TsNs, BaseNs);
        Event += ", \"name\": " + jsonStringLiteral(R.Name) +
                 ", \"cat\": \"flow\", \"id\": " + std::to_string(R.FlowId) +
                 ", \"bp\": \"e\"";
        Event += "}";
        appendEvent(Out, First, std::move(Event));
        break;
      }
      }
    }
    for (; Depth > 0; --Depth)
      appendEvent(Out, First, eventHead('E', T.Tid, LastTs, BaseNs) + "}");
  }

  Out += "\n  ],\n  \"displayTimeUnit\": \"ms\",\n"
         "  \"otherData\": {\"schema\": \"twpp-trace-v1\", "
         "\"dropped_events\": " +
         std::to_string(TotalDropped) + "}\n}\n";
  return Out;
}

bool obs::writeTraceJsonFile(const std::string &Path,
                             const TraceRecorder &Recorder) {
  std::string Json = exportTraceJson(Recorder);
  return writeFileBytes(Path, std::vector<uint8_t>(Json.begin(), Json.end()))
      .ok();
}
