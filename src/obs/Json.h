//===- obs/Json.h - Shared JSON emission helpers ----------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The string-escape and number-formatting helpers shared by the metrics
/// exporters (obs/Export.cpp) and the trace exporter (obs/Trace.cpp), so
/// a metric label or span arg containing quotes, backslashes or control
/// characters can never desynchronize one exporter from the other.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_JSON_H
#define TWPP_OBS_JSON_H

#include <cstdio>
#include <string>
#include <string_view>

namespace twpp::obs {

/// \returns \p Raw as a quoted JSON string literal with `"`, `\` and
/// control characters escaped, so exporters emit valid JSON for any
/// label.
inline std::string jsonStringLiteral(std::string_view Raw) {
  std::string Out = "\"";
  for (char C : Raw) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buffer[8];
      std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(C)));
      Out += Buffer;
    } else {
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

/// JSON numbers must not be NaN/Inf; a defensive zero keeps the output
/// parseable no matter what the stats produce.
inline std::string jsonNumber(double Value) {
  if (Value != Value || Value > 1e300 || Value < -1e300)
    return "0";
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.6g", Value);
  return Buffer;
}

} // namespace twpp::obs

#endif // TWPP_OBS_JSON_H
