//===- obs/SpanRegistry.h - Lock-free span-path interner --------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free table interning span paths ("compact/dbb/pool") as dense
/// twpp::FunctionId values, so the self-profiler (obs/SelfProfile.h) can
/// treat each distinct span path as one "function" of the pipeline's own
/// execution and feed the ordinary TWPP compaction machinery with it.
///
/// The table is fixed-capacity open addressing over inline keys: intern()
/// takes no locks, allocates nothing, and is safe to call from any number
/// of threads concurrently — the slot protocol is claim-by-CAS then
/// publish-by-store, with readers spinning through the narrow Busy window.
/// Ids are dense (0..size()-1) in claim order. Id 0 is reserved at
/// construction for the "(overflow)" path, which intern() returns when the
/// table is full or a path exceeds the inline key capacity; overflowCount()
/// says how often that happened, so a too-small registry degrades into one
/// merged pseudo-function instead of losing spans.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_SPANREGISTRY_H
#define TWPP_OBS_SPANREGISTRY_H

#include "trace/Events.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace twpp::obs {

class SpanRegistry {
public:
  /// The id every un-internable path collapses onto ("(overflow)").
  static constexpr FunctionId OverflowId = 0;

  /// Longest internable path, including the NUL. PhaseSpan paths are a
  /// handful of components of <=47 chars each (TraceRecord::NameCapacity
  /// truncates the leaf names), so 192 leaves generous headroom.
  static constexpr size_t KeyCapacity = 192;

  /// \p Capacity is rounded up to a power of two; the table holds at most
  /// Capacity distinct paths (one slot is spent on "(overflow)").
  explicit SpanRegistry(size_t Capacity = 1 << 12);

  SpanRegistry(const SpanRegistry &) = delete;
  SpanRegistry &operator=(const SpanRegistry &) = delete;

  /// Interns \p Path, returning its dense id — the same id for the same
  /// path no matter which thread asks first. Returns OverflowId (and
  /// bumps overflowCount()) when the table is full or the path does not
  /// fit a slot key.
  FunctionId intern(std::string_view Path);

  /// Distinct ids handed out so far, including the reserved overflow id —
  /// i.e. the FunctionCount of the self-profile trace.
  uint32_t size() const { return Next.load(std::memory_order_acquire); }

  /// Paths that could not be interned (returned OverflowId).
  uint64_t overflowCount() const {
    return Overflows.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return Mask + 1; }

  /// Paths indexed by id (index 0 is "(overflow)"). Safe concurrently
  /// with intern(): only slots already published are included.
  std::vector<std::string> paths() const;

private:
  enum : uint8_t { Empty = 0, Busy = 1, Ready = 2 };

  struct Slot {
    std::atomic<uint8_t> State{Empty};
    FunctionId Id = 0;
    char Key[KeyCapacity] = {};
  };

  std::unique_ptr<Slot[]> Slots;
  size_t Mask = 0;
  std::atomic<uint32_t> Next{0};
  std::atomic<uint64_t> Overflows{0};
};

} // namespace twpp::obs

#endif // TWPP_OBS_SPANREGISTRY_H
