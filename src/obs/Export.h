//===- obs/Export.h - Metric exporters --------------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three views of a MetricsRegistry snapshot:
///
///  * renderMetricsTable — human-readable tables (support/TablePrinter),
///    printed by `twpp_tool ... --metrics-table` and test diagnostics.
///  * exportMetricsJson / exportMetricsJsonLines — machine-readable form.
///    The single-object export backs `twpp_tool --metrics-out`; the
///    line-per-record form is what the BENCH_*.json perf trajectory files
///    accumulate (one labeled record per metric per bench checkpoint).
///  * exportMetricsProm — Prometheus text exposition
///    (`twpp_tool --metrics-format=prom`), for scrape endpoints.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_EXPORT_H
#define TWPP_OBS_EXPORT_H

#include "obs/Metrics.h"

#include <string>

namespace twpp::obs {

/// Renders every counter, gauge, histogram and span as aligned tables.
std::string renderMetricsTable(const MetricsRegistry &Registry);

/// One JSON object: {"schema": "twpp-metrics-v1", "counters": {...},
/// "gauges": {...}, "histograms": {...}, "spans": {...}}.
std::string exportMetricsJson(const MetricsRegistry &Registry);

/// JSON-lines form: one {"label", "kind", "name", ...} object per line for
/// every metric in the registry, labeled \p Label.
std::string exportMetricsJsonLines(const MetricsRegistry &Registry,
                                   const std::string &Label);

/// Writes exportMetricsJson(\p Registry) to \p Path. \returns true on
/// success.
bool writeMetricsJsonFile(const std::string &Path,
                          const MetricsRegistry &Registry);

/// Prometheus text-exposition form (`--metrics-format=prom`), groundwork
/// for the archive-daemon's scrape endpoint: counters/gauges map to
/// twpp_-prefixed series, histograms to the cumulative le-bucket
/// convention, and phase spans to path-labelled series with label values
/// escaped per the exposition spec.
std::string exportMetricsProm(const MetricsRegistry &Registry);

/// Writes exportMetricsProm(\p Registry) to \p Path. \returns true on
/// success.
bool writeMetricsPromFile(const std::string &Path,
                          const MetricsRegistry &Registry);

} // namespace twpp::obs

#endif // TWPP_OBS_EXPORT_H
