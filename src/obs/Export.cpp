//===- obs/Export.cpp - Metric exporters ----------------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include "obs/Json.h"
#include "obs/Names.h"
#include "support/FileIO.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <cinttypes>
#include <cstdio>

using namespace twpp;
using namespace twpp::obs;

namespace {

std::string u64(uint64_t Value) { return std::to_string(Value); }

std::string num(double Value) { return jsonNumber(Value); }

/// Metric names are dot/slash identifiers, but quotes/backslashes in a
/// label must still round-trip; the escaper is shared with the trace
/// exporter (obs/Json.h) so the two cannot drift apart.
std::string jsonString(const std::string &Raw) {
  return jsonStringLiteral(Raw);
}

std::string statsJson(const RunningStats &S) {
  return "{\"count\": " + u64(S.count()) + ", \"min\": " + num(S.min()) +
         ", \"max\": " + num(S.max()) + ", \"mean\": " + num(S.mean()) +
         ", \"stddev\": " + num(S.stddev()) + ", \"p50\": " + num(S.p50()) +
         ", \"p95\": " + num(S.p95()) + "}";
}

std::string boundsLabel(const std::vector<uint64_t> &Bounds, size_t Bucket) {
  if (Bucket == Bounds.size())
    return "> " + u64(Bounds.empty() ? 0 : Bounds.back());
  return "<= " + u64(Bounds[Bucket]);
}

} // namespace

void names::registerCanonicalMetrics(MetricsRegistry &Registry) {
  for (const char *Name :
       {SequiturSymbols, SequiturRulesCreated, SequiturRulesDeleted,
        SequiturSubstitutions, PoolTasks, PoolSteals, PartitionCalls,
        PartitionBlockEvents,
        PartitionUniqueTraces, DbbChains, DbbLookups, DbbLookupHits,
        TimestampSets, TimestampValues, TimestampRuns, LzwCompressCalls,
        LzwCompressBytesIn, LzwCompressBytesOut, LzwDictEntries,
        LzwDecompressCalls, LzwDecompressBytesIn, LzwDecompressBytesOut,
        ArchiveEncodes, ArchiveIndexReads, ArchiveBlockReads,
        ArchiveBlockBytesRead, ArchiveDcgReads, ArchiveMmapOpens,
        ArchiveMmapBytes, ArchiveMmapFallbacks, VerifyRuns,
        VerifyDiagnostics, VerifyErrors, VerifyWarnings, DataflowQueries,
        DataflowSubqueries, DataflowNodesVisited, DataflowCacheHits,
        DataflowCacheMisses, IoWrites, IoReads, IoAtomicWrites,
        IoWriteRetries, IoWriteFailures, IoShortReads, IoFaultsInjected,
        JournalCheckpoints, JournalCheckpointFailures, JournalBytes,
        JournalResumes, JournalRecordsDropped, StreamDegraded})
    Registry.counter(Name);
  for (const char *Name : {PoolWorkers, PoolQueueDepth, PartitionBytesIn,
                           PartitionBytesOut, DbbBytesIn, DbbBytesOut,
                           TwppBytesIn, TwppBytesOut, ArchiveBytes,
                           StreamStateBytes, ArenaDecodeReservedBytes,
                           MemRssBytes, MemPeakBytes, MemTrackedLiveBytes,
                           MemTrackedPeakBytes, MemAllocs})
    Registry.gauge(Name);
  Registry.histogram(PartitionTraceLength, powerOfTwoBounds(1u << 20));
  Registry.histogram(ArchiveBlockBytes, powerOfTwoBounds(1u << 24));
  Registry.histogram(PoolTaskLatency, powerOfTwoBounds(1u << 20));
}

std::string obs::renderMetricsTable(const MetricsRegistry &Registry) {
  std::string Out;

  TablePrinter Counters("Counters");
  Counters.addRow({"name", "value"});
  for (const auto &[Name, Value] : Registry.counterSnapshot())
    Counters.addRow({Name, u64(Value)});
  Out += Counters.render();
  Out += "\n";

  TablePrinter Gauges("Gauges");
  Gauges.addRow({"name", "value"});
  for (const auto &[Name, Value] : Registry.gaugeSnapshot())
    Gauges.addRow({Name, std::to_string(Value)});
  Out += Gauges.render();
  Out += "\n";

  TablePrinter Histograms("Histograms");
  Histograms.addRow(
      {"name", "count", "min", "mean", "p50", "p95", "max", "stddev"});
  for (const auto &H : Registry.histogramSnapshot())
    Histograms.addRow({H.Name, u64(H.Samples.count()),
                       formatDouble(H.Samples.min(), 1),
                       formatDouble(H.Samples.mean(), 1),
                       formatDouble(H.Samples.p50(), 1),
                       formatDouble(H.Samples.p95(), 1),
                       formatDouble(H.Samples.max(), 1),
                       formatDouble(H.Samples.stddev(), 1)});
  Out += Histograms.render();
  Out += "\n";

  TablePrinter Spans("Phase spans");
  Spans.addRow({"path", "count", "total ms", "self ms", "mean us", "p95 us"});
  for (const auto &S : Registry.spanSnapshot())
    Spans.addRow({S.Path, u64(S.Stats.Count),
                  formatDouble(S.Stats.TotalUs / 1000.0, 3),
                  formatDouble(S.Stats.SelfUs / 1000.0, 3),
                  formatDouble(S.Stats.DurationsUs.mean(), 1),
                  formatDouble(S.Stats.DurationsUs.p95(), 1)});
  Out += Spans.render();
  return Out;
}

std::string obs::exportMetricsJson(const MetricsRegistry &Registry) {
  std::string Out = "{\n  \"schema\": \"twpp-metrics-v1\",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Registry.counterSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(Name) + ": " + u64(Value);
    First = false;
  }
  Out += "\n  },\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Registry.gaugeSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(Name) + ": " + std::to_string(Value);
    First = false;
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &H : Registry.histogramSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(H.Name) + ": {\"bounds\": [";
    for (size_t I = 0; I < H.Bounds.size(); ++I)
      Out += (I ? ", " : "") + u64(H.Bounds[I]);
    Out += "], \"counts\": [";
    for (size_t I = 0; I < H.Counts.size(); ++I)
      Out += (I ? ", " : "") + u64(H.Counts[I]);
    Out += "], \"stats\": " + statsJson(H.Samples) + "}";
    First = false;
  }
  Out += "\n  },\n  \"spans\": {";
  First = true;
  for (const auto &S : Registry.spanSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(S.Path) + ": {\"count\": " +
           u64(S.Stats.Count) + ", \"total_us\": " + num(S.Stats.TotalUs) +
           ", \"self_us\": " + num(S.Stats.SelfUs) +
           ", \"mean_us\": " + num(S.Stats.DurationsUs.mean()) +
           ", \"p95_us\": " + num(S.Stats.DurationsUs.p95()) + "}";
    First = false;
  }
  Out += "\n  }\n}\n";
  return Out;
}

std::string obs::exportMetricsJsonLines(const MetricsRegistry &Registry,
                                        const std::string &Label) {
  std::string Out;
  std::string Prefix = "{\"label\": " + jsonString(Label) + ", ";
  for (const auto &[Name, Value] : Registry.counterSnapshot())
    Out += Prefix + "\"kind\": \"counter\", \"name\": " + jsonString(Name) +
           ", \"value\": " + u64(Value) + "}\n";
  for (const auto &[Name, Value] : Registry.gaugeSnapshot())
    Out += Prefix + "\"kind\": \"gauge\", \"name\": " + jsonString(Name) +
           ", \"value\": " + std::to_string(Value) + "}\n";
  for (const auto &H : Registry.histogramSnapshot())
    Out += Prefix + "\"kind\": \"histogram\", \"name\": " +
           jsonString(H.Name) + ", \"stats\": " + statsJson(H.Samples) +
           "}\n";
  for (const auto &S : Registry.spanSnapshot())
    Out += Prefix + "\"kind\": \"span\", \"name\": " + jsonString(S.Path) +
           ", \"count\": " + u64(S.Stats.Count) +
           ", \"total_us\": " + num(S.Stats.TotalUs) +
           ", \"self_us\": " + num(S.Stats.SelfUs) + "}\n";
  return Out;
}

bool obs::writeMetricsJsonFile(const std::string &Path,
                               const MetricsRegistry &Registry) {
  std::string Json = exportMetricsJson(Registry);
  return writeFileBytes(Path, std::vector<uint8_t>(Json.begin(), Json.end()))
      .ok();
}
