//===- obs/Export.cpp - Metric exporters ----------------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include "obs/Json.h"
#include "obs/Names.h"
#include "support/FileIO.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <cinttypes>
#include <cstdio>

using namespace twpp;
using namespace twpp::obs;

namespace {

std::string u64(uint64_t Value) { return std::to_string(Value); }

std::string num(double Value) { return jsonNumber(Value); }

/// Metric names are dot/slash identifiers, but quotes/backslashes in a
/// label must still round-trip; the escaper is shared with the trace
/// exporter (obs/Json.h) so the two cannot drift apart.
std::string jsonString(const std::string &Raw) {
  return jsonStringLiteral(Raw);
}

std::string statsJson(const RunningStats &S) {
  return "{\"count\": " + u64(S.count()) + ", \"min\": " + num(S.min()) +
         ", \"max\": " + num(S.max()) + ", \"mean\": " + num(S.mean()) +
         ", \"stddev\": " + num(S.stddev()) + ", \"p50\": " + num(S.p50()) +
         ", \"p95\": " + num(S.p95()) + "}";
}

std::string boundsLabel(const std::vector<uint64_t> &Bounds, size_t Bucket) {
  if (Bucket == Bounds.size())
    return "> " + u64(Bounds.empty() ? 0 : Bounds.back());
  return "<= " + u64(Bounds[Bucket]);
}

} // namespace

void names::registerCanonicalMetrics(MetricsRegistry &Registry) {
  for (const char *Name :
       {SequiturSymbols, SequiturRulesCreated, SequiturRulesDeleted,
        SequiturSubstitutions, PoolTasks, PoolSteals, PartitionCalls,
        PartitionBlockEvents,
        PartitionUniqueTraces, DbbChains, DbbLookups, DbbLookupHits,
        TimestampSets, TimestampValues, TimestampRuns, LzwCompressCalls,
        LzwCompressBytesIn, LzwCompressBytesOut, LzwDictEntries,
        LzwDecompressCalls, LzwDecompressBytesIn, LzwDecompressBytesOut,
        ArchiveEncodes, ArchiveIndexReads, ArchiveBlockReads,
        ArchiveBlockBytesRead, ArchiveDcgReads, ArchiveMmapOpens,
        ArchiveMmapBytes, ArchiveMmapFallbacks, VerifyRuns,
        VerifyDiagnostics, VerifyErrors, VerifyWarnings, DataflowQueries,
        DataflowSubqueries, DataflowNodesVisited, DataflowCacheHits,
        DataflowCacheMisses, IoWrites, IoReads, IoAtomicWrites,
        IoWriteRetries, IoWriteFailures, IoShortReads, IoFaultsInjected,
        JournalCheckpoints, JournalCheckpointFailures, JournalBytes,
        JournalResumes, JournalRecordsDropped, StreamDegraded,
        TraceDroppedEvents, SelfprofSpans, SelfprofEvents,
        SelfprofRecordsDropped, SelfprofTruncatedSpans,
        SelfprofUnclosedSpans, SelfprofOrphanFlows,
        SelfprofRegistryOverflows, RacesRuns, RacesThreadsCompacted,
        RacesEdgesDerived, RacesSegments, RacesSegmentPairs,
        RacesPairsCovered, RacesFound, RacesRacyPairs, IngestProducers,
        IngestFrames, IngestFrameBytes, IngestEvents, IngestFramesCorrupt,
        IngestResyncBytes, IngestFramesInvalid, IngestFramesDuplicate,
        IngestFramesReordered, IngestFramesReplayed, IngestSeqGaps,
        IngestEventsDropped, IngestEventsLost, IngestShedFrames,
        IngestShedBytes, IngestBackpressureWaits, IngestReadRetries,
        IngestIdleTimeouts, IngestDisconnects, IngestSynthesizedExits,
        IngestResumes, IngestCheckpoints, IngestCheckpointFailures})
    Registry.counter(Name);
  for (const char *Name : {PoolWorkers, PoolQueueDepth, PartitionBytesIn,
                           PartitionBytesOut, DbbBytesIn, DbbBytesOut,
                           TwppBytesIn, TwppBytesOut, ArchiveBytes,
                           StreamStateBytes, ArenaDecodeReservedBytes,
                           MemRssBytes, MemPeakBytes, MemTrackedLiveBytes,
                           MemTrackedPeakBytes, MemAllocs, SelfprofFunctions,
                           SelfprofArchiveBytes, SelfprofTraceJsonBytes,
                           IngestQueueDepthPeak, IngestEventsPerSec})
    Registry.gauge(Name);
  Registry.histogram(PartitionTraceLength, powerOfTwoBounds(1u << 20));
  Registry.histogram(ArchiveBlockBytes, powerOfTwoBounds(1u << 24));
  Registry.histogram(PoolTaskLatency, powerOfTwoBounds(1u << 20));
}

std::string obs::renderMetricsTable(const MetricsRegistry &Registry) {
  std::string Out;

  TablePrinter Counters("Counters");
  Counters.addRow({"name", "value"});
  for (const auto &[Name, Value] : Registry.counterSnapshot())
    Counters.addRow({Name, u64(Value)});
  Out += Counters.render();
  Out += "\n";

  TablePrinter Gauges("Gauges");
  Gauges.addRow({"name", "value"});
  for (const auto &[Name, Value] : Registry.gaugeSnapshot())
    Gauges.addRow({Name, std::to_string(Value)});
  Out += Gauges.render();
  Out += "\n";

  TablePrinter Histograms("Histograms");
  Histograms.addRow(
      {"name", "count", "min", "mean", "p50", "p95", "max", "stddev"});
  for (const auto &H : Registry.histogramSnapshot())
    Histograms.addRow({H.Name, u64(H.Samples.count()),
                       formatDouble(H.Samples.min(), 1),
                       formatDouble(H.Samples.mean(), 1),
                       formatDouble(H.Samples.p50(), 1),
                       formatDouble(H.Samples.p95(), 1),
                       formatDouble(H.Samples.max(), 1),
                       formatDouble(H.Samples.stddev(), 1)});
  Out += Histograms.render();
  Out += "\n";

  TablePrinter Spans("Phase spans");
  Spans.addRow({"path", "count", "total ms", "self ms", "mean us", "p95 us"});
  for (const auto &S : Registry.spanSnapshot())
    Spans.addRow({S.Path, u64(S.Stats.Count),
                  formatDouble(S.Stats.TotalUs / 1000.0, 3),
                  formatDouble(S.Stats.SelfUs / 1000.0, 3),
                  formatDouble(S.Stats.DurationsUs.mean(), 1),
                  formatDouble(S.Stats.DurationsUs.p95(), 1)});
  Out += Spans.render();
  return Out;
}

std::string obs::exportMetricsJson(const MetricsRegistry &Registry) {
  std::string Out = "{\n  \"schema\": \"twpp-metrics-v1\",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Registry.counterSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(Name) + ": " + u64(Value);
    First = false;
  }
  Out += "\n  },\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Registry.gaugeSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(Name) + ": " + std::to_string(Value);
    First = false;
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &H : Registry.histogramSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(H.Name) + ": {\"bounds\": [";
    for (size_t I = 0; I < H.Bounds.size(); ++I)
      Out += (I ? ", " : "") + u64(H.Bounds[I]);
    Out += "], \"counts\": [";
    for (size_t I = 0; I < H.Counts.size(); ++I)
      Out += (I ? ", " : "") + u64(H.Counts[I]);
    Out += "], \"stats\": " + statsJson(H.Samples) + "}";
    First = false;
  }
  Out += "\n  },\n  \"spans\": {";
  First = true;
  for (const auto &S : Registry.spanSnapshot()) {
    Out += First ? "\n" : ",\n";
    Out += "    " + jsonString(S.Path) + ": {\"count\": " +
           u64(S.Stats.Count) + ", \"total_us\": " + num(S.Stats.TotalUs) +
           ", \"self_us\": " + num(S.Stats.SelfUs) +
           ", \"mean_us\": " + num(S.Stats.DurationsUs.mean()) +
           ", \"p95_us\": " + num(S.Stats.DurationsUs.p95()) + "}";
    First = false;
  }
  Out += "\n  }\n}\n";
  return Out;
}

std::string obs::exportMetricsJsonLines(const MetricsRegistry &Registry,
                                        const std::string &Label) {
  std::string Out;
  std::string Prefix = "{\"label\": " + jsonString(Label) + ", ";
  for (const auto &[Name, Value] : Registry.counterSnapshot())
    Out += Prefix + "\"kind\": \"counter\", \"name\": " + jsonString(Name) +
           ", \"value\": " + u64(Value) + "}\n";
  for (const auto &[Name, Value] : Registry.gaugeSnapshot())
    Out += Prefix + "\"kind\": \"gauge\", \"name\": " + jsonString(Name) +
           ", \"value\": " + std::to_string(Value) + "}\n";
  for (const auto &H : Registry.histogramSnapshot())
    Out += Prefix + "\"kind\": \"histogram\", \"name\": " +
           jsonString(H.Name) + ", \"stats\": " + statsJson(H.Samples) +
           "}\n";
  for (const auto &S : Registry.spanSnapshot())
    Out += Prefix + "\"kind\": \"span\", \"name\": " + jsonString(S.Path) +
           ", \"count\": " + u64(S.Stats.Count) +
           ", \"total_us\": " + num(S.Stats.TotalUs) +
           ", \"self_us\": " + num(S.Stats.SelfUs) + "}\n";
  return Out;
}

bool obs::writeMetricsJsonFile(const std::string &Path,
                               const MetricsRegistry &Registry) {
  std::string Json = exportMetricsJson(Registry);
  return writeFileBytes(Path, std::vector<uint8_t>(Json.begin(), Json.end()))
      .ok();
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

namespace {

/// "partition.block_events" -> "twpp_partition_block_events". Prometheus
/// metric names admit [a-zA-Z0-9_:] only; everything else flattens to
/// '_' and the twpp_ prefix namespaces the scrape.
std::string promName(const std::string &Raw) {
  std::string Out = "twpp_";
  for (char C : Raw) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  return Out;
}

/// Label-value escaping per the exposition format: backslash, double
/// quote and line feed must be escaped; everything else passes through.
std::string promLabelValue(const std::string &Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string promDouble(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  return Buf;
}

} // namespace

std::string obs::exportMetricsProm(const MetricsRegistry &Registry) {
  std::string Out;
  for (const auto &[Name, Value] : Registry.counterSnapshot()) {
    std::string P = promName(Name);
    Out += "# HELP " + P + " TWPP counter " + Name + "\n";
    Out += "# TYPE " + P + " counter\n";
    Out += P + " " + u64(Value) + "\n";
  }
  for (const auto &[Name, Value] : Registry.gaugeSnapshot()) {
    std::string P = promName(Name);
    Out += "# HELP " + P + " TWPP gauge " + Name + "\n";
    Out += "# TYPE " + P + " gauge\n";
    Out += P + " " + std::to_string(Value) + "\n";
  }
  for (const auto &H : Registry.histogramSnapshot()) {
    // The native histogram convention: cumulative le-labelled buckets
    // plus _sum and _count series.
    std::string P = promName(H.Name);
    Out += "# HELP " + P + " TWPP histogram " + H.Name + "\n";
    Out += "# TYPE " + P + " histogram\n";
    uint64_t Cumulative = 0;
    for (size_t I = 0; I < H.Bounds.size(); ++I) {
      Cumulative += I < H.Counts.size() ? H.Counts[I] : 0;
      Out += P + "_bucket{le=\"" + u64(H.Bounds[I]) + "\"} " +
             u64(Cumulative) + "\n";
    }
    Out += P + "_bucket{le=\"+Inf\"} " + u64(H.Samples.count()) + "\n";
    Out += P + "_sum " +
           promDouble(H.Samples.mean() *
                      static_cast<double>(H.Samples.count())) +
           "\n";
    Out += P + "_count " + u64(H.Samples.count()) + "\n";
  }
  // Phase spans keyed by hierarchical path — the label-carrying series
  // (and the reason label escaping exists: paths are free-form text).
  bool SpanHeader = false;
  for (const auto &S : Registry.spanSnapshot()) {
    if (!SpanHeader) {
      Out += "# HELP twpp_span_count Completed phase spans per path\n";
      Out += "# TYPE twpp_span_count counter\n";
      SpanHeader = true;
    }
    Out += "twpp_span_count{path=\"" + promLabelValue(S.Path) + "\"} " +
           u64(S.Stats.Count) + "\n";
  }
  SpanHeader = false;
  for (const auto &S : Registry.spanSnapshot()) {
    if (!SpanHeader) {
      Out += "# HELP twpp_span_total_us Wall time per span path, "
             "children included\n";
      Out += "# TYPE twpp_span_total_us counter\n";
      SpanHeader = true;
    }
    Out += "twpp_span_total_us{path=\"" + promLabelValue(S.Path) + "\"} " +
           promDouble(S.Stats.TotalUs) + "\n";
  }
  SpanHeader = false;
  for (const auto &S : Registry.spanSnapshot()) {
    if (!SpanHeader) {
      Out += "# HELP twpp_span_self_us Wall time per span path, "
             "children excluded\n";
      Out += "# TYPE twpp_span_self_us counter\n";
      SpanHeader = true;
    }
    Out += "twpp_span_self_us{path=\"" + promLabelValue(S.Path) + "\"} " +
           promDouble(S.Stats.SelfUs) + "\n";
  }
  return Out;
}

bool obs::writeMetricsPromFile(const std::string &Path,
                               const MetricsRegistry &Registry) {
  std::string Text = exportMetricsProm(Registry);
  return writeFileBytes(Path, std::vector<uint8_t>(Text.begin(), Text.end()))
      .ok();
}
