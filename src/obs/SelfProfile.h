//===- obs/SelfProfile.h - Continuous self-profiling ------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TWPP-on-TWPP: compact the pipeline's own execution into a TWPP
/// archive. The flight recorder (obs/Trace.h) already captures every
/// PhaseSpan as B/E records in per-thread rings; this adapter consumes
/// those rings directly — never through the Chrome-JSON export — and
/// lowers the span stream into the ordinary trace::Events model:
///
///   * each distinct span path ("compact/dbb/pool") becomes one
///     FunctionId, interned in a lock-free SpanRegistry;
///   * each span instance becomes an Enter..Exit pair;
///   * wall time becomes Block events: block 1 is a call marker emitted
///     at every span begin, and the idle gaps between a span's children
///     (its exclusive time) become one block per gap whose id names a
///     log2 duration bucket (2 mantissa bits, <=~19% quantization).
///
/// The lowered stream feeds a dedicated StreamingCompactor (journal +
/// memory budget apply, like any other ingest) and is written as a
/// standard, verifier-clean .twppa archive, plus a small plain-text
/// sidecar (<archive>.meta) mapping FunctionIds back to span paths and
/// gap blocks back to representative nanoseconds — everything
/// tools/twpp_selfprof needs to report hottest paths per pipeline stage
/// and inclusive/exclusive time, purely from the archive.
///
/// Cross-thread sequencing reuses the pool's flow arrows: a worker-side
/// root span containing traceFlowFinish(id) is grafted under the span
/// that recorded traceFlowStart(id) on the enqueuing thread, so the
/// per-worker streams merge into one well-nested order (mirroring
/// PhaseSpan::ScopedRoot's aggregation paths). Ring wraparound, torn
/// reads, unmatched flows and registry overflow all degrade into
/// counters (selfprof.*), never into a malformed event stream.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_SELFPROFILE_H
#define TWPP_OBS_SELFPROFILE_H

#include "obs/SpanRegistry.h"
#include "obs/Trace.h"
#include "trace/Events.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace twpp::obs {

/// Lowering constants shared by the adapter, the sidecar and the
/// twpp_selfprof reporter.
namespace selfprof {

/// Block id emitted at every span begin. Guarantees every call's path
/// trace is non-empty even when the span ran shorter than MinGapNs.
inline constexpr BlockId CallMarkerBlock = 1;

/// First block id available for gap-duration buckets.
inline constexpr BlockId FirstGapBlock = 2;

/// Log2 bucket with 2 mantissa bits for \p Ns (>= 4). Monotonic in Ns;
/// at most ~19% relative quantization error at bucket edges.
uint32_t gapBucketOf(uint64_t Ns);

/// Representative nanoseconds of \p Bucket (the bucket range midpoint) —
/// what the reporter multiplies use counts by.
uint64_t gapBucketRepresentativeNs(uint32_t Bucket);

} // namespace selfprof

/// Accounting of one adaptation / one profiling run. Mirrors the
/// selfprof.* metric names (obs/Names.h).
struct SelfProfileStats {
  uint64_t Spans = 0;          ///< Span instances lowered (Enter events).
  uint64_t Events = 0;         ///< Total Enter+Block+Exit events emitted.
  uint64_t RecordsDropped = 0; ///< Ring records lost to wraparound/tearing.
  uint64_t TruncatedSpans = 0; ///< Orphan E records (B overwritten) dropped.
  uint64_t UnclosedSpans = 0;  ///< B records synthesized closed at drain.
  uint64_t OrphanFlows = 0;    ///< Worker roots with no matching FlowStart.
  uint64_t RegistryOverflows = 0; ///< Paths collapsed onto "(overflow)".
  uint64_t Functions = 0;      ///< Distinct span paths (FunctionCount).
  uint64_t ArchiveBytes = 0;   ///< Bytes of the written .twppa.
  uint64_t TraceJsonBytes = 0; ///< Equivalent Chrome-JSON bytes (optional).
};

/// The pure adaptation result: a well-nested RawTrace plus the maps the
/// sidecar persists. Exposed (rather than buried in SelfProfiler) so the
/// tests can drive scripted record streams through the exact production
/// lowering.
struct SpanEventStream {
  RawTrace Trace;
  /// Span path per FunctionId (index 0 is "(overflow)").
  std::vector<std::string> FunctionPaths;
  /// (gap block id, representative ns) for every gap bucket the stream
  /// used, sorted by block id.
  std::vector<std::pair<BlockId, uint64_t>> GapBlocks;
  SelfProfileStats Stats;
};

/// Lowers per-thread flight-recorder records (index = tid; tid 0 is the
/// main thread) into one well-nested Enter/Block/Exit stream. Only
/// Begin/End/FlowStart/FlowFinish records participate; Instant/Counter
/// records are skipped. Gaps shorter than \p MinGapNs are not encoded.
/// The result's Trace always satisfies RawTrace::isWellFormed().
SpanEventStream
adaptSpanRecords(const std::vector<std::vector<TraceRecord>> &PerThread,
                 SpanRegistry &Registry, uint64_t MinGapNs);

/// Configuration of a profiling run.
struct SelfProfileConfig {
  /// Output archive path (.twppa). Required.
  std::string ArchivePath;
  /// Sidecar path; empty means ArchivePath + ".meta".
  std::string MetaPath;
  /// Streaming-compactor durability knobs (wpp/Streaming.h). Empty /
  /// zero disables journaling and the memory budget.
  std::string JournalPath;
  uint64_t CheckpointInterval = 0;
  uint64_t MemoryBudgetBytes = 0;
  /// Inter-child gaps shorter than this are attributed to quantization
  /// loss instead of emitting a block.
  uint64_t MinGapNs = 1024;
  /// Cap on raw records buffered between drains, across all threads;
  /// overflow is dropped and counted in RecordsDropped.
  size_t MaxBufferedRecords = size_t(1) << 22;
  /// Span-path registry capacity (distinct paths).
  size_t RegistryCapacity = 1 << 12;
  /// Also measure the equivalent Chrome-trace JSON export's size into
  /// Stats.TraceJsonBytes (the compaction-ratio comparison).
  bool CompareTraceJson = false;
};

/// One continuous profiling run: enable tracing, drain the rings
/// incrementally, and on finish() lower + compact + write the archive.
/// drain() may be called from any one thread at a time (the profiler is
/// externally synchronized); recording threads are never blocked.
class SelfProfiler {
public:
  explicit SelfProfiler(SelfProfileConfig Config);
  ~SelfProfiler();

  SelfProfiler(const SelfProfiler &) = delete;
  SelfProfiler &operator=(const SelfProfiler &) = delete;

  const SelfProfileConfig &config() const { return Config; }

  /// Pulls new records out of every ring since the previous drain. Cheap
  /// (memcpy of the new window); call between pipeline stages or from
  /// bench checkpoints so long runs outlive the rings' capacity.
  void drain();

  /// Final drain + lowering + streaming compaction + archive/sidecar
  /// write + metric publication. Stops tracing first so the rings are
  /// quiescent. \returns false (with \p Error filled) when the archive
  /// or sidecar cannot be written; the stats are valid either way.
  bool finish(SelfProfileStats &Stats, std::string *Error = nullptr);

  /// Records buffered so far (across threads), for tests.
  size_t bufferedRecords() const;

private:
  struct RingCursor {
    TraceRing *Ring = nullptr;
    uint64_t Cursor = 0;
  };

  SelfProfileConfig Config;
  std::vector<RingCursor> Cursors;             ///< Indexed by tid.
  std::vector<std::vector<TraceRecord>> Buffered; ///< Indexed by tid.
  size_t BufferedCount = 0;
  uint64_t LostRecords = 0;
  bool TracingWasOn = false;
  bool Finished = false;
};

//===----------------------------------------------------------------------===//
// Process-global profiler — what --self-profile / TWPP_SELF_PROFILE turn
// on. One profiler per process; enable is idempotent per path.
//===----------------------------------------------------------------------===//

/// The active profiler, or nullptr when self-profiling is off.
SelfProfiler *selfProfiler();

/// Installs a process-global profiler and turns tracing on. \returns
/// false when one is already active (the existing run wins).
bool enableSelfProfile(SelfProfileConfig Config);

/// Reads TWPP_SELF_PROFILE (an archive path) and enables profiling when
/// it is set and non-empty. \returns true when a profiler is active
/// after the call.
bool maybeEnableSelfProfileFromEnv();

/// Finishes and tears down the global profiler: writes the archive,
/// publishes selfprof.* metrics, restores the tracing flag. No-op
/// (returning true) when no profiler is active. \p Stats, when given,
/// receives the run's accounting.
bool finishSelfProfile(SelfProfileStats *Stats = nullptr,
                       std::string *Error = nullptr);

//===----------------------------------------------------------------------===//
// Sidecar — the plain-text map from archive ids back to span paths and
// nanoseconds ("twpp-selfprof-meta-v1"). Deliberately not JSON: the
// reporting tool parses it with a dozen lines and no dependencies.
//===----------------------------------------------------------------------===//

struct SelfProfileMeta {
  uint64_t MinGapNs = 0;
  std::vector<std::string> FunctionPaths; ///< Indexed by FunctionId.
  std::vector<std::pair<BlockId, uint64_t>> GapBlocks;
  SelfProfileStats Stats;
};

/// Renders the sidecar document.
std::string encodeSelfProfileMeta(const SelfProfileMeta &Meta);

/// Parses a sidecar document. \returns false on malformed input.
bool decodeSelfProfileMeta(const std::string &Text, SelfProfileMeta &Meta);

/// Loads \p Path and parses it. \returns false on IO or parse failure.
bool readSelfProfileMetaFile(const std::string &Path, SelfProfileMeta &Meta);

} // namespace twpp::obs

#endif // TWPP_OBS_SELFPROFILE_H
