//===- obs/Memory.cpp - RSS poller and mem.* publication ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/Memory.h"

#include "obs/Names.h"
#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <unistd.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace twpp;
using namespace twpp::obs;

namespace {

/// Parses the first integer following \p Key in /proc/self/status, in kB.
/// Returns 0 on any failure (non-Linux, file missing, key absent).
uint64_t readProcStatusKb(const char *Key) {
#if defined(__linux__)
  std::FILE *File = std::fopen("/proc/self/status", "r");
  if (!File)
    return 0;
  char Line[256];
  uint64_t Kb = 0;
  size_t KeyLen = std::strlen(Key);
  while (std::fgets(Line, sizeof(Line), File)) {
    if (std::strncmp(Line, Key, KeyLen) != 0)
      continue;
    char *Cursor = Line + KeyLen;
    while (*Cursor && (*Cursor < '0' || *Cursor > '9'))
      ++Cursor;
    Kb = std::strtoull(Cursor, nullptr, 10);
    break;
  }
  std::fclose(File);
  return Kb;
#else
  (void)Key;
  return 0;
#endif
}

/// The background sampler. One per process, started lazily; keeps a window
/// high-water mark that takeMemWindowPeakBytes() drains.
class MemPoller {
public:
  static MemPoller &instance() {
    static MemPoller Poller;
    return Poller;
  }

  void start(uint64_t IntervalMs) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Interval = std::max<uint64_t>(1, IntervalMs);
    if (Running)
      return;
    Running = true;
    Worker = std::thread([this] { loop(); });
  }

  void stop() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!Running)
        return;
      Running = false;
      Wake.notify_all();
    }
    if (Worker.joinable())
      Worker.join();
  }

  void observe(uint64_t Rss) {
    uint64_t Prev = WindowPeak.load(std::memory_order_relaxed);
    while (Rss > Prev && !WindowPeak.compare_exchange_weak(
                             Prev, Rss, std::memory_order_relaxed))
      ;
  }

  uint64_t takeWindowPeak() {
    return WindowPeak.exchange(0, std::memory_order_relaxed);
  }

private:
  ~MemPoller() { stop(); }

  void loop() {
    setCurrentThreadName("mem-poller");
    std::unique_lock<std::mutex> Lock(Mutex);
    while (Running) {
      Lock.unlock();
      observe(currentRssBytes());
      sampleMemoryCounters();
      Lock.lock();
      Wake.wait_for(Lock, std::chrono::milliseconds(Interval),
                    [this] { return !Running; });
    }
  }

  std::mutex Mutex;
  std::condition_variable Wake;
  std::thread Worker;
  bool Running = false;
  uint64_t Interval = 10;
  std::atomic<uint64_t> WindowPeak{0};
};

} // namespace

namespace twpp {
namespace obs {

uint64_t currentRssBytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt — in pages.
  std::FILE *File = std::fopen("/proc/self/statm", "r");
  if (!File)
    return 0;
  unsigned long long Size = 0, Resident = 0;
  int Fields = std::fscanf(File, "%llu %llu", &Size, &Resident);
  std::fclose(File);
  if (Fields != 2)
    return 0;
  return static_cast<uint64_t>(Resident) *
         static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

uint64_t peakRssBytes() {
  if (uint64_t Kb = readProcStatusKb("VmHWM:"))
    return Kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) == 0 && Usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<uint64_t>(Usage.ru_maxrss); // bytes on macOS
#else
    return static_cast<uint64_t>(Usage.ru_maxrss) * 1024; // kB elsewhere
#endif
  }
#endif
  return 0;
}

void startMemPoller(uint64_t IntervalMs) {
  MemPoller::instance().start(IntervalMs);
}

void stopMemPoller() { MemPoller::instance().stop(); }

uint64_t takeMemWindowPeakBytes() {
  MemPoller &Poller = MemPoller::instance();
  Poller.observe(currentRssBytes());
  return Poller.takeWindowPeak();
}

void publishMemMetrics(MetricsRegistry &Registry) {
  uint64_t Rss = currentRssBytes();
  MemPoller &Poller = MemPoller::instance();
  Poller.observe(Rss);
  uint64_t WindowPeak = Poller.takeWindowPeak();
  Registry.gauge(names::MemRssBytes).set(static_cast<int64_t>(Rss));
  Registry.gauge(names::MemPeakBytes)
      .set(static_cast<int64_t>(std::max(WindowPeak, Rss)));
  MemTracker &Tracker = memTracker();
  Registry.gauge(names::MemTrackedLiveBytes).set(Tracker.totalLiveBytes());
  Registry.gauge(names::MemTrackedPeakBytes).set(Tracker.totalPeakBytes());
  Registry.gauge(names::MemAllocs)
      .set(static_cast<int64_t>(Tracker.totalAllocs()));
}

void sampleMemoryCounters() {
  if (!tracingEnabled())
    return;
  uint64_t Rss = currentRssBytes();
  traceCounter(names::MemRssBytes, static_cast<int64_t>(Rss));
  // New process high-water marks become instants so timelines pinpoint the
  // moment the footprint grew, not just the level.
  static std::atomic<uint64_t> SeenPeak{0};
  uint64_t Prev = SeenPeak.load(std::memory_order_relaxed);
  if (Rss > Prev &&
      SeenPeak.compare_exchange_strong(Prev, Rss, std::memory_order_relaxed))
    traceInstant("mem.peak_rss", "bytes", static_cast<int64_t>(Rss));
  if (!memTrackingEnabled())
    return;
  char Track[48];
  for (const MemTracker::Snapshot &S : memTracker().snapshot()) {
    std::snprintf(Track, sizeof(Track), "mem.live_bytes/%s", S.Tag.c_str());
    traceCounter(Track, S.LiveBytes);
  }
}

} // namespace obs
} // namespace twpp
