//===- obs/SpanRegistry.cpp - Lock-free span-path interner ----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/SpanRegistry.h"

#include <cstring>
#include <thread>

using namespace twpp;
using namespace twpp::obs;

namespace {

/// FNV-1a. The table is small and collisions only cost probes, so the
/// simple byte hash is plenty.
uint64_t hashPath(std::string_view Path) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Path) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

SpanRegistry::SpanRegistry(size_t Capacity) {
  size_t Cap = 2;
  while (Cap < Capacity)
    Cap *= 2;
  Slots = std::make_unique<Slot[]>(Cap);
  Mask = Cap - 1;
  // Reserve id 0 up front so no real path can ever claim it and lookups
  // never observe an empty table.
  FunctionId Reserved = intern("(overflow)");
  (void)Reserved;
}

FunctionId SpanRegistry::intern(std::string_view Path) {
  if (Path.size() >= KeyCapacity) {
    Overflows.fetch_add(1, std::memory_order_relaxed);
    return OverflowId;
  }
  size_t Probe = static_cast<size_t>(hashPath(Path)) & Mask;
  for (size_t Step = 0; Step <= Mask; ++Step, Probe = (Probe + 1) & Mask) {
    Slot &S = Slots[Probe];
    uint8_t State = S.State.load(std::memory_order_acquire);
    if (State == Empty) {
      uint8_t Expected = Empty;
      if (S.State.compare_exchange_strong(Expected, Busy,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        // We own the slot: write key + id, then publish. The id counter
        // is bumped while the slot is Busy, so size() may briefly run
        // ahead of visible slots but ids stay dense and unique.
        std::memcpy(S.Key, Path.data(), Path.size());
        S.Key[Path.size()] = '\0';
        S.Id = Next.fetch_add(1, std::memory_order_acq_rel);
        S.State.store(Ready, std::memory_order_release);
        return S.Id;
      }
      State = Expected; // CAS lost: fall through to inspect the winner.
    }
    // Another thread is mid-publish; its key lands in nanoseconds.
    while (State == Busy) {
      std::this_thread::yield();
      State = S.State.load(std::memory_order_acquire);
    }
    if (Path == std::string_view(S.Key))
      return S.Id;
  }
  Overflows.fetch_add(1, std::memory_order_relaxed);
  return OverflowId;
}

std::vector<std::string> SpanRegistry::paths() const {
  std::vector<std::string> Out(size());
  for (size_t I = 0; I <= Mask; ++I) {
    const Slot &S = Slots[I];
    if (S.State.load(std::memory_order_acquire) != Ready)
      continue;
    if (S.Id < Out.size())
      Out[S.Id] = S.Key;
  }
  return Out;
}
