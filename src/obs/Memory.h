//===- obs/Memory.h - Allocation tracking and RSS sampling ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory observability: a scoped allocation tracker plus process-level
/// RSS sampling. Mirrors the metrics/tracing split of obs/Metrics.h and
/// obs/Trace.h:
///
///  - The tracker core (MemAccount, MemTracker, MemScope, memAlloc /
///    memFree) is header-only so layers below obs (support/) can record
///    without linking twpp_obs.
///  - The RSS poller, gauge publication and trace counter emission live in
///    Memory.cpp (twpp_obs) because they need threads and the exporters.
///
/// Tracking is off by default. It is enabled per process with
/// setMemTrackingEnabled(true) or the TWPP_MEM environment variable; when
/// disabled every hook costs one relaxed atomic load. Building with
/// -DTWPP_MEM_NO_TRACKING (CMake option TWPP_NO_MEM_TRACKING) compiles the
/// hooks out entirely. MemAccount itself stays functional in both modes:
/// StreamingCompactor uses a private instance to drive its memory budget,
/// which must behave identically whether or not observability is on.
///
/// Attribution model: instrumented sites either record against a fixed tag
/// (memAlloc/memFree with a memtags:: constant) when the stage owns the
/// structure, or against the innermost MemScope (memAllocCurrent /
/// memFreeCurrent) when a shared container cannot know its caller. Scoped
/// records with no open scope are dropped — this is what keeps stage-level
/// tags from double counting the bytes of the containers they already
/// measure via obs::deepSize.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_MEMORY_H
#define TWPP_OBS_MEMORY_H

#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace twpp {
namespace obs {

namespace detail {

inline bool readMemTrackingFromEnv() {
  const char *Value = std::getenv("TWPP_MEM");
  return Value && *Value && std::string(Value) != "0";
}

inline std::atomic<bool> &memTrackingFlag() {
  static std::atomic<bool> Flag{readMemTrackingFromEnv()};
  return Flag;
}

} // namespace detail

#ifdef TWPP_MEM_NO_TRACKING
/// True when the tracker hooks are compiled in at all.
constexpr bool memTrackingCompiled() { return false; }
inline bool memTrackingEnabled() { return false; }
inline void setMemTrackingEnabled(bool) {}
#else
constexpr bool memTrackingCompiled() { return true; }

/// True when allocation tracking is on. One relaxed load: cheap enough for
/// per-allocation call sites.
inline bool memTrackingEnabled() {
  return detail::memTrackingFlag().load(std::memory_order_relaxed);
}

inline void setMemTrackingEnabled(bool Enabled) {
  detail::memTrackingFlag().store(Enabled, std::memory_order_relaxed);
}
#endif

/// Canonical tags of the instrumented subsystems. Free-form tags are
/// allowed, but sticking to this taxonomy keeps twpp_memstat and the trace
/// counter tracks comparable across runs (documented in
/// docs/OBSERVABILITY.md).
namespace memtags {
inline constexpr const char *ArchiveDecode = "archive.decode";
inline constexpr const char *ArchiveEncode = "archive.encode";
inline constexpr const char *DbbTables = "dbb.tables";
inline constexpr const char *TwppTables = "twpp.tables";
inline constexpr const char *StreamState = "stream.state";
inline constexpr const char *SequiturGrammar = "sequitur.grammar";
inline constexpr const char *PoolQueue = "pool.queue";
/// Bytes currently memory-mapped by archive readers (support/Mmap.h).
inline constexpr const char *ArchiveMmap = "archive.mmap";
/// Pooled decode-scratch bytes held by read-path arenas (support/Arena.h).
inline constexpr const char *ArenaDecode = "arena.decode";
} // namespace memtags

/// One tag's running byte ledger. All members are plain atomics so accounts
/// can be fed concurrently from pool workers; recording is NOT gated here —
/// gating happens in the memAlloc/memFree helpers so that private instances
/// (the streaming budget) keep working with tracking disabled.
class MemAccount {
public:
  void recordAlloc(uint64_t Bytes) {
    Allocs.fetch_add(1, std::memory_order_relaxed);
    Cumulative.fetch_add(Bytes, std::memory_order_relaxed);
    int64_t Now = Live.fetch_add(static_cast<int64_t>(Bytes),
                                 std::memory_order_relaxed) +
                  static_cast<int64_t>(Bytes);
    int64_t Prev = Peak.load(std::memory_order_relaxed);
    while (Now > Prev &&
           !Peak.compare_exchange_weak(Prev, Now, std::memory_order_relaxed))
      ;
  }

  void recordFree(uint64_t Bytes) {
    Frees.fetch_add(1, std::memory_order_relaxed);
    Live.fetch_sub(static_cast<int64_t>(Bytes), std::memory_order_relaxed);
  }

  /// Bytes currently attributed and not yet freed. Negative only when the
  /// instrumentation is unbalanced — the twpp-mem-negative-live check.
  int64_t liveBytes() const { return Live.load(std::memory_order_relaxed); }

  /// High-water mark of liveBytes() since the last reset.
  int64_t peakBytes() const { return Peak.load(std::memory_order_relaxed); }

  /// Total bytes ever recorded, never decremented.
  uint64_t cumulativeBytes() const {
    return Cumulative.load(std::memory_order_relaxed);
  }

  uint64_t allocCount() const { return Allocs.load(std::memory_order_relaxed); }
  uint64_t freeCount() const { return Frees.load(std::memory_order_relaxed); }

  void reset() {
    Live.store(0, std::memory_order_relaxed);
    Peak.store(0, std::memory_order_relaxed);
    Cumulative.store(0, std::memory_order_relaxed);
    Allocs.store(0, std::memory_order_relaxed);
    Frees.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<int64_t> Live{0};
  std::atomic<int64_t> Peak{0};
  std::atomic<uint64_t> Cumulative{0};
  std::atomic<uint64_t> Allocs{0};
  std::atomic<uint64_t> Frees{0};
};

/// Registry of tag -> account, mirroring MetricsRegistry: references are
/// stable for the registry's lifetime, so call sites cache them in
/// function-local statics.
class MemTracker {
public:
  struct Snapshot {
    std::string Tag;
    int64_t LiveBytes = 0;
    int64_t PeakBytes = 0;
    uint64_t CumulativeBytes = 0;
    uint64_t Allocs = 0;
    uint64_t Frees = 0;
  };

  MemAccount &account(const std::string &Tag) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto &Slot = Accounts[Tag];
    if (!Slot)
      Slot = std::make_unique<MemAccount>();
    return *Slot;
  }

  /// Sorted by tag, so exports are deterministic.
  std::vector<Snapshot> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::vector<Snapshot> Out;
    Out.reserve(Accounts.size());
    for (const auto &[Tag, Account] : Accounts)
      Out.push_back({Tag, Account->liveBytes(), Account->peakBytes(),
                     Account->cumulativeBytes(), Account->allocCount(),
                     Account->freeCount()});
    return Out;
  }

  /// Sum of per-tag live bytes. Tags are independent views, not a strict
  /// partition of the heap, so treat the sum as an upper-bound indicator.
  int64_t totalLiveBytes() const {
    int64_t Total = 0;
    for (const Snapshot &S : snapshot())
      Total += S.LiveBytes;
    return Total;
  }

  /// Sum of per-tag peaks (the peaks need not be simultaneous).
  int64_t totalPeakBytes() const {
    int64_t Total = 0;
    for (const Snapshot &S : snapshot())
      Total += S.PeakBytes;
    return Total;
  }

  uint64_t totalAllocs() const {
    uint64_t Total = 0;
    for (const Snapshot &S : snapshot())
      Total += S.Allocs;
    return Total;
  }

  /// Zeroes every account in place; references stay valid.
  void reset() {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (auto &[Tag, Account] : Accounts)
      Account->reset();
  }

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<MemAccount>> Accounts;
};

/// The process-global tracker.
inline MemTracker &memTracker() {
  static MemTracker Tracker;
  return Tracker;
}

/// RAII tag scope, mirroring PhaseSpan's thread-local span stack: scoped
/// records (memAllocCurrent/memFreeCurrent) attribute to the innermost open
/// scope's account. A scope resolves its account once at construction, so
/// per-record cost is one thread-local load plus the atomic adds.
class MemScope {
public:
  /// With Nest::IfUnscoped the scope stays inactive when some scope is
  /// already open, letting records flow to the outer measuring context —
  /// the decode entry points use this so audits can capture them into a
  /// caller-owned account.
  enum class Nest { Always, IfUnscoped };

  explicit MemScope(const char *Tag, Nest Nesting = Nest::Always) {
    if (!memTrackingEnabled())
      return;
    if (Nesting == Nest::IfUnscoped && current())
      return;
    Account = &memTracker().account(Tag);
    Parent = current();
    current() = this;
    Active = true;
  }

  /// Binds the scope to a caller-owned account instead of the global
  /// tracker — used by audits that must not pollute process-wide tallies.
  explicit MemScope(MemAccount &Local) {
    if (!memTrackingEnabled())
      return;
    Account = &Local;
    Parent = current();
    current() = this;
    Active = true;
  }

  ~MemScope() {
    if (Active)
      current() = Parent;
  }

  MemScope(const MemScope &) = delete;
  MemScope &operator=(const MemScope &) = delete;

  /// The innermost open scope's account on this thread, or nullptr.
  static MemAccount *currentAccount() {
    MemScope *Scope = current();
    return Scope ? Scope->Account : nullptr;
  }

private:
  static MemScope *&current() {
    thread_local MemScope *Current = nullptr;
    return Current;
  }

  MemAccount *Account = nullptr;
  MemScope *Parent = nullptr;
  bool Active = false;
};

#ifdef TWPP_MEM_NO_TRACKING
inline void memAlloc(const char *, uint64_t) {}
inline void memFree(const char *, uint64_t) {}
inline void memAllocCurrent(uint64_t) {}
inline void memFreeCurrent(uint64_t) {}
#else
/// Records \p Bytes against the fixed tag \p Tag. Hot call sites should
/// cache the account instead:
///   static obs::MemAccount &A = obs::memTracker().account(Tag);
///   if (obs::memTrackingEnabled()) A.recordAlloc(Bytes);
inline void memAlloc(const char *Tag, uint64_t Bytes) {
  if (!memTrackingEnabled())
    return;
  memTracker().account(Tag).recordAlloc(Bytes);
}

inline void memFree(const char *Tag, uint64_t Bytes) {
  if (!memTrackingEnabled())
    return;
  memTracker().account(Tag).recordFree(Bytes);
}

/// Records \p Bytes against the innermost MemScope; dropped when no scope
/// is open. Shared containers (TimestampSet, the decoders) use this so
/// their bytes land in whichever stage is measuring them.
inline void memAllocCurrent(uint64_t Bytes) {
  if (!memTrackingEnabled())
    return;
  if (MemAccount *Account = MemScope::currentAccount())
    Account->recordAlloc(Bytes);
}

inline void memFreeCurrent(uint64_t Bytes) {
  if (!memTrackingEnabled())
    return;
  if (MemAccount *Account = MemScope::currentAccount())
    Account->recordFree(Bytes);
}
#endif

//===----------------------------------------------------------------------===//
// Process-level sampling + publication — implemented in Memory.cpp
// (twpp_obs). Callers below obs/ must not use these.
//===----------------------------------------------------------------------===//

/// Current resident set size in bytes (/proc/self/statm on Linux; 0 when
/// unavailable).
uint64_t currentRssBytes();

/// Process peak RSS in bytes (/proc/self/status VmHWM, getrusage fallback).
uint64_t peakRssBytes();

/// Starts the background RSS poller. Samples every \p IntervalMs, keeps a
/// window high-water mark, and — when tracing is on — emits mem.* counter
/// tracks into the flight recorder. Idempotent.
void startMemPoller(uint64_t IntervalMs = 10);

/// Stops the poller thread. Idempotent.
void stopMemPoller();

/// Returns the highest RSS sample since the last call (folding in the
/// current RSS, so it is never 0 on Linux even if the poller is not
/// running), then resets the window. This is what gives benches a
/// per-stage mem.peak_bytes.
uint64_t takeMemWindowPeakBytes();

/// Publishes the mem.* gauges (names::Mem*) into \p Registry from the
/// tracker and the RSS window. Call just before exporting metrics.
void publishMemMetrics(MetricsRegistry &Registry);

/// Emits one sample of memory counter tracks into the flight recorder:
/// mem.rss_bytes plus a mem.live_bytes/<tag> track per tracker tag, and a
/// peak-RSS instant when a new process high-water is observed. No-op when
/// tracing is disabled.
void sampleMemoryCounters();

} // namespace obs
} // namespace twpp

#endif // TWPP_OBS_MEMORY_H
