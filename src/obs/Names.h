//===- obs/Names.h - Canonical metric names ---------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical metric names every pipeline stage reports, in one place so
/// instrumentation sites, tests and docs/OBSERVABILITY.md cannot drift
/// apart. registerCanonicalMetrics() pre-registers all of them, which makes
/// exports carry every stage (zero-valued when unexercised) — the shape the
/// BENCH_*.json trajectory diffs rely on.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_NAMES_H
#define TWPP_OBS_NAMES_H

#include "obs/Metrics.h"

namespace twpp::obs::names {

// sequitur/ — grammar inference (the Larus baseline).
inline constexpr const char *SequiturSymbols = "sequitur.symbols";
inline constexpr const char *SequiturRulesCreated = "sequitur.rules_created";
inline constexpr const char *SequiturRulesDeleted = "sequitur.rules_deleted";
inline constexpr const char *SequiturSubstitutions = "sequitur.substitutions";

// support/ThreadPool — the work-stealing pool behind the parallel
// pipeline stages (--jobs N).
inline constexpr const char *PoolWorkers = "pool.workers";
inline constexpr const char *PoolTasks = "pool.tasks";
inline constexpr const char *PoolSteals = "pool.steals";
inline constexpr const char *PoolQueueDepth = "pool.queue_depth";
inline constexpr const char *PoolTaskLatency = "pool.task_latency_us";

// wpp/Partition + wpp/Streaming — stages 1+2 (partitioning, redundant
// path trace elimination).
inline constexpr const char *PartitionCalls = "partition.calls";
inline constexpr const char *PartitionBlockEvents = "partition.block_events";
inline constexpr const char *PartitionUniqueTraces = "partition.unique_traces";
inline constexpr const char *PartitionBytesIn = "partition.bytes_in";
inline constexpr const char *PartitionBytesOut = "partition.bytes_out";
inline constexpr const char *PartitionTraceLength = "partition.trace_length";

// wpp/Dbb — stage 3 (DBB dictionary creation).
inline constexpr const char *DbbChains = "dbb.chains";
inline constexpr const char *DbbLookups = "dbb.lookups";
inline constexpr const char *DbbLookupHits = "dbb.lookup_hits";
inline constexpr const char *DbbBytesIn = "dbb.bytes_in";
inline constexpr const char *DbbBytesOut = "dbb.bytes_out";

// wpp/TimestampSet + wpp/Twpp — stages 4+5 (timestamped form, series
// compaction).
inline constexpr const char *TimestampSets = "timestamp.sets";
inline constexpr const char *TimestampValues = "timestamp.values";
inline constexpr const char *TimestampRuns = "timestamp.runs";
inline constexpr const char *TwppBytesIn = "twpp.bytes_in";
inline constexpr const char *TwppBytesOut = "twpp.bytes_out";

// support/LZW — DCG compression.
inline constexpr const char *LzwCompressCalls = "lzw.compress_calls";
inline constexpr const char *LzwCompressBytesIn = "lzw.compress_bytes_in";
inline constexpr const char *LzwCompressBytesOut = "lzw.compress_bytes_out";
inline constexpr const char *LzwDictEntries = "lzw.dict_entries";
inline constexpr const char *LzwDecompressCalls = "lzw.decompress_calls";
inline constexpr const char *LzwDecompressBytesIn = "lzw.decompress_bytes_in";
inline constexpr const char *LzwDecompressBytesOut =
    "lzw.decompress_bytes_out";

// support/FileIO — durable file IO (atomic writes, retry, fault seam).
inline constexpr const char *IoWrites = "io.writes";
inline constexpr const char *IoReads = "io.reads";
inline constexpr const char *IoAtomicWrites = "io.atomic_writes";
inline constexpr const char *IoWriteRetries = "io.write_retries";
inline constexpr const char *IoWriteFailures = "io.write_failures";
inline constexpr const char *IoShortReads = "io.short_reads";
inline constexpr const char *IoFaultsInjected = "io.faults_injected";

// wpp/Journal + wpp/Streaming durability — checkpointing, recovery and
// budget-driven degradation of the online compactor.
inline constexpr const char *JournalCheckpoints = "journal.checkpoints";
inline constexpr const char *JournalCheckpointFailures =
    "journal.checkpoint_failures";
inline constexpr const char *JournalBytes = "journal.bytes";
inline constexpr const char *JournalResumes = "journal.resumes";
inline constexpr const char *JournalRecordsDropped =
    "journal.records_dropped";
inline constexpr const char *StreamDegraded = "stream.degraded";
inline constexpr const char *StreamStateBytes = "stream.state_bytes";

// wpp/Archive — the on-disk format and its random-access reader.
inline constexpr const char *ArchiveEncodes = "archive.encodes";
inline constexpr const char *ArchiveBytes = "archive.bytes";
inline constexpr const char *ArchiveIndexReads = "archive.index_reads";
inline constexpr const char *ArchiveBlockReads = "archive.block_reads";
inline constexpr const char *ArchiveBlockBytesRead = "archive.block_bytes_read";
inline constexpr const char *ArchiveDcgReads = "archive.dcg_reads";
inline constexpr const char *ArchiveBlockBytes = "archive.block_bytes";
// Zero-copy read path: successful mappings, bytes mapped, and times the
// reader fell back from mmap to buffered IO.
inline constexpr const char *ArchiveMmapOpens = "archive.mmap_opens";
inline constexpr const char *ArchiveMmapBytes = "archive.mmap_bytes";
inline constexpr const char *ArchiveMmapFallbacks = "archive.mmap_fallbacks";
// Decode-scratch arena high-water (gauge, bytes reserved across blocks).
inline constexpr const char *ArenaDecodeReservedBytes =
    "arena.decode_reserved_bytes";

// obs/Trace — the event-tracing flight recorder. Ring overwrites are
// published live (satisfying "is the ring big enough?" without exporting
// a trace); the same figure appears per-thread in the Chrome export's
// otherData.dropped_events.
inline constexpr const char *TraceDroppedEvents = "trace.dropped_events";

// obs/SelfProfile — continuous self-profiling: the pipeline's own span
// stream compacted into a TWPP archive ("TWPP-on-TWPP").
inline constexpr const char *SelfprofSpans = "selfprof.spans";
inline constexpr const char *SelfprofEvents = "selfprof.events";
inline constexpr const char *SelfprofRecordsDropped =
    "selfprof.records_dropped";
inline constexpr const char *SelfprofTruncatedSpans =
    "selfprof.truncated_spans";
inline constexpr const char *SelfprofUnclosedSpans =
    "selfprof.unclosed_spans";
inline constexpr const char *SelfprofOrphanFlows = "selfprof.orphan_flows";
inline constexpr const char *SelfprofRegistryOverflows =
    "selfprof.registry_overflows";
inline constexpr const char *SelfprofFunctions = "selfprof.functions";
inline constexpr const char *SelfprofArchiveBytes = "selfprof.archive_bytes";
inline constexpr const char *SelfprofTraceJsonBytes =
    "selfprof.trace_json_bytes";

// verify/ — static invariant verification (TWPP_VERIFY post-stage
// assertions and the twpp_verify CLI).
inline constexpr const char *VerifyRuns = "verify.runs";
inline constexpr const char *VerifyDiagnostics = "verify.diagnostics";
inline constexpr const char *VerifyErrors = "verify.errors";
inline constexpr const char *VerifyWarnings = "verify.warnings";

// obs/Memory — allocation tracking and process RSS sampling. All gauges:
// RSS figures are set from the poller window at export time, tracked_*
// figures from the MemTracker tallies.
inline constexpr const char *MemRssBytes = "mem.rss_bytes";
inline constexpr const char *MemPeakBytes = "mem.peak_bytes";
inline constexpr const char *MemTrackedLiveBytes = "mem.tracked_live_bytes";
inline constexpr const char *MemTrackedPeakBytes = "mem.tracked_peak_bytes";
inline constexpr const char *MemAllocs = "mem.allocs";

// races/ — happens-before data-race detection over the compacted
// concurrent representation (src/races/, twpp_races).
inline constexpr const char *RacesRuns = "races.runs";
inline constexpr const char *RacesThreadsCompacted =
    "races.threads_compacted";
inline constexpr const char *RacesEdgesDerived = "races.edges_derived";
inline constexpr const char *RacesSegments = "races.segments";
inline constexpr const char *RacesSegmentPairs = "races.segment_pairs";
inline constexpr const char *RacesPairsCovered = "races.pairs_covered";
inline constexpr const char *RacesFound = "races.found";
inline constexpr const char *RacesRacyPairs = "races.racy_pairs";

// ingest/ — the multi-producer ingestion frontend (twpp-wire-v1 framing,
// sequencing, backpressure, degrade-never-abort; src/ingest/,
// twpp_ingest). Wire-damage counters split by where the damage was
// caught: frames_corrupt failed the CRC (decoder), frames_invalid passed
// the CRC but would not decode (producer bug), seq_gaps are sequence
// numbers that never arrived in order.
inline constexpr const char *IngestProducers = "ingest.producers";
inline constexpr const char *IngestFrames = "ingest.frames";
inline constexpr const char *IngestFrameBytes = "ingest.frame_bytes";
inline constexpr const char *IngestEvents = "ingest.events";
inline constexpr const char *IngestFramesCorrupt = "ingest.frames_corrupt";
inline constexpr const char *IngestResyncBytes = "ingest.resync_bytes";
inline constexpr const char *IngestFramesInvalid = "ingest.frames_invalid";
inline constexpr const char *IngestFramesDuplicate =
    "ingest.frames_duplicate";
inline constexpr const char *IngestFramesReordered =
    "ingest.frames_reordered";
inline constexpr const char *IngestFramesReplayed =
    "ingest.frames_replayed";
inline constexpr const char *IngestSeqGaps = "ingest.seq_gaps";
inline constexpr const char *IngestEventsDropped = "ingest.events_dropped";
inline constexpr const char *IngestEventsLost = "ingest.events_lost";
inline constexpr const char *IngestShedFrames = "ingest.shed_frames";
inline constexpr const char *IngestShedBytes = "ingest.shed_bytes";
inline constexpr const char *IngestBackpressureWaits =
    "ingest.backpressure_waits";
inline constexpr const char *IngestReadRetries = "ingest.read_retries";
inline constexpr const char *IngestIdleTimeouts = "ingest.idle_timeouts";
inline constexpr const char *IngestDisconnects = "ingest.disconnects";
inline constexpr const char *IngestSynthesizedExits =
    "ingest.synthesized_exits";
inline constexpr const char *IngestResumes = "ingest.resumes";
inline constexpr const char *IngestCheckpoints = "ingest.checkpoints";
inline constexpr const char *IngestCheckpointFailures =
    "ingest.checkpoint_failures";
// Gauges: high-water of the bounded frame queue, and the last run's
// aggregate applied-events rate.
inline constexpr const char *IngestQueueDepthPeak =
    "ingest.queue_depth_peak";
inline constexpr const char *IngestEventsPerSec = "ingest.events_per_sec";

// dataflow/ — demand-driven queries over the compacted form.
inline constexpr const char *DataflowQueries = "dataflow.queries";
inline constexpr const char *DataflowSubqueries = "dataflow.subqueries";
inline constexpr const char *DataflowNodesVisited = "dataflow.nodes_visited";
inline constexpr const char *DataflowCacheHits = "dataflow.cache_hits";
inline constexpr const char *DataflowCacheMisses = "dataflow.cache_misses";

/// Power-of-two bucket bounds shared by the size/length histograms.
/// Header-only so instrumented libraries need no link against twpp_obs.
inline std::vector<uint64_t> powerOfTwoBounds(uint64_t MaxBound) {
  std::vector<uint64_t> Bounds;
  for (uint64_t B = 1; B <= MaxBound; B *= 2)
    Bounds.push_back(B);
  return Bounds;
}

/// Registers every canonical counter, gauge and histogram in \p Registry so
/// exports enumerate all stages even when a run exercised only a few.
void registerCanonicalMetrics(MetricsRegistry &Registry);

} // namespace twpp::obs::names

#endif // TWPP_OBS_NAMES_H
