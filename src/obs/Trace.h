//===- obs/Trace.h - Event-tracing flight recorder --------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-compiled, cheap-when-disabled event-tracing flight recorder
/// for the pipeline's own execution. Where obs/Metrics.h aggregates (how
/// much), the recorder keeps a timeline (when): each thread writes into
/// its own fixed-capacity ring buffer with no locks on the hot path, the
/// oldest events are overwritten — a true flight recorder — and an export
/// drains every ring into Chrome trace-event JSON that chrome://tracing
/// and Perfetto load directly.
///
/// Event kinds mirror the trace-event format:
///
///   * Begin/End   — duration slices, emitted by obs::PhaseSpan;
///   * Instant     — point events ("archive encoded");
///   * Counter     — sampled values (queue depth, stage bytes);
///   * FlowStart / FlowFinish — arrows linking a ThreadPool task's
///     enqueue site to its execution on a worker thread, which is what
///     stitches the cross-thread fan-out back into one timeline.
///
/// Like the metrics core, the recorder is header-only on purpose:
/// support/ (LZW, ThreadPool) sits below every other library yet emits
/// events, so recording must not force a link dependency. Only the JSON
/// exporter (exportTraceJson) lives in twpp_obs (obs/Trace.cpp).
///
/// When tracing is disabled every record call costs one relaxed atomic
/// load and touches no memory: rings are created lazily on a thread's
/// first recorded event, so a disabled run allocates nothing.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_TRACE_H
#define TWPP_OBS_TRACE_H

#include "obs/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace twpp::obs {

namespace trace_detail {

inline bool readTracingFromEnv() {
  const char *Env = std::getenv("TWPP_TRACE");
  return Env && Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0');
}

/// The global recording switch, independent of the metrics switch so a
/// trace can be captured without paying span-table aggregation and vice
/// versa.
inline std::atomic<bool> &tracingFlag() {
  static std::atomic<bool> Flag{readTracingFromEnv()};
  return Flag;
}

inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Copies \p Text into the fixed buffer \p Dst, truncating; always
/// NUL-terminates. Never allocates.
template <size_t N> void copyName(char (&Dst)[N], std::string_view Text) {
  size_t Len = Text.size() < N - 1 ? Text.size() : N - 1;
  std::memcpy(Dst, Text.data(), Len);
  Dst[Len] = '\0';
}

} // namespace trace_detail

/// The live ring-overflow counter's name. Defined here (not obs/Names.h)
/// so the ring's push path needs no extra include; obs/Names.h declares
/// names::TraceDroppedEvents with the same spelling and the obs tests
/// pin the two together.
constexpr const char *droppedEventsMetricName() {
  return "trace.dropped_events";
}

/// True when event recording is on.
inline bool tracingEnabled() {
  return trace_detail::tracingFlag().load(std::memory_order_relaxed);
}

/// Turns recording on or off at runtime (overrides TWPP_TRACE).
inline void setTracingEnabled(bool On) {
  trace_detail::tracingFlag().store(On, std::memory_order_relaxed);
}

/// One recorded event. Names are stored inline (truncated, never
/// allocated) so pushing a record writes only into the pre-allocated ring.
struct TraceRecord {
  enum class Kind : uint8_t {
    Begin,      ///< Duration slice opens ("ph":"B").
    End,        ///< Duration slice closes ("ph":"E").
    Instant,    ///< Point event ("ph":"i").
    Counter,    ///< Counter sample ("ph":"C").
    FlowStart,  ///< Flow arrow leaves this thread ("ph":"s").
    FlowFinish, ///< Flow arrow lands on this thread ("ph":"f").
  };

  static constexpr size_t NameCapacity = 48;
  static constexpr size_t ArgNameCapacity = 16;

  uint64_t TsNs = 0;   ///< Steady-clock nanoseconds.
  uint64_t FlowId = 0; ///< Nonzero for FlowStart/FlowFinish.
  int64_t Value = 0;   ///< Counter sample or slice arg value.
  Kind K = Kind::Instant;
  bool HasArg = false;           ///< Value/ArgName are meaningful.
  char Name[NameCapacity];       ///< Event name (slice, counter, flow).
  char ArgName[ArgNameCapacity]; ///< Arg key for Begin/Instant events.
};

/// One thread's fixed-capacity ring. Single writer (the owning thread);
/// snapshots are taken only while no thread is recording (the exporters
/// run after pools have joined).
class TraceRing {
public:
  TraceRing(uint32_t Tid, std::string Name, size_t Capacity)
      : Tid(Tid), ThreadName(std::move(Name)),
        Slots(Capacity < 2 ? 2 : Capacity) {}

  void push(TraceRecord::Kind K, std::string_view Name, uint64_t FlowId,
            const char *ArgName, int64_t Value, bool HasArg) {
    uint64_t Seq = Head.load(std::memory_order_relaxed);
    if (Seq >= Slots.size()) {
      // This push overwrites the oldest surviving event. Publish the
      // overflow live (trace.dropped_events) so ring sizing is observable
      // without exporting a trace; Counter::add is a no-op relaxed load
      // when metric collection is off.
      static Counter &Dropped = metrics().counter(droppedEventsMetricName());
      Dropped.add();
    }
    TraceRecord &R = Slots[Seq % Slots.size()];
    R.TsNs = trace_detail::nowNs();
    R.FlowId = FlowId;
    R.Value = Value;
    R.K = K;
    R.HasArg = HasArg;
    trace_detail::copyName(R.Name, Name);
    trace_detail::copyName(R.ArgName, ArgName ? std::string_view(ArgName)
                                              : std::string_view());
    Head.store(Seq + 1, std::memory_order_release);
  }

  uint32_t tid() const { return Tid; }
  const std::string &threadName() const { return ThreadName; }
  void setThreadName(std::string Name) { ThreadName = std::move(Name); }
  size_t capacity() const { return Slots.size(); }

  /// Total events ever pushed (monotonic; exceeds capacity after wrap).
  uint64_t pushCount() const { return Head.load(std::memory_order_acquire); }

  /// The surviving window, oldest first. Quiescence is the caller's
  /// contract (see class comment).
  std::vector<TraceRecord> drainOrdered() const {
    uint64_t Seq = pushCount();
    uint64_t First = Seq > Slots.size() ? Seq - Slots.size() : 0;
    std::vector<TraceRecord> Out;
    Out.reserve(Seq - First);
    for (uint64_t I = First; I != Seq; ++I)
      Out.push_back(Slots[I % Slots.size()]);
    return Out;
  }

  /// Incremental consumption (obs/SelfProfile): copies the records with
  /// sequence numbers in [\p Cursor, head) that still survive in the
  /// ring and advances \p Cursor to head. Records already overwritten by
  /// wraparound are skipped and added to \p Lost. After the copy the
  /// window is re-validated against the head: entries the owning thread
  /// may have overwritten mid-copy are discarded into \p Lost rather
  /// than returned torn. Reading a ring while its owner records is
  /// benign for these POD slots, but consumers that need an exact
  /// window should drain at quiescent points (the contract snapshot()
  /// documents).
  std::vector<TraceRecord> drainFrom(uint64_t &Cursor, uint64_t &Lost) const {
    uint64_t Seq = pushCount();
    uint64_t First = Seq > Slots.size() ? Seq - Slots.size() : 0;
    if (Cursor < First) {
      Lost += First - Cursor;
      Cursor = First;
    }
    std::vector<TraceRecord> Out;
    Out.reserve(static_cast<size_t>(Seq - Cursor));
    uint64_t Begin = Cursor;
    for (uint64_t I = Begin; I != Seq; ++I)
      Out.push_back(Slots[I % Slots.size()]);
    // Re-validate: pushes racing the copy above may have recycled the
    // slots we started from.
    uint64_t NewSeq = pushCount();
    uint64_t NewFirst = NewSeq > Slots.size() ? NewSeq - Slots.size() : 0;
    if (NewFirst > Begin) {
      uint64_t Torn = std::min<uint64_t>(NewFirst - Begin, Out.size());
      Out.erase(Out.begin(), Out.begin() + static_cast<size_t>(Torn));
      Lost += Torn;
    }
    Cursor = Seq;
    return Out;
  }

  /// Zeroes the ring in place and optionally resizes it. Caller must
  /// guarantee the owning thread is not recording.
  void reset(size_t NewCapacity) {
    if (NewCapacity >= 2 && NewCapacity != Slots.size())
      Slots.assign(NewCapacity, TraceRecord());
    Head.store(0, std::memory_order_release);
  }

private:
  uint32_t Tid;
  std::string ThreadName;
  std::vector<TraceRecord> Slots;
  std::atomic<uint64_t> Head{0};
};

/// Process-global registry of per-thread rings. Rings are created on a
/// thread's first recorded event and never destroyed (thread-local
/// cached pointers stay valid for the process lifetime); reset() zeroes
/// them in place.
class TraceRecorder {
public:
  /// Default per-thread ring capacity (events); ~80 bytes per slot.
  /// Overridable with TWPP_TRACE_RING or setRingCapacity().
  static constexpr size_t DefaultRingCapacity = 1 << 16;

  TraceRecorder() {
    if (const char *Env = std::getenv("TWPP_TRACE_RING")) {
      char *End = nullptr;
      unsigned long long Cap = std::strtoull(Env, &End, 10);
      if (End != Env && Cap >= 2)
        Capacity = static_cast<size_t>(Cap);
    }
  }

  /// The calling thread's ring, created (and named) on first use.
  TraceRing &ringForCurrentThread() {
    TraceRing *&Cached = cachedRing();
    if (!Cached) {
      std::lock_guard<std::mutex> Lock(M);
      uint32_t Tid = static_cast<uint32_t>(Rings.size());
      std::string Name = pendingThreadName();
      if (Name.empty())
        Name = Tid == 0 ? "main" : "thread-" + std::to_string(Tid);
      Rings.push_back(std::make_unique<TraceRing>(Tid, std::move(Name),
                                                  Capacity));
      Cached = Rings.back().get();
    }
    return *Cached;
  }

  /// Names the calling thread in exports. Applied retroactively if the
  /// ring already exists, or remembered for its creation.
  void nameCurrentThread(std::string Name) {
    if (TraceRing *Ring = cachedRing()) {
      std::lock_guard<std::mutex> Lock(M);
      Ring->setThreadName(std::move(Name));
      return;
    }
    pendingThreadName() = std::move(Name);
  }

  /// Capacity for rings created after this call; reset() applies it to
  /// existing rings too.
  void setRingCapacity(size_t NewCapacity) {
    std::lock_guard<std::mutex> Lock(M);
    if (NewCapacity >= 2)
      Capacity = NewCapacity;
  }

  /// Fresh process-unique id for one flow arrow (s/f pair).
  uint64_t nextFlowId() {
    return NextFlow.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  struct ThreadSnapshot {
    uint32_t Tid = 0;
    std::string Name;
    uint64_t Dropped = 0; ///< Events overwritten by ring wraparound.
    std::vector<TraceRecord> Records;
  };

  /// Drains every ring, oldest events first per thread. Call only while
  /// no thread is recording (pools joined, spans closed or about to be
  /// synthesized closed by the exporter).
  std::vector<ThreadSnapshot> snapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<ThreadSnapshot> Out;
    Out.reserve(Rings.size());
    for (const auto &Ring : Rings) {
      ThreadSnapshot S;
      S.Tid = Ring->tid();
      S.Name = Ring->threadName();
      S.Records = Ring->drainOrdered();
      uint64_t Pushed = Ring->pushCount();
      S.Dropped = Pushed - S.Records.size();
      Out.push_back(std::move(S));
    }
    return Out;
  }

  /// Stable handle to one live ring, for incremental consumers
  /// (obs/SelfProfile) that keep per-ring drain cursors across calls.
  struct RingRef {
    uint32_t Tid = 0;
    std::string Name;
    TraceRing *Ring = nullptr; ///< Valid for the process lifetime.
  };

  /// Every ring created so far, in tid order. Rings are never destroyed,
  /// so the pointers outlive the call; new threads may add rings later,
  /// which callers discover by calling again (tids are dense, so the
  /// vector only ever grows at the tail).
  std::vector<RingRef> rings() const {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<RingRef> Out;
    Out.reserve(Rings.size());
    for (const auto &Ring : Rings)
      Out.push_back(RingRef{Ring->tid(), Ring->threadName(), Ring.get()});
    return Out;
  }

  /// Zeroes every ring in place and re-applies the current capacity.
  /// Same quiescence contract as snapshot().
  void reset() {
    std::lock_guard<std::mutex> Lock(M);
    for (auto &Ring : Rings)
      Ring->reset(Capacity);
    NextFlow.store(0, std::memory_order_relaxed);
  }

private:
  static TraceRing *&cachedRing() {
    thread_local TraceRing *Ring = nullptr;
    return Ring;
  }
  static std::string &pendingThreadName() {
    thread_local std::string Name;
    return Name;
  }

  mutable std::mutex M;
  std::vector<std::unique_ptr<TraceRing>> Rings;
  size_t Capacity = DefaultRingCapacity;
  std::atomic<uint64_t> NextFlow{0};
};

/// The process-global recorder.
inline TraceRecorder &traceRecorder() {
  static TraceRecorder Recorder;
  return Recorder;
}

//===----------------------------------------------------------------------===//
// Recording helpers — the call-site API. Each is a no-op (one relaxed
// load) when tracing is disabled.
//===----------------------------------------------------------------------===//

/// Opens a duration slice on this thread, optionally with one numeric
/// arg ("function": 12). Pair with traceEnd().
inline void traceBegin(std::string_view Name, const char *ArgName = nullptr,
                       int64_t ArgValue = 0) {
  if (!tracingEnabled())
    return;
  traceRecorder().ringForCurrentThread().push(TraceRecord::Kind::Begin, Name,
                                              0, ArgName, ArgValue,
                                              ArgName != nullptr);
}

/// Closes the innermost open slice on this thread.
inline void traceEnd() {
  if (!tracingEnabled())
    return;
  traceRecorder().ringForCurrentThread().push(TraceRecord::Kind::End, {}, 0,
                                              nullptr, 0, false);
}

/// Thread-scoped point event.
inline void traceInstant(std::string_view Name, const char *ArgName = nullptr,
                         int64_t ArgValue = 0) {
  if (!tracingEnabled())
    return;
  traceRecorder().ringForCurrentThread().push(TraceRecord::Kind::Instant,
                                              Name, 0, ArgName, ArgValue,
                                              ArgName != nullptr);
}

/// Samples a counter track (queue depth, stage bytes).
inline void traceCounter(std::string_view Name, int64_t Value) {
  if (!tracingEnabled())
    return;
  traceRecorder().ringForCurrentThread().push(TraceRecord::Kind::Counter,
                                              Name, 0, nullptr, Value, true);
}

/// Fresh id for one flow arrow; 0 is never returned, so 0 can mean
/// "no flow" at call sites.
inline uint64_t traceNextFlowId() {
  if (!tracingEnabled())
    return 0;
  return traceRecorder().nextFlowId();
}

/// Flow arrow leaves this thread (record inside the enqueuing slice).
inline void traceFlowStart(std::string_view Name, uint64_t FlowId) {
  if (!tracingEnabled() || FlowId == 0)
    return;
  traceRecorder().ringForCurrentThread().push(TraceRecord::Kind::FlowStart,
                                              Name, FlowId, nullptr, 0,
                                              false);
}

/// Flow arrow lands on this thread (record inside the executing slice).
inline void traceFlowFinish(std::string_view Name, uint64_t FlowId) {
  if (!tracingEnabled() || FlowId == 0)
    return;
  traceRecorder().ringForCurrentThread().push(TraceRecord::Kind::FlowFinish,
                                              Name, FlowId, nullptr, 0,
                                              false);
}

/// Names the calling thread in trace exports ("pool-worker-3").
inline void setCurrentThreadName(std::string Name) {
  if (!tracingEnabled())
    return;
  traceRecorder().nameCurrentThread(std::move(Name));
}

//===----------------------------------------------------------------------===//
// Exporters — implemented in obs/Trace.cpp (twpp_obs), so recording call
// sites below the obs library never link against them.
//===----------------------------------------------------------------------===//

/// Drains every ring into one Chrome trace-event JSON document
/// ({"traceEvents": [...], ...}) loadable by chrome://tracing and
/// Perfetto. Per tid, B/E events are re-balanced against ring wraparound:
/// orphaned E events (whose B was overwritten) are dropped and unclosed
/// B events get a synthetic E at the thread's last timestamp.
std::string exportTraceJson(const TraceRecorder &Recorder);

/// Writes exportTraceJson(\p Recorder) to \p Path. \returns true on
/// success.
bool writeTraceJsonFile(const std::string &Path,
                        const TraceRecorder &Recorder);

} // namespace twpp::obs

#endif // TWPP_OBS_TRACE_H
