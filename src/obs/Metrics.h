//===- obs/Metrics.h - Pipeline telemetry primitives ------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-compiled, cheap-when-disabled telemetry for the compaction
/// pipeline: Counter, Gauge and fixed-bucket Histogram primitives in a
/// process-global MetricsRegistry. Collection is off by default (library
/// consumers pay one relaxed atomic load per instrumentation site) and is
/// toggled by the TWPP_METRICS environment variable or setMetricsEnabled().
///
/// The core is header-only on purpose: support/ (LZW) sits below every
/// other library yet is instrumented, so the primitives must not force a
/// link dependency. Only the exporters (obs/Export.h) live in twpp_obs.
///
/// Instrumentation sites cache handles so the per-event cost is one branch
/// plus one relaxed fetch_add:
///
///   static obs::Counter &Calls = obs::metrics().counter("partition.calls");
///   Calls.add();
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_OBS_METRICS_H
#define TWPP_OBS_METRICS_H

#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace twpp::obs {

namespace detail {

inline bool readEnabledFromEnv() {
  const char *Env = std::getenv("TWPP_METRICS");
  return Env && Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0');
}

/// The global collection switch. Relaxed loads keep disabled
/// instrumentation within noise in hot loops.
inline std::atomic<bool> &enabledFlag() {
  static std::atomic<bool> Flag{readEnabledFromEnv()};
  return Flag;
}

} // namespace detail

/// True when telemetry collection is on.
inline bool enabled() {
  return detail::enabledFlag().load(std::memory_order_relaxed);
}

/// Turns collection on or off at runtime (overrides TWPP_METRICS).
inline void setMetricsEnabled(bool On) {
  detail::enabledFlag().store(On, std::memory_order_relaxed);
}

/// Monotonically increasing event count. Thread-safe; no-op when disabled.
class Counter {
public:
  void add(uint64_t Delta = 1) {
    if (enabled())
      Value.fetch_add(Delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Point-in-time signed value (sizes, dictionary occupancy). set() records
/// the latest observation; add() adjusts it.
class Gauge {
public:
  void set(int64_t NewValue) {
    if (enabled())
      Value.store(NewValue, std::memory_order_relaxed);
  }

  void add(int64_t Delta) {
    if (enabled())
      Value.fetch_add(Delta, std::memory_order_relaxed);
  }

  int64_t value() const { return Value.load(std::memory_order_relaxed); }

  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Fixed-bucket histogram: one count per upper bound plus an overflow
/// bucket, with a RunningStats over the raw samples for the moments and
/// the streaming p50/p95 estimates.
class Histogram {
public:
  /// \p UpperBounds must be strictly increasing; samples <= bound land in
  /// that bucket, larger samples in the implicit overflow bucket.
  explicit Histogram(std::vector<uint64_t> UpperBounds)
      : Bounds(std::move(UpperBounds)),
        Buckets(std::make_unique<std::atomic<uint64_t>[]>(Bounds.size() + 1)) {
    for (size_t I = 0; I <= Bounds.size(); ++I)
      Buckets[I].store(0, std::memory_order_relaxed);
  }

  void record(uint64_t Sample) {
    if (!enabled())
      return;
    size_t B = std::upper_bound(Bounds.begin(), Bounds.end(), Sample - 1) -
               Bounds.begin();
    if (Sample == 0)
      B = 0;
    Buckets[B].fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(M);
    Samples.add(static_cast<double>(Sample));
  }

  const std::vector<uint64_t> &bounds() const { return Bounds; }

  std::vector<uint64_t> counts() const {
    std::vector<uint64_t> Out(Bounds.size() + 1);
    for (size_t I = 0; I < Out.size(); ++I)
      Out[I] = Buckets[I].load(std::memory_order_relaxed);
    return Out;
  }

  RunningStats stats() const {
    std::lock_guard<std::mutex> Lock(M);
    return Samples;
  }

  void reset() {
    for (size_t I = 0; I <= Bounds.size(); ++I)
      Buckets[I].store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(M);
    Samples = RunningStats();
  }

private:
  std::vector<uint64_t> Bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  mutable std::mutex M;
  RunningStats Samples;
};

/// Accumulated timing of one span path (see obs/PhaseSpan.h).
struct SpanStats {
  uint64_t Count = 0;
  double TotalUs = 0;  ///< Wall time including child spans.
  double SelfUs = 0;   ///< Wall time excluding child spans.
  RunningStats DurationsUs; ///< Per-invocation totals.
};

/// Process-global metric table. Registration returns references that stay
/// valid for the process lifetime (metrics are never destroyed by reset()),
/// so call sites may cache them in function-local statics.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    auto &Slot = Counters[Name];
    if (!Slot)
      Slot = std::make_unique<Counter>();
    return *Slot;
  }

  Gauge &gauge(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    auto &Slot = Gauges[Name];
    if (!Slot)
      Slot = std::make_unique<Gauge>();
    return *Slot;
  }

  /// \p UpperBounds is used on first registration only.
  Histogram &histogram(const std::string &Name,
                       std::vector<uint64_t> UpperBounds) {
    std::lock_guard<std::mutex> Lock(M);
    auto &Slot = Histograms[Name];
    if (!Slot)
      Slot = std::make_unique<Histogram>(std::move(UpperBounds));
    return *Slot;
  }

  /// Folds one finished span into the per-path accumulator.
  void recordSpan(const std::string &Path, double TotalUs, double SelfUs) {
    std::lock_guard<std::mutex> Lock(M);
    SpanStats &S = Spans[Path];
    ++S.Count;
    S.TotalUs += TotalUs;
    S.SelfUs += SelfUs;
    S.DurationsUs.add(TotalUs);
  }

  /// Ordered snapshots for the exporters.
  std::vector<std::pair<std::string, uint64_t>> counterSnapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<std::pair<std::string, uint64_t>> Out;
    Out.reserve(Counters.size());
    for (const auto &[Name, C] : Counters)
      Out.emplace_back(Name, C->value());
    return Out;
  }

  std::vector<std::pair<std::string, int64_t>> gaugeSnapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<std::pair<std::string, int64_t>> Out;
    Out.reserve(Gauges.size());
    for (const auto &[Name, G] : Gauges)
      Out.emplace_back(Name, G->value());
    return Out;
  }

  struct HistogramSnapshot {
    std::string Name;
    std::vector<uint64_t> Bounds;
    std::vector<uint64_t> Counts;
    RunningStats Samples;
  };
  std::vector<HistogramSnapshot> histogramSnapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<HistogramSnapshot> Out;
    Out.reserve(Histograms.size());
    for (const auto &[Name, H] : Histograms)
      Out.push_back({Name, H->bounds(), H->counts(), H->stats()});
    return Out;
  }

  struct SpanSnapshot {
    std::string Path;
    SpanStats Stats;
  };
  std::vector<SpanSnapshot> spanSnapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<SpanSnapshot> Out;
    Out.reserve(Spans.size());
    for (const auto &[Path, S] : Spans)
      Out.push_back({Path, S});
    return Out;
  }

  /// Zeroes every metric in place (references stay valid) and clears the
  /// span table. Used between bench checkpoints and by tests.
  void reset() {
    std::lock_guard<std::mutex> Lock(M);
    for (auto &[Name, C] : Counters)
      C->reset();
    for (auto &[Name, G] : Gauges)
      G->reset();
    for (auto &[Name, H] : Histograms)
      H->reset();
    Spans.clear();
  }

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, SpanStats> Spans;
};

/// The process-global registry.
inline MetricsRegistry &metrics() {
  static MetricsRegistry Registry;
  return Registry;
}

} // namespace twpp::obs

#endif // TWPP_OBS_METRICS_H
