//===- obs/SelfProfile.cpp - Continuous self-profiling --------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/SelfProfile.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/FileIO.h"
#include "wpp/Archive.h"
#include "wpp/Streaming.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>

using namespace twpp;
using namespace twpp::obs;

//===----------------------------------------------------------------------===//
// Gap buckets
//===----------------------------------------------------------------------===//

uint32_t selfprof::gapBucketOf(uint64_t Ns) {
  // Below 4ns the mantissa scheme has no room; those buckets are exact.
  if (Ns < 4)
    return static_cast<uint32_t>(Ns);
  uint32_t Exp = 63 - static_cast<uint32_t>(std::countl_zero(Ns));
  uint32_t Mant = static_cast<uint32_t>((Ns >> (Exp - 2)) & 3);
  return Exp * 4 + Mant;
}

uint64_t selfprof::gapBucketRepresentativeNs(uint32_t Bucket) {
  if (Bucket < 4)
    return Bucket;
  uint32_t Exp = Bucket / 4;
  uint32_t Mant = Bucket % 4;
  uint64_t Low = (uint64_t(4 + Mant)) << (Exp - 2);
  uint64_t Width = uint64_t(1) << (Exp - 2);
  return Low + Width / 2;
}

//===----------------------------------------------------------------------===//
// Adaptation: flight-recorder records -> well-nested Enter/Block/Exit
//===----------------------------------------------------------------------===//

namespace {

/// One span instance reconstructed from a B/E pair. Name aliases the
/// source TraceRecord's inline buffer (the caller's vectors outlive the
/// adaptation), so building the forest allocates only the nodes.
struct SpanNode {
  std::string_view Name;
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
  size_t Tid = 0;
  std::vector<SpanNode *> Children;
  std::vector<uint64_t> FlowFinishes;
  bool Detached = false;
};

void sortChildrenByBegin(SpanNode *N) {
  // Same-thread children are already in begin order; grafted worker
  // roots were appended and need merging in.
  std::stable_sort(N->Children.begin(), N->Children.end(),
                   [](const SpanNode *A, const SpanNode *B) {
                     return A->BeginNs < B->BeginNs;
                   });
  for (SpanNode *C : N->Children)
    sortChildrenByBegin(C);
}

class Lowerer {
public:
  Lowerer(RawTrace &Trace, SpanRegistry &Registry, uint64_t MinGapNs,
          SelfProfileStats &Stats)
      : Trace(Trace), Registry(Registry), MinGapNs(MinGapNs), Stats(Stats) {}

  void emitSpan(const SpanNode *N, const std::string &ParentPath) {
    std::string Path;
    if (N->Detached)
      Path = "(detached)/" + std::string(N->Name);
    else if (ParentPath.empty())
      Path = std::string(N->Name);
    else
      Path = ParentPath + "/" + std::string(N->Name);
    FunctionId F = Registry.intern(Path);
    ++Stats.Spans;
    Trace.Events.push_back(TraceEvent::enter(F));
    Trace.Events.push_back(TraceEvent::block(selfprof::CallMarkerBlock));
    uint64_t Cursor = N->BeginNs;
    for (const SpanNode *C : N->Children) {
      emitGap(C->BeginNs > Cursor ? C->BeginNs - Cursor : 0);
      emitSpan(C, Path);
      Cursor = std::max(Cursor, C->EndNs);
    }
    emitGap(N->EndNs > Cursor ? N->EndNs - Cursor : 0);
    Trace.Events.push_back(TraceEvent::exit());
  }

  const std::map<BlockId, uint64_t> &usedGapBlocks() const {
    return UsedGaps;
  }

private:
  void emitGap(uint64_t Ns) {
    if (Ns == 0 || Ns < MinGapNs)
      return;
    uint32_t Bucket = selfprof::gapBucketOf(Ns);
    BlockId B = selfprof::FirstGapBlock + Bucket;
    UsedGaps.emplace(B, selfprof::gapBucketRepresentativeNs(Bucket));
    Trace.Events.push_back(TraceEvent::block(B));
  }

  RawTrace &Trace;
  SpanRegistry &Registry;
  uint64_t MinGapNs;
  SelfProfileStats &Stats;
  std::map<BlockId, uint64_t> UsedGaps;
};

} // namespace

SpanEventStream
twpp::obs::adaptSpanRecords(const std::vector<std::vector<TraceRecord>> &PerThread,
                            SpanRegistry &Registry, uint64_t MinGapNs) {
  SpanEventStream Out;
  uint64_t OverflowsBefore = Registry.overflowCount();

  // Pass 1: rebuild each thread's span forest from its B/E stream,
  // collecting flow-arrow endpoints as we go. Ring truncation shows up
  // as orphan E records (opening B overwritten — drop, count) and as
  // still-open B records at the end (synthesize the close, count).
  std::deque<SpanNode> Pool;
  std::vector<std::vector<SpanNode *>> RootsPerTid(PerThread.size());
  std::unordered_map<uint64_t, SpanNode *> FlowOrigin;
  for (size_t Tid = 0; Tid != PerThread.size(); ++Tid) {
    std::vector<SpanNode *> Stack;
    uint64_t LastTs = 0;
    for (const TraceRecord &R : PerThread[Tid]) {
      LastTs = std::max(LastTs, R.TsNs);
      switch (R.K) {
      case TraceRecord::Kind::Begin: {
        SpanNode &N = Pool.emplace_back();
        N.Name = std::string_view(R.Name);
        N.BeginNs = R.TsNs;
        N.Tid = Tid;
        if (Stack.empty())
          RootsPerTid[Tid].push_back(&N);
        else
          Stack.back()->Children.push_back(&N);
        Stack.push_back(&N);
        break;
      }
      case TraceRecord::Kind::End:
        if (Stack.empty()) {
          ++Out.Stats.TruncatedSpans;
          break;
        }
        Stack.back()->EndNs = std::max(R.TsNs, Stack.back()->BeginNs);
        Stack.pop_back();
        break;
      case TraceRecord::Kind::FlowStart:
        if (!Stack.empty() && R.FlowId != 0)
          FlowOrigin.emplace(R.FlowId, Stack.back());
        break;
      case TraceRecord::Kind::FlowFinish:
        if (!Stack.empty() && R.FlowId != 0)
          Stack.back()->FlowFinishes.push_back(R.FlowId);
        break;
      case TraceRecord::Kind::Instant:
      case TraceRecord::Kind::Counter:
        break;
      }
    }
    for (SpanNode *N : Stack) {
      N->EndNs = std::max(LastTs, N->BeginNs);
      ++Out.Stats.UnclosedSpans;
    }
  }

  // Pass 2: graft worker-side roots under the span that enqueued them
  // (the flow arrow's origin), reproducing PhaseSpan::ScopedRoot's
  // "compact/dbb/pool" attribution from the trace alone. A root is a
  // pool-task slice iff it recorded a flow finish — thread indices are
  // ring-creation order, not "main first" (a metrics poller thread can
  // claim tid 0), so the stream itself is the only reliable signal.
  // Slices with no matching origin keep their stream under a
  // "(detached)" pseudo-stage instead of being lost; the cross-thread
  // requirement on the origin keeps a same-thread flow record from
  // grafting a root into its own subtree.
  std::vector<SpanNode *> FinalRoots;
  for (size_t Tid = 0; Tid != RootsPerTid.size(); ++Tid) {
    for (SpanNode *R : RootsPerTid[Tid]) {
      SpanNode *Parent = nullptr;
      for (uint64_t Flow : R->FlowFinishes) {
        auto It = FlowOrigin.find(Flow);
        if (It != FlowOrigin.end() && It->second != R &&
            It->second->Tid != R->Tid) {
          Parent = It->second;
          break;
        }
      }
      if (Parent) {
        Parent->Children.push_back(R);
      } else if (!R->FlowFinishes.empty()) {
        R->Detached = true;
        ++Out.Stats.OrphanFlows;
        FinalRoots.push_back(R);
      } else {
        FinalRoots.push_back(R);
      }
    }
  }
  std::stable_sort(FinalRoots.begin(), FinalRoots.end(),
                   [](const SpanNode *A, const SpanNode *B) {
                     return A->BeginNs < B->BeginNs;
                   });
  for (SpanNode *R : FinalRoots)
    sortChildrenByBegin(R);

  // Pass 3: DFS-linearize. The result is well-nested by construction —
  // timestamps only drive the gap blocks, so clock skew between threads
  // can never unbalance the stream.
  Lowerer L(Out.Trace, Registry, MinGapNs, Out.Stats);
  for (const SpanNode *R : FinalRoots)
    L.emitSpan(R, std::string());

  // A flow cycle (only possible from corrupted records) would leave
  // nodes unreachable from every root; account them as truncation
  // rather than silently shrinking the profile.
  if (Out.Stats.Spans < Pool.size())
    Out.Stats.TruncatedSpans += Pool.size() - Out.Stats.Spans;

  Out.Trace.FunctionCount = Registry.size();
  Out.FunctionPaths = Registry.paths();
  Out.GapBlocks.assign(L.usedGapBlocks().begin(), L.usedGapBlocks().end());
  Out.Stats.Events = Out.Trace.Events.size();
  Out.Stats.Functions = Registry.size();
  Out.Stats.RegistryOverflows = Registry.overflowCount() - OverflowsBefore;
  return Out;
}

//===----------------------------------------------------------------------===//
// SelfProfiler
//===----------------------------------------------------------------------===//

SelfProfiler::SelfProfiler(SelfProfileConfig C) : Config(std::move(C)) {
  if (Config.MetaPath.empty())
    Config.MetaPath = Config.ArchivePath + ".meta";
  TracingWasOn = tracingEnabled();
  setTracingEnabled(true);
}

SelfProfiler::~SelfProfiler() {
  if (!Finished)
    setTracingEnabled(TracingWasOn);
}

void SelfProfiler::drain() {
  for (const TraceRecorder::RingRef &R : traceRecorder().rings()) {
    if (R.Tid >= Cursors.size()) {
      Cursors.resize(R.Tid + 1);
      Buffered.resize(R.Tid + 1);
    }
    RingCursor &C = Cursors[R.Tid];
    C.Ring = R.Ring;
    uint64_t Lost = 0;
    std::vector<TraceRecord> Records = R.Ring->drainFrom(C.Cursor, Lost);
    LostRecords += Lost;
    for (TraceRecord &Rec : Records) {
      if (BufferedCount >= Config.MaxBufferedRecords) {
        ++LostRecords;
        continue;
      }
      Buffered[R.Tid].push_back(Rec);
      ++BufferedCount;
    }
  }
}

size_t SelfProfiler::bufferedRecords() const { return BufferedCount; }

bool SelfProfiler::finish(SelfProfileStats &Stats, std::string *Error) {
  if (Finished) {
    if (Error)
      *Error = "self-profiler already finished";
    return false;
  }
  Finished = true;
  // Stop recording before the final drain so the rings go quiescent;
  // restore the caller's tracing preference on the way out.
  setTracingEnabled(false);

  uint64_t JsonBytes = 0;
  if (Config.CompareTraceJson)
    JsonBytes = exportTraceJson(traceRecorder()).size();
  drain();

  SpanRegistry Registry(Config.RegistryCapacity);
  SpanEventStream Stream =
      adaptSpanRecords(Buffered, Registry, Config.MinGapNs);
  Stream.Stats.RecordsDropped = LostRecords;
  Stream.Stats.TraceJsonBytes = JsonBytes;

  // Feed the lowered stream through a dedicated streaming compactor —
  // the same ingest path (journal, memory budget included) any traced
  // program uses, which is the point of the dogfood.
  StreamingConfig SC;
  SC.CheckpointInterval = Config.CheckpointInterval;
  SC.JournalPath = Config.JournalPath;
  SC.MemoryBudgetBytes = Config.MemoryBudgetBytes;
  StreamingCompactor Compactor(Stream.Trace.FunctionCount, SC);
  for (const TraceEvent &E : Stream.Trace.Events) {
    switch (E.EventKind) {
    case TraceEvent::Kind::Enter:
      Compactor.onEnter(E.Id);
      break;
    case TraceEvent::Kind::Block:
      Compactor.onBlock(E.Id);
      break;
    case TraceEvent::Kind::Exit:
      Compactor.onExit();
      break;
    }
  }
  TwppWpp Wpp = Compactor.takeCompacted();

  bool Ok = true;
  IoError IoErr;
  if (!writeArchiveFile(Config.ArchivePath, Wpp, {}, &IoErr)) {
    Ok = false;
    if (Error)
      *Error = IoErr.message();
  }
  Stream.Stats.ArchiveBytes = fileSize(Config.ArchivePath).value_or(0);

  if (Ok) {
    SelfProfileMeta Meta;
    Meta.MinGapNs = Config.MinGapNs;
    Meta.FunctionPaths = Stream.FunctionPaths;
    Meta.GapBlocks = Stream.GapBlocks;
    Meta.Stats = Stream.Stats;
    std::string Text = encodeSelfProfileMeta(Meta);
    std::vector<uint8_t> Bytes(Text.begin(), Text.end());
    IoError MetaErr = writeFileBytesAtomic(Config.MetaPath, Bytes);
    if (!MetaErr.ok()) {
      Ok = false;
      if (Error)
        *Error = MetaErr.message();
    }
  }

  // Publish the run's accounting as live metrics (no-ops while metric
  // collection is off, like every other instrumentation site).
  MetricsRegistry &M = metrics();
  M.counter(names::SelfprofSpans).add(Stream.Stats.Spans);
  M.counter(names::SelfprofEvents).add(Stream.Stats.Events);
  M.counter(names::SelfprofRecordsDropped).add(Stream.Stats.RecordsDropped);
  M.counter(names::SelfprofTruncatedSpans).add(Stream.Stats.TruncatedSpans);
  M.counter(names::SelfprofUnclosedSpans).add(Stream.Stats.UnclosedSpans);
  M.counter(names::SelfprofOrphanFlows).add(Stream.Stats.OrphanFlows);
  M.counter(names::SelfprofRegistryOverflows)
      .add(Stream.Stats.RegistryOverflows);
  M.gauge(names::SelfprofFunctions)
      .set(static_cast<int64_t>(Stream.Stats.Functions));
  M.gauge(names::SelfprofArchiveBytes)
      .set(static_cast<int64_t>(Stream.Stats.ArchiveBytes));
  M.gauge(names::SelfprofTraceJsonBytes)
      .set(static_cast<int64_t>(Stream.Stats.TraceJsonBytes));

  Stats = Stream.Stats;
  setTracingEnabled(TracingWasOn);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Process-global profiler
//===----------------------------------------------------------------------===//

namespace {

std::mutex &globalProfilerMutex() {
  static std::mutex M;
  return M;
}

std::unique_ptr<SelfProfiler> &globalProfiler() {
  static std::unique_ptr<SelfProfiler> P;
  return P;
}

} // namespace

SelfProfiler *twpp::obs::selfProfiler() {
  std::lock_guard<std::mutex> Lock(globalProfilerMutex());
  return globalProfiler().get();
}

bool twpp::obs::enableSelfProfile(SelfProfileConfig Config) {
  std::lock_guard<std::mutex> Lock(globalProfilerMutex());
  if (globalProfiler())
    return false;
  globalProfiler() = std::make_unique<SelfProfiler>(std::move(Config));
  return true;
}

bool twpp::obs::maybeEnableSelfProfileFromEnv() {
  const char *Env = std::getenv("TWPP_SELF_PROFILE");
  if (Env && Env[0] != '\0') {
    SelfProfileConfig Config;
    Config.ArchivePath = Env;
    enableSelfProfile(std::move(Config));
  }
  return selfProfiler() != nullptr;
}

bool twpp::obs::finishSelfProfile(SelfProfileStats *Stats,
                                  std::string *Error) {
  std::unique_ptr<SelfProfiler> P;
  {
    std::lock_guard<std::mutex> Lock(globalProfilerMutex());
    P = std::move(globalProfiler());
  }
  if (!P)
    return true;
  SelfProfileStats Local;
  bool Ok = P->finish(Local, Error);
  if (Stats)
    *Stats = Local;
  return Ok;
}

//===----------------------------------------------------------------------===//
// Sidecar
//===----------------------------------------------------------------------===//

std::string twpp::obs::encodeSelfProfileMeta(const SelfProfileMeta &Meta) {
  std::ostringstream Out;
  Out << "twpp-selfprof-meta-v1\n";
  Out << "mingap " << Meta.MinGapNs << "\n";
  for (size_t I = 0; I != Meta.FunctionPaths.size(); ++I)
    Out << "fn " << I << " " << Meta.FunctionPaths[I] << "\n";
  for (const auto &[Block, Ns] : Meta.GapBlocks)
    Out << "blk " << Block << " " << Ns << "\n";
  const SelfProfileStats &S = Meta.Stats;
  Out << "stat spans " << S.Spans << "\n";
  Out << "stat events " << S.Events << "\n";
  Out << "stat records_dropped " << S.RecordsDropped << "\n";
  Out << "stat truncated_spans " << S.TruncatedSpans << "\n";
  Out << "stat unclosed_spans " << S.UnclosedSpans << "\n";
  Out << "stat orphan_flows " << S.OrphanFlows << "\n";
  Out << "stat registry_overflows " << S.RegistryOverflows << "\n";
  Out << "stat functions " << S.Functions << "\n";
  Out << "stat archive_bytes " << S.ArchiveBytes << "\n";
  Out << "stat trace_json_bytes " << S.TraceJsonBytes << "\n";
  return Out.str();
}

bool twpp::obs::decodeSelfProfileMeta(const std::string &Text,
                                      SelfProfileMeta &Meta) {
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "twpp-selfprof-meta-v1")
    return false;
  SelfProfileMeta Out;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream L(Line);
    std::string Tag;
    L >> Tag;
    if (Tag == "mingap") {
      if (!(L >> Out.MinGapNs))
        return false;
    } else if (Tag == "fn") {
      uint64_t Id = 0;
      if (!(L >> Id))
        return false;
      std::string Path;
      std::getline(L, Path);
      if (!Path.empty() && Path.front() == ' ')
        Path.erase(Path.begin());
      if (Id >= Out.FunctionPaths.size())
        Out.FunctionPaths.resize(Id + 1);
      Out.FunctionPaths[Id] = Path;
    } else if (Tag == "blk") {
      BlockId Block = 0;
      uint64_t Ns = 0;
      if (!(L >> Block >> Ns))
        return false;
      Out.GapBlocks.emplace_back(Block, Ns);
    } else if (Tag == "stat") {
      std::string Name;
      uint64_t Value = 0;
      if (!(L >> Name >> Value))
        return false;
      SelfProfileStats &S = Out.Stats;
      if (Name == "spans")
        S.Spans = Value;
      else if (Name == "events")
        S.Events = Value;
      else if (Name == "records_dropped")
        S.RecordsDropped = Value;
      else if (Name == "truncated_spans")
        S.TruncatedSpans = Value;
      else if (Name == "unclosed_spans")
        S.UnclosedSpans = Value;
      else if (Name == "orphan_flows")
        S.OrphanFlows = Value;
      else if (Name == "registry_overflows")
        S.RegistryOverflows = Value;
      else if (Name == "functions")
        S.Functions = Value;
      else if (Name == "archive_bytes")
        S.ArchiveBytes = Value;
      else if (Name == "trace_json_bytes")
        S.TraceJsonBytes = Value;
      // Unknown stats are ignored: forward compatibility.
    } else {
      return false; // Unknown tag: not ours.
    }
  }
  Meta = std::move(Out);
  return true;
}

bool twpp::obs::readSelfProfileMetaFile(const std::string &Path,
                                        SelfProfileMeta &Meta) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes).ok())
    return false;
  return decodeSelfProfileMeta(std::string(Bytes.begin(), Bytes.end()), Meta);
}
