//===- races/VectorClock.h - Per-thread vector clocks -----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks over the concurrent model's per-thread block clocks.
/// Component j of a clock held "at" thread i is the largest thread-j time
/// known (transitively, through happens-before edges) to precede the
/// current point of thread i. Clocks join at edge targets and are
/// otherwise constant — that constancy between edges is what the
/// compacted race engine exploits to batch whole timestamp-set runs.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_RACES_VECTORCLOCK_H
#define TWPP_RACES_VECTORCLOCK_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace twpp::races {

class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(size_t ThreadCount) : Comp(ThreadCount, 0) {}

  bool operator==(const VectorClock &Other) const = default;

  size_t size() const { return Comp.size(); }
  uint32_t operator[](size_t Thread) const { return Comp[Thread]; }

  void raise(size_t Thread, uint32_t Time) {
    Comp[Thread] = std::max(Comp[Thread], Time);
  }

  /// Componentwise max — the clock join at an edge target.
  void joinWith(const VectorClock &Other) {
    for (size_t I = 0; I != Comp.size(); ++I)
      Comp[I] = std::max(Comp[I], Other.Comp[I]);
  }

  /// True when every component of this clock is <= the matching
  /// component of \p Other (the monotonicity the verifier checks along
  /// each thread's program order).
  bool dominatedBy(const VectorClock &Other) const {
    for (size_t I = 0; I != Comp.size(); ++I)
      if (Comp[I] > Other.Comp[I])
        return false;
    return true;
  }

private:
  std::vector<uint32_t> Comp;
};

} // namespace twpp::races

#endif // TWPP_RACES_VECTORCLOCK_H
