//===- races/RaceDetect.h - Race detection on the compacted form *- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Happens-before data-race detection over a compacted concurrent WPP's
/// ConcurrencyInfo — following "Data Race Detection on Compressed Traces"
/// (PAPERS.md): analyze the compressed representation directly instead of
/// replaying events.
///
/// Two engines produce byte-identical reports:
///
///  - detectRacesCompacted: walks run-compressed access timestamp sets
///    against the constant-clock segments of each thread's timeline.
///    For a segment pair the racy region of either side is a single
///    range clip (events after what the other segment's clock already
///    ordered), so counting candidate pairs and locating the first racy
///    pair are O(runs) arithmetic — whole race-free regions are skipped
///    in one comparison, and nothing is ever expanded.
///
///  - detectRacesOracle: the naive differential baseline. Expands every
///    access set to per-event lists, assigns every event its vector
///    clock, and checks all cross-thread same-address pairs one by one.
///
/// A race report lists one entry per racy (address, threadA, threadB)
/// triple: the lexicographically first racy access pair — ordered by
/// (timeA, kindA, timeB, kindB) with Write < Read — plus the total count
/// of racy pairs for that triple.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_RACES_RACEDETECT_H
#define TWPP_RACES_RACEDETECT_H

#include "races/HappensBefore.h"
#include "wpp/Concurrent.h"

#include <string>
#include <vector>

namespace twpp::races {

/// 0 = write, 1 = read (matches AccessEvent::Kind and the report's
/// tie-break order).
using AccessKind = uint8_t;

/// One reported race: the first racy pair and the pair population of a
/// racy (Addr, ThreadA, ThreadB) triple. ThreadA < ThreadB always.
struct RacePair {
  Address Addr = 0;
  uint32_t ThreadA = 0;
  uint32_t ThreadB = 0;
  uint32_t TimeA = 0;
  uint32_t TimeB = 0;
  AccessKind KindA = 0;
  AccessKind KindB = 0;
  uint64_t PairCount = 0;

  bool operator==(const RacePair &Other) const = default;
};

/// Work accounting. PairsCovered is engine-independent (the candidate
/// universe: cross-thread same-address access-pair combinations);
/// Segments/SegmentPairs are only meaningful for the compacted engine.
struct RaceStats {
  uint64_t PairsCovered = 0;
  uint64_t Segments = 0;
  uint64_t SegmentPairs = 0;
  uint64_t RacyPairs = 0; ///< Sum of PairCount over the report.
};

struct RaceReport {
  std::vector<RacePair> Races; ///< Sorted by (Addr, ThreadA, ThreadB).
  RaceStats Stats;

  bool racy() const { return !Races.empty(); }
};

/// The production engine: segment-batched detection on the compacted
/// representation. Never expands a timestamp set.
RaceReport detectRacesCompacted(const ConcurrencyInfo &Conc);

/// The decompress-and-check oracle.
RaceReport detectRacesOracle(const ConcurrencyInfo &Conc);

/// True when the two engines agree: identical race lists (the stats are
/// engine-specific and excluded).
bool sameVerdict(const RaceReport &A, const RaceReport &B);

/// Renders the race list in a canonical single-line-per-race form used
/// by the differential tests for byte-equality and by twpp_races --text.
std::string renderRaceLines(const RaceReport &Report);

} // namespace twpp::races

#endif // TWPP_RACES_RACEDETECT_H
