//===- races/HappensBefore.h - Edge-driven clock timelines ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds, from the archive's happens-before edge list, each thread's
/// clock *timeline*: an ordered list of checkpoints (Time, Clock) where
/// the clock governing an event at per-thread time t is the clock of the
/// last checkpoint with Time < t. Clocks change only at incoming-edge
/// targets, so a thread's 1..N block clock splits into a handful of
/// *segments* of constant vector clock — typically a few dozen segments
/// against millions of block events. The compacted race engine does all
/// of its work per segment pair; it never looks inside a segment.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_RACES_HAPPENSBEFORE_H
#define TWPP_RACES_HAPPENSBEFORE_H

#include "races/VectorClock.h"
#include "trace/ThreadEvents.h"
#include "wpp/Concurrent.h"

#include <vector>

namespace twpp::races {

/// One clock change point: events of the owning thread with time > Time
/// know Clock (their own component is implicit — an event at time t
/// always knows its own past 1..t-1).
struct ClockCheckpoint {
  uint32_t Time = 0;
  VectorClock Clock;
};

/// One thread's timeline. Checkpoints[0] is always {0, bottom}; times
/// are strictly increasing.
struct ThreadTimeline {
  std::vector<ClockCheckpoint> Checkpoints;

  /// The clock governing an event at per-thread time \p Time (>= 1):
  /// the last checkpoint with Time < \p Time.
  const VectorClock &clockForEvent(uint32_t Time) const;

  /// The thread's state after completing \p Time block events: the last
  /// checkpoint with Time <= \p Time. Used for edge sources.
  const VectorClock &clockAfter(uint32_t Time) const;
};

/// The happens-before relation in checkpoint form.
struct HappensBefore {
  std::vector<ThreadTimeline> Threads;
  /// Indices (into the input edge list) of edges whose target time was
  /// not monotone with the edges already applied to that thread — a
  /// structurally invalid archive. Race verdicts over such input are
  /// unreliable; the verifier turns these into twpp-race-clock-monotone
  /// diagnostics.
  std::vector<uint32_t> OutOfOrderEdges;
};

/// Single pass over \p Edges in list order. Edge order is trusted to be
/// the derivation order (each edge's source clock is final when the edge
/// appears); per-thread target times must be non-decreasing.
HappensBefore buildHappensBefore(const ConcurrencyInfo &Conc);

} // namespace twpp::races

#endif // TWPP_RACES_HAPPENSBEFORE_H
