//===- races/RaceDetect.cpp - Race detection on the compacted form --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "races/RaceDetect.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <tuple>

using namespace twpp;
using namespace twpp::races;

namespace {

/// A thread's constant-clock segments: segment i covers per-thread times
/// (Bounds[i], Bounds[i+1]] under clock *Clocks[i].
struct SegmentList {
  std::vector<uint32_t> Bounds;
  std::vector<const VectorClock *> Clocks;

  size_t size() const { return Clocks.size(); }
};

SegmentList buildSegments(const ThreadTimeline &Timeline, uint64_t N) {
  SegmentList Out;
  for (const ClockCheckpoint &Cp : Timeline.Checkpoints) {
    if (Cp.Time >= N)
      break; // a checkpoint at (or past) N governs no events
    Out.Bounds.push_back(Cp.Time);
    Out.Clocks.push_back(&Cp.Clock);
  }
  if (!Out.Clocks.empty())
    Out.Bounds.push_back(static_cast<uint32_t>(N));
  return Out;
}

/// Counts of Set elements <= each position, for ascending \p Positions.
/// One two-pointer sweep over the runs: the compacted engine's whole
/// ordered-pair census is prefix arithmetic, never expansion.
std::vector<uint64_t> prefixCounts(const TimestampSet &Set,
                                   const std::vector<uint32_t> &Positions) {
  std::vector<uint64_t> Out(Positions.size(), 0);
  const std::vector<SeriesRun> &Runs = Set.runs();
  size_t R = 0;
  uint64_t Before = 0;
  for (size_t I = 0; I != Positions.size(); ++I) {
    uint32_t P = Positions[I];
    while (R != Runs.size() && Runs[R].Hi <= P) {
      Before += Runs[R].count();
      ++R;
    }
    uint64_t C = Before;
    if (R != Runs.size() && Runs[R].Lo <= P)
      C += (static_cast<uint64_t>(P) - Runs[R].Lo) / Runs[R].Step + 1;
    Out[I] = C;
  }
  return Out;
}

using PairTuple = std::tuple<uint32_t, uint8_t, uint32_t, uint8_t>;

constexpr PairTuple NoPair{std::numeric_limits<uint32_t>::max(), 2,
                           std::numeric_limits<uint32_t>::max(), 2};

/// First element of \p Set in [Lo, Hi], or 0 when none.
uint32_t firstInRange(const TimestampSet &Set, uint32_t Lo, uint32_t Hi) {
  if (Lo > Hi)
    return 0;
  Timestamp T = Set.firstAtLeast(Lo);
  return (T != 0 && T <= Hi) ? T : 0;
}

/// The lexicographically first racy pair within one segment pair, or
/// NoPair. Racy region of either side is the clip past what the other
/// segment's clock already ordered.
PairTuple segmentPairCandidate(const AddressAccess &A, const AddressAccess &B,
                               uint32_t LoA, uint32_t HiA, uint32_t LoB,
                               uint32_t HiB) {
  PairTuple Best = NoPair;
  uint32_t TbW = firstInRange(B.Writes, LoB, HiB);
  uint32_t TbR = firstInRange(B.Reads, LoB, HiB);
  uint32_t TbAny = 0;
  uint8_t KbAny = 0;
  if (TbW != 0 && (TbR == 0 || TbW <= TbR)) {
    TbAny = TbW;
    KbAny = 0;
  } else if (TbR != 0) {
    TbAny = TbR;
    KbAny = 1;
  }
  uint32_t TaW = firstInRange(A.Writes, LoA, HiA);
  if (TaW != 0 && TbAny != 0)
    Best = std::min(Best, PairTuple{TaW, 0, TbAny, KbAny});
  uint32_t TaR = firstInRange(A.Reads, LoA, HiA);
  if (TaR != 0 && TbW != 0)
    Best = std::min(Best, PairTuple{TaR, 1, TbW, 0});
  return Best;
}

void sortReport(RaceReport &Report) {
  std::sort(Report.Races.begin(), Report.Races.end(),
            [](const RacePair &X, const RacePair &Y) {
              return std::make_tuple(X.Addr, X.ThreadA, X.ThreadB) <
                     std::make_tuple(Y.Addr, Y.ThreadA, Y.ThreadB);
            });
}

} // namespace

RaceReport races::detectRacesCompacted(const ConcurrencyInfo &Conc) {
  obs::PhaseSpan Span("race_detect_compacted");
  RaceReport Report;
  size_t ThreadCount = Conc.Threads.size();
  HappensBefore Hb = buildHappensBefore(Conc);

  std::vector<SegmentList> Segs(ThreadCount);
  for (size_t T = 0; T != ThreadCount; ++T) {
    Segs[T] = buildSegments(Hb.Threads[T], Conc.Threads[T].BlockCount);
    Report.Stats.Segments += Segs[T].size();
  }

  for (uint32_t TA = 0; TA != ThreadCount; ++TA) {
    for (uint32_t TB = TA + 1; TB != ThreadCount; ++TB) {
      const SegmentList &SA = Segs[TA];
      const SegmentList &SB = Segs[TB];
      if (SA.size() == 0 || SB.size() == 0)
        continue;
      // Per-segment clock views of the opposite thread. Clocks are
      // monotone along program order, so these are ascending — which is
      // what lets prefixCounts sweep them in one pass.
      std::vector<uint32_t> CaOfB(SA.size()), CbOfA(SB.size());
      for (size_t I = 0; I != SA.size(); ++I)
        CaOfB[I] = (*SA.Clocks[I])[TB];
      for (size_t J = 0; J != SB.size(); ++J)
        CbOfA[J] = (*SB.Clocks[J])[TA];

      // Sorted-merge the two threads' address tables.
      const std::vector<AddressAccess> &AccA = Conc.Accesses[TA].Accesses;
      const std::vector<AddressAccess> &AccB = Conc.Accesses[TB].Accesses;
      size_t IA = 0, IB = 0;
      while (IA != AccA.size() && IB != AccB.size()) {
        if (AccA[IA].Addr < AccB[IB].Addr) {
          ++IA;
          continue;
        }
        if (AccB[IB].Addr < AccA[IA].Addr) {
          ++IB;
          continue;
        }
        const AddressAccess &A = AccA[IA];
        const AddressAccess &B = AccB[IB];
        ++IA;
        ++IB;

        uint64_t NWA = A.Writes.count(), NRA = A.Reads.count();
        uint64_t NWB = B.Writes.count(), NRB = B.Reads.count();
        Report.Stats.PairsCovered += (NWA + NRA) * (NWB + NRB);
        if (NWA + NWB == 0)
          continue; // read-read only

        // Candidate pairs with at least one write, then subtract the
        // ordered ones: a pair (ta, tb) with ta <= clock_b(tb)[TA] is
        // ordered A-before-B (and symmetrically), and a consistent edge
        // set never orders a pair both ways.
        std::vector<uint64_t> PrefWAatB = prefixCounts(A.Writes, CbOfA);
        std::vector<uint64_t> PrefRAatB = prefixCounts(A.Reads, CbOfA);
        std::vector<uint64_t> PrefWBatA = prefixCounts(B.Writes, CaOfB);
        std::vector<uint64_t> PrefRBatA = prefixCounts(B.Reads, CaOfB);
        std::vector<uint64_t> PrefWAbounds = prefixCounts(A.Writes, SA.Bounds);
        std::vector<uint64_t> PrefRAbounds = prefixCounts(A.Reads, SA.Bounds);
        std::vector<uint64_t> PrefWBbounds = prefixCounts(B.Writes, SB.Bounds);
        std::vector<uint64_t> PrefRBbounds = prefixCounts(B.Reads, SB.Bounds);

        int64_t Racy = static_cast<int64_t>(NWA * (NWB + NRB) + NRA * NWB);
        for (size_t J = 0; J != SB.size(); ++J) {
          uint64_t SegWB = PrefWBbounds[J + 1] - PrefWBbounds[J];
          uint64_t SegRB = PrefRBbounds[J + 1] - PrefRBbounds[J];
          Racy -= static_cast<int64_t>(PrefWAatB[J] * (SegWB + SegRB) +
                                       PrefRAatB[J] * SegWB);
        }
        for (size_t I = 0; I != SA.size(); ++I) {
          uint64_t SegWA = PrefWAbounds[I + 1] - PrefWAbounds[I];
          uint64_t SegRA = PrefRAbounds[I + 1] - PrefRAbounds[I];
          Racy -= static_cast<int64_t>(SegWA * (PrefWBatA[I] + PrefRBatA[I]) +
                                       SegRA * PrefWBatA[I]);
        }
        Report.Stats.SegmentPairs += SA.size() + SB.size();
        if (Racy <= 0)
          continue;

        // Locate the first racy pair. Segments partition each thread's
        // clock, so the earliest racy A-time lives in the first A
        // segment yielding any candidate; only then are B's segments
        // scanned, clipped to the mutually-unordered region.
        PairTuple Best = NoPair;
        for (size_t I = 0; I != SA.size() && Best == NoPair; ++I) {
          if (PrefWAbounds[I + 1] - PrefWAbounds[I] +
                  (PrefRAbounds[I + 1] - PrefRAbounds[I]) ==
              0)
            continue;
          uint32_t Ca = CaOfB[I];
          for (size_t J = 0; J != SB.size(); ++J) {
            if (PrefWBbounds[J + 1] - PrefWBbounds[J] +
                    (PrefRBbounds[J + 1] - PrefRBbounds[J]) ==
                0)
              continue;
            Report.Stats.SegmentPairs += 1;
            uint32_t LoA = std::max(SA.Bounds[I] + 1, CbOfA[J] + 1);
            uint32_t LoB = std::max(SB.Bounds[J] + 1, Ca + 1);
            Best = std::min(Best,
                            segmentPairCandidate(A, B, LoA, SA.Bounds[I + 1],
                                                 LoB, SB.Bounds[J + 1]));
          }
        }
        if (Best == NoPair)
          continue; // inconsistent edges; verifier owns the diagnosis
        RacePair Race;
        Race.Addr = A.Addr;
        Race.ThreadA = TA;
        Race.ThreadB = TB;
        Race.TimeA = std::get<0>(Best);
        Race.KindA = std::get<1>(Best);
        Race.TimeB = std::get<2>(Best);
        Race.KindB = std::get<3>(Best);
        Race.PairCount = static_cast<uint64_t>(Racy);
        Report.Stats.RacyPairs += Race.PairCount;
        Report.Races.push_back(Race);
      }
    }
  }
  sortReport(Report);

  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    M.counter(obs::names::RacesRuns).add();
    M.counter(obs::names::RacesSegments).add(Report.Stats.Segments);
    M.counter(obs::names::RacesSegmentPairs).add(Report.Stats.SegmentPairs);
    M.counter(obs::names::RacesPairsCovered).add(Report.Stats.PairsCovered);
    M.counter(obs::names::RacesFound).add(Report.Races.size());
    M.counter(obs::names::RacesRacyPairs).add(Report.Stats.RacyPairs);
  }
  return Report;
}

RaceReport races::detectRacesOracle(const ConcurrencyInfo &Conc) {
  obs::PhaseSpan Span("race_detect_oracle");
  RaceReport Report;
  size_t ThreadCount = Conc.Threads.size();
  HappensBefore Hb = buildHappensBefore(Conc);

  // Decompress: every access set becomes explicit (time, kind) events,
  // every event gets the index of its governing checkpoint.
  struct OracleEvent {
    uint32_t Time;
    uint8_t Kind;
    uint32_t Checkpoint;
  };
  struct OracleAddr {
    Address Addr;
    std::vector<OracleEvent> Events; // sorted (Time, Kind)
  };
  std::vector<std::vector<OracleAddr>> Expanded(ThreadCount);
  for (size_t T = 0; T != ThreadCount; ++T) {
    const std::vector<ClockCheckpoint> &Cps = Hb.Threads[T].Checkpoints;
    for (const AddressAccess &Acc : Conc.Accesses[T].Accesses) {
      OracleAddr Out;
      Out.Addr = Acc.Addr;
      std::vector<Timestamp> Writes = Acc.Writes.toVector();
      std::vector<Timestamp> Reads = Acc.Reads.toVector();
      size_t IW = 0, IR = 0;
      uint32_t Cp = 0; // events ascend, so the checkpoint cursor only moves
      while (IW != Writes.size() || IR != Reads.size()) {
        bool TakeWrite =
            IR == Reads.size() ||
            (IW != Writes.size() && Writes[IW] <= Reads[IR]);
        uint32_t Time = TakeWrite ? Writes[IW++] : Reads[IR++];
        while (Cp + 1 != Cps.size() && Cps[Cp + 1].Time < Time)
          ++Cp;
        Out.Events.push_back({Time, TakeWrite ? uint8_t(0) : uint8_t(1), Cp});
      }
      Expanded[T].push_back(std::move(Out));
    }
  }

  for (uint32_t TA = 0; TA != ThreadCount; ++TA) {
    for (uint32_t TB = TA + 1; TB != ThreadCount; ++TB) {
      const std::vector<ClockCheckpoint> &CpsA = Hb.Threads[TA].Checkpoints;
      const std::vector<ClockCheckpoint> &CpsB = Hb.Threads[TB].Checkpoints;
      size_t IA = 0, IB = 0;
      const std::vector<OracleAddr> &AddrsA = Expanded[TA];
      const std::vector<OracleAddr> &AddrsB = Expanded[TB];
      while (IA != AddrsA.size() && IB != AddrsB.size()) {
        if (AddrsA[IA].Addr < AddrsB[IB].Addr) {
          ++IA;
          continue;
        }
        if (AddrsB[IB].Addr < AddrsA[IA].Addr) {
          ++IB;
          continue;
        }
        const OracleAddr &A = AddrsA[IA];
        const OracleAddr &B = AddrsB[IB];
        ++IA;
        ++IB;
        Report.Stats.PairsCovered +=
            static_cast<uint64_t>(A.Events.size()) * B.Events.size();
        uint64_t Count = 0;
        PairTuple Best = NoPair;
        for (const OracleEvent &Ea : A.Events) {
          uint32_t CaB = CpsA[Ea.Checkpoint].Clock[TB];
          for (const OracleEvent &Eb : B.Events) {
            if (Ea.Kind == 1 && Eb.Kind == 1)
              continue;
            if (Ea.Time <= CpsB[Eb.Checkpoint].Clock[TA])
              continue; // A-event ordered before B-event
            if (Eb.Time <= CaB)
              continue; // B-event ordered before A-event
            ++Count;
            Best = std::min(Best, PairTuple{Ea.Time, Ea.Kind, Eb.Time,
                                            Eb.Kind});
          }
        }
        if (Count == 0)
          continue;
        RacePair Race;
        Race.Addr = A.Addr;
        Race.ThreadA = TA;
        Race.ThreadB = TB;
        Race.TimeA = std::get<0>(Best);
        Race.KindA = std::get<1>(Best);
        Race.TimeB = std::get<2>(Best);
        Race.KindB = std::get<3>(Best);
        Race.PairCount = Count;
        Report.Stats.RacyPairs += Count;
        Report.Races.push_back(Race);
      }
    }
  }
  sortReport(Report);
  return Report;
}

bool races::sameVerdict(const RaceReport &A, const RaceReport &B) {
  return A.Races == B.Races;
}

std::string races::renderRaceLines(const RaceReport &Report) {
  std::string Out;
  char Line[160];
  for (const RacePair &R : Report.Races) {
    std::snprintf(Line, sizeof(Line),
                  "race addr=0x%llx threads=%u,%u first=%c@%u/%c@%u pairs=%llu\n",
                  static_cast<unsigned long long>(R.Addr), R.ThreadA, R.ThreadB,
                  R.KindA == 0 ? 'W' : 'R', R.TimeA, R.KindB == 0 ? 'W' : 'R',
                  R.TimeB, static_cast<unsigned long long>(R.PairCount));
    Out += Line;
  }
  return Out;
}
