//===- races/HappensBefore.cpp - Edge-driven clock timelines --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "races/HappensBefore.h"

#include <algorithm>
#include <cassert>

using namespace twpp;
using namespace twpp::races;

const VectorClock &ThreadTimeline::clockForEvent(uint32_t Time) const {
  assert(Time >= 1 && "event times are 1-based");
  // Last checkpoint with Time_cp < Time. Checkpoints are few; binary
  // search keeps the oracle's per-event lookups honest at scale.
  auto It = std::partition_point(
      Checkpoints.begin(), Checkpoints.end(),
      [Time](const ClockCheckpoint &C) { return C.Time < Time; });
  return (It - 1)->Clock;
}

const VectorClock &ThreadTimeline::clockAfter(uint32_t Time) const {
  auto It = std::partition_point(
      Checkpoints.begin(), Checkpoints.end(),
      [Time](const ClockCheckpoint &C) { return C.Time <= Time; });
  return (It - 1)->Clock;
}

HappensBefore races::buildHappensBefore(const ConcurrencyInfo &Conc) {
  size_t ThreadCount = Conc.Threads.size();
  HappensBefore Out;
  Out.Threads.resize(ThreadCount);
  for (ThreadTimeline &T : Out.Threads)
    T.Checkpoints.push_back({0, VectorClock(ThreadCount)});

  for (uint32_t I = 0; I != Conc.Edges.size(); ++I) {
    const HbEdge &E = Conc.Edges[I];
    if (E.FromThread >= ThreadCount || E.ToThread >= ThreadCount) {
      Out.OutOfOrderEdges.push_back(I);
      continue;
    }
    // Source: the source thread's knowledge after FromTime block events,
    // plus its own elapsed time. Derivation order guarantees every edge
    // into the source at times <= FromTime was already applied.
    VectorClock Src = Out.Threads[E.FromThread].clockAfter(E.FromTime);
    Src.raise(E.FromThread, E.FromTime);

    std::vector<ClockCheckpoint> &Cps = Out.Threads[E.ToThread].Checkpoints;
    ClockCheckpoint &Last = Cps.back();
    if (E.ToTime < Last.Time) {
      // Non-monotone target: record it and fold into the final
      // checkpoint so verdicts stay total (the verifier flags the
      // archive as invalid regardless).
      Out.OutOfOrderEdges.push_back(I);
      Last.Clock.joinWith(Src);
      continue;
    }
    if (E.ToTime == Last.Time) {
      Last.Clock.joinWith(Src);
      continue;
    }
    ClockCheckpoint Next;
    Next.Time = E.ToTime;
    Next.Clock = Last.Clock;
    Next.Clock.joinWith(Src);
    Cps.push_back(std::move(Next));
  }
  return Out;
}
