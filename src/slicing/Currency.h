//===- slicing/Currency.h - Dynamic currency determination ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic currency determination for debugging optimized code (paper
/// Section 4.3.2, Figure 12). Code motion (e.g. partial dead code
/// elimination) relocates assignments; at a breakpoint the debugger must
/// decide whether a variable's value in the optimized execution is the
/// value the unoptimized program would have had ("current"). Timestamped
/// block executions make this decidable: replay the executed path prefix
/// up to the breakpoint, find the reaching definition under the original
/// and the optimized placements, and compare.
///
/// Assumption (holds for assignment motion like PDE): the optimization
/// moves assignments between blocks but leaves the CFG shape — and hence
/// the executed block path — unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SLICING_CURRENCY_H
#define TWPP_SLICING_CURRENCY_H

#include "dataflow/AnnotatedCfg.h"
#include "ir/Ir.h"
#include "ir/SinkAssignments.h"

#include <vector>

namespace twpp {

/// One definition of the inspected variable; the same DefId appears in
/// both placements.
struct DefSite {
  uint32_t DefId;    ///< Stable identity of the assignment.
  BlockId Block;     ///< Block holding it under this placement.
  uint32_t Ordinal;  ///< Intra-block position (for multiple defs per
                     ///< block).
};

/// A currency question: where the defs of one variable live before and
/// after optimization.
struct CurrencyProblem {
  std::vector<DefSite> OriginalDefs;
  std::vector<DefSite> OptimizedDefs;
};

/// Verdict for a variable at a breakpoint.
enum class Currency {
  Current,    ///< Optimized value == unoptimized value provenance.
  NonCurrent, ///< A different definition provides the value.
};

/// Decides currency at the instance of the breakpoint block executing at
/// timestamp \p BreakTime, given the executed path recorded in \p Cfg
/// (statement/block-level annotated dynamic CFG).
Currency checkCurrency(const AnnotatedDynamicCfg &Cfg, Timestamp BreakTime,
                       const CurrencyProblem &Problem);

/// Builds the currency question for \p Var from an assignment-sinking
/// run: original definition sites from \p Original, optimized sites
/// recovered through the pass's origin map.
CurrencyProblem currencyProblemFor(const Function &Original,
                                   const SinkResult &Sunk, VarId Var);

} // namespace twpp

#endif // TWPP_SLICING_CURRENCY_H
