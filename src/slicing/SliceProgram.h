//===- slicing/SliceProgram.h - Statement-level program model ---*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement-level program model the dynamic slicing algorithms
/// operate on (paper Section 4.3.2). Each statement is one CFG node — as
/// in the paper's Figure 10 example — with its defined variable, used
/// variables, and static control dependence. Static data dependences (for
/// Agrawal–Horgan approach 1) come from a classic iterative
/// reaching-definitions analysis over the static CFG.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SLICING_SLICEPROGRAM_H
#define TWPP_SLICING_SLICEPROGRAM_H

#include "ir/Ir.h"
#include "trace/Events.h"

#include <cstdint>
#include <string>
#include <vector>

namespace twpp {

/// One statement (= one CFG node; ids are 1-based).
struct SliceStmt {
  std::string Label;          ///< Human-readable text for demos.
  VarId Def = NoVar;          ///< Variable defined (NoVar for none).
  std::vector<VarId> Uses;    ///< Variables read.
  BlockId ControlDep = 0;     ///< Predicate statement governing this one
                              ///< (0 = none).
  bool IsPredicate = false;
};

/// A statement-level program: statements plus the static CFG.
struct SliceProgram {
  std::vector<SliceStmt> Stmts;            ///< Stmts[i] has id i+1.
  std::vector<std::vector<BlockId>> Succs; ///< Static successors, by id-1.

  uint32_t stmtCount() const { return static_cast<uint32_t>(Stmts.size()); }
  const SliceStmt &stmt(BlockId Id) const { return Stmts[Id - 1]; }
};

/// A static data dependence edge: \p Use reads a variable that \p Def may
/// define on some static path.
struct DataDepEdge {
  BlockId Use;
  BlockId Def;
  VarId Var;

  bool operator==(const DataDepEdge &Other) const = default;
};

/// Computes may reaching-definition data dependences over the static CFG
/// (iterative bit-vector analysis).
std::vector<DataDepEdge> computeStaticDataDeps(const SliceProgram &Program);

/// Builds the paper's Figure 10 example program (14 statements; `read N`,
/// the `while` loop with the `if`, `Z = Z + J`, breakpoint) along with the
/// variable ids used. The execution for input N=3, X=(-4, 3, -2) produces
/// the paper's 30-step statement trace.
struct Figure10Program {
  SliceProgram Program;
  std::vector<BlockId> Trace;  ///< The 30-step executed statement sequence.
  VarId VarN, VarI, VarJ, VarX, VarY, VarZ;
  BlockId Breakpoint;          ///< Statement 14.
};
Figure10Program buildFigure10Program();

} // namespace twpp

#endif // TWPP_SLICING_SLICEPROGRAM_H
