//===- slicing/DynamicSlicer.cpp - Agrawal–Horgan slicing on TWPP ---------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/DynamicSlicer.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace twpp;

bool SliceResult::contains(BlockId Stmt) const {
  return std::binary_search(Stmts.begin(), Stmts.end(), Stmt);
}

bool twpp::findLastDefInstance(const SliceProgram &Program,
                               const AnnotatedDynamicCfg &Cfg, VarId Var,
                               Timestamp Time, BlockId &DefStmt,
                               Timestamp &DefTime) {
  // (t, n) -> (t-1, m): walk the trace backwards via the timestamp
  // annotations until a defining statement's instance is met.
  for (Timestamp T = Time; T > 1;) {
    --T;
    size_t Node = Cfg.nodeAt(T);
    if (Node == AnnotatedDynamicCfg::npos)
      return false;
    BlockId Stmt = Cfg.Nodes[Node].Head;
    if (Program.stmt(Stmt).Def == Var) {
      DefStmt = Stmt;
      DefTime = T;
      return true;
    }
  }
  return false;
}

bool twpp::findLastInstanceOf(const AnnotatedDynamicCfg &Cfg, BlockId Stmt,
                              Timestamp Time, Timestamp &InstanceTime) {
  size_t Node = Cfg.nodeIndexOf(Stmt);
  if (Node == AnnotatedDynamicCfg::npos || Time <= 1)
    return false;
  const TimestampSet &Times = Cfg.Nodes[Node].Times;
  // Largest timestamp < Time.
  bool Found = false;
  for (const SeriesRun &Run : Times.runs()) {
    if (Run.Lo >= Time)
      break;
    Timestamp Candidate;
    if (Run.Hi < Time)
      Candidate = Run.Hi;
    else
      Candidate = Run.Lo + ((Time - 1 - Run.Lo) / Run.Step) * Run.Step;
    InstanceTime = Candidate;
    Found = true;
  }
  return Found;
}

namespace {

/// Whether \p Stmt executed at all in the trace.
bool executed(const AnnotatedDynamicCfg &Cfg, BlockId Stmt) {
  size_t Node = Cfg.nodeIndexOf(Stmt);
  return Node != AnnotatedDynamicCfg::npos &&
         !Cfg.Nodes[Node].Times.empty();
}

SliceResult finalize(const std::set<BlockId> &Stmts, uint64_t Queries) {
  SliceResult Result;
  Result.Stmts.assign(Stmts.begin(), Stmts.end());
  Result.QueriesGenerated = Queries;
  return Result;
}

} // namespace

SliceResult twpp::sliceApproach1(const SliceProgram &Program,
                                 const AnnotatedDynamicCfg &Cfg,
                                 BlockId Criterion, VarId Var) {
  // Static PDG traversal, restricted to executed (marked) nodes.
  std::vector<DataDepEdge> DataDeps = computeStaticDataDeps(Program);

  std::set<BlockId> Slice;
  std::set<std::pair<BlockId, VarId>> VisitedQueries;
  std::deque<std::pair<BlockId, VarId>> Work;
  std::deque<BlockId> NewStmts;
  uint64_t Queries = 0;

  auto Enqueue = [&](BlockId Stmt, VarId V) {
    if (VisitedQueries.insert({Stmt, V}).second) {
      Work.push_back({Stmt, V});
      ++Queries;
    }
  };
  auto AddStmt = [&](BlockId Stmt) {
    if (Slice.insert(Stmt).second)
      NewStmts.push_back(Stmt);
  };

  Slice.insert(Criterion);
  Enqueue(Criterion, Var);
  if (BlockId Ctrl = Program.stmt(Criterion).ControlDep;
      Ctrl != 0 && executed(Cfg, Ctrl))
    AddStmt(Ctrl);

  while (!Work.empty() || !NewStmts.empty()) {
    while (!NewStmts.empty()) {
      BlockId Stmt = NewStmts.front();
      NewStmts.pop_front();
      for (VarId Use : Program.stmt(Stmt).Uses)
        Enqueue(Stmt, Use);
      if (BlockId Ctrl = Program.stmt(Stmt).ControlDep;
          Ctrl != 0 && executed(Cfg, Ctrl))
        AddStmt(Ctrl);
    }
    if (Work.empty())
      break;
    auto [Stmt, V] = Work.front();
    Work.pop_front();
    for (const DataDepEdge &Edge : DataDeps)
      if (Edge.Use == Stmt && Edge.Var == V && executed(Cfg, Edge.Def))
        AddStmt(Edge.Def);
  }
  return finalize(Slice, Queries);
}

SliceResult twpp::sliceApproach2(const SliceProgram &Program,
                                 const AnnotatedDynamicCfg &Cfg,
                                 BlockId Criterion, VarId Var) {
  std::set<BlockId> Slice;
  std::set<std::pair<BlockId, VarId>> VisitedQueries;
  // A query carries every timestamp of its statement (node granularity).
  std::deque<std::pair<BlockId, VarId>> Work;
  uint64_t Queries = 0;

  Slice.insert(Criterion);
  auto Enqueue = [&](BlockId Stmt, VarId V) {
    if (VisitedQueries.insert({Stmt, V}).second) {
      Work.push_back({Stmt, V});
      ++Queries;
    }
  };

  // Adds \p Stmt to the slice; raises queries for its uses and resolves
  // its (exercised) control dependence.
  std::deque<BlockId> NewStmts;
  auto AddStmt = [&](BlockId Stmt) {
    if (Slice.insert(Stmt).second)
      NewStmts.push_back(Stmt);
  };

  Enqueue(Criterion, Var);
  {
    BlockId Ctrl = Program.stmt(Criterion).ControlDep;
    if (Ctrl != 0 && executed(Cfg, Ctrl))
      AddStmt(Ctrl);
  }

  while (!Work.empty() || !NewStmts.empty()) {
    while (!NewStmts.empty()) {
      BlockId Stmt = NewStmts.front();
      NewStmts.pop_front();
      for (VarId Use : Program.stmt(Stmt).Uses)
        Enqueue(Stmt, Use);
      BlockId Ctrl = Program.stmt(Stmt).ControlDep;
      if (Ctrl != 0 && executed(Cfg, Ctrl))
        AddStmt(Ctrl);
    }
    if (Work.empty())
      break;
    auto [Stmt, V] = Work.front();
    Work.pop_front();

    // Find the defining statements exercised by *any* instance of Stmt.
    size_t Node = Cfg.nodeIndexOf(Stmt);
    if (Node == AnnotatedDynamicCfg::npos)
      continue;
    std::set<BlockId> Defs;
    for (Timestamp T : Cfg.Nodes[Node].Times.toVector()) {
      BlockId DefStmt;
      Timestamp DefTime;
      if (findLastDefInstance(Program, Cfg, V, T, DefStmt, DefTime))
        Defs.insert(DefStmt);
    }
    for (BlockId Def : Defs)
      AddStmt(Def);
  }
  return finalize(Slice, Queries);
}

SliceResult twpp::sliceApproach3(const SliceProgram &Program,
                                 const AnnotatedDynamicCfg &Cfg,
                                 BlockId Criterion, VarId Var,
                                 Timestamp Time) {
  std::set<BlockId> Slice;
  std::set<std::pair<Timestamp, VarId>> VisitedQueries;
  std::set<Timestamp> VisitedInstances;
  // Instance-level queries: find the def of V before timestamp T.
  std::deque<std::pair<Timestamp, VarId>> Work;
  std::deque<Timestamp> NewInstances;
  uint64_t Queries = 0;

  Slice.insert(Criterion);
  auto EnqueueQuery = [&](Timestamp T, VarId V) {
    if (VisitedQueries.insert({T, V}).second) {
      Work.push_back({T, V});
      ++Queries;
    }
  };
  /// Brings the instance (Stmt at T) into the slice and schedules its
  /// dependences.
  auto AddInstance = [&](BlockId Stmt, Timestamp T) {
    Slice.insert(Stmt);
    if (VisitedInstances.insert(T).second)
      NewInstances.push_back(T);
  };

  EnqueueQuery(Time, Var);
  {
    BlockId Ctrl = Program.stmt(Criterion).ControlDep;
    Timestamp CtrlTime;
    if (Ctrl != 0 && findLastInstanceOf(Cfg, Ctrl, Time, CtrlTime))
      AddInstance(Ctrl, CtrlTime);
  }

  while (!Work.empty() || !NewInstances.empty()) {
    while (!NewInstances.empty()) {
      Timestamp T = NewInstances.front();
      NewInstances.pop_front();
      size_t Node = Cfg.nodeAt(T);
      if (Node == AnnotatedDynamicCfg::npos)
        continue;
      BlockId Stmt = Cfg.Nodes[Node].Head;
      for (VarId Use : Program.stmt(Stmt).Uses)
        EnqueueQuery(T, Use);
      BlockId Ctrl = Program.stmt(Stmt).ControlDep;
      Timestamp CtrlTime;
      if (Ctrl != 0 && findLastInstanceOf(Cfg, Ctrl, T, CtrlTime))
        AddInstance(Ctrl, CtrlTime);
    }
    if (Work.empty())
      break;
    auto [T, V] = Work.front();
    Work.pop_front();
    BlockId DefStmt;
    Timestamp DefTime;
    if (findLastDefInstance(Program, Cfg, V, T, DefStmt, DefTime))
      AddInstance(DefStmt, DefTime);
  }
  return finalize(Slice, Queries);
}
