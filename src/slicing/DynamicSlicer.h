//===- slicing/DynamicSlicer.h - Agrawal–Horgan slicing on TWPP -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three Agrawal–Horgan dynamic slicing algorithms, implemented over
/// one common representation — the timestamp-annotated dynamic CFG — as
/// the paper advocates (Section 4.3.2), instead of the three specialized
/// dependence graphs of the original formulation:
///
///  * Approach 1: traverse the static PDG restricted to *executed nodes*
///    (nodes with a non-empty timestamp set).
///  * Approach 2: traverse only dependence edges *exercised by some
///    instance*; when a dependence is found, widen the new query to every
///    timestamp of the defining node.
///  * Approach 3: track exact statement *instances*; only the precise
///    defining/controlling instance generates new queries.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SLICING_DYNAMICSLICER_H
#define TWPP_SLICING_DYNAMICSLICER_H

#include "dataflow/AnnotatedCfg.h"
#include "slicing/SliceProgram.h"

#include <vector>

namespace twpp {

/// A computed slice: the statement ids, sorted ascending, plus the number
/// of <T, n> queries the computation generated (the paper reports query
/// traffic in Figure 11).
struct SliceResult {
  std::vector<BlockId> Stmts;
  uint64_t QueriesGenerated = 0;

  bool contains(BlockId Stmt) const;
};

/// Approach 1: executed-node restricted static PDG traversal. The
/// criterion is variable \p Var at statement \p Criterion.
SliceResult sliceApproach1(const SliceProgram &Program,
                           const AnnotatedDynamicCfg &Cfg, BlockId Criterion,
                           VarId Var);

/// Approach 2: executed-edge restricted traversal; node granularity.
SliceResult sliceApproach2(const SliceProgram &Program,
                           const AnnotatedDynamicCfg &Cfg, BlockId Criterion,
                           VarId Var);

/// Approach 3: exact instance-level traversal from the instance of
/// \p Criterion executing at timestamp \p Time.
SliceResult sliceApproach3(const SliceProgram &Program,
                           const AnnotatedDynamicCfg &Cfg, BlockId Criterion,
                           VarId Var, Timestamp Time);

/// Finds the most recent instance before \p Time whose statement defines
/// \p Var, walking the annotated dynamic CFG backwards one timestamp at a
/// time. \returns false when no prior definition executed.
bool findLastDefInstance(const SliceProgram &Program,
                         const AnnotatedDynamicCfg &Cfg, VarId Var,
                         Timestamp Time, BlockId &DefStmt,
                         Timestamp &DefTime);

/// Finds the most recent execution of statement \p Stmt strictly before
/// \p Time. \returns false when it never executed before then.
bool findLastInstanceOf(const AnnotatedDynamicCfg &Cfg, BlockId Stmt,
                        Timestamp Time, Timestamp &InstanceTime);

} // namespace twpp

#endif // TWPP_SLICING_DYNAMICSLICER_H
