//===- slicing/IrSliceBridge.cpp - Slice programs from the mini IR --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/IrSliceBridge.h"

#include "slicing/ControlDeps.h"

#include <cassert>
#include <string>

using namespace twpp;

std::vector<BlockId> IrSliceProgram::expandTrace(
    const std::vector<BlockId> &BlockTrace) const {
  std::vector<BlockId> Out;
  for (BlockId Block : BlockTrace) {
    assert(Block >= 1 && Block <= NodesOfBlock.size() &&
           "block id out of range");
    const auto &Nodes = NodesOfBlock[Block - 1];
    Out.insert(Out.end(), Nodes.begin(), Nodes.end());
  }
  return Out;
}

BlockId IrSliceProgram::nodeOf(BlockId Block, size_t Ordinal) const {
  if (Block == 0 || Block > NodesOfBlock.size())
    return 0;
  const auto &Nodes = NodesOfBlock[Block - 1];
  return Ordinal < Nodes.size() ? Nodes[Ordinal] : 0;
}

namespace {

std::string labelOf(const Stmt &S) {
  switch (S.StmtKind) {
  case Stmt::Kind::Assign:
    return "assign v" + std::to_string(S.Target);
  case Stmt::Kind::Read:
    return "read v" + std::to_string(S.Target);
  case Stmt::Kind::Print:
    return "print";
  case Stmt::Kind::Call:
    return S.Target == NoVar
               ? "call f" + std::to_string(S.Callee)
               : "v" + std::to_string(S.Target) + " = call f" +
                     std::to_string(S.Callee);
  }
  return "stmt";
}

} // namespace

IrSliceProgram twpp::buildSliceProgram(const Function &F) {
  IrSliceProgram Out;
  Out.NodesOfBlock.resize(F.blockCount());

  // Pass 1: one slice node per statement, plus one per conditional or
  // value-returning terminator.
  auto Push = [&Out](BlockId Block, SliceStmt Node,
                     IrSliceProgram::NodeKind Kind, FunctionId Callee) {
    Out.Program.Stmts.push_back(std::move(Node));
    Out.Kinds.push_back(Kind);
    Out.Callees.push_back(Callee);
    Out.NodesOfBlock[Block - 1].push_back(
        static_cast<BlockId>(Out.Program.Stmts.size()));
  };
  for (BlockId Block = 1; Block <= F.blockCount(); ++Block) {
    const BasicBlock &B = F.block(Block);
    for (const Stmt &S : B.Stmts) {
      SliceStmt Node;
      Node.Label = labelOf(S);
      Node.Def = S.Target == NoVar ? NoVar : S.Target;
      Node.Uses = stmtUses(F, S);
      bool IsCall = S.StmtKind == Stmt::Kind::Call;
      Push(Block, std::move(Node),
           IsCall ? IrSliceProgram::NodeKind::Call
                  : IrSliceProgram::NodeKind::Plain,
           IsCall ? S.Callee : 0);
    }
    if (B.Term == BasicBlock::Terminator::Branch) {
      SliceStmt Node;
      Node.Label = "branch";
      Node.IsPredicate = true;
      collectExprUses(F, B.CondExpr, Node.Uses);
      Push(Block, std::move(Node), IrSliceProgram::NodeKind::Predicate, 0);
    } else if (B.Term == BasicBlock::Terminator::Return && B.HasRetValue) {
      SliceStmt Node;
      Node.Label = "return";
      collectExprUses(F, B.RetExpr, Node.Uses);
      Push(Block, std::move(Node), IrSliceProgram::NodeKind::Return, 0);
    }
  }
  Out.Program.Succs.resize(Out.Program.Stmts.size());

  // Entry node of a block, skipping through empty blocks (chains of
  // bare jumps). 0 when control only reaches a node-free return.
  auto EntryNode = [&](BlockId Block) -> BlockId {
    std::vector<bool> Seen(F.blockCount(), false);
    while (!Seen[Block - 1]) {
      Seen[Block - 1] = true;
      if (!Out.NodesOfBlock[Block - 1].empty())
        return Out.NodesOfBlock[Block - 1].front();
      const BasicBlock &B = F.block(Block);
      if (B.Term != BasicBlock::Terminator::Jump)
        return 0;
      Block = B.TrueSucc;
    }
    return 0; // cycle of empty blocks (non-terminating program)
  };

  // Pass 2: edges. Intra-block chains, then the last node of each block
  // to every successor block's entry node.
  for (BlockId Block = 1; Block <= F.blockCount(); ++Block) {
    const auto &Nodes = Out.NodesOfBlock[Block - 1];
    for (size_t I = 0; I + 1 < Nodes.size(); ++I)
      Out.Program.Succs[Nodes[I] - 1].push_back(Nodes[I + 1]);
    if (Nodes.empty())
      continue;
    BlockId Last = Nodes.back();
    for (BlockId Succ : F.block(Block).successors())
      if (BlockId Entry = EntryNode(Succ))
        Out.Program.Succs[Last - 1].push_back(Entry);
  }

  annotateControlDeps(Out.Program);
  return Out;
}
