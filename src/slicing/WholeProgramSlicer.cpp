//===- slicing/WholeProgramSlicer.cpp - Interprocedural slicing -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/WholeProgramSlicer.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

using namespace twpp;

WholeProgramTrace WholeProgramTrace::build(const Module &M,
                                           const RawTrace &Trace) {
  WholeProgramTrace Out;
  Out.Bridges.reserve(M.Functions.size());
  for (const Function &F : M.Functions)
    Out.Bridges.push_back(buildSliceProgram(F));

  // Per open frame: its id plus the call instances of the current block
  // still waiting for their Enter event (calls run in statement order).
  struct OpenFrame {
    uint32_t Id;
    std::deque<size_t> PendingCalls;
  };
  std::vector<OpenFrame> Stack;

  for (const TraceEvent &Event : Trace.Events) {
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter: {
      uint32_t FrameId = static_cast<uint32_t>(Out.Frames.size());
      FrameInfo Info;
      Info.Function = Event.Id;
      if (!Stack.empty() && !Stack.back().PendingCalls.empty()) {
        size_t CallInstance = Stack.back().PendingCalls.front();
        Stack.back().PendingCalls.pop_front();
        Info.CallerInstance = static_cast<int64_t>(CallInstance);
        Out.Instances[CallInstance].CalleeFrame = FrameId;
      }
      Out.Frames.push_back(Info);
      Stack.push_back({FrameId, {}});
      break;
    }
    case TraceEvent::Kind::Block: {
      assert(!Stack.empty() && "block outside any call");
      OpenFrame &Top = Stack.back();
      FrameInfo &Frame = Out.Frames[Top.Id];
      const IrSliceProgram &Bridge = Out.Bridges[Frame.Function];
      // A new block begins: earlier pending calls (if any) belong to
      // enters that never came — clear defensively.
      Top.PendingCalls.clear();
      for (BlockId Node : Bridge.NodesOfBlock[Event.Id - 1]) {
        Instance Inst;
        Inst.Frame = Top.Id;
        Inst.Function = Frame.Function;
        Inst.Node = Node;
        size_t Index = Out.Instances.size();
        Out.Instances.push_back(Inst);
        if (Bridge.Kinds[Node - 1] == IrSliceProgram::NodeKind::Call)
          Top.PendingCalls.push_back(Index);
        if (Bridge.Kinds[Node - 1] == IrSliceProgram::NodeKind::Return)
          Frame.ReturnInstance = static_cast<int64_t>(Index);
      }
      break;
    }
    case TraceEvent::Kind::Exit:
      assert(!Stack.empty() && "exit outside any call");
      Stack.pop_back();
      break;
    }
  }
  return Out;
}

int64_t WholeProgramTrace::lastInstanceOf(GlobalNode Target) const {
  for (size_t I = Instances.size(); I-- > 0;)
    if (Instances[I].Function == Target.Function &&
        Instances[I].Node == Target.Node)
      return static_cast<int64_t>(I);
  return -1;
}

bool GlobalSliceResult::contains(GlobalNode Node) const {
  return std::binary_search(Nodes.begin(), Nodes.end(), Node);
}

GlobalSliceResult twpp::sliceWholeProgram(const WholeProgramTrace &Trace,
                                          const Module &M,
                                          size_t InstanceIndex, VarId Var) {
  const auto &Instances = Trace.instances();
  const auto &Frames = Trace.frames();

  GlobalSliceResult Result;
  std::set<GlobalNode> Slice;
  std::set<std::pair<size_t, VarId>> VisitedQueries;
  std::set<size_t> VisitedInstances;
  // A query searches for the definition of a variable reaching (strictly
  // before) an instance, within that instance's frame.
  std::deque<std::pair<size_t, VarId>> Queries;
  std::deque<size_t> NewInstances;

  auto EnqueueQuery = [&](size_t At, VarId V) {
    if (VisitedQueries.insert({At, V}).second) {
      Queries.push_back({At, V});
      ++Result.QueriesGenerated;
    }
  };
  /// Brings an executed instance into the slice; its own dependencies
  /// are scheduled via NewInstances.
  auto AddInstance = [&](size_t At) {
    Slice.insert({Instances[At].Function, Instances[At].Node});
    if (VisitedInstances.insert(At).second)
      NewInstances.push_back(At);
  };

  /// Most recent instance of frame-local node \p Node before \p At
  /// within the same frame, or -1.
  auto LastFrameInstanceOf = [&](size_t At, BlockId Node) -> int64_t {
    uint32_t Frame = Instances[At].Frame;
    for (size_t J = At; J-- > 0;)
      if (Instances[J].Frame == Frame && Instances[J].Node == Node)
        return static_cast<int64_t>(J);
    return -1;
  };

  assert(InstanceIndex < Instances.size() && "instance out of range");
  Slice.insert({Instances[InstanceIndex].Function,
                Instances[InstanceIndex].Node});
  EnqueueQuery(InstanceIndex, Var);
  {
    const WholeProgramTrace::Instance &Inst = Instances[InstanceIndex];
    const SliceProgram &P = Trace.bridgeOf(Inst.Function).Program;
    if (BlockId Ctrl = P.stmt(Inst.Node).ControlDep; Ctrl != 0) {
      int64_t CtrlAt = LastFrameInstanceOf(InstanceIndex, Ctrl);
      if (CtrlAt >= 0)
        AddInstance(static_cast<size_t>(CtrlAt));
    }
  }

  while (!Queries.empty() || !NewInstances.empty()) {
    while (!NewInstances.empty()) {
      size_t At = NewInstances.front();
      NewInstances.pop_front();
      const WholeProgramTrace::Instance &Inst = Instances[At];
      const IrSliceProgram &Bridge = Trace.bridgeOf(Inst.Function);
      const SliceStmt &S = Bridge.Program.stmt(Inst.Node);
      for (VarId Use : S.Uses)
        EnqueueQuery(At, Use);
      if (S.ControlDep != 0) {
        int64_t CtrlAt = LastFrameInstanceOf(At, S.ControlDep);
        if (CtrlAt >= 0)
          AddInstance(static_cast<size_t>(CtrlAt));
      }
      // A call instance in the slice pulls in the callee's returned
      // value provenance.
      if (Bridge.Kinds[Inst.Node - 1] == IrSliceProgram::NodeKind::Call &&
          S.Def != NoVar && Inst.CalleeFrame >= 0) {
        int64_t Ret = Frames[Inst.CalleeFrame].ReturnInstance;
        if (Ret >= 0)
          AddInstance(static_cast<size_t>(Ret));
      }
    }
    if (Queries.empty())
      break;
    auto [At, V] = Queries.front();
    Queries.pop_front();

    const WholeProgramTrace::Instance &Inst = Instances[At];
    // Frame-local definition search.
    int64_t Def = -1;
    for (size_t J = At; J-- > 0;) {
      if (Instances[J].Frame != Inst.Frame)
        continue;
      const SliceProgram &P = Trace.bridgeOf(Instances[J].Function).Program;
      if (P.stmt(Instances[J].Node).Def == V) {
        Def = static_cast<int64_t>(J);
        break;
      }
    }
    if (Def >= 0) {
      AddInstance(static_cast<size_t>(Def));
      continue;
    }
    // No local definition: a parameter's value flows from the caller's
    // argument expression at the linked call instance.
    const Function &F = M.Functions[Inst.Function];
    bool IsParam =
        std::find(F.Params.begin(), F.Params.end(), V) != F.Params.end();
    int64_t Caller = Frames[Inst.Frame].CallerInstance;
    if (IsParam && Caller >= 0)
      AddInstance(static_cast<size_t>(Caller));
  }

  Result.Nodes.assign(Slice.begin(), Slice.end());
  return Result;
}
