//===- slicing/Currency.cpp - Dynamic currency determination --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/Currency.h"

using namespace twpp;

namespace {

/// Reaching definition under one placement: the DefId of the last def
/// encountered along the executed path strictly before \p BreakTime.
/// Returns false when no def executed.
bool reachingDef(const AnnotatedDynamicCfg &Cfg, Timestamp BreakTime,
                 const std::vector<DefSite> &Defs, uint32_t &DefId) {
  for (Timestamp T = BreakTime; T > 1;) {
    --T;
    size_t Node = Cfg.nodeAt(T);
    if (Node == AnnotatedDynamicCfg::npos)
      return false;
    BlockId Block = Cfg.Nodes[Node].Head;
    // Last def within the block (highest ordinal) wins.
    bool Found = false;
    uint32_t BestOrdinal = 0;
    for (const DefSite &Def : Defs) {
      if (Def.Block != Block)
        continue;
      if (!Found || Def.Ordinal > BestOrdinal) {
        Found = true;
        BestOrdinal = Def.Ordinal;
        DefId = Def.DefId;
      }
    }
    if (Found)
      return true;
  }
  return false;
}

} // namespace

Currency twpp::checkCurrency(const AnnotatedDynamicCfg &Cfg,
                             Timestamp BreakTime,
                             const CurrencyProblem &Problem) {
  uint32_t OriginalDef = 0, OptimizedDef = 0;
  bool HasOriginal =
      reachingDef(Cfg, BreakTime, Problem.OriginalDefs, OriginalDef);
  bool HasOptimized =
      reachingDef(Cfg, BreakTime, Problem.OptimizedDefs, OptimizedDef);
  if (HasOriginal != HasOptimized)
    return Currency::NonCurrent;
  if (!HasOriginal)
    return Currency::Current; // Neither version defined it yet.
  return OriginalDef == OptimizedDef ? Currency::Current
                                     : Currency::NonCurrent;
}

CurrencyProblem twpp::currencyProblemFor(const Function &Original,
                                         const SinkResult &Sunk,
                                         VarId Var) {
  CurrencyProblem Problem;
  // DefIds follow the original (block, ordinal) order.
  uint32_t NextId = 1;
  std::vector<std::pair<std::pair<BlockId, uint32_t>, uint32_t>> IdOf;
  for (BlockId Block = 1; Block <= Original.blockCount(); ++Block) {
    const BasicBlock &B = Original.block(Block);
    for (uint32_t I = 0; I < B.Stmts.size(); ++I) {
      if (B.Stmts[I].Target != Var)
        continue;
      Problem.OriginalDefs.push_back({NextId, Block, I});
      IdOf.push_back({{Block, I}, NextId});
      ++NextId;
    }
  }
  // Optimized placement via the origin map.
  for (BlockId Block = 1; Block <= Sunk.Optimized.blockCount(); ++Block) {
    const BasicBlock &B = Sunk.Optimized.block(Block);
    for (uint32_t I = 0; I < B.Stmts.size(); ++I) {
      if (B.Stmts[I].Target != Var)
        continue;
      std::pair<BlockId, uint32_t> Origin = Sunk.Origins[Block - 1][I];
      for (const auto &[Key, Id] : IdOf)
        if (Key == Origin)
          Problem.OptimizedDefs.push_back({Id, Block, I});
    }
  }
  return Problem;
}
