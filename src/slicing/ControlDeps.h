//===- slicing/ControlDeps.h - Control dependence computation ---*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard control dependence (Ferrante-Ottenstein-Warren): statement s
/// is control dependent on predicate p iff p has successors of which one
/// always leads to s (s postdominates it) and one may avoid s (s does not
/// postdominate p). Computed from the statement-level static CFG via an
/// iterative postdominator solver, so SliceProgram inputs need not list
/// their control dependences by hand.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SLICING_CONTROLDEPS_H
#define TWPP_SLICING_CONTROLDEPS_H

#include "slicing/SliceProgram.h"

#include <vector>

namespace twpp {

/// Immediate postdominator of every statement (0 for the virtual exit's
/// children / unreachable nodes). Statements with no successors
/// postdominate into a shared virtual exit.
std::vector<BlockId> computePostDominators(const SliceProgram &Program);

/// The controlling predicate of each statement (0 = none), derived from
/// the postdominance frontier. When a statement is control dependent on
/// several predicates (unstructured flow), the nearest one is kept —
/// SliceStmt::ControlDep models single-parent (structured) control
/// dependence.
std::vector<BlockId> computeControlDeps(const SliceProgram &Program);

/// Fills Program.Stmts[*].ControlDep and IsPredicate from the CFG.
void annotateControlDeps(SliceProgram &Program);

} // namespace twpp

#endif // TWPP_SLICING_CONTROLDEPS_H
