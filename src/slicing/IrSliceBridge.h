//===- slicing/IrSliceBridge.h - Slice programs from the mini IR -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges an ir::Function to the statement-level model the dynamic
/// slicers operate on: every statement (and every conditional
/// terminator) becomes one slice node, control dependences are computed
/// from the statement CFG, and the tracer's block-level path trace is
/// expanded into the statement-level trace. With this, any traced
/// mini-language program can be sliced — the Figure 10 example stops
/// being a special case.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SLICING_IRSLICEBRIDGE_H
#define TWPP_SLICING_IRSLICEBRIDGE_H

#include "ir/Ir.h"
#include "slicing/SliceProgram.h"

#include <vector>

namespace twpp {

/// A SliceProgram derived from one function, with the mapping needed to
/// translate block-level traces and user-facing positions.
struct IrSliceProgram {
  /// What a slice node came from; the interprocedural slicer needs to
  /// know calls and returns.
  enum class NodeKind : uint8_t { Plain, Call, Return, Predicate };

  SliceProgram Program;
  /// Kind of each slice node, parallel to Program.Stmts.
  std::vector<NodeKind> Kinds;
  /// Callee of each Call node (0 otherwise), parallel to Program.Stmts.
  std::vector<FunctionId> Callees;
  /// Slice node ids of each block's statements, in order; the last entry
  /// of a block with a conditional terminator is its predicate node.
  std::vector<std::vector<BlockId>> NodesOfBlock; ///< Indexed by block-1.

  /// Expands a block-level path trace into the statement-level trace the
  /// slicers consume.
  std::vector<BlockId>
  expandTrace(const std::vector<BlockId> &BlockTrace) const;

  /// The slice node of the \p Ordinal-th statement of \p Block (0-based);
  /// useful for placing criteria. Returns 0 when out of range.
  BlockId nodeOf(BlockId Block, size_t Ordinal) const;
};

/// Builds the statement-level slice program of \p F. Statements get their
/// defs/uses from the IR (call results define, call arguments use);
/// conditional terminators become predicate nodes; `read` defines its
/// target; `print` and return values only use. Control dependences are
/// computed via postdominators.
IrSliceProgram buildSliceProgram(const Function &F);

} // namespace twpp

#endif // TWPP_SLICING_IRSLICEBRIDGE_H
