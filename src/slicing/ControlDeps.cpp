//===- slicing/ControlDeps.cpp - Control dependence computation -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/ControlDeps.h"

#include <algorithm>
#include <set>

using namespace twpp;

namespace {

/// Postdominator *sets* for every statement, over the CFG extended with a
/// virtual exit that every return-like statement reaches. Index 0 of the
/// returned vector is unused (ids are 1-based); the virtual exit is
/// implicit (every set conceptually contains it).
std::vector<std::set<BlockId>> postDominatorSets(const SliceProgram &P) {
  uint32_t N = P.stmtCount();
  std::set<BlockId> All;
  for (uint32_t S = 1; S <= N; ++S)
    All.insert(S);

  // pdom(n) = {n} for exit-reaching nodes, else {n} + meet over succs.
  std::vector<std::set<BlockId>> Pdom(N + 1, All);
  for (uint32_t S = 1; S <= N; ++S)
    if (P.Succs[S - 1].empty())
      Pdom[S] = {S};

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t S = 1; S <= N; ++S) {
      if (P.Succs[S - 1].empty())
        continue;
      std::set<BlockId> Meet = Pdom[P.Succs[S - 1].front()];
      for (size_t I = 1; I < P.Succs[S - 1].size(); ++I) {
        const std::set<BlockId> &Other = Pdom[P.Succs[S - 1][I]];
        std::set<BlockId> Intersection;
        std::set_intersection(Meet.begin(), Meet.end(), Other.begin(),
                              Other.end(),
                              std::inserter(Intersection,
                                            Intersection.begin()));
        Meet = std::move(Intersection);
      }
      Meet.insert(S);
      if (Meet != Pdom[S]) {
        Pdom[S] = std::move(Meet);
        Changed = true;
      }
    }
  }
  return Pdom;
}

} // namespace

std::vector<BlockId>
twpp::computePostDominators(const SliceProgram &Program) {
  uint32_t N = Program.stmtCount();
  std::vector<std::set<BlockId>> Pdom = postDominatorSets(Program);
  std::vector<BlockId> Ipdom(N + 1, 0);
  for (uint32_t S = 1; S <= N; ++S) {
    // The immediate postdominator is the strict postdominator whose own
    // set covers all the others: |pdom(d)| == |pdom(s)| - 1.
    for (BlockId D : Pdom[S]) {
      if (D == S)
        continue;
      if (Pdom[D].size() == Pdom[S].size() - 1) {
        Ipdom[S] = D;
        break;
      }
    }
  }
  return Ipdom;
}

std::vector<BlockId>
twpp::computeControlDeps(const SliceProgram &Program) {
  uint32_t N = Program.stmtCount();
  std::vector<std::set<BlockId>> Pdom = postDominatorSets(Program);

  // Ferrante-Ottenstein-Warren: s is control dependent on p iff some
  // successor t of p has s in pdom(t) and s is not a strict
  // postdominator of p. Self-dependences (loop headers controlling
  // themselves) are dropped — the slicers treat control parents as
  // strictly enclosing.
  std::vector<BlockId> Deps(N + 1, 0);
  std::vector<size_t> DepPdomSize(N + 1, 0);
  for (uint32_t Pred = 1; Pred <= N; ++Pred) {
    if (Program.Succs[Pred - 1].size() < 2)
      continue;
    for (BlockId T : Program.Succs[Pred - 1]) {
      for (BlockId S : Pdom[T]) {
        if (S == Pred)
          continue;
        if (Pdom[Pred].count(S))
          continue; // strictly postdominates the predicate
        // Nearest predicate wins: deeper predicates are postdominated by
        // more statements, so prefer the larger pdom set (ties by id).
        size_t Size = Pdom[Pred].size();
        if (Deps[S] == 0 || Size > DepPdomSize[S] ||
            (Size == DepPdomSize[S] && Pred > Deps[S])) {
          Deps[S] = Pred;
          DepPdomSize[S] = Size;
        }
      }
    }
  }
  return Deps;
}

void twpp::annotateControlDeps(SliceProgram &Program) {
  std::vector<BlockId> Deps = computeControlDeps(Program);
  for (uint32_t S = 1; S <= Program.stmtCount(); ++S) {
    Program.Stmts[S - 1].ControlDep = Deps[S];
    Program.Stmts[S - 1].IsPredicate = Program.Succs[S - 1].size() >= 2;
  }
}
