//===- slicing/WholeProgramSlicer.h - Interprocedural slicing --*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural extension the paper sketches in Section 4.2
/// ("analyzing path traces of multiple functions in concert and
/// propagating queries along interprocedural paths"), applied to dynamic
/// slicing: exact-instance (approach 3 style) backward slicing over the
/// whole execution.
///
/// The global timeline interleaves every function's statement instances
/// with their frame (invocation) identity. Definition searches stay
/// within a frame — variables are frame-local — and cross frames only
/// through the explicit value channels:
///
///   * a call result's value comes from the callee's return instance;
///   * a parameter's value comes from the caller's argument expression
///     at the linked call instance (argument variables are queried at
///     call-site granularity — the node's merged use set — a deliberate,
///     slightly conservative simplification).
///
/// Control dependences are intraprocedural per frame, as in the paper's
/// single-function algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SLICING_WHOLEPROGRAMSLICER_H
#define TWPP_SLICING_WHOLEPROGRAMSLICER_H

#include "ir/Ir.h"
#include "slicing/IrSliceBridge.h"
#include "trace/Events.h"

#include <cstdint>
#include <vector>

namespace twpp {

/// A statement of some function, for reporting slices.
struct GlobalNode {
  FunctionId Function;
  BlockId Node; ///< Slice node id within that function's bridge.

  bool operator==(const GlobalNode &Other) const = default;
  bool operator<(const GlobalNode &Other) const {
    return Function != Other.Function ? Function < Other.Function
                                      : Node < Other.Node;
  }
};

/// The whole execution, instance by instance, with call linkage.
class WholeProgramTrace {
public:
  struct Instance {
    uint32_t Frame;
    FunctionId Function;
    BlockId Node;             ///< Bridge slice node id.
    int64_t CalleeFrame = -1; ///< For Call instances: frame it created.
  };
  struct FrameInfo {
    FunctionId Function;
    int64_t CallerInstance = -1; ///< Instance index of the creating call.
    int64_t ReturnInstance = -1; ///< Instance of the frame's return node.
  };

  /// Builds the timeline from a raw trace of \p M. Bridges are built per
  /// function internally.
  static WholeProgramTrace build(const Module &M, const RawTrace &Trace);

  const std::vector<Instance> &instances() const { return Instances; }
  const std::vector<FrameInfo> &frames() const { return Frames; }
  const IrSliceProgram &bridgeOf(FunctionId F) const { return Bridges[F]; }

  /// Index of the last instance of \p Target (any function), or -1.
  int64_t lastInstanceOf(GlobalNode Target) const;

private:
  std::vector<Instance> Instances;
  std::vector<FrameInfo> Frames;
  std::vector<IrSliceProgram> Bridges;
};

/// An interprocedural dynamic slice.
struct GlobalSliceResult {
  std::vector<GlobalNode> Nodes; ///< Sorted.
  uint64_t QueriesGenerated = 0;

  bool contains(GlobalNode Node) const;
};

/// Exact-instance backward slice of variable \p Var at instance
/// \p InstanceIndex of the timeline.
GlobalSliceResult sliceWholeProgram(const WholeProgramTrace &Trace,
                                    const Module &M, size_t InstanceIndex,
                                    VarId Var);

} // namespace twpp

#endif // TWPP_SLICING_WHOLEPROGRAMSLICER_H
