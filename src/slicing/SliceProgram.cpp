//===- slicing/SliceProgram.cpp - Statement-level program model -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/SliceProgram.h"

#include <algorithm>
#include <cassert>

using namespace twpp;

std::vector<DataDepEdge>
twpp::computeStaticDataDeps(const SliceProgram &Program) {
  uint32_t N = Program.stmtCount();

  // Reaching definitions as per-statement sets of defining statement ids.
  // Programs here are example-scale, so plain sorted vectors suffice.
  using DefSet = std::vector<BlockId>;
  std::vector<DefSet> In(N), Out(N);
  std::vector<std::vector<BlockId>> Preds(N);
  for (uint32_t S = 0; S < N; ++S)
    for (BlockId Succ : Program.Succs[S])
      Preds[Succ - 1].push_back(S + 1);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t S = 0; S < N; ++S) {
      DefSet NewIn;
      for (BlockId Pred : Preds[S])
        NewIn.insert(NewIn.end(), Out[Pred - 1].begin(),
                     Out[Pred - 1].end());
      std::sort(NewIn.begin(), NewIn.end());
      NewIn.erase(std::unique(NewIn.begin(), NewIn.end()), NewIn.end());
      if (NewIn != In[S]) {
        In[S] = NewIn;
        Changed = true;
      }
      // OUT = (IN - defs of same var) + {S} when S defines something.
      DefSet NewOut;
      VarId Defined = Program.Stmts[S].Def;
      for (BlockId D : In[S])
        if (Defined == NoVar || Program.stmt(D).Def != Defined)
          NewOut.push_back(D);
      if (Defined != NoVar) {
        NewOut.push_back(S + 1);
        std::sort(NewOut.begin(), NewOut.end());
      }
      if (NewOut != Out[S]) {
        Out[S] = std::move(NewOut);
        Changed = true;
      }
    }
  }

  std::vector<DataDepEdge> Edges;
  for (uint32_t S = 0; S < N; ++S)
    for (VarId Use : Program.Stmts[S].Uses)
      for (BlockId D : In[S])
        if (Program.stmt(D).Def == Use)
          Edges.push_back({S + 1, D, Use});
  return Edges;
}

Figure10Program twpp::buildFigure10Program() {
  Figure10Program Fig;
  Fig.VarN = 0;
  Fig.VarI = 1;
  Fig.VarJ = 2;
  Fig.VarX = 3;
  Fig.VarY = 4;
  Fig.VarZ = 5;

  auto &P = Fig.Program;
  P.Stmts.resize(14);
  P.Succs.resize(14);

  auto Set = [&P](BlockId Id, std::string Label, VarId Def,
                  std::vector<VarId> Uses, BlockId ControlDep,
                  bool IsPredicate, std::vector<BlockId> Succs) {
    SliceStmt &S = P.Stmts[Id - 1];
    S.Label = std::move(Label);
    S.Def = Def;
    S.Uses = std::move(Uses);
    S.ControlDep = ControlDep;
    S.IsPredicate = IsPredicate;
    P.Succs[Id - 1] = std::move(Succs);
  };

  // The paper's example (Figure 10), statements numbered 1..14. The loop
  // body statements are control dependent on the while predicate (4); the
  // two arms of the if are control dependent on 6.
  Set(1, "read N", Fig.VarN, {}, 0, false, {2});
  Set(2, "I = 1", Fig.VarI, {}, 0, false, {3});
  Set(3, "J = 0", Fig.VarJ, {}, 0, false, {4});
  Set(4, "while I <= N", NoVar, {Fig.VarI, Fig.VarN}, 0, true, {5, 13});
  Set(5, "read X", Fig.VarX, {}, 4, false, {6});
  Set(6, "if X < 0", NoVar, {Fig.VarX}, 4, true, {7, 8});
  Set(7, "Y = f1(X)", Fig.VarY, {Fig.VarX}, 6, false, {9});
  Set(8, "Y = f2(X)", Fig.VarY, {Fig.VarX}, 6, false, {9});
  Set(9, "Z = f3(Y)", Fig.VarZ, {Fig.VarY}, 4, false, {10});
  Set(10, "write Z", NoVar, {Fig.VarZ}, 4, false, {11});
  Set(11, "J = I", Fig.VarJ, {Fig.VarI}, 4, false, {12});
  Set(12, "I = I + 1", Fig.VarI, {Fig.VarI}, 4, false, {4});
  Set(13, "Z = Z + J", Fig.VarZ, {Fig.VarZ, Fig.VarJ}, 0, false, {14});
  Set(14, "breakpoint", NoVar, {Fig.VarZ}, 0, false, {});

  // Input (N = 3, X = -4, 3, -2): iteration 1 takes the then-arm (7),
  // iteration 2 the else-arm (8), iteration 3 the then-arm (7).
  Fig.Trace = {1, 2, 3,
               4, 5, 6, 7, 9, 10, 11, 12,
               4, 5, 6, 8, 9, 10, 11, 12,
               4, 5, 6, 7, 9, 10, 11, 12,
               4, 13, 14};
  assert(Fig.Trace.size() == 30 && "figure 10 trace is 30 steps");
  Fig.Breakpoint = 14;
  return Fig;
}
