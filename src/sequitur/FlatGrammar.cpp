//===- sequitur/FlatGrammar.cpp - Serialized Sequitur grammars ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "sequitur/FlatGrammar.h"

#include "support/ByteStream.h"
#include "support/FileIO.h"

using namespace twpp;

std::vector<uint64_t> FlatGrammar::expand() const {
  std::vector<uint64_t> Out;
  GrammarCursor Cursor(*this);
  uint64_t Terminal;
  while (Cursor.next(Terminal))
    Out.push_back(Terminal);
  return Out;
}

uint64_t FlatGrammar::symbolCount() const {
  uint64_t Count = 0;
  for (const auto &Body : Rules)
    Count += Body.size();
  return Count;
}

std::vector<uint8_t> twpp::encodeGrammar(const FlatGrammar &Grammar) {
  ByteWriter Writer;
  Writer.writeVarUint(Grammar.Rules.size());
  for (const auto &Body : Grammar.Rules) {
    Writer.writeVarUint(Body.size());
    for (const FlatSymbol &Symbol : Body)
      Writer.writeVarUint((Symbol.Value << 1) | (Symbol.IsRule ? 1 : 0));
  }
  return Writer.take();
}

bool twpp::decodeGrammar(const std::vector<uint8_t> &Bytes,
                         FlatGrammar &Grammar) {
  Grammar = FlatGrammar();
  ByteReader Reader(Bytes);
  uint64_t RuleCount = Reader.readVarUint();
  if (Reader.hasError() || RuleCount > Bytes.size() + 1)
    return false;
  Grammar.Rules.resize(RuleCount);
  for (auto &Body : Grammar.Rules) {
    uint64_t Length = Reader.readVarUint();
    if (Reader.hasError() || Length > Reader.remaining() + 1)
      return false;
    Body.resize(Length);
    for (FlatSymbol &Symbol : Body) {
      uint64_t Packed = Reader.readVarUint();
      Symbol.IsRule = Packed & 1;
      Symbol.Value = Packed >> 1;
      if (Symbol.IsRule && Symbol.Value >= RuleCount)
        return false;
    }
  }
  return Reader.valid() && Reader.atEnd();
}

GrammarCursor::GrammarCursor(const FlatGrammar &Grammar) : Grammar(Grammar) {
  if (!Grammar.Rules.empty())
    Stack.emplace_back(0, 0);
}

bool GrammarCursor::next(uint64_t &Terminal) {
  while (!Stack.empty()) {
    auto &[Rule, Pos] = Stack.back();
    const auto &Body = Grammar.Rules[Rule];
    if (Pos >= Body.size()) {
      Stack.pop_back();
      continue;
    }
    const FlatSymbol &Symbol = Body[Pos++];
    if (Symbol.IsRule) {
      Stack.emplace_back(static_cast<uint32_t>(Symbol.Value), 0);
      continue;
    }
    Terminal = Symbol.Value;
    return true;
  }
  return false;
}

void twpp::extractFunctionTracesFromGrammar(
    const FlatGrammar &Grammar, FunctionId Function,
    std::vector<std::vector<BlockId>> &Traces) {
  Traces.clear();
  struct Frame {
    bool IsTarget;
    size_t TraceIndex;
  };
  std::vector<Frame> Stack;
  GrammarCursor Cursor(Grammar);
  uint64_t Terminal;
  while (Cursor.next(Terminal)) {
    TraceEvent Event = tokenToEvent(Terminal);
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      if (Event.Id == Function) {
        Stack.push_back({true, Traces.size()});
        Traces.emplace_back();
      } else {
        Stack.push_back({false, 0});
      }
      break;
    case TraceEvent::Kind::Block:
      if (!Stack.empty() && Stack.back().IsTarget)
        Traces[Stack.back().TraceIndex].push_back(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      if (!Stack.empty())
        Stack.pop_back();
      break;
    }
  }
}

bool twpp::writeGrammarFile(const std::string &Path,
                            const FlatGrammar &Grammar) {
  return writeFileBytes(Path, encodeGrammar(Grammar)).ok();
}

bool twpp::readGrammarFile(const std::string &Path, FlatGrammar &Grammar) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return false;
  return decodeGrammar(Bytes, Grammar);
}
