//===- sequitur/FlatGrammar.h - Serialized Sequitur grammars ----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frozen form of a Sequitur grammar: rule 0 is the start rule; each
/// rule body is a sequence of symbols that are either terminals (trace
/// event tokens) or references to other rules. This is the representation
/// Larus's compressed WPP is stored in, what Table 5 sizes, and what the
/// "read + process" extraction path walks.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SEQUITUR_FLATGRAMMAR_H
#define TWPP_SEQUITUR_FLATGRAMMAR_H

#include "trace/Events.h"

#include <cstdint>
#include <string>
#include <vector>

namespace twpp {

/// A grammar symbol: a terminal token or a rule reference.
struct FlatSymbol {
  uint64_t Value;  ///< Terminal token, or rule index when IsRule.
  bool IsRule;

  bool operator==(const FlatSymbol &Other) const = default;
};

/// An immutable context-free grammar generating exactly one string.
struct FlatGrammar {
  /// Rule bodies; Rules[0] is the start rule.
  std::vector<std::vector<FlatSymbol>> Rules;

  bool operator==(const FlatGrammar &Other) const = default;

  /// Expands the start rule into the full terminal string.
  std::vector<uint64_t> expand() const;

  /// Total number of symbols over all rule bodies (the grammar size
  /// measure used when comparing with TWPP).
  uint64_t symbolCount() const;
};

/// Serializes the grammar (varint symbol stream).
std::vector<uint8_t> encodeGrammar(const FlatGrammar &Grammar);

/// Inverse of encodeGrammar. \returns false on malformed bytes.
bool decodeGrammar(const std::vector<uint8_t> &Bytes, FlatGrammar &Grammar);

/// Packs a trace event into the terminal alphabet Sequitur consumes, and
/// back. Larus's WPP feeds the full event stream — call boundaries
/// included — into the grammar.
inline uint64_t eventToToken(const TraceEvent &Event) {
  return (static_cast<uint64_t>(Event.Id) << 2) |
         static_cast<uint64_t>(Event.EventKind);
}
inline TraceEvent tokenToEvent(uint64_t Token) {
  return {static_cast<TraceEvent::Kind>(Token & 3),
          static_cast<uint32_t>(Token >> 2)};
}

/// Streaming cursor over the grammar's expansion; visits terminals one at
/// a time without materializing the whole string.
class GrammarCursor {
public:
  explicit GrammarCursor(const FlatGrammar &Grammar);

  /// Advances to the next terminal. \returns false at end of string.
  bool next(uint64_t &Terminal);

private:
  const FlatGrammar &Grammar;
  /// (rule, position) expansion stack.
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
};

/// The Larus-side answer to the per-function query: walk the whole
/// expansion, tracking the call stack, and collect every path trace of
/// \p Function. Requires processing the entire grammar — the cost the
/// paper's Table 5 measures against TWPP's indexed access.
void extractFunctionTracesFromGrammar(
    const FlatGrammar &Grammar, FunctionId Function,
    std::vector<std::vector<BlockId>> &Traces);

/// Writes/reads the serialized grammar to/from disk.
bool writeGrammarFile(const std::string &Path, const FlatGrammar &Grammar);
bool readGrammarFile(const std::string &Path, FlatGrammar &Grammar);

} // namespace twpp

#endif // TWPP_SEQUITUR_FLATGRAMMAR_H
