//===- sequitur/Sequitur.h - Online Sequitur grammar inference --*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sequitur (Nevill-Manning & Witten): linear-time online inference of a
/// context-free grammar that generates exactly the input string, with the
/// two invariants *digram uniqueness* (no pair of adjacent symbols occurs
/// more than once in the grammar) and *rule utility* (every rule is used
/// more than once). Larus's whole program path compression (PLDI 1999)
/// feeds the control flow trace through this algorithm; the resulting
/// grammar is the baseline representation the paper compares TWPP against
/// in Table 5.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SEQUITUR_SEQUITUR_H
#define TWPP_SEQUITUR_SEQUITUR_H

#include "sequitur/FlatGrammar.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace twpp {

/// Incremental Sequitur grammar builder. Feed terminals with append();
/// freeze() snapshots the grammar in flat form.
class SequiturBuilder {
public:
  SequiturBuilder();
  ~SequiturBuilder();

  SequiturBuilder(const SequiturBuilder &) = delete;
  SequiturBuilder &operator=(const SequiturBuilder &) = delete;

  /// Appends one terminal to the input string, restoring both invariants.
  void append(uint64_t Terminal);

  /// Snapshots the current grammar; rule 0 is the start rule.
  FlatGrammar freeze() const;

  /// Number of live rules (including the start rule).
  size_t ruleCount() const { return LiveRules.size() + 1; }

  /// Invariant audit for the property tests. Rule utility and refcount
  /// consistency are strict. Digram uniqueness is reported as a count:
  /// like the reference implementation, two rare paths leave residual
  /// duplicates (equal-symbol runs shadow an occurrence from the index;
  /// rule expansion re-registers its boundary digram unconditionally).
  /// Both cost a little compression and never correctness.
  struct InvariantReport {
    uint64_t UtilityViolations = 0;  ///< Rules used < 2 times or refcount
                                     ///< mismatches. Must be 0.
    uint64_t DuplicateDigrams = 0;   ///< Non-overlapping repeated digrams.
    uint64_t TotalDigrams = 0;
  };
  InvariantReport auditInvariants() const;

  /// True when utility is intact and duplicate digrams are within the
  /// expected residue (< 2% of digrams).
  bool checkInvariants() const {
    InvariantReport Report = auditInvariants();
    return Report.UtilityViolations == 0 &&
           Report.DuplicateDigrams * 50 <= Report.TotalDigrams;
  }

private:
  struct Rule;

  struct Sym {
    Sym *Prev = nullptr;
    Sym *Next = nullptr;
    uint64_t Value = 0;     ///< Terminal payload (unused for guards/rules).
    Rule *RuleRef = nullptr; ///< Rule this nonterminal references.
    bool IsGuard = false;
  };

  struct Rule {
    Sym *Guard;         ///< Sentinel: Guard->Next = first, Guard->Prev = last.
    uint32_t RefCount = 0;
    uint32_t Id = 0;    ///< Stable id for digram keys.
  };

  /// Exact digram identity: the two symbol handles. Kept exact (not a
  /// folded hash) — a collision here would merge distinct digrams and
  /// corrupt the grammar.
  using DigramKey = std::pair<uint64_t, uint64_t>;

  struct DigramKeyHash {
    size_t operator()(const DigramKey &Key) const {
      uint64_t H = Key.first * 0x9E3779B97F4A7C15ULL;
      H ^= Key.second + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
      return static_cast<size_t>(H);
    }
  };

  /// Stable handle of a symbol for digram keys (terminal value or rule id,
  /// tagged).
  static uint64_t handleOf(const Sym *S) {
    return S->RuleRef ? ((static_cast<uint64_t>(S->RuleRef->Id) << 1) | 1)
                      : (S->Value << 1);
  }
  static DigramKey keyOf(const Sym *A, const Sym *B) {
    return {handleOf(A), handleOf(B)};
  }

  Rule *newRule();
  void freeRule(Rule *R);
  Sym *newSymbol(uint64_t Terminal);
  Sym *newNonterminal(Rule *R);

  /// Links \p Left and \p Right, retiring Left's old outgoing digram.
  void join(Sym *Left, Sym *Right);
  /// Inserts \p S immediately after \p Pos.
  void insertAfter(Sym *Pos, Sym *S);
  /// Removes the table entry for (\p S, S->Next) if \p S is registered.
  void deleteDigram(Sym *S);
  /// Unlinks and frees \p S, maintaining the digram table and refcounts.
  void removeSymbol(Sym *S);
  /// Checks the digram (\p S, S->Next); enforces uniqueness.
  /// \returns true when a substitution occurred.
  bool check(Sym *S);
  /// Both occurrences of a repeated digram become uses of one rule.
  void match(Sym *New, Sym *Found);
  /// Replaces the digram starting at \p S with a use of \p R.
  void substitute(Sym *S, Rule *R);
  /// Inlines the single remaining use \p S of its rule (rule utility).
  void expand(Sym *S);

  /// Looks a rule up by its stable id; nullptr when it has been inlined.
  /// Nested substitution cascades can free a rule while an outer match
  /// still references it, so matches re-resolve through this instead of
  /// holding Rule pointers across substitutions.
  Rule *findRule(uint32_t Id);

  Rule *Start;
  std::unordered_map<DigramKey, Sym *, DigramKeyHash> Digrams;
  std::unordered_map<uint32_t, Rule *> LiveRules; ///< By id, except Start.
  uint32_t NextRuleId = 1;
};

/// Convenience: runs Sequitur over a whole trace's event tokens.
FlatGrammar buildSequiturGrammar(const RawTrace &Trace);

} // namespace twpp

#endif // TWPP_SEQUITUR_SEQUITUR_H
