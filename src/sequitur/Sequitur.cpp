//===- sequitur/Sequitur.cpp - Online Sequitur grammar inference ----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// The structure follows Nevill-Manning & Witten's reference algorithm:
// doubly linked rule bodies with guard sentinels, a digram index keyed by
// symbol identity, substitution on repeated digrams (reusing a rule when
// the other occurrence is a whole rule body), and inlining of rules whose
// use count drops to one.
//
//===----------------------------------------------------------------------===//

#include "sequitur/Sequitur.h"

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"

#include <cassert>
#include <map>
#include <vector>

using namespace twpp;


namespace {
/// Grammar node ledger: one Sym/Rule record per node so sequitur.grammar
/// live bytes track the in-flight grammar and its peak the high-water mark.
twpp::obs::MemAccount &grammarAccount() {
  static twpp::obs::MemAccount &Account =
      twpp::obs::memTracker().account(twpp::obs::memtags::SequiturGrammar);
  return Account;
}
} // namespace

SequiturBuilder::SequiturBuilder() { Start = newRule(); }

SequiturBuilder::~SequiturBuilder() {
  bool Tracked = obs::memTrackingEnabled();
  auto FreeBody = [Tracked](Rule *R) {
    Sym *S = R->Guard->Next;
    while (S != R->Guard) {
      Sym *Next = S->Next;
      if (Tracked)
        grammarAccount().recordFree(sizeof(Sym));
      delete S;
      S = Next;
    }
    if (Tracked)
      grammarAccount().recordFree(sizeof(Sym) + sizeof(Rule));
    delete R->Guard;
    delete R;
  };
  FreeBody(Start);
  for (auto &[Id, R] : LiveRules)
    FreeBody(R);
}

SequiturBuilder::Rule *SequiturBuilder::newRule() {
  static obs::Counter &RulesCreated =
      obs::metrics().counter(obs::names::SequiturRulesCreated);
  RulesCreated.add();
  if (obs::memTrackingEnabled())
    grammarAccount().recordAlloc(sizeof(Rule) + sizeof(Sym));
  Rule *R = new Rule();
  R->Id = NextRuleId++;
  R->Guard = new Sym();
  R->Guard->IsGuard = true;
  R->Guard->RuleRef = R; // lets a guard name its rule
  R->Guard->Next = R->Guard;
  R->Guard->Prev = R->Guard;
  if (NextRuleId != 2) // Start (first rule) is tracked separately.
    LiveRules.emplace(R->Id, R);
  return R;
}

void SequiturBuilder::freeRule(Rule *R) {
  static obs::Counter &RulesDeleted =
      obs::metrics().counter(obs::names::SequiturRulesDeleted);
  RulesDeleted.add();
  assert(R != Start && "cannot free the start rule");
  LiveRules.erase(R->Id);
  if (obs::memTrackingEnabled())
    grammarAccount().recordFree(sizeof(Sym) + sizeof(Rule));
  delete R->Guard;
  delete R;
}

SequiturBuilder::Sym *SequiturBuilder::newSymbol(uint64_t Terminal) {
  if (obs::memTrackingEnabled())
    grammarAccount().recordAlloc(sizeof(Sym));
  Sym *S = new Sym();
  S->Value = Terminal;
  return S;
}

SequiturBuilder::Sym *SequiturBuilder::newNonterminal(Rule *R) {
  if (obs::memTrackingEnabled())
    grammarAccount().recordAlloc(sizeof(Sym));
  Sym *S = new Sym();
  S->RuleRef = R;
  ++R->RefCount;
  return S;
}

void SequiturBuilder::join(Sym *Left, Sym *Right) {
  if (Left->Next)
    deleteDigram(Left);
  Left->Next = Right;
  Right->Prev = Left;
}

void SequiturBuilder::insertAfter(Sym *Pos, Sym *S) {
  join(S, Pos->Next);
  join(Pos, S);
}

void SequiturBuilder::deleteDigram(Sym *S) {
  if (S->IsGuard || S->Next->IsGuard)
    return;
  auto It = Digrams.find(keyOf(S, S->Next));
  if (It != Digrams.end() && It->second == S)
    Digrams.erase(It);
}

void SequiturBuilder::removeSymbol(Sym *S) {
  assert(!S->IsGuard && "cannot remove a guard");
  // Retire (S, Next) first; join() below retires (Prev, S).
  deleteDigram(S);
  join(S->Prev, S->Next);
  if (S->RuleRef)
    --S->RuleRef->RefCount;
  if (obs::memTrackingEnabled())
    grammarAccount().recordFree(sizeof(Sym));
  delete S;
}

bool SequiturBuilder::check(Sym *S) {
  if (S->IsGuard || S->Next->IsGuard)
    return false;
  DigramKey Key = keyOf(S, S->Next);
  auto It = Digrams.find(Key);
  if (It == Digrams.end()) {
    Digrams.emplace(Key, S);
    return false;
  }
  // Overlapping occurrences (e.g. "aaa") are left alone.
  if (It->second->Next != S)
    match(S, It->second);
  return true;
}

SequiturBuilder::Rule *SequiturBuilder::findRule(uint32_t Id) {
  if (Start->Id == Id)
    return Start;
  auto It = LiveRules.find(Id);
  return It == LiveRules.end() ? nullptr : It->second;
}

void SequiturBuilder::match(Sym *New, Sym *Found) {
  // Substitutions cascade (their digram checks can fire further matches,
  // inlining rules along the way), so a Rule pointer held across one is
  // unsafe; re-resolve by stable id instead.
  uint32_t RId;
  if (Found->Prev->IsGuard && Found->Next->Next->IsGuard) {
    // The found occurrence is an entire rule body: reuse that rule.
    Rule *R = Found->Prev->RuleRef;
    RId = R->Id;
    substitute(New, R);
  } else {
    // Make a new rule from the digram and substitute both occurrences.
    Rule *R = newRule();
    RId = R->Id;
    Sym *First = New->RuleRef ? newNonterminal(New->RuleRef)
                              : newSymbol(New->Value);
    Sym *Second = New->Next->RuleRef ? newNonterminal(New->Next->RuleRef)
                                     : newSymbol(New->Next->Value);
    insertAfter(R->Guard, First);
    insertAfter(First, Second);
    // No cascade can fire here: every digram involving the brand-new rule
    // is novel, so both checks inside substitute only insert.
    substitute(Found, R);
    // This one can cascade (digrams with R now exist elsewhere).
    substitute(New, R);
    if (Rule *Live = findRule(RId))
      Digrams[keyOf(Live->Guard->Next, Live->Guard->Next->Next)] =
          Live->Guard->Next;
  }
  // Rule utility: a rule that fell to a single use gets inlined. The
  // substitutions above removed one occurrence of each digram symbol, so
  // either end of R's body may now be the sole use of its rule.
  Rule *Live = findRule(RId);
  if (!Live)
    return;
  Sym *BodyFirst = Live->Guard->Next;
  if (BodyFirst->RuleRef && !BodyFirst->IsGuard &&
      BodyFirst->RuleRef->RefCount == 1) {
    expand(BodyFirst);
    Live = findRule(RId);
    if (!Live)
      return;
  }
  Sym *BodyLast = Live->Guard->Prev;
  if (BodyLast->RuleRef && !BodyLast->IsGuard &&
      BodyLast->RuleRef->RefCount == 1)
    expand(BodyLast);
}

void SequiturBuilder::substitute(Sym *S, Rule *R) {
  static obs::Counter &Substitutions =
      obs::metrics().counter(obs::names::SequiturSubstitutions);
  Substitutions.add();
  Sym *Before = S->Prev;
  removeSymbol(S->Next);
  removeSymbol(S);
  Sym *Use = newNonterminal(R);
  insertAfter(Before, Use);
  if (!check(Before))
    check(Use);
}

void SequiturBuilder::expand(Sym *S) {
  Rule *R = S->RuleRef;
  assert(R && R->RefCount == 1 && "expand requires a single-use rule");
  Sym *Left = S->Prev;
  Sym *Right = S->Next;
  Sym *BodyFirst = R->Guard->Next;
  Sym *BodyLast = R->Guard->Prev;
  assert(!BodyFirst->IsGuard && "expanding an empty rule");

  // Retire the digrams around the use; splice the body in its place.
  deleteDigram(S);
  join(Left, BodyFirst);
  join(BodyLast, Right);
  if (!BodyLast->IsGuard && !Right->IsGuard)
    Digrams[keyOf(BodyLast, Right)] = BodyLast;
  delete S;
  freeRule(R);
}

void SequiturBuilder::append(uint64_t Terminal) {
  static obs::Counter &Symbols =
      obs::metrics().counter(obs::names::SequiturSymbols);
  Symbols.add();
  Sym *S = newSymbol(Terminal);
  Sym *Last = Start->Guard->Prev;
  insertAfter(Last, S);
  check(Last);
}

FlatGrammar SequiturBuilder::freeze() const {
  FlatGrammar Grammar;
  // Assign flat indices: start rule first, then live rules by id (stable).
  std::map<uint32_t, Rule *> ById;
  for (auto &[Id, R] : LiveRules)
    ById.emplace(Id, R);
  std::unordered_map<const Rule *, uint32_t> FlatIndex;
  FlatIndex.emplace(Start, 0);
  uint32_t Next = 1;
  for (auto &[Id, R] : ById)
    FlatIndex.emplace(R, Next++);

  Grammar.Rules.resize(1 + ById.size());
  auto EmitBody = [&FlatIndex](const Rule *R,
                               std::vector<FlatSymbol> &Body) {
    for (const Sym *S = R->Guard->Next; S != R->Guard; S = S->Next) {
      if (S->RuleRef)
        Body.push_back({FlatIndex.at(S->RuleRef), true});
      else
        Body.push_back({S->Value, false});
    }
  };
  EmitBody(Start, Grammar.Rules[0]);
  for (auto &[Id, R] : ById)
    EmitBody(R, Grammar.Rules[FlatIndex.at(R)]);
  return Grammar;
}

SequiturBuilder::InvariantReport SequiturBuilder::auditInvariants() const {
  InvariantReport Report;

  // Rule utility: every non-start rule used at least twice, and refcounts
  // consistent with actual uses.
  std::unordered_map<const Rule *, uint32_t> Uses;
  auto CountBody = [&Uses](const Rule *R) {
    for (const Sym *S = R->Guard->Next; S != R->Guard; S = S->Next)
      if (S->RuleRef)
        ++Uses[S->RuleRef];
  };
  CountBody(Start);
  for (const auto &[Id, R] : LiveRules)
    CountBody(R);
  for (const auto &[Id, R] : LiveRules) {
    auto It = Uses.find(R);
    if (It == Uses.end() || It->second < 2 || It->second != R->RefCount)
      ++Report.UtilityViolations;
  }

  // Digram uniqueness, counted: every non-overlapping repeat is residue.
  std::unordered_map<DigramKey, const Sym *, DigramKeyHash> Seen;
  auto ScanBody = [&Seen, &Report](const Rule *R) {
    for (const Sym *S = R->Guard->Next;
         S != R->Guard && S->Next != R->Guard; S = S->Next) {
      ++Report.TotalDigrams;
      DigramKey Key = {handleOf(S), handleOf(S->Next)};
      auto [It, Inserted] = Seen.emplace(Key, S);
      if (!Inserted && It->second->Next != S)
        ++Report.DuplicateDigrams;
    }
  };
  ScanBody(Start);
  for (const auto &[Id, R] : LiveRules)
    ScanBody(R);
  return Report;
}

FlatGrammar twpp::buildSequiturGrammar(const RawTrace &Trace) {
  obs::PhaseSpan Span("sequitur");
  SequiturBuilder Builder;
  for (const TraceEvent &Event : Trace.Events)
    Builder.append(eventToToken(Event));
  return Builder.freeze();
}
