//===- support/FileIO.cpp - Whole-file read/write helpers -----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"

#include <cstdio>

using namespace twpp;

bool twpp::writeFileBytes(const std::string &Path,
                          const std::vector<uint8_t> &Bytes) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Written =
      Bytes.empty() ? 0 : std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  bool Ok = Written == Bytes.size() && std::fclose(File) == 0;
  if (Written != Bytes.size())
    std::remove(Path.c_str());
  return Ok;
}

bool twpp::readFileBytes(const std::string &Path,
                         std::vector<uint8_t> &Bytes) {
  Bytes.clear();
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  if (Size < 0) {
    std::fclose(File);
    return false;
  }
  std::fseek(File, 0, SEEK_SET);
  Bytes.resize(static_cast<size_t>(Size));
  size_t Read =
      Bytes.empty() ? 0 : std::fread(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  return Read == Bytes.size();
}

bool twpp::readFileSlice(const std::string &Path, uint64_t Offset,
                         uint64_t Length, std::vector<uint8_t> &Bytes) {
  Bytes.clear();
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  if (std::fseek(File, static_cast<long>(Offset), SEEK_SET) != 0) {
    std::fclose(File);
    return false;
  }
  Bytes.resize(static_cast<size_t>(Length));
  size_t Read =
      Bytes.empty() ? 0 : std::fread(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  return Read == Bytes.size();
}

uint64_t twpp::fileSize(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return 0;
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  std::fclose(File);
  return Size < 0 ? 0 : static_cast<uint64_t>(Size);
}
