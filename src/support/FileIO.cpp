//===- support/FileIO.cpp - Durable file read/write helpers ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

using namespace twpp;

namespace {

IoError fail(IoStatus Status, const std::string &Detail, int Err = errno) {
  IoError E;
  E.Status = Status;
  E.Errno = Err;
  E.Detail = Detail;
  return E;
}

IoError injected(IoStatus Status, const std::string &Detail) {
  return fail(Status, Detail + " [injected]", 0);
}

/// fsync (or the platform equivalent) on an open stream. Failing to make
/// the staged bytes durable before the rename would let a crash publish a
/// name pointing at unwritten data.
bool syncStream(std::FILE *File) {
#if defined(_WIN32)
  return _commit(_fileno(File)) == 0;
#else
  return ::fsync(fileno(File)) == 0;
#endif
}

/// One staging attempt of writeFileBytesAtomic: write TmpPath fully,
/// fsync, rename onto Path. Removes TmpPath on every failure exit.
IoError writeAtomicOnce(const std::string &Path, const std::string &TmpPath,
                        const std::vector<uint8_t> &Bytes) {
  if (fault::shouldFailIo("open"))
    return injected(IoStatus::OpenFailed, TmpPath);
  std::FILE *File = std::fopen(TmpPath.c_str(), "wb");
  if (!File)
    return fail(IoStatus::OpenFailed, TmpPath);

  auto Abort = [&](IoStatus Status, bool Injected) {
    int Err = errno;
    std::fclose(File);
    std::remove(TmpPath.c_str());
    return Injected ? injected(Status, TmpPath) : fail(Status, TmpPath, Err);
  };

  if (fault::shouldFailIo("write"))
    return Abort(IoStatus::WriteFailed, /*Injected=*/true);
  size_t Written =
      Bytes.empty() ? 0 : std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  if (Written != Bytes.size())
    return Abort(IoStatus::ShortWrite, /*Injected=*/false);
  if (fault::shouldFailIo("flush"))
    return Abort(IoStatus::FlushFailed, /*Injected=*/true);
  if (std::fflush(File) != 0)
    return Abort(IoStatus::FlushFailed, /*Injected=*/false);
  if (fault::shouldFailIo("sync"))
    return Abort(IoStatus::SyncFailed, /*Injected=*/true);
  if (!syncStream(File))
    return Abort(IoStatus::SyncFailed, /*Injected=*/false);
  if (std::fclose(File) != 0) {
    std::remove(TmpPath.c_str());
    return fail(IoStatus::CloseFailed, TmpPath);
  }
  if (fault::shouldFailIo("rename")) {
    std::remove(TmpPath.c_str());
    return injected(IoStatus::RenameFailed, Path);
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    int Err = errno;
    std::remove(TmpPath.c_str());
    return fail(IoStatus::RenameFailed, Path, Err);
  }
  return IoError::success();
}

} // namespace

const char *twpp::ioStatusName(IoStatus Status) {
  switch (Status) {
  case IoStatus::Ok:
    return "ok";
  case IoStatus::OpenFailed:
    return "open-failed";
  case IoStatus::ReadFailed:
    return "read-failed";
  case IoStatus::ShortRead:
    return "short-read";
  case IoStatus::WriteFailed:
    return "write-failed";
  case IoStatus::ShortWrite:
    return "short-write";
  case IoStatus::FlushFailed:
    return "flush-failed";
  case IoStatus::SyncFailed:
    return "sync-failed";
  case IoStatus::CloseFailed:
    return "close-failed";
  case IoStatus::RenameFailed:
    return "rename-failed";
  case IoStatus::StatFailed:
    return "stat-failed";
  }
  return "unknown";
}

std::string IoError::message() const {
  std::string Out = ioStatusName(Status);
  if (!Detail.empty())
    Out += ": " + Detail;
  if (Errno != 0) {
    Out += " (";
    Out += std::strerror(Errno);
    Out += ")";
  }
  return Out;
}

IoError twpp::writeFileBytes(const std::string &Path,
                             const std::vector<uint8_t> &Bytes) {
  obs::metrics().counter(obs::names::IoWrites).add();
  if (fault::shouldFailIo("open")) {
    obs::metrics().counter(obs::names::IoWriteFailures).add();
    return injected(IoStatus::OpenFailed, Path);
  }
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    obs::metrics().counter(obs::names::IoWriteFailures).add();
    return fail(IoStatus::OpenFailed, Path);
  }
  bool InjectWrite = fault::shouldFailIo("write");
  size_t Written = (Bytes.empty() || InjectWrite)
                       ? 0
                       : std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  if (InjectWrite || Written != Bytes.size()) {
    int Err = InjectWrite ? 0 : errno;
    std::fclose(File);
    // A partial file is worse than no file: readers would see a
    // well-formed prefix and trust it.
    std::remove(Path.c_str());
    obs::metrics().counter(obs::names::IoWriteFailures).add();
    return InjectWrite ? injected(IoStatus::WriteFailed, Path)
                       : fail(IoStatus::ShortWrite, Path, Err);
  }
  if (std::fclose(File) != 0) {
    int Err = errno;
    std::remove(Path.c_str());
    obs::metrics().counter(obs::names::IoWriteFailures).add();
    return fail(IoStatus::CloseFailed, Path, Err);
  }
  return IoError::success();
}

IoError twpp::writeFileBytesAtomic(const std::string &Path,
                                   const std::vector<uint8_t> &Bytes,
                                   const RetryPolicy &Retry) {
  obs::metrics().counter(obs::names::IoAtomicWrites).add();
  std::string TmpPath = Path + ".tmp";
  unsigned Attempts = Retry.MaxAttempts == 0 ? 1 : Retry.MaxAttempts;
  IoError Last;
  for (unsigned Attempt = 1; Attempt <= Attempts; ++Attempt) {
    Last = writeAtomicOnce(Path, TmpPath, Bytes);
    if (Last.ok())
      return Last;
    if (Attempt == Attempts)
      break;
    obs::metrics().counter(obs::names::IoWriteRetries).add();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<uint64_t>(Retry.InitialBackoffMs) << (Attempt - 1)));
  }
  obs::metrics().counter(obs::names::IoWriteFailures).add();
  return Last;
}

IoError twpp::readFileBytes(const std::string &Path,
                            std::vector<uint8_t> &Bytes) {
  Bytes.clear();
  obs::metrics().counter(obs::names::IoReads).add();
  if (fault::shouldFailIo("open"))
    return injected(IoStatus::OpenFailed, Path);
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return fail(IoStatus::OpenFailed, Path);
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  if (Size < 0) {
    int Err = errno;
    std::fclose(File);
    return fail(IoStatus::StatFailed, Path, Err);
  }
  std::fseek(File, 0, SEEK_SET);
  Bytes.resize(static_cast<size_t>(Size));
  bool InjectRead = fault::shouldFailIo("read");
  size_t Read = (Bytes.empty() || InjectRead)
                    ? 0
                    : std::fread(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  if (InjectRead || Read != Bytes.size()) {
    obs::metrics().counter(obs::names::IoShortReads).add();
    size_t Want = Bytes.size();
    Bytes.clear();
    return InjectRead
               ? injected(IoStatus::ReadFailed, Path)
               : fail(IoStatus::ShortRead,
                      Path + " (got " + std::to_string(Read) + " of " +
                          std::to_string(Want) + " bytes)",
                      0);
  }
  return IoError::success();
}

IoError twpp::readFileSlice(const std::string &Path, uint64_t Offset,
                            uint64_t Length, std::vector<uint8_t> &Bytes) {
  Bytes.clear();
  obs::metrics().counter(obs::names::IoReads).add();
  if (fault::shouldFailIo("open"))
    return injected(IoStatus::OpenFailed, Path);
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return fail(IoStatus::OpenFailed, Path);
  if (std::fseek(File, static_cast<long>(Offset), SEEK_SET) != 0) {
    int Err = errno;
    std::fclose(File);
    return fail(IoStatus::ReadFailed, Path, Err);
  }
  Bytes.resize(static_cast<size_t>(Length));
  bool InjectRead = fault::shouldFailIo("read");
  size_t Read = (Bytes.empty() || InjectRead)
                    ? 0
                    : std::fread(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  if (InjectRead || Read != Bytes.size()) {
    obs::metrics().counter(obs::names::IoShortReads).add();
    Bytes.clear();
    return InjectRead
               ? injected(IoStatus::ReadFailed, Path)
               : fail(IoStatus::ShortRead,
                      Path + " (offset " + std::to_string(Offset) +
                          ", got " + std::to_string(Read) + " of " +
                          std::to_string(Length) + " bytes)",
                      0);
  }
  return IoError::success();
}

std::optional<uint64_t> twpp::fileSize(const std::string &Path) {
  if (fault::shouldFailIo("stat"))
    return std::nullopt;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  std::fclose(File);
  if (Size < 0)
    return std::nullopt;
  return static_cast<uint64_t>(Size);
}
