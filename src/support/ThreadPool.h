//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the function-level pipeline
/// stages. Tasks are distributed round-robin across per-worker deques;
/// each worker pops its own deque LIFO (cache locality) and steals FIFO
/// from the others when it runs dry, so uneven per-function work — one hot
/// function with thousands of unique traces next to dozens of cold ones —
/// balances without a central queue becoming the bottleneck.
///
/// Observability: the pool reports pool.tasks, pool.steals, the
/// pool.queue_depth gauge and the pool.task_latency_us histogram
/// (enqueue-to-completion) through obs/Metrics.h, so a metrics run shows
/// how well a `--jobs N` fan-out actually balanced. With event tracing
/// on (obs/Trace.h), run() captures the enqueuing thread's span path and
/// a flow id; the worker re-installs the path as its span root and wraps
/// the task in a "pool" span, so worker-side spans aggregate and render
/// under the enqueuing phase ("compact/dbb/pool") and a flow arrow links
/// the enqueue site to the execution slice across threads.
///
/// Tasks must not throw. run() may be called from worker threads (tasks
/// may spawn subtasks); wait() must only be called from outside the pool.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_THREADPOOL_H
#define TWPP_SUPPORT_THREADPOOL_H

#include "support/Parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace twpp {

/// Fixed-size work-stealing pool. Workers start in the constructor and
/// join in the destructor; the destructor drains any still-queued tasks.
class ThreadPool {
public:
  /// Starts \p WorkerCount workers (at least 1).
  explicit ThreadPool(unsigned WorkerCount);

  /// Drains outstanding tasks, then stops and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void run(std::function<void()> Task);

  /// Blocks until every task enqueued so far has finished.
  void wait();

  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Number of tasks a worker took from another worker's deque.
  uint64_t stealCount() const {
    return Steals.load(std::memory_order_relaxed);
  }

  /// Total tasks executed to completion.
  uint64_t taskCount() const {
    return TasksRun.load(std::memory_order_relaxed);
  }

private:
  /// One task with its enqueue timestamp and span/flow attribution (all
  /// captured only when telemetry or tracing is enabled, so the latency
  /// histogram and the timeline cost nothing when off).
  struct TaskItem {
    std::function<void()> Fn;
    uint64_t EnqueuedNs = 0;
    /// Flow-arrow id linking the enqueue site to the executing slice;
    /// 0 when tracing is off.
    uint64_t FlowId = 0;
    /// The enqueuing thread's span path ("compact/dbb"), installed as
    /// the worker-side span root for the task's duration.
    std::string ParentPath;
    /// True when ParentPath/FlowId were captured and the worker must
    /// wrap the task in an attributed "pool" span.
    bool Attributed = false;
  };

  /// A per-worker deque behind its own mutex. The owner pops from the
  /// back (LIFO), thieves pop from the front (FIFO), so a thief takes the
  /// oldest — typically largest-remaining — chunk of work.
  struct WorkerQueue {
    std::mutex M;
    std::deque<TaskItem> Tasks;
  };

  void workerLoop(unsigned Self);
  bool popTask(unsigned Self, TaskItem &Item);
  void runTask(TaskItem &Item);
  void finishTask(const TaskItem &Item);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex IdleM;
  std::condition_variable WorkAvailable; ///< Workers sleep here when dry.
  std::condition_variable AllDone;       ///< wait() sleeps here.

  std::atomic<int64_t> Queued{0};     ///< Tasks sitting in deques.
  std::atomic<int64_t> Unfinished{0}; ///< Queued + currently running.
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> TasksRun{0};
  std::atomic<uint32_t> NextQueue{0}; ///< Round-robin enqueue cursor.
  std::atomic<bool> Stop{false};
};

} // namespace twpp

#endif // TWPP_SUPPORT_THREADPOOL_H
