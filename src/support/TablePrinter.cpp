//===- support/TablePrinter.cpp - Fixed-width console tables --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>

using namespace twpp;

std::string TablePrinter::render() const {
  std::string Out;
  Out += "== " + Title + " ==\n";
  if (Rows.empty())
    return Out;

  size_t Columns = 0;
  for (const auto &Row : Rows)
    Columns = std::max(Columns, Row.size());

  std::vector<size_t> Widths(Columns, 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto EmitRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Columns; ++C) {
      const std::string Cell = C < Row.size() ? Row[C] : "";
      Out += Cell;
      if (C + 1 != Columns)
        Out += std::string(Widths[C] - Cell.size() + 2, ' ');
    }
    Out += '\n';
  };

  EmitRow(Rows.front());
  size_t RuleWidth = 0;
  for (size_t C = 0; C < Columns; ++C)
    RuleWidth += Widths[C] + (C + 1 != Columns ? 2 : 0);
  Out += std::string(RuleWidth, '-') + "\n";
  for (size_t R = 1; R < Rows.size(); ++R)
    EmitRow(Rows[R]);
  return Out;
}

void TablePrinter::print() const {
  std::string Text = render();
  std::fwrite(Text.data(), 1, Text.size(), stdout);
}
