//===- support/Varint.h - LEB128 varint decoders (scalar + SWAR) -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone LEB128 varint decoders for the archive read path. Two
/// implementations with bit-identical semantics:
///
///  - decodeVarUintScalar: the reference byte-at-a-time loop, the exact
///    semantics ByteReader::readVarUint has always had. Kept as the oracle
///    the fuzz suite (VarintFuzzTest) checks the fast path against.
///  - decodeVarUintSwar: a branchless SWAR fast path that loads eight
///    bytes at once, finds the terminator with one bit-trick, and compacts
///    the 7-bit groups with three shift/mask rounds — no per-byte loop for
///    encodings up to 8 bytes (every timestamp-series value in practice).
///    Longer (9-10 byte) encodings and reads near the end of the buffer
///    fall back to the scalar loop, so behaviour on truncated and overlong
///    streams is identical by construction where it is not identical by
///    proof.
///
/// Both return the number of bytes consumed, or 0 on error without
/// touching \p Value. Errors are exactly the scalar loop's: the buffer
/// ends before a terminator byte, or the encoding runs past 10 bytes
/// (shift >= 64). A 10-byte encoding whose final byte carries bits beyond
/// the 64-bit range keeps the scalar loop's silent-truncation behaviour
/// (only bit 0 of the tenth byte lands, in bit 63).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_VARINT_H
#define TWPP_SUPPORT_VARINT_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace twpp::varint {

/// Maximum bytes a LEB128-encoded uint64 may occupy.
inline constexpr size_t MaxEncodedBytes = 10;

/// Reference decoder: byte-at-a-time LEB128. \returns bytes consumed, or 0
/// when the buffer is exhausted or the encoding exceeds 10 bytes.
inline size_t decodeVarUintScalar(const uint8_t *P, const uint8_t *End,
                                  uint64_t &Value) {
  uint64_t Result = 0;
  unsigned Shift = 0;
  const uint8_t *Cursor = P;
  while (true) {
    if (Cursor >= End || Shift >= 64)
      return 0;
    uint8_t Byte = *Cursor++;
    Result |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
    if (!(Byte & 0x80)) {
      Value = Result;
      return static_cast<size_t>(Cursor - P);
    }
    Shift += 7;
  }
}

namespace detail {

/// Compacts the low 7 bits of each byte of \p Word (little-endian lane
/// order) into one integer: byte k contributes bits [7k, 7k+7). Three
/// rounds of pairwise merging — branchless.
inline uint64_t compact7(uint64_t Word) {
  uint64_t X = Word & 0x7F7F7F7F7F7F7F7FULL;
  X = (X & 0x007F007F007F007FULL) | ((X & 0x7F007F007F007F00ULL) >> 1);
  X = (X & 0x00003FFF00003FFFULL) | ((X & 0x3FFF00003FFF0000ULL) >> 2);
  X = (X & 0x000000000FFFFFFFULL) | ((X & 0x0FFFFFFF00000000ULL) >> 4);
  return X;
}

} // namespace detail

/// SWAR decoder: same contract and results as decodeVarUintScalar on every
/// input (the VarintFuzzTest property). Fast path requires 8 loadable
/// bytes and an encoding of <= 8 bytes; everything else defers to the
/// scalar reference.
inline size_t decodeVarUintSwar(const uint8_t *P, const uint8_t *End,
                                uint64_t &Value) {
  if constexpr (std::endian::native != std::endian::little)
    return decodeVarUintScalar(P, End, Value);
  if (End - P < 8)
    return decodeVarUintScalar(P, End, Value);
  // 1- and 2-byte encodings dominate real series streams (small deltas);
  // decide them with direct loads before paying the 8-byte gather.
  if (!(P[0] & 0x80)) {
    Value = P[0];
    return 1;
  }
  if (!(P[1] & 0x80)) {
    Value = static_cast<uint64_t>(P[0] & 0x7F) |
            (static_cast<uint64_t>(P[1]) << 7);
    return 2;
  }
  uint64_t Word;
  std::memcpy(&Word, P, 8);
  // A clear high bit marks the last byte of the encoding; find the first.
  uint64_t Terminators = ~Word & 0x8080808080808080ULL;
  if (Terminators == 0)
    // 9-10 byte encoding (or overlong): rare, let the reference handle it.
    return decodeVarUintScalar(P, End, Value);
  unsigned Len = static_cast<unsigned>(std::countr_zero(Terminators) / 8) + 1;
  // Zero the bytes past the terminator, then gather the 7-bit groups.
  uint64_t Mask = Len == 8 ? ~0ULL : ((1ULL << (8 * Len)) - 1);
  Value = detail::compact7(Word & Mask);
  return Len;
}

/// Zigzag decode (the inverse of ByteWriter::writeVarInt's mapping).
inline int64_t zigzagDecodeValue(uint64_t Value) {
  return static_cast<int64_t>(Value >> 1) ^ -static_cast<int64_t>(Value & 1);
}

/// Signed variants: varint + zigzag.
inline size_t decodeVarIntScalar(const uint8_t *P, const uint8_t *End,
                                 int64_t &Value) {
  uint64_t Raw;
  size_t Len = decodeVarUintScalar(P, End, Raw);
  if (Len)
    Value = zigzagDecodeValue(Raw);
  return Len;
}

inline size_t decodeVarIntSwar(const uint8_t *P, const uint8_t *End,
                               int64_t &Value) {
  uint64_t Raw;
  size_t Len = decodeVarUintSwar(P, End, Raw);
  if (Len)
    Value = zigzagDecodeValue(Raw);
  return Len;
}

} // namespace twpp::varint

#endif // TWPP_SUPPORT_VARINT_H
