//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global fault-injection seam so every recovery path in the
/// durability layer (atomic archive writes, journal checkpoints, the
/// twpp_recover salvage tool) can be exercised deterministically in tests
/// and CI. Faults are described by the TWPP_FAULT environment variable (or
/// installed programmatically), e.g.:
///
///   TWPP_FAULT=io:write:p=0.01,alloc:n=500
///
/// Spec grammar (docs/DURABILITY.md has the full reference):
///
///   spec  := rule (',' rule)*
///   rule  := class (':' part)*        class := 'io' | 'alloc' | 'wire'
///   part  := op | key '=' value
///   op    := open | read | write | flush | sync | rename | stat
///            | journal | mmap | '*'   (io only; default '*')
///          | corrupt | truncate | duplicate | reorder | stall | '*'
///            (wire only; default '*')
///   key   := p (fail probability per hit, deterministic PRNG)
///          | n (fail exactly the n-th hit, one-shot)
///          | every (fail every k-th hit)
///          | seed (PRNG seed for p-rules; default 0x5EED)
///
/// The hooks are pull-based: instrumented sites ask shouldFailIo("write")
/// before performing the operation and fabricate the operation's natural
/// failure when told to. Allocation faults throw std::bad_alloc from
/// maybeFailAlloc(), which the journal writer and the salvage tool catch
/// and convert into their degraded/diagnostic paths. Wire faults drive
/// the replay producer's frame mutations (src/ingest/Producer.h): a hit
/// on shouldFaultWire("corrupt") makes the producer damage that frame on
/// the wire, deterministically, so the ingestion frontend's resync and
/// sequencing recovery paths are CI-sweepable. With no spec installed
/// every hook is a single relaxed atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_FAULTINJECTION_H
#define TWPP_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace twpp::fault {

/// One parsed rule of a TWPP_FAULT spec.
struct FaultRule {
  enum class Kind : uint8_t { Io, Alloc, Wire };
  Kind RuleKind = Kind::Io;
  /// Operation matched. For Io: "open", "read", "write", "flush",
  /// "sync", "rename", "stat", "journal", "mmap", or "*" for any. For
  /// Wire: "corrupt", "truncate", "duplicate", "reorder", "stall", or
  /// "*". Ignored for Alloc.
  std::string Op = "*";
  /// Per-hit failure probability (p=). 0 disables the probabilistic arm.
  double P = 0;
  /// Fail exactly the Nth matching hit (n=), 1-based, one-shot.
  uint64_t Nth = 0;
  /// Fail every Everyth matching hit (every=).
  uint64_t Every = 0;
  /// Seed of the deterministic PRNG driving p= decisions.
  uint64_t Seed = 0x5EED;
};

/// Parses \p Spec into \p Rules. \returns false and sets \p Error on a
/// malformed spec (unknown class/op/key, bad number).
bool parseFaultSpec(const std::string &Spec, std::vector<FaultRule> &Rules,
                    std::string &Error);

/// Installs \p Spec as the process-global fault configuration, replacing
/// any previous one (including the TWPP_FAULT environment spec). An empty
/// spec disables injection. \returns false and leaves the old
/// configuration in place when the spec does not parse.
bool setFaultSpec(const std::string &Spec, std::string *Error = nullptr);

/// The currently installed spec string ("" when injection is off).
std::string activeFaultSpec();

/// True when a fault should be injected for io operation \p Op on this
/// hit. Bumps the io.faults_injected counter when it fires. Always false
/// while a ScopedFaultSuspend is live on this thread.
bool shouldFailIo(const char *Op);

/// Throws std::bad_alloc when an alloc rule fires on this hit.
void maybeFailAlloc();

/// True when a wire-level fault should be injected for \p Op
/// ("corrupt", "truncate", "duplicate", "reorder", "stall") on this hit.
/// Consulted by the replay producer per frame; the mutation itself lives
/// with the caller. Bumps the io.faults_injected counter when it fires
/// and is suppressed by ScopedFaultSuspend like every other hook.
bool shouldFaultWire(const char *Op);

/// Number of faults injected since process start (all rules).
uint64_t injectedFaultCount();

/// RAII: replaces the active spec for a scope (tests override the
/// environment sweep), restoring the previous one on destruction.
class ScopedFaultSpec {
public:
  explicit ScopedFaultSpec(const std::string &Spec)
      : Saved(activeFaultSpec()) {
    setFaultSpec(Spec);
  }
  ~ScopedFaultSpec() { setFaultSpec(Saved); }
  ScopedFaultSpec(const ScopedFaultSpec &) = delete;
  ScopedFaultSpec &operator=(const ScopedFaultSpec &) = delete;

private:
  std::string Saved;
};

/// RAII: suspends injection on the current thread (nestable). Tests wrap
/// must-succeed setup IO in this so a CI-wide TWPP_FAULT sweep only hits
/// the paths under test.
class ScopedFaultSuspend {
public:
  ScopedFaultSuspend();
  ~ScopedFaultSuspend();
  ScopedFaultSuspend(const ScopedFaultSuspend &) = delete;
  ScopedFaultSuspend &operator=(const ScopedFaultSuspend &) = delete;
};

} // namespace twpp::fault

#endif // TWPP_SUPPORT_FAULTINJECTION_H
