//===- support/Mmap.cpp - Read-only memory-mapped files -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/Mmap.h"

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/FaultInjection.h"

#include <cerrno>

#if !defined(_WIN32)
#define TWPP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace twpp;

namespace {

IoError ioFail(IoStatus Status, const std::string &Detail, int Err) {
  IoError E;
  E.Status = Status;
  E.Errno = Err;
  E.Detail = Detail;
  return E;
}

} // namespace

bool MappedFile::available() {
#ifdef TWPP_HAVE_MMAP
  return true;
#else
  return false;
#endif
}

IoError MappedFile::map(const std::string &Path) {
  unmap();
#ifndef TWPP_HAVE_MMAP
  return ioFail(IoStatus::OpenFailed, Path + " (mmap unavailable)", 0);
#else
  if (fault::shouldFailIo("mmap"))
    return ioFail(IoStatus::OpenFailed, Path + " (mmap) [injected]", 0);
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return ioFail(IoStatus::OpenFailed, Path, errno);
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    IoError E = ioFail(IoStatus::StatFailed, Path, errno);
    ::close(Fd);
    return E;
  }
  size_t Size = static_cast<size_t>(St.st_size);
  if (Size == 0) {
    // mmap(2) rejects zero-length mappings; an empty file is still a
    // successfully "mapped" null span.
    ::close(Fd);
    IsMapped = true;
    obs::metrics().counter(obs::names::ArchiveMmapOpens).add();
    return IoError::success();
  }
  void *Addr = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
  // The mapping stays valid after close; keeping the fd would only leak
  // descriptors across long-lived readers.
  ::close(Fd);
  if (Addr == MAP_FAILED)
    return ioFail(IoStatus::ReadFailed, Path + " (mmap)", errno);
  Data = static_cast<const uint8_t *>(Addr);
  Length = Size;
  IsMapped = true;
  if (obs::memTrackingEnabled()) {
    obs::memAlloc(obs::memtags::ArchiveMmap, Length);
    Ledgered = Length;
  }
  obs::metrics().counter(obs::names::ArchiveMmapOpens).add();
  obs::metrics().counter(obs::names::ArchiveMmapBytes).add(Length);
  return IoError::success();
#endif
}

void MappedFile::unmap() {
#ifdef TWPP_HAVE_MMAP
  if (Data) {
    ::munmap(const_cast<uint8_t *>(Data), Length);
    if (Ledgered)
      obs::memFree(obs::memtags::ArchiveMmap, Ledgered);
  }
#endif
  Data = nullptr;
  Length = 0;
  Ledgered = 0;
  IsMapped = false;
}
