//===- support/Parallel.h - Parallel execution configuration ----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ParallelConfig, the knob every parallelizable pipeline stage takes, and
/// parallelFor, the fan-out helper they share. The paper's partitioned WPP
/// makes per-function work independent (Section 2), so the function-level
/// stages — DBB compaction, TWPP conversion, archive block encoding — fan
/// out one task per function table over a work-stealing pool
/// (support/ThreadPool.h).
///
/// Parallel runs are bit-for-bit deterministic: every task writes only its
/// own pre-allocated output slot and all cross-function ordering (archive
/// layout, metric accounting loops) stays on the calling thread, so
/// `--jobs 8` produces byte-identical archives to `--jobs 1`.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_PARALLEL_H
#define TWPP_SUPPORT_PARALLEL_H

#include <cstddef>
#include <functional>

namespace twpp {

/// How many worker threads the parallel pipeline stages may use. The
/// default (1) is fully serial, which keeps every existing call site and
/// test on the single-threaded path unless a consumer opts in.
struct ParallelConfig {
  /// Worker count; 0 means "one per hardware thread".
  unsigned Jobs = 1;

  static ParallelConfig withJobs(unsigned N) { return ParallelConfig{N}; }

  /// Jobs with 0 resolved against the hardware.
  unsigned effectiveJobs() const;

  /// True when this config fans work out to a pool.
  bool parallel() const { return effectiveJobs() > 1; }
};

/// Runs Fn(0), ..., Fn(N-1), fanning out over a work-stealing pool of
/// min(Config.effectiveJobs(), N) workers; inline on the calling thread
/// when the config is serial or N < 2. Fn must not throw; iterations must
/// be independent (each writing only its own output slot).
void parallelFor(const ParallelConfig &Config, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace twpp

#endif // TWPP_SUPPORT_PARALLEL_H
