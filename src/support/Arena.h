//===- support/Arena.h - Bump-pointer allocation arena ----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for decode scratch space. The archive read path
/// decodes each function block through short-lived intermediate buffers
/// (the sign-delimited series values, expansion scratch); allocating those
/// from the heap per series was a measurable cost of every query. An Arena
/// hands out memory by bumping a cursor through pooled blocks and recycles
/// everything with one reset() — after the first query warms the pool, a
/// decode performs zero intermediate heap allocations.
///
/// Semantics:
///  - allocate() returns maximally-aligned-or-better storage; a request
///    larger than the block size gets a dedicated spill block (kept and
///    reused like any other block).
///  - reset() rewinds the arena without releasing memory: subsequent
///    allocations reuse the pooled blocks in order. Destruction frees
///    everything.
///  - Not thread-safe; the read path keeps one arena per thread.
///
/// Observability: when constructed with a memtag (obs/Memory.h), every
/// block the arena acquires is recorded against that tag (arena.decode for
/// the read path) and released on destruction, so twpp_memstat and the
/// twpp-mem-* ledger checks see pooled scratch as live bytes — reserved,
/// not leaked.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_ARENA_H
#define TWPP_SUPPORT_ARENA_H

#include "obs/Memory.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace twpp {

class Arena {
public:
  static constexpr size_t DefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t BlockBytes = DefaultBlockBytes,
                 const char *MemTag = nullptr)
      : BlockBytes(BlockBytes ? BlockBytes : DefaultBlockBytes),
        MemTag(MemTag) {}

  ~Arena() { release(); }

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two no
  /// larger than alignof(std::max_align_t); blocks are max-aligned, so any
  /// standard alignment is honoured). Zero-byte requests return a unique,
  /// valid pointer into the current block.
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    while (Current < Blocks.size()) {
      Block &B = Blocks[Current];
      size_t Aligned = (B.Used + (Align - 1)) & ~(Align - 1);
      if (Aligned + Bytes <= B.Size) {
        B.Used = Aligned + Bytes;
        Used = UsedBeforeCurrent + B.Used;
        return B.Data.get() + Aligned;
      }
      UsedBeforeCurrent += B.Used;
      ++Current;
    }
    // No pooled block fits: acquire one. Oversized requests spill into a
    // dedicated block of exactly their size; it is pooled for reuse too.
    size_t Size = Bytes > BlockBytes ? Bytes : BlockBytes;
    Blocks.push_back({std::unique_ptr<uint8_t[]>(new uint8_t[Size]), Size,
                      Bytes});
    Reserved += Size;
    Used = UsedBeforeCurrent + Bytes;
    if (MemTag && obs::memTrackingEnabled()) {
      obs::memAlloc(MemTag, Size);
      Ledgered += Size;
    }
    return Blocks.back().Data.get();
  }

  /// Typed array allocation (uninitialized storage).
  template <typename T> T *allocateArray(size_t Count) {
    return static_cast<T *>(allocate(Count * sizeof(T), alignof(T)));
  }

  /// Rewinds the arena to empty while keeping every block for reuse.
  void reset() {
    for (Block &B : Blocks)
      B.Used = 0;
    Current = 0;
    Used = 0;
    UsedBeforeCurrent = 0;
  }

  /// Returns every pooled block to the heap and settles the ledger. Only
  /// the bytes actually recorded are freed, so toggling tracking
  /// mid-lifetime can never drive the tag's live count negative.
  void release() {
    Blocks.clear();
    Current = 0;
    Used = 0;
    UsedBeforeCurrent = 0;
    Reserved = 0;
    if (MemTag && Ledgered) {
      obs::memFree(MemTag, Ledgered);
      Ledgered = 0;
    }
  }

  /// Bytes handed out since the last reset().
  size_t bytesUsed() const { return Used; }

  /// Total block bytes the arena holds (its ledger footprint).
  size_t bytesReserved() const { return Reserved; }

  size_t blockCount() const { return Blocks.size(); }

private:
  struct Block {
    std::unique_ptr<uint8_t[]> Data;
    size_t Size = 0;
    size_t Used = 0;
  };

  size_t BlockBytes;
  const char *MemTag;
  std::vector<Block> Blocks;
  /// Index of the block currently being bumped; earlier blocks are full.
  size_t Current = 0;
  size_t Used = 0;
  size_t UsedBeforeCurrent = 0;
  size_t Reserved = 0;
  size_t Ledgered = 0;
};

} // namespace twpp

#endif // TWPP_SUPPORT_ARENA_H
