//===- support/LZW.cpp - Welch's adaptive dictionary codec ----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/LZW.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "support/ByteStream.h"

#include <unordered_map>

using namespace twpp;

namespace {

/// Encoder dictionary key: (prefix code, next byte) packed into 64 bits.
uint64_t packKey(uint32_t PrefixCode, uint8_t Byte) {
  return (static_cast<uint64_t>(PrefixCode) << 8) | Byte;
}

/// Decoder-side dictionary entry. Entries 0-255 are the implicit single
/// byte roots; later entries chain back through Prefix.
struct DecodeEntry {
  uint32_t Prefix;   ///< Code of the string this entry extends.
  uint8_t LastByte;  ///< Byte appended to the prefix string.
  uint8_t FirstByte; ///< First byte of the full string (for KwKwK).
  uint32_t Length;   ///< Full expanded length.
};

} // namespace

std::vector<uint8_t> twpp::lzwCompress(const std::vector<uint8_t> &Input) {
  obs::PhaseSpan Span("lzw_compress");
  ByteWriter Writer;
  if (Input.empty())
    return Writer.take();

  // Codes 0-255 are the single-byte strings; new codes start at 256.
  std::unordered_map<uint64_t, uint32_t> Dict;
  Dict.reserve(1u << 16);
  uint32_t NextCode = 256;

  uint32_t Current = Input[0];
  for (size_t I = 1, E = Input.size(); I != E; ++I) {
    uint8_t Byte = Input[I];
    auto It = Dict.find(packKey(Current, Byte));
    if (It != Dict.end()) {
      Current = It->second;
      continue;
    }
    Writer.writeVarUint(Current);
    if (NextCode < LZWMaxDictSize)
      Dict.emplace(packKey(Current, Byte), NextCode++);
    Current = Byte;
  }
  Writer.writeVarUint(Current);
  std::vector<uint8_t> Out = Writer.take();
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Calls = M.counter(obs::names::LzwCompressCalls);
    static obs::Counter &BytesIn = M.counter(obs::names::LzwCompressBytesIn);
    static obs::Counter &BytesOut = M.counter(obs::names::LzwCompressBytesOut);
    static obs::Counter &DictEntries = M.counter(obs::names::LzwDictEntries);
    Calls.add();
    BytesIn.add(Input.size());
    BytesOut.add(Out.size());
    DictEntries.add(NextCode - 256);
  }
  return Out;
}

namespace {

void noteDecompress(size_t BytesInCount, size_t BytesOutCount) {
  if (!obs::enabled())
    return;
  obs::MetricsRegistry &M = obs::metrics();
  static obs::Counter &Calls = M.counter(obs::names::LzwDecompressCalls);
  static obs::Counter &BytesIn = M.counter(obs::names::LzwDecompressBytesIn);
  static obs::Counter &BytesOut = M.counter(obs::names::LzwDecompressBytesOut);
  Calls.add();
  BytesIn.add(BytesInCount);
  BytesOut.add(BytesOutCount);
}

} // namespace

bool twpp::lzwDecompress(ByteSpan Input, std::vector<uint8_t> &Output) {
  obs::PhaseSpan Span("lzw_decompress");
  Output.clear();
  if (Input.empty()) {
    noteDecompress(0, 0);
    return true;
  }

  ByteReader Reader(Input);
  std::vector<DecodeEntry> Dict;
  Dict.reserve(1u << 16);

  // Expands code \p Code to the end of Output. Returns false on a bad code.
  auto Expand = [&Dict, &Output](uint32_t Code) -> bool {
    if (Code < 256) {
      Output.push_back(static_cast<uint8_t>(Code));
      return true;
    }
    uint32_t Index = Code - 256;
    if (Index >= Dict.size())
      return false;
    const DecodeEntry &Entry = Dict[Index];
    size_t Start = Output.size();
    Output.resize(Start + Entry.Length);
    size_t Pos = Start + Entry.Length;
    uint32_t Walk = Code;
    while (Walk >= 256) {
      const DecodeEntry &E = Dict[Walk - 256];
      Output[--Pos] = E.LastByte;
      Walk = E.Prefix;
    }
    Output[--Pos] = static_cast<uint8_t>(Walk);
    return true;
  };

  auto FirstByteOf = [&Dict](uint32_t Code) -> uint8_t {
    if (Code < 256)
      return static_cast<uint8_t>(Code);
    return Dict[Code - 256].FirstByte;
  };

  auto LengthOf = [&Dict](uint32_t Code) -> uint32_t {
    if (Code < 256)
      return 1;
    return Dict[Code - 256].Length;
  };

  uint64_t First = Reader.readVarUint();
  if (Reader.hasError() || First >= 256) {
    Output.clear();
    return false;
  }
  uint32_t Previous = static_cast<uint32_t>(First);
  Output.push_back(static_cast<uint8_t>(Previous));

  while (!Reader.atEnd()) {
    uint64_t Raw = Reader.readVarUint();
    if (Reader.hasError()) {
      Output.clear();
      return false;
    }
    uint32_t Code = static_cast<uint32_t>(Raw);
    uint32_t NextCode = 256 + static_cast<uint32_t>(Dict.size());

    if (Code == NextCode && NextCode < LZWMaxDictSize) {
      // KwKwK: the code being defined right now. Its expansion is the
      // previous string plus that string's first byte.
      Dict.push_back({Previous, FirstByteOf(Previous), FirstByteOf(Previous),
                      LengthOf(Previous) + 1});
      if (!Expand(Code)) {
        Output.clear();
        return false;
      }
    } else {
      if (Code >= 256 && Code - 256 >= Dict.size()) {
        Output.clear();
        return false;
      }
      if (NextCode < LZWMaxDictSize)
        Dict.push_back({Previous, FirstByteOf(Code), FirstByteOf(Previous),
                        LengthOf(Previous) + 1});
      if (!Expand(Code)) {
        Output.clear();
        return false;
      }
    }
    Previous = Code;
  }
  noteDecompress(Input.size(), Output.size());
  return true;
}
