//===- support/Mmap.h - Read-only memory-mapped files -----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII read-only memory mapping for the zero-copy archive read path. An
/// ArchiveReader in mmap mode maps the archive once and decodes the index,
/// function blocks and DCG straight out of the mapping through ByteSpan
/// cursors — no read()-and-copy, no per-query buffer.
///
/// Failure is always graceful: map() returns a typed IoError and leaves
/// the object unmapped, and ArchiveReader falls back to buffered FileIO,
/// so platforms (or files) that cannot be mapped behave exactly like the
/// pre-mmap reader. On platforms without mmap at all (non-POSIX),
/// MappedFile::available() is false and map() reports OpenFailed
/// immediately.
///
/// Testability: map() consults the fault-injection seam under the io op
/// name "mmap" (TWPP_FAULT=io:mmap:n=1), which is how the corruption and
/// fallback tests force the buffered path deterministically. An empty file
/// maps successfully to the null span — mmap(2) itself rejects length 0,
/// so the wrapper special-cases it rather than failing on a valid archive
/// of zero bytes (no such archive exists today, but the reader's header
/// checks, not the IO layer, own that verdict).
///
/// Observability: mapped bytes are recorded against the archive.mmap
/// memtag (a fixed tag, so scoped decode audits never see them) and the
/// archive.mmap_opens / archive.mmap_bytes counters.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_MMAP_H
#define TWPP_SUPPORT_MMAP_H

#include "support/ByteStream.h"
#include "support/FileIO.h"

#include <cstdint>
#include <string>

namespace twpp {

/// A read-only mapping of one file. Movable, not copyable; unmaps on
/// destruction. A default-constructed instance is unmapped.
class MappedFile {
public:
  MappedFile() = default;
  ~MappedFile() { unmap(); }

  MappedFile(MappedFile &&Other) noexcept { *this = std::move(Other); }
  MappedFile &operator=(MappedFile &&Other) noexcept {
    if (this != &Other) {
      unmap();
      Data = Other.Data;
      Length = Other.Length;
      IsMapped = Other.IsMapped;
      Ledgered = Other.Ledgered;
      Other.Data = nullptr;
      Other.Length = 0;
      Other.IsMapped = false;
      Other.Ledgered = 0;
    }
    return *this;
  }

  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  /// True when this build can map files at all (POSIX mmap present).
  static bool available();

  /// Maps the file at \p Path read-only, replacing any current mapping.
  /// On failure the object is left unmapped and the caller is expected to
  /// fall back to buffered IO. An empty file yields a successful null
  /// mapping (mapped(), size() == 0).
  IoError map(const std::string &Path);

  /// Releases the mapping (no-op when unmapped).
  void unmap();

  /// True after a successful map(), including the empty-file case.
  bool mapped() const { return IsMapped; }

  size_t size() const { return Length; }

  /// The mapped bytes. Valid until unmap()/destruction; empty when
  /// unmapped.
  ByteSpan span() const { return ByteSpan(Data, Length); }

private:
  const uint8_t *Data = nullptr;
  size_t Length = 0;
  /// Bytes recorded against archive.mmap (0 when tracking was off at map
  /// time), so unmap never unbalances the ledger.
  size_t Ledgered = 0;
  bool IsMapped = false;
};

} // namespace twpp

#endif // TWPP_SUPPORT_MMAP_H
