//===- support/CliCommon.h - Shared CLI conventions -------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conventions every twpp_* tool shares, in one place so they cannot
/// drift: the 0/1/2 exit contract, `--flag=value` matching, and the
/// common `--format=` / `--io=` flags. Header-only by design — the io
/// helper forward-declares the archive-layer entry points it installs
/// into, so this header adds no link dependency of its own; a tool that
/// calls parseIoFlag() must link twpp_wpp (every archive-reading tool
/// already does), while a tool that never touches archives (e.g.
/// twpp_metrics_diff) can use the rest of this header linking nothing.
///
/// Exit contract (shared by every tool, asserted by CI):
///
///   0  clean — the tool did its job and found nothing wrong
///   1  findings — the tool worked, and is telling you something
///      (diagnostics, regressions, accounted data loss)
///   2  unusable — bad usage, unreadable input, fatal IO
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_CLICOMMON_H
#define TWPP_SUPPORT_CLICOMMON_H

#include <cstdint>
#include <initializer_list>
#include <string>

namespace twpp {

// Archive-layer entry points behind --io= (defined in wpp/Archive.cpp;
// redeclared here so this header stays link-free for tools that never
// read archives).
enum class IoMode : uint8_t;
bool parseIoMode(const std::string &Text, IoMode &Mode);
void setDefaultArchiveIoMode(IoMode Mode);

namespace cli {

/// The shared exit contract.
inline constexpr int ExitSuccess = 0;  ///< Clean.
inline constexpr int ExitFindings = 1; ///< Worked; has findings/loss.
inline constexpr int ExitUsage = 2;    ///< Bad usage or fatal IO.

/// Three-way result of offering an argument to a flag handler, so a
/// tool's parse loop can chain handlers and fall through to its own
/// flags:
///
///   switch (cli::parseFormatFlag(Arg, Format)) {
///   case cli::FlagParse::Ok: continue;
///   case cli::FlagParse::Bad: return usage();
///   case cli::FlagParse::NoMatch: break;
///   }
enum class FlagParse : uint8_t {
  NoMatch, ///< Not this flag; try the next handler.
  Ok,      ///< Consumed and valid.
  Bad,     ///< This flag, but the value is unusable: usage error.
};

/// Matches `--NAME=VALUE`; on match stores VALUE (possibly empty) in
/// \p Value.
inline bool flagValue(const std::string &Arg, const char *Name,
                      std::string &Value) {
  std::string Prefix = std::string("--") + Name + "=";
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Value = Arg.substr(Prefix.size());
  return true;
}

/// Handles `--format=FMT`, accepting only the formats in \p Allowed
/// (defaults to the text/json pair most tools share).
inline FlagParse
parseFormatFlag(const std::string &Arg, std::string &Format,
                std::initializer_list<const char *> Allowed = {"text",
                                                               "json"}) {
  std::string Value;
  if (!flagValue(Arg, "format", Value))
    return FlagParse::NoMatch;
  for (const char *Candidate : Allowed)
    if (Value == Candidate) {
      Format = Value;
      return FlagParse::Ok;
    }
  return FlagParse::Bad;
}

/// Handles `--io=MODE` (mmap or buffered) by installing the
/// process-default archive read path. Requires linking twpp_wpp.
inline FlagParse parseIoFlag(const std::string &Arg) {
  std::string Value;
  if (!flagValue(Arg, "io", Value))
    return FlagParse::NoMatch;
  IoMode Mode;
  if (!parseIoMode(Value, Mode))
    return FlagParse::Bad;
  setDefaultArchiveIoMode(Mode);
  return FlagParse::Ok;
}

/// Offers \p Arg to both common handlers (`--format=`, `--io=`) in one
/// call — the shape of most tools' parse loops:
///
///   switch (cli::parseCommonFlag(Arg, Format)) {
///   case cli::FlagParse::Ok: continue;
///   case cli::FlagParse::Bad: return usage();
///   case cli::FlagParse::NoMatch: break;  // tool-specific flags
///   }
inline FlagParse
parseCommonFlag(const std::string &Arg, std::string &Format,
                std::initializer_list<const char *> Allowed = {"text",
                                                               "json"}) {
  FlagParse Result = parseFormatFlag(Arg, Format, Allowed);
  if (Result != FlagParse::NoMatch)
    return Result;
  return parseIoFlag(Arg);
}

} // namespace cli
} // namespace twpp

#endif // TWPP_SUPPORT_CLICOMMON_H
