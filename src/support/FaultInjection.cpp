//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/Random.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>

using namespace twpp;
using namespace twpp::fault;

namespace {

const char *const IoOps[] = {"open", "read",    "write", "flush", "sync",
                             "rename", "stat", "journal", "mmap",  "*"};

const char *const WireOps[] = {"corrupt",  "truncate", "duplicate",
                               "reorder", "stall",    "*"};

bool knownOp(const char *const *Known, size_t Count, const std::string &Op) {
  for (size_t I = 0; I < Count; ++I)
    if (Op == Known[I])
      return true;
  return false;
}

bool knownIoOp(const std::string &Op) {
  return knownOp(IoOps, sizeof(IoOps) / sizeof(IoOps[0]), Op);
}

bool knownWireOp(const std::string &Op) {
  return knownOp(WireOps, sizeof(WireOps) / sizeof(WireOps[0]), Op);
}

bool parseUint(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseDouble(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(Text.c_str(), &End);
  return End && *End == '\0' && Out >= 0 && Out <= 1;
}

/// The live rules plus their hit counters and per-rule PRNGs.
struct InjectorState {
  struct ArmedRule {
    FaultRule Rule;
    uint64_t Hits = 0;
    Rng Prng;
    ArmedRule(FaultRule R) : Rule(R), Prng(R.Seed) {}
  };
  std::string Spec;
  std::vector<ArmedRule> Rules;
};

std::mutex &stateMutex() {
  static std::mutex M;
  return M;
}

/// Guarded by stateMutex(). Seeded from TWPP_FAULT on first use.
InjectorState &state() {
  static InjectorState *S = [] {
    auto *New = new InjectorState();
    if (const char *Env = std::getenv("TWPP_FAULT")) {
      std::string Error;
      std::vector<FaultRule> Rules;
      if (parseFaultSpec(Env, Rules, Error)) {
        New->Spec = Env;
        for (const FaultRule &R : Rules)
          New->Rules.emplace_back(R);
      } else {
        std::fprintf(stderr, "TWPP_FAULT ignored: %s\n", Error.c_str());
      }
    }
    return New;
  }();
  return *S;
}

/// Cheap fast-path switch: true when the TWPP_FAULT env var is present or
/// a spec was installed; hit() double-checks the parsed rule list under
/// the lock.
std::atomic<bool> &armedFlag() {
  static std::atomic<bool> Armed{std::getenv("TWPP_FAULT") != nullptr};
  return Armed;
}

std::atomic<uint64_t> &injectedCounter() {
  static std::atomic<uint64_t> Count{0};
  return Count;
}

thread_local int SuspendDepth = 0;

/// One hit against every matching armed rule; true when any fires.
bool hit(FaultRule::Kind Kind, const char *Op) {
  if (!armedFlag().load(std::memory_order_relaxed) || SuspendDepth > 0)
    return false;
  std::lock_guard<std::mutex> Lock(stateMutex());
  bool Fire = false;
  for (auto &Armed : state().Rules) {
    const FaultRule &R = Armed.Rule;
    if (R.RuleKind != Kind)
      continue;
    if (Kind != FaultRule::Kind::Alloc && R.Op != "*" && R.Op != Op)
      continue;
    ++Armed.Hits;
    if (R.Nth != 0 && Armed.Hits == R.Nth)
      Fire = true;
    if (R.Every != 0 && Armed.Hits % R.Every == 0)
      Fire = true;
    if (R.P > 0 && Armed.Prng.nextBool(R.P))
      Fire = true;
  }
  if (Fire) {
    injectedCounter().fetch_add(1, std::memory_order_relaxed);
    static obs::Counter &Injected =
        obs::metrics().counter(obs::names::IoFaultsInjected);
    Injected.add();
  }
  return Fire;
}

} // namespace

bool fault::parseFaultSpec(const std::string &Spec,
                           std::vector<FaultRule> &Rules,
                           std::string &Error) {
  Rules.clear();
  Error.clear();
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string RuleText = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (RuleText.empty()) {
      if (Spec.empty())
        break; // Empty spec: no rules.
      Error = "empty rule in spec";
      return false;
    }

    FaultRule Rule;
    size_t PartPos = 0;
    bool First = true;
    while (PartPos <= RuleText.size()) {
      size_t PartEnd = RuleText.find(':', PartPos);
      if (PartEnd == std::string::npos)
        PartEnd = RuleText.size();
      std::string Part = RuleText.substr(PartPos, PartEnd - PartPos);
      PartPos = PartEnd + 1;
      if (First) {
        if (Part == "io")
          Rule.RuleKind = FaultRule::Kind::Io;
        else if (Part == "alloc")
          Rule.RuleKind = FaultRule::Kind::Alloc;
        else if (Part == "wire")
          Rule.RuleKind = FaultRule::Kind::Wire;
        else {
          Error = "unknown fault class '" + Part + "'";
          return false;
        }
        First = false;
        continue;
      }
      size_t Eq = Part.find('=');
      if (Eq == std::string::npos) {
        bool Known = (Rule.RuleKind == FaultRule::Kind::Io && knownIoOp(Part)) ||
                     (Rule.RuleKind == FaultRule::Kind::Wire &&
                      knownWireOp(Part));
        if (!Known) {
          Error = (Rule.RuleKind == FaultRule::Kind::Wire
                       ? "unknown wire operation '"
                       : "unknown io operation '") +
                  Part + "'";
          return false;
        }
        Rule.Op = Part;
        continue;
      }
      std::string Key = Part.substr(0, Eq);
      std::string Value = Part.substr(Eq + 1);
      if (Key == "p") {
        if (!parseDouble(Value, Rule.P)) {
          Error = "bad probability '" + Value + "' (want 0..1)";
          return false;
        }
      } else if (Key == "n") {
        if (!parseUint(Value, Rule.Nth) || Rule.Nth == 0) {
          Error = "bad n '" + Value + "' (want a positive integer)";
          return false;
        }
      } else if (Key == "every") {
        if (!parseUint(Value, Rule.Every) || Rule.Every == 0) {
          Error = "bad every '" + Value + "' (want a positive integer)";
          return false;
        }
      } else if (Key == "seed") {
        if (!parseUint(Value, Rule.Seed)) {
          Error = "bad seed '" + Value + "'";
          return false;
        }
      } else {
        Error = "unknown key '" + Key + "'";
        return false;
      }
    }
    if (Rule.P == 0 && Rule.Nth == 0 && Rule.Every == 0) {
      Error = "rule '" + RuleText + "' has no trigger (want p=, n= or every=)";
      return false;
    }
    Rules.push_back(Rule);
    if (End == Spec.size())
      break;
  }
  return true;
}

bool fault::setFaultSpec(const std::string &Spec, std::string *Error) {
  std::vector<FaultRule> Rules;
  std::string ParseError;
  if (!parseFaultSpec(Spec, Rules, ParseError)) {
    if (Error)
      *Error = ParseError;
    return false;
  }
  std::lock_guard<std::mutex> Lock(stateMutex());
  InjectorState &S = state();
  S.Spec = Spec;
  S.Rules.clear();
  for (const FaultRule &R : Rules)
    S.Rules.emplace_back(R);
  armedFlag().store(!S.Rules.empty(), std::memory_order_relaxed);
  return true;
}

std::string fault::activeFaultSpec() {
  std::lock_guard<std::mutex> Lock(stateMutex());
  return state().Rules.empty() ? std::string() : state().Spec;
}

bool fault::shouldFailIo(const char *Op) {
  return hit(FaultRule::Kind::Io, Op);
}

void fault::maybeFailAlloc() {
  if (hit(FaultRule::Kind::Alloc, "*"))
    throw std::bad_alloc();
}

bool fault::shouldFaultWire(const char *Op) {
  return hit(FaultRule::Kind::Wire, Op);
}

uint64_t fault::injectedFaultCount() {
  return injectedCounter().load(std::memory_order_relaxed);
}

fault::ScopedFaultSuspend::ScopedFaultSuspend() { ++SuspendDepth; }
fault::ScopedFaultSuspend::~ScopedFaultSuspend() { --SuspendDepth; }
