//===- support/Stats.cpp - Small numeric summaries ------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cmath>
#include <cstdio>

using namespace twpp;

void P2Quantile::add(double Sample) {
  // The first five samples seed the markers exactly.
  if (N < 5) {
    Heights[N] = Sample;
    ++N;
    if (N == 5)
      std::sort(Heights, Heights + 5);
    return;
  }

  // Locate the cell the sample falls in and stretch the extreme markers.
  int Cell;
  if (Sample < Heights[0]) {
    Heights[0] = Sample;
    Cell = 0;
  } else if (Sample >= Heights[4]) {
    Heights[4] = std::max(Heights[4], Sample);
    Cell = 3;
  } else {
    Cell = 0;
    while (Cell < 3 && Sample >= Heights[Cell + 1])
      ++Cell;
  }

  ++N;
  for (int I = Cell + 1; I < 5; ++I)
    Positions[I] += 1;

  // Desired marker positions for quantile Q after N samples.
  double Last = static_cast<double>(N);
  double Desired[5] = {1, 1 + (Last - 1) * Q / 2, 1 + (Last - 1) * Q,
                       1 + (Last - 1) * (1 + Q) / 2, Last};

  // Nudge the three interior markers toward their desired positions with
  // piecewise-parabolic (hence "P-squared") height interpolation.
  for (int I = 1; I <= 3; ++I) {
    double Diff = Desired[I] - Positions[I];
    if ((Diff >= 1 && Positions[I + 1] - Positions[I] > 1) ||
        (Diff <= -1 && Positions[I - 1] - Positions[I] < -1)) {
      double Dir = Diff >= 1 ? 1.0 : -1.0;
      double Np = Positions[I + 1], Nc = Positions[I], Nm = Positions[I - 1];
      double Qp = Heights[I + 1], Qc = Heights[I], Qm = Heights[I - 1];
      double Candidate =
          Qc + Dir / (Np - Nm) *
                   ((Nc - Nm + Dir) * (Qp - Qc) / (Np - Nc) +
                    (Np - Nc - Dir) * (Qc - Qm) / (Nc - Nm));
      if (Qm < Candidate && Candidate < Qp)
        Heights[I] = Candidate;
      else // Parabolic estimate left the bracket; fall back to linear.
        Heights[I] = Qc + Dir * (Dir > 0 ? (Qp - Qc) / (Np - Nc)
                                         : (Qm - Qc) / (Nm - Nc));
      Positions[I] += Dir;
    }
  }
}

double P2Quantile::estimate() const {
  if (N == 0)
    return 0.0;
  if (N <= 5) {
    // Exact small-sample quantile; at N == 5 the markers are still the
    // sorted samples themselves.
    double Sorted[5];
    std::copy(Heights, Heights + N, Sorted);
    std::sort(Sorted, Sorted + N);
    double Rank = Q * static_cast<double>(N);
    uint64_t Index = Rank <= 1 ? 0 : static_cast<uint64_t>(std::ceil(Rank)) - 1;
    return Sorted[std::min(Index, N - 1)];
  }
  return Heights[2];
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string twpp::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string twpp::formatBytes(uint64_t Bytes) {
  if (Bytes < 1024)
    return std::to_string(Bytes) + " B";
  double Value = static_cast<double>(Bytes);
  const char *Units[] = {"KB", "MB", "GB"};
  int Unit = -1;
  while (Value >= 1024.0 && Unit < 2) {
    Value /= 1024.0;
    ++Unit;
  }
  return formatDouble(Value, Value < 10 ? 2 : 1) + " " + Units[Unit];
}

std::string twpp::formatFactor(double Factor) {
  return "x" + formatDouble(Factor, 2);
}
