//===- support/Stats.cpp - Small numeric summaries ------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>

using namespace twpp;

std::string twpp::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string twpp::formatBytes(uint64_t Bytes) {
  if (Bytes < 1024)
    return std::to_string(Bytes) + " B";
  double Value = static_cast<double>(Bytes);
  const char *Units[] = {"KB", "MB", "GB"};
  int Unit = -1;
  while (Value >= 1024.0 && Unit < 2) {
    Value /= 1024.0;
    ++Unit;
  }
  return formatDouble(Value, Value < 10 ? 2 : 1) + " " + Units[Unit];
}

std::string twpp::formatFactor(double Factor) {
  return "x" + formatDouble(Factor, 2);
}
