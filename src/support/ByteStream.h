//===- support/ByteStream.h - Binary encode/decode helpers ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Growable byte buffer writer and bounds-checked reader with LEB128-style
/// variable-length integer and zigzag codecs. Every on-disk structure in the
/// library (traces, archives, grammars) is built on these primitives.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_BYTESTREAM_H
#define TWPP_SUPPORT_BYTESTREAM_H

#include "support/Varint.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace twpp {

/// A non-owning view of immutable bytes — the currency of the zero-copy
/// read path. An ArchiveReader in mmap mode hands decoders ByteSpans
/// pointing straight into the mapping; the buffered path hands spans over
/// its copied vectors. Either way the decoders never copy again.
struct ByteSpan {
  const uint8_t *Data = nullptr;
  size_t Size = 0;

  ByteSpan() = default;
  ByteSpan(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteSpan(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  bool empty() const { return Size == 0; }
  size_t size() const { return Size; }
  const uint8_t *begin() const { return Data; }
  const uint8_t *end() const { return Data + Size; }

  /// True when [Offset, Offset+Length) lies inside the span (overflow-safe).
  bool covers(uint64_t Offset, uint64_t Length) const {
    return Offset <= Size && Length <= Size - Offset;
  }

  /// Bounds-checked slice; \returns an empty span when the extent runs out
  /// of range, so a corrupt offset can never manufacture a wild pointer.
  ByteSpan subspan(uint64_t Offset, uint64_t Length) const {
    if (!covers(Offset, Length))
      return ByteSpan();
    return ByteSpan(Data + Offset, static_cast<size_t>(Length));
  }
};

/// Maps signed integers onto unsigned ones so small magnitudes stay small
/// when varint-encoded (-1 -> 1, 1 -> 2, -2 -> 3, ...).
inline uint64_t zigzagEncode(int64_t Value) {
  return (static_cast<uint64_t>(Value) << 1) ^
         static_cast<uint64_t>(Value >> 63);
}

/// Inverse of zigzagEncode.
inline int64_t zigzagDecode(uint64_t Value) {
  return static_cast<int64_t>(Value >> 1) ^ -static_cast<int64_t>(Value & 1);
}

/// Append-only binary writer over a growable byte vector.
class ByteWriter {
public:
  /// Appends one raw byte.
  void writeByte(uint8_t Byte) { Bytes.push_back(Byte); }

  /// Appends \p Size raw bytes from \p Data.
  void writeBytes(const void *Data, size_t Size) {
    const uint8_t *Ptr = static_cast<const uint8_t *>(Data);
    Bytes.insert(Bytes.end(), Ptr, Ptr + Size);
  }

  /// Appends an unsigned LEB128-encoded integer (1-10 bytes).
  void writeVarUint(uint64_t Value) {
    while (Value >= 0x80) {
      Bytes.push_back(static_cast<uint8_t>(Value) | 0x80);
      Value >>= 7;
    }
    Bytes.push_back(static_cast<uint8_t>(Value));
  }

  /// Appends a zigzag + LEB128 encoded signed integer.
  void writeVarInt(int64_t Value) { writeVarUint(zigzagEncode(Value)); }

  /// Appends a length-prefixed string.
  void writeString(const std::string &Str) {
    writeVarUint(Str.size());
    writeBytes(Str.data(), Str.size());
  }

  /// Appends a fixed-width little-endian 32-bit value (used where a field
  /// must be patched after the fact, e.g. archive offsets).
  void writeFixed32(uint32_t Value) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(Value >> (8 * I)));
  }

  /// Appends a fixed-width little-endian 64-bit value.
  void writeFixed64(uint64_t Value) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(Value >> (8 * I)));
  }

  /// Overwrites a previously written fixed-width 64-bit value at \p Offset.
  void patchFixed64(size_t Offset, uint64_t Value) {
    assert(Offset + 8 <= Bytes.size() && "patch out of range");
    for (int I = 0; I < 8; ++I)
      Bytes[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
  }

  size_t size() const { return Bytes.size(); }
  bool empty() const { return Bytes.empty(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }

  /// Moves the accumulated buffer out of the writer.
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked reader over an immutable byte span. Out-of-range reads
/// latch an error flag instead of invoking undefined behaviour; callers
/// check hasError() (or valid()) once per logical structure.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}
  explicit ByteReader(ByteSpan Span) : Data(Span.Data), Size(Span.Size) {}

  /// Reads one raw byte; returns 0 and sets the error flag when exhausted.
  uint8_t readByte() {
    if (Pos >= Size) {
      Error = true;
      return 0;
    }
    return Data[Pos++];
  }

  /// Reads \p OutSize raw bytes into \p Out.
  void readBytes(void *Out, size_t OutSize) {
    if (Pos + OutSize > Size) {
      Error = true;
      std::memset(Out, 0, OutSize);
      return;
    }
    std::memcpy(Out, Data + Pos, OutSize);
    Pos += OutSize;
  }

  /// Reads an unsigned LEB128-encoded integer. Decodes through the SWAR
  /// fast path (support/Varint.h); VarintFuzzTest pins its semantics to
  /// the scalar reference this method used to inline.
  uint64_t readVarUint() {
    uint64_t Value = 0;
    size_t Len = varint::decodeVarUintSwar(Data + Pos, Data + Size, Value);
    if (Len == 0) {
      Error = true;
      return 0;
    }
    Pos += Len;
    return Value;
  }

  /// Reads a zigzag + LEB128 encoded signed integer.
  int64_t readVarInt() { return zigzagDecode(readVarUint()); }

  /// Reads a length-prefixed string.
  std::string readString() {
    uint64_t Len = readVarUint();
    if (Pos + Len > Size) {
      Error = true;
      return std::string();
    }
    std::string Result(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return Result;
  }

  /// Reads a fixed-width little-endian 32-bit value.
  uint32_t readFixed32() {
    uint32_t Result = 0;
    if (Pos + 4 > Size) {
      Error = true;
      return 0;
    }
    for (int I = 0; I < 4; ++I)
      Result |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return Result;
  }

  /// Reads a fixed-width little-endian 64-bit value.
  uint64_t readFixed64() {
    uint64_t Result = 0;
    if (Pos + 8 > Size) {
      Error = true;
      return 0;
    }
    for (int I = 0; I < 8; ++I)
      Result |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return Result;
  }

  /// Repositions the read cursor (used for index-directed seeks).
  void seek(size_t NewPos) {
    if (NewPos > Size) {
      Error = true;
      return;
    }
    Pos = NewPos;
  }

  size_t position() const { return Pos; }
  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos >= Size; }
  bool hasError() const { return Error; }
  bool valid() const { return !Error; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Error = false;
};

} // namespace twpp

#endif // TWPP_SUPPORT_BYTESTREAM_H
