//===- support/TablePrinter.h - Fixed-width console tables ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aligned console table output. Every bench binary prints its table/figure
/// through this so the harness output is uniform and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_TABLEPRINTER_H
#define TWPP_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace twpp {

/// Collects rows of strings and prints them with per-column alignment.
/// The first added row is the header; a rule is drawn beneath it.
class TablePrinter {
public:
  /// Sets the table caption printed above the header.
  explicit TablePrinter(std::string Title) : Title(std::move(Title)) {}

  /// Appends one row. All rows should have the same arity as the header;
  /// short rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Renders the table to stdout.
  void print() const;

  /// Renders the table into a string (used by tests).
  std::string render() const;

private:
  std::string Title;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace twpp

#endif // TWPP_SUPPORT_TABLEPRINTER_H
