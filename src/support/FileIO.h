//===- support/FileIO.h - Whole-file read/write helpers ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-vector file IO used by the trace/archive formats and the access-time
/// experiments.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_FILEIO_H
#define TWPP_SUPPORT_FILEIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace twpp {

/// Writes \p Bytes to \p Path, replacing any existing file.
/// \returns true on success.
bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Bytes);

/// Reads the entire file at \p Path into \p Bytes.
/// \returns true on success.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes);

/// Reads \p Length bytes starting at \p Offset from the file at \p Path.
/// Used by the indexed archive reader to pull a single function's block
/// without touching the rest of the file. \returns true on success.
bool readFileSlice(const std::string &Path, uint64_t Offset, uint64_t Length,
                   std::vector<uint8_t> &Bytes);

/// Returns the file size, or 0 when the file cannot be inspected.
uint64_t fileSize(const std::string &Path);

} // namespace twpp

#endif // TWPP_SUPPORT_FILEIO_H
