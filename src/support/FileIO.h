//===- support/FileIO.h - Durable file read/write helpers ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-vector file IO used by the trace/archive formats, the journal
/// writer and the access-time experiments. Every operation returns a typed
/// IoError (instead of a bare bool) so callers can distinguish "could not
/// open" from "wrote half the bytes and the disk went away", and every
/// syscall boundary consults the fault-injection seam
/// (support/FaultInjection.h) so recovery paths are testable.
///
/// writeFileBytesAtomic is the durability primitive: it stages the bytes
/// in a temp file next to the target, fsyncs, then renames over the
/// target, so the target path always holds either the old or the new
/// content — never a torn mix. Transient failures are retried under a
/// bounded exponential backoff (RetryPolicy).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_FILEIO_H
#define TWPP_SUPPORT_FILEIO_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace twpp {

/// What failed, at the granularity recovery code branches on.
enum class IoStatus : uint8_t {
  Ok,
  OpenFailed,
  ReadFailed,
  ShortRead,
  WriteFailed,
  ShortWrite,
  FlushFailed,
  SyncFailed,
  CloseFailed,
  RenameFailed,
  StatFailed,
};

/// Human-readable name of \p Status ("ok", "open-failed", ...).
const char *ioStatusName(IoStatus Status);

/// Result of a file IO operation. Contextually converts to bool
/// ("did it succeed"), so `if (!writeFileBytes(...))` keeps working;
/// bool-returning wrappers must spell `.ok()` explicitly.
struct IoError {
  IoStatus Status = IoStatus::Ok;
  /// errno captured at the failing call (0 for injected faults and
  /// logical failures like short reads).
  int Errno = 0;
  /// The path (and for slices, the extent) the failure refers to.
  std::string Detail;

  bool ok() const { return Status == IoStatus::Ok; }
  explicit operator bool() const { return ok(); }

  /// "write-failed: /tmp/x.twpp (No space left on device)" — ready for a
  /// Diagnostic message or stderr.
  std::string message() const;

  static IoError success() { return IoError{}; }
};

/// Bounded retry-with-backoff for writeFileBytesAtomic. Attempt k sleeps
/// InitialBackoffMs << (k-1) milliseconds before retrying; MaxAttempts=1
/// disables retries.
struct RetryPolicy {
  unsigned MaxAttempts = 3;
  unsigned InitialBackoffMs = 1;
};

/// Writes \p Bytes to \p Path, replacing any existing file. Detects short
/// writes and removes the partial file so a failed write never leaves a
/// truncated artifact behind. Not atomic: a crash mid-write can leave
/// \p Path missing. Archives use writeFileBytesAtomic.
IoError writeFileBytes(const std::string &Path,
                       const std::vector<uint8_t> &Bytes);

/// Writes \p Bytes via a temp file + fsync + rename so \p Path is updated
/// atomically: on any failure (including a crash) the target holds its
/// previous content, and the temp file is cleaned up on the failure paths
/// this process survives. Transient failures are retried per \p Retry.
IoError writeFileBytesAtomic(const std::string &Path,
                             const std::vector<uint8_t> &Bytes,
                             const RetryPolicy &Retry = RetryPolicy());

/// Reads the entire file at \p Path into \p Bytes.
IoError readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes);

/// Reads \p Length bytes starting at \p Offset from the file at \p Path.
/// Used by the indexed archive reader to pull a single function's block
/// without touching the rest of the file. A file shorter than
/// Offset+Length yields IoStatus::ShortRead.
IoError readFileSlice(const std::string &Path, uint64_t Offset,
                      uint64_t Length, std::vector<uint8_t> &Bytes);

/// Returns the file size, or nullopt when the file cannot be inspected
/// (missing, permission, injected stat fault). An empty file is
/// 0 — distinguishable from failure, which the old uint64_t contract
/// conflated.
std::optional<uint64_t> fileSize(const std::string &Path);

} // namespace twpp

#endif // TWPP_SUPPORT_FILEIO_H
