//===- support/Timer.h - Wall-clock measurement helpers ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic stopwatch used by the access-time experiments (Tables 4 and 5).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_TIMER_H
#define TWPP_SUPPORT_TIMER_H

#include <chrono>

namespace twpp {

/// Stopwatch over the steady clock; starts on construction.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Elapsed time since construction/reset in milliseconds.
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// Elapsed time since construction/reset in microseconds.
  double elapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace twpp

#endif // TWPP_SUPPORT_TIMER_H
