//===- support/LZW.h - Welch's adaptive dictionary codec --------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LZW compression (Welch's variation of the Ziv-Lempel adaptive dictionary
/// scheme). The paper compresses the serialized dynamic call graph with LZW
/// (Section 2, "Compacting the DCG"); this is that codec.
///
/// Codes are emitted as LEB128 varints, so the code width grows organically
/// with the dictionary instead of using a fixed bit width. The dictionary is
/// capped at MaxDictSize entries and frozen thereafter, which bounds memory
/// on adversarial inputs while staying deterministic between encode/decode.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_LZW_H
#define TWPP_SUPPORT_LZW_H

#include "support/ByteStream.h"

#include <cstdint>
#include <vector>

namespace twpp {

/// Compresses \p Input with LZW; the result decompresses back byte-exact
/// with lzwDecompress. Empty input yields empty output.
std::vector<uint8_t> lzwCompress(const std::vector<uint8_t> &Input);

/// Inverse of lzwCompress. Returns false (and clears \p Output) when the
/// code stream is malformed. The span form is the primary entry point so
/// the mmap read path can decompress the DCG without first copying the
/// compressed bytes out of the mapping.
bool lzwDecompress(ByteSpan Input, std::vector<uint8_t> &Output);

inline bool lzwDecompress(const std::vector<uint8_t> &Input,
                          std::vector<uint8_t> &Output) {
  return lzwDecompress(ByteSpan(Input), Output);
}

/// Dictionary growth cap shared by the encoder and the decoder.
inline constexpr uint32_t LZWMaxDictSize = 1u << 20;

} // namespace twpp

#endif // TWPP_SUPPORT_LZW_H
