//===- support/ThreadPool.cpp - Work-stealing thread pool -----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "obs/Trace.h"

#include <algorithm>
#include <chrono>

using namespace twpp;

unsigned ParallelConfig::effectiveJobs() const {
  if (Jobs != 0)
    return Jobs;
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware != 0 ? Hardware : 1;
}

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

ThreadPool::ThreadPool(unsigned WorkerCount) {
  unsigned Count = std::max(1u, WorkerCount);
  Queues.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  if (obs::enabled())
    obs::metrics().gauge(obs::names::PoolWorkers).set(Count);
}

ThreadPool::~ThreadPool() {
  wait();
  Stop.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(IdleM);
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::run(std::function<void()> Task) {
  TaskItem Item;
  Item.Fn = std::move(Task);
  if (obs::enabled())
    Item.EnqueuedNs = nowNs();
  if (obs::enabled() || obs::tracingEnabled()) {
    // Capture the enqueuing thread's span path so the worker can nest
    // the task's spans under it ("compact/dbb/pool"), and start a flow
    // arrow from this enqueue site to the executing slice.
    Item.ParentPath = obs::PhaseSpan::currentPath();
    Item.FlowId = obs::traceNextFlowId();
    Item.Attributed = true;
    obs::traceFlowStart("pool.task", Item.FlowId);
  }
  // Count before publishing the task: a worker may pop and finish it the
  // instant the queue mutex is released.
  Unfinished.fetch_add(1, std::memory_order_relaxed);
  int64_t Depth = Queued.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled())
    obs::metrics().gauge(obs::names::PoolQueueDepth).set(Depth);
  // Queued-task footprint: one TaskItem header per pending task (the
  // closure's own captures are opaque to us). Freed in finishTask.
  obs::memAlloc(obs::memtags::PoolQueue, sizeof(TaskItem));
  obs::traceCounter("pool.queue_depth", Depth);
  unsigned Slot = NextQueue.fetch_add(1, std::memory_order_relaxed) %
                  Queues.size();
  {
    std::lock_guard<std::mutex> Lock(Queues[Slot]->M);
    Queues[Slot]->Tasks.push_back(std::move(Item));
  }
  // Pairing the notify with the idle mutex closes the checked-then-slept
  // race in workerLoop.
  {
    std::lock_guard<std::mutex> Lock(IdleM);
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(IdleM);
  AllDone.wait(Lock, [this] {
    return Unfinished.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::popTask(unsigned Self, TaskItem &Item) {
  // Own deque first, newest task (LIFO keeps caches warm).
  {
    WorkerQueue &Own = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Own.M);
    if (!Own.Tasks.empty()) {
      Item = std::move(Own.Tasks.back());
      Own.Tasks.pop_back();
      Queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal the oldest task from the first non-empty victim.
  for (size_t Offset = 1; Offset < Queues.size(); ++Offset) {
    WorkerQueue &Victim = *Queues[(Self + Offset) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Victim.M);
    if (Victim.Tasks.empty())
      continue;
    Item = std::move(Victim.Tasks.front());
    Victim.Tasks.pop_front();
    Queued.fetch_sub(1, std::memory_order_relaxed);
    Steals.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      static obs::Counter &StealCounter =
          obs::metrics().counter(obs::names::PoolSteals);
      StealCounter.add();
    }
    return true;
  }
  return false;
}

void ThreadPool::runTask(TaskItem &Item) {
  if (!Item.Attributed) {
    Item.Fn();
    return;
  }
  // Root the worker-side span stack at the enqueuing phase's path, so
  // the task's "pool" span (and any spans the task opens) aggregate and
  // render under "compact/dbb/pool" instead of a bare "pool"; the flow
  // finish inside the slice is what binds the cross-thread arrow to it.
  obs::PhaseSpan::ScopedRoot Root(std::move(Item.ParentPath));
  obs::PhaseSpan Span("pool");
  obs::traceFlowFinish("pool.task", Item.FlowId);
  Item.Fn();
}

void ThreadPool::finishTask(const TaskItem &Item) {
  TasksRun.fetch_add(1, std::memory_order_relaxed);
  obs::memFree(obs::memtags::PoolQueue, sizeof(TaskItem));
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Tasks = M.counter(obs::names::PoolTasks);
    static obs::Histogram &Latency =
        M.histogram(obs::names::PoolTaskLatency,
                    obs::names::powerOfTwoBounds(1u << 20));
    Tasks.add();
    if (Item.EnqueuedNs != 0)
      Latency.record((nowNs() - Item.EnqueuedNs) / 1000);
    M.gauge(obs::names::PoolQueueDepth)
        .set(Queued.load(std::memory_order_relaxed));
  }
  if (Unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> Lock(IdleM);
    AllDone.notify_all();
  }
}

void ThreadPool::workerLoop(unsigned Self) {
  if (obs::tracingEnabled())
    obs::setCurrentThreadName("pool-worker-" + std::to_string(Self));
  while (true) {
    TaskItem Item;
    if (popTask(Self, Item)) {
      runTask(Item);
      finishTask(Item);
      continue;
    }
    std::unique_lock<std::mutex> Lock(IdleM);
    WorkAvailable.wait(Lock, [this] {
      return Stop.load(std::memory_order_acquire) ||
             Queued.load(std::memory_order_relaxed) > 0;
    });
    if (Stop.load(std::memory_order_acquire) &&
        Queued.load(std::memory_order_relaxed) == 0)
      return;
  }
}

void twpp::parallelFor(const ParallelConfig &Config, size_t N,
                       const std::function<void(size_t)> &Fn) {
  unsigned Jobs = Config.effectiveJobs();
  if (Jobs <= 1 || N < 2) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  ThreadPool Pool(static_cast<unsigned>(
      std::min<size_t>(Jobs, N)));
  for (size_t I = 0; I != N; ++I)
    Pool.run([&Fn, I] { Fn(I); });
  Pool.wait();
}
