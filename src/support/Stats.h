//===- support/Stats.h - Small numeric summaries ----------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulators and formatting helpers shared by the experiment harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_STATS_H
#define TWPP_SUPPORT_STATS_H

#include <algorithm>
#include <cstdint>
#include <string>

namespace twpp {

/// Streaming min/max/mean accumulator.
class RunningStats {
public:
  /// Folds one sample into the summary.
  void add(double Sample) {
    ++Count;
    Sum += Sample;
    Min = Count == 1 ? Sample : std::min(Min, Sample);
    Max = Count == 1 ? Sample : std::max(Max, Sample);
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count == 0 ? 0.0 : Sum / Count; }
  double min() const { return Min; }
  double max() const { return Max; }

private:
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
};

/// Formats a byte count as a human-friendly string ("12.4 KB", "3.1 MB").
std::string formatBytes(uint64_t Bytes);

/// Formats a ratio as the paper prints compaction factors ("x6.30").
std::string formatFactor(double Factor);

/// Formats a double with \p Digits fractional digits.
std::string formatDouble(double Value, int Digits);

} // namespace twpp

#endif // TWPP_SUPPORT_STATS_H
