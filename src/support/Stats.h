//===- support/Stats.h - Small numeric summaries ----------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulators and formatting helpers shared by the experiment harnesses
/// and the telemetry exporters (obs/). RunningStats folds samples in one
/// pass: min/mean/max, Welford variance, and reservoir-free p50/p95
/// estimates via the P-squared algorithm (Jain & Chlamtac, CACM 1985).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_STATS_H
#define TWPP_SUPPORT_STATS_H

#include <algorithm>
#include <cstdint>
#include <string>

namespace twpp {

/// Streaming quantile estimate without storing samples: the P-squared
/// algorithm tracks five markers whose heights approximate the quantile
/// with O(1) memory. Exact for the first five samples.
class P2Quantile {
public:
  explicit P2Quantile(double Quantile) : Q(Quantile) {}

  /// Folds one sample into the estimate.
  void add(double Sample);

  /// Current estimate; 0 when no samples were added.
  double estimate() const;

  uint64_t count() const { return N; }

private:
  double Q;
  uint64_t N = 0;
  double Heights[5] = {0, 0, 0, 0, 0};
  double Positions[5] = {1, 2, 3, 4, 5};
};

/// Streaming min/max/mean/variance accumulator with p50/p95 estimates.
class RunningStats {
public:
  RunningStats() : P50(0.5), P95(0.95) {}

  /// Folds one sample into the summary.
  void add(double Sample) {
    ++Count;
    Sum += Sample;
    Min = Count == 1 ? Sample : std::min(Min, Sample);
    Max = Count == 1 ? Sample : std::max(Max, Sample);
    // Welford's online update keeps the variance numerically stable.
    double Delta = Sample - Mean;
    Mean += Delta / static_cast<double>(Count);
    M2 += Delta * (Sample - Mean);
    P50.add(Sample);
    P95.add(Sample);
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count == 0 ? 0.0 : Mean; }
  double min() const { return Min; }
  double max() const { return Max; }

  /// Population variance (0 with fewer than two samples).
  double variance() const {
    return Count < 2 ? 0.0 : M2 / static_cast<double>(Count);
  }
  double stddev() const;

  /// Streaming quantile estimates (exact up to five samples).
  double p50() const { return P50.estimate(); }
  double p95() const { return P95.estimate(); }

private:
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  double Mean = 0;
  double M2 = 0;
  P2Quantile P50;
  P2Quantile P95;
};

/// Formats a byte count as a human-friendly string ("12.4 KB", "3.1 MB").
std::string formatBytes(uint64_t Bytes);

/// Formats a ratio as the paper prints compaction factors ("x6.30").
std::string formatFactor(double Factor);

/// Formats a double with \p Digits fractional digits.
std::string formatDouble(double Value, int Digits);

} // namespace twpp

#endif // TWPP_SUPPORT_STATS_H
