//===- support/Crc32.h - CRC-32 checksum ------------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-driven CRC-32 (the IEEE 802.3 polynomial, reflected form
/// 0xEDB88320) used to frame journal checkpoint records so a torn or
/// bit-flipped record is detected before its payload is trusted. Header
/// only: the journal writer lives in twpp_wpp while tests and tools
/// checksum byte vectors directly.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_CRC32_H
#define TWPP_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace twpp {

namespace detail {

inline const std::array<uint32_t, 256> &crc32Table() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace detail

/// Incremental form: feed \p Crc from a previous call (or crc32Init()) to
/// checksum discontiguous spans.
inline constexpr uint32_t crc32Init() { return 0xFFFFFFFFu; }

inline uint32_t crc32Update(uint32_t Crc, const void *Data, size_t Size) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  const auto &Table = detail::crc32Table();
  for (size_t I = 0; I < Size; ++I)
    Crc = Table[(Crc ^ Bytes[I]) & 0xFF] ^ (Crc >> 8);
  return Crc;
}

inline constexpr uint32_t crc32Final(uint32_t Crc) { return Crc ^ 0xFFFFFFFFu; }

/// One-shot checksum of \p Size bytes at \p Data.
inline uint32_t crc32(const void *Data, size_t Size) {
  return crc32Final(crc32Update(crc32Init(), Data, Size));
}

} // namespace twpp

#endif // TWPP_SUPPORT_CRC32_H
