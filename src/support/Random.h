//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable PRNG (SplitMix64) used by the synthetic workload
/// generators. Results are deterministic across platforms and standard
/// library versions, which std::mt19937 + std::*_distribution are not.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_SUPPORT_RANDOM_H
#define TWPP_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace twpp {

/// SplitMix64 generator; passes BigCrush, two words of state-free output per
/// step, and trivially seedable.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used here and determinism is what matters.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Samples an index according to the (unnormalized) weights \p Weights.
  size_t nextWeighted(const std::vector<double> &Weights) {
    assert(!Weights.empty() && "no weights to sample");
    double Total = 0;
    for (double W : Weights)
      Total += W;
    double Target = nextDouble() * Total;
    for (size_t I = 0, E = Weights.size(); I != E; ++I) {
      Target -= Weights[I];
      if (Target <= 0)
        return I;
    }
    return Weights.size() - 1;
  }

  /// Samples a geometric-ish count: minimum \p Min, then keeps adding one
  /// with probability \p Continue. Used for loop trip counts.
  uint64_t nextGeometric(uint64_t Min, double Continue, uint64_t Cap) {
    uint64_t N = Min;
    while (N < Cap && nextBool(Continue))
      ++N;
    return N;
  }

private:
  uint64_t State;
};

} // namespace twpp

#endif // TWPP_SUPPORT_RANDOM_H
