//===- workloads/Concurrent.h - Multi-threaded workloads --------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic multi-threaded workloads for the thread-aware pipeline and
/// the race detector. Three shapes cover the sharing patterns that
/// matter to a happens-before detector:
///
///  * Contended: worker threads take turns on a small set of locks, each
///    guarding a disjoint address range — heavy lock traffic, race-free
///    by construction.
///  * Pipelined: one thread per stage, items handed down through
///    per-boundary locks over a ring of cells; constant work per item
///    makes every cell's access times an arithmetic series, which is the
///    best case for the compacted engine's run batching.
///  * ParallelIndependent: fork/join fan-out over disjoint per-thread
///    ranges — no locks at all.
///
/// Each shape has an InjectRaces variant that adds a few unguarded
/// accesses to shared locations, producing real data races with known
/// structure; the differential tests and the CI race-smoke leg run both
/// variants through both engines.
///
/// Generation is single-threaded and deterministic in the seed: the
/// global interleaving is an explicit schedule (round-robin turns,
/// wavefront diagonals), never actual thread timing.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WORKLOADS_CONCURRENT_H
#define TWPP_WORKLOADS_CONCURRENT_H

#include "trace/ThreadEvents.h"

#include <string>
#include <vector>

namespace twpp {

/// Tunable parameters of one synthetic concurrent workload.
struct ConcurrentProfile {
  enum class Shape : uint8_t { Contended, Pipelined, ParallelIndependent };

  std::string Name;
  Shape Kind = Shape::Contended;
  uint64_t Seed = 1;
  uint32_t Threads = 4;   ///< Worker threads (Pipelined: stages).
  uint32_t Items = 256;   ///< Work items per thread (Pipelined: total).
  uint32_t Locks = 4;     ///< Contended only: lock count.
  uint32_t Addresses = 8; ///< Addresses per lock range / ring cells per
                          ///< boundary / private range per thread.
  uint32_t BlocksPerItem = 6; ///< Worker-body blocks per item (>= 3).
  bool InjectRaces = false;   ///< Add unguarded accesses to shared state.
};

/// Generates the complete concurrent trace for \p Profile (deterministic
/// in Profile.Seed; the result is well-formed by construction).
ConcurrentTrace generateConcurrentTrace(const ConcurrentProfile &Profile);

/// The six bench-scale profiles: contended, pipelined and
/// parallel-independent, each in a race-free and an injected-races
/// variant.
std::vector<ConcurrentProfile> concurrentProfiles();

/// Reduced-scale variants of concurrentProfiles() for unit tests (same
/// shapes, ~8x fewer items).
std::vector<ConcurrentProfile> testConcurrentProfiles();

} // namespace twpp

#endif // TWPP_WORKLOADS_CONCURRENT_H
