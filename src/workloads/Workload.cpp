//===- workloads/Workload.cpp - Synthetic SPEC-like workloads -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace twpp;

CfgStats SyntheticProgram::staticStats() const {
  CfgStats Stats;
  for (const SyntheticFunction &F : Functions) {
    Stats.Nodes += F.Blocks.size();
    for (const SyntheticBlock &B : F.Blocks)
      Stats.Edges += B.Succs.size();
  }
  return Stats;
}

namespace {

/// Builds one structured static CFG: a chain of segments, each a simple
/// block, an if-diamond, or a while loop (recursively structured bodies).
class CfgGenerator {
public:
  CfgGenerator(SyntheticFunction &F, Rng &R, const WorkloadProfile &P,
               FunctionId Self)
      : F(F), R(R), P(P), Self(Self) {}

  void run() {
    uint32_t Budget = static_cast<uint32_t>(
        R.nextInRange(P.MinBlocks, P.MaxBlocks));
    BlockId Entry = newBlock();
    (void)Entry;
    BlockId Tail = emitRegion(1, Budget, /*Depth=*/0);
    // Terminal block: no successors (function return).
    BlockId End = newBlock();
    link(Tail, End);
  }

private:
  BlockId newBlock() {
    F.Blocks.emplace_back();
    BlockId Id = static_cast<BlockId>(F.Blocks.size());
    maybeMakeCallSite(Id);
    return Id;
  }

  void maybeMakeCallSite(BlockId Id) {
    // Callees always have a larger id than the caller, so the static call
    // graph is acyclic and the call depth is naturally bounded.
    uint32_t LeafStart =
        P.FunctionCount - P.FunctionCount * P.LeafFractionPct / 100;
    if (Self >= LeafStart || Self + 1 >= P.FunctionCount)
      return;
    if (!R.nextBool(P.CallDensity))
      return;
    SyntheticBlock &B = F.Blocks[Id - 1];
    B.IsCallSite = true;
    // Mildly skewed towards nearby functions: keeps call chains deep
    // enough to exercise the DCG without exploding.
    uint64_t Span = P.FunctionCount - Self - 1;
    uint64_t Offset = 1 + R.nextBelow(std::max<uint64_t>(1, Span));
    B.Callee = static_cast<FunctionId>(Self + Offset);
  }

  void link(BlockId From, BlockId To) {
    F.Blocks[From - 1].Succs.push_back(To);
  }

  /// Emits a region after block \p Pred; returns the region's last block.
  BlockId emitRegion(BlockId Pred, uint32_t Budget, uint32_t Depth) {
    BlockId Current = Pred;
    while (Budget > 0) {
      double Roll = R.nextDouble();
      if (Depth < 3 && Budget >= 4 && Roll < P.LoopDensity) {
        // while loop: header branches to body-entry and to the block
        // after the loop; body chains back to the header.
        BlockId Header = newBlock();
        link(Current, Header);
        F.Blocks[Header - 1].IsLoopHeader = true;
        BlockId BodyEntry = newBlock();
        link(Header, BodyEntry);
        uint32_t BodyBudget = std::min(Budget - 2, 2 + static_cast<uint32_t>(
                                                           R.nextBelow(6)));
        BlockId BodyEnd = emitRegion(BodyEntry, BodyBudget, Depth + 1);
        link(BodyEnd, Header); // back edge
        BlockId Exit = newBlock();
        link(Header, Exit); // loop exit (second successor)
        Current = Exit;
        Budget -= std::min(Budget, BodyBudget + 3);
      } else if (Depth < 4 && Budget >= 3 && Roll < P.LoopDensity + P.IfDensity) {
        // if-diamond: condition branches to two arms joining after.
        BlockId Cond = newBlock();
        link(Current, Cond);
        BlockId ThenEntry = newBlock();
        link(Cond, ThenEntry);
        uint32_t ArmBudget = std::min((Budget - 3) / 2,
                                      static_cast<uint32_t>(R.nextBelow(4)));
        BlockId ThenEnd = emitRegion(ThenEntry, ArmBudget, Depth + 1);
        BlockId ElseEntry = newBlock();
        link(Cond, ElseEntry);
        BlockId ElseEnd = emitRegion(ElseEntry, ArmBudget, Depth + 1);
        BlockId Join = newBlock();
        link(ThenEnd, Join);
        link(ElseEnd, Join);
        Current = Join;
        Budget -= std::min(Budget, 2 * ArmBudget + 4);
      } else {
        BlockId Next = newBlock();
        link(Current, Next);
        Current = Next;
        Budget -= 1;
      }
    }
    return Current;
  }

  SyntheticFunction &F;
  Rng &R;
  const WorkloadProfile &P;
  FunctionId Self;
};

/// Walks the static CFG from the entry to a return block, choosing branch
/// arms and loop trip counts from \p R. Produces one path-pool entry.
std::vector<BlockId> walkPath(const SyntheticFunction &F, Rng &R,
                              const WorkloadProfile &P) {
  std::vector<BlockId> Path;
  std::vector<uint32_t> Trips(F.Blocks.size(), 0);
  // Per-path sticky branch decisions: 0 = undecided, 1/2 = fixed arm,
  // 3 = re-roll on every visit.
  std::vector<uint8_t> Sticky(F.Blocks.size(), 0);
  BlockId Current = 1;
  while (true) {
    Path.push_back(Current);
    const SyntheticBlock &B = F.Blocks[Current - 1];
    if (B.Succs.empty())
      break;
    bool ForceExit = Path.size() >= P.MaxPathLength;
    if (B.Succs.size() == 1) {
      Current = B.Succs[0];
      continue;
    }
    // Two-way: loop headers continue with LoopContinueProb (first
    // successor is the body) up to the trip cap; plain diamonds pick
    // uniformly.
    if (B.IsLoopHeader) {
      uint32_t &Trip = Trips[Current - 1];
      bool Continue = !ForceExit && Trip < P.LoopTripCap &&
                      R.nextBool(P.LoopContinueProb);
      if (Continue) {
        ++Trip;
        Current = B.Succs[0];
      } else {
        Trip = 0;
        Current = B.Succs[1];
      }
    } else {
      uint8_t &Mode = Sticky[Current - 1];
      if (Mode == 0)
        Mode = R.nextBool(P.BranchConsistency)
                   ? static_cast<uint8_t>(1 + R.nextBelow(2))
                   : 3;
      size_t Choice =
          Mode == 3 ? R.nextBelow(B.Succs.size()) : Mode - 1;
      Current = B.Succs[Choice];
    }
  }
  return Path;
}

/// Builds main's dedicated CFG: an initialization block, a loop whose body
/// is a chain of call-site blocks, and an exit block. The loop trip count
/// is chosen by the driver at run time (the path pool holds one entry).
void buildMain(SyntheticFunction &Main, Rng &R, const WorkloadProfile &P) {
  uint32_t C = std::max<uint32_t>(1, P.MainCallSites);
  // Block 1: entry. Block 2: header. Blocks 3..2+C: body. Block 3+C: exit.
  Main.Blocks.resize(3 + C);
  Main.Blocks[0].Succs = {2};
  Main.Blocks[1].IsLoopHeader = true;
  Main.Blocks[1].Succs = {3, static_cast<BlockId>(3 + C)};
  for (uint32_t I = 0; I < C; ++I) {
    SyntheticBlock &B = Main.Blocks[2 + I];
    B.IsCallSite = true;
    B.Callee = static_cast<FunctionId>(
        1 + R.nextBelow(std::max<uint32_t>(1, P.FunctionCount - 1)));
    B.Succs = {I + 1 == C ? static_cast<BlockId>(2)
                          : static_cast<BlockId>(4 + I)};
  }
  // Exit block: no successors.

  // Trip count: enough loop iterations to meet the call budget even if
  // nested calls are rare; the driver stops calling once the budget is
  // exhausted.
  uint64_t Trips = std::max<uint64_t>(1, P.TargetCalls / C + 1);
  std::vector<BlockId> Path;
  Path.reserve(2 + Trips * (1 + C));
  Path.push_back(1);
  for (uint64_t T = 0; T < Trips; ++T) {
    Path.push_back(2);
    for (uint32_t I = 0; I < C; ++I)
      Path.push_back(3 + I);
  }
  Path.push_back(2);
  Path.push_back(3 + C);
  Main.PathPool.push_back(std::move(Path));
  Main.PathWeights.push_back(1.0);
}

} // namespace

SyntheticProgram twpp::generateProgram(const WorkloadProfile &Profile) {
  SyntheticProgram Program;
  Program.Name = Profile.Name;
  Program.Profile = Profile;
  Program.Functions.resize(Profile.FunctionCount);

  Rng R(Profile.Seed);
  buildMain(Program.Functions[0], R, Profile);

  for (FunctionId F = 1; F < Profile.FunctionCount; ++F) {
    SyntheticFunction &Fn = Program.Functions[F];
    CfgGenerator Gen(Fn, R, Profile, F);
    Gen.run();

    uint32_t PoolSize = static_cast<uint32_t>(
        R.nextInRange(Profile.PathPoolMin, Profile.PathPoolMax));
    Fn.PathPool.reserve(PoolSize);
    Fn.PathWeights.reserve(PoolSize);
    for (uint32_t I = 0; I < PoolSize; ++I) {
      Fn.PathPool.push_back(walkPath(Fn, R, Profile));
      // Zipf-like weights: entry i+1 is picked with weight 1/(i+1)^skew.
      Fn.PathWeights.push_back(
          1.0 / std::pow(static_cast<double>(I + 1), Profile.PoolSkew));
    }
  }
  return Program;
}

namespace {

struct DriveState {
  Rng R;
  uint64_t CallBudget;
  explicit DriveState(uint64_t Seed, uint64_t Budget)
      : R(Seed), CallBudget(Budget) {}
};

void driveCall(const SyntheticProgram &Program, FunctionId F, uint32_t Depth,
               TraceSink &Sink, DriveState &State) {
  const SyntheticFunction &Fn = Program.Functions[F];
  Sink.onEnter(F);
  size_t PathIndex =
      Fn.PathPool.size() == 1 ? 0 : State.R.nextWeighted(Fn.PathWeights);
  const std::vector<BlockId> &Path = Fn.PathPool[PathIndex];
  for (BlockId Block : Path) {
    Sink.onBlock(Block);
    const SyntheticBlock &B = Fn.Blocks[Block - 1];
    if (B.IsCallSite && Depth < Program.Profile.MaxDepth &&
        State.CallBudget > 0) {
      --State.CallBudget;
      driveCall(Program, B.Callee, Depth + 1, Sink, State);
    }
  }
  Sink.onExit();
}

} // namespace

void twpp::runSyntheticProgram(const SyntheticProgram &Program,
                               TraceSink &Sink) {
  DriveState State(Program.Profile.Seed ^ 0xD1B54A32D192ED03ULL,
                   Program.Profile.TargetCalls);
  driveCall(Program, 0, 0, Sink, State);
}

RawTrace twpp::generateWorkloadTrace(const WorkloadProfile &Profile) {
  SyntheticProgram Program = generateProgram(Profile);
  CollectingSink Sink(Profile.FunctionCount);
  runSyntheticProgram(Program, Sink);
  RawTrace Trace = Sink.take();
  assert(Trace.isWellFormed() && "workload produced a malformed trace");
  return Trace;
}
