//===- workloads/Concurrent.cpp - Multi-threaded workloads ----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "workloads/Concurrent.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <tuple>

using namespace twpp;

namespace {

// Per-thread program shape: function 0 is the thread main (block 1 entry,
// block 2 the per-item call site, block 3 the exit block), function 1 the
// worker whose body is blocks 1..BlocksPerItem. Every item costs exactly
// 1 + BlocksPerItem block events, so item k's accesses land at times
// base + k * (1 + BlocksPerItem) + ordinal — arithmetic series by
// construction.
constexpr FunctionId MainFn = 0;
constexpr FunctionId WorkerFn = 1;
constexpr uint32_t FunctionCount = 2;

// Disjoint address regions per shape (opaque to the detector; disjoint
// bases just keep the shapes' ranges from colliding).
constexpr Address ContendedBase = 0x1000;
constexpr Address PipelineBase = 0x2000;
constexpr Address ParallelBase = 0x3000;
constexpr Address ScratchBase = 0x4000;
constexpr Address SharedStatsAddr = 0x5000;

/// One access the worker body performs, pinned to a worker block.
struct ItemAccess {
  uint32_t BlockOrdinal = 1; ///< 1..BlocksPerItem.
  AccessEvent::Kind Kind = AccessEvent::Kind::Write;
  Address Addr = 0;
};

/// Accumulates one thread's event stream and per-thread block clock.
struct ThreadBuilder {
  ThreadId Id = 0;
  RawTrace Trace;
  uint32_t Blocks = 0; ///< Block events emitted so far (the thread clock).
  Rng Rand{1};

  void begin() {
    Trace.FunctionCount = FunctionCount;
    Trace.Events.push_back(TraceEvent::enter(MainFn));
    block(1);
  }

  void finish() {
    block(3);
    Trace.Events.push_back(TraceEvent::exit());
  }

  void block(BlockId B) {
    Trace.Events.push_back(TraceEvent::block(B));
    ++Blocks;
  }

  /// Runs one work item: call-site block in main, then the worker call,
  /// emitting \p Accs at their pinned worker blocks into \p Out.
  void runItem(uint32_t BlocksPerItem, const std::vector<ItemAccess> &Accs,
               std::vector<AccessEvent> &Out) {
    block(2);
    Trace.Events.push_back(TraceEvent::enter(WorkerFn));
    for (uint32_t K = 1; K <= BlocksPerItem; ++K) {
      block(K);
      for (const ItemAccess &A : Accs)
        if (A.BlockOrdinal == K)
          Out.push_back({A.Kind, Id, A.Addr, Blocks});
    }
    Trace.Events.push_back(TraceEvent::exit());
  }
};

/// The standard per-item access pattern against \p Target: write early,
/// read back later, plus a thread-private scratch write and (sometimes)
/// an extra re-read so the series are not artificially perfect.
std::vector<ItemAccess> itemAccesses(ThreadBuilder &B, Address Target,
                                     uint32_t BlocksPerItem) {
  std::vector<ItemAccess> Accs = {
      {1, AccessEvent::Kind::Write, Target},
      {2, AccessEvent::Kind::Read, Target},
      {BlocksPerItem, AccessEvent::Kind::Write, ScratchBase + B.Id},
  };
  if (B.Rand.nextBool(0.3))
    Accs.push_back({3, AccessEvent::Kind::Read, Target});
  return Accs;
}

void forkAll(std::vector<ThreadBuilder> &Builders,
             std::vector<SyncEvent> &Syncs) {
  for (size_t C = 1; C != Builders.size(); ++C)
    Syncs.push_back(SyncEvent::fork(0, static_cast<ThreadId>(C), 0));
}

void joinAll(std::vector<ThreadBuilder> &Builders,
             std::vector<SyncEvent> &Syncs) {
  for (size_t C = 1; C != Builders.size(); ++C)
    Syncs.push_back(
        SyncEvent::join(0, static_cast<ThreadId>(C), Builders[0].Blocks));
}

/// Round-robin turns over a small lock set: in round r, thread t takes
/// lock (t + r) % Locks and works inside the lock's address range. All
/// shared accesses are guarded, so the base variant is race-free. The
/// racy variant adds, once per thread mid-run, an unguarded write into a
/// *different* lock's range.
void generateContended(const ConcurrentProfile &P,
                       std::vector<ThreadBuilder> &Builders,
                       ConcurrentTrace &Trace) {
  forkAll(Builders, Trace.Syncs);
  for (uint32_t R = 0; R != P.Items; ++R) {
    for (uint32_t T = 0; T != P.Threads; ++T) {
      ThreadBuilder &B = Builders[T];
      LockId L = (T + R) % P.Locks;
      Address Target = ContendedBase + static_cast<Address>(L) * P.Addresses +
                       R % P.Addresses;
      std::vector<ItemAccess> Accs =
          itemAccesses(B, Target, P.BlocksPerItem);
      if (P.InjectRaces && T != 0 && R == P.Items / 2) {
        LockId Foreign = (L + 1) % P.Locks;
        Accs.push_back({2, AccessEvent::Kind::Write,
                        ContendedBase +
                            static_cast<Address>(Foreign) * P.Addresses});
      }
      Trace.Syncs.push_back(SyncEvent::acquire(T, L, B.Blocks));
      B.runItem(P.BlocksPerItem, Accs, Trace.Accesses);
      Trace.Syncs.push_back(SyncEvent::release(T, L, B.Blocks));
    }
  }
  joinAll(Builders, Trace.Syncs);
}

/// One thread per stage; items flow down the pipeline through a ring of
/// cells per boundary, the handoff ordered by a per-boundary lock that
/// producer and consumer alternate on (release -> next acquire is the
/// happens-before edge; the consumer's release doubles as backpressure).
/// Scheduled as wavefront diagonals, so the interleaving is maximal. The
/// racy variant makes every stage bump an unguarded shared counter once
/// per item — stages more than one handoff apart have an unordered
/// window, so those bumps race.
void generatePipelined(const ConcurrentProfile &P,
                       std::vector<ThreadBuilder> &Builders,
                       ConcurrentTrace &Trace) {
  const uint32_t Ring = std::max(P.Addresses, 2u);
  const uint32_t Stages = P.Threads;
  auto Cell = [&](uint32_t Boundary, uint32_t Item) {
    return PipelineBase + static_cast<Address>(Boundary) * Ring + Item % Ring;
  };
  forkAll(Builders, Trace.Syncs);
  for (uint32_t D = 0; D != P.Items + Stages - 1; ++D) {
    for (uint32_t S = 0; S != Stages; ++S) {
      if (D < S || D - S >= P.Items)
        continue;
      uint32_t Item = D - S;
      ThreadBuilder &B = Builders[S];
      std::vector<ItemAccess> Accs = {
          {P.BlocksPerItem, AccessEvent::Kind::Write, ScratchBase + S}};
      if (S > 0)
        Accs.push_back({1, AccessEvent::Kind::Read, Cell(S - 1, Item)});
      if (S + 1 < Stages)
        Accs.push_back({2, AccessEvent::Kind::Write, Cell(S, Item)});
      if (P.InjectRaces)
        Accs.push_back({3, AccessEvent::Kind::Write, SharedStatsAddr});
      if (S > 0)
        Trace.Syncs.push_back(SyncEvent::acquire(S, S - 1, B.Blocks));
      if (S + 1 < Stages)
        Trace.Syncs.push_back(SyncEvent::acquire(S, S, B.Blocks));
      B.runItem(P.BlocksPerItem, Accs, Trace.Accesses);
      if (S + 1 < Stages)
        Trace.Syncs.push_back(SyncEvent::release(S, S, B.Blocks));
      if (S > 0)
        Trace.Syncs.push_back(SyncEvent::release(S, S - 1, B.Blocks));
    }
  }
  joinAll(Builders, Trace.Syncs);
}

/// Fork/join fan-out over disjoint per-thread address ranges — the
/// no-synchronization baseline. The racy variant adds an unguarded
/// shared-counter write per item on every thread: sibling threads are
/// only ordered through fork (before everything) and join (after
/// everything), so all cross-thread counter pairs race.
void generateParallel(const ConcurrentProfile &P,
                      std::vector<ThreadBuilder> &Builders,
                      ConcurrentTrace &Trace) {
  forkAll(Builders, Trace.Syncs);
  for (uint32_t R = 0; R != P.Items; ++R) {
    for (uint32_t T = 0; T != P.Threads; ++T) {
      ThreadBuilder &B = Builders[T];
      Address Target = ParallelBase +
                       static_cast<Address>(T) * P.Addresses +
                       R % P.Addresses;
      std::vector<ItemAccess> Accs =
          itemAccesses(B, Target, P.BlocksPerItem);
      if (P.InjectRaces)
        Accs.push_back({3, AccessEvent::Kind::Write, SharedStatsAddr});
      B.runItem(P.BlocksPerItem, Accs, Trace.Accesses);
    }
  }
  joinAll(Builders, Trace.Syncs);
}

} // namespace

ConcurrentTrace twpp::generateConcurrentTrace(const ConcurrentProfile &P) {
  assert(P.Threads >= 2 && "a concurrent workload needs two threads");
  assert(P.BlocksPerItem >= 3 && "worker body too small for its accesses");
  std::vector<ThreadBuilder> Builders(P.Threads);
  for (uint32_t T = 0; T != P.Threads; ++T) {
    Builders[T].Id = T;
    Builders[T].Rand = Rng(P.Seed * 0x9e3779b97f4a7c15ull + T);
    Builders[T].begin();
  }

  ConcurrentTrace Trace;
  Trace.FunctionCount = FunctionCount;
  switch (P.Kind) {
  case ConcurrentProfile::Shape::Contended:
    generateContended(P, Builders, Trace);
    break;
  case ConcurrentProfile::Shape::Pipelined:
    generatePipelined(P, Builders, Trace);
    break;
  case ConcurrentProfile::Shape::ParallelIndependent:
    generateParallel(P, Builders, Trace);
    break;
  }

  // joinAll recorded the parent's pre-finish clock; finishing adds the
  // exit block afterwards, so join times stay within the clock. The
  // access stream is re-sorted into its canonical (Thread, Time, Addr,
  // Kind) order — same-block accesses were emitted in pattern order.
  for (ThreadBuilder &B : Builders) {
    B.finish();
    Trace.Threads.push_back({B.Id, std::move(B.Trace)});
  }
  std::sort(Trace.Accesses.begin(), Trace.Accesses.end(),
            [](const AccessEvent &A, const AccessEvent &B) {
              return std::make_tuple(A.Thread, A.Time, A.Addr,
                                     static_cast<uint8_t>(A.EventKind)) <
                     std::make_tuple(B.Thread, B.Time, B.Addr,
                                     static_cast<uint8_t>(B.EventKind));
            });
  assert(Trace.isWellFormed() && "generator produced a malformed trace");
  return Trace;
}

std::vector<ConcurrentProfile> twpp::concurrentProfiles() {
  using Shape = ConcurrentProfile::Shape;
  std::vector<ConcurrentProfile> Profiles;
  ConcurrentProfile Contended{"contended", Shape::Contended, 11, 4,
                              512,         4,                8,  6};
  ConcurrentProfile Pipelined{"pipelined", Shape::Pipelined, 12, 4,
                              4000,        0,                4,  6};
  ConcurrentProfile Parallel{
      "parallel", Shape::ParallelIndependent, 13, 8, 512, 0, 16, 5};
  for (ConcurrentProfile P : {Contended, Pipelined, Parallel}) {
    Profiles.push_back(P);
    P.Name += "-racy";
    P.InjectRaces = true;
    Profiles.push_back(P);
  }
  return Profiles;
}

std::vector<ConcurrentProfile> twpp::testConcurrentProfiles() {
  std::vector<ConcurrentProfile> Profiles = concurrentProfiles();
  for (ConcurrentProfile &P : Profiles)
    P.Items = std::max(P.Items / 8, 8u);
  return Profiles;
}
