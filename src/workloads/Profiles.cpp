//===- workloads/Profiles.cpp - The five paper benchmark profiles ---------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Parameter choices mirror the qualitative shape of each SPECint95
// benchmark as the paper's tables report it:
//
//   099.go    — large functions, many distinct paths per function (the
//               flattest redundancy CDF of Figure 8), traces dominate.
//   126.gcc   — the most functions; wide spread of unique-trace counts;
//               largest overall WPP, sizeable DCG share.
//   130.li    — interpreter: small functions, very high call counts, few
//               unique paths each => DCG-heavy, strong redundancy removal.
//   132.ijpeg — loop kernels: long, regular traces; tiny DCG share; best
//               DBB/series compaction of the trace bytes.
//   134.perl  — extremely regular: couple of hot paths per function =>
//               extreme redundancy + series compaction (the paper's x85
//               TWPP factor and x64 overall).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

using namespace twpp;

std::vector<WorkloadProfile> twpp::paperProfiles() {
  std::vector<WorkloadProfile> Profiles;

  {
    WorkloadProfile P;
    P.Name = "099.go";
    P.Seed = 0x60601;
    P.FunctionCount = 60;
    P.MinBlocks = 24;
    P.MaxBlocks = 90;
    P.LoopDensity = 0.25;
    P.IfDensity = 0.5;
    P.CallDensity = 0.22;
    P.PathPoolMin = 16;
    P.PathPoolMax = 420;
    P.PoolSkew = 0.45;
    P.BranchConsistency = 0.4;
    P.LoopContinueProb = 0.62;
    P.MaxPathLength = 700;
    P.TargetCalls = 52000;
    P.MainCallSites = 12;
    Profiles.push_back(P);
  }
  {
    WorkloadProfile P;
    P.Name = "126.gcc";
    P.Seed = 0x6CC02;
    P.FunctionCount = 240;
    P.MinBlocks = 12;
    P.MaxBlocks = 70;
    P.LoopDensity = 0.28;
    P.IfDensity = 0.45;
    P.CallDensity = 0.3;
    P.PathPoolMin = 8;
    P.PathPoolMax = 260;
    P.PoolSkew = 0.35;
    P.BranchConsistency = 0.75;
    P.LoopContinueProb = 0.72;
    P.MaxPathLength = 420;
    P.TargetCalls = 130000;
    P.MainCallSites = 16;
    Profiles.push_back(P);
  }
  {
    WorkloadProfile P;
    P.Name = "130.li";
    P.Seed = 0x11003;
    P.FunctionCount = 80;
    P.MinBlocks = 4;
    P.MaxBlocks = 14;
    P.LoopDensity = 0.12;
    P.IfDensity = 0.5;
    P.CallDensity = 0.4;
    P.PathPoolMin = 1;
    P.PathPoolMax = 6;
    P.PoolSkew = 1.5;
    P.BranchConsistency = 0.5;
    P.LoopContinueProb = 0.5;
    P.MaxPathLength = 200;
    P.TargetCalls = 110000;
    P.MainCallSites = 10;
    Profiles.push_back(P);
  }
  {
    WorkloadProfile P;
    P.Name = "132.ijpeg";
    P.Seed = 0x13404;
    P.FunctionCount = 48;
    P.MinBlocks = 16;
    P.MaxBlocks = 60;
    P.LoopDensity = 0.5;
    P.IfDensity = 0.3;
    P.CallDensity = 0.12;
    P.PathPoolMin = 6;
    P.PathPoolMax = 60;
    P.PoolSkew = 0.8;
    P.BranchConsistency = 0.85;
    P.LoopContinueProb = 0.88;
    P.LoopTripCap = 80;
    P.MaxPathLength = 1500;
    P.TargetCalls = 15000;
    P.MainCallSites = 8;
    Profiles.push_back(P);
  }
  {
    WorkloadProfile P;
    P.Name = "134.perl";
    P.Seed = 0x9E105;
    P.FunctionCount = 40;
    P.MinBlocks = 6;
    P.MaxBlocks = 20;
    P.LoopDensity = 0.45;
    P.IfDensity = 0.25;
    P.CallDensity = 0.25;
    P.PathPoolMin = 20;
    P.PathPoolMax = 160;
    P.PoolSkew = 0.1;
    P.BranchConsistency = 0.97;
    P.LoopContinueProb = 0.985;
    P.LoopTripCap = 600;
    P.MaxPathLength = 4000;
    P.TargetCalls = 4200;
    P.MainCallSites = 14;
    Profiles.push_back(P);
  }
  return Profiles;
}

std::vector<WorkloadProfile> twpp::testProfiles() {
  std::vector<WorkloadProfile> Profiles = paperProfiles();
  for (WorkloadProfile &P : Profiles) {
    // Scale calls and path pools together so the redundancy shape (calls
    // per unique trace) survives the 20x size reduction.
    P.TargetCalls /= 20;
    P.PathPoolMin = std::max<uint32_t>(1, P.PathPoolMin / 8);
    P.PathPoolMax = std::max<uint32_t>(P.PathPoolMin, P.PathPoolMax / 8);
    P.MaxPathLength = std::min<uint32_t>(P.MaxPathLength, 400);
    P.Name += "-test";
  }
  return Profiles;
}
