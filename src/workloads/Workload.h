//===- workloads/Workload.h - Synthetic SPEC-like workloads -----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic benchmark programs standing in for the paper's Trimaran-
/// instrumented SPECint95 runs (099.go, 126.gcc, 130.li, 132.ijpeg,
/// 134.perl). Each profile generates, from a fixed seed:
///
///  * one static CFG per function (structured: sequences, if-diamonds,
///    while loops — so DBB chains and arithmetic timestamp series arise
///    naturally, as they do in compiled code);
///  * a per-function *path pool*: pre-walked paths through the static CFG
///    with baked loop trip counts. Pool size and pick skew control how
///    many unique path traces a function exhibits — the knob behind the
///    paper's Figure 8 redundancy distribution;
///  * a call structure (call-site blocks with fixed callees, acyclic by
///    construction) and an execution driver that emits the WPP event
///    stream for one complete run.
///
/// Absolute sizes are scaled ~50-100x below the paper's (MB-scale traces
/// rather than 100s of MB) while preserving the shape statistics the
/// evaluation depends on: per-stage compaction ratios, trace redundancy
/// CDF, DCG-vs-trace share, and loopiness.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WORKLOADS_WORKLOAD_H
#define TWPP_WORKLOADS_WORKLOAD_H

#include "ir/Ir.h"
#include "trace/Events.h"

#include <cstdint>
#include <string>
#include <vector>

namespace twpp {

/// Tunable parameters of one synthetic benchmark.
struct WorkloadProfile {
  std::string Name;
  uint64_t Seed = 1;

  // Static program shape.
  uint32_t FunctionCount = 50;
  uint32_t MinBlocks = 6;   ///< Structured-region budget per function.
  uint32_t MaxBlocks = 40;
  double LoopDensity = 0.3; ///< Probability a region segment is a loop.
  double IfDensity = 0.4;   ///< Probability a region segment is a diamond.
  double CallDensity = 0.2; ///< Fraction of simple blocks that call.
  uint32_t LeafFractionPct = 30; ///< Last N% of functions make no calls.

  // Dynamic behaviour.
  uint32_t PathPoolMin = 1; ///< Unique-behaviour pool per function.
  uint32_t PathPoolMax = 8;
  double PoolSkew = 1.2;    ///< Zipf exponent for pool picks (higher =>
                            ///< fewer distinct traces actually used).
  double BranchConsistency = 0.5; ///< Probability an if-diamond takes the
                                  ///< same arm every time within one path
                                  ///< (hot loops repeat one body exactly,
                                  ///< which is what produces the paper's
                                  ///< DBB chains and arithmetic series).
  double LoopContinueProb = 0.7; ///< Per-iteration continue probability.
  uint32_t LoopTripCap = 40;
  uint32_t MaxPathLength = 1500; ///< Cap on one pool path's block count.
  uint32_t MaxDepth = 24;        ///< Call depth cap.
  uint64_t TargetCalls = 20000;  ///< Approximate total calls per run.
  uint32_t MainCallSites = 10;   ///< Call blocks in main's loop body.
};

/// One block of a synthetic function's static CFG.
struct SyntheticBlock {
  std::vector<BlockId> Succs; ///< 1-based successor ids.
  bool IsLoopHeader = false;
  bool IsCallSite = false;
  FunctionId Callee = 0;
};

/// A synthetic function: static CFG plus its path pool.
struct SyntheticFunction {
  std::vector<SyntheticBlock> Blocks; ///< Blocks[i] has id i+1; entry = 1.
  std::vector<std::vector<BlockId>> PathPool;
  std::vector<double> PathWeights; ///< Zipf pick weights, parallel to pool.
};

/// A whole synthetic program (function 0 is main).
struct SyntheticProgram {
  std::string Name;
  std::vector<SyntheticFunction> Functions;
  WorkloadProfile Profile;

  /// Cumulative static CFG size over all functions (Table 6's StaticFG).
  CfgStats staticStats() const;
};

/// Generates the program for \p Profile (deterministic in Profile.Seed).
SyntheticProgram generateProgram(const WorkloadProfile &Profile);

/// Executes one run of \p Program, emitting the WPP into \p Sink.
void runSyntheticProgram(const SyntheticProgram &Program, TraceSink &Sink);

/// Convenience: generate + run + collect.
RawTrace generateWorkloadTrace(const WorkloadProfile &Profile);

/// The five profiles mirroring the paper's Table 1 benchmarks, in paper
/// order: 099.go, 126.gcc, 130.li, 132.ijpeg, 134.perl.
std::vector<WorkloadProfile> paperProfiles();

/// A reduced-scale variant of paperProfiles() for unit tests (same shapes,
/// ~10x fewer calls).
std::vector<WorkloadProfile> testProfiles();

} // namespace twpp

#endif // TWPP_WORKLOADS_WORKLOAD_H
