//===- dataflow/IrFacts.cpp - GEN/KILL facts from the mini IR -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/IrFacts.h"

#include <algorithm>

using namespace twpp;

BlockEffect BlockFactSpec::effectOf(BlockId Block) const {
  if (std::binary_search(KillBlocks.begin(), KillBlocks.end(), Block))
    return BlockEffect::Kill;
  if (std::binary_search(GenBlocks.begin(), GenBlocks.end(), Block))
    return BlockEffect::Gen;
  return BlockEffect::Transparent;
}

EffectFn BlockFactSpec::asEffectFn() const {
  // Copy the sets into the closure so the spec may go out of scope.
  return [Spec = *this](BlockId Block) { return Spec.effectOf(Block); };
}

namespace {

/// Whether \p Block reads / writes \p Var (terminator condition and
/// return value count as reads).
void classifyBlock(const Function &F, const BasicBlock &Block, VarId Var,
                   bool &Reads, bool &Writes) {
  Reads = false;
  Writes = false;
  for (const Stmt &S : Block.Stmts) {
    for (VarId Use : stmtUses(F, S))
      Reads |= Use == Var;
    Writes |= S.Target == Var;
  }
  std::vector<VarId> TermUses;
  if (Block.Term == BasicBlock::Terminator::Branch)
    collectExprUses(F, Block.CondExpr, TermUses);
  if (Block.Term == BasicBlock::Terminator::Return && Block.HasRetValue)
    collectExprUses(F, Block.RetExpr, TermUses);
  for (VarId Use : TermUses)
    Reads |= Use == Var;
}

} // namespace

BlockFactSpec twpp::availabilityFact(const Function &F, VarId Var) {
  BlockFactSpec Spec;
  for (BlockId Id = 1; Id <= F.blockCount(); ++Id) {
    bool Reads, Writes;
    classifyBlock(F, F.block(Id), Var, Reads, Writes);
    if (Writes)
      Spec.KillBlocks.push_back(Id);
    else if (Reads)
      Spec.GenBlocks.push_back(Id);
  }
  return Spec;
}

BlockFactSpec twpp::definedFact(const Function &F, VarId Var) {
  BlockFactSpec Spec;
  for (BlockId Id = 1; Id <= F.blockCount(); ++Id) {
    bool Reads, Writes;
    classifyBlock(F, F.block(Id), Var, Reads, Writes);
    if (Writes)
      Spec.GenBlocks.push_back(Id);
  }
  return Spec;
}
