//===- dataflow/AnnotatedCfg.h - Timestamp-annotated dynamic CFG -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timestamp-annotated dynamic control flow graph (paper Section 4.1):
/// one node per dynamic basic block of a path trace, annotated with the
/// ordered set of timestamps at which it executed. A (timestamp, node)
/// pair names a point in the path trace; predecessors/successors plus
/// timestamp arithmetic give efficient backward/forward traversal of the
/// trace from any point, and timestamp-set operations traverse many
/// subpaths simultaneously.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_DATAFLOW_ANNOTATEDCFG_H
#define TWPP_DATAFLOW_ANNOTATEDCFG_H

#include "wpp/Dbb.h"
#include "wpp/TimestampSet.h"
#include "wpp/Twpp.h"

#include <cstddef>
#include <vector>

namespace twpp {

/// One dynamic basic block with its timestamp annotation.
struct AnnotatedNode {
  /// The DBB's id (head static block of its chain).
  BlockId Head = 0;
  /// The static blocks the DBB covers, in execution order (a single block
  /// when no chain was formed).
  std::vector<BlockId> StaticBlocks;
  /// Time steps at which this DBB executed, series-compacted.
  TimestampSet Times;
  /// Dynamic CFG neighbours (indices into AnnotatedDynamicCfg::Nodes).
  std::vector<uint32_t> Preds;
  std::vector<uint32_t> Succs;
};

/// The annotated dynamic CFG of one unique path trace of one function.
struct AnnotatedDynamicCfg {
  std::vector<AnnotatedNode> Nodes; ///< Sorted by Head.
  uint32_t Length = 0;              ///< Number of time steps in the trace.

  /// Index of the node with DBB id \p Head, or npos.
  size_t nodeIndexOf(BlockId Head) const;

  /// Node executing at timestamp \p T, or npos when T is out of range.
  size_t nodeAt(Timestamp T) const;

  uint64_t edgeCount() const;

  static constexpr size_t npos = static_cast<size_t>(-1);
};

/// Builds the annotated dynamic CFG from a TWPP trace and its dictionary.
/// Pass an empty dictionary for statement-level graphs (no DBB
/// collapsing), as the slicing algorithms use.
AnnotatedDynamicCfg buildAnnotatedCfg(const TwppTrace &Trace,
                                      const DbbDictionary &Dictionary);

/// Convenience: builds the annotated CFG straight from a raw block
/// sequence (each block is its own DBB).
AnnotatedDynamicCfg buildAnnotatedCfgFromSequence(
    const std::vector<BlockId> &Sequence);

} // namespace twpp

#endif // TWPP_DATAFLOW_ANNOTATEDCFG_H
