//===- dataflow/Query.h - Demand-driven GEN-KILL queries --------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demand-driven, profile-limited backward propagation of GEN-KILL data
/// flow queries (paper Section 4.2). A query <T, n>_d asks, for every
/// timestamp in T, whether fact d holds immediately *before* that
/// execution of node n. Propagation shifts the whole timestamp vector by
/// -1 per backward step (one series update), intersects with each
/// predecessor's timestamp annotation, resolves slots against the
/// predecessor's dynamic GEN/KILL effect, and keeps propagating the rest.
/// Timestamps that fall off the front of the trace reach the function
/// entry unresolved and are reported as such (callers usually treat them
/// as "fact does not hold").
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_DATAFLOW_QUERY_H
#define TWPP_DATAFLOW_QUERY_H

#include "dataflow/AnnotatedCfg.h"

#include <functional>

namespace twpp {

/// Effect of one static block on the fact being queried.
enum class BlockEffect : uint8_t {
  Transparent, ///< Neither generates nor kills.
  Gen,         ///< Generates the fact (it holds after the block).
  Kill,        ///< Kills the fact.
};

/// Client-provided static effect of a block on the queried fact. Dynamic
/// basic blocks combine the effects of their member static blocks.
using EffectFn = std::function<BlockEffect(BlockId)>;

/// Answer to a profile-limited query.
struct QueryResult {
  TimestampSet True;      ///< Instances where the fact holds before n.
  TimestampSet False;     ///< Instances where it was killed on the way.
  TimestampSet AtEntry;   ///< Instances that reached the function entry
                          ///< unresolved.
  uint64_t QueriesGenerated = 0; ///< <T, n> pairs created (paper Fig. 9
                                 ///< reports this).
};

/// Net effect of a DBB (chain of static blocks) on the fact, as seen by a
/// query arriving *after* the chain ran: the last non-transparent member
/// wins.
BlockEffect chainEffect(const std::vector<BlockId> &StaticBlocks,
                        const EffectFn &Effect);

/// Propagates the query <\p Times, node \p NodeIndex>_d backwards through
/// \p Cfg. \p Times must be a subset of the node's timestamp annotation.
QueryResult propagateBackward(const AnnotatedDynamicCfg &Cfg,
                              size_t NodeIndex, const TimestampSet &Times,
                              const EffectFn &Effect);

/// The paper's frequency form: how often does the fact hold before n over
/// all of n's executions (answers "degree of redundancy" style questions).
struct FactFrequency {
  uint64_t Holds = 0;
  uint64_t Total = 0;
  uint64_t QueriesGenerated = 0;
  double ratio() const {
    return Total == 0 ? 0.0 : static_cast<double>(Holds) / Total;
  }
};
FactFrequency factFrequency(const AnnotatedDynamicCfg &Cfg, BlockId Node,
                            const EffectFn &Effect);

} // namespace twpp

#endif // TWPP_DATAFLOW_QUERY_H
