//===- dataflow/Interprocedural.cpp - Call-aware GEN-KILL effects ---------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Interprocedural.h"

#include "obs/Metrics.h"
#include "obs/Names.h"

#include <cassert>
#include <map>
#include <unordered_map>

using namespace twpp;

CallEffectOracle::CallEffectOracle(const TwppWpp &Wpp, ModuleEffectFn Fn)
    : Effect(std::move(Fn)) {
  const DynamicCallGraph &Dcg = Wpp.Dcg;
  Effects.assign(Dcg.Nodes.size(), BlockEffect::Transparent);

  // Expanded unique traces, cached per (function, unique trace index).
  std::unordered_map<uint64_t, PathTrace> TraceCache;
  auto ExpandedTrace = [&](FunctionId F, uint32_t TraceIndex) -> const PathTrace & {
    static obs::Counter &CacheHits =
        obs::metrics().counter(obs::names::DataflowCacheHits);
    static obs::Counter &CacheMisses =
        obs::metrics().counter(obs::names::DataflowCacheMisses);
    uint64_t Key = (static_cast<uint64_t>(F) << 32) | TraceIndex;
    auto It = TraceCache.find(Key);
    if (It != TraceCache.end()) {
      CacheHits.add();
      return It->second;
    }
    CacheMisses.add();
    const TwppFunctionTable &Table = Wpp.Functions[F];
    auto [StringIdx, DictIdx] = Table.Traces[TraceIndex];
    std::vector<BlockId> Sequence;
    bool Ok = blockSequenceFromTwpp(Table.TraceStrings[StringIdx], Sequence);
    assert(Ok && "inconsistent TWPP trace");
    (void)Ok;
    PathTrace Expanded;
    for (BlockId Head : Sequence)
      appendExpansion(Table.Dictionaries[DictIdx], Head, Expanded);
    return TraceCache.emplace(Key, std::move(Expanded)).first->second;
  };

  // Children always have larger indices than their parent (DCG nodes are
  // created in call order), so a reverse sweep folds bottom-up.
  for (size_t N = Dcg.Nodes.size(); N-- > 0;) {
    const DcgNode &Node = Dcg.Nodes[N];
    const PathTrace &Blocks = ExpandedTrace(Node.Function, Node.TraceIndex);

    BlockEffect Last = BlockEffect::Transparent;
    size_t Child = 0;
    auto FoldCallsAt = [&](uint32_t Position) {
      while (Child < Node.Children.size() &&
             Node.Anchors[Child] == Position) {
        BlockEffect E = Effects[Node.Children[Child++]];
        if (E != BlockEffect::Transparent)
          Last = E;
      }
    };
    FoldCallsAt(0);
    for (uint32_t K = 0; K < Blocks.size(); ++K) {
      // Convention: a block's own statements act before the calls it
      // makes (the granularity of the trace cannot order them finer).
      BlockEffect E = Effect(Node.Function, Blocks[K]);
      if (E != BlockEffect::Transparent)
        Last = E;
      FoldCallsAt(K + 1);
    }
    Effects[N] = Last;
  }
}

CallInstanceView twpp::buildCallInstanceView(const TwppWpp &Wpp,
                                             uint32_t NodeIndex) {
  CallInstanceView View;
  const DcgNode &Node = Wpp.Dcg.Nodes[NodeIndex];
  const TwppFunctionTable &Table = Wpp.Functions[Node.Function];
  auto [StringIdx, DictIdx] = Table.Traces[Node.TraceIndex];
  std::vector<BlockId> Sequence;
  bool Ok = blockSequenceFromTwpp(Table.TraceStrings[StringIdx], Sequence);
  assert(Ok && "inconsistent TWPP trace");
  (void)Ok;
  PathTrace Expanded;
  for (BlockId Head : Sequence)
    appendExpansion(Table.Dictionaries[DictIdx], Head, Expanded);

  View.Cfg = buildAnnotatedCfgFromSequence(Expanded);
  // CallsAt[0] holds calls made before any block event; CallsAt[t] the
  // calls made during block event t.
  View.CallsAt.assign(Expanded.size() + 1, {});
  for (size_t C = 0; C < Node.Children.size(); ++C)
    View.CallsAt[Node.Anchors[C]].push_back(Node.Children[C]);
  return View;
}

QueryResult twpp::propagateBackwardInterprocedural(
    const CallInstanceView &View, const CallEffectOracle &Oracle,
    FunctionId Function, size_t NodeIndex, const TimestampSet &Times) {
  QueryResult Result;
  if (Times.empty())
    return Result;
  const AnnotatedDynamicCfg &Cfg = View.Cfg;
  assert(NodeIndex < Cfg.Nodes.size() && "query node out of range");

  /// Effect of block event \p T (block's own statements, then the calls
  /// anchored there; the last non-transparent action wins backwards).
  auto InstanceEffect = [&](BlockId Block, Timestamp T) {
    BlockEffect Last = Oracle.moduleEffect()(Function, Block);
    for (uint32_t Call : View.CallsAt[T]) {
      BlockEffect E = Oracle.callEffect(Call);
      if (E != BlockEffect::Transparent)
        Last = E;
    }
    return Last;
  };

  struct PendingKey {
    size_t Node;
    uint32_t Depth;
    bool operator<(const PendingKey &Other) const {
      return Depth != Other.Depth ? Depth < Other.Depth : Node < Other.Node;
    }
  };
  std::map<PendingKey, TimestampSet> Pending;
  Pending[{NodeIndex, 0}] = Times;
  Result.QueriesGenerated = 1;
  const TimestampSet One = TimestampSet::fromRun(1, 1, 1);

  while (!Pending.empty()) {
    auto It = Pending.begin();
    auto [Node, Depth] = It->first;
    TimestampSet Current = std::move(It->second);
    Pending.erase(It);

    TimestampSet Dropped = Current.intersect(One);
    if (!Dropped.empty()) {
      // Calls anchored before the first block act at the entry boundary.
      TimestampSet EntryGen, EntryKill, EntryOpen;
      BlockEffect Last = BlockEffect::Transparent;
      for (uint32_t Call : View.CallsAt[0]) {
        BlockEffect E = Oracle.callEffect(Call);
        if (E != BlockEffect::Transparent)
          Last = E;
      }
      TimestampSet Origin = Dropped.shifted(Depth);
      switch (Last) {
      case BlockEffect::Gen:
        Result.True = Result.True.unite(Origin);
        break;
      case BlockEffect::Kill:
        Result.False = Result.False.unite(Origin);
        break;
      case BlockEffect::Transparent:
        Result.AtEntry = Result.AtEntry.unite(Origin);
        break;
      }
    }

    TimestampSet Previous = Current.shifted(-1);
    if (Previous.empty())
      continue;

    for (uint32_t PredIndex : Cfg.Nodes[Node].Preds) {
      const AnnotatedNode &Pred = Cfg.Nodes[PredIndex];
      TimestampSet AtPred = Previous.intersect(Pred.Times);
      if (AtPred.empty())
        continue;
      // Per-instance resolution: instances of the same block can have
      // different effects depending on the calls they made.
      std::vector<Timestamp> GenT, KillT, OpenT;
      for (Timestamp T : AtPred.toVector()) {
        switch (InstanceEffect(Pred.Head, T)) {
        case BlockEffect::Gen:
          GenT.push_back(T);
          break;
        case BlockEffect::Kill:
          KillT.push_back(T);
          break;
        case BlockEffect::Transparent:
          OpenT.push_back(T);
          break;
        }
      }
      if (!GenT.empty())
        Result.True = Result.True.unite(
            TimestampSet::fromSorted(GenT).shifted(
                static_cast<int64_t>(Depth) + 1));
      if (!KillT.empty())
        Result.False = Result.False.unite(
            TimestampSet::fromSorted(KillT).shifted(
                static_cast<int64_t>(Depth) + 1));
      if (!OpenT.empty()) {
        TimestampSet &Slot = Pending[{PredIndex, Depth + 1}];
        Slot = Slot.unite(TimestampSet::fromSorted(OpenT));
        ++Result.QueriesGenerated;
      }
    }
  }
  return Result;
}
