//===- dataflow/Interprocedural.h - Call-aware GEN-KILL effects -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural side of profile-limited GEN-KILL analysis (paper
/// Section 4.2): when node n contains a call, its dynamic effect on a
/// fact comes from the callee's path trace for that *specific* call —
/// the paper's GEN_f(T(n)) and KILL_f(T(n)) sets. This module computes
/// the net effect of every call in the dynamic call graph bottom-up
/// (each node's effect folds its own blocks with its children's effects
/// in execution order, using the per-call anchors), and runs backward
/// query propagation over one invocation of a function where blocks
/// that made calls resolve per instance.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_DATAFLOW_INTERPROCEDURAL_H
#define TWPP_DATAFLOW_INTERPROCEDURAL_H

#include "dataflow/Query.h"
#include "wpp/Twpp.h"

#include <functional>
#include <vector>

namespace twpp {

/// Per-function, per-block static effect (the intraprocedural EffectFn
/// with the function made explicit).
using ModuleEffectFn = std::function<BlockEffect(FunctionId, BlockId)>;

/// Net effects of whole call subtrees, one per DCG node: what one
/// complete execution of that call did to the fact (last non-transparent
/// action wins, nested calls included).
class CallEffectOracle {
public:
  /// Folds the whole DCG bottom-up. O(total path trace length) once.
  CallEffectOracle(const TwppWpp &Wpp, ModuleEffectFn Effect);

  /// Effect of the complete execution of DCG node \p NodeIndex.
  BlockEffect callEffect(uint32_t NodeIndex) const {
    return Effects[NodeIndex];
  }

  const ModuleEffectFn &moduleEffect() const { return Effect; }

private:
  ModuleEffectFn Effect;
  std::vector<BlockEffect> Effects;
};

/// One invocation of a function, prepared for interprocedural queries:
/// the statement-level annotated dynamic CFG of its path trace plus, for
/// every trace position, the calls anchored there.
struct CallInstanceView {
  AnnotatedDynamicCfg Cfg;
  /// CallsAt[t-1] lists the DCG node indices of calls made *during* the
  /// t-th block event of this invocation, in call order.
  std::vector<std::vector<uint32_t>> CallsAt;
};

/// Builds the view for DCG node \p NodeIndex. The annotated CFG is built
/// at raw block granularity (no DBB collapsing) so anchors align with
/// timestamps.
CallInstanceView buildCallInstanceView(const TwppWpp &Wpp,
                                       uint32_t NodeIndex);

/// Backward query <Times, node> over one invocation, resolving blocks
/// through both their own static effect and the net effects of the calls
/// they made (the call acts after the block's own statements began, so
/// the *last* action in execution order wins: calls anchored at a block
/// override the block's static effect).
QueryResult propagateBackwardInterprocedural(const CallInstanceView &View,
                                             const CallEffectOracle &Oracle,
                                             FunctionId Function,
                                             size_t NodeIndex,
                                             const TimestampSet &Times);

} // namespace twpp

#endif // TWPP_DATAFLOW_INTERPROCEDURAL_H
