//===- dataflow/Dump.h - Human-readable / graphviz dumps -------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Debug/visualization output: Graphviz dot renderings of the dynamic
/// call graph and of timestamp-annotated dynamic CFGs, and a textual
/// summary of a compacted WPP. Used by the twpp_tool example and handy
/// when debugging compaction issues.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_DATAFLOW_DUMP_H
#define TWPP_DATAFLOW_DUMP_H

#include "dataflow/AnnotatedCfg.h"
#include "wpp/Twpp.h"

#include <string>

namespace twpp {

/// Dot rendering of the DCG. Subtrees beyond \p MaxNodes are elided with
/// a count placeholder so large graphs stay viewable.
std::string dumpDcgDot(const DynamicCallGraph &Dcg, size_t MaxNodes = 200);

/// Dot rendering of an annotated dynamic CFG: nodes show the DBB head,
/// its static block expansion and the compacted timestamp series.
std::string dumpAnnotatedCfgDot(const AnnotatedDynamicCfg &Cfg,
                                const std::string &Title = "trace");

/// Multi-line textual summary of a compacted WPP (per-function unique
/// trace counts, call counts, sizes).
std::string dumpSummary(const TwppWpp &Wpp);

} // namespace twpp

#endif // TWPP_DATAFLOW_DUMP_H
