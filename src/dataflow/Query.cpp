//===- dataflow/Query.cpp - Demand-driven GEN-KILL queries ----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Query.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"

#include <cassert>
#include <deque>
#include <map>

using namespace twpp;

BlockEffect twpp::chainEffect(const std::vector<BlockId> &StaticBlocks,
                              const EffectFn &Effect) {
  // A backward query sees the chain's members in reverse: the last
  // non-transparent member decides.
  for (auto It = StaticBlocks.rbegin(); It != StaticBlocks.rend(); ++It) {
    BlockEffect E = Effect(*It);
    if (E != BlockEffect::Transparent)
      return E;
  }
  return BlockEffect::Transparent;
}

QueryResult twpp::propagateBackward(const AnnotatedDynamicCfg &Cfg,
                                    size_t NodeIndex,
                                    const TimestampSet &Times,
                                    const EffectFn &Effect) {
  QueryResult Result;
  if (Times.empty())
    return Result;
  assert(NodeIndex < Cfg.Nodes.size() && "query node out of range");
  obs::PhaseSpan Span("dataflow_query", "node",
                      static_cast<int64_t>(NodeIndex));
  uint64_t NodesVisited = 0;

  // Pending queries keyed by (node, backward depth). All timestamps in one
  // entry moved the same distance, so original = current + depth.
  struct PendingKey {
    size_t Node;
    uint32_t Depth;
    bool operator<(const PendingKey &Other) const {
      return Depth != Other.Depth ? Depth < Other.Depth : Node < Other.Node;
    }
  };
  std::map<PendingKey, TimestampSet> Pending;
  Pending[{NodeIndex, 0}] = Times;
  Result.QueriesGenerated = 1;

  const TimestampSet One = TimestampSet::fromRun(1, 1, 1);

  while (!Pending.empty()) {
    auto It = Pending.begin();
    auto [Node, Depth] = It->first;
    TimestampSet Current = std::move(It->second);
    Pending.erase(It);
    ++NodesVisited;

    // Instances whose previous point falls before the trace start reached
    // the function entry unresolved.
    TimestampSet Dropped = Current.intersect(One);
    if (!Dropped.empty())
      Result.AtEntry = Result.AtEntry.unite(Dropped.shifted(Depth));

    TimestampSet Previous = Current.shifted(-1);
    if (Previous.empty())
      continue;

    for (uint32_t PredIndex : Cfg.Nodes[Node].Preds) {
      const AnnotatedNode &Pred = Cfg.Nodes[PredIndex];
      TimestampSet AtPred = Previous.intersect(Pred.Times);
      if (AtPred.empty())
        continue;
      // Report resolutions in the original query's timestamp coordinates.
      TimestampSet Origin = AtPred.shifted(static_cast<int64_t>(Depth) + 1);
      switch (chainEffect(Pred.StaticBlocks, Effect)) {
      case BlockEffect::Gen:
        Result.True = Result.True.unite(Origin);
        break;
      case BlockEffect::Kill:
        Result.False = Result.False.unite(Origin);
        break;
      case BlockEffect::Transparent: {
        TimestampSet &Slot = Pending[{PredIndex, Depth + 1}];
        Slot = Slot.unite(AtPred);
        ++Result.QueriesGenerated;
        break;
      }
      }
    }
  }
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Queries = M.counter(obs::names::DataflowQueries);
    static obs::Counter &Subqueries =
        M.counter(obs::names::DataflowSubqueries);
    static obs::Counter &Visited =
        M.counter(obs::names::DataflowNodesVisited);
    Queries.add();
    Subqueries.add(Result.QueriesGenerated);
    Visited.add(NodesVisited);
  }
  return Result;
}

FactFrequency twpp::factFrequency(const AnnotatedDynamicCfg &Cfg,
                                  BlockId Node, const EffectFn &Effect) {
  FactFrequency Freq;
  size_t Index = Cfg.nodeIndexOf(Node);
  if (Index == AnnotatedDynamicCfg::npos)
    return Freq;
  const TimestampSet &Times = Cfg.Nodes[Index].Times;
  QueryResult Result = propagateBackward(Cfg, Index, Times, Effect);
  Freq.Holds = Result.True.count();
  Freq.Total = Times.count();
  Freq.QueriesGenerated = Result.QueriesGenerated;
  return Freq;
}
