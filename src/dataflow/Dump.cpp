//===- dataflow/Dump.cpp - Human-readable / graphviz dumps ---------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dump.h"

#include "wpp/Sizes.h"

#include <string>

using namespace twpp;

namespace {

std::string seriesText(const TimestampSet &Set) {
  std::string Out;
  for (const SeriesRun &Run : Set.runs()) {
    if (!Out.empty())
      Out += ",";
    if (Run.Lo == Run.Hi) {
      Out += std::to_string(Run.Lo);
    } else {
      Out += std::to_string(Run.Lo) + ":" + std::to_string(Run.Hi);
      if (Run.Step != 1)
        Out += ":" + std::to_string(Run.Step);
    }
  }
  return Out;
}

} // namespace

std::string twpp::dumpDcgDot(const DynamicCallGraph &Dcg, size_t MaxNodes) {
  std::string Out = "digraph dcg {\n  node [shape=box];\n";
  size_t Limit = std::min(MaxNodes, Dcg.Nodes.size());
  for (size_t N = 0; N < Limit; ++N) {
    const DcgNode &Node = Dcg.Nodes[N];
    Out += "  n" + std::to_string(N) + " [label=\"f" +
           std::to_string(Node.Function) + " t" +
           std::to_string(Node.TraceIndex) + "\"];\n";
    for (size_t C = 0; C < Node.Children.size(); ++C) {
      uint32_t Child = Node.Children[C];
      if (Child >= Limit) {
        Out += "  n" + std::to_string(N) + " -> elided;\n";
        continue;
      }
      Out += "  n" + std::to_string(N) + " -> n" + std::to_string(Child) +
             " [label=\"@" + std::to_string(Node.Anchors[C]) + "\"];\n";
    }
  }
  if (Dcg.Nodes.size() > Limit)
    Out += "  elided [label=\"+" +
           std::to_string(Dcg.Nodes.size() - Limit) + " more\"];\n";
  for (uint32_t Root : Dcg.Roots)
    if (Root < Limit)
      Out += "  root -> n" + std::to_string(Root) + ";\n";
  Out += "}\n";
  return Out;
}

std::string twpp::dumpAnnotatedCfgDot(const AnnotatedDynamicCfg &Cfg,
                                      const std::string &Title) {
  std::string Out = "digraph \"" + Title + "\" {\n  node [shape=record];\n";
  for (size_t N = 0; N < Cfg.Nodes.size(); ++N) {
    const AnnotatedNode &Node = Cfg.Nodes[N];
    std::string Blocks;
    for (BlockId B : Node.StaticBlocks)
      Blocks += (Blocks.empty() ? "" : ".") + std::to_string(B);
    Out += "  n" + std::to_string(N) + " [label=\"{" + Blocks + "|T=" +
           seriesText(Node.Times) + "}\"];\n";
    for (uint32_t Succ : Node.Succs)
      Out += "  n" + std::to_string(N) + " -> n" + std::to_string(Succ) +
             ";\n";
  }
  Out += "}\n";
  return Out;
}

std::string twpp::dumpSummary(const TwppWpp &Wpp) {
  std::string Out;
  Out += "functions: " + std::to_string(Wpp.Functions.size()) +
         ", dcg nodes: " + std::to_string(Wpp.Dcg.Nodes.size()) +
         ", roots: " + std::to_string(Wpp.Dcg.Roots.size()) + "\n";
  for (size_t F = 0; F < Wpp.Functions.size(); ++F) {
    const TwppFunctionTable &Table = Wpp.Functions[F];
    if (Table.CallCount == 0)
      continue;
    uint64_t TraceBytes = 0;
    for (const TwppTrace &Trace : Table.TraceStrings)
      TraceBytes += twppTraceBytes(Trace);
    Out += "  f" + std::to_string(F) + ": " +
           std::to_string(Table.CallCount) + " calls, " +
           std::to_string(Table.Traces.size()) + " unique traces (" +
           std::to_string(Table.TraceStrings.size()) + " strings, " +
           std::to_string(Table.Dictionaries.size()) + " dicts, " +
           std::to_string(TraceBytes) + " B)\n";
  }
  return Out;
}
