//===- dataflow/AnnotatedCfg.cpp - Timestamp-annotated dynamic CFG --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/AnnotatedCfg.h"

#include <algorithm>
#include <cassert>

using namespace twpp;

size_t AnnotatedDynamicCfg::nodeIndexOf(BlockId Head) const {
  auto It = std::lower_bound(Nodes.begin(), Nodes.end(), Head,
                             [](const AnnotatedNode &Node, BlockId Key) {
                               return Node.Head < Key;
                             });
  if (It == Nodes.end() || It->Head != Head)
    return npos;
  return static_cast<size_t>(It - Nodes.begin());
}

size_t AnnotatedDynamicCfg::nodeAt(Timestamp T) const {
  if (T == 0 || T > Length)
    return npos;
  for (size_t I = 0; I < Nodes.size(); ++I)
    if (Nodes[I].Times.contains(T))
      return I;
  return npos;
}

uint64_t AnnotatedDynamicCfg::edgeCount() const {
  uint64_t Count = 0;
  for (const AnnotatedNode &Node : Nodes)
    Count += Node.Succs.size();
  return Count;
}

AnnotatedDynamicCfg twpp::buildAnnotatedCfg(const TwppTrace &Trace,
                                            const DbbDictionary &Dictionary) {
  AnnotatedDynamicCfg Cfg;
  Cfg.Length = Trace.Length;
  Cfg.Nodes.reserve(Trace.Blocks.size());
  for (const auto &[Head, Times] : Trace.Blocks) {
    AnnotatedNode Node;
    Node.Head = Head;
    Node.Times = Times;
    appendExpansion(Dictionary, Head, Node.StaticBlocks);
    Cfg.Nodes.push_back(std::move(Node));
  }

  // Adjacency comes from the materialized time sequence.
  std::vector<BlockId> Sequence;
  bool Ok = blockSequenceFromTwpp(Trace, Sequence);
  assert(Ok && "inconsistent TWPP trace");
  (void)Ok;
  for (size_t I = 0; I + 1 < Sequence.size(); ++I) {
    size_t From = Cfg.nodeIndexOf(Sequence[I]);
    size_t To = Cfg.nodeIndexOf(Sequence[I + 1]);
    assert(From != AnnotatedDynamicCfg::npos &&
           To != AnnotatedDynamicCfg::npos && "trace block missing a node");
    Cfg.Nodes[From].Succs.push_back(static_cast<uint32_t>(To));
    Cfg.Nodes[To].Preds.push_back(static_cast<uint32_t>(From));
  }
  for (AnnotatedNode &Node : Cfg.Nodes) {
    auto Dedupe = [](std::vector<uint32_t> &List) {
      std::sort(List.begin(), List.end());
      List.erase(std::unique(List.begin(), List.end()), List.end());
    };
    Dedupe(Node.Preds);
    Dedupe(Node.Succs);
  }
  return Cfg;
}

AnnotatedDynamicCfg twpp::buildAnnotatedCfgFromSequence(
    const std::vector<BlockId> &Sequence) {
  return buildAnnotatedCfg(twppFromBlockSequence(Sequence), DbbDictionary());
}
