//===- ir/Liveness.cpp - Block-level live variable analysis ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "ir/Liveness.h"

#include <algorithm>

using namespace twpp;

namespace {

bool containsVar(const std::vector<VarId> &Sorted, VarId Var) {
  return std::binary_search(Sorted.begin(), Sorted.end(), Var);
}

void insertVar(std::vector<VarId> &Sorted, VarId Var) {
  auto It = std::lower_bound(Sorted.begin(), Sorted.end(), Var);
  if (It == Sorted.end() || *It != Var)
    Sorted.insert(It, Var);
}

} // namespace

bool LivenessInfo::isLiveIn(BlockId Block, VarId Var) const {
  return containsVar(LiveIn[Block - 1], Var);
}

bool LivenessInfo::isLiveOut(BlockId Block, VarId Var) const {
  return containsVar(LiveOut[Block - 1], Var);
}

LivenessInfo twpp::computeLiveness(const Function &F) {
  uint32_t N = F.blockCount();

  // Per-block UEVar (used before any local def) and VarKill (defined).
  std::vector<std::vector<VarId>> Upward(N), Kill(N);
  for (BlockId Block = 1; Block <= N; ++Block) {
    const BasicBlock &B = F.block(Block);
    std::vector<VarId> &Up = Upward[Block - 1];
    std::vector<VarId> &Killed = Kill[Block - 1];
    for (const Stmt &S : B.Stmts) {
      for (VarId Use : stmtUses(F, S))
        if (!containsVar(Killed, Use))
          insertVar(Up, Use);
      if (S.Target != NoVar)
        insertVar(Killed, S.Target);
    }
    std::vector<VarId> TermUses;
    if (B.Term == BasicBlock::Terminator::Branch)
      collectExprUses(F, B.CondExpr, TermUses);
    if (B.Term == BasicBlock::Terminator::Return && B.HasRetValue)
      collectExprUses(F, B.RetExpr, TermUses);
    for (VarId Use : TermUses)
      if (!containsVar(Killed, Use))
        insertVar(Up, Use);
  }

  LivenessInfo Info;
  Info.LiveIn.assign(N, {});
  Info.LiveOut.assign(N, {});
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId Block = N; Block >= 1; --Block) {
      std::vector<VarId> Out;
      for (BlockId Succ : F.block(Block).successors())
        for (VarId Var : Info.LiveIn[Succ - 1])
          insertVar(Out, Var);
      // In = Upward + (Out - Kill).
      std::vector<VarId> In = Upward[Block - 1];
      for (VarId Var : Out)
        if (!containsVar(Kill[Block - 1], Var))
          insertVar(In, Var);
      if (Out != Info.LiveOut[Block - 1] || In != Info.LiveIn[Block - 1]) {
        Info.LiveOut[Block - 1] = std::move(Out);
        Info.LiveIn[Block - 1] = std::move(In);
        Changed = true;
      }
    }
  }
  return Info;
}
