//===- ir/SinkAssignments.cpp - PDE-style assignment sinking --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "ir/SinkAssignments.h"

#include "ir/Liveness.h"

#include <algorithm>

using namespace twpp;

namespace {

/// Predecessor counts per block.
std::vector<uint32_t> predecessorCounts(const Function &F) {
  std::vector<uint32_t> Counts(F.blockCount(), 0);
  for (BlockId Block = 1; Block <= F.blockCount(); ++Block)
    for (BlockId Succ : F.block(Block).successors())
      ++Counts[Succ - 1];
  return Counts;
}

bool usesVar(const Function &F, uint32_t ExprIndex, VarId Var) {
  std::vector<VarId> Uses;
  collectExprUses(F, ExprIndex, Uses);
  return std::find(Uses.begin(), Uses.end(), Var) != Uses.end();
}

} // namespace

SinkResult twpp::sinkPartiallyDeadAssignments(const Function &F) {
  SinkResult Result;
  Result.Optimized = F;
  Function &Fn = Result.Optimized;

  // Origins[b][i] = (original block, original ordinal) of the statement
  // now at Fn.block(b).Stmts[i]; used by currencyProblemFor.
  std::vector<std::vector<std::pair<BlockId, uint32_t>>> Origins(
      Fn.blockCount());
  for (BlockId Block = 1; Block <= Fn.blockCount(); ++Block)
    for (uint32_t I = 0; I < Fn.block(Block).Stmts.size(); ++I)
      Origins[Block - 1].emplace_back(Block, I);

  std::vector<uint32_t> Preds = predecessorCounts(Fn);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    LivenessInfo Live = computeLiveness(Fn);
    for (BlockId Block = 1; Block <= Fn.blockCount(); ++Block) {
      BasicBlock &B = Fn.block(Block);
      if (B.Term != BasicBlock::Terminator::Branch ||
          B.TrueSucc == B.FalseSucc || B.Stmts.empty())
        continue;
      const Stmt &Last = B.Stmts.back();
      if (Last.StmtKind != Stmt::Kind::Assign || Last.Target == NoVar)
        continue;
      VarId X = Last.Target;
      if (usesVar(Fn, B.CondExpr, X))
        continue;
      bool LiveTrue = Live.isLiveIn(B.TrueSucc, X);
      bool LiveFalse = Live.isLiveIn(B.FalseSucc, X);
      if (LiveTrue == LiveFalse)
        continue; // fully live (can't sink) or fully dead (DCE territory)
      BlockId Target = LiveTrue ? B.TrueSucc : B.FalseSucc;
      if (Preds[Target - 1] != 1)
        continue;

      // Move: pop from B, prepend to Target. Expression indices are
      // function-wide, so the statement moves verbatim.
      MovedAssignment Move;
      Move.Var = X;
      Move.FromBlock = Block;
      Move.FromOrdinal = static_cast<uint32_t>(B.Stmts.size() - 1);
      Move.ToBlock = Target;
      Result.Moves.push_back(Move);

      Stmt Moved = std::move(B.Stmts.back());
      std::pair<BlockId, uint32_t> Origin = Origins[Block - 1].back();
      B.Stmts.pop_back();
      Origins[Block - 1].pop_back();
      BasicBlock &T = Fn.block(Target);
      T.Stmts.insert(T.Stmts.begin(), std::move(Moved));
      Origins[Target - 1].insert(Origins[Target - 1].begin(), Origin);
      Changed = true;
    }
  }

  Result.Origins = std::move(Origins);
  return Result;
}
