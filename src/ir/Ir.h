//===- ir/Ir.h - Mini CFG-based intermediate representation -----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small CFG-based IR standing in for the paper's Trimaran substrate:
/// functions of numbered basic blocks (1-based, matching the paper's
/// examples), straight-line statements, and two-way terminators. The
/// tracing interpreter (runtime/) executes it and emits WPP events; the
/// profile-limited analyses (dataflow/, slicing/) consume its static
/// structure (use/def sets, control dependences, GEN/KILL facts).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_IR_IR_H
#define TWPP_IR_IR_H

#include "trace/Events.h"

#include <cstdint>
#include <string>
#include <vector>

namespace twpp {

/// Identifies a variable; names are interned module-wide.
using VarId = uint32_t;

/// Sentinel for "no variable".
inline constexpr VarId NoVar = static_cast<VarId>(-1);

/// Expression tree node kinds.
enum class ExprKind : uint8_t {
  Const, ///< Integer literal.
  Var,   ///< Variable read.
  Add,
  Sub,
  Mul,
  Div, ///< Division by zero evaluates to 0 (keeps workloads total).
  Mod, ///< Modulo by zero evaluates to 0.
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And, ///< Logical (non-short-circuit; operands are already evaluated).
  Or,
  Not, ///< Unary; uses Lhs only.
  Neg, ///< Unary minus; uses Lhs only.
};

/// One node of a function's expression pool. Interior nodes reference
/// children by pool index, keeping the IR trivially copyable.
struct Expr {
  ExprKind Kind = ExprKind::Const;
  int64_t Value = 0; ///< Literal payload for Const.
  VarId Var = NoVar; ///< Variable for Var.
  uint32_t Lhs = 0;  ///< Left child index (unary: only child).
  uint32_t Rhs = 0;  ///< Right child index.
};

/// A straight-line statement.
struct Stmt {
  enum class Kind : uint8_t {
    Assign, ///< Target = Expr.
    Read,   ///< Target = next program input.
    Print,  ///< Emit Expr to the program output.
    Call,   ///< [Target =] Callee(Args...).
  };

  Kind StmtKind = Kind::Assign;
  VarId Target = NoVar;       ///< Defined variable (NoVar for Print / void
                              ///< calls).
  uint32_t ExprIndex = 0;     ///< Assign / Print operand.
  FunctionId Callee = 0;      ///< Call target.
  std::vector<uint32_t> Args; ///< Call argument expressions.
};

/// A basic block: statements plus one terminator. Block ids are 1-based
/// indices into Function::Blocks, as in the paper's figures.
struct BasicBlock {
  std::vector<Stmt> Stmts;

  enum class Terminator : uint8_t {
    Jump,   ///< Unconditional; TrueSucc.
    Branch, ///< Conditional on CondExpr; TrueSucc / FalseSucc.
    Return, ///< Function exit; RetExpr when HasRetValue.
  };
  Terminator Term = Terminator::Return;
  uint32_t CondExpr = 0;
  BlockId TrueSucc = 0;
  BlockId FalseSucc = 0;
  bool HasRetValue = false;
  uint32_t RetExpr = 0;

  /// Successor list (0, 1 or 2 entries).
  std::vector<BlockId> successors() const {
    switch (Term) {
    case Terminator::Jump:
      return {TrueSucc};
    case Terminator::Branch:
      return TrueSucc == FalseSucc ? std::vector<BlockId>{TrueSucc}
                                   : std::vector<BlockId>{TrueSucc, FalseSucc};
    case Terminator::Return:
      return {};
    }
    return {};
  }
};

/// A function: parameters, an expression pool, and 1-based blocks with
/// Blocks.front() as the entry.
struct Function {
  std::string Name;
  FunctionId Id = 0;
  std::vector<VarId> Params;
  std::vector<Expr> Exprs;
  std::vector<BasicBlock> Blocks;

  const BasicBlock &block(BlockId Id) const { return Blocks[Id - 1]; }
  BasicBlock &block(BlockId Id) { return Blocks[Id - 1]; }
  uint32_t blockCount() const { return static_cast<uint32_t>(Blocks.size()); }
};

/// A whole program.
struct Module {
  std::vector<Function> Functions;
  std::vector<std::string> VarNames;
  FunctionId MainId = 0;

  /// Interns \p Name, returning its VarId.
  VarId internVar(const std::string &Name);

  /// Looks up a function by name; returns nullptr when absent.
  const Function *findFunction(const std::string &Name) const;

  /// Name of \p Var ("vN" fallback for unnamed temporaries).
  std::string varName(VarId Var) const;
};

/// Variables read by the expression rooted at \p ExprIndex (appended,
/// deduplicated by the caller if needed).
void collectExprUses(const Function &F, uint32_t ExprIndex,
                     std::vector<VarId> &Uses);

/// Variables read by \p S (arguments included for calls).
std::vector<VarId> stmtUses(const Function &F, const Stmt &S);

/// Node/edge counts of a function's static CFG (Table 6's StaticFG).
struct CfgStats {
  uint64_t Nodes = 0;
  uint64_t Edges = 0;
};
CfgStats staticCfgStats(const Function &F);

/// Validates structural invariants (successor ids in range, expression
/// indices in range, entry exists). \returns false on violation.
bool verifyFunction(const Function &F, const Module &M);
bool verifyModule(const Module &M);

} // namespace twpp

#endif // TWPP_IR_IR_H
