//===- ir/Liveness.h - Block-level live variable analysis -------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward live-variable analysis over the mini IR, at basic
/// block granularity. Used by the assignment-sinking (PDE-style)
/// transformation that sets up the paper's dynamic currency scenario.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_IR_LIVENESS_H
#define TWPP_IR_LIVENESS_H

#include "ir/Ir.h"

#include <vector>

namespace twpp {

/// Live-in/live-out variable sets per block (sorted VarId vectors,
/// indexed by block id - 1).
struct LivenessInfo {
  std::vector<std::vector<VarId>> LiveIn;
  std::vector<std::vector<VarId>> LiveOut;

  bool isLiveIn(BlockId Block, VarId Var) const;
  bool isLiveOut(BlockId Block, VarId Var) const;
};

/// Computes liveness for \p F. Call arguments count as uses; call
/// results and read targets as defs; branch conditions and return values
/// as block-level uses.
LivenessInfo computeLiveness(const Function &F);

} // namespace twpp

#endif // TWPP_IR_LIVENESS_H
