//===- ir/Ir.cpp - Mini CFG-based intermediate representation -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include <algorithm>

using namespace twpp;

VarId Module::internVar(const std::string &Name) {
  for (VarId V = 0; V < VarNames.size(); ++V)
    if (VarNames[V] == Name)
      return V;
  VarNames.push_back(Name);
  return static_cast<VarId>(VarNames.size() - 1);
}

const Function *Module::findFunction(const std::string &Name) const {
  for (const Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::string Module::varName(VarId Var) const {
  if (Var < VarNames.size())
    return VarNames[Var];
  return "v" + std::to_string(Var);
}

void twpp::collectExprUses(const Function &F, uint32_t ExprIndex,
                           std::vector<VarId> &Uses) {
  const Expr &E = F.Exprs[ExprIndex];
  switch (E.Kind) {
  case ExprKind::Const:
    return;
  case ExprKind::Var:
    Uses.push_back(E.Var);
    return;
  case ExprKind::Not:
  case ExprKind::Neg:
    collectExprUses(F, E.Lhs, Uses);
    return;
  default:
    collectExprUses(F, E.Lhs, Uses);
    collectExprUses(F, E.Rhs, Uses);
    return;
  }
}

std::vector<VarId> twpp::stmtUses(const Function &F, const Stmt &S) {
  std::vector<VarId> Uses;
  switch (S.StmtKind) {
  case Stmt::Kind::Assign:
  case Stmt::Kind::Print:
    collectExprUses(F, S.ExprIndex, Uses);
    break;
  case Stmt::Kind::Read:
    break;
  case Stmt::Kind::Call:
    for (uint32_t Arg : S.Args)
      collectExprUses(F, Arg, Uses);
    break;
  }
  std::sort(Uses.begin(), Uses.end());
  Uses.erase(std::unique(Uses.begin(), Uses.end()), Uses.end());
  return Uses;
}

CfgStats twpp::staticCfgStats(const Function &F) {
  CfgStats Stats;
  Stats.Nodes = F.Blocks.size();
  for (const BasicBlock &Block : F.Blocks)
    Stats.Edges += Block.successors().size();
  return Stats;
}

bool twpp::verifyFunction(const Function &F, const Module &M) {
  if (F.Blocks.empty())
    return false;
  auto ExprOk = [&F](uint32_t Index) { return Index < F.Exprs.size(); };
  for (const Expr &E : F.Exprs) {
    bool Binary = E.Kind != ExprKind::Const && E.Kind != ExprKind::Var &&
                  E.Kind != ExprKind::Not && E.Kind != ExprKind::Neg;
    bool Unary = E.Kind == ExprKind::Not || E.Kind == ExprKind::Neg;
    if ((Binary || Unary) && !ExprOk(E.Lhs))
      return false;
    if (Binary && !ExprOk(E.Rhs))
      return false;
  }
  for (const BasicBlock &Block : F.Blocks) {
    for (const Stmt &S : Block.Stmts) {
      switch (S.StmtKind) {
      case Stmt::Kind::Assign:
      case Stmt::Kind::Print:
        if (!ExprOk(S.ExprIndex))
          return false;
        break;
      case Stmt::Kind::Read:
        break;
      case Stmt::Kind::Call:
        if (S.Callee >= M.Functions.size())
          return false;
        for (uint32_t Arg : S.Args)
          if (!ExprOk(Arg))
            return false;
        break;
      }
    }
    for (BlockId Succ : Block.successors())
      if (Succ == 0 || Succ > F.Blocks.size())
        return false;
    if (Block.Term == BasicBlock::Terminator::Branch && !ExprOk(Block.CondExpr))
      return false;
    if (Block.Term == BasicBlock::Terminator::Return && Block.HasRetValue &&
        !ExprOk(Block.RetExpr))
      return false;
  }
  return true;
}

bool twpp::verifyModule(const Module &M) {
  if (M.Functions.empty() || M.MainId >= M.Functions.size())
    return false;
  for (size_t I = 0; I < M.Functions.size(); ++I) {
    if (M.Functions[I].Id != I)
      return false;
    if (!verifyFunction(M.Functions[I], M))
      return false;
  }
  return true;
}
