//===- ir/IrBuilder.h - Convenience builders for the mini IR ----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic construction helpers for ir::Module, used by tests, the
/// worked paper examples (Figures 9, 10, 12), and the lang frontend's
/// lowering.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_IR_IRBUILDER_H
#define TWPP_IR_IRBUILDER_H

#include "ir/Ir.h"

#include <cassert>
#include <string>

namespace twpp {

/// Builds one function inside a module. Blocks are created with newBlock()
/// (1-based ids, creation order) and filled through the statement helpers.
class FunctionBuilder {
public:
  FunctionBuilder(Module &M, std::string Name) : M(M) {
    FunctionIndex = static_cast<FunctionId>(M.Functions.size());
    M.Functions.emplace_back();
    function().Name = std::move(Name);
    function().Id = FunctionIndex;
  }

  FunctionId id() const { return FunctionIndex; }

  /// Declares a parameter (evaluated left to right at call sites).
  VarId param(const std::string &Name) {
    VarId Var = M.internVar(Name);
    function().Params.push_back(Var);
    return Var;
  }

  /// Interns a variable name.
  VarId var(const std::string &Name) { return M.internVar(Name); }

  /// Creates a new empty block and returns its 1-based id.
  BlockId newBlock() {
    function().Blocks.emplace_back();
    return static_cast<BlockId>(function().Blocks.size());
  }

  // --- Expression pool -----------------------------------------------

  uint32_t constant(int64_t Value) {
    Expr E;
    E.Kind = ExprKind::Const;
    E.Value = Value;
    return addExpr(E);
  }

  uint32_t varRef(VarId Var) {
    Expr E;
    E.Kind = ExprKind::Var;
    E.Var = Var;
    return addExpr(E);
  }

  uint32_t binary(ExprKind Kind, uint32_t Lhs, uint32_t Rhs) {
    assert(Kind != ExprKind::Const && Kind != ExprKind::Var &&
           Kind != ExprKind::Not && Kind != ExprKind::Neg &&
           "binary() requires a binary operator");
    Expr E;
    E.Kind = Kind;
    E.Lhs = Lhs;
    E.Rhs = Rhs;
    return addExpr(E);
  }

  uint32_t unary(ExprKind Kind, uint32_t Operand) {
    assert((Kind == ExprKind::Not || Kind == ExprKind::Neg) &&
           "unary() requires a unary operator");
    Expr E;
    E.Kind = Kind;
    E.Lhs = Operand;
    return addExpr(E);
  }

  // --- Statements ------------------------------------------------------

  void assign(BlockId Block, VarId Target, uint32_t ExprIndex) {
    Stmt S;
    S.StmtKind = Stmt::Kind::Assign;
    S.Target = Target;
    S.ExprIndex = ExprIndex;
    function().block(Block).Stmts.push_back(std::move(S));
  }

  void read(BlockId Block, VarId Target) {
    Stmt S;
    S.StmtKind = Stmt::Kind::Read;
    S.Target = Target;
    function().block(Block).Stmts.push_back(std::move(S));
  }

  void print(BlockId Block, uint32_t ExprIndex) {
    Stmt S;
    S.StmtKind = Stmt::Kind::Print;
    S.ExprIndex = ExprIndex;
    function().block(Block).Stmts.push_back(std::move(S));
  }

  void call(BlockId Block, FunctionId Callee, std::vector<uint32_t> Args,
            VarId Target = NoVar) {
    Stmt S;
    S.StmtKind = Stmt::Kind::Call;
    S.Callee = Callee;
    S.Args = std::move(Args);
    S.Target = Target;
    function().block(Block).Stmts.push_back(std::move(S));
  }

  // --- Terminators ------------------------------------------------------

  void jump(BlockId From, BlockId To) {
    BasicBlock &B = function().block(From);
    B.Term = BasicBlock::Terminator::Jump;
    B.TrueSucc = To;
  }

  void branch(BlockId From, uint32_t CondExpr, BlockId TrueTo,
              BlockId FalseTo) {
    BasicBlock &B = function().block(From);
    B.Term = BasicBlock::Terminator::Branch;
    B.CondExpr = CondExpr;
    B.TrueSucc = TrueTo;
    B.FalseSucc = FalseTo;
  }

  void ret(BlockId From) {
    BasicBlock &B = function().block(From);
    B.Term = BasicBlock::Terminator::Return;
    B.HasRetValue = false;
  }

  void retValue(BlockId From, uint32_t ExprIndex) {
    BasicBlock &B = function().block(From);
    B.Term = BasicBlock::Terminator::Return;
    B.HasRetValue = true;
    B.RetExpr = ExprIndex;
  }

  Function &function() { return M.Functions[FunctionIndex]; }

private:
  uint32_t addExpr(const Expr &E) {
    function().Exprs.push_back(E);
    return static_cast<uint32_t>(function().Exprs.size() - 1);
  }

  Module &M;
  FunctionId FunctionIndex;
};

} // namespace twpp

#endif // TWPP_IR_IRBUILDER_H
