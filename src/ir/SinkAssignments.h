//===- ir/SinkAssignments.h - PDE-style assignment sinking ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial dead code elimination in the form the paper's Figure 12 uses
/// to motivate dynamic currency determination: a trailing assignment
/// whose value is only needed on one arm of the following branch is sunk
/// into that arm, so executions taking the other arm skip it. The
/// transformation records every move so a debugger can build the
/// CurrencyProblem (original vs optimized definition placement) for any
/// affected variable.
///
/// Sinking conditions for a trailing `x = e` in block B ending in a
/// two-way branch with arms S1/S2:
///   * x is not read later in B (branch condition included);
///   * x is live into exactly one arm and dead into the other;
///   * the receiving arm has B as its only predecessor;
///   * e is pure (all mini-IR expressions are) — trailing position means
///     nothing re-defines e's operands before the arm's entry.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_IR_SINKASSIGNMENTS_H
#define TWPP_IR_SINKASSIGNMENTS_H

#include "ir/Ir.h"

#include <vector>

namespace twpp {

/// One assignment relocated by the pass. Ordinals are statement indices
/// within their block at the time of the move.
struct MovedAssignment {
  VarId Var = NoVar;
  BlockId FromBlock = 0;
  uint32_t FromOrdinal = 0;
  BlockId ToBlock = 0; ///< Moved to the front of this block.
};

/// Result of the pass: the transformed function, the move log, and the
/// origin of every surviving statement (original block/ordinal), which
/// lets tools map optimized definitions back to source positions.
struct SinkResult {
  Function Optimized;
  std::vector<MovedAssignment> Moves;
  /// Origins[b][i] = original (block, ordinal) of Optimized block b+1's
  /// i-th statement.
  std::vector<std::vector<std::pair<BlockId, uint32_t>>> Origins;
};

/// Applies assignment sinking to a copy of \p F.
SinkResult sinkPartiallyDeadAssignments(const Function &F);

} // namespace twpp

#endif // TWPP_IR_SINKASSIGNMENTS_H
