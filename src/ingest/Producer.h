//===- ingest/Producer.h - Replay producer for twpp-wire-v1 ----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The send side of the wire protocol: takes a RawTrace (in production
/// this would be the instrumented process's live event stream; here it is
/// a deterministic workload replay) and writes it to a file descriptor as
/// a Hello / Events* / Bye frame sequence.
///
/// The producer is also the chaos instrument: before each frame hits the
/// wire it consults the TWPP_FAULT seam's wire class
/// (support/FaultInjection.h) and applies the selected mutation —
/// corrupt (flip a payload byte), truncate (send a prefix), duplicate
/// (send twice), reorder (swap with the next frame), stall (sleep before
/// sending). Mutations are applied to the *bytes on the wire* only; the
/// producer's own sequence numbering stays correct, which is exactly the
/// failure model of a flaky transport under a correct producer.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_INGEST_PRODUCER_H
#define TWPP_INGEST_PRODUCER_H

#include "trace/Events.h"

#include <cstdint>
#include <string>

namespace twpp::ingest {

/// Knobs of one replay producer.
struct ProducerOptions {
  uint32_t ProducerId = 0;
  /// Events per Events frame. Bigger batches amortize syscalls and
  /// framing; the throughput bench runs at 4096.
  size_t BatchEvents = 4096;
  /// Sleep applied when a wire:stall fault fires on a frame.
  unsigned StallMs = 20;
};

/// Cumulative wire mutations one producer applied (all fault-driven).
struct ProducerWireStats {
  uint64_t FramesSent = 0;
  uint64_t BytesSent = 0;
  uint64_t Corrupted = 0;
  uint64_t Truncated = 0;
  uint64_t Duplicated = 0;
  uint64_t Reordered = 0;
  uint64_t Stalls = 0;
};

/// Streams \p Trace over \p Fd as twpp-wire-v1 frames (Hello, Events
/// batches, Bye), applying any armed wire faults. \returns false when a
/// write on \p Fd fails terminally (receiver gone); short writes and
/// EINTR are retried. \p Stats, when given, receives the mutation tally.
bool sendTraceOverFd(int Fd, const RawTrace &Trace,
                     const ProducerOptions &Options,
                     ProducerWireStats *Stats = nullptr);

/// Connects to the Unix-domain listening socket at \p Path. \returns the
/// connected fd or -1 (with \p Error set) on failure. Retries briefly so
/// a producer racing the server's bind() does not flake.
int connectUnixSocket(const std::string &Path, std::string *Error);

} // namespace twpp::ingest

#endif // TWPP_INGEST_PRODUCER_H
