//===- ingest/Ingest.cpp - Multi-producer ingestion frontend --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
//
// Threading model: one reader thread per connection plus one dispatcher.
// Readers own the fd, the frame decoder and the per-producer sequencer
// (under that producer's SeqMutex); they hand in-order frames — already
// payload-decoded — to the bounded queue. The dispatcher owns every
// compactor and journal writer, so all mutation of recoverable state is
// single-threaded and checkpoints are consistent by construction.
//
// Accounting model: sequence-window outcomes (duplicate, reordered,
// replayed, shed) are counted where they are decided, on the reader.
// Everything that must survive a crash (frames/events applied, gaps,
// invalid payloads, handshake flags) is counted on the dispatcher from
// the in-order stream itself — a gap is a jump in applied sequence
// numbers — and rides inside every checkpoint record.
//
//===----------------------------------------------------------------------===//

#include "ingest/Ingest.h"

#include "ingest/Wire.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/FaultInjection.h"
#include "wpp/Archive.h"
#include "wpp/Journal.h"
#include "wpp/Streaming.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <new>
#include <thread>

#if !defined(_WIN32)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace twpp;
using namespace twpp::ingest;

const char *ingest::backpressurePolicyName(BackpressurePolicy Policy) {
  return Policy == BackpressurePolicy::Block ? "block" : "shed";
}

bool ingest::parseBackpressurePolicy(const std::string &Text,
                                     BackpressurePolicy &Policy) {
  if (Text == "block") {
    Policy = BackpressurePolicy::Block;
    return true;
  }
  if (Text == "shed") {
    Policy = BackpressurePolicy::Shed;
    return true;
  }
  return false;
}

namespace {

constexpr uint32_t CheckpointVersion = 1;
constexpr uint8_t FlagSawHello = 1u << 0;
constexpr uint8_t FlagSawBye = 1u << 1;
constexpr uint8_t FlagHasSnapshot = 1u << 2;

/// The durable slice of a producer's dispatcher state — what a
/// checkpoint record carries besides the compactor snapshot.
struct CheckpointImage {
  uint32_t ProducerId = 0;
  uint32_t FunctionCount = 0;
  bool SawHello = false;
  bool SawBye = false;
  uint64_t NextSeq = 0; ///< Sequence the dispatcher expects next.
  uint64_t FramesApplied = 0;
  uint64_t EventsApplied = 0;
  uint64_t EventsDropped = 0;
  uint64_t EventsDeclared = 0;
  uint64_t FramesInvalid = 0;
  uint64_t SeqGaps = 0;
  uint64_t CheckpointsWritten = 0;
  std::vector<uint8_t> Snapshot; ///< Empty when no compactor existed.
  bool HasSnapshot = false;
};

std::vector<uint8_t> encodeCheckpoint(const CheckpointImage &Image) {
  ByteWriter W;
  W.writeFixed32(CheckpointVersion);
  W.writeFixed32(Image.ProducerId);
  W.writeFixed32(Image.FunctionCount);
  uint8_t Flags = 0;
  if (Image.SawHello)
    Flags |= FlagSawHello;
  if (Image.SawBye)
    Flags |= FlagSawBye;
  if (Image.HasSnapshot)
    Flags |= FlagHasSnapshot;
  W.writeByte(Flags);
  W.writeFixed64(Image.NextSeq);
  W.writeFixed64(Image.FramesApplied);
  W.writeFixed64(Image.EventsApplied);
  W.writeFixed64(Image.EventsDropped);
  W.writeFixed64(Image.EventsDeclared);
  W.writeFixed64(Image.FramesInvalid);
  W.writeFixed64(Image.SeqGaps);
  W.writeFixed64(Image.CheckpointsWritten);
  W.writeVarUint(Image.Snapshot.size());
  W.writeBytes(Image.Snapshot.data(), Image.Snapshot.size());
  return W.take();
}

bool decodeCheckpoint(const std::vector<uint8_t> &Payload,
                      CheckpointImage &Image) {
  ByteReader R(Payload);
  if (R.readFixed32() != CheckpointVersion)
    return false;
  Image.ProducerId = R.readFixed32();
  Image.FunctionCount = R.readFixed32();
  uint8_t Flags = R.readByte();
  Image.SawHello = (Flags & FlagSawHello) != 0;
  Image.SawBye = (Flags & FlagSawBye) != 0;
  Image.HasSnapshot = (Flags & FlagHasSnapshot) != 0;
  Image.NextSeq = R.readFixed64();
  Image.FramesApplied = R.readFixed64();
  Image.EventsApplied = R.readFixed64();
  Image.EventsDropped = R.readFixed64();
  Image.EventsDeclared = R.readFixed64();
  Image.FramesInvalid = R.readFixed64();
  Image.SeqGaps = R.readFixed64();
  Image.CheckpointsWritten = R.readFixed64();
  uint64_t SnapshotSize = R.readVarUint();
  if (R.hasError() || SnapshotSize != R.remaining())
    return false;
  Image.Snapshot.resize(static_cast<size_t>(SnapshotSize));
  R.readBytes(Image.Snapshot.data(), Image.Snapshot.size());
  return R.valid() && R.atEnd();
}

/// Per-producer reorder window. Owned by the reader side, guarded by the
/// producer's SeqMutex. Frames leave in strict sequence order; everything
/// the window decides (duplicate, reordered, replayed) is counted here.
struct SequenceTracker {
  uint64_t Expected = 0;
  size_t Window = 16;
  /// True after a journal resume: below-cursor frames are the producer's
  /// re-sent prefix, not wire damage.
  bool ResumedBase = false;
  std::map<uint64_t, std::vector<uint8_t>> Pending;

  uint64_t Duplicates = 0;
  uint64_t Reordered = 0;
  uint64_t Replayed = 0;

  /// Offers one frame; appends frames now deliverable in order to
  /// \p Ready as (sequence, payload) pairs.
  void push(uint64_t Seq, std::vector<uint8_t> Payload,
            std::vector<std::pair<uint64_t, std::vector<uint8_t>>> &Ready) {
    if (Seq < Expected) {
      if (ResumedBase)
        ++Replayed;
      else
        ++Duplicates;
      return;
    }
    if (Seq == Expected) {
      Ready.emplace_back(Seq, std::move(Payload));
      ++Expected;
      drainConsecutive(Ready);
      return;
    }
    // Ahead of the cursor: buffer it. A repeat of a buffered sequence is
    // a duplicate; a fresh one counts as reordered the moment it has to
    // wait.
    if (!Pending.emplace(Seq, std::move(Payload)).second) {
      ++Duplicates;
      return;
    }
    ++Reordered;
    // Window overflow: the hole is not going to fill in time. Jump the
    // cursor to the oldest buffered frame; the dispatcher sees the
    // sequence jump and accounts the gap.
    while (Pending.size() > Window) {
      auto First = Pending.begin();
      Expected = First->first + 1;
      Ready.emplace_back(First->first, std::move(First->second));
      Pending.erase(First);
      drainConsecutive(Ready);
    }
  }

  /// End of stream: whatever is still buffered is as in-order as it will
  /// ever get. Flush ascending; holes become visible as sequence jumps.
  void
  finish(std::vector<std::pair<uint64_t, std::vector<uint8_t>>> &Ready) {
    for (auto &Entry : Pending)
      Ready.emplace_back(Entry.first, std::move(Entry.second));
    if (!Pending.empty())
      Expected = Pending.rbegin()->first + 1;
    Pending.clear();
  }

private:
  void drainConsecutive(
      std::vector<std::pair<uint64_t, std::vector<uint8_t>>> &Ready) {
    auto It = Pending.begin();
    while (It != Pending.end() && It->first == Expected) {
      Ready.emplace_back(It->first, std::move(It->second));
      ++Expected;
      It = Pending.erase(It);
    }
  }
};

/// Everything known about one producer id. Reader threads create it (and
/// run the journal-resume scan) on first contact; the sequencing side is
/// guarded by SeqMutex, the dispatcher side is dispatcher-only.
struct ProducerState {
  uint32_t Id = 0;

  // --- Reader side (guarded by SeqMutex) ---
  std::mutex SeqMutex;
  SequenceTracker Sequencer;
  uint64_t ShedFrames = 0;
  uint64_t ShedBytes = 0;

  // --- Dispatcher side ---
  std::unique_ptr<StreamingCompactor> Compactor;
  JournalWriter Journal;
  bool JournalOpen = false;
  uint32_t FunctionCount = 0;
  bool SawHello = false;
  bool SawBye = false;
  bool Resumed = false;
  uint64_t NextSeq = 0; ///< Next sequence the dispatcher expects.
  uint64_t FramesApplied = 0;
  uint64_t FramesSinceCheckpoint = 0;
  uint64_t EventsApplied = 0;
  uint64_t EventsDropped = 0;
  uint64_t EventsDeclared = 0;
  uint64_t FramesInvalid = 0;
  uint64_t SeqGaps = 0;
  uint64_t CheckpointsWritten = 0;
  uint64_t CheckpointFailures = 0;
};

/// One in-order frame travelling from a reader to the dispatcher.
struct QueueItem {
  ProducerState *State = nullptr;
  uint64_t Seq = 0;
  bool Invalid = false; ///< CRC-valid but the payload would not decode.
  WirePayload Payload;
};

struct Connection {
  int Fd = -1;
  std::thread Thread;
};

} // namespace

struct IngestServer::Impl {
  IngestConfig Config;
  std::vector<Connection> Connections;
  int ListenFd = -1;
  std::string ListenPath;
  bool RunCalled = false;

  // Producer registry: readers create states on first contact.
  std::mutex RegistryMutex;
  std::map<uint32_t, std::unique_ptr<ProducerState>> Producers;

  // Bounded queue between readers and the dispatcher.
  std::mutex QueueMutex;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::deque<QueueItem> Queue;
  bool DrainComplete = false; ///< Readers joined, sequencers flushed.
  std::atomic<bool> Stop{false};

  // Crash hook (durability tests / --crash-after-checkpoints).
  uint64_t CrashAfterCheckpoints = 0;
  std::function<void()> CrashHook;
  uint64_t TotalCheckpoints = 0;

  // Global accounting.
  std::atomic<uint64_t> Frames{0};
  std::atomic<uint64_t> FrameBytes{0};
  std::atomic<uint64_t> CorruptFrames{0};
  std::atomic<uint64_t> ResyncBytes{0};
  std::atomic<uint64_t> ReadRetries{0};
  std::atomic<uint64_t> IdleTimeouts{0};
  std::atomic<uint64_t> BackpressureWaits{0};
  std::atomic<uint64_t> QueueDepthPeak{0};
  std::atomic<uint64_t> Resumes{0};

  bool Aborted = false; ///< Set by the dispatcher when the crash hook ran.

  ~Impl() {
#if !defined(_WIN32)
    for (Connection &C : Connections)
      if (C.Fd >= 0)
        ::close(C.Fd);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      if (!ListenPath.empty())
        ::unlink(ListenPath.c_str());
    }
#endif
  }

  std::string journalPath(uint32_t ProducerId) const {
    return Config.JournalPrefix + ".p" + std::to_string(ProducerId) +
           ".twppj";
  }

  std::string archivePath(uint32_t ProducerId) const {
    return Config.OutPrefix + ".p" + std::to_string(ProducerId) + ".twppa";
  }

  StreamingConfig compactorConfig() const {
    StreamingConfig SC;
    SC.MemoryBudgetBytes = Config.MemoryBudgetBytes;
    return SC;
  }

  /// Looks up (or creates, running the resume scan) the state of
  /// \p ProducerId. Thread-safe; called by readers.
  ProducerState *producer(uint32_t ProducerId) {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    auto It = Producers.find(ProducerId);
    if (It != Producers.end())
      return It->second.get();
    auto State = std::make_unique<ProducerState>();
    State->Id = ProducerId;
    State->Sequencer.Window = std::max<size_t>(1, Config.ReorderWindow);
    if (!Config.JournalPrefix.empty()) {
      if (Config.Resume)
        tryResume(*State);
      // Append when resuming (keep the history we just scanned),
      // truncate otherwise so a reused prefix cannot replay stale state.
      IoError Err =
          State->Journal.open(journalPath(ProducerId), State->Resumed);
      State->JournalOpen = Err.ok();
      if (!Err.ok())
        ++State->CheckpointFailures;
    }
    ProducerState *Raw = State.get();
    Producers.emplace(ProducerId, std::move(State));
    return Raw;
  }

  /// Scans the producer's journal and restores the last checkpoint into
  /// \p State. Any damage or absence just means a fresh start — resume
  /// never fails harder than "replay everything".
  void tryResume(ProducerState &State) {
    std::vector<uint8_t> Bytes;
    {
      // The scan read is setup, not the path under test: a CI-wide io
      // fault sweep must not turn "resume" into "silently start over".
      fault::ScopedFaultSuspend Suspend;
      if (!readFileBytes(journalPath(State.Id), Bytes).ok())
        return;
    }
    JournalScan Scan = scanJournal(Bytes);
    if (Scan.LastPayload.empty())
      return;
    CheckpointImage Image;
    if (!decodeCheckpoint(Scan.LastPayload, Image) ||
        Image.ProducerId != State.Id)
      return;
    if (Image.HasSnapshot) {
      auto Compactor = std::make_unique<StreamingCompactor>(
          Image.FunctionCount, compactorConfig());
      if (!Compactor->restoreState(Image.Snapshot))
        return;
      State.Compactor = std::move(Compactor);
    }
    State.FunctionCount = Image.FunctionCount;
    State.SawHello = Image.SawHello;
    State.SawBye = Image.SawBye;
    State.NextSeq = Image.NextSeq;
    State.FramesApplied = Image.FramesApplied;
    State.EventsApplied = Image.EventsApplied;
    State.EventsDropped = Image.EventsDropped;
    State.EventsDeclared = Image.EventsDeclared;
    State.FramesInvalid = Image.FramesInvalid;
    State.SeqGaps = Image.SeqGaps;
    State.CheckpointsWritten = Image.CheckpointsWritten;
    State.Resumed = true;
    State.Sequencer.Expected = Image.NextSeq;
    State.Sequencer.ResumedBase = true;
    Resumes.fetch_add(1, std::memory_order_relaxed);
  }

  /// Enqueues one in-order frame, honouring the backpressure policy.
  /// Called with the producer's SeqMutex held (keeps per-producer order
  /// atomic even with several connections for one id).
  void enqueue(ProducerState &State, uint64_t Seq,
               std::vector<uint8_t> PayloadBytes) {
    QueueItem Item;
    Item.State = &State;
    Item.Seq = Seq;
    if (!decodeWirePayload(ByteSpan(PayloadBytes), Item.Payload))
      Item.Invalid = true;

    std::unique_lock<std::mutex> Lock(QueueMutex);
    if (Queue.size() >= Config.QueueCapacity) {
      if (Config.Policy == BackpressurePolicy::Shed) {
        State.ShedFrames += 1;
        State.ShedBytes += PayloadBytes.size() + WireHeaderSize;
        return;
      }
      BackpressureWaits.fetch_add(1, std::memory_order_relaxed);
      NotFull.wait(Lock, [&] {
        return Queue.size() < Config.QueueCapacity ||
               Stop.load(std::memory_order_relaxed);
      });
      if (Stop.load(std::memory_order_relaxed))
        return;
    }
    Queue.push_back(std::move(Item));
    uint64_t Depth = Queue.size();
    uint64_t Peak = QueueDepthPeak.load(std::memory_order_relaxed);
    while (Depth > Peak &&
           !QueueDepthPeak.compare_exchange_weak(Peak, Depth,
                                                 std::memory_order_relaxed))
      ;
    Lock.unlock();
    NotEmpty.notify_one();
  }

  /// Pulls every decodable frame out of \p Decoder, sequences it, and
  /// queues whatever became deliverable.
  void drainDecoder(FrameDecoder &Decoder) {
    WireFrame Frame;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> Ready;
    while (Decoder.next(Frame)) {
      ProducerState *State = producer(Frame.ProducerId);
      Ready.clear();
      std::lock_guard<std::mutex> Lock(State->SeqMutex);
      State->Sequencer.push(Frame.Sequence, std::move(Frame.Payload),
                            Ready);
      for (auto &Entry : Ready)
        enqueue(*State, Entry.first, std::move(Entry.second));
      if (Stop.load(std::memory_order_relaxed))
        return;
    }
  }

  /// Reader thread body: poll/read/decode until EOF, idle timeout,
  /// persistent error or stop.
  void readerLoop(Connection &C) {
#if !defined(_WIN32)
    FrameDecoder Decoder;
    std::vector<uint8_t> Chunk(std::max<size_t>(1, Config.ReadChunkBytes));
    unsigned Retries = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      pollfd Pfd{};
      Pfd.fd = C.Fd;
      Pfd.events = POLLIN;
      int R = ::poll(&Pfd, 1, static_cast<int>(Config.IdleTimeoutMs));
      if (Stop.load(std::memory_order_relaxed))
        break;
      if (R == 0) {
        // No bytes for the whole idle window: the producer is gone or
        // wedged. Close our end; its producers finish unclean unless
        // they already said Bye.
        IdleTimeouts.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (R < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      bool Injected = fault::shouldFailIo("read");
      ssize_t N =
          Injected ? -1 : ::read(C.Fd, Chunk.data(), Chunk.size());
      int Err = Injected ? EIO : errno;
      if (N > 0) {
        Retries = 0;
        Decoder.feed(Chunk.data(), static_cast<size_t>(N));
        drainDecoder(Decoder);
        continue;
      }
      if (N == 0)
        break; // EOF: orderly close.
      if (Err == EINTR || Err == EAGAIN || Err == EWOULDBLOCK)
        continue;
      if (Retries < Config.ReadRetryLimit) {
        // Transient read failure (or an injected one): back off and
        // retry before declaring the connection dead.
        ++Retries;
        ReadRetries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            Config.RetryBackoffMs << (Retries - 1)));
        continue;
      }
      break; // Persistent failure: treat as disconnect.
    }
    Decoder.finish();
    drainDecoder(Decoder);
    Frames.fetch_add(Decoder.stats().Frames, std::memory_order_relaxed);
    FrameBytes.fetch_add(Decoder.stats().FrameBytes,
                         std::memory_order_relaxed);
    CorruptFrames.fetch_add(Decoder.stats().CorruptFrames,
                            std::memory_order_relaxed);
    ResyncBytes.fetch_add(Decoder.stats().ResyncBytes,
                          std::memory_order_relaxed);
    ::close(C.Fd);
    C.Fd = -1;
#else
    (void)C;
#endif
  }

  /// Applies one in-order frame to its producer. Dispatcher thread only.
  void applyItem(QueueItem &Item) {
    ProducerState &P = *Item.State;
    if (Item.Seq > P.NextSeq)
      P.SeqGaps += Item.Seq - P.NextSeq;
    // Below-cursor can only happen on a resumed run whose journal was
    // behind the sequencer flush; drop, the state already covers it.
    if (Item.Seq < P.NextSeq)
      return;
    P.NextSeq = Item.Seq + 1;
    P.FramesApplied += 1;
    P.FramesSinceCheckpoint += 1;

    if (Item.Invalid) {
      P.FramesInvalid += 1;
      return;
    }
    try {
      switch (Item.Payload.Kind) {
      case WireFrameKind::Hello:
        if (P.Compactor) {
          // A second Hello (or one disagreeing with the resumed state)
          // cannot be honoured without discarding data; count it.
          if (Item.Payload.FunctionCount != P.FunctionCount)
            P.FramesInvalid += 1;
        } else if (Item.Payload.FunctionCount > Config.MaxFunctionCount) {
          P.FramesInvalid += 1;
        } else {
          P.Compactor = std::make_unique<StreamingCompactor>(
              Item.Payload.FunctionCount, compactorConfig());
          P.FunctionCount = Item.Payload.FunctionCount;
          P.SawHello = true;
        }
        break;
      case WireFrameKind::Events:
        if (!P.Compactor) {
          // The Hello fell into a gap; without the function universe the
          // events cannot be folded in. Count, don't crash.
          P.EventsDropped += Item.Payload.Events.size();
          break;
        }
        for (const TraceEvent &E : Item.Payload.Events) {
          // The compactor's preconditions are asserts (compiled out in
          // release); the wire is untrusted, so guard here and account.
          switch (E.EventKind) {
          case TraceEvent::Kind::Enter:
            if (E.Id >= P.FunctionCount) {
              P.EventsDropped += 1;
              continue;
            }
            P.Compactor->onEnter(E.Id);
            break;
          case TraceEvent::Kind::Block:
            if (P.Compactor->openFrames() == 0) {
              P.EventsDropped += 1;
              continue;
            }
            P.Compactor->onBlock(E.Id);
            break;
          case TraceEvent::Kind::Exit:
            if (P.Compactor->openFrames() == 0) {
              P.EventsDropped += 1;
              continue;
            }
            P.Compactor->onExit();
            break;
          }
          P.EventsApplied += 1;
        }
        break;
      case WireFrameKind::Bye:
        P.EventsDeclared = Item.Payload.TotalEvents;
        P.SawBye = true;
        break;
      }
    } catch (const std::bad_alloc &) {
      // Allocation pressure while folding a frame in: the frame is lost
      // but the server is not.
      P.FramesInvalid += 1;
    }

    maybeCheckpoint(P);
  }

  void maybeCheckpoint(ProducerState &P) {
    if (!P.JournalOpen || Config.CheckpointIntervalFrames == 0 ||
        P.FramesSinceCheckpoint < Config.CheckpointIntervalFrames)
      return;
    writeCheckpoint(P);
  }

  void writeCheckpoint(ProducerState &P) {
    P.FramesSinceCheckpoint = 0;
    if (!P.JournalOpen)
      return;
    try {
      CheckpointImage Image;
      Image.ProducerId = P.Id;
      Image.FunctionCount = P.FunctionCount;
      Image.SawHello = P.SawHello;
      Image.SawBye = P.SawBye;
      Image.NextSeq = P.NextSeq;
      Image.FramesApplied = P.FramesApplied;
      Image.EventsApplied = P.EventsApplied;
      Image.EventsDropped = P.EventsDropped;
      Image.EventsDeclared = P.EventsDeclared;
      Image.FramesInvalid = P.FramesInvalid;
      Image.SeqGaps = P.SeqGaps;
      Image.CheckpointsWritten = P.CheckpointsWritten;
      if (P.Compactor) {
        Image.Snapshot = P.Compactor->snapshotState();
        Image.HasSnapshot = true;
      }
      IoError Err = P.Journal.append(encodeCheckpoint(Image));
      if (!Err.ok()) {
        P.CheckpointFailures += 1;
        return;
      }
    } catch (const std::bad_alloc &) {
      P.CheckpointFailures += 1;
      return;
    }
    P.CheckpointsWritten += 1;
    ++TotalCheckpoints;
    if (CrashAfterCheckpoints != 0 &&
        TotalCheckpoints == CrashAfterCheckpoints && CrashHook) {
      // The hook usually never returns (raise(SIGKILL)). If it does —
      // in-process durability tests — stop as a crash would: no drain,
      // no finalize, journals as they are.
      CrashHook();
      Aborted = true;
      Stop.store(true, std::memory_order_relaxed);
      NotFull.notify_all();
      NotEmpty.notify_all();
    }
  }

  void dispatcherLoop() {
    for (;;) {
      QueueItem Item;
      {
        std::unique_lock<std::mutex> Lock(QueueMutex);
        NotEmpty.wait(Lock, [&] {
          return !Queue.empty() || DrainComplete ||
                 Stop.load(std::memory_order_relaxed);
        });
        if (Stop.load(std::memory_order_relaxed))
          return;
        if (Queue.empty()) {
          if (DrainComplete)
            return;
          continue;
        }
        Item = std::move(Queue.front());
        Queue.pop_front();
      }
      NotFull.notify_one();
      applyItem(Item);
    }
  }

  /// After readers joined: flush every sequencer's reorder window into
  /// the queue (holes become sequence jumps), then let the dispatcher
  /// drain to empty.
  void flushSequencers() {
    std::vector<ProducerState *> States;
    {
      std::lock_guard<std::mutex> Lock(RegistryMutex);
      for (auto &Entry : Producers)
        States.push_back(Entry.second.get());
    }
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> Ready;
    for (ProducerState *State : States) {
      Ready.clear();
      std::lock_guard<std::mutex> Lock(State->SeqMutex);
      State->Sequencer.finish(Ready);
      for (auto &Entry : Ready)
        enqueue(*State, Entry.first, std::move(Entry.second));
    }
  }

  /// Drain is done: balance, compact and write out every producer.
  void finalizeProducer(ProducerState &P, ProducerReport &Report) {
    Report.ProducerId = P.Id;
    Report.FunctionCount = P.FunctionCount;
    Report.SawHello = P.SawHello;
    Report.SawBye = P.SawBye;
    Report.Resumed = P.Resumed;
    Report.FramesApplied = P.FramesApplied;
    Report.EventsApplied = P.EventsApplied;
    Report.EventsDropped = P.EventsDropped;
    Report.EventsDeclared = P.EventsDeclared;
    Report.FramesInvalid = P.FramesInvalid;
    Report.FramesDuplicate = P.Sequencer.Duplicates;
    Report.FramesReordered = P.Sequencer.Reordered;
    Report.FramesReplayed = P.Sequencer.Replayed;
    Report.SeqGaps = P.SeqGaps;
    Report.ShedFrames = P.ShedFrames;
    Report.ShedBytes = P.ShedBytes;
    Report.CheckpointFailures = P.CheckpointFailures;
    Report.Disconnected = !P.SawBye;

    if (P.Compactor) {
      // An unbalanced stream (disconnect, gap that ate exits) cannot be
      // compacted as-is; close the open calls and say so.
      while (P.Compactor->openFrames() > 0) {
        try {
          P.Compactor->onExit();
        } catch (...) {
          break;
        }
        Report.SynthesizedExits += 1;
      }
      Report.DegradedFrames = P.Compactor->degradedFrames();
      // The stream is complete: one final checkpoint makes a restart
      // after a crash-during-finalize resume cleanly instead of
      // replaying the whole stream.
      if (P.JournalOpen && Config.CheckpointIntervalFrames != 0)
        writeCheckpoint(P);
      Report.CheckpointsWritten = P.CheckpointsWritten;

      if (!Config.OutPrefix.empty()) {
        Report.ArchivePath = archivePath(P.Id);
        try {
          TwppWpp Compacted = P.Compactor->takeCompacted(Config.Parallel);
          IoError Err;
          if (!writeArchiveFile(Report.ArchivePath, Compacted,
                                Config.Parallel, &Err))
            Report.ArchiveError = Err;
        } catch (const std::bad_alloc &) {
          Report.ArchiveError.Status = IoStatus::WriteFailed;
          Report.ArchiveError.Detail =
              Report.ArchivePath + " (out of memory)";
        }
      }
    } else {
      Report.CheckpointsWritten = P.CheckpointsWritten;
    }
    P.Journal.close();
  }
};

IngestServer::IngestServer(const IngestConfig &Config)
    : P(std::make_unique<Impl>()) {
  P->Config = Config;
  if (P->Config.QueueCapacity == 0)
    P->Config.QueueCapacity = 1;
}

IngestServer::~IngestServer() = default;

void IngestServer::addConnection(int Fd) {
  Connection C;
  C.Fd = Fd;
  P->Connections.push_back(std::move(C));
}

void IngestServer::setCrashAfterCheckpoints(uint64_t Checkpoints,
                                            std::function<void()> Hook) {
  P->CrashAfterCheckpoints = Checkpoints;
  P->CrashHook = std::move(Hook);
}

bool IngestServer::listenUnixSocket(const std::string &Path, size_t Expect,
                                    std::string *Error) {
#if defined(_WIN32)
  (void)Path;
  (void)Expect;
  if (Error)
    *Error = "unix sockets unsupported on this platform";
  return false;
#else
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + Path;
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Path.c_str());
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, static_cast<int>(std::max<size_t>(Expect, 1))) != 0) {
    if (Error)
      *Error = std::string("bind/listen ") + Path + ": " +
               std::strerror(errno);
    ::close(Fd);
    return false;
  }
  P->ListenFd = Fd;
  P->ListenPath = Path;
  for (size_t I = 0; I < Expect; ++I) {
    pollfd Pfd{};
    Pfd.fd = Fd;
    Pfd.events = POLLIN;
    int R = ::poll(&Pfd, 1, static_cast<int>(P->Config.IdleTimeoutMs));
    if (R <= 0) {
      if (Error)
        *Error = "accept timed out waiting for producer " +
                 std::to_string(I + 1) + " of " + std::to_string(Expect);
      return false;
    }
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn < 0) {
      if (Error)
        *Error = std::string("accept: ") + std::strerror(errno);
      return false;
    }
    addConnection(Conn);
  }
  return true;
#endif
}

IngestReport IngestServer::run() {
  IngestReport Report;
  if (P->RunCalled) {
    Report.FatalError = "run() called twice";
    return Report;
  }
  P->RunCalled = true;
#if defined(_WIN32)
  Report.FatalError = "ingestion unsupported on this platform";
  return Report;
#else
  auto Start = std::chrono::steady_clock::now();

  for (Connection &C : P->Connections)
    C.Thread = std::thread([this, &C] { P->readerLoop(C); });
  std::thread Dispatcher([this] { P->dispatcherLoop(); });

  for (Connection &C : P->Connections)
    C.Thread.join();
  if (!P->Stop.load(std::memory_order_relaxed))
    P->flushSequencers();
  {
    std::lock_guard<std::mutex> Lock(P->QueueMutex);
    P->DrainComplete = true;
  }
  P->NotEmpty.notify_all();
  Dispatcher.join();

  Report.Aborted = P->Aborted;
  if (!Report.Aborted) {
    std::lock_guard<std::mutex> Lock(P->RegistryMutex);
    for (auto &Entry : P->Producers) {
      ProducerReport PR;
      P->finalizeProducer(*Entry.second, PR);
      Report.Producers.push_back(std::move(PR));
    }
  }

  Report.Frames = P->Frames.load();
  Report.FrameBytes = P->FrameBytes.load();
  Report.CorruptFrames = P->CorruptFrames.load();
  Report.ResyncBytes = P->ResyncBytes.load();
  Report.ReadRetries = P->ReadRetries.load();
  Report.IdleTimeouts = P->IdleTimeouts.load();
  Report.BackpressureWaits = P->BackpressureWaits.load();
  Report.QueueDepthPeak = P->QueueDepthPeak.load();
  for (const ProducerReport &PR : Report.Producers)
    Report.EventsApplied += PR.EventsApplied;
  Report.ElapsedUs =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - Start)
          .count();
  return Report;
#endif
}

IngestReport ingest::runLoopbackIngest(const IngestConfig &Config,
                                       const std::vector<RawTrace> &Traces,
                                       const ProducerOptions &BaseOptions) {
#if defined(_WIN32)
  IngestReport Report;
  Report.FatalError = "ingestion unsupported on this platform";
  return Report;
#else
  IngestServer Server(Config);
  std::vector<std::thread> ProducerThreads;
  std::vector<int> WriteFds;
  for (size_t I = 0; I < Traces.size(); ++I) {
    int Sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0) {
      IngestReport Report;
      Report.FatalError =
          std::string("socketpair: ") + std::strerror(errno);
      for (int Fd : WriteFds)
        ::close(Fd);
      return Report;
    }
    Server.addConnection(Sv[0]);
    WriteFds.push_back(Sv[1]);
  }
  for (size_t I = 0; I < Traces.size(); ++I) {
    ProducerOptions Options = BaseOptions;
    Options.ProducerId = static_cast<uint32_t>(I);
    int Fd = WriteFds[I];
    const RawTrace *Trace = &Traces[I];
    ProducerThreads.emplace_back([Fd, Trace, Options] {
      sendTraceOverFd(Fd, *Trace, Options);
      ::close(Fd);
    });
  }
  IngestReport Report = Server.run();
  for (std::thread &T : ProducerThreads)
    T.join();
  return Report;
#endif
}

void ingest::publishIngestMetrics(const IngestReport &Report) {
  auto &M = obs::metrics();
  namespace names = obs::names;
  M.counter(names::IngestProducers).add(Report.Producers.size());
  M.counter(names::IngestFrames).add(Report.Frames);
  M.counter(names::IngestFrameBytes).add(Report.FrameBytes);
  M.counter(names::IngestFramesCorrupt).add(Report.CorruptFrames);
  M.counter(names::IngestResyncBytes).add(Report.ResyncBytes);
  M.counter(names::IngestReadRetries).add(Report.ReadRetries);
  M.counter(names::IngestIdleTimeouts).add(Report.IdleTimeouts);
  M.counter(names::IngestBackpressureWaits).add(Report.BackpressureWaits);
  M.gauge(names::IngestQueueDepthPeak)
      .set(static_cast<int64_t>(Report.QueueDepthPeak));
  if (Report.ElapsedUs > 0)
    M.gauge(names::IngestEventsPerSec)
        .set(static_cast<int64_t>(Report.EventsApplied * 1e6 /
                                  Report.ElapsedUs));

  uint64_t Events = 0, EventsDropped = 0, EventsLost = 0, Invalid = 0;
  uint64_t Duplicates = 0, Reordered = 0, Replayed = 0, Gaps = 0;
  uint64_t ShedFrames = 0, ShedBytes = 0, SynthExits = 0, Disconnects = 0;
  uint64_t Resumes = 0, Checkpoints = 0, CheckpointFailures = 0;
  for (const ProducerReport &PR : Report.Producers) {
    Events += PR.EventsApplied;
    EventsDropped += PR.EventsDropped;
    EventsLost += PR.eventsLost();
    Invalid += PR.FramesInvalid;
    Duplicates += PR.FramesDuplicate;
    Reordered += PR.FramesReordered;
    Replayed += PR.FramesReplayed;
    Gaps += PR.SeqGaps;
    ShedFrames += PR.ShedFrames;
    ShedBytes += PR.ShedBytes;
    SynthExits += PR.SynthesizedExits;
    Disconnects += PR.Disconnected ? 1 : 0;
    Resumes += PR.Resumed ? 1 : 0;
    Checkpoints += PR.CheckpointsWritten;
    CheckpointFailures += PR.CheckpointFailures;
  }
  M.counter(names::IngestEvents).add(Events);
  M.counter(names::IngestEventsDropped).add(EventsDropped);
  M.counter(names::IngestEventsLost).add(EventsLost);
  M.counter(names::IngestFramesInvalid).add(Invalid);
  M.counter(names::IngestFramesDuplicate).add(Duplicates);
  M.counter(names::IngestFramesReordered).add(Reordered);
  M.counter(names::IngestFramesReplayed).add(Replayed);
  M.counter(names::IngestSeqGaps).add(Gaps);
  M.counter(names::IngestShedFrames).add(ShedFrames);
  M.counter(names::IngestShedBytes).add(ShedBytes);
  M.counter(names::IngestSynthesizedExits).add(SynthExits);
  M.counter(names::IngestDisconnects).add(Disconnects);
  M.counter(names::IngestResumes).add(Resumes);
  M.counter(names::IngestCheckpoints).add(Checkpoints);
  M.counter(names::IngestCheckpointFailures).add(CheckpointFailures);
}
