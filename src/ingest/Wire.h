//===- ingest/Wire.h - twpp-wire-v1 framed trace protocol ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `twpp-wire-v1` binary wire protocol carrying trace event streams
/// from instrumented producers to the ingestion frontend. Every frame is
///
///   fixed32 magic ("TWPW")  fixed32 version
///   fixed32 producerId      fixed64 sequence
///   fixed32 payloadLength   fixed32 crc32(header prefix + payload)
///   payload bytes
///
/// — the same framing discipline as the checkpoint journal (wpp/Journal.h):
/// a fixed magic to resynchronize on, fixed-width lengths, and a CRC so
/// damage is detected, not decoded. The CRC covers the 24 header bytes
/// before it as well as the payload: producerId and sequence are inputs
/// to sequencing, so a flipped bit there must read as a corrupt frame,
/// not as a plausible frame from the far future. Sequence numbers are
/// per producer, start at 0 (the Hello frame), and increase by one per
/// frame, which is what gap/duplicate/reorder detection keys on.
///
/// The payload's first byte selects the frame kind:
///
///   Hello  (0): varuint functionCount — opens the stream.
///   Events (1): varuint count, then count events, each encoded as one
///               varuint `tag | id << 2` (tag 0 Enter, 1 Block, 2 Exit;
///               Exit carries id 0).
///   Bye    (2): varuint totalEvents — closes the stream; the receiver
///               cross-checks the declared count against what it applied
///               so silent loss is impossible.
///
/// FrameDecoder is the receive side: an incremental decoder that accepts
/// arbitrary byte chunks (frames routinely straddle read-buffer edges),
/// validates framing and CRC, and — on any damage — resynchronizes by
/// scanning byte-by-byte for the next magic, accounting every skipped
/// byte. Damage never makes it fail; it only costs the damaged frames.
/// docs/FORMATS.md specifies the protocol.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_INGEST_WIRE_H
#define TWPP_INGEST_WIRE_H

#include "support/ByteStream.h"
#include "trace/Events.h"

#include <cstdint>
#include <vector>

namespace twpp::ingest {

/// "TWPW", little-endian (the journal is "TWPJ", archives are "TWPP").
inline constexpr uint32_t WireMagic = 0x57505754;
inline constexpr uint32_t WireVersion = 1;
/// magic + version + producerId + sequence + payloadLength + crc.
inline constexpr size_t WireHeaderSize = 4 + 4 + 4 + 8 + 4 + 4;
/// Upper bound a decoder accepts for payloadLength. A corrupt length
/// field beyond this is treated as damage (resync) instead of making the
/// receiver wait for — or allocate — gigabytes that will never arrive.
inline constexpr uint32_t WireMaxPayload = 1u << 20;

/// Payload kind selector (first payload byte).
enum class WireFrameKind : uint8_t { Hello = 0, Events = 1, Bye = 2 };

/// One decoded frame: header fields plus raw payload bytes.
struct WireFrame {
  uint32_t ProducerId = 0;
  uint64_t Sequence = 0;
  std::vector<uint8_t> Payload;
};

/// One decoded payload, whatever the kind.
struct WirePayload {
  WireFrameKind Kind = WireFrameKind::Hello;
  /// Hello: the producer's function universe size.
  uint32_t FunctionCount = 0;
  /// Events: the batch, decoded and structurally valid (tag in range).
  std::vector<TraceEvent> Events;
  /// Bye: total events the producer claims to have sent.
  uint64_t TotalEvents = 0;
};

/// Builds the payload bytes of a Hello frame.
std::vector<uint8_t> encodeHelloPayload(uint32_t FunctionCount);

/// Builds the payload bytes of an Events frame over [Begin, End).
std::vector<uint8_t> encodeEventsPayload(const TraceEvent *Begin,
                                         const TraceEvent *End);

/// Builds the payload bytes of a Bye frame.
std::vector<uint8_t> encodeByePayload(uint64_t TotalEvents);

/// Decodes a frame payload. \returns false on a malformed payload
/// (unknown kind byte, bad varint, truncated batch, trailing bytes) —
/// possible despite the CRC when the *producer* is buggy or malicious,
/// so the receiver treats it as accounted damage, never trusts it.
bool decodeWirePayload(ByteSpan Payload, WirePayload &Out);

/// Appends one complete framed record to \p Out.
void appendWireFrame(std::vector<uint8_t> &Out, uint32_t ProducerId,
                     uint64_t Sequence, const std::vector<uint8_t> &Payload);

/// Incremental frame decoder with byte-resync. Feed it chunks as they
/// arrive off the socket; pull frames until it reports NeedMore.
class FrameDecoder {
public:
  /// Cumulative damage/progress accounting (mirrored into ingest.*
  /// counters by the server).
  struct Stats {
    uint64_t Frames = 0;        ///< Valid frames decoded.
    uint64_t FrameBytes = 0;    ///< Bytes consumed by valid frames.
    uint64_t CorruptFrames = 0; ///< Plausible headers failing CRC.
    uint64_t ResyncBytes = 0;   ///< Bytes skipped scanning for a magic.
  };

  /// Appends \p Size bytes to the pending buffer.
  void feed(const uint8_t *Data, size_t Size);

  /// Marks end of input: a pending partial frame at the tail can never
  /// complete, so next() stops waiting for it and resyncs past it.
  void finish() { Finished = true; }

  /// Extracts the next valid frame, skipping damage. \returns false when
  /// more input is needed (or, after finish(), when the buffer is
  /// exhausted).
  bool next(WireFrame &Out);

  const Stats &stats() const { return Counts; }

  /// Bytes currently buffered and not yet consumed.
  size_t pendingBytes() const { return Buffer.size() - Pos; }

private:
  std::vector<uint8_t> Buffer;
  size_t Pos = 0;
  bool Finished = false;
  Stats Counts;
};

} // namespace twpp::ingest

#endif // TWPP_INGEST_WIRE_H
