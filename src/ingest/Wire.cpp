//===- ingest/Wire.cpp - twpp-wire-v1 framed trace protocol ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "ingest/Wire.h"

#include "support/Crc32.h"

using namespace twpp;
using namespace twpp::ingest;

namespace {

/// Event tags inside an Events payload. On-wire values — never renumber.
constexpr uint64_t TagEnter = 0;
constexpr uint64_t TagBlock = 1;
constexpr uint64_t TagExit = 2;

uint32_t le32At(const std::vector<uint8_t> &Bytes, size_t Pos) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Bytes[Pos + I]) << (8 * I);
  return V;
}

uint64_t le64At(const std::vector<uint8_t> &Bytes, size_t Pos) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
  return V;
}

} // namespace

std::vector<uint8_t> ingest::encodeHelloPayload(uint32_t FunctionCount) {
  ByteWriter W;
  W.writeByte(static_cast<uint8_t>(WireFrameKind::Hello));
  W.writeVarUint(FunctionCount);
  return W.take();
}

std::vector<uint8_t> ingest::encodeEventsPayload(const TraceEvent *Begin,
                                                 const TraceEvent *End) {
  ByteWriter W;
  W.writeByte(static_cast<uint8_t>(WireFrameKind::Events));
  W.writeVarUint(static_cast<uint64_t>(End - Begin));
  for (const TraceEvent *E = Begin; E != End; ++E) {
    switch (E->EventKind) {
    case TraceEvent::Kind::Enter:
      W.writeVarUint(TagEnter | (static_cast<uint64_t>(E->Id) << 2));
      break;
    case TraceEvent::Kind::Block:
      W.writeVarUint(TagBlock | (static_cast<uint64_t>(E->Id) << 2));
      break;
    case TraceEvent::Kind::Exit:
      W.writeVarUint(TagExit);
      break;
    }
  }
  return W.take();
}

std::vector<uint8_t> ingest::encodeByePayload(uint64_t TotalEvents) {
  ByteWriter W;
  W.writeByte(static_cast<uint8_t>(WireFrameKind::Bye));
  W.writeVarUint(TotalEvents);
  return W.take();
}

bool ingest::decodeWirePayload(ByteSpan Payload, WirePayload &Out) {
  Out = WirePayload();
  ByteReader R(Payload);
  uint8_t KindByte = R.readByte();
  if (R.hasError())
    return false;
  switch (KindByte) {
  case static_cast<uint8_t>(WireFrameKind::Hello): {
    Out.Kind = WireFrameKind::Hello;
    uint64_t Count = R.readVarUint();
    if (R.hasError() || Count > UINT32_MAX)
      return false;
    Out.FunctionCount = static_cast<uint32_t>(Count);
    break;
  }
  case static_cast<uint8_t>(WireFrameKind::Events): {
    Out.Kind = WireFrameKind::Events;
    uint64_t Count = R.readVarUint();
    // A CRC-valid but absurd count (more events than bytes) is producer
    // damage; reject before reserving.
    if (R.hasError() || Count > Payload.size())
      return false;
    Out.Events.reserve(static_cast<size_t>(Count));
    for (uint64_t I = 0; I < Count; ++I) {
      uint64_t Tagged = R.readVarUint();
      if (R.hasError())
        return false;
      uint64_t Tag = Tagged & 3;
      uint64_t Id = Tagged >> 2;
      if (Id > UINT32_MAX)
        return false;
      switch (Tag) {
      case TagEnter:
        Out.Events.push_back(TraceEvent::enter(static_cast<uint32_t>(Id)));
        break;
      case TagBlock:
        Out.Events.push_back(TraceEvent::block(static_cast<uint32_t>(Id)));
        break;
      case TagExit:
        if (Id != 0)
          return false;
        Out.Events.push_back(TraceEvent::exit());
        break;
      default:
        return false;
      }
    }
    break;
  }
  case static_cast<uint8_t>(WireFrameKind::Bye): {
    Out.Kind = WireFrameKind::Bye;
    Out.TotalEvents = R.readVarUint();
    if (R.hasError())
      return false;
    break;
  }
  default:
    return false;
  }
  return R.atEnd();
}

void ingest::appendWireFrame(std::vector<uint8_t> &Out, uint32_t ProducerId,
                             uint64_t Sequence,
                             const std::vector<uint8_t> &Payload) {
  ByteWriter W;
  W.writeFixed32(WireMagic);
  W.writeFixed32(WireVersion);
  W.writeFixed32(ProducerId);
  W.writeFixed64(Sequence);
  W.writeFixed32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Header = W.take();
  // The CRC covers the header prefix as well as the payload: a flipped
  // bit in producerId or sequence would otherwise pass every check and
  // poison sequencing with a phantom 2^40-sized gap.
  uint32_t Crc = crc32Update(crc32Init(), Header.data(), Header.size());
  Crc = crc32Final(crc32Update(Crc, Payload.data(), Payload.size()));
  ByteWriter CrcW;
  CrcW.writeFixed32(Crc);
  std::vector<uint8_t> CrcBytes = CrcW.take();
  Out.insert(Out.end(), Header.begin(), Header.end());
  Out.insert(Out.end(), CrcBytes.begin(), CrcBytes.end());
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

void FrameDecoder::feed(const uint8_t *Data, size_t Size) {
  // Compact before growing: once the cursor has moved past consumed
  // frames, their bytes are dead weight the next memmove-free append
  // would keep copying around.
  if (Pos > 0 && (Pos >= 4096 || Pos == Buffer.size())) {
    Buffer.erase(Buffer.begin(), Buffer.begin() + static_cast<long>(Pos));
    Pos = 0;
  }
  Buffer.insert(Buffer.end(), Data, Data + Size);
}

bool FrameDecoder::next(WireFrame &Out) {
  while (true) {
    size_t Avail = Buffer.size() - Pos;
    if (Avail < WireHeaderSize) {
      // Could still be the prefix of a valid header; wait for more bytes
      // unless the stream already ended, in which case the tail is
      // garbage by definition.
      if (!Finished)
        return false;
      Counts.ResyncBytes += Avail;
      Pos = Buffer.size();
      return false;
    }
    if (le32At(Buffer, Pos) != WireMagic ||
        le32At(Buffer, Pos + 4) != WireVersion) {
      // Not a frame boundary: resynchronize byte-by-byte so one damaged
      // region cannot hide the rest of the stream.
      ++Pos;
      ++Counts.ResyncBytes;
      continue;
    }
    uint32_t Length = le32At(Buffer, Pos + 20);
    if (Length > WireMaxPayload) {
      // Plausible header with an absurd length: damage. Skip the magic
      // byte and rescan rather than waiting for bytes that will never
      // come.
      ++Pos;
      ++Counts.ResyncBytes;
      continue;
    }
    if (Avail < WireHeaderSize + Length) {
      if (!Finished)
        return false; // Frame straddles the read edge; wait for the rest.
      // Torn tail: a truncated frame can never complete. Scan what is
      // left in case a later (duplicated/reordered) frame is intact.
      ++Pos;
      ++Counts.ResyncBytes;
      continue;
    }
    const uint8_t *Payload = Buffer.data() + Pos + WireHeaderSize;
    // CRC spans the header prefix (everything before the CRC field) plus
    // the payload, so corruption anywhere in the frame is caught —
    // including the producerId/sequence fields sequencing trusts.
    uint32_t Crc = crc32Update(crc32Init(), Buffer.data() + Pos, 24);
    Crc = crc32Final(crc32Update(Crc, Payload, Length));
    if (Crc != le32At(Buffer, Pos + 24)) {
      ++Counts.CorruptFrames;
      ++Pos;
      ++Counts.ResyncBytes;
      continue;
    }
    Out.ProducerId = le32At(Buffer, Pos + 8);
    Out.Sequence = le64At(Buffer, Pos + 12);
    Out.Payload.assign(Payload, Payload + Length);
    Pos += WireHeaderSize + Length;
    ++Counts.Frames;
    Counts.FrameBytes += WireHeaderSize + Length;
    return true;
  }
}
