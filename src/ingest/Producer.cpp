//===- ingest/Producer.cpp - Replay producer for twpp-wire-v1 -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "ingest/Producer.h"

#include "ingest/Wire.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace twpp;
using namespace twpp::ingest;

namespace {

/// Writes all of [Data, Data+Size) to Fd, retrying EINTR and short
/// writes. EPIPE/closed receiver is terminal.
bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
#if defined(_WIN32)
  (void)Fd;
  (void)Data;
  (void)Size;
  return false;
#else
  bool IsSocket = true;
  while (Size > 0) {
    // MSG_NOSIGNAL: a receiver that closed (idle timeout, shed-and-die
    // chaos) must surface as EPIPE, not kill the producer with SIGPIPE.
    // Plain pipes reject send() with ENOTSOCK; fall back to write() for
    // them.
    ssize_t N = IsSocket ? ::send(Fd, Data, Size, MSG_NOSIGNAL)
                         : ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (IsSocket && errno == ENOTSOCK) {
        IsSocket = false;
        continue;
      }
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
#endif
}

/// One frame staged for the wire, with its fault-selected mutation
/// already applied to the byte image.
struct StagedFrame {
  std::vector<uint8_t> Bytes;
  bool Reorder = false; ///< Hold until the next frame has been sent.
};

/// Frames a payload and applies any armed wire mutation to the encoding.
StagedFrame stageFrame(uint32_t ProducerId, uint64_t Sequence,
                       const std::vector<uint8_t> &Payload,
                       const ProducerOptions &Options,
                       ProducerWireStats &Stats) {
  StagedFrame Staged;
  appendWireFrame(Staged.Bytes, ProducerId, Sequence, Payload);

  if (fault::shouldFaultWire("corrupt")) {
    // Flip a byte in the middle of the frame (payload when there is one,
    // header otherwise) so the CRC — or the magic scan — must catch it.
    Staged.Bytes[Staged.Bytes.size() / 2] ^= 0xFF;
    ++Stats.Corrupted;
  }
  if (fault::shouldFaultWire("truncate")) {
    // Keep a strict prefix: the header survives but the payload is torn,
    // the shape a died-mid-send producer leaves behind.
    Staged.Bytes.resize(Staged.Bytes.size() / 2);
    ++Stats.Truncated;
  }
  if (fault::shouldFaultWire("duplicate")) {
    size_t Len = Staged.Bytes.size();
    Staged.Bytes.reserve(Len * 2);
    Staged.Bytes.insert(Staged.Bytes.end(), Staged.Bytes.begin(),
                        Staged.Bytes.begin() + static_cast<long>(Len));
    ++Stats.Duplicated;
  }
  if (fault::shouldFaultWire("reorder")) {
    Staged.Reorder = true;
    ++Stats.Reordered;
  }
  if (fault::shouldFaultWire("stall")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(Options.StallMs));
    ++Stats.Stalls;
  }
  return Staged;
}

} // namespace

bool ingest::sendTraceOverFd(int Fd, const RawTrace &Trace,
                             const ProducerOptions &Options,
                             ProducerWireStats *StatsOut) {
  ProducerWireStats Stats;
  uint64_t Sequence = 0;
  // A frame held back by a reorder fault; flushed after its successor.
  std::vector<uint8_t> Held;

  auto Send = [&](const std::vector<uint8_t> &Payload) {
    StagedFrame Staged =
        stageFrame(Options.ProducerId, Sequence++, Payload, Options, Stats);
    if (Staged.Reorder && Held.empty()) {
      Held = std::move(Staged.Bytes);
      return true;
    }
    if (!writeAll(Fd, Staged.Bytes.data(), Staged.Bytes.size()))
      return false;
    ++Stats.FramesSent;
    Stats.BytesSent += Staged.Bytes.size();
    if (!Held.empty()) {
      if (!writeAll(Fd, Held.data(), Held.size()))
        return false;
      ++Stats.FramesSent;
      Stats.BytesSent += Held.size();
      Held.clear();
    }
    return true;
  };

  bool Ok = Send(encodeHelloPayload(Trace.FunctionCount));
  size_t Batch = Options.BatchEvents == 0 ? 1 : Options.BatchEvents;
  for (size_t I = 0; Ok && I < Trace.Events.size(); I += Batch) {
    size_t End = std::min(I + Batch, Trace.Events.size());
    Ok = Send(encodeEventsPayload(Trace.Events.data() + I,
                                  Trace.Events.data() + End));
  }
  if (Ok)
    Ok = Send(encodeByePayload(Trace.Events.size()));
  // A trailing held frame (reorder fault on the last frame) still has to
  // reach the wire — late, which is the point.
  if (Ok && !Held.empty()) {
    Ok = writeAll(Fd, Held.data(), Held.size());
    if (Ok) {
      ++Stats.FramesSent;
      Stats.BytesSent += Held.size();
    }
  }
  if (StatsOut)
    *StatsOut = Stats;
  return Ok;
}

int ingest::connectUnixSocket(const std::string &Path, std::string *Error) {
#if defined(_WIN32)
  if (Error)
    *Error = "unix sockets unsupported on this platform";
  return -1;
#else
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + Path;
    return -1;
  }
  // The server may still be between bind() and listen(); retry with a
  // short backoff instead of making every producer launch a lockstep
  // dance.
  for (int Attempt = 0; Attempt < 50; ++Attempt) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      if (Error)
        *Error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Fd;
    int Err = errno;
    ::close(Fd);
    if (Err != ENOENT && Err != ECONNREFUSED) {
      if (Error)
        *Error = std::string("connect ") + Path + ": " + std::strerror(Err);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (Error)
    *Error = "connect " + Path + ": server never came up";
  return -1;
#endif
}
