//===- ingest/Ingest.h - Multi-producer ingestion frontend -----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ingestion frontend: accepts `twpp-wire-v1` trace event streams
/// (ingest/Wire.h) from N concurrent producers over sockets or pipes and
/// feeds per-producer StreamingCompactors, writing one verifier-clean
/// archive per producer on drain.
///
/// Pipeline per connection:
///
///   fd --read--> FrameDecoder --resync--> SequenceTracker --in order-->
///     bounded queue --dispatcher--> StreamingCompactor --drain-->
///       takeCompacted(ThreadPool) --> <out>.p<ID>.twppa
///
/// Robustness is the contract, not a feature: every wire-level failure
/// (corrupt/truncated frames, duplicates, reordering, stalls, idle or
/// vanished producers, full queues, memory pressure, journal IO errors)
/// degrades into typed, counted outcomes — never a crash, a hang, or a
/// silent drop. A run either ends losslessly (archives byte-identical to
/// an in-process compaction of the same streams) or reports exactly what
/// was lost through the ingest.* counters and the per-producer report.
///
/// Sequencing: frames carry per-producer sequence numbers. Out-of-order
/// frames are buffered in a bounded reorder window and released in
/// order; frames below the cursor are duplicates (dropped, counted);
/// when the window overflows or the stream ends, missing sequence
/// numbers are declared gaps (counted — and surfaced as data loss since
/// the Bye frame's declared event total can no longer be met).
///
/// Durability: with a journal prefix, each producer's compactor state
/// (plus its sequencing cursor) is checkpointed through wpp/Journal
/// every CheckpointIntervalFrames frames. A SIGKILL'd ingestor restarted
/// with Resume=true scans each producer's journal on first contact,
/// restores the last checkpoint, and relies on sequence tracking to
/// discard the re-sent prefix — producing archives byte-identical to an
/// uninterrupted run. docs/INGEST.md documents the full design.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_INGEST_INGEST_H
#define TWPP_INGEST_INGEST_H

#include "ingest/Producer.h"
#include "support/FileIO.h"
#include "support/Parallel.h"
#include "trace/Events.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace twpp::ingest {

/// What a reader does when the bounded queue is full.
enum class BackpressurePolicy : uint8_t {
  Block, ///< Wait: the socket buffer fills and the producer slows down.
  Shed,  ///< Drop the frame, count it, keep reading (lossy, accounted).
};

const char *backpressurePolicyName(BackpressurePolicy Policy);
bool parseBackpressurePolicy(const std::string &Text,
                             BackpressurePolicy &Policy);

/// Everything the ingestion frontend can be told.
struct IngestConfig {
  /// Archives are written to "<OutPrefix>.p<ID>.twppa". Empty skips the
  /// archive write (the report still carries all accounting).
  std::string OutPrefix;
  /// Journals live at "<JournalPrefix>.p<ID>.twppj". Empty disables
  /// checkpointing and resume.
  std::string JournalPrefix;
  /// In-order frames applied between checkpoints (per producer).
  /// 0 disables periodic checkpoints even with a journal prefix.
  uint64_t CheckpointIntervalFrames = 64;
  /// Per-producer degradable-state budget (wpp/Streaming.h semantics:
  /// exceeding it drops the oldest open frame's block detail). 0 =
  /// unbounded.
  uint64_t MemoryBudgetBytes = 0;
  /// Bounded queue capacity between readers and the dispatcher, in
  /// frames.
  size_t QueueCapacity = 1024;
  BackpressurePolicy Policy = BackpressurePolicy::Block;
  /// Out-of-order frames buffered per producer before the hole is
  /// declared a gap.
  size_t ReorderWindow = 16;
  /// A connection with no bytes for this long is closed (counted as an
  /// idle timeout; its producers end unclean unless already Bye'd).
  unsigned IdleTimeoutMs = 10000;
  /// Transient read-error retries per connection before it is treated
  /// as disconnected; attempt k backs off RetryBackoffMs << (k-1).
  unsigned ReadRetryLimit = 3;
  unsigned RetryBackoffMs = 1;
  /// read() chunk size. Frames routinely straddle chunk edges; the
  /// decoder is built for it.
  size_t ReadChunkBytes = 64 * 1024;
  /// Hello functionCount sanity cap; a CRC-valid Hello beyond this is
  /// invalid (a garbage count would pre-size that many tables).
  uint32_t MaxFunctionCount = 1u << 20;
  /// Job count for the per-function compaction stages on drain.
  ParallelConfig Parallel;
  /// Scan "<JournalPrefix>.p<ID>.twppj" on first contact with producer
  /// ID and resume from its last valid checkpoint.
  bool Resume = false;
};

/// Per-producer accounting. Every field is a fact about what happened;
/// lossless() is the contract check CI leans on.
struct ProducerReport {
  uint32_t ProducerId = 0;
  uint32_t FunctionCount = 0;
  bool SawHello = false;
  bool SawBye = false;
  bool Resumed = false;
  uint64_t FramesApplied = 0;    ///< In-order frames consumed (incl. replays skipped).
  uint64_t EventsApplied = 0;    ///< Events folded into the compactor.
  uint64_t EventsDropped = 0;    ///< Events rejected by structural guards.
  uint64_t EventsDeclared = 0;   ///< Bye frame's total (0 until SawBye).
  uint64_t FramesInvalid = 0;    ///< CRC-valid but undecodable payloads.
  uint64_t FramesDuplicate = 0;  ///< Below-cursor or in-window repeats.
  uint64_t FramesReordered = 0;  ///< Arrived early, windowed back in order.
  uint64_t FramesReplayed = 0;   ///< Pre-checkpoint frames re-sent after resume.
  uint64_t SeqGaps = 0;          ///< Sequence numbers never delivered.
  uint64_t ShedFrames = 0;       ///< Dropped by the Shed backpressure policy.
  uint64_t ShedBytes = 0;
  uint64_t SynthesizedExits = 0; ///< Exits injected to balance the stream.
  uint64_t DegradedFrames = 0;   ///< Open frames degraded under memory budget.
  uint64_t CheckpointsWritten = 0;
  uint64_t CheckpointFailures = 0;
  bool Disconnected = false;     ///< Stream ended without a Bye.
  std::string ArchivePath;       ///< Empty when no archive was requested.
  IoError ArchiveError;          ///< Why the archive write failed, if it did.

  /// Declared-but-never-applied events (0 until the Bye arrived; shed
  /// and gap losses surface here because their events never applied).
  uint64_t eventsLost() const {
    uint64_t Accounted = EventsApplied + EventsDropped;
    return EventsDeclared > Accounted ? EventsDeclared - Accounted : 0;
  }

  /// True when every event the producer declared made it into the
  /// archive at full detail: complete handshake, no gaps, no sheds, no
  /// invalid or dropped data, no memory-budget degradation, declared ==
  /// applied, archive written (when asked).
  bool lossless() const {
    return SawHello && SawBye && !Disconnected && SeqGaps == 0 &&
           FramesInvalid == 0 && EventsDropped == 0 && ShedFrames == 0 &&
           SynthesizedExits == 0 && DegradedFrames == 0 &&
           EventsApplied == EventsDeclared && ArchiveError.ok();
  }
};

/// Whole-run accounting.
struct IngestReport {
  std::vector<ProducerReport> Producers; ///< Sorted by ProducerId.
  uint64_t Frames = 0;       ///< Valid frames decoded across connections.
  uint64_t FrameBytes = 0;
  uint64_t CorruptFrames = 0;///< CRC-failed plausible headers.
  uint64_t ResyncBytes = 0;  ///< Bytes skipped scanning for a magic.
  uint64_t ReadRetries = 0;
  uint64_t IdleTimeouts = 0;
  uint64_t BackpressureWaits = 0;
  uint64_t QueueDepthPeak = 0;
  uint64_t EventsApplied = 0;
  double ElapsedUs = 0;
  bool Aborted = false;      ///< Stopped by the crash hook before drain.
  std::string FatalError;    ///< Non-empty only for setup failures
                             ///< (bad socket path, listen failure).

  /// The degrade-never-abort contract's success arm: every producer
  /// lossless and no fatal setup error.
  bool clean() const {
    if (!FatalError.empty() || Aborted)
      return false;
    for (const ProducerReport &P : Producers)
      if (!P.lossless())
        return false;
    return true;
  }
};

/// The ingestion frontend. Typical use:
///
///   IngestServer Server(Config);
///   Server.addConnection(Fd1);       // or listenUnixSocket(...)
///   Server.addConnection(Fd2);
///   IngestReport Report = Server.run();
///
/// run() spawns one reader thread per connection plus a dispatcher,
/// consumes every stream to EOF (or idle timeout), drains the queue,
/// compacts each producer in parallel on the ThreadPool and writes the
/// archives. The server owns the fds.
class IngestServer {
public:
  explicit IngestServer(const IngestConfig &Config);
  ~IngestServer();
  IngestServer(const IngestServer &) = delete;
  IngestServer &operator=(const IngestServer &) = delete;

  /// Adds a connected producer fd (socket or pipe read end).
  void addConnection(int Fd);

  /// Binds a Unix listening socket at \p Path (replacing any stale
  /// file) and accepts exactly \p Expect connections, each waiting at
  /// most the idle timeout. \returns false with \p Error on failure.
  bool listenUnixSocket(const std::string &Path, size_t Expect,
                        std::string *Error);

  /// Ingests everything and finalizes. Call once.
  IngestReport run();

  /// Crash hook for durability tests and the --crash-after-checkpoints
  /// CLI flag: after \p Checkpoints checkpoint records have been
  /// appended (across producers), \p Hook runs on the dispatcher thread
  /// (e.g. raise(SIGKILL)); if it returns, ingestion stops without
  /// finalizing, as a crash would.
  void setCrashAfterCheckpoints(uint64_t Checkpoints,
                                std::function<void()> Hook);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Loopback harness shared by tests, the throughput bench and
/// `twpp_ingest replay`: one socketpair + producer thread per trace
/// (producer id = index), all feeding one IngestServer in this process.
IngestReport runLoopbackIngest(const IngestConfig &Config,
                               const std::vector<RawTrace> &Traces,
                               const ProducerOptions &BaseOptions = {});

/// Publishes \p Report into the ingest.* counters/gauges of the metrics
/// registry (obs/Names.h). Called by the CLI and bench after run() so
/// exports are one-shot and deterministic.
void publishIngestMetrics(const IngestReport &Report);

} // namespace twpp::ingest

#endif // TWPP_INGEST_INGEST_H
