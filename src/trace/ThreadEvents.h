//===- trace/ThreadEvents.h - Thread-aware WPP event model ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent extension of the WPP event model. The paper traces one
/// thread; a production service traces many. A ConcurrentTrace is a set of
/// per-thread RawTraces (each with its own 1-based block-event clock) plus
/// two cross-cutting streams recorded in one global interleaving order:
///
///  - SyncEvents: lock acquire/release and thread fork/join. A sync event
///    carries the acting thread's block count at the moment it fired, so
///    "time" in the concurrent model is always a per-thread TWPP timestamp
///    (the same 1..N clock the timestamp sets use).
///  - AccessEvents: per-address reads/writes, each attached to the block
///    event (1-based per-thread time) during which it executed.
///
/// From the sync stream we derive the cross-thread happens-before edges
/// that the archive stores and the race detector consumes: one edge per
/// inter-thread release->acquire handoff, fork and join. An edge
/// (T1, t1) -> (T2, t2) means every T1 event with time <= t1 happens
/// before every T2 event with time > t2.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_TRACE_THREADEVENTS_H
#define TWPP_TRACE_THREADEVENTS_H

#include "trace/Events.h"

#include <cstdint>
#include <vector>

namespace twpp {

/// Identifies a thread within a concurrent trace. Thread ids are dense:
/// thread i is Threads[i] of its ConcurrentTrace (thread 0 is main).
using ThreadId = uint32_t;

/// Identifies a lock object in the sync stream.
using LockId = uint32_t;

/// A traced memory address (opaque; only equality matters to the race
/// detector).
using Address = uint64_t;

/// One synchronization operation.
struct SyncEvent {
  enum class Kind : uint8_t {
    Acquire, ///< Thread acquires lock Object.
    Release, ///< Thread releases lock Object.
    Fork,    ///< Thread starts thread Object (before its first event).
    Join,    ///< Thread waits for thread Object (after its last event).
  };

  Kind EventKind;
  ThreadId Thread; ///< The acting thread.
  uint32_t Object; ///< LockId (Acquire/Release) or child ThreadId.
  uint32_t Time;   ///< Block events completed on Thread when this fired
                   ///< (0..N: syncs happen *between* block events).

  static SyncEvent acquire(ThreadId T, LockId L, uint32_t Time) {
    return {Kind::Acquire, T, L, Time};
  }
  static SyncEvent release(ThreadId T, LockId L, uint32_t Time) {
    return {Kind::Release, T, L, Time};
  }
  static SyncEvent fork(ThreadId Parent, ThreadId Child, uint32_t Time) {
    return {Kind::Fork, Parent, Child, Time};
  }
  static SyncEvent join(ThreadId Parent, ThreadId Child, uint32_t Time) {
    return {Kind::Join, Parent, Child, Time};
  }

  bool operator==(const SyncEvent &Other) const = default;
};

/// One memory access. Write sorts before Read so that the race reports'
/// lexicographic tie-break prefers the more severe access kind.
struct AccessEvent {
  enum class Kind : uint8_t { Write = 0, Read = 1 };

  Kind EventKind;
  ThreadId Thread;
  Address Addr;
  uint32_t Time; ///< 1-based per-thread time of the containing block event.

  static AccessEvent write(ThreadId T, Address A, uint32_t Time) {
    return {Kind::Write, T, A, Time};
  }
  static AccessEvent read(ThreadId T, Address A, uint32_t Time) {
    return {Kind::Read, T, A, Time};
  }

  bool operator==(const AccessEvent &Other) const = default;
};

/// One thread's slice of the execution: a complete single-threaded WPP.
struct ThreadTrace {
  ThreadId Id = 0;
  RawTrace Trace;

  bool operator==(const ThreadTrace &Other) const = default;
};

/// A complete concurrent WPP.
struct ConcurrentTrace {
  std::vector<ThreadTrace> Threads; ///< Threads[i].Id == i; 0 is main.
  std::vector<SyncEvent> Syncs;     ///< Global interleaving order.
  std::vector<AccessEvent> Accesses; ///< Sorted (Thread, Time, Addr, Kind).
  uint32_t FunctionCount = 0;        ///< Shared function-id space.

  bool operator==(const ConcurrentTrace &Other) const = default;

  /// Sum of per-thread block event counts.
  uint64_t blockEventCount() const;

  /// Structural sanity: dense thread ids, well-formed per-thread traces
  /// over the shared FunctionCount, sync times monotone per thread and
  /// within each thread's clock, mutex discipline (acquire of a held
  /// lock / release by a non-holder rejected), fork at most once per
  /// child and never of self, and access events in range and sorted.
  bool isWellFormed() const;
};

/// One derived cross-thread ordering edge: every FromThread event with
/// time <= FromTime happens before every ToThread event with
/// time > ToTime.
struct HbEdge {
  enum class Kind : uint8_t { Lock = 0, Fork = 1, Join = 2 };

  Kind EdgeKind;
  uint32_t FromThread;
  uint32_t FromTime;
  uint32_t ToThread;
  uint32_t ToTime;

  bool operator==(const HbEdge &Other) const = default;
};

/// Derives the happens-before edge list from the sync stream, in sync
/// order (which every consumer relies on: an edge's source clock is final
/// by the time the edge appears):
///  - Acquire of lock L by T2 after a release by T1 != T2 yields
///    Lock (T1, releaseTime) -> (T2, acquireTime). Same-thread
///    re-acquires yield no edge (program order already covers them), and
///    the release->acquire chain makes the ordering transitive across
///    successive critical sections.
///  - Fork(P, C) at t yields Fork (P, t) -> (C, 0).
///  - Join(P, C) at t yields Join (C, N_C) -> (P, t) where N_C is the
///    child's total block count.
std::vector<HbEdge> deriveHbEdges(const ConcurrentTrace &Trace);

} // namespace twpp

#endif // TWPP_TRACE_THREADEVENTS_H
