//===- trace/Events.cpp - Whole program path event model ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "trace/Events.h"

using namespace twpp;

TraceSink::~TraceSink() = default;

uint64_t RawTrace::blockEventCount() const {
  uint64_t Count = 0;
  for (const TraceEvent &Event : Events)
    if (Event.EventKind == TraceEvent::Kind::Block)
      ++Count;
  return Count;
}

uint64_t RawTrace::callCount() const {
  uint64_t Count = 0;
  for (const TraceEvent &Event : Events)
    if (Event.EventKind == TraceEvent::Kind::Enter)
      ++Count;
  return Count;
}

bool RawTrace::isWellFormed() const {
  uint64_t Depth = 0;
  for (const TraceEvent &Event : Events) {
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      if (Event.Id >= FunctionCount)
        return false;
      ++Depth;
      break;
    case TraceEvent::Kind::Block:
      if (Depth == 0)
        return false;
      break;
    case TraceEvent::Kind::Exit:
      if (Depth == 0)
        return false;
      --Depth;
      break;
    }
  }
  return Depth == 0;
}
