//===- trace/Events.h - Whole program path event model ----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The raw whole-program-path (WPP) model. A WPP is the complete control
/// flow trace of one program execution: a stream of function-enter,
/// basic-block, and function-exit events. This is what the paper's
/// instrumented Trimaran binaries produce and what every representation in
/// this library (uncompacted file, compacted TWPP archive, Sequitur
/// grammar) is derived from and must reconstruct exactly.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_TRACE_EVENTS_H
#define TWPP_TRACE_EVENTS_H

#include <cstdint>
#include <vector>

namespace twpp {

/// Identifies a function within a traced program.
using FunctionId = uint32_t;

/// Identifies a static basic block within its function. Block ids are local
/// to the function (the paper numbers each function's blocks 1..n).
using BlockId = uint32_t;

/// One element of the control flow trace.
struct TraceEvent {
  enum class Kind : uint8_t {
    Enter, ///< A function call begins; Id is the callee FunctionId.
    Block, ///< A basic block executes; Id is the BlockId.
    Exit,  ///< The innermost active call returns; Id is unused (0).
  };

  Kind EventKind;
  uint32_t Id;

  static TraceEvent enter(FunctionId F) { return {Kind::Enter, F}; }
  static TraceEvent block(BlockId B) { return {Kind::Block, B}; }
  static TraceEvent exit() { return {Kind::Exit, 0}; }

  bool operator==(const TraceEvent &Other) const = default;
};

/// A complete WPP: the event stream of one execution plus the number of
/// functions in the traced program (needed to size per-function indexes).
struct RawTrace {
  std::vector<TraceEvent> Events;
  uint32_t FunctionCount = 0;

  bool operator==(const RawTrace &Other) const = default;

  /// Total number of basic-block events (the paper's trace length measure).
  uint64_t blockEventCount() const;

  /// Total number of function calls (Enter events).
  uint64_t callCount() const;

  /// Checks structural sanity: every Block lies inside an active call,
  /// Enter/Exit events balance, and ids are within range.
  bool isWellFormed() const;
};

/// Receives trace events as a program executes. The tracing interpreter and
/// the synthetic workload drivers both emit through this interface.
class TraceSink {
public:
  virtual ~TraceSink();
  virtual void onEnter(FunctionId F) = 0;
  virtual void onBlock(BlockId B) = 0;
  virtual void onExit() = 0;
};

/// TraceSink that accumulates the events into a RawTrace.
class CollectingSink final : public TraceSink {
public:
  explicit CollectingSink(uint32_t FunctionCount) {
    Trace.FunctionCount = FunctionCount;
  }

  void onEnter(FunctionId F) override {
    Trace.Events.push_back(TraceEvent::enter(F));
  }
  void onBlock(BlockId B) override {
    Trace.Events.push_back(TraceEvent::block(B));
  }
  void onExit() override { Trace.Events.push_back(TraceEvent::exit()); }

  /// Moves the accumulated trace out of the sink.
  RawTrace take() { return std::move(Trace); }

  const RawTrace &trace() const { return Trace; }

private:
  RawTrace Trace;
};

} // namespace twpp

#endif // TWPP_TRACE_EVENTS_H
