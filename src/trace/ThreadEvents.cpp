//===- trace/ThreadEvents.cpp - Thread-aware WPP event model --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "trace/ThreadEvents.h"

#include <map>
#include <optional>

using namespace twpp;

uint64_t ConcurrentTrace::blockEventCount() const {
  uint64_t Total = 0;
  for (const ThreadTrace &T : Threads)
    Total += T.Trace.blockEventCount();
  return Total;
}

bool ConcurrentTrace::isWellFormed() const {
  std::vector<uint64_t> BlockCounts(Threads.size(), 0);
  for (size_t I = 0; I != Threads.size(); ++I) {
    const ThreadTrace &T = Threads[I];
    if (T.Id != I)
      return false;
    if (T.Trace.FunctionCount != FunctionCount)
      return false;
    if (!T.Trace.isWellFormed())
      return false;
    BlockCounts[I] = T.Trace.blockEventCount();
  }

  // Sync stream: per-thread times monotone and in range; mutex and
  // fork/join discipline.
  std::vector<uint32_t> LastTime(Threads.size(), 0);
  std::map<LockId, std::optional<ThreadId>> Holder;
  std::vector<bool> Forked(Threads.size(), false);
  for (const SyncEvent &S : Syncs) {
    if (S.Thread >= Threads.size())
      return false;
    if (S.Time < LastTime[S.Thread] || S.Time > BlockCounts[S.Thread])
      return false;
    LastTime[S.Thread] = S.Time;
    switch (S.EventKind) {
    case SyncEvent::Kind::Acquire: {
      std::optional<ThreadId> &H = Holder[S.Object];
      if (H)
        return false; // acquire of a held lock
      H = S.Thread;
      break;
    }
    case SyncEvent::Kind::Release: {
      std::optional<ThreadId> &H = Holder[S.Object];
      if (!H || *H != S.Thread)
        return false; // release by a non-holder
      H.reset();
      break;
    }
    case SyncEvent::Kind::Fork:
      if (S.Object >= Threads.size() || S.Object == S.Thread)
        return false;
      if (Forked[S.Object])
        return false; // a thread starts once
      Forked[S.Object] = true;
      break;
    case SyncEvent::Kind::Join:
      if (S.Object >= Threads.size() || S.Object == S.Thread)
        return false;
      break;
    }
  }

  // Access stream: in range and sorted (Thread, Time, Addr, Kind).
  for (size_t I = 0; I != Accesses.size(); ++I) {
    const AccessEvent &A = Accesses[I];
    if (A.Thread >= Threads.size())
      return false;
    if (A.Time < 1 || A.Time > BlockCounts[A.Thread])
      return false;
    if (I > 0) {
      const AccessEvent &P = Accesses[I - 1];
      auto Key = [](const AccessEvent &E) {
        return std::make_tuple(E.Thread, E.Time, E.Addr,
                               static_cast<uint8_t>(E.EventKind));
      };
      if (Key(A) < Key(P))
        return false;
    }
  }
  return true;
}

std::vector<HbEdge> twpp::deriveHbEdges(const ConcurrentTrace &Trace) {
  std::vector<HbEdge> Edges;
  // Last release per lock; the release->next-acquire chain is what makes
  // lock-induced ordering transitive across critical sections.
  std::map<LockId, std::pair<ThreadId, uint32_t>> LastRelease;
  std::vector<uint32_t> BlockCounts(Trace.Threads.size(), 0);
  for (size_t I = 0; I != Trace.Threads.size(); ++I)
    BlockCounts[I] =
        static_cast<uint32_t>(Trace.Threads[I].Trace.blockEventCount());

  for (const SyncEvent &S : Trace.Syncs) {
    switch (S.EventKind) {
    case SyncEvent::Kind::Acquire: {
      auto It = LastRelease.find(S.Object);
      if (It != LastRelease.end() && It->second.first != S.Thread)
        Edges.push_back({HbEdge::Kind::Lock, It->second.first,
                         It->second.second, S.Thread, S.Time});
      break;
    }
    case SyncEvent::Kind::Release:
      LastRelease[S.Object] = {S.Thread, S.Time};
      break;
    case SyncEvent::Kind::Fork:
      Edges.push_back({HbEdge::Kind::Fork, S.Thread, S.Time, S.Object, 0});
      break;
    case SyncEvent::Kind::Join:
      if (S.Object < BlockCounts.size())
        Edges.push_back({HbEdge::Kind::Join, S.Object, BlockCounts[S.Object],
                         S.Thread, S.Time});
      break;
    }
  }
  return Edges;
}
