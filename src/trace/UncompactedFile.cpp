//===- trace/UncompactedFile.cpp - Linear on-disk WPP (OWPP) --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "trace/UncompactedFile.h"

#include "support/ByteStream.h"
#include "support/FileIO.h"

using namespace twpp;

namespace {
constexpr uint32_t OWPPMagic = 0x4F575050; // "OWPP"
constexpr uint32_t OWPPVersion = 1;
} // namespace

std::vector<uint8_t> twpp::encodeUncompactedTrace(const RawTrace &Trace) {
  ByteWriter Writer;
  Writer.writeFixed32(OWPPMagic);
  Writer.writeVarUint(OWPPVersion);
  Writer.writeVarUint(Trace.FunctionCount);
  Writer.writeVarUint(Trace.Events.size());
  for (const TraceEvent &Event : Trace.Events)
    Writer.writeVarUint((static_cast<uint64_t>(Event.Id) << 2) |
                        static_cast<uint64_t>(Event.EventKind));
  return Writer.take();
}

bool twpp::decodeUncompactedTrace(const std::vector<uint8_t> &Bytes,
                                  RawTrace &Trace) {
  Trace = RawTrace();
  ByteReader Reader(Bytes);
  if (Reader.readFixed32() != OWPPMagic)
    return false;
  if (Reader.readVarUint() != OWPPVersion)
    return false;
  Trace.FunctionCount = static_cast<uint32_t>(Reader.readVarUint());
  uint64_t EventCount = Reader.readVarUint();
  // Each event costs at least one byte; reject impossible counts before
  // reserving.
  if (Reader.hasError() || EventCount > Bytes.size())
    return false;
  Trace.Events.reserve(EventCount);
  for (uint64_t I = 0; I != EventCount; ++I) {
    uint64_t Packed = Reader.readVarUint();
    if (Reader.hasError())
      return false;
    uint8_t KindBits = static_cast<uint8_t>(Packed & 3);
    if (KindBits > 2)
      return false;
    Trace.Events.push_back({static_cast<TraceEvent::Kind>(KindBits),
                            static_cast<uint32_t>(Packed >> 2)});
  }
  return Reader.valid();
}

bool twpp::writeUncompactedTraceFile(const std::string &Path,
                                     const RawTrace &Trace) {
  return writeFileBytes(Path, encodeUncompactedTrace(Trace)).ok();
}

bool twpp::readUncompactedTraceFile(const std::string &Path,
                                    RawTrace &Trace) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return false;
  return decodeUncompactedTrace(Bytes, Trace);
}

void twpp::extractFunctionTraces(
    const RawTrace &Trace, FunctionId Function,
    std::vector<std::vector<BlockId>> &Traces) {
  Traces.clear();
  // Frames of the dynamic call stack; each frame remembers whether it is an
  // invocation of the target and, if so, which output trace it fills.
  struct Frame {
    bool IsTarget;
    size_t TraceIndex;
  };
  std::vector<Frame> Stack;
  for (const TraceEvent &Event : Trace.Events) {
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      if (Event.Id == Function) {
        Stack.push_back({true, Traces.size()});
        Traces.emplace_back();
      } else {
        Stack.push_back({false, 0});
      }
      break;
    case TraceEvent::Kind::Block:
      if (!Stack.empty() && Stack.back().IsTarget)
        Traces[Stack.back().TraceIndex].push_back(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      if (!Stack.empty())
        Stack.pop_back();
      break;
    }
  }
}

bool twpp::extractFunctionTracesFromFile(
    const std::string &Path, FunctionId Function,
    std::vector<std::vector<BlockId>> &Traces) {
  RawTrace Trace;
  if (!readUncompactedTraceFile(Path, Trace))
    return false;
  extractFunctionTraces(Trace, Function, Traces);
  return true;
}
