//===- trace/UncompactedFile.h - Linear on-disk WPP (OWPP) ------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "original WPP" (OWPP) on-disk representation: the raw event stream
/// stored linearly, exactly as the instrumented program emitted it. This is
/// the baseline whose size appears in Table 1 and whose per-function
/// extraction cost appears in column U of Table 4 — extracting one
/// function's path traces requires scanning the entire file.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_TRACE_UNCOMPACTEDFILE_H
#define TWPP_TRACE_UNCOMPACTEDFILE_H

#include "trace/Events.h"

#include <string>
#include <vector>

namespace twpp {

/// Serializes \p Trace into the OWPP byte format.
std::vector<uint8_t> encodeUncompactedTrace(const RawTrace &Trace);

/// Parses an OWPP byte buffer back into a RawTrace.
/// \returns false when the buffer is malformed.
bool decodeUncompactedTrace(const std::vector<uint8_t> &Bytes,
                            RawTrace &Trace);

/// Writes \p Trace to \p Path in OWPP format. \returns true on success.
bool writeUncompactedTraceFile(const std::string &Path,
                               const RawTrace &Trace);

/// Reads an OWPP file back into \p Trace. \returns true on success.
bool readUncompactedTraceFile(const std::string &Path, RawTrace &Trace);

/// Extracts every path trace of \p Function from an OWPP file by scanning
/// the whole event stream (there is no index — this is the point of the
/// access-time comparison). A path trace is the sequence of basic blocks
/// executed by one invocation, excluding blocks run by nested calls.
/// \returns false on IO or format errors.
bool extractFunctionTracesFromFile(const std::string &Path,
                                   FunctionId Function,
                                   std::vector<std::vector<BlockId>> &Traces);

/// In-memory variant of extractFunctionTracesFromFile, shared by tests and
/// by the file-based path.
void extractFunctionTraces(const RawTrace &Trace, FunctionId Function,
                           std::vector<std::vector<BlockId>> &Traces);

} // namespace twpp

#endif // TWPP_TRACE_UNCOMPACTEDFILE_H
