//===- wpp/Concurrent.h - Thread-partitioned compacted WPPs -----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compacted form of a concurrent trace. Each thread's RawTrace is
/// compacted independently through the paper's full pipeline (partition,
/// DBB, TWPP conversion) — per-thread timestamps mean the per-function
/// timestamp sets are exactly the single-threaded representation — and the
/// per-thread results are merged into one TwppWpp over a *virtual*
/// function-id space (thread-major: virtual id = thread * FunctionCount +
/// function), so the whole archive machinery (layout, index, DCG, LZW,
/// verify) applies unchanged.
///
/// Alongside the merged body, a ConcurrencyInfo records what the merge
/// cannot express: the thread table, the derived happens-before edges,
/// and per-thread per-address access timestamp sets (the same
/// run-compressed TimestampSet the path traces use — reads and writes of
/// one address become two series over the thread's 1..N block clock).
/// This is the archive's thread trailer and the race detector's entire
/// input: races are found without touching the control-flow blocks.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_CONCURRENT_H
#define TWPP_WPP_CONCURRENT_H

#include "trace/ThreadEvents.h"
#include "wpp/Twpp.h"

namespace twpp {

/// One row of the archive's thread table.
struct ThreadInfo {
  ThreadId Id = 0;
  uint64_t BlockCount = 0; ///< The thread's total block events (its N).

  bool operator==(const ThreadInfo &Other) const = default;
};

/// Read/write timestamp sets of one address on one thread. Timestamps are
/// the thread's 1-based block-event times.
struct AddressAccess {
  Address Addr = 0;
  TimestampSet Reads;
  TimestampSet Writes;

  bool operator==(const AddressAccess &Other) const = default;
};

/// All traced accesses of one thread, sorted by address ascending.
struct ThreadAccessTable {
  std::vector<AddressAccess> Accesses;

  bool operator==(const ThreadAccessTable &Other) const = default;
};

/// The cross-thread metadata of a compacted concurrent WPP: everything
/// the race detector needs, none of the control flow.
struct ConcurrencyInfo {
  uint32_t FunctionCount = 0; ///< Real (per-thread) function-id space.
  std::vector<ThreadInfo> Threads;
  std::vector<HbEdge> Edges; ///< In derivation order (see deriveHbEdges).
  std::vector<ThreadAccessTable> Accesses; ///< Parallel to Threads.

  bool operator==(const ConcurrencyInfo &Other) const = default;
};

/// A compacted concurrent WPP: the merged thread-major body plus the
/// concurrency metadata.
struct ConcurrentWpp {
  TwppWpp Body;
  ConcurrencyInfo Conc;
};

/// Builds the per-thread access tables from a trace's access stream.
std::vector<ThreadAccessTable> buildAccessTables(const ConcurrentTrace &Trace);

/// Compacts every thread of \p Trace (threads fan out under \p Config;
/// the merge order is fixed, so the result is identical for any job
/// count) and derives the happens-before edges.
ConcurrentWpp compactConcurrentWpp(const ConcurrentTrace &Trace,
                                   const ParallelConfig &Config = {});

/// Extracts thread \p ThreadIndex's single-threaded compacted WPP from
/// the merged body (virtual ids sliced back to the real function space).
TwppWpp threadBody(const ConcurrentWpp &Wpp, uint32_t ThreadIndex);

/// Reconstructs thread \p ThreadIndex's original RawTrace from the
/// merged body — the concurrent round-trip guarantee.
RawTrace reconstructThreadTrace(const ConcurrentWpp &Wpp,
                                uint32_t ThreadIndex);

} // namespace twpp

#endif // TWPP_WPP_CONCURRENT_H
