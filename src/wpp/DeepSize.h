//===- wpp/DeepSize.h - Deep-size audit of the WPP structures ---*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// obs::deepSize — the memory observability audit API: walks the real
/// in-memory structures of every pipeline stage and returns their heap
/// footprint in bytes. Lives under wpp/ (the overloads need the wpp types)
/// but in namespace twpp::obs, because it is the reconciliation
/// counterpart of the obs/Memory.h tracker: the tracker accumulates byte
/// deltas as decoders build structures, deepSize independently re-derives
/// the same figure from the finished objects, and the twpp-mem-* verifier
/// checks (plus twpp_memstat) compare the two. Drift between them means an
/// instrumented site and this walk disagree about what a structure holds —
/// exactly the regression the audit exists to catch.
///
/// Sizing model: element payloads are counted by size(), not capacity(),
/// so the figures are deterministic across allocators and growth policies;
/// nested containers add sizeof(container) per element for their inline
/// headers. Top-level object headers (sizeof(TwppWpp) itself) are NOT
/// counted — deepSize measures what the object owns on the heap.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_DEEPSIZE_H
#define TWPP_WPP_DEEPSIZE_H

#include "sequitur/FlatGrammar.h"
#include "wpp/Dbb.h"
#include "wpp/DynamicCallGraph.h"
#include "wpp/Partition.h"
#include "wpp/Twpp.h"

#include <cstdint>

namespace twpp {
namespace obs {

/// Model of one raw path trace buffer of \p Blocks blocks: the inline
/// vector header plus the element payload. Shared with the streaming
/// compactor's budget accounting so the budget tracks the same model the
/// audits verify.
inline uint64_t pathTraceDeepSize(size_t Blocks) {
  return sizeof(PathTrace) + Blocks * sizeof(BlockId);
}

/// A block-id sequence (path trace, DBB chain, compacted trace string).
uint64_t deepSize(const PathTrace &Trace);

/// An arithmetic-series timestamp set: the run payload.
uint64_t deepSize(const TimestampSet &Set);

/// A timestamped trace string: per-block pairs plus their series.
uint64_t deepSize(const TwppTrace &Trace);

/// A DBB dictionary: chain headers plus chain bodies.
uint64_t deepSize(const DbbDictionary &Dictionary);

/// The dynamic call graph: node records plus child/anchor/root lists.
uint64_t deepSize(const DynamicCallGraph &Dcg);

/// Per-function tables of the three pipeline stages.
uint64_t deepSize(const FunctionTraceTable &Table);
uint64_t deepSize(const DbbFunctionTable &Table);
uint64_t deepSize(const TwppFunctionTable &Table);

/// Whole-program representations (the decoded archive is a TwppWpp).
uint64_t deepSize(const PartitionedWpp &Wpp);
uint64_t deepSize(const DbbWpp &Wpp);
uint64_t deepSize(const TwppWpp &Wpp);

/// A frozen Sequitur grammar: rule bodies plus their headers.
uint64_t deepSize(const FlatGrammar &Grammar);

} // namespace obs
} // namespace twpp

#endif // TWPP_WPP_DEEPSIZE_H
