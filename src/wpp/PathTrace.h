//===- wpp/PathTrace.h - Per-call path trace types --------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary types for the WPP compaction pipeline. A *path trace*
/// is the basic-block sequence executed by one function invocation (blocks
/// run by nested calls belong to the callee's own path trace). A *dynamic
/// basic block dictionary* records the block chains that DBB compaction
/// collapsed, keyed by the chain's first block id.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_PATHTRACE_H
#define TWPP_WPP_PATHTRACE_H

#include "trace/Events.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace twpp {

/// The block sequence of one function invocation.
using PathTrace = std::vector<BlockId>;

/// Dictionary of dynamic basic blocks for one compacted path trace.
/// Each chain is a run of static blocks always entered at the front and
/// exited at the back; only chains of length >= 2 are recorded. The chain's
/// id in the compacted trace is its first block's id. Chains are kept
/// sorted by head id so equal dictionaries compare equal.
struct DbbDictionary {
  std::vector<std::vector<BlockId>> Chains;

  bool operator==(const DbbDictionary &Other) const = default;

  /// Returns the chain headed by \p Head, or nullptr when \p Head is a
  /// plain static block.
  const std::vector<BlockId> *findChain(BlockId Head) const {
    // Binary search over the sorted heads.
    size_t Lo = 0, Hi = Chains.size();
    while (Lo < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (Chains[Mid].front() < Head)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    if (Lo < Chains.size() && Chains[Lo].front() == Head)
      return &Chains[Lo];
    return nullptr;
  }
};

/// FNV-1a style hash of a block-id sequence, used to dedupe path traces.
inline uint64_t hashBlockSequence(const std::vector<BlockId> &Blocks) {
  uint64_t Hash = 0xCBF29CE484222325ULL;
  for (BlockId Block : Blocks) {
    Hash ^= Block;
    Hash *= 0x100000001B3ULL;
  }
  return Hash;
}

/// Hash of a whole dictionary (chain set), composed with chain hashes.
inline uint64_t hashDictionary(const DbbDictionary &Dict) {
  uint64_t Hash = 0x9E3779B97F4A7C15ULL;
  for (const auto &Chain : Dict.Chains) {
    Hash ^= hashBlockSequence(Chain) + 0x9E3779B97F4A7C15ULL + (Hash << 6) +
            (Hash >> 2);
  }
  return Hash;
}

} // namespace twpp

#endif // TWPP_WPP_PATHTRACE_H
