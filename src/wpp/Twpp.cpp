//===- wpp/Twpp.cpp - Timestamped WPP representation ----------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Twpp.h"

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "obs/Trace.h"
#include "wpp/DeepSize.h"
#include "wpp/Sizes.h"
#include "wpp/VerifyHooks.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace twpp;

const TimestampSet *TwppTrace::timestampsOf(BlockId Block) const {
  auto It = std::lower_bound(
      Blocks.begin(), Blocks.end(), Block,
      [](const std::pair<BlockId, TimestampSet> &Entry, BlockId Key) {
        return Entry.first < Key;
      });
  if (It == Blocks.end() || It->first != Block)
    return nullptr;
  return &It->second;
}

TwppTrace twpp::twppFromBlockSequence(const std::vector<BlockId> &Sequence) {
  TwppTrace Trace;
  Trace.Length = static_cast<uint32_t>(Sequence.size());
  // Gather the timestamp list of every block; std::map keeps block order.
  std::map<BlockId, std::vector<Timestamp>> Lists;
  for (uint32_t I = 0; I < Sequence.size(); ++I)
    Lists[Sequence[I]].push_back(I + 1);
  Trace.Blocks.reserve(Lists.size());
  for (auto &[Block, List] : Lists)
    Trace.Blocks.emplace_back(Block, TimestampSet::fromSorted(List));
  return Trace;
}

bool twpp::blockSequenceFromTwpp(const TwppTrace &Trace,
                                 std::vector<BlockId> &Sequence) {
  Sequence.assign(Trace.Length, 0);
  std::vector<bool> Seen(Trace.Length, false);
  for (const auto &[Block, Set] : Trace.Blocks) {
    for (const SeriesRun &Run : Set.runs()) {
      for (uint64_t T = Run.Lo; T <= Run.Hi; T += Run.Step) {
        if (T == 0 || T > Trace.Length || Seen[T - 1])
          return false;
        Seen[T - 1] = true;
        Sequence[T - 1] = Block;
      }
    }
  }
  for (bool Filled : Seen)
    if (!Filled)
      return false;
  return true;
}

namespace {

/// Interns values into a pool, deduplicating by hash + equality.
template <typename T, typename HashFn> class PoolInterner {
public:
  explicit PoolInterner(HashFn Hash) : Hash(Hash) {}

  uint32_t intern(std::vector<T> &Pool, T &&Value) {
    uint64_t H = Hash(Value);
    auto Range = Buckets.equal_range(H);
    for (auto It = Range.first; It != Range.second; ++It)
      if (Pool[It->second] == Value)
        return It->second;
    uint32_t Index = static_cast<uint32_t>(Pool.size());
    Pool.push_back(std::move(Value));
    Buckets.emplace(H, Index);
    return Index;
  }

private:
  HashFn Hash;
  std::unordered_multimap<uint64_t, uint32_t> Buckets;
};

} // namespace

DbbWpp twpp::applyDbbCompaction(const PartitionedWpp &Wpp,
                                const ParallelConfig &Config) {
  obs::PhaseSpan Span("dbb");
  DbbWpp Out;
  Out.Dcg = Wpp.Dcg;
  Out.Functions.resize(Wpp.Functions.size());
  // One task per function table: interners are task-local and each task
  // writes only its pre-allocated slot, so any job count produces the
  // same tables as the serial walk.
  parallelFor(Config, Wpp.Functions.size(), [&Wpp, &Out](size_t F) {
    // Leaf span per function table; the function id arg makes a trace of
    // a --jobs N run show which function each worker slice compacted.
    obs::PhaseSpan FnSpan("dbb_function", "function",
                          static_cast<int64_t>(F));
    const FunctionTraceTable &In = Wpp.Functions[F];
    DbbFunctionTable &Table = Out.Functions[F];
    Table.CallCount = In.CallCount;
    Table.UseCounts = In.UseCounts;

    PoolInterner<std::vector<BlockId>, uint64_t (*)(const std::vector<BlockId> &)>
        StringInterner(hashBlockSequence);
    PoolInterner<DbbDictionary, uint64_t (*)(const DbbDictionary &)>
        DictInterner(hashDictionary);

    Table.Traces.reserve(In.UniqueTraces.size());
    for (const PathTrace &Trace : In.UniqueTraces) {
      CompactedTrace Compacted = compactWithDbbs(Trace);
      uint32_t StringIdx = StringInterner.intern(
          Table.TraceStrings, std::move(Compacted.Blocks));
      uint32_t DictIdx = DictInterner.intern(Table.Dictionaries,
                                             std::move(Compacted.Dictionary));
      Table.Traces.emplace_back(StringIdx, DictIdx);
    }
    // Per-tag memory accounting: the finished table's heap footprint
    // (dbb.tables live bytes track what this stage keeps alive).
    if (obs::memTrackingEnabled())
      obs::memAlloc(obs::memtags::DbbTables, obs::deepSize(Table));
  });
  if (obs::enabled()) {
    // Stage 3 size accounting, same formulas as measureStages: bytes_in is
    // the deduplicated trace pool, bytes_out the dictionary-compacted
    // trace strings (dictionaries themselves are a Table 3 column).
    uint64_t BytesIn = 0, BytesOut = 0;
    for (const FunctionTraceTable &Table : Wpp.Functions)
      for (const PathTrace &Trace : Table.UniqueTraces)
        BytesIn += pathTraceBytes(Trace);
    for (const DbbFunctionTable &Table : Out.Functions)
      for (const auto &TraceString : Table.TraceStrings)
        BytesOut += pathTraceBytes(TraceString);
    obs::MetricsRegistry &M = obs::metrics();
    M.gauge(obs::names::DbbBytesIn).set(static_cast<int64_t>(BytesIn));
    M.gauge(obs::names::DbbBytesOut).set(static_cast<int64_t>(BytesOut));
    obs::traceCounter(obs::names::DbbBytesOut,
                      static_cast<int64_t>(BytesOut));
  }
  return Out;
}

TwppWpp twpp::convertToTwpp(const DbbWpp &Wpp, const ParallelConfig &Config) {
  obs::PhaseSpan Span("twpp");
  TwppWpp Out;
  Out.Dcg = Wpp.Dcg;
  Out.Functions.resize(Wpp.Functions.size());
  parallelFor(Config, Wpp.Functions.size(), [&Wpp, &Out](size_t F) {
    obs::PhaseSpan FnSpan("twpp_function", "function",
                          static_cast<int64_t>(F));
    const DbbFunctionTable &In = Wpp.Functions[F];
    TwppFunctionTable &Table = Out.Functions[F];
    Table.CallCount = In.CallCount;
    Table.UseCounts = In.UseCounts;
    Table.Traces = In.Traces;
    Table.Dictionaries = In.Dictionaries;
    Table.TraceStrings.reserve(In.TraceStrings.size());
    for (const std::vector<BlockId> &Sequence : In.TraceStrings)
      Table.TraceStrings.push_back(twppFromBlockSequence(Sequence));
    if (obs::memTrackingEnabled())
      obs::memAlloc(obs::memtags::TwppTables, obs::deepSize(Table));
  });
  if (obs::enabled()) {
    // Stage 4+5 size accounting: the same trace strings before and after
    // the timestamped-form conversion (measureStages' Dbb/Twpp columns).
    uint64_t BytesIn = 0, BytesOut = 0;
    for (const DbbFunctionTable &Table : Wpp.Functions)
      for (const auto &TraceString : Table.TraceStrings)
        BytesIn += pathTraceBytes(TraceString);
    for (const TwppFunctionTable &Table : Out.Functions)
      for (const TwppTrace &TraceString : Table.TraceStrings)
        BytesOut += twppTraceBytes(TraceString);
    obs::MetricsRegistry &M = obs::metrics();
    M.gauge(obs::names::TwppBytesIn).set(static_cast<int64_t>(BytesIn));
    M.gauge(obs::names::TwppBytesOut).set(static_cast<int64_t>(BytesOut));
    obs::traceCounter(obs::names::TwppBytesOut,
                      static_cast<int64_t>(BytesOut));
  }
  return Out;
}

DbbWpp twpp::twppToDbb(const TwppWpp &Wpp) {
  DbbWpp Out;
  Out.Dcg = Wpp.Dcg;
  Out.Functions.resize(Wpp.Functions.size());
  for (size_t F = 0; F < Wpp.Functions.size(); ++F) {
    const TwppFunctionTable &In = Wpp.Functions[F];
    DbbFunctionTable &Table = Out.Functions[F];
    Table.CallCount = In.CallCount;
    Table.UseCounts = In.UseCounts;
    Table.Traces = In.Traces;
    Table.Dictionaries = In.Dictionaries;
    Table.TraceStrings.reserve(In.TraceStrings.size());
    for (const TwppTrace &Trace : In.TraceStrings) {
      std::vector<BlockId> Sequence;
      bool Ok = blockSequenceFromTwpp(Trace, Sequence);
      assert(Ok && "inconsistent TWPP trace");
      (void)Ok;
      Table.TraceStrings.push_back(std::move(Sequence));
    }
  }
  return Out;
}

PartitionedWpp twpp::dbbToPartitioned(const DbbWpp &Wpp) {
  PartitionedWpp Out;
  Out.Dcg = Wpp.Dcg;
  Out.Functions.resize(Wpp.Functions.size());
  for (size_t F = 0; F < Wpp.Functions.size(); ++F) {
    const DbbFunctionTable &In = Wpp.Functions[F];
    FunctionTraceTable &Table = Out.Functions[F];
    Table.CallCount = In.CallCount;
    Table.UseCounts = In.UseCounts;
    Table.UniqueTraces.reserve(In.Traces.size());
    for (size_t T = 0; T < In.Traces.size(); ++T) {
      auto [StringIdx, DictIdx] = In.Traces[T];
      CompactedTrace Compacted;
      Compacted.Blocks = In.TraceStrings[StringIdx];
      Compacted.Dictionary = In.Dictionaries[DictIdx];
      PathTrace Expanded = expandDbbs(Compacted);
      Table.UniqueTraces.push_back(std::move(Expanded));
      Table.TotalBlockEvents +=
          Table.UniqueTraces.back().size() * In.UseCounts[T];
    }
  }
  return Out;
}

TwppWpp twpp::compactWpp(const RawTrace &Trace, const ParallelConfig &Config) {
  obs::PhaseSpan Span("compact");
  TwppWpp Out = convertToTwpp(applyDbbCompaction(partitionWpp(Trace), Config),
                              Config);
  maybeVerifyWpp(Out, "compact");
  return Out;
}

RawTrace twpp::reconstructRawTrace(const TwppWpp &Wpp) {
  return reconstructRawTrace(dbbToPartitioned(twppToDbb(Wpp)));
}

FunctionPathTraces
twpp::expandFunctionTraces(const TwppFunctionTable &Table) {
  FunctionPathTraces Out;
  Out.CallCount = Table.CallCount;
  Out.UseCounts = Table.UseCounts;
  Out.Traces.reserve(Table.Traces.size());
  for (auto [StringIdx, DictIdx] : Table.Traces) {
    std::vector<BlockId> Sequence;
    bool Ok = blockSequenceFromTwpp(Table.TraceStrings[StringIdx], Sequence);
    assert(Ok && "inconsistent TWPP trace");
    (void)Ok;
    PathTrace Expanded;
    Expanded.reserve(Sequence.size());
    for (BlockId Head : Sequence)
      appendExpansion(Table.Dictionaries[DictIdx], Head, Expanded);
    Out.Traces.push_back(std::move(Expanded));
  }
  return Out;
}
