//===- wpp/Streaming.h - Online WPP compaction ------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online compaction: a TraceSink that performs partitioning and
/// redundant path trace elimination *while the program runs*, so the
/// instrumented process never materializes the raw event stream — the
/// deployment mode the paper's numbers presume (the uncompacted WPPs are
/// 100s of MB; what is written out is the compacted form). Memory is
/// bounded by the unique traces plus the DCG plus one open frame per
/// active call.
///
/// partitionWpp() is this sink fed from an in-memory trace, guaranteeing
/// the two paths can never diverge.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_STREAMING_H
#define TWPP_WPP_STREAMING_H

#include "wpp/Partition.h"
#include "wpp/Twpp.h"

#include <memory>

namespace twpp {

/// TraceSink that folds events straight into the partitioned,
/// redundancy-eliminated representation.
class StreamingCompactor final : public TraceSink {
public:
  explicit StreamingCompactor(uint32_t FunctionCount);
  ~StreamingCompactor() override;

  void onEnter(FunctionId F) override;
  void onBlock(BlockId B) override;
  void onExit() override;

  /// Number of calls currently open (the live frame stack depth).
  size_t openFrames() const;

  /// True when every call has exited (the stream is balanced).
  bool balanced() const { return openFrames() == 0; }

  /// Moves the partitioned WPP out. The stream must be balanced.
  PartitionedWpp takePartitioned();

  /// Convenience: runs the remaining pipeline stages (DBB + TWPP) on the
  /// partitioned result. The stream must be balanced. Once the stream has
  /// drained, each finished function table is handed to the work-stealing
  /// pool as one task under \p Config; the result is byte-identical to
  /// the serial path for any job count.
  TwppWpp takeCompacted(const ParallelConfig &Config = {});

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace twpp

#endif // TWPP_WPP_STREAMING_H
