//===- wpp/Streaming.h - Online WPP compaction ------------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online compaction: a TraceSink that performs partitioning and
/// redundant path trace elimination *while the program runs*, so the
/// instrumented process never materializes the raw event stream — the
/// deployment mode the paper's numbers presume (the uncompacted WPPs are
/// 100s of MB; what is written out is the compacted form). Memory is
/// bounded by the unique traces plus the DCG plus one open frame per
/// active call.
///
/// partitionWpp() is this sink fed from an in-memory trace, guaranteeing
/// the two paths can never diverge.
///
/// Durability: with a StreamingConfig naming a journal, the compactor
/// periodically serializes its complete state (unique-trace pool, DCG,
/// open-frame stack) into a CRC-framed checkpoint record (wpp/Journal.h),
/// and resumeFromJournal() rebuilds a compactor from the last valid
/// checkpoint after a crash. With a memory budget, exceeding it degrades
/// gracefully — the oldest open frame's block detail is dropped (and
/// counted in stream.degraded) instead of aborting the traced process.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_STREAMING_H
#define TWPP_WPP_STREAMING_H

#include "support/FileIO.h"
#include "wpp/Partition.h"
#include "wpp/Twpp.h"

#include <memory>

namespace twpp {

/// Durability knobs of the streaming compactor. Default-constructed it
/// journals nothing and never degrades — exactly the old behaviour.
struct StreamingConfig {
  /// Events (enter/block/exit) between journal checkpoints. 0 disables
  /// periodic checkpoints (checkpointNow() still works).
  uint64_t CheckpointInterval = 0;
  /// Checkpoint journal path (*.twppj). Empty disables journaling.
  std::string JournalPath;
  /// Soft cap on the bytes of degradable state (unique path traces plus
  /// open-frame detail), measured by the allocation tracker's live-bytes
  /// ledger under the obs::deepSize model — the same figure
  /// trackedStateBytes() reports and the memory audits verify. 0 means
  /// unbounded. Exceeding it drops the oldest open frame's block detail
  /// instead of aborting.
  uint64_t MemoryBudgetBytes = 0;
};

/// TraceSink that folds events straight into the partitioned,
/// redundancy-eliminated representation.
class StreamingCompactor final : public TraceSink {
public:
  explicit StreamingCompactor(uint32_t FunctionCount);
  StreamingCompactor(uint32_t FunctionCount, const StreamingConfig &Config);
  ~StreamingCompactor() override;

  void onEnter(FunctionId F) override;
  void onBlock(BlockId B) override;
  void onExit() override;

  /// Number of calls currently open (the live frame stack depth).
  size_t openFrames() const;

  /// Number of functions this compactor partitions over.
  uint32_t functionCount() const;

  /// True when every call has exited (the stream is balanced).
  bool balanced() const { return openFrames() == 0; }

  /// Events consumed so far (enters + blocks + exits).
  uint64_t eventsConsumed() const;

  /// Checkpoints successfully appended to the journal.
  uint64_t checkpointsWritten() const;

  /// Open frames whose block detail was dropped under memory pressure.
  uint64_t degradedFrames() const;

  /// Live bytes of degradable state per the tracker's ledger — the figure
  /// MemoryBudgetBytes is enforced against (the obs::deepSize model of the
  /// unique-trace pool plus open-frame detail). Incrementally maintained
  /// and exactly recomputed by restoreState, so incremental vs from-scratch
  /// agreement is testable.
  uint64_t trackedStateBytes() const;

  /// The last journal IO failure (IoStatus::Ok when none). Journal
  /// failures degrade — they never abort the traced process.
  const IoError &lastJournalError() const;

  /// Serializes the complete compactor state (the journal checkpoint
  /// payload). Deterministic: equal states produce equal bytes.
  std::vector<uint8_t> snapshotState() const;

  /// Restores state from a snapshotState() payload. \returns false and
  /// leaves the compactor unchanged when the payload is malformed or its
  /// function count differs from this compactor's.
  bool restoreState(const std::vector<uint8_t> &Payload);

  /// Appends a checkpoint to the journal now. No-op success without an
  /// open journal.
  IoError checkpointNow();

  /// Rebuilds a compactor from the last valid checkpoint in
  /// \p JournalPath and reopens that journal for further appends (keeping
  /// existing records) per \p Config. \returns nullptr and sets \p Error
  /// when the journal is unreadable, holds no valid checkpoint, or the
  /// checkpoint payload is malformed.
  static std::unique_ptr<StreamingCompactor>
  resumeFromJournal(const std::string &JournalPath,
                    const StreamingConfig &Config, std::string *Error);

  /// Moves the partitioned WPP out. The stream must be balanced.
  PartitionedWpp takePartitioned();

  /// Convenience: runs the remaining pipeline stages (DBB + TWPP) on the
  /// partitioned result. The stream must be balanced. Once the stream has
  /// drained, each finished function table is handed to the work-stealing
  /// pool as one task under \p Config; the result is byte-identical to
  /// the serial path for any job count.
  TwppWpp takeCompacted(const ParallelConfig &Config = {});

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace twpp

#endif // TWPP_WPP_STREAMING_H
