//===- wpp/DynamicCallGraph.h - DCG linking path traces ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic call graph (DCG): a tree with one node per function call,
/// recording the callee, which unique path trace that call followed, the
/// calls it made (in order), and where in the parent's path trace each call
/// is anchored. Together with the per-function unique trace tables, the DCG
/// preserves the ability to reconstruct the complete WPP (paper Section 2).
///
/// The paper compresses the serialized DCG with LZW; encodeDcg/decodeDcg
/// plus support/LZW.h implement that.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_DYNAMICCALLGRAPH_H
#define TWPP_WPP_DYNAMICCALLGRAPH_H

#include "trace/Events.h"

#include <cstdint>
#include <vector>

namespace twpp {

/// One function call in the DCG.
struct DcgNode {
  /// The callee.
  FunctionId Function = 0;
  /// Index of this call's path trace in the callee's unique trace table.
  uint32_t TraceIndex = 0;
  /// Calls made by this invocation, in call order (node indices).
  std::vector<uint32_t> Children;
  /// For each child, the 1-based ordinal of the block event in this node's
  /// (uncompacted) path trace during which the call happened. 0 means the
  /// call occurred before any block executed. Non-decreasing.
  std::vector<uint32_t> Anchors;

  bool operator==(const DcgNode &Other) const = default;
};

/// The call tree of one execution. Normally a single root (main), but a
/// forest is supported for robustness.
struct DynamicCallGraph {
  std::vector<DcgNode> Nodes;
  std::vector<uint32_t> Roots;

  bool operator==(const DynamicCallGraph &Other) const = default;

  /// Number of calls to \p Function across the whole execution.
  uint64_t callCountOf(FunctionId Function) const {
    uint64_t Count = 0;
    for (const DcgNode &Node : Nodes)
      if (Node.Function == Function)
        ++Count;
    return Count;
  }
};

/// Serializes the DCG (preorder, delta-coded varints). This is the payload
/// the archive stores LZW-compressed.
std::vector<uint8_t> encodeDcg(const DynamicCallGraph &Dcg);

/// Inverse of encodeDcg. \returns false on malformed input.
bool decodeDcg(const std::vector<uint8_t> &Bytes, DynamicCallGraph &Dcg);

} // namespace twpp

#endif // TWPP_WPP_DYNAMICCALLGRAPH_H
