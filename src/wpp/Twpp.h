//===- wpp/Twpp.h - Timestamped WPP representation --------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timestamped WPP (TWPP) representation and the full compaction
/// pipeline. A path trace in WPP form is a map timestamp -> dynamic basic
/// block; TWPP inverts it into block -> ordered timestamp set, the form
/// profile-limited data flow analysis consumes, and compacts the timestamp
/// sets into arithmetic series (paper Section 2).
///
/// Pipeline:  RawTrace --partitionWpp--> PartitionedWpp
///            --applyDbbCompaction--> DbbWpp
///            --convertToTwpp--> TwppWpp            (and inverses).
///
/// Both the DBB stage and the TWPP stage keep, per function, a pool of
/// deduplicated trace strings and a pool of deduplicated dictionaries; a
/// unique path trace is a (string, dictionary) pair — the paper's (t, d)
/// tuples (Figure 5: one trace string, two dictionaries).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_TWPP_H
#define TWPP_WPP_TWPP_H

#include "support/Parallel.h"
#include "wpp/Dbb.h"
#include "wpp/Partition.h"
#include "wpp/TimestampSet.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace twpp {

/// A path trace in timestamped form: for every dynamic basic block of the
/// compacted trace, the ordered set of time steps at which it ran.
struct TwppTrace {
  /// Number of time steps (length of the compacted block sequence).
  uint32_t Length = 0;
  /// (block, timestamps) pairs sorted by block id. Every timestamp in
  /// [1, Length] occurs in exactly one set.
  std::vector<std::pair<BlockId, TimestampSet>> Blocks;

  bool operator==(const TwppTrace &Other) const = default;

  /// Returns the timestamp set of \p Block, or nullptr when the block does
  /// not appear in this trace.
  const TimestampSet *timestampsOf(BlockId Block) const;
};

/// Converts a compacted block sequence (timestamp -> block) to TWPP form.
TwppTrace twppFromBlockSequence(const std::vector<BlockId> &Sequence);

/// Inverse of twppFromBlockSequence. \returns false when the trace is
/// inconsistent (overlapping or missing timestamps).
bool blockSequenceFromTwpp(const TwppTrace &Trace,
                           std::vector<BlockId> &Sequence);

/// Per-function tables after DBB dictionary creation. Traces[i] gives the
/// (trace string, dictionary) pair of the i-th unique path trace, indexing
/// the deduplicated pools.
struct DbbFunctionTable {
  std::vector<std::vector<BlockId>> TraceStrings;
  std::vector<DbbDictionary> Dictionaries;
  std::vector<std::pair<uint32_t, uint32_t>> Traces;
  /// Calls per unique trace, parallel to Traces.
  std::vector<uint64_t> UseCounts;
  uint64_t CallCount = 0;

  bool operator==(const DbbFunctionTable &Other) const = default;
};

/// The WPP after DBB dictionary creation (paper Figure 5).
struct DbbWpp {
  DynamicCallGraph Dcg;
  std::vector<DbbFunctionTable> Functions;

  bool operator==(const DbbWpp &Other) const = default;
};

/// Per-function tables in compacted TWPP form.
struct TwppFunctionTable {
  std::vector<TwppTrace> TraceStrings;
  std::vector<DbbDictionary> Dictionaries;
  std::vector<std::pair<uint32_t, uint32_t>> Traces;
  std::vector<uint64_t> UseCounts;
  uint64_t CallCount = 0;

  bool operator==(const TwppFunctionTable &Other) const = default;
};

/// The fully compacted representation (paper Figure 7): DCG + per-function
/// TWPP trace strings and DBB dictionaries.
struct TwppWpp {
  DynamicCallGraph Dcg;
  std::vector<TwppFunctionTable> Functions;

  bool operator==(const TwppWpp &Other) const = default;
};

/// Stage 3: builds DBB dictionaries for every unique path trace and
/// re-deduplicates trace strings and dictionaries independently. Function
/// tables are independent (the paper's partitioning), so \p Config fans
/// them out one task per table; results are byte-identical to the serial
/// path for any job count.
DbbWpp applyDbbCompaction(const PartitionedWpp &Wpp,
                          const ParallelConfig &Config = {});

/// Stage 4+5: converts every compacted trace string to timestamped form
/// with series-compacted timestamp sets, one task per function table
/// under \p Config.
TwppWpp convertToTwpp(const DbbWpp &Wpp, const ParallelConfig &Config = {});

/// Inverse of convertToTwpp.
DbbWpp twppToDbb(const TwppWpp &Wpp);

/// Inverse of applyDbbCompaction (expands every (string, dictionary) pair).
PartitionedWpp dbbToPartitioned(const DbbWpp &Wpp);

/// Runs the whole pipeline: raw event stream to compacted TWPP. The DBB
/// and TWPP stages fan out per function under \p Config (partitioning
/// itself is a serial stack walk).
TwppWpp compactWpp(const RawTrace &Trace, const ParallelConfig &Config = {});

/// Inverse of compactWpp: rebuilds the exact original event stream.
RawTrace reconstructRawTrace(const TwppWpp &Wpp);

/// Expands the unique path traces of one function back to raw block
/// sequences (the answer to the paper's per-function query), together with
/// their use counts.
struct FunctionPathTraces {
  std::vector<PathTrace> Traces;
  std::vector<uint64_t> UseCounts;
  uint64_t CallCount = 0;
};
FunctionPathTraces expandFunctionTraces(const TwppFunctionTable &Table);

} // namespace twpp

#endif // TWPP_WPP_TWPP_H
