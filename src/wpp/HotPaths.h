//===- wpp/HotPaths.h - Hot path queries over compacted WPPs ----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hot path identification over the compacted representation (the paper
/// notes the pre-TWPP path trace form "is adequate for identifying hot
/// paths"): per-function unique traces ranked by use count, and search
/// for the occurrences of a given intraprocedural subpath — the query the
/// paper motivates with "one can rapidly search for occurrences of a
/// given path" over the partitioned form (Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_HOTPATHS_H
#define TWPP_WPP_HOTPATHS_H

#include "wpp/Twpp.h"

#include <cstdint>
#include <vector>

namespace twpp {

/// One ranked path of a function.
struct HotPath {
  uint32_t TraceIndex = 0; ///< Into the function's unique trace list.
  uint64_t UseCount = 0;   ///< Calls that followed it.
  PathTrace Blocks;        ///< The expanded block sequence.
};

/// The function's unique paths sorted by use count descending (ties by
/// first occurrence), up to \p Limit entries (0 = all).
std::vector<HotPath> hotPathsOf(const TwppFunctionTable &Table,
                                size_t Limit = 0);

/// Occurrences of the contiguous block subsequence \p Needle across the
/// function's executions: the number of dynamic occurrences (occurrences
/// per unique trace times that trace's use count). Only that function's
/// block is examined — the point of the per-function organization.
uint64_t countSubpathOccurrences(const TwppFunctionTable &Table,
                                 const std::vector<BlockId> &Needle);

} // namespace twpp

#endif // TWPP_WPP_HOTPATHS_H
