//===- wpp/Merge.h - Merging WPPs from multiple runs ------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregation of whole program paths across executions. A profile
/// database normally accumulates several runs of the same program; the
/// partitioned representation merges naturally — unique path traces are
/// re-interned across runs (redundancy elimination now also applies
/// *between* runs) and the dynamic call graphs concatenate as a forest
/// (DynamicCallGraph::Roots keeps one root per run, in order). The merge
/// is lossless: reconstructing the merged WPP replays the runs
/// back-to-back.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_MERGE_H
#define TWPP_WPP_MERGE_H

#include "wpp/Partition.h"
#include "wpp/Twpp.h"

#include <vector>

namespace twpp {

/// Merges partitioned WPPs of several runs of the same program (all
/// inputs must agree on the function count). Unique traces are
/// re-deduplicated across runs; use counts and call counts accumulate;
/// the DCG becomes a forest with the runs' roots in input order.
PartitionedWpp mergePartitionedWpps(
    const std::vector<const PartitionedWpp *> &Runs);

/// Convenience: merges fully compacted WPPs by expanding to partitioned
/// form, merging, and re-running the DBB/TWPP stages.
TwppWpp mergeCompactedWpps(const std::vector<const TwppWpp *> &Runs);

} // namespace twpp

#endif // TWPP_WPP_MERGE_H
