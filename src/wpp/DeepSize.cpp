//===- wpp/DeepSize.cpp - Deep-size audit of the WPP structures -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/DeepSize.h"

using namespace twpp;

namespace twpp {
namespace obs {

uint64_t deepSize(const PathTrace &Trace) {
  return Trace.size() * sizeof(BlockId);
}

uint64_t deepSize(const TimestampSet &Set) {
  return Set.runs().size() * sizeof(SeriesRun);
}

uint64_t deepSize(const TwppTrace &Trace) {
  uint64_t Bytes =
      Trace.Blocks.size() * sizeof(std::pair<BlockId, TimestampSet>);
  for (const auto &[Block, Set] : Trace.Blocks)
    Bytes += deepSize(Set);
  return Bytes;
}

uint64_t deepSize(const DbbDictionary &Dictionary) {
  uint64_t Bytes = Dictionary.Chains.size() * sizeof(std::vector<BlockId>);
  for (const std::vector<BlockId> &Chain : Dictionary.Chains)
    Bytes += Chain.size() * sizeof(BlockId);
  return Bytes;
}

uint64_t deepSize(const DynamicCallGraph &Dcg) {
  uint64_t Bytes = Dcg.Nodes.size() * sizeof(DcgNode);
  for (const DcgNode &Node : Dcg.Nodes)
    Bytes += (Node.Children.size() + Node.Anchors.size()) * sizeof(uint32_t);
  Bytes += Dcg.Roots.size() * sizeof(uint32_t);
  return Bytes;
}

uint64_t deepSize(const FunctionTraceTable &Table) {
  uint64_t Bytes = Table.UniqueTraces.size() * sizeof(PathTrace);
  for (const PathTrace &Trace : Table.UniqueTraces)
    Bytes += deepSize(Trace);
  Bytes += Table.UseCounts.size() * sizeof(uint64_t);
  return Bytes;
}

uint64_t deepSize(const DbbFunctionTable &Table) {
  uint64_t Bytes = Table.TraceStrings.size() * sizeof(std::vector<BlockId>);
  for (const std::vector<BlockId> &Trace : Table.TraceStrings)
    Bytes += Trace.size() * sizeof(BlockId);
  Bytes += Table.Dictionaries.size() * sizeof(DbbDictionary);
  for (const DbbDictionary &Dictionary : Table.Dictionaries)
    Bytes += deepSize(Dictionary);
  Bytes += Table.Traces.size() * sizeof(std::pair<uint32_t, uint32_t>);
  Bytes += Table.UseCounts.size() * sizeof(uint64_t);
  return Bytes;
}

uint64_t deepSize(const TwppFunctionTable &Table) {
  uint64_t Bytes = Table.TraceStrings.size() * sizeof(TwppTrace);
  for (const TwppTrace &Trace : Table.TraceStrings)
    Bytes += deepSize(Trace);
  Bytes += Table.Dictionaries.size() * sizeof(DbbDictionary);
  for (const DbbDictionary &Dictionary : Table.Dictionaries)
    Bytes += deepSize(Dictionary);
  Bytes += Table.Traces.size() * sizeof(std::pair<uint32_t, uint32_t>);
  Bytes += Table.UseCounts.size() * sizeof(uint64_t);
  return Bytes;
}

uint64_t deepSize(const PartitionedWpp &Wpp) {
  uint64_t Bytes = deepSize(Wpp.Dcg);
  Bytes += Wpp.Functions.size() * sizeof(FunctionTraceTable);
  for (const FunctionTraceTable &Table : Wpp.Functions)
    Bytes += deepSize(Table);
  return Bytes;
}

uint64_t deepSize(const DbbWpp &Wpp) {
  uint64_t Bytes = deepSize(Wpp.Dcg);
  Bytes += Wpp.Functions.size() * sizeof(DbbFunctionTable);
  for (const DbbFunctionTable &Table : Wpp.Functions)
    Bytes += deepSize(Table);
  return Bytes;
}

uint64_t deepSize(const TwppWpp &Wpp) {
  uint64_t Bytes = deepSize(Wpp.Dcg);
  Bytes += Wpp.Functions.size() * sizeof(TwppFunctionTable);
  for (const TwppFunctionTable &Table : Wpp.Functions)
    Bytes += deepSize(Table);
  return Bytes;
}

uint64_t deepSize(const FlatGrammar &Grammar) {
  uint64_t Bytes = Grammar.Rules.size() * sizeof(std::vector<FlatSymbol>);
  for (const std::vector<FlatSymbol> &Rule : Grammar.Rules)
    Bytes += Rule.size() * sizeof(FlatSymbol);
  return Bytes;
}

} // namespace obs
} // namespace twpp
