//===- wpp/Streaming.cpp - Online WPP compaction ---------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Streaming.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "obs/Trace.h"
#include "wpp/Sizes.h"
#include "wpp/VerifyHooks.h"

#include <cassert>
#include <unordered_map>

using namespace twpp;

namespace {

/// Dedupe helper shared conceptually with Partition.cpp: maps a path
/// trace to its index in a function's unique trace table, bucketed by
/// hash and verified by comparison.
class TraceInterner {
public:
  uint32_t intern(FunctionTraceTable &Table, PathTrace &&Trace) {
    uint64_t Hash = hashBlockSequence(Trace);
    auto Range = Buckets.equal_range(Hash);
    for (auto It = Range.first; It != Range.second; ++It)
      if (Table.UniqueTraces[It->second] == Trace)
        return It->second;
    static obs::Counter &UniqueTraces =
        obs::metrics().counter(obs::names::PartitionUniqueTraces);
    UniqueTraces.add();
    uint32_t Index = static_cast<uint32_t>(Table.UniqueTraces.size());
    Table.UniqueTraces.push_back(std::move(Trace));
    Table.UseCounts.push_back(0);
    Buckets.emplace(Hash, Index);
    return Index;
  }

private:
  std::unordered_multimap<uint64_t, uint32_t> Buckets;
};

} // namespace

struct StreamingCompactor::Impl {
  PartitionedWpp Wpp;
  std::vector<TraceInterner> Interners;

  struct Frame {
    uint32_t NodeIndex;
    PathTrace Blocks;
  };
  std::vector<Frame> Stack;

  explicit Impl(uint32_t FunctionCount) {
    Wpp.Functions.resize(FunctionCount);
    Interners.resize(FunctionCount);
  }
};

StreamingCompactor::StreamingCompactor(uint32_t FunctionCount)
    : P(std::make_unique<Impl>(FunctionCount)) {}

StreamingCompactor::~StreamingCompactor() = default;

void StreamingCompactor::onEnter(FunctionId F) {
  assert(F < P->Wpp.Functions.size() && "function id out of range");
  uint32_t NodeIndex = static_cast<uint32_t>(P->Wpp.Dcg.Nodes.size());
  P->Wpp.Dcg.Nodes.push_back(DcgNode{F, 0, {}, {}});
  if (P->Stack.empty()) {
    P->Wpp.Dcg.Roots.push_back(NodeIndex);
  } else {
    Impl::Frame &Parent = P->Stack.back();
    P->Wpp.Dcg.Nodes[Parent.NodeIndex].Children.push_back(NodeIndex);
    P->Wpp.Dcg.Nodes[Parent.NodeIndex].Anchors.push_back(
        static_cast<uint32_t>(Parent.Blocks.size()));
  }
  P->Stack.push_back(Impl::Frame{NodeIndex, {}});
}

void StreamingCompactor::onBlock(BlockId B) {
  assert(!P->Stack.empty() && "block event outside any call");
  P->Stack.back().Blocks.push_back(B);
}

void StreamingCompactor::onExit() {
  assert(!P->Stack.empty() && "exit event outside any call");
  Impl::Frame Top = std::move(P->Stack.back());
  P->Stack.pop_back();
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Calls = M.counter(obs::names::PartitionCalls);
    static obs::Counter &BlockEvents =
        M.counter(obs::names::PartitionBlockEvents);
    static obs::Histogram &TraceLength =
        M.histogram(obs::names::PartitionTraceLength,
                    obs::names::powerOfTwoBounds(1u << 20));
    Calls.add();
    BlockEvents.add(Top.Blocks.size());
    TraceLength.record(Top.Blocks.size());
  }
  DcgNode &Node = P->Wpp.Dcg.Nodes[Top.NodeIndex];
  FunctionTraceTable &Table = P->Wpp.Functions[Node.Function];
  ++Table.CallCount;
  Table.TotalBlockEvents += Top.Blocks.size();
  Node.TraceIndex =
      P->Interners[Node.Function].intern(Table, std::move(Top.Blocks));
  ++Table.UseCounts[Node.TraceIndex];
}

size_t StreamingCompactor::openFrames() const { return P->Stack.size(); }

PartitionedWpp StreamingCompactor::takePartitioned() {
  assert(balanced() && "takePartitioned with open frames");
  PartitionedWpp Out = std::move(P->Wpp);
  P = std::make_unique<Impl>(static_cast<uint32_t>(Out.Functions.size()));
  if (obs::enabled()) {
    // Stage 2 size accounting (mirrors measureStages so live factors match
    // Table 2): bytes_in keeps every duplicate, bytes_out deduplicates.
    uint64_t BytesIn = 0, BytesOut = 0;
    for (const FunctionTraceTable &Table : Out.Functions) {
      for (size_t T = 0; T < Table.UniqueTraces.size(); ++T) {
        uint64_t Bytes = pathTraceBytes(Table.UniqueTraces[T]);
        BytesIn += Bytes * Table.UseCounts[T];
        BytesOut += Bytes;
      }
    }
    obs::MetricsRegistry &M = obs::metrics();
    M.gauge(obs::names::PartitionBytesIn).set(static_cast<int64_t>(BytesIn));
    M.gauge(obs::names::PartitionBytesOut).set(static_cast<int64_t>(BytesOut));
    obs::traceCounter(obs::names::PartitionBytesOut,
                      static_cast<int64_t>(BytesOut));
  }
  return Out;
}

TwppWpp StreamingCompactor::takeCompacted(const ParallelConfig &Config) {
  // Same span hierarchy as the batch compactWpp so the two paths render
  // identically. The partition span only covers finalization here: the
  // per-event work happened online, interleaved with the program run.
  obs::PhaseSpan Span("compact");
  PartitionedWpp Partitioned = [&] {
    obs::PhaseSpan PartitionSpan("partition");
    return takePartitioned();
  }();
  TwppWpp Out = convertToTwpp(applyDbbCompaction(std::move(Partitioned),
                                                 Config),
                              Config);
  maybeVerifyWpp(Out, "streaming");
  return Out;
}
