//===- wpp/Streaming.cpp - Online WPP compaction ---------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Streaming.h"

#include <cassert>
#include <unordered_map>

using namespace twpp;

namespace {

/// Dedupe helper shared conceptually with Partition.cpp: maps a path
/// trace to its index in a function's unique trace table, bucketed by
/// hash and verified by comparison.
class TraceInterner {
public:
  uint32_t intern(FunctionTraceTable &Table, PathTrace &&Trace) {
    uint64_t Hash = hashBlockSequence(Trace);
    auto Range = Buckets.equal_range(Hash);
    for (auto It = Range.first; It != Range.second; ++It)
      if (Table.UniqueTraces[It->second] == Trace)
        return It->second;
    uint32_t Index = static_cast<uint32_t>(Table.UniqueTraces.size());
    Table.UniqueTraces.push_back(std::move(Trace));
    Table.UseCounts.push_back(0);
    Buckets.emplace(Hash, Index);
    return Index;
  }

private:
  std::unordered_multimap<uint64_t, uint32_t> Buckets;
};

} // namespace

struct StreamingCompactor::Impl {
  PartitionedWpp Wpp;
  std::vector<TraceInterner> Interners;

  struct Frame {
    uint32_t NodeIndex;
    PathTrace Blocks;
  };
  std::vector<Frame> Stack;

  explicit Impl(uint32_t FunctionCount) {
    Wpp.Functions.resize(FunctionCount);
    Interners.resize(FunctionCount);
  }
};

StreamingCompactor::StreamingCompactor(uint32_t FunctionCount)
    : P(std::make_unique<Impl>(FunctionCount)) {}

StreamingCompactor::~StreamingCompactor() = default;

void StreamingCompactor::onEnter(FunctionId F) {
  assert(F < P->Wpp.Functions.size() && "function id out of range");
  uint32_t NodeIndex = static_cast<uint32_t>(P->Wpp.Dcg.Nodes.size());
  P->Wpp.Dcg.Nodes.push_back(DcgNode{F, 0, {}, {}});
  if (P->Stack.empty()) {
    P->Wpp.Dcg.Roots.push_back(NodeIndex);
  } else {
    Impl::Frame &Parent = P->Stack.back();
    P->Wpp.Dcg.Nodes[Parent.NodeIndex].Children.push_back(NodeIndex);
    P->Wpp.Dcg.Nodes[Parent.NodeIndex].Anchors.push_back(
        static_cast<uint32_t>(Parent.Blocks.size()));
  }
  P->Stack.push_back(Impl::Frame{NodeIndex, {}});
}

void StreamingCompactor::onBlock(BlockId B) {
  assert(!P->Stack.empty() && "block event outside any call");
  P->Stack.back().Blocks.push_back(B);
}

void StreamingCompactor::onExit() {
  assert(!P->Stack.empty() && "exit event outside any call");
  Impl::Frame Top = std::move(P->Stack.back());
  P->Stack.pop_back();
  DcgNode &Node = P->Wpp.Dcg.Nodes[Top.NodeIndex];
  FunctionTraceTable &Table = P->Wpp.Functions[Node.Function];
  ++Table.CallCount;
  Table.TotalBlockEvents += Top.Blocks.size();
  Node.TraceIndex =
      P->Interners[Node.Function].intern(Table, std::move(Top.Blocks));
  ++Table.UseCounts[Node.TraceIndex];
}

size_t StreamingCompactor::openFrames() const { return P->Stack.size(); }

PartitionedWpp StreamingCompactor::takePartitioned() {
  assert(balanced() && "takePartitioned with open frames");
  PartitionedWpp Out = std::move(P->Wpp);
  P = std::make_unique<Impl>(static_cast<uint32_t>(Out.Functions.size()));
  return Out;
}

TwppWpp StreamingCompactor::takeCompacted() {
  return convertToTwpp(applyDbbCompaction(takePartitioned()));
}
