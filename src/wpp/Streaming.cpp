//===- wpp/Streaming.cpp - Online WPP compaction ---------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/DeepSize.h"
#include "wpp/Streaming.h"

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "obs/Trace.h"
#include "support/ByteStream.h"
#include "support/FaultInjection.h"
#include "wpp/Journal.h"
#include "wpp/Sizes.h"
#include "wpp/VerifyHooks.h"

#include <algorithm>
#include <cassert>
#include <new>
#include <unordered_map>

using namespace twpp;

namespace {

/// Dedupe helper shared conceptually with Partition.cpp: maps a path
/// trace to its index in a function's unique trace table, bucketed by
/// hash and verified by comparison.
class TraceInterner {
public:
  uint32_t intern(FunctionTraceTable &Table, PathTrace &&Trace) {
    uint64_t Hash = hashBlockSequence(Trace);
    auto Range = Buckets.equal_range(Hash);
    for (auto It = Range.first; It != Range.second; ++It)
      if (Table.UniqueTraces[It->second] == Trace)
        return It->second;
    static obs::Counter &UniqueTraces =
        obs::metrics().counter(obs::names::PartitionUniqueTraces);
    UniqueTraces.add();
    uint32_t Index = static_cast<uint32_t>(Table.UniqueTraces.size());
    Table.UniqueTraces.push_back(std::move(Trace));
    Table.UseCounts.push_back(0);
    Buckets.emplace(Hash, Index);
    return Index;
  }

  /// Reseeds the hash buckets from an already-populated table (the
  /// resume path). Index assignment matches what repeated intern() calls
  /// would have produced, so a restored compactor interns identically.
  void rebuild(const FunctionTraceTable &Table) {
    Buckets.clear();
    for (uint32_t I = 0; I < Table.UniqueTraces.size(); ++I)
      Buckets.emplace(hashBlockSequence(Table.UniqueTraces[I]), I);
  }

private:
  std::unordered_multimap<uint64_t, uint32_t> Buckets;
};

/// Accounting model for the degradable state: the obs::deepSize figures of
/// what the compactor actually holds (interned trace buffers and open
/// frames), so MemoryBudgetBytes bounds the same quantity the memory
/// audits report. Exactly recomputable from a restored snapshot
/// (restoreState recomputes from scratch and lands on the same number the
/// incremental updates did) and independent of observability being on.
uint64_t uniqueTraceBytes(size_t Blocks) {
  return obs::pathTraceDeepSize(Blocks);
}

} // namespace

struct StreamingCompactor::Impl {
  StreamingConfig Config;
  PartitionedWpp Wpp;
  std::vector<TraceInterner> Interners;

  struct Frame {
    uint32_t NodeIndex;
    PathTrace Blocks;
  };
  std::vector<Frame> Stack;

  JournalWriter Journal;
  IoError LastJournalError;
  uint64_t EventCount = 0;
  uint64_t Checkpoints = 0;
  uint64_t Degraded = 0;
  /// Unique-trace + open-frame bytes per the deep-size model. An
  /// unconditional instance ledger — the budget must behave identically
  /// whether or not tracking is enabled — mirrored into the global
  /// stream.state tag when it is.
  obs::MemAccount StateAccount;

  static uint64_t openFrameBytes(size_t Blocks) {
    return sizeof(Frame) + Blocks * sizeof(BlockId);
  }

  /// The tracker's live-bytes figure for this compactor.
  uint64_t stateBytes() const {
    int64_t Live = StateAccount.liveBytes();
    return Live > 0 ? static_cast<uint64_t>(Live) : 0;
  }

  void stateAlloc(uint64_t Bytes) {
    StateAccount.recordAlloc(Bytes);
    obs::memAlloc(obs::memtags::StreamState, Bytes);
  }

  void stateFree(uint64_t Bytes) {
    StateAccount.recordFree(Bytes);
    obs::memFree(obs::memtags::StreamState, Bytes);
  }

  void stateReset() {
    if (uint64_t Live = stateBytes())
      obs::memFree(obs::memtags::StreamState, Live);
    StateAccount.reset();
  }

  explicit Impl(uint32_t FunctionCount) {
    Wpp.Functions.resize(FunctionCount);
    Interners.resize(FunctionCount);
  }

  ~Impl() { stateReset(); } // release the mirrored stream.state live bytes

  /// Back to an empty stream (after takePartitioned), keeping the
  /// journal, config and cumulative checkpoint/degrade counters.
  void resetStream(size_t FunctionCount) {
    Wpp = PartitionedWpp{};
    Wpp.Functions.resize(FunctionCount);
    Interners.assign(FunctionCount, TraceInterner());
    Stack.clear();
    EventCount = 0;
    stateReset();
  }

  /// Serializes the complete state. Everything onEnter/onBlock/onExit
  /// mutate is captured, so replaying the residual event suffix on a
  /// restored compactor reproduces the uninterrupted run byte for byte.
  std::vector<uint8_t> snapshot() const {
    ByteWriter W;
    W.writeFixed32(static_cast<uint32_t>(Wpp.Functions.size()));
    W.writeFixed64(EventCount);
    W.writeFixed64(Degraded);
    std::vector<uint8_t> Dcg = encodeDcg(Wpp.Dcg);
    W.writeVarUint(Dcg.size());
    W.writeBytes(Dcg.data(), Dcg.size());
    for (const FunctionTraceTable &Table : Wpp.Functions) {
      W.writeVarUint(Table.CallCount);
      W.writeVarUint(Table.TotalBlockEvents);
      W.writeVarUint(Table.UniqueTraces.size());
      for (const PathTrace &Trace : Table.UniqueTraces) {
        W.writeVarUint(Trace.size());
        for (BlockId B : Trace)
          W.writeVarUint(B);
      }
      for (uint64_t Uses : Table.UseCounts)
        W.writeVarUint(Uses);
    }
    W.writeVarUint(Stack.size());
    for (const Frame &F : Stack) {
      W.writeVarUint(F.NodeIndex);
      W.writeVarUint(F.Blocks.size());
      for (BlockId B : F.Blocks)
        W.writeVarUint(B);
    }
    return W.take();
  }

  /// Appends one checkpoint to the open journal. Failures (IO or
  /// allocation, injected or real) are counted and remembered, never
  /// propagated as aborts: losing checkpoint granularity is strictly
  /// better than losing the traced process.
  IoError writeCheckpoint() {
    obs::PhaseSpan Span("journal_checkpoint");
    IoError Result;
    try {
      fault::maybeFailAlloc();
      Result = Journal.append(snapshot());
    } catch (const std::bad_alloc &) {
      Result.Status = IoStatus::WriteFailed;
      Result.Detail = Journal.path() + " (checkpoint allocation failed)";
    }
    obs::MetricsRegistry &M = obs::metrics();
    if (Result.ok()) {
      ++Checkpoints;
      M.counter(obs::names::JournalCheckpoints).add();
      M.gauge(obs::names::StreamStateBytes)
          .set(static_cast<int64_t>(stateBytes()));
    } else {
      LastJournalError = Result;
      M.counter(obs::names::JournalCheckpointFailures).add();
    }
    return Result;
  }

  void maybeCheckpoint() {
    if (Config.CheckpointInterval == 0 || !Journal.isOpen())
      return;
    if (EventCount % Config.CheckpointInterval == 0)
      writeCheckpoint();
  }

  /// Budget enforcement: drop the oldest open frame's block detail (and
  /// zero that node's already-recorded anchors, keeping the DCG anchor
  /// invariants intact against the now-shorter trace) until back under
  /// budget or nothing is left to drop.
  void enforceBudget() {
    if (Config.MemoryBudgetBytes == 0 ||
        stateBytes() <= Config.MemoryBudgetBytes)
      return;
    for (Frame &F : Stack) {
      if (F.Blocks.empty())
        continue;
      stateFree(F.Blocks.size() * sizeof(BlockId));
      PathTrace().swap(F.Blocks);
      DcgNode &Node = Wpp.Dcg.Nodes[F.NodeIndex];
      std::fill(Node.Anchors.begin(), Node.Anchors.end(), 0);
      ++Degraded;
      obs::metrics().counter(obs::names::StreamDegraded).add();
      obs::traceInstant("stream_degraded", "frame",
                        static_cast<int64_t>(F.NodeIndex));
      if (stateBytes() <= Config.MemoryBudgetBytes)
        return;
    }
  }
};

StreamingCompactor::StreamingCompactor(uint32_t FunctionCount)
    : StreamingCompactor(FunctionCount, StreamingConfig()) {}

StreamingCompactor::StreamingCompactor(uint32_t FunctionCount,
                                       const StreamingConfig &Config)
    : P(std::make_unique<Impl>(FunctionCount)) {
  P->Config = Config;
  if (!Config.JournalPath.empty()) {
    IoError E = P->Journal.open(Config.JournalPath, /*Append=*/false);
    if (!E) {
      // Journaling is an add-on; a compactor that cannot journal still
      // compacts.
      P->LastJournalError = E;
      obs::metrics().counter(obs::names::JournalCheckpointFailures).add();
    }
  }
}

StreamingCompactor::~StreamingCompactor() = default;

void StreamingCompactor::onEnter(FunctionId F) {
  assert(F < P->Wpp.Functions.size() && "function id out of range");
  uint32_t NodeIndex = static_cast<uint32_t>(P->Wpp.Dcg.Nodes.size());
  P->Wpp.Dcg.Nodes.push_back(DcgNode{F, 0, {}, {}});
  if (P->Stack.empty()) {
    P->Wpp.Dcg.Roots.push_back(NodeIndex);
  } else {
    Impl::Frame &Parent = P->Stack.back();
    P->Wpp.Dcg.Nodes[Parent.NodeIndex].Children.push_back(NodeIndex);
    P->Wpp.Dcg.Nodes[Parent.NodeIndex].Anchors.push_back(
        static_cast<uint32_t>(Parent.Blocks.size()));
  }
  P->Stack.push_back(Impl::Frame{NodeIndex, {}});
  P->stateAlloc(Impl::openFrameBytes(0));
  ++P->EventCount;
  P->enforceBudget();
  P->maybeCheckpoint();
}

void StreamingCompactor::onBlock(BlockId B) {
  assert(!P->Stack.empty() && "block event outside any call");
  P->Stack.back().Blocks.push_back(B);
  P->stateAlloc(sizeof(BlockId));
  ++P->EventCount;
  P->enforceBudget();
  P->maybeCheckpoint();
}

void StreamingCompactor::onExit() {
  assert(!P->Stack.empty() && "exit event outside any call");
  Impl::Frame Top = std::move(P->Stack.back());
  P->Stack.pop_back();
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Calls = M.counter(obs::names::PartitionCalls);
    static obs::Counter &BlockEvents =
        M.counter(obs::names::PartitionBlockEvents);
    static obs::Histogram &TraceLength =
        M.histogram(obs::names::PartitionTraceLength,
                    obs::names::powerOfTwoBounds(1u << 20));
    Calls.add();
    BlockEvents.add(Top.Blocks.size());
    TraceLength.record(Top.Blocks.size());
  }
  DcgNode &Node = P->Wpp.Dcg.Nodes[Top.NodeIndex];
  FunctionTraceTable &Table = P->Wpp.Functions[Node.Function];
  ++Table.CallCount;
  Table.TotalBlockEvents += Top.Blocks.size();
  size_t TraceLen = Top.Blocks.size();
  size_t UniqueBefore = Table.UniqueTraces.size();
  Node.TraceIndex =
      P->Interners[Node.Function].intern(Table, std::move(Top.Blocks));
  ++Table.UseCounts[Node.TraceIndex];
  P->stateFree(Impl::openFrameBytes(TraceLen));
  if (Table.UniqueTraces.size() > UniqueBefore)
    P->stateAlloc(uniqueTraceBytes(TraceLen));
  ++P->EventCount;
  P->enforceBudget();
  P->maybeCheckpoint();
}

size_t StreamingCompactor::openFrames() const { return P->Stack.size(); }

uint32_t StreamingCompactor::functionCount() const {
  return static_cast<uint32_t>(P->Wpp.Functions.size());
}

uint64_t StreamingCompactor::eventsConsumed() const { return P->EventCount; }

uint64_t StreamingCompactor::checkpointsWritten() const {
  return P->Checkpoints;
}

uint64_t StreamingCompactor::degradedFrames() const { return P->Degraded; }

uint64_t StreamingCompactor::trackedStateBytes() const {
  return P->stateBytes();
}

const IoError &StreamingCompactor::lastJournalError() const {
  return P->LastJournalError;
}

std::vector<uint8_t> StreamingCompactor::snapshotState() const {
  return P->snapshot();
}

bool StreamingCompactor::restoreState(const std::vector<uint8_t> &Payload) {
  ByteReader Reader(Payload);
  if (Reader.readFixed32() != P->Wpp.Functions.size())
    return false;
  uint64_t EventCount = Reader.readFixed64();
  uint64_t Degraded = Reader.readFixed64();

  uint64_t DcgSize = Reader.readVarUint();
  if (Reader.hasError() || DcgSize > Reader.remaining())
    return false;
  std::vector<uint8_t> DcgBytes(DcgSize);
  Reader.readBytes(DcgBytes.data(), DcgBytes.size());
  DynamicCallGraph Dcg;
  if (!decodeDcg(DcgBytes, Dcg))
    return false;

  std::vector<FunctionTraceTable> Functions(P->Wpp.Functions.size());
  for (FunctionTraceTable &Table : Functions) {
    Table.CallCount = Reader.readVarUint();
    Table.TotalBlockEvents = Reader.readVarUint();
    uint64_t TraceCount = Reader.readVarUint();
    // Every trace costs at least one byte, so a count beyond the bytes
    // left is a lie — reject before it turns into a huge allocation.
    if (Reader.hasError() || TraceCount > Reader.remaining())
      return false;
    Table.UniqueTraces.resize(TraceCount);
    for (PathTrace &Trace : Table.UniqueTraces) {
      uint64_t Length = Reader.readVarUint();
      if (Reader.hasError() || Length > Reader.remaining())
        return false;
      Trace.resize(Length);
      for (BlockId &B : Trace) {
        uint64_t Value = Reader.readVarUint();
        if (Value > UINT32_MAX)
          return false;
        B = static_cast<BlockId>(Value);
      }
    }
    Table.UseCounts.resize(TraceCount);
    for (uint64_t &Uses : Table.UseCounts)
      Uses = Reader.readVarUint();
  }

  uint64_t StackSize = Reader.readVarUint();
  if (Reader.hasError() || StackSize > Reader.remaining())
    return false;
  std::vector<Impl::Frame> Stack(StackSize);
  uint32_t PrevNode = 0;
  for (size_t F = 0; F < Stack.size(); ++F) {
    uint64_t NodeIndex = Reader.readVarUint();
    // Frames are the path from a root to the innermost open call;
    // ancestors were created first, so indices strictly increase.
    if (NodeIndex >= Dcg.Nodes.size() ||
        (F > 0 && NodeIndex <= PrevNode))
      return false;
    Stack[F].NodeIndex = static_cast<uint32_t>(NodeIndex);
    PrevNode = static_cast<uint32_t>(NodeIndex);
    uint64_t Length = Reader.readVarUint();
    if (Reader.hasError() || Length > Reader.remaining())
      return false;
    Stack[F].Blocks.resize(Length);
    for (BlockId &B : Stack[F].Blocks) {
      uint64_t Value = Reader.readVarUint();
      if (Value > UINT32_MAX)
        return false;
      B = static_cast<BlockId>(Value);
    }
  }
  if (Reader.hasError() || !Reader.atEnd())
    return false;

  // Cross-validate the DCG against the tables so a tampered checkpoint
  // cannot plant out-of-bounds indices the pipeline would chase later.
  std::vector<bool> Open(Dcg.Nodes.size(), false);
  for (const Impl::Frame &F : Stack)
    Open[F.NodeIndex] = true;
  for (size_t N = 0; N < Dcg.Nodes.size(); ++N) {
    const DcgNode &Node = Dcg.Nodes[N];
    if (Node.Function >= Functions.size())
      return false;
    if (!Open[N] &&
        Node.TraceIndex >= Functions[Node.Function].UniqueTraces.size())
      return false;
  }

  P->Wpp.Dcg = std::move(Dcg);
  P->Wpp.Functions = std::move(Functions);
  P->Stack = std::move(Stack);
  P->EventCount = EventCount;
  P->Degraded = Degraded;
  for (size_t F = 0; F < P->Wpp.Functions.size(); ++F)
    P->Interners[F].rebuild(P->Wpp.Functions[F]);
  P->stateReset();
  uint64_t Recomputed = 0;
  for (const FunctionTraceTable &Table : P->Wpp.Functions)
    for (const PathTrace &Trace : Table.UniqueTraces)
      Recomputed += uniqueTraceBytes(Trace.size());
  for (const Impl::Frame &F : P->Stack)
    Recomputed += Impl::openFrameBytes(F.Blocks.size());
  P->stateAlloc(Recomputed);
  return true;
}

IoError StreamingCompactor::checkpointNow() {
  if (!P->Journal.isOpen())
    return IoError::success();
  return P->writeCheckpoint();
}

std::unique_ptr<StreamingCompactor>
StreamingCompactor::resumeFromJournal(const std::string &JournalPath,
                                      const StreamingConfig &Config,
                                      std::string *Error) {
  auto Fail = [&](std::string Message) {
    if (Error)
      *Error = std::move(Message);
    return nullptr;
  };
  std::vector<uint8_t> Bytes;
  IoError Read = readFileBytes(JournalPath, Bytes);
  if (!Read)
    return Fail("cannot read journal: " + Read.message());
  JournalScan Scan = scanJournal(Bytes);
  if (Scan.CorruptRecords > 0 || Scan.TornBytes > 0)
    obs::metrics()
        .counter(obs::names::JournalRecordsDropped)
        .add(Scan.CorruptRecords + (Scan.TornBytes > 0 ? 1 : 0));
  if (Scan.ValidRecords == 0)
    return Fail("journal holds no valid checkpoint: " + JournalPath);
  ByteReader Peek(Scan.LastPayload);
  uint32_t FunctionCount = Peek.readFixed32();
  if (Peek.hasError())
    return Fail("checkpoint payload is truncated: " + JournalPath);

  auto Out = std::make_unique<StreamingCompactor>(FunctionCount);
  if (!Out->restoreState(Scan.LastPayload))
    return Fail("checkpoint payload is malformed: " + JournalPath);
  Out->P->Config = Config;
  std::string ReopenPath =
      Config.JournalPath.empty() ? JournalPath : Config.JournalPath;
  // Reopen in append mode: the records already there stay valid fallback
  // checkpoints if this process also dies.
  IoError Reopen = Out->P->Journal.open(ReopenPath, /*Append=*/true);
  if (!Reopen) {
    Out->P->LastJournalError = Reopen;
    obs::metrics().counter(obs::names::JournalCheckpointFailures).add();
  }
  obs::metrics().counter(obs::names::JournalResumes).add();
  obs::traceInstant("journal_resume", "events",
                    static_cast<int64_t>(Out->P->EventCount));
  return Out;
}

PartitionedWpp StreamingCompactor::takePartitioned() {
  assert(balanced() && "takePartitioned with open frames");
  // Capture the count before the move empties Wpp.Functions: a reused
  // compactor must keep serving the same function universe.
  size_t FunctionCount = P->Wpp.Functions.size();
  PartitionedWpp Out = std::move(P->Wpp);
  P->resetStream(FunctionCount);
  if (obs::enabled()) {
    // Stage 2 size accounting (mirrors measureStages so live factors match
    // Table 2): bytes_in keeps every duplicate, bytes_out deduplicates.
    uint64_t BytesIn = 0, BytesOut = 0;
    for (const FunctionTraceTable &Table : Out.Functions) {
      for (size_t T = 0; T < Table.UniqueTraces.size(); ++T) {
        uint64_t Bytes = pathTraceBytes(Table.UniqueTraces[T]);
        BytesIn += Bytes * Table.UseCounts[T];
        BytesOut += Bytes;
      }
    }
    obs::MetricsRegistry &M = obs::metrics();
    M.gauge(obs::names::PartitionBytesIn).set(static_cast<int64_t>(BytesIn));
    M.gauge(obs::names::PartitionBytesOut).set(static_cast<int64_t>(BytesOut));
    obs::traceCounter(obs::names::PartitionBytesOut,
                      static_cast<int64_t>(BytesOut));
  }
  return Out;
}

TwppWpp StreamingCompactor::takeCompacted(const ParallelConfig &Config) {
  // Same span hierarchy as the batch compactWpp so the two paths render
  // identically. The partition span only covers finalization here: the
  // per-event work happened online, interleaved with the program run.
  obs::PhaseSpan Span("compact");
  PartitionedWpp Partitioned = [&] {
    obs::PhaseSpan PartitionSpan("partition");
    return takePartitioned();
  }();
  TwppWpp Out = convertToTwpp(applyDbbCompaction(std::move(Partitioned),
                                                 Config),
                              Config);
  maybeVerifyWpp(Out, "streaming");
  return Out;
}
