//===- wpp/VerifyHooks.cpp - Pipeline verification seam -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/VerifyHooks.h"

#include <cstdlib>

using namespace twpp;

VerifyHooks &twpp::verifyHooks() {
  static VerifyHooks Hooks;
  return Hooks;
}

bool twpp::verifyEnvEnabled() {
  static const bool Enabled = [] {
    const char *Env = std::getenv("TWPP_VERIFY");
    return Env && Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0');
  }();
  return Enabled;
}

void twpp::maybeVerifyWpp(const TwppWpp &Wpp, const char *Stage) {
  if (verifyEnvEnabled() && verifyHooks().VerifyWpp)
    verifyHooks().VerifyWpp(Wpp, Stage);
}

void twpp::maybeVerifyArchiveBytes(const std::vector<uint8_t> &Bytes,
                                   const char *Stage) {
  if (verifyEnvEnabled() && verifyHooks().VerifyArchiveBytes)
    verifyHooks().VerifyArchiveBytes(Bytes, Stage);
}
