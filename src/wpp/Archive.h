//===- wpp/Archive.h - Compacted TWPP on-disk archive -----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compacted TWPP file format. Per the paper's access-time design
/// (Section 3): a fixed header records where each function's block lives;
/// the path traces (with dictionaries) of the most frequently called
/// function are stored first; the LZW-compressed dynamic call graph
/// follows the function blocks. Extracting one function's traces costs two
/// small reads (index row + block) regardless of archive size — this is
/// what produces the >3 orders of magnitude speedup of Table 4.
///
/// Layout:
///   [0)   magic (fixed32) | version (fixed32) | functionCount (fixed32)
///   [12)  dcgOffset (fixed64) | dcgLength (fixed64)
///   [28)  index: functionCount rows of offset/length/callCount (fixed64x3)
///   [...] function blocks, sorted by call count descending
///   [...] LZW-compressed DCG
///
/// Version 2 (thread-aware archives only; single-threaded archives keep
/// emitting byte-identical version-1 files) appends a section trailer
/// after the DCG: a sequence of `tag (fixed32) | length (fixed64) |
/// payload` records walked to end of file. Known tags are "THRD" (thread
/// table), "HBEG" (happens-before edges) and "ACCS" (per-thread
/// per-address access timestamp sets); an unknown tag is a hard open()
/// error (twpp-archive-section), never silently skipped.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_ARCHIVE_H
#define TWPP_WPP_ARCHIVE_H

#include "support/FileIO.h"     // IoError
#include "support/Mmap.h"       // MappedFile + ByteSpan
#include "verify/Diagnostics.h" // header-only; no link dependency
#include "wpp/Concurrent.h"
#include "wpp/Twpp.h"

#include <string>
#include <vector>

namespace twpp {

/// Version-2 section trailer tags ("THRD", "HBEG", "ACCS" as big-endian
/// ASCII). Stable on-disk identifiers — never renumber.
inline constexpr uint32_t ArchiveSectionThreads = 0x54485244;
inline constexpr uint32_t ArchiveSectionHbEdges = 0x48424547;
inline constexpr uint32_t ArchiveSectionAccesses = 0x41434353;

/// How ArchiveReader gets bytes off disk.
///  - Buffered: read() each extent into an owned buffer (the historical
///    path, and the fallback).
///  - Mmap: map the file once and decode every extent in place through
///    ByteSpan cursors — the zero-copy path. When the mapping cannot be
///    established (platform without mmap, injected io:mmap fault, IO
///    error) the reader falls back to Buffered and counts
///    archive.mmap_fallbacks; decoded structures are identical either way.
enum class IoMode : uint8_t { Buffered, Mmap };

/// Process-wide default mode for ArchiveReader::open(Path). Ships as Mmap
/// (zero-copy with graceful fallback); the CLIs' --io=mmap|buffered flag
/// sets it explicitly.
IoMode defaultArchiveIoMode();
void setDefaultArchiveIoMode(IoMode Mode);

/// Parses an --io= flag value ("mmap" or "buffered"). \returns false on
/// anything else, leaving \p Mode untouched.
bool parseIoMode(const std::string &Text, IoMode &Mode);

/// "mmap" / "buffered".
const char *ioModeName(IoMode Mode);

/// Returns the calling thread's pooled decode-scratch arena (arena.decode
/// ledger bytes) to the heap. Decode keeps the pool warm across queries by
/// design; long-idle services and leak-asserting tests call this to settle
/// the ledger explicitly.
void releaseArchiveDecodeScratch();

/// Serializes one function's TWPP tables (trace strings, dictionaries,
/// (t, d) pairs, use counts).
std::vector<uint8_t> encodeTwppFunctionTable(const TwppFunctionTable &Table);

/// Inverse of encodeTwppFunctionTable. \returns false on malformed bytes.
/// The span form is the primary entry point: the mmap read path hands it
/// a cursor straight into the mapping.
bool decodeTwppFunctionTable(ByteSpan Bytes, TwppFunctionTable &Table);

inline bool decodeTwppFunctionTable(const std::vector<uint8_t> &Bytes,
                                    TwppFunctionTable &Table) {
  return decodeTwppFunctionTable(ByteSpan(Bytes), Table);
}

/// Serializes a whole compacted TWPP into the archive byte format.
/// Function blocks are encoded concurrently under \p Config and stitched
/// serially in stable call-count order, so the bytes are identical for
/// any job count.
std::vector<uint8_t> encodeArchive(const TwppWpp &Wpp,
                                   const ParallelConfig &Config = {});

/// Writes \p Wpp to \p Path in archive format (atomically: temp + fsync
/// + rename). \returns true on success; on failure \p Err, when given,
/// receives the typed IO error.
bool writeArchiveFile(const std::string &Path, const TwppWpp &Wpp,
                      const ParallelConfig &Config = {},
                      IoError *Err = nullptr);

/// Decodes one version-2 section payload into the matching fields of
/// \p Out. THRD must be decoded before ACCS (the access decoder checks
/// the thread count against the table). \returns false on malformed
/// bytes or an unknown tag. Exposed for the verifier's raw-byte walk.
bool decodeArchiveSection(uint32_t Tag, ByteSpan Payload,
                          ConcurrencyInfo &Out);

/// Serializes a thread-aware concurrent WPP: the merged body in the
/// version-2 layout plus the THRD/HBEG/ACCS section trailer.
std::vector<uint8_t>
encodeConcurrentArchive(const ConcurrentWpp &Wpp,
                        const ParallelConfig &Config = {});

/// writeArchiveFile for concurrent WPPs (version-2 bytes).
bool writeConcurrentArchiveFile(const std::string &Path,
                                const ConcurrentWpp &Wpp,
                                const ParallelConfig &Config = {},
                                IoError *Err = nullptr);

/// Random-access reader over an archive file. open() reads only the fixed
/// header and index; extractFunction() reads only that function's block.
class ArchiveReader {
public:
  /// Opens \p Path and loads the header + index. \returns false on IO or
  /// format errors. The one-argument form uses defaultArchiveIoMode().
  bool open(const std::string &Path);
  bool open(const std::string &Path, IoMode Mode);

  /// The mode the reader is actually using after open(): Buffered either
  /// when requested or when an mmap attempt fell back.
  IoMode ioMode() const { return Mode; }

  uint32_t functionCount() const {
    return static_cast<uint32_t>(Index.size());
  }

  /// Number of calls to \p Function recorded in the archive; 0 when the
  /// archive holds no such function.
  uint64_t callCount(FunctionId Function) const {
    return Function < Index.size() ? Index[Function].CallCount : 0;
  }

  /// On-disk byte length of \p Function's block; 0 when the archive holds
  /// no such function. (twpp_memstat's compressed-size column.)
  uint64_t blockLength(FunctionId Function) const {
    return Function < Index.size() ? Index[Function].Length : 0;
  }

  /// On-disk byte length of the LZW-compressed DCG extent.
  uint64_t dcgLength() const { return DcgLength; }

  /// Reads and decodes the block of \p Function (one file slice).
  /// \returns false on IO or format errors.
  bool extractFunction(FunctionId Function, TwppFunctionTable &Table) const;

  /// Expands \p Function's unique path traces to raw block sequences.
  bool extractFunctionPathTraces(FunctionId Function,
                                 FunctionPathTraces &Out) const;

  /// Reads and LZW-decompresses the dynamic call graph.
  bool readDcg(DynamicCallGraph &Dcg) const;

  /// Loads the entire archive back into memory (DCG + every function).
  bool readAll(TwppWpp &Wpp) const;

  /// Archive format version (1 or 2) after a successful open().
  uint32_t version() const { return Version; }

  /// True when the archive carries the thread-aware section trailer.
  bool threadAware() const { return findSection(ArchiveSectionThreads); }

  /// Decodes the concurrency metadata (thread table, happens-before
  /// edges, access sets) — the race detector's whole input; the
  /// control-flow blocks stay untouched on disk. Fails on archives
  /// without the thread trailer.
  bool readConcurrency(ConcurrencyInfo &Out) const;

  /// Loads a thread-aware archive completely: merged body + concurrency
  /// metadata.
  bool readAllConcurrent(ConcurrentWpp &Out) const;

  /// Describes the most recent failure of any reader method as a
  /// verifier diagnostic: the violated check id, the archive section
  /// ("header", "index row 3", "function 2 block", "dcg") in Location,
  /// and the file offset of the offending bytes in ByteOffset. Only
  /// meaningful after a method returned false.
  const verify::Diagnostic &lastError() const { return LastError; }

private:
  struct IndexEntry {
    uint64_t Offset = 0;
    uint64_t Length = 0;
    uint64_t CallCount = 0;
  };

  struct Section {
    uint32_t Tag = 0;
    uint64_t Offset = 0; ///< Payload offset (past the 12-byte record head).
    uint64_t Length = 0;
  };

  const Section *findSection(uint32_t Tag) const;

  /// Records \p D as lastError() and returns false (failure shorthand).
  bool fail(std::string CheckId, std::string Message, std::string Section,
            uint64_t ByteOffset) const;

  /// Produces the bytes of [Offset, Offset+Length): a view into the
  /// mapping in mmap mode, a read into \p Storage otherwise. \returns
  /// false when the extent cannot be produced (past-EOF, IO failure);
  /// the caller owns the diagnostic.
  bool readSlice(uint64_t Offset, uint64_t Length,
                 std::vector<uint8_t> &Storage, ByteSpan &Out) const;

  std::string Path;
  uint64_t DcgOffset = 0;
  uint64_t DcgLength = 0;
  uint32_t Version = 1;
  std::vector<IndexEntry> Index;
  std::vector<Section> Sections;
  MappedFile Map;
  IoMode Mode = IoMode::Buffered;
  mutable verify::Diagnostic LastError;
};

} // namespace twpp

#endif // TWPP_WPP_ARCHIVE_H
