//===- wpp/TimestampSet.cpp - Arithmetic-series timestamp sets ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/TimestampSet.h"

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"

#include <algorithm>
#include <cassert>

using namespace twpp;

TimestampSet TimestampSet::fromSorted(const std::vector<Timestamp> &Sorted) {
  TimestampSet Set;
  size_t I = 0, N = Sorted.size();
  while (I < N) {
    assert(Sorted[I] > 0 && "timestamps must be positive");
    assert((I == 0 || Sorted[I] > Sorted[I - 1]) &&
           "timestamps must be strictly increasing");
    if (I + 1 == N) {
      Set.Runs.push_back({Sorted[I], Sorted[I], 1});
      break;
    }
    uint32_t Step = Sorted[I + 1] - Sorted[I];
    size_t J = I + 1;
    while (J + 1 < N && Sorted[J + 1] - Sorted[J] == Step)
      ++J;
    size_t RunLength = J - I + 1;
    if (RunLength == 2 && Step != 1) {
      // Two singletons (2 encoded ints) beat an l:h:s entry (3 ints).
      Set.Runs.push_back({Sorted[I], Sorted[I], 1});
      I += 1;
    } else {
      Set.Runs.push_back({Sorted[I], Sorted[J], Step});
      I = J + 1;
    }
  }
  if (obs::enabled()) {
    // Series formation observability: values folded vs runs emitted is the
    // live view of the stage-5 compression ratio.
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Sets = M.counter(obs::names::TimestampSets);
    static obs::Counter &Values = M.counter(obs::names::TimestampValues);
    static obs::Counter &Runs = M.counter(obs::names::TimestampRuns);
    Sets.add();
    Values.add(Sorted.size());
    Runs.add(Set.Runs.size());
  }
  // Scoped memory attribution: the run payload lands in whichever stage
  // opened a MemScope (dropped otherwise, so stage-level deepSize records
  // do not double count the series they already include).
  obs::memAllocCurrent(Set.Runs.size() * sizeof(SeriesRun));
  return Set;
}

TimestampSet TimestampSet::fromRun(Timestamp Lo, Timestamp Hi,
                                   uint32_t Step) {
  assert(Lo > 0 && Lo <= Hi && Step >= 1 && (Hi - Lo) % Step == 0 &&
         "malformed run");
  TimestampSet Set;
  Set.Runs.push_back({Lo, Hi, Lo == Hi ? 1u : Step});
  return Set;
}

uint64_t TimestampSet::count() const {
  uint64_t Total = 0;
  for (const SeriesRun &Run : Runs)
    Total += Run.count();
  return Total;
}

bool TimestampSet::contains(Timestamp T) const {
  for (const SeriesRun &Run : Runs) {
    if (Run.Lo > T)
      return false;
    if (Run.contains(T))
      return true;
  }
  return false;
}

uint64_t TimestampSet::countInRange(Timestamp Lo, Timestamp Hi) const {
  if (Lo > Hi)
    return 0;
  uint64_t Total = 0;
  for (const SeriesRun &Run : Runs) {
    if (Run.Lo > Hi)
      break;
    if (Run.Hi < Lo)
      continue;
    // Clip the run to [Lo, Hi] along its own stride.
    uint64_t First = Run.Lo;
    if (Lo > Run.Lo)
      First = Run.Lo + ((static_cast<uint64_t>(Lo) - Run.Lo + Run.Step - 1) /
                        Run.Step) *
                           Run.Step;
    uint64_t Last = Run.Hi;
    if (Hi < Run.Hi)
      Last = Run.Lo +
             ((static_cast<uint64_t>(Hi) - Run.Lo) / Run.Step) * Run.Step;
    if (First <= Last)
      Total += (Last - First) / Run.Step + 1;
  }
  return Total;
}

Timestamp TimestampSet::firstAtLeast(Timestamp T) const {
  for (const SeriesRun &Run : Runs) {
    if (Run.Hi < T)
      continue;
    if (Run.Lo >= T)
      return Run.Lo;
    uint64_t First =
        Run.Lo +
        ((static_cast<uint64_t>(T) - Run.Lo + Run.Step - 1) / Run.Step) *
            Run.Step;
    if (First <= Run.Hi)
      return static_cast<Timestamp>(First);
  }
  return 0;
}

std::vector<Timestamp> TimestampSet::toVector() const {
  std::vector<Timestamp> Out;
  Out.reserve(count());
  for (const SeriesRun &Run : Runs)
    for (uint64_t T = Run.Lo; T <= Run.Hi; T += Run.Step)
      Out.push_back(static_cast<Timestamp>(T));
  return Out;
}

TimestampSet TimestampSet::shifted(int64_t Delta) const {
  TimestampSet Out;
  Out.Runs.reserve(Runs.size());
  for (const SeriesRun &Run : Runs) {
    int64_t Lo = static_cast<int64_t>(Run.Lo) + Delta;
    int64_t Hi = static_cast<int64_t>(Run.Hi) + Delta;
    if (Hi <= 0)
      continue;
    if (Lo <= 0) {
      // Advance Lo to the first positive element of the run.
      int64_t Skip = (1 - Lo + Run.Step - 1) / Run.Step;
      Lo += Skip * Run.Step;
      if (Lo > Hi)
        continue;
    }
    Out.Runs.push_back({static_cast<Timestamp>(Lo),
                        static_cast<Timestamp>(Hi),
                        Lo == Hi ? 1u : Run.Step});
  }
  return Out;
}

TimestampSet TimestampSet::intersect(const TimestampSet &Other) const {
  if (empty() || Other.empty())
    return TimestampSet();
  // Fast path: identical sets (common during query propagation when a
  // whole timestamp vector survives a node).
  if (*this == Other)
    return *this;
  // General path: merge the materialized element sequences. Runs keep the
  // common case cheap; correctness beats micro-optimizing the rare
  // misaligned-stride intersection.
  std::vector<Timestamp> A = toVector();
  std::vector<Timestamp> B = Other.toVector();
  std::vector<Timestamp> Meet;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Meet));
  return fromSorted(Meet);
}

TimestampSet TimestampSet::subtract(const TimestampSet &Other) const {
  if (empty())
    return TimestampSet();
  if (Other.empty())
    return *this;
  if (*this == Other)
    return TimestampSet();
  std::vector<Timestamp> A = toVector();
  std::vector<Timestamp> B = Other.toVector();
  std::vector<Timestamp> Diff;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(Diff));
  return fromSorted(Diff);
}

TimestampSet TimestampSet::unite(const TimestampSet &Other) const {
  if (empty())
    return Other;
  if (Other.empty())
    return *this;
  std::vector<Timestamp> A = toVector();
  std::vector<Timestamp> B = Other.toVector();
  std::vector<Timestamp> Join;
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Join));
  return fromSorted(Join);
}

std::vector<int64_t> TimestampSet::encodeSigned() const {
  std::vector<int64_t> Out;
  Out.reserve(encodedValueCount());
  for (const SeriesRun &Run : Runs) {
    if (Run.Lo == Run.Hi) {
      Out.push_back(-static_cast<int64_t>(Run.Lo));
    } else if (Run.Step == 1) {
      Out.push_back(static_cast<int64_t>(Run.Lo));
      Out.push_back(-static_cast<int64_t>(Run.Hi));
    } else {
      Out.push_back(static_cast<int64_t>(Run.Lo));
      Out.push_back(static_cast<int64_t>(Run.Hi));
      Out.push_back(-static_cast<int64_t>(Run.Step));
    }
  }
  return Out;
}

bool TimestampSet::decodeSigned(const int64_t *Encoded, size_t Count,
                                TimestampSet &Out) {
  Out = TimestampSet();
  size_t I = 0, N = Count;
  while (I < N) {
    int64_t First = Encoded[I++];
    if (First < 0) {
      // Singleton entry.
      Out.Runs.push_back(
          {static_cast<Timestamp>(-First), static_cast<Timestamp>(-First), 1});
      continue;
    }
    if (First == 0 || I >= N)
      return false;
    int64_t Second = Encoded[I++];
    if (Second < 0) {
      // l : h with step 1.
      int64_t Hi = -Second;
      if (Hi <= First)
        return false;
      Out.Runs.push_back({static_cast<Timestamp>(First),
                          static_cast<Timestamp>(Hi), 1});
      continue;
    }
    if (Second == 0 || I >= N)
      return false;
    int64_t Third = Encoded[I++];
    if (Third >= 0)
      return false;
    // l : h : s.
    int64_t Step = -Third;
    if (Second <= First || (Second - First) % Step != 0)
      return false;
    Out.Runs.push_back({static_cast<Timestamp>(First),
                        static_cast<Timestamp>(Second),
                        static_cast<uint32_t>(Step)});
  }
  obs::memAllocCurrent(Out.Runs.size() * sizeof(SeriesRun));
  return true;
}

uint64_t TimestampSet::encodedValueCount() const {
  uint64_t Count = 0;
  for (const SeriesRun &Run : Runs) {
    if (Run.Lo == Run.Hi)
      Count += 1;
    else if (Run.Step == 1)
      Count += 2;
    else
      Count += 3;
  }
  return Count;
}
