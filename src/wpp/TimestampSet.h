//===- wpp/TimestampSet.h - Arithmetic-series timestamp sets ----*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ordered sets of timestamps stored as arithmetic series, the TWPP path
/// trace representation (paper Section 2, "Compacting TWPP path traces").
/// A set is a sequence of entries `l` (singleton), `l:h` (step 1) or
/// `l:h:s` (step s); on disk, entry boundaries are encoded in the sign of
/// the values — the last number of every entry is stored negative — so the
/// boundaries cost no extra space.
///
/// The same class doubles as the timestamp vector propagated by the
/// demand-driven analyses (Section 4): shifting a whole series by -1 is one
/// run update, which is what makes query propagation over compacted traces
/// cheap (the paper's (2:20:2) -> (1:19:2) example).
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_TIMESTAMPSET_H
#define TWPP_WPP_TIMESTAMPSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace twpp {

/// Timestamps are 1-based positions in a compacted path trace. They must be
/// positive: the on-disk encoding uses the sign bit for entry boundaries.
using Timestamp = uint32_t;

/// One arithmetic series entry: {Lo, Lo+Step, ..., Hi}. Invariants:
/// Lo <= Hi, (Hi - Lo) % Step == 0, Step >= 1; singleton iff Lo == Hi.
struct SeriesRun {
  Timestamp Lo;
  Timestamp Hi;
  uint32_t Step;

  bool operator==(const SeriesRun &Other) const = default;

  uint64_t count() const { return (Hi - Lo) / Step + 1; }
  bool contains(Timestamp T) const {
    return T >= Lo && T <= Hi && (T - Lo) % Step == 0;
  }
};

/// An ordered set of positive timestamps with run-compressed storage.
class TimestampSet {
public:
  TimestampSet() = default;

  /// Builds a set from a strictly increasing timestamp list, greedily
  /// packing maximal constant-stride runs (a two-element run with stride
  /// != 1 is stored as two singletons, which encodes smaller).
  static TimestampSet fromSorted(const std::vector<Timestamp> &Sorted);

  /// Builds a set holding a single run.
  static TimestampSet fromRun(Timestamp Lo, Timestamp Hi, uint32_t Step);

  bool operator==(const TimestampSet &Other) const = default;

  bool empty() const { return Runs.empty(); }
  uint64_t count() const;
  bool contains(Timestamp T) const;

  /// Number of elements in [Lo, Hi], computed per run in O(1) — the race
  /// detector's batch-advance over race-free regions counts candidate
  /// accesses inside a clock segment without expanding the set.
  uint64_t countInRange(Timestamp Lo, Timestamp Hi) const;

  /// Smallest element >= T, or 0 when none exists. Companion of
  /// countInRange for locating the first racy access of a region.
  Timestamp firstAtLeast(Timestamp T) const;
  Timestamp min() const { return Runs.front().Lo; }
  Timestamp max() const { return Runs.back().Hi; }

  /// Materializes the set as a sorted timestamp vector.
  std::vector<Timestamp> toVector() const;

  /// Returns the set shifted by \p Delta; elements that would become
  /// non-positive are dropped. Runs are updated wholesale — this is the
  /// operation backward query propagation performs at every step.
  TimestampSet shifted(int64_t Delta) const;

  /// Set intersection (elements in both).
  TimestampSet intersect(const TimestampSet &Other) const;

  /// Set difference (elements of this not in Other).
  TimestampSet subtract(const TimestampSet &Other) const;

  /// Set union.
  TimestampSet unite(const TimestampSet &Other) const;

  /// The paper's sign-delimited integer stream: each run becomes `-l`,
  /// `l, -h` (step 1), or `l, h, -s`; decode keys off the signs.
  std::vector<int64_t> encodeSigned() const;

  /// Inverse of encodeSigned. \returns false on a malformed stream. The
  /// pointer form is the primary entry point so the zero-copy read path
  /// can decode from arena-backed scratch without building a vector.
  static bool decodeSigned(const int64_t *Encoded, size_t Count,
                           TimestampSet &Out);

  static bool decodeSigned(const std::vector<int64_t> &Encoded,
                           TimestampSet &Out) {
    return decodeSigned(Encoded.data(), Encoded.size(), Out);
  }

  /// Number of integers encodeSigned would emit (the paper's measure of a
  /// timestamp vector's size, Table 6).
  uint64_t encodedValueCount() const;

  const std::vector<SeriesRun> &runs() const { return Runs; }

private:
  /// Runs, sorted by Lo; a canonical form is maintained so that equal sets
  /// compare equal (fromSorted's greedy packing of the element sequence).
  std::vector<SeriesRun> Runs;
};

} // namespace twpp

#endif // TWPP_WPP_TIMESTAMPSET_H
