//===- wpp/Sizes.cpp - Size accounting for the compaction study -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Sizes.h"

#include "support/ByteStream.h"
#include "support/LZW.h"

using namespace twpp;

uint64_t twpp::signedVarintSize(int64_t Value) {
  return varintSize(zigzagEncode(Value));
}

uint64_t twpp::pathTraceBytes(const PathTrace &Trace) {
  uint64_t Bytes = varintSize(Trace.size());
  for (BlockId Block : Trace)
    Bytes += varintSize(Block);
  return Bytes;
}

uint64_t twpp::dictionaryBytes(const DbbDictionary &Dict) {
  uint64_t Bytes = varintSize(Dict.Chains.size());
  for (const auto &Chain : Dict.Chains) {
    Bytes += varintSize(Chain.size());
    for (BlockId Block : Chain)
      Bytes += varintSize(Block);
  }
  return Bytes;
}

uint64_t twpp::twppTraceBytes(const TwppTrace &Trace) {
  uint64_t Bytes = varintSize(Trace.Length) + varintSize(Trace.Blocks.size());
  for (const auto &[Block, Set] : Trace.Blocks) {
    Bytes += varintSize(Block);
    std::vector<int64_t> Values = Set.encodeSigned();
    Bytes += varintSize(Values.size());
    for (int64_t Value : Values)
      Bytes += signedVarintSize(Value);
  }
  return Bytes;
}

OwppSizes twpp::measureOwpp(const PartitionedWpp &Wpp) {
  OwppSizes Sizes;
  Sizes.DcgBytes = encodeDcg(Wpp.Dcg).size();
  for (const FunctionTraceTable &Table : Wpp.Functions)
    for (size_t T = 0; T < Table.UniqueTraces.size(); ++T)
      Sizes.TraceBytes +=
          pathTraceBytes(Table.UniqueTraces[T]) * Table.UseCounts[T];
  return Sizes;
}

StageSizes twpp::measureStages(const PartitionedWpp &Partitioned,
                               const DbbWpp &Dbb, const TwppWpp &Twpp) {
  StageSizes Sizes;

  for (const FunctionTraceTable &Table : Partitioned.Functions) {
    for (size_t T = 0; T < Table.UniqueTraces.size(); ++T) {
      uint64_t Bytes = pathTraceBytes(Table.UniqueTraces[T]);
      Sizes.OwppTraceBytes += Bytes * Table.UseCounts[T];
      Sizes.DedupedTraceBytes += Bytes;
    }
  }

  for (const DbbFunctionTable &Table : Dbb.Functions) {
    for (const auto &TraceString : Table.TraceStrings)
      Sizes.DbbTraceBytes += pathTraceBytes(TraceString);
    for (const DbbDictionary &Dict : Table.Dictionaries)
      Sizes.DictionaryBytes += dictionaryBytes(Dict);
  }

  for (const TwppFunctionTable &Table : Twpp.Functions)
    for (const TwppTrace &TraceString : Table.TraceStrings)
      Sizes.TwppTraceBytes += twppTraceBytes(TraceString);

  Sizes.CompactedDcgBytes = lzwCompress(encodeDcg(Twpp.Dcg)).size();
  return Sizes;
}
