//===- wpp/Dbb.h - Dynamic basic block dictionaries -------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 3 of the compaction pipeline: dynamic basic block (DBB)
/// dictionaries. A DBB of a path trace is a maximal chain of static blocks
/// that is always entered at its first block and exited at its last block
/// within that trace. Chains are found in the trace's dynamic control flow
/// graph; every occurrence is replaced by the chain's head id, and the
/// chain bodies are recorded in a per-trace dictionary (paper Figures 4-5).
///
/// Chain condition: block b extends the current chain ending at a iff the
/// dynamic CFG (including virtual entry/exit edges for the trace
/// boundaries) has out-degree(a) == 1 and in-degree(b) == 1. The virtual
/// edges guarantee that a head occurrence at the very end of a trace cannot
/// be mistaken for a full chain occurrence.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_DBB_H
#define TWPP_WPP_DBB_H

#include "wpp/PathTrace.h"

#include <cstddef>
#include <vector>

namespace twpp {

/// A path trace after DBB compaction: the block sequence with each chain
/// occurrence collapsed to its head id, plus the dictionary of chains.
struct CompactedTrace {
  std::vector<BlockId> Blocks;
  DbbDictionary Dictionary;

  bool operator==(const CompactedTrace &Other) const = default;
};

/// The dynamic control flow graph of one path trace: the distinct blocks
/// and the adjacency relation observed in the trace. Exposed separately
/// because the profile-limited analyses (Section 4) and the flow graph
/// statistics (Table 6) need it too.
struct DynamicCfg {
  /// Distinct block ids, sorted ascending.
  std::vector<BlockId> Blocks;
  /// Successor lists, parallel to Blocks, each sorted ascending.
  std::vector<std::vector<BlockId>> Successors;
  /// Predecessor lists, parallel to Blocks, each sorted ascending.
  std::vector<std::vector<BlockId>> Predecessors;
  /// True when the block at the same index starts the trace / ends the
  /// trace somewhere (the virtual entry/exit edges).
  std::vector<bool> IsEntry;
  std::vector<bool> IsExit;

  /// Index of \p Block in Blocks, or npos when absent.
  size_t indexOf(BlockId Block) const;

  /// Total number of (real) edges.
  uint64_t edgeCount() const;

  static constexpr size_t npos = static_cast<size_t>(-1);
};

/// Builds the dynamic CFG of \p Trace.
DynamicCfg buildDynamicCfg(const PathTrace &Trace);

/// Compacts \p Trace by discovering DBB chains and collapsing them.
/// Traces shorter than 2 blocks are returned unchanged with an empty
/// dictionary.
CompactedTrace compactWithDbbs(const PathTrace &Trace);

/// Inverse of compactWithDbbs: expands every chain head back to its body.
PathTrace expandDbbs(const CompactedTrace &Compacted);

/// Expands a single compacted element: the chain body when \p Head names a
/// chain, else the singleton {Head}.
void appendExpansion(const DbbDictionary &Dictionary, BlockId Head,
                     PathTrace &Out);

} // namespace twpp

#endif // TWPP_WPP_DBB_H
