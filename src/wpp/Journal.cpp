//===- wpp/Journal.cpp - Checkpoint journal for streaming compaction ------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Journal.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/ByteStream.h"
#include "support/Crc32.h"
#include "support/FaultInjection.h"

#include <cerrno>

#if !defined(_WIN32)
#include <unistd.h>
#else
#include <io.h>
#endif

using namespace twpp;

namespace {

IoError journalFail(IoStatus Status, const std::string &Detail,
                    int Err = errno) {
  IoError E;
  E.Status = Status;
  E.Errno = Err;
  E.Detail = Detail;
  return E;
}

IoError journalInjected(IoStatus Status, const std::string &Detail) {
  return journalFail(Status, Detail + " [injected]", 0);
}

bool syncJournalStream(std::FILE *File) {
#if defined(_WIN32)
  return _commit(_fileno(File)) == 0;
#else
  return ::fsync(fileno(File)) == 0;
#endif
}

/// Reads a little-endian fixed-width value at \p Pos (caller checks
/// bounds).
uint32_t le32At(const std::vector<uint8_t> &Bytes, size_t Pos) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Bytes[Pos + I]) << (8 * I);
  return V;
}

uint64_t le64At(const std::vector<uint8_t> &Bytes, size_t Pos) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
  return V;
}

} // namespace

void twpp::appendJournalRecord(std::vector<uint8_t> &Out,
                               const std::vector<uint8_t> &Payload) {
  ByteWriter Writer;
  Writer.writeFixed32(JournalMagic);
  Writer.writeFixed32(JournalVersion);
  Writer.writeFixed64(Payload.size());
  Writer.writeFixed32(crc32(Payload.data(), Payload.size()));
  std::vector<uint8_t> Header = Writer.take();
  Out.insert(Out.end(), Header.begin(), Header.end());
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

JournalScan twpp::scanJournal(const std::vector<uint8_t> &Bytes) {
  JournalScan Scan;
  size_t Pos = 0;
  size_t EndOfLastValid = 0;
  while (Pos + JournalHeaderSize <= Bytes.size()) {
    if (le32At(Bytes, Pos) != JournalMagic ||
        le32At(Bytes, Pos + 4) != JournalVersion) {
      // Not a record boundary: resynchronize byte-by-byte so one damaged
      // region cannot hide every later record.
      ++Pos;
      continue;
    }
    uint64_t Length = le64At(Bytes, Pos + 8);
    uint32_t Crc = le32At(Bytes, Pos + 16);
    if (Length > Bytes.size() - Pos - JournalHeaderSize) {
      // Torn tail (the common crash shape) or a corrupt length field;
      // either way the payload is not all there. Keep scanning in case a
      // complete record follows the damage.
      ++Pos;
      continue;
    }
    const uint8_t *Payload = Bytes.data() + Pos + JournalHeaderSize;
    if (crc32(Payload, static_cast<size_t>(Length)) != Crc) {
      ++Scan.CorruptRecords;
      ++Pos;
      continue;
    }
    ++Scan.ValidRecords;
    Scan.LastPayload.assign(Payload, Payload + Length);
    Pos += JournalHeaderSize + static_cast<size_t>(Length);
    EndOfLastValid = Pos;
  }
  Scan.TornBytes = Bytes.size() - EndOfLastValid;
  return Scan;
}

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter &&Other) noexcept
    : File(Other.File), JournalPath(std::move(Other.JournalPath)) {
  Other.File = nullptr;
  Other.JournalPath.clear();
}

JournalWriter &JournalWriter::operator=(JournalWriter &&Other) noexcept {
  if (this != &Other) {
    close();
    File = Other.File;
    JournalPath = std::move(Other.JournalPath);
    Other.File = nullptr;
    Other.JournalPath.clear();
  }
  return *this;
}

IoError JournalWriter::open(const std::string &Path, bool Append) {
  close();
  if (fault::shouldFailIo("journal"))
    return journalInjected(IoStatus::OpenFailed, Path);
  File = std::fopen(Path.c_str(), Append ? "ab" : "wb");
  if (!File)
    return journalFail(IoStatus::OpenFailed, Path);
  JournalPath = Path;
  return IoError::success();
}

IoError JournalWriter::append(const std::vector<uint8_t> &Payload) {
  if (!File)
    return journalFail(IoStatus::OpenFailed, "journal not open", 0);
  if (fault::shouldFailIo("journal"))
    return journalInjected(IoStatus::WriteFailed, JournalPath);
  std::vector<uint8_t> Frame;
  appendJournalRecord(Frame, Payload);
  size_t Written = std::fwrite(Frame.data(), 1, Frame.size(), File);
  if (Written != Frame.size())
    return journalFail(IoStatus::ShortWrite, JournalPath);
  if (std::fflush(File) != 0)
    return journalFail(IoStatus::FlushFailed, JournalPath);
  // The record must be durable before the checkpoint is acknowledged;
  // otherwise a crash could roll the stream back past state the caller
  // already discarded.
  if (!syncJournalStream(File))
    return journalFail(IoStatus::SyncFailed, JournalPath);
  obs::metrics()
      .counter(obs::names::JournalBytes)
      .add(static_cast<uint64_t>(Frame.size()));
  return IoError::success();
}

void JournalWriter::close() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  JournalPath.clear();
}
