//===- wpp/HotPaths.cpp - Hot path queries over compacted WPPs ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/HotPaths.h"

#include <algorithm>
#include <numeric>

using namespace twpp;

std::vector<HotPath> twpp::hotPathsOf(const TwppFunctionTable &Table,
                                      size_t Limit) {
  FunctionPathTraces Expanded = expandFunctionTraces(Table);
  std::vector<uint32_t> Order(Expanded.Traces.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&Expanded](uint32_t A, uint32_t B) {
                     return Expanded.UseCounts[A] > Expanded.UseCounts[B];
                   });
  if (Limit != 0 && Order.size() > Limit)
    Order.resize(Limit);

  std::vector<HotPath> Out;
  Out.reserve(Order.size());
  for (uint32_t Index : Order) {
    HotPath Path;
    Path.TraceIndex = Index;
    Path.UseCount = Expanded.UseCounts[Index];
    Path.Blocks = std::move(Expanded.Traces[Index]);
    Out.push_back(std::move(Path));
  }
  return Out;
}

uint64_t
twpp::countSubpathOccurrences(const TwppFunctionTable &Table,
                              const std::vector<BlockId> &Needle) {
  if (Needle.empty())
    return 0;
  FunctionPathTraces Expanded = expandFunctionTraces(Table);
  uint64_t Total = 0;
  for (size_t T = 0; T < Expanded.Traces.size(); ++T) {
    const PathTrace &Hay = Expanded.Traces[T];
    if (Hay.size() < Needle.size())
      continue;
    uint64_t Occurrences = 0;
    for (size_t I = 0; I + Needle.size() <= Hay.size(); ++I)
      if (std::equal(Needle.begin(), Needle.end(), Hay.begin() + I))
        ++Occurrences;
    Total += Occurrences * Expanded.UseCounts[T];
  }
  return Total;
}
