//===- wpp/Archive.cpp - Compacted TWPP on-disk archive -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Archive.h"

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "obs/Trace.h"
#include "support/Arena.h"
#include "support/ByteStream.h"
#include "support/FileIO.h"
#include "support/LZW.h"
#include "wpp/VerifyHooks.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <numeric>

using namespace twpp;

namespace {

constexpr uint32_t ArchiveMagic = 0x54575050; // "TWPP"
constexpr uint32_t ArchiveVersion = 1;        // single-threaded layout
constexpr uint32_t ArchiveVersionThreads = 2; // + section trailer
constexpr size_t PrefixSize = 12;       // magic + version + functionCount
constexpr size_t DcgFieldsSize = 16;    // dcgOffset + dcgLength
constexpr size_t IndexRowSize = 24;     // offset + length + callCount
constexpr size_t SectionHeadSize = 12;  // tag (fixed32) + length (fixed64)

void encodeSeries(ByteWriter &Writer, const TimestampSet &Set) {
  std::vector<int64_t> Values = Set.encodeSigned();
  Writer.writeVarUint(Values.size());
  for (int64_t Value : Values)
    Writer.writeVarInt(Value);
}

/// Per-thread scratch for decodeSeries. One reset per series keeps the
/// footprint at the largest single series while the pooled blocks make
/// every decode after the first allocation-free.
Arena &decodeArena() {
  thread_local Arena Scratch(Arena::DefaultBlockBytes,
                             obs::memtags::ArenaDecode);
  return Scratch;
}

bool decodeSeries(ByteReader &Reader, TimestampSet &Set) {
  uint64_t Count = Reader.readVarUint();
  if (Reader.hasError() || Count > Reader.remaining() * 10)
    return false;
  Arena &Scratch = decodeArena();
  Scratch.reset();
  int64_t *Values =
      Scratch.allocateArray<int64_t>(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I)
    Values[I] = Reader.readVarInt();
  if (Reader.hasError())
    return false;
  return TimestampSet::decodeSigned(Values, static_cast<size_t>(Count), Set);
}

void encodeDictionary(ByteWriter &Writer, const DbbDictionary &Dict) {
  Writer.writeVarUint(Dict.Chains.size());
  for (const auto &Chain : Dict.Chains) {
    Writer.writeVarUint(Chain.size());
    for (BlockId Block : Chain)
      Writer.writeVarUint(Block);
  }
}

bool decodeDictionary(ByteReader &Reader, DbbDictionary &Dict) {
  uint64_t ChainCount = Reader.readVarUint();
  if (Reader.hasError() || ChainCount > Reader.remaining())
    return false;
  Dict.Chains.resize(ChainCount);
  for (auto &Chain : Dict.Chains) {
    uint64_t Length = Reader.readVarUint();
    if (Reader.hasError() || Length < 2 || Length > Reader.remaining() + 2)
      return false;
    Chain.resize(Length);
    for (BlockId &Block : Chain)
      Block = static_cast<BlockId>(Reader.readVarUint());
  }
  return Reader.valid();
}

std::atomic<IoMode> DefaultIoMode{IoMode::Mmap};

void encodeThreadSection(ByteWriter &Writer, const ConcurrencyInfo &Conc) {
  Writer.writeVarUint(Conc.Threads.size());
  Writer.writeVarUint(Conc.FunctionCount);
  for (const ThreadInfo &T : Conc.Threads) {
    Writer.writeVarUint(T.Id);
    Writer.writeVarUint(T.BlockCount);
  }
}

void encodeEdgeSection(ByteWriter &Writer, const ConcurrencyInfo &Conc) {
  Writer.writeVarUint(Conc.Edges.size());
  for (const HbEdge &E : Conc.Edges) {
    Writer.writeVarUint(static_cast<uint64_t>(E.EdgeKind));
    Writer.writeVarUint(E.FromThread);
    Writer.writeVarUint(E.FromTime);
    Writer.writeVarUint(E.ToThread);
    Writer.writeVarUint(E.ToTime);
  }
}

void encodeAccessSection(ByteWriter &Writer, const ConcurrencyInfo &Conc) {
  Writer.writeVarUint(Conc.Accesses.size());
  for (const ThreadAccessTable &Table : Conc.Accesses) {
    Writer.writeVarUint(Table.Accesses.size());
    Address Prev = 0;
    for (const AddressAccess &Acc : Table.Accesses) {
      Writer.writeVarUint(Acc.Addr - Prev); // addresses sorted ascending
      Prev = Acc.Addr;
      encodeSeries(Writer, Acc.Reads);
      encodeSeries(Writer, Acc.Writes);
    }
  }
}

bool decodeThreadSection(ByteSpan Bytes, ConcurrencyInfo &Out) {
  ByteReader Reader(Bytes);
  uint64_t ThreadCount = Reader.readVarUint();
  Out.FunctionCount = static_cast<uint32_t>(Reader.readVarUint());
  if (Reader.hasError() || ThreadCount > Bytes.size())
    return false;
  Out.Threads.resize(ThreadCount);
  for (ThreadInfo &T : Out.Threads) {
    T.Id = static_cast<ThreadId>(Reader.readVarUint());
    T.BlockCount = Reader.readVarUint();
  }
  return Reader.valid();
}

bool decodeEdgeSection(ByteSpan Bytes, ConcurrencyInfo &Out) {
  ByteReader Reader(Bytes);
  uint64_t EdgeCount = Reader.readVarUint();
  if (Reader.hasError() || EdgeCount > Bytes.size())
    return false;
  Out.Edges.resize(EdgeCount);
  for (HbEdge &E : Out.Edges) {
    uint64_t Kind = Reader.readVarUint();
    if (Kind > static_cast<uint64_t>(HbEdge::Kind::Join))
      return false;
    E.EdgeKind = static_cast<HbEdge::Kind>(Kind);
    E.FromThread = static_cast<uint32_t>(Reader.readVarUint());
    E.FromTime = static_cast<uint32_t>(Reader.readVarUint());
    E.ToThread = static_cast<uint32_t>(Reader.readVarUint());
    E.ToTime = static_cast<uint32_t>(Reader.readVarUint());
  }
  return Reader.valid();
}

bool decodeAccessSection(ByteSpan Bytes, ConcurrencyInfo &Out) {
  ByteReader Reader(Bytes);
  uint64_t ThreadCount = Reader.readVarUint();
  if (Reader.hasError() || ThreadCount != Out.Threads.size())
    return false;
  Out.Accesses.resize(ThreadCount);
  for (ThreadAccessTable &Table : Out.Accesses) {
    uint64_t AddrCount = Reader.readVarUint();
    if (Reader.hasError() || AddrCount > Reader.remaining() + 1)
      return false;
    Table.Accesses.resize(AddrCount);
    Address Prev = 0;
    bool First = true;
    for (AddressAccess &Acc : Table.Accesses) {
      uint64_t Delta = Reader.readVarUint();
      if (!First && Delta == 0)
        return false; // addresses must be strictly ascending
      Acc.Addr = Prev + Delta;
      Prev = Acc.Addr;
      First = false;
      if (!decodeSeries(Reader, Acc.Reads) ||
          !decodeSeries(Reader, Acc.Writes))
        return false;
    }
  }
  return Reader.valid();
}

} // namespace

IoMode twpp::defaultArchiveIoMode() {
  return DefaultIoMode.load(std::memory_order_relaxed);
}

void twpp::setDefaultArchiveIoMode(IoMode Mode) {
  DefaultIoMode.store(Mode, std::memory_order_relaxed);
}

bool twpp::parseIoMode(const std::string &Text, IoMode &Mode) {
  if (Text == "mmap") {
    Mode = IoMode::Mmap;
    return true;
  }
  if (Text == "buffered") {
    Mode = IoMode::Buffered;
    return true;
  }
  return false;
}

const char *twpp::ioModeName(IoMode Mode) {
  return Mode == IoMode::Mmap ? "mmap" : "buffered";
}

void twpp::releaseArchiveDecodeScratch() { decodeArena().release(); }

bool twpp::decodeArchiveSection(uint32_t Tag, ByteSpan Payload,
                                ConcurrencyInfo &Out) {
  switch (Tag) {
  case ArchiveSectionThreads:
    return decodeThreadSection(Payload, Out);
  case ArchiveSectionHbEdges:
    return decodeEdgeSection(Payload, Out);
  case ArchiveSectionAccesses:
    return decodeAccessSection(Payload, Out);
  }
  return false;
}

std::vector<uint8_t>
twpp::encodeTwppFunctionTable(const TwppFunctionTable &Table) {
  ByteWriter Writer;
  Writer.writeVarUint(Table.CallCount);

  Writer.writeVarUint(Table.TraceStrings.size());
  for (const TwppTrace &Trace : Table.TraceStrings) {
    Writer.writeVarUint(Trace.Length);
    Writer.writeVarUint(Trace.Blocks.size());
    BlockId Prev = 0;
    for (const auto &[Block, Set] : Trace.Blocks) {
      Writer.writeVarUint(Block - Prev); // blocks sorted ascending
      Prev = Block;
      encodeSeries(Writer, Set);
    }
  }

  Writer.writeVarUint(Table.Dictionaries.size());
  for (const DbbDictionary &Dict : Table.Dictionaries)
    encodeDictionary(Writer, Dict);

  Writer.writeVarUint(Table.Traces.size());
  for (size_t I = 0; I < Table.Traces.size(); ++I) {
    Writer.writeVarUint(Table.Traces[I].first);
    Writer.writeVarUint(Table.Traces[I].second);
    Writer.writeVarUint(Table.UseCounts[I]);
  }
  return Writer.take();
}

bool twpp::decodeTwppFunctionTable(ByteSpan Bytes, TwppFunctionTable &Table) {
  Table = TwppFunctionTable();
  ByteReader Reader(Bytes);
  Table.CallCount = Reader.readVarUint();

  uint64_t StringCount = Reader.readVarUint();
  if (Reader.hasError() || StringCount > Bytes.size())
    return false;
  Table.TraceStrings.resize(StringCount);
  for (TwppTrace &Trace : Table.TraceStrings) {
    Trace.Length = static_cast<uint32_t>(Reader.readVarUint());
    uint64_t BlockCount = Reader.readVarUint();
    if (Reader.hasError() || BlockCount > Trace.Length ||
        BlockCount > Reader.remaining())
      return false;
    Trace.Blocks.resize(BlockCount);
    BlockId Prev = 0;
    uint64_t TotalTimestamps = 0;
    for (auto &[Block, Set] : Trace.Blocks) {
      Block = Prev + static_cast<BlockId>(Reader.readVarUint());
      Prev = Block;
      if (!decodeSeries(Reader, Set))
        return false;
      TotalTimestamps += Set.count();
    }
    // Every time step 1..Length belongs to exactly one block; reject
    // traces whose declared length the series cannot account for, so
    // later expansion never allocates for a phantom length.
    if (TotalTimestamps != Trace.Length)
      return false;
  }

  uint64_t DictCount = Reader.readVarUint();
  if (Reader.hasError() || DictCount > Bytes.size())
    return false;
  Table.Dictionaries.resize(DictCount);
  for (DbbDictionary &Dict : Table.Dictionaries)
    if (!decodeDictionary(Reader, Dict))
      return false;

  uint64_t TraceCount = Reader.readVarUint();
  if (Reader.hasError() || TraceCount > Bytes.size())
    return false;
  Table.Traces.resize(TraceCount);
  Table.UseCounts.resize(TraceCount);
  for (size_t I = 0; I < TraceCount; ++I) {
    uint64_t StringIdx = Reader.readVarUint();
    uint64_t DictIdx = Reader.readVarUint();
    Table.UseCounts[I] = Reader.readVarUint();
    if (StringIdx >= Table.TraceStrings.size() ||
        DictIdx >= Table.Dictionaries.size())
      return false;
    Table.Traces[I] = {static_cast<uint32_t>(StringIdx),
                       static_cast<uint32_t>(DictIdx)};
  }
  if (!Reader.valid())
    return false;
  if (obs::memTrackingEnabled()) {
    // Container overheads of the decoded table; the series payloads were
    // already recorded by TimestampSet::decodeSigned. Kept as an
    // independent tally of obs::deepSize so the twpp-mem-reconcile check
    // catches the two drifting apart.
    uint64_t Bytes = Table.TraceStrings.size() * sizeof(TwppTrace);
    for (const TwppTrace &Trace : Table.TraceStrings)
      Bytes += Trace.Blocks.size() * sizeof(std::pair<BlockId, TimestampSet>);
    Bytes += Table.Dictionaries.size() * sizeof(DbbDictionary);
    for (const DbbDictionary &Dict : Table.Dictionaries) {
      Bytes += Dict.Chains.size() * sizeof(std::vector<BlockId>);
      for (const std::vector<BlockId> &Chain : Dict.Chains)
        Bytes += Chain.size() * sizeof(BlockId);
    }
    Bytes += Table.Traces.size() * sizeof(std::pair<uint32_t, uint32_t>);
    Bytes += Table.UseCounts.size() * sizeof(uint64_t);
    obs::memAllocCurrent(Bytes);
  }
  return true;
}

namespace {

/// Shared layout for both versions: \p Conc == nullptr emits the
/// historical version-1 bytes; otherwise version 2 with the THRD/HBEG/
/// ACCS trailer after the DCG.
std::vector<uint8_t> encodeArchiveImpl(const TwppWpp &Wpp,
                                       const ParallelConfig &Config,
                                       const ConcurrencyInfo *Conc) {
  obs::PhaseSpan Span("archive_encode");
  uint32_t FunctionCount = static_cast<uint32_t>(Wpp.Functions.size());

  // Encode every function block concurrently; the layout below consumes
  // them in the stable call-count order, so the archive bytes do not
  // depend on the job count.
  std::vector<std::vector<uint8_t>> Blocks(FunctionCount);
  parallelFor(Config, FunctionCount, [&Wpp, &Blocks](size_t F) {
    obs::PhaseSpan FnSpan("encode_function", "function",
                          static_cast<int64_t>(F));
    Blocks[F] = encodeTwppFunctionTable(Wpp.Functions[F]);
    obs::memAlloc(obs::memtags::ArchiveEncode, Blocks[F].size());
  });

  // Most frequently called functions are stored first (paper Section 3).
  std::vector<uint32_t> Order(FunctionCount);
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&Wpp](uint32_t A, uint32_t B) {
    return Wpp.Functions[A].CallCount > Wpp.Functions[B].CallCount;
  });

  ByteWriter Writer;
  Writer.writeFixed32(ArchiveMagic);
  Writer.writeFixed32(Conc ? ArchiveVersionThreads : ArchiveVersion);
  Writer.writeFixed32(FunctionCount);
  size_t DcgFieldsAt = Writer.size();
  Writer.writeFixed64(0); // dcgOffset, patched below
  Writer.writeFixed64(0); // dcgLength, patched below
  size_t IndexAt = Writer.size();
  for (uint32_t F = 0; F != FunctionCount; ++F) {
    (void)F;
    Writer.writeFixed64(0);
    Writer.writeFixed64(0);
    Writer.writeFixed64(0);
  }

  std::vector<std::pair<uint64_t, uint64_t>> Extents(FunctionCount);
  for (uint32_t F : Order) {
    Extents[F] = {Writer.size(), Blocks[F].size()};
    Writer.writeBytes(Blocks[F].data(), Blocks[F].size());
    obs::memFree(obs::memtags::ArchiveEncode, Blocks[F].size());
  }

  std::vector<uint8_t> Dcg = lzwCompress(encodeDcg(Wpp.Dcg));
  Writer.patchFixed64(DcgFieldsAt, Writer.size());
  Writer.patchFixed64(DcgFieldsAt + 8, Dcg.size());
  Writer.writeBytes(Dcg.data(), Dcg.size());

  if (Conc) {
    auto WriteSection = [&Writer](uint32_t Tag, auto &&Encode) {
      Writer.writeFixed32(Tag);
      size_t LengthAt = Writer.size();
      Writer.writeFixed64(0);
      size_t PayloadAt = Writer.size();
      Encode();
      Writer.patchFixed64(LengthAt, Writer.size() - PayloadAt);
    };
    WriteSection(ArchiveSectionThreads,
                 [&] { encodeThreadSection(Writer, *Conc); });
    WriteSection(ArchiveSectionHbEdges,
                 [&] { encodeEdgeSection(Writer, *Conc); });
    WriteSection(ArchiveSectionAccesses,
                 [&] { encodeAccessSection(Writer, *Conc); });
  }

  for (uint32_t F = 0; F != FunctionCount; ++F) {
    size_t Row = IndexAt + static_cast<size_t>(F) * IndexRowSize;
    Writer.patchFixed64(Row, Extents[F].first);
    Writer.patchFixed64(Row + 8, Extents[F].second);
    Writer.patchFixed64(Row + 16, Wpp.Functions[F].CallCount);
  }
  std::vector<uint8_t> Out = Writer.take();
  // The stitched buffer is the encode path's high-water mark; alloc+free
  // so archive.encode records the peak without holding live bytes.
  obs::memAlloc(obs::memtags::ArchiveEncode, Out.size());
  obs::memFree(obs::memtags::ArchiveEncode, Out.size());
  maybeVerifyArchiveBytes(Out, "archive_encode");
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Encodes = M.counter(obs::names::ArchiveEncodes);
    Encodes.add();
    M.gauge(obs::names::ArchiveBytes).set(static_cast<int64_t>(Out.size()));
  }
  obs::traceInstant("archive_encoded", "bytes",
                    static_cast<int64_t>(Out.size()));
  return Out;
}

} // namespace

std::vector<uint8_t> twpp::encodeArchive(const TwppWpp &Wpp,
                                         const ParallelConfig &Config) {
  return encodeArchiveImpl(Wpp, Config, nullptr);
}

std::vector<uint8_t>
twpp::encodeConcurrentArchive(const ConcurrentWpp &Wpp,
                              const ParallelConfig &Config) {
  return encodeArchiveImpl(Wpp.Body, Config, &Wpp.Conc);
}

bool twpp::writeArchiveFile(const std::string &Path, const TwppWpp &Wpp,
                            const ParallelConfig &Config, IoError *Err) {
  IoError Result = writeFileBytesAtomic(Path, encodeArchive(Wpp, Config));
  if (Err)
    *Err = Result;
  return Result.ok();
}

bool twpp::writeConcurrentArchiveFile(const std::string &Path,
                                      const ConcurrentWpp &Wpp,
                                      const ParallelConfig &Config,
                                      IoError *Err) {
  IoError Result =
      writeFileBytesAtomic(Path, encodeConcurrentArchive(Wpp, Config));
  if (Err)
    *Err = Result;
  return Result.ok();
}

bool ArchiveReader::fail(std::string CheckId, std::string Message,
                         std::string Section, uint64_t ByteOffset) const {
  LastError.CheckId = std::move(CheckId);
  LastError.Sev = verify::Severity::Error;
  LastError.Message = std::move(Message);
  LastError.Location = std::move(Section);
  LastError.ByteOffset = ByteOffset;
  return false;
}

bool ArchiveReader::open(const std::string &ArchivePath) {
  return open(ArchivePath, defaultArchiveIoMode());
}

bool ArchiveReader::readSlice(uint64_t Offset, uint64_t Length,
                              std::vector<uint8_t> &Storage,
                              ByteSpan &Out) const {
  if (Mode == IoMode::Mmap) {
    if (!Map.span().covers(Offset, Length))
      return false;
    Out = Map.span().subspan(Offset, Length);
    return true;
  }
  if (!readFileSlice(Path, Offset, Length, Storage))
    return false;
  Out = ByteSpan(Storage);
  return true;
}

bool ArchiveReader::open(const std::string &ArchivePath, IoMode WantMode) {
  obs::PhaseSpan Span("archive_open");
  static obs::Counter &IndexReads =
      obs::metrics().counter(obs::names::ArchiveIndexReads);
  IndexReads.add();
  Path = ArchivePath;
  Index.clear();
  Sections.clear();
  Version = 1;
  Map.unmap();
  Mode = IoMode::Buffered;
  if (WantMode == IoMode::Mmap) {
    if (MappedFile::available() && Map.map(ArchivePath))
      Mode = IoMode::Mmap;
    else
      // Graceful degradation: any mmap failure (platform, fault
      // injection, IO) silently becomes the buffered path, identical in
      // everything but speed.
      obs::metrics().counter(obs::names::ArchiveMmapFallbacks).add();
  }

  std::vector<uint8_t> Prefix;
  ByteSpan PrefixSpan;
  if (!readSlice(0, PrefixSize + DcgFieldsSize, Prefix, PrefixSpan))
    return fail("twpp-archive-header",
                "cannot read the fixed header (file missing or smaller "
                "than " +
                    std::to_string(PrefixSize + DcgFieldsSize) + " bytes)",
                "header", 0);
  ByteReader Reader(PrefixSpan);
  if (Reader.readFixed32() != ArchiveMagic)
    return fail("twpp-archive-header", "bad magic (not a TWPP archive)",
                "header", 0);
  Version = Reader.readFixed32();
  if (Version != ArchiveVersion && Version != ArchiveVersionThreads)
    return fail("twpp-archive-header", "unsupported archive version",
                "header", 4);
  uint32_t FunctionCount = Reader.readFixed32();
  DcgOffset = Reader.readFixed64();
  DcgLength = Reader.readFixed64();
  if (Reader.hasError())
    return fail("twpp-archive-header", "truncated fixed header", "header",
                0);
  // Validate every extent against the actual file size so corrupt
  // headers cannot trigger absurd allocations later. A stat failure is
  // its own error, not an empty file: the extent checks below would
  // otherwise reject every archive with a misleading message. In mmap
  // mode the mapping's length IS the file size.
  std::optional<uint64_t> MaybeSize = Mode == IoMode::Mmap
                                          ? std::optional<uint64_t>(Map.size())
                                          : fileSize(Path);
  if (!MaybeSize)
    return fail("twpp-archive-header",
                "cannot determine the archive file size", "header", 0);
  uint64_t Size = *MaybeSize;
  if (DcgOffset > Size || DcgLength > Size - DcgOffset)
    return fail("twpp-archive-header",
                "DCG extent (offset " + std::to_string(DcgOffset) +
                    ", length " + std::to_string(DcgLength) +
                    ") runs past end of file (" + std::to_string(Size) +
                    " bytes)",
                "dcg extent", PrefixSize);
  if (static_cast<uint64_t>(FunctionCount) * IndexRowSize >
      Size - PrefixSize - DcgFieldsSize)
    return fail("twpp-archive-header",
                "function count " + std::to_string(FunctionCount) +
                    " implies an index larger than the file",
                "header", 8);

  std::vector<uint8_t> IndexBytes;
  ByteSpan IndexSpan;
  if (!readSlice(PrefixSize + DcgFieldsSize,
                 static_cast<uint64_t>(FunctionCount) * IndexRowSize,
                 IndexBytes, IndexSpan))
    return fail("twpp-archive-header", "cannot read the function index",
                "index", PrefixSize + DcgFieldsSize);
  ByteReader IndexReader(IndexSpan);
  Index.resize(FunctionCount);
  for (size_t F = 0; F != Index.size(); ++F) {
    IndexEntry &Entry = Index[F];
    Entry.Offset = IndexReader.readFixed64();
    Entry.Length = IndexReader.readFixed64();
    Entry.CallCount = IndexReader.readFixed64();
    if (Entry.Offset > Size || Entry.Length > Size - Entry.Offset) {
      Index.clear();
      return fail("twpp-archive-index-bounds",
                  "block extent (offset " + std::to_string(Entry.Offset) +
                      ", length " + std::to_string(Entry.Length) +
                      ") runs past end of file",
                  "index row " + std::to_string(F),
                  PrefixSize + DcgFieldsSize + F * IndexRowSize);
    }
  }
  if (!IndexReader.valid()) {
    Index.clear();
    return fail("twpp-archive-header", "truncated function index", "index",
                PrefixSize + DcgFieldsSize);
  }

  // Version 2: walk the section trailer between the DCG and end of file.
  // Unknown tags are a hard error — a reader that does not understand a
  // section cannot claim to have read the archive (this is how the
  // thread trailer degrades loudly instead of being silently dropped).
  if (Version == ArchiveVersionThreads) {
    uint64_t Pos = DcgOffset + DcgLength;
    while (Pos < Size) {
      std::vector<uint8_t> HeadBytes;
      ByteSpan Head;
      if (Size - Pos < SectionHeadSize ||
          !readSlice(Pos, SectionHeadSize, HeadBytes, Head)) {
        Sections.clear();
        Index.clear();
        return fail("twpp-archive-section",
                    "truncated section record at offset " +
                        std::to_string(Pos),
                    "section directory", Pos);
      }
      ByteReader HeadReader(Head);
      Section Sec;
      Sec.Tag = HeadReader.readFixed32();
      Sec.Length = HeadReader.readFixed64();
      Sec.Offset = Pos + SectionHeadSize;
      if (Sec.Tag != ArchiveSectionThreads &&
          Sec.Tag != ArchiveSectionHbEdges &&
          Sec.Tag != ArchiveSectionAccesses) {
        Sections.clear();
        Index.clear();
        return fail("twpp-archive-section",
                    "unknown archive section tag 0x" +
                        [Tag = Sec.Tag] {
                          char Buf[9];
                          std::snprintf(Buf, sizeof(Buf), "%08x", Tag);
                          return std::string(Buf);
                        }(),
                    "section directory", Pos);
      }
      if (Sec.Length > Size - Sec.Offset) {
        Sections.clear();
        Index.clear();
        return fail("twpp-archive-section",
                    "section payload runs past end of file",
                    "section directory", Pos);
      }
      if (findSection(Sec.Tag)) {
        Sections.clear();
        Index.clear();
        return fail("twpp-archive-section", "duplicate archive section tag",
                    "section directory", Pos);
      }
      Sections.push_back(Sec);
      Pos = Sec.Offset + Sec.Length;
    }
    if (!findSection(ArchiveSectionThreads)) {
      Sections.clear();
      Index.clear();
      return fail("twpp-archive-section",
                  "version 2 archive is missing the thread table section",
                  "section directory", DcgOffset + DcgLength);
    }
  }
  return true;
}

const ArchiveReader::Section *ArchiveReader::findSection(uint32_t Tag) const {
  for (const Section &Sec : Sections)
    if (Sec.Tag == Tag)
      return &Sec;
  return nullptr;
}

bool ArchiveReader::readConcurrency(ConcurrencyInfo &Out) const {
  Out = ConcurrencyInfo();
  const Section *Thrd = findSection(ArchiveSectionThreads);
  const Section *Hbeg = findSection(ArchiveSectionHbEdges);
  const Section *Accs = findSection(ArchiveSectionAccesses);
  if (!Thrd || !Hbeg || !Accs)
    return fail("twpp-archive-section",
                "archive has no thread-aware section trailer", "sections",
                verify::NoByteOffset);
  obs::PhaseSpan Span("archive_read_concurrency");
  obs::MemScope MemSpan(obs::memtags::ArchiveDecode,
                        obs::MemScope::Nest::IfUnscoped);
  std::vector<uint8_t> Storage;
  ByteSpan Bytes;
  if (!readSlice(Thrd->Offset, Thrd->Length, Storage, Bytes) ||
      !decodeThreadSection(Bytes, Out))
    return fail("twpp-archive-section", "thread table section does not decode",
                "THRD section", Thrd->Offset);
  if (!readSlice(Hbeg->Offset, Hbeg->Length, Storage, Bytes) ||
      !decodeEdgeSection(Bytes, Out))
    return fail("twpp-archive-section",
                "happens-before edge section does not decode", "HBEG section",
                Hbeg->Offset);
  if (!readSlice(Accs->Offset, Accs->Length, Storage, Bytes) ||
      !decodeAccessSection(Bytes, Out))
    return fail("twpp-archive-section", "access set section does not decode",
                "ACCS section", Accs->Offset);
  return true;
}

bool ArchiveReader::readAllConcurrent(ConcurrentWpp &Out) const {
  Out = ConcurrentWpp();
  if (!readConcurrency(Out.Conc))
    return false;
  return readAll(Out.Body);
}

bool ArchiveReader::extractFunction(FunctionId Function,
                                    TwppFunctionTable &Table) const {
  if (Function >= Index.size())
    return fail("twpp-archive-index-bounds",
                "function " + std::to_string(Function) +
                    " not in the archive (index holds " +
                    std::to_string(Index.size()) + " rows)",
                "index", verify::NoByteOffset);
  obs::PhaseSpan Span("archive_extract", "function",
                      static_cast<int64_t>(Function));
  obs::MemScope MemSpan(obs::memtags::ArchiveDecode,
                        obs::MemScope::Nest::IfUnscoped);
  std::vector<uint8_t> Storage;
  ByteSpan Block;
  if (!readSlice(Index[Function].Offset, Index[Function].Length, Storage,
                 Block))
    return fail("twpp-archive-block-decode",
                "cannot read the function block slice",
                "function " + std::to_string(Function) + " block",
                Index[Function].Offset);
  if (obs::enabled()) {
    // The Table 4 access-time story: one index row + one block per query.
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &BlockReads =
        M.counter(obs::names::ArchiveBlockReads);
    static obs::Counter &BytesRead =
        M.counter(obs::names::ArchiveBlockBytesRead);
    static obs::Histogram &BlockBytes = M.histogram(
        obs::names::ArchiveBlockBytes, obs::names::powerOfTwoBounds(1u << 24));
    BlockReads.add();
    BytesRead.add(Block.size());
    BlockBytes.record(Block.size());
    M.gauge(obs::names::ArenaDecodeReservedBytes)
        .set(static_cast<int64_t>(decodeArena().bytesReserved()));
  }
  if (!decodeTwppFunctionTable(Block, Table))
    return fail("twpp-archive-block-decode", "function block does not decode",
                "function " + std::to_string(Function) + " block",
                Index[Function].Offset);
  return true;
}

bool ArchiveReader::extractFunctionPathTraces(FunctionId Function,
                                              FunctionPathTraces &Out) const {
  TwppFunctionTable Table;
  if (!extractFunction(Function, Table))
    return false;
  Out = expandFunctionTraces(Table);
  return true;
}

bool ArchiveReader::readDcg(DynamicCallGraph &Dcg) const {
  obs::PhaseSpan Span("archive_read_dcg");
  obs::MemScope MemSpan(obs::memtags::ArchiveDecode,
                        obs::MemScope::Nest::IfUnscoped);
  static obs::Counter &DcgReads =
      obs::metrics().counter(obs::names::ArchiveDcgReads);
  DcgReads.add();
  std::vector<uint8_t> Storage;
  ByteSpan Compressed;
  if (!readSlice(DcgOffset, DcgLength, Storage, Compressed))
    return fail("twpp-archive-dcg-decode", "cannot read the DCG slice",
                "dcg", DcgOffset);
  std::vector<uint8_t> Raw;
  if (!lzwDecompress(Compressed, Raw))
    return fail("twpp-archive-dcg-decode", "DCG does not LZW-decompress",
                "dcg", DcgOffset);
  if (!decodeDcg(Raw, Dcg))
    return fail("twpp-archive-dcg-decode",
                "decompressed DCG does not decode as a call graph", "dcg",
                DcgOffset);
  return true;
}

bool ArchiveReader::readAll(TwppWpp &Wpp) const {
  obs::MemScope MemSpan(obs::memtags::ArchiveDecode,
                        obs::MemScope::Nest::IfUnscoped);
  Wpp = TwppWpp();
  if (!readDcg(Wpp.Dcg))
    return false;
  Wpp.Functions.resize(Index.size());
  obs::memAllocCurrent(Index.size() * sizeof(TwppFunctionTable));
  for (FunctionId F = 0; F != Index.size(); ++F)
    if (!extractFunction(F, Wpp.Functions[F]))
      return false;
  return true;
}
