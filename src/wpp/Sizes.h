//===- wpp/Sizes.h - Size accounting for the compaction study ---*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialized-size accounting for every stage of the pipeline, measured
/// with the same varint encoders the on-disk formats use. These numbers
/// feed Tables 1, 2 and 3 of the paper:
///
///   Table 1: DCG size, WPP trace size, total (the original WPP).
///   Table 2: trace size after redundancy removal, after dictionary
///            creation, in compacted TWPP form; per-stage factors.
///   Table 3: compacted DCG + TWPP traces + dictionaries; overall factor.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_SIZES_H
#define TWPP_WPP_SIZES_H

#include "wpp/Twpp.h"

#include <cstdint>

namespace twpp {

/// Number of bytes the unsigned LEB128 encoding of \p Value occupies.
inline uint64_t varintSize(uint64_t Value) {
  uint64_t Size = 1;
  while (Value >= 0x80) {
    Value >>= 7;
    ++Size;
  }
  return Size;
}

/// Varint size of a zigzag-coded signed value.
uint64_t signedVarintSize(int64_t Value);

/// Serialized size of one raw path trace (length prefix + block varints).
uint64_t pathTraceBytes(const PathTrace &Trace);

/// Serialized size of one DBB dictionary.
uint64_t dictionaryBytes(const DbbDictionary &Dict);

/// Serialized size of one TWPP trace string (sign-encoded series as
/// varints).
uint64_t twppTraceBytes(const TwppTrace &Trace);

/// Sizes of the original (uncompacted) WPP, split as Table 1 reports them.
struct OwppSizes {
  uint64_t DcgBytes = 0;    ///< Serialized DCG, uncompressed.
  uint64_t TraceBytes = 0;  ///< Every call's path trace, duplicates kept.
  uint64_t totalBytes() const { return DcgBytes + TraceBytes; }
};
OwppSizes measureOwpp(const PartitionedWpp &Wpp);

/// Per-stage trace sizes for Table 2.
struct StageSizes {
  uint64_t OwppTraceBytes = 0;      ///< Duplicates kept (baseline).
  uint64_t DedupedTraceBytes = 0;   ///< After redundant trace removal.
  uint64_t DbbTraceBytes = 0;       ///< Compacted trace strings only.
  uint64_t TwppTraceBytes = 0;      ///< TWPP-form trace strings only.
  uint64_t DictionaryBytes = 0;     ///< DBB dictionaries (Table 3 column).
  uint64_t CompactedDcgBytes = 0;   ///< LZW-compressed DCG (Table 3).
};

/// Measures every stage in one pass (runs the remaining pipeline stages on
/// copies as needed).
StageSizes measureStages(const PartitionedWpp &Partitioned,
                         const DbbWpp &Dbb, const TwppWpp &Twpp);

} // namespace twpp

#endif // TWPP_WPP_SIZES_H
