//===- wpp/VerifyHooks.h - Pipeline verification seam -----------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-pointer seam through which the verifier library (src/verify/,
/// which links *against* twpp_wpp) attaches post-stage assertions to the
/// compaction pipeline without creating a dependency cycle. The pipeline
/// calls the hooks only when TWPP_VERIFY is set in the environment and a
/// verifier has been installed (verify::installPipelineVerifier()); both
/// default to off, so library consumers pay one pointer load per stage.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_VERIFYHOOKS_H
#define TWPP_WPP_VERIFYHOOKS_H

#include <cstdint>
#include <vector>

namespace twpp {

struct TwppWpp;

/// The installable verification callbacks. \p Stage names the pipeline
/// stage that produced the value ("compact", "streaming",
/// "archive_encode") for diagnostics and span attribution.
struct VerifyHooks {
  void (*VerifyWpp)(const TwppWpp &Wpp, const char *Stage) = nullptr;
  void (*VerifyArchiveBytes)(const std::vector<uint8_t> &Bytes,
                             const char *Stage) = nullptr;
};

/// The process-global hook table.
VerifyHooks &verifyHooks();

/// True when the TWPP_VERIFY environment variable asks for post-stage
/// verification (set and not "0").
bool verifyEnvEnabled();

/// Convenience guards used at the pipeline call sites.
void maybeVerifyWpp(const TwppWpp &Wpp, const char *Stage);
void maybeVerifyArchiveBytes(const std::vector<uint8_t> &Bytes,
                             const char *Stage);

} // namespace twpp

#endif // TWPP_WPP_VERIFYHOOKS_H
