//===- wpp/Concurrent.cpp - Thread-partitioned compacted WPPs -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Concurrent.h"

#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace twpp;

std::vector<ThreadAccessTable>
twpp::buildAccessTables(const ConcurrentTrace &Trace) {
  // Group (thread, addr) -> sorted unique reads/writes. The access stream
  // is sorted (Thread, Time, Addr, Kind), so per-address lists come out
  // time-ordered; duplicates (the same access kind twice in one block)
  // collapse because TimestampSet elements are a set.
  std::vector<std::map<Address, std::pair<std::vector<Timestamp>,
                                          std::vector<Timestamp>>>>
      PerThread(Trace.Threads.size());
  for (const AccessEvent &A : Trace.Accesses) {
    auto &Lists = PerThread[A.Thread][A.Addr];
    std::vector<Timestamp> &List =
        A.EventKind == AccessEvent::Kind::Read ? Lists.first : Lists.second;
    if (List.empty() || List.back() != A.Time)
      List.push_back(A.Time);
  }

  std::vector<ThreadAccessTable> Tables(Trace.Threads.size());
  for (size_t T = 0; T != Tables.size(); ++T) {
    Tables[T].Accesses.reserve(PerThread[T].size());
    for (auto &[Addr, Lists] : PerThread[T]) {
      AddressAccess Entry;
      Entry.Addr = Addr;
      if (!Lists.first.empty())
        Entry.Reads = TimestampSet::fromSorted(Lists.first);
      if (!Lists.second.empty())
        Entry.Writes = TimestampSet::fromSorted(Lists.second);
      Tables[T].Accesses.push_back(std::move(Entry));
    }
  }
  return Tables;
}

ConcurrentWpp twpp::compactConcurrentWpp(const ConcurrentTrace &Trace,
                                         const ParallelConfig &Config) {
  obs::PhaseSpan Span("compact_concurrent");
  uint32_t ThreadCount = static_cast<uint32_t>(Trace.Threads.size());
  uint32_t FunctionCount = Trace.FunctionCount;

  // Threads are independent single-threaded WPPs; fan them out whole.
  // Each inner pipeline runs serially so the outer loop is the only
  // scheduling dimension — the merge below consumes results in thread
  // order, so the bytes cannot depend on the job count.
  std::vector<TwppWpp> PerThread(ThreadCount);
  parallelFor(Config, ThreadCount, [&Trace, &PerThread](size_t T) {
    obs::PhaseSpan ThreadSpan("compact_thread", "thread",
                              static_cast<int64_t>(T));
    PerThread[T] = compactWpp(Trace.Threads[T].Trace, ParallelConfig{1});
  });

  ConcurrentWpp Out;
  Out.Conc.FunctionCount = FunctionCount;
  Out.Conc.Threads.resize(ThreadCount);
  Out.Body.Functions.resize(static_cast<size_t>(ThreadCount) * FunctionCount);
  for (uint32_t T = 0; T != ThreadCount; ++T) {
    Out.Conc.Threads[T] = {Trace.Threads[T].Id,
                           Trace.Threads[T].Trace.blockEventCount()};
    TwppWpp &Wpp = PerThread[T];
    assert(Wpp.Functions.size() == FunctionCount &&
           "per-thread compaction must cover the shared function space");
    // Thread-major virtual ids: thread T's function F lands at
    // T * FunctionCount + F. The DCG merge offsets node indices by the
    // running node count, so each thread's subforest stays contiguous
    // (threadBody relies on node.Function / FunctionCount to slice it
    // back out).
    uint32_t Base = T * FunctionCount;
    for (uint32_t F = 0; F != FunctionCount; ++F)
      Out.Body.Functions[Base + F] = std::move(Wpp.Functions[F]);
    uint32_t NodeBase = static_cast<uint32_t>(Out.Body.Dcg.Nodes.size());
    for (DcgNode &Node : Wpp.Dcg.Nodes) {
      Node.Function += Base;
      for (uint32_t &Child : Node.Children)
        Child += NodeBase;
      Out.Body.Dcg.Nodes.push_back(std::move(Node));
    }
    for (uint32_t Root : Wpp.Dcg.Roots)
      Out.Body.Dcg.Roots.push_back(Root + NodeBase);
  }
  Out.Conc.Edges = deriveHbEdges(Trace);
  Out.Conc.Accesses = buildAccessTables(Trace);

  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    M.counter(obs::names::RacesThreadsCompacted).add(ThreadCount);
    M.counter(obs::names::RacesEdgesDerived).add(Out.Conc.Edges.size());
  }
  return Out;
}

TwppWpp twpp::threadBody(const ConcurrentWpp &Wpp, uint32_t ThreadIndex) {
  uint32_t FunctionCount = Wpp.Conc.FunctionCount;
  uint32_t Base = ThreadIndex * FunctionCount;
  TwppWpp Out;
  Out.Functions.assign(Wpp.Body.Functions.begin() + Base,
                       Wpp.Body.Functions.begin() + Base + FunctionCount);
  // The thread's DCG nodes are a contiguous index range by construction;
  // find it by function-id ownership and rebase.
  uint32_t Lo = static_cast<uint32_t>(Wpp.Body.Dcg.Nodes.size());
  uint32_t Hi = 0;
  for (uint32_t I = 0; I != Wpp.Body.Dcg.Nodes.size(); ++I) {
    uint32_t Owner = Wpp.Body.Dcg.Nodes[I].Function / FunctionCount;
    if (Owner == ThreadIndex) {
      Lo = std::min(Lo, I);
      Hi = std::max(Hi, I + 1);
    }
  }
  for (uint32_t I = Lo; I < Hi; ++I) {
    DcgNode Node = Wpp.Body.Dcg.Nodes[I];
    assert(Node.Function / FunctionCount == ThreadIndex &&
           "thread subforests must be contiguous");
    Node.Function -= Base;
    for (uint32_t &Child : Node.Children)
      Child -= Lo;
    Out.Dcg.Nodes.push_back(std::move(Node));
  }
  for (uint32_t Root : Wpp.Body.Dcg.Roots) {
    if (Root >= Lo && Root < Hi)
      Out.Dcg.Roots.push_back(Root - Lo);
  }
  return Out;
}

RawTrace twpp::reconstructThreadTrace(const ConcurrentWpp &Wpp,
                                      uint32_t ThreadIndex) {
  RawTrace Trace = reconstructRawTrace(threadBody(Wpp, ThreadIndex));
  Trace.FunctionCount = Wpp.Conc.FunctionCount;
  return Trace;
}
