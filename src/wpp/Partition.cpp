//===- wpp/Partition.cpp - WPP partitioning + redundancy removal ----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Partition.h"

#include "obs/PhaseSpan.h"
#include "wpp/Streaming.h"

#include <cassert>

using namespace twpp;

PartitionedWpp twpp::partitionWpp(const RawTrace &Trace) {
  obs::PhaseSpan Span("partition");
  assert(Trace.isWellFormed() && "partitionWpp requires a well-formed WPP");
  // One implementation for both modes: the offline path replays the
  // event stream into the online compactor.
  StreamingCompactor Sink(Trace.FunctionCount);
  for (const TraceEvent &Event : Trace.Events) {
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      Sink.onEnter(Event.Id);
      break;
    case TraceEvent::Kind::Block:
      Sink.onBlock(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      Sink.onExit();
      break;
    }
  }
  return Sink.takePartitioned();
}

namespace {

/// Replays one DCG node (and its subtree) into \p Events.
void replayNode(const PartitionedWpp &Wpp, uint32_t NodeIndex,
                std::vector<TraceEvent> &Events) {
  const DcgNode &Node = Wpp.Dcg.Nodes[NodeIndex];
  const PathTrace &Blocks =
      Wpp.Functions[Node.Function].UniqueTraces[Node.TraceIndex];
  Events.push_back(TraceEvent::enter(Node.Function));

  size_t Child = 0;
  // Calls anchored before any block event.
  while (Child < Node.Children.size() && Node.Anchors[Child] == 0)
    replayNode(Wpp, Node.Children[Child++], Events);
  for (size_t B = 0; B < Blocks.size(); ++B) {
    Events.push_back(TraceEvent::block(Blocks[B]));
    while (Child < Node.Children.size() && Node.Anchors[Child] == B + 1)
      replayNode(Wpp, Node.Children[Child++], Events);
  }
  assert(Child == Node.Children.size() && "call anchored past trace end");
  Events.push_back(TraceEvent::exit());
}

} // namespace

RawTrace twpp::reconstructRawTrace(const PartitionedWpp &Wpp) {
  RawTrace Trace;
  Trace.FunctionCount = static_cast<uint32_t>(Wpp.Functions.size());
  for (uint32_t Root : Wpp.Dcg.Roots)
    replayNode(Wpp, Root, Trace.Events);
  return Trace;
}
