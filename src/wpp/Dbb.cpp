//===- wpp/Dbb.cpp - Dynamic basic block dictionaries ---------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Dbb.h"

#include "obs/Metrics.h"
#include "obs/Names.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace twpp;

size_t DynamicCfg::indexOf(BlockId Block) const {
  auto It = std::lower_bound(Blocks.begin(), Blocks.end(), Block);
  if (It == Blocks.end() || *It != Block)
    return npos;
  return static_cast<size_t>(It - Blocks.begin());
}

uint64_t DynamicCfg::edgeCount() const {
  uint64_t Count = 0;
  for (const auto &Succs : Successors)
    Count += Succs.size();
  return Count;
}

DynamicCfg twpp::buildDynamicCfg(const PathTrace &Trace) {
  DynamicCfg Cfg;
  if (Trace.empty())
    return Cfg;

  Cfg.Blocks = Trace;
  std::sort(Cfg.Blocks.begin(), Cfg.Blocks.end());
  Cfg.Blocks.erase(std::unique(Cfg.Blocks.begin(), Cfg.Blocks.end()),
                   Cfg.Blocks.end());
  size_t N = Cfg.Blocks.size();
  Cfg.Successors.resize(N);
  Cfg.Predecessors.resize(N);
  Cfg.IsEntry.assign(N, false);
  Cfg.IsExit.assign(N, false);

  Cfg.IsEntry[Cfg.indexOf(Trace.front())] = true;
  Cfg.IsExit[Cfg.indexOf(Trace.back())] = true;
  for (size_t I = 0; I + 1 < Trace.size(); ++I) {
    size_t From = Cfg.indexOf(Trace[I]);
    size_t To = Cfg.indexOf(Trace[I + 1]);
    Cfg.Successors[From].push_back(Trace[I + 1]);
    Cfg.Predecessors[To].push_back(Trace[I]);
  }
  for (size_t I = 0; I != N; ++I) {
    auto Dedupe = [](std::vector<BlockId> &List) {
      std::sort(List.begin(), List.end());
      List.erase(std::unique(List.begin(), List.end()), List.end());
    };
    Dedupe(Cfg.Successors[I]);
    Dedupe(Cfg.Predecessors[I]);
  }
  return Cfg;
}

CompactedTrace twpp::compactWithDbbs(const PathTrace &Trace) {
  CompactedTrace Result;
  if (Trace.size() < 2) {
    Result.Blocks = Trace;
    return Result;
  }

  DynamicCfg Cfg = buildDynamicCfg(Trace);
  size_t N = Cfg.Blocks.size();

  // Effective degrees include the virtual entry/exit edges so that trace
  // boundaries terminate chains.
  auto OutDegree = [&Cfg](size_t I) {
    return Cfg.Successors[I].size() + (Cfg.IsExit[I] ? 1 : 0);
  };
  auto InDegree = [&Cfg](size_t I) {
    return Cfg.Predecessors[I].size() + (Cfg.IsEntry[I] ? 1 : 0);
  };

  // A block is chain-interior iff it has exactly one predecessor and that
  // predecessor has exactly one successor (virtual edges included).
  std::vector<bool> Interior(N, false);
  for (size_t I = 0; I != N; ++I) {
    if (InDegree(I) != 1 || Cfg.Predecessors[I].empty())
      continue;
    size_t Pred = Cfg.indexOf(Cfg.Predecessors[I].front());
    if (OutDegree(Pred) == 1)
      Interior[I] = true;
  }

  // Assemble maximal chains starting from every non-interior head.
  // NextInChain[I] holds the index following I inside its chain, or npos.
  std::vector<size_t> NextInChain(N, DynamicCfg::npos);
  for (size_t I = 0; I != N; ++I) {
    if (OutDegree(I) != 1 || Cfg.Successors[I].empty())
      continue;
    size_t Succ = Cfg.indexOf(Cfg.Successors[I].front());
    if (Interior[Succ])
      NextInChain[I] = Succ;
  }

  DbbDictionary Dict;
  for (size_t I = 0; I != N; ++I) {
    if (Interior[I] || NextInChain[I] == DynamicCfg::npos)
      continue;
    std::vector<BlockId> Chain;
    size_t Walk = I;
    while (Walk != DynamicCfg::npos) {
      Chain.push_back(Cfg.Blocks[Walk]);
      assert(Chain.size() <= N && "cycle in DBB chain");
      Walk = NextInChain[Walk];
    }
    assert(Chain.size() >= 2 && "chain head with no body");
    Dict.Chains.push_back(std::move(Chain));
  }
  std::sort(Dict.Chains.begin(), Dict.Chains.end(),
            [](const std::vector<BlockId> &A, const std::vector<BlockId> &B) {
              return A.front() < B.front();
            });

  // Rewrite the trace: at each chain-head occurrence the full chain must
  // follow (guaranteed by the degree conditions); emit the head and skip
  // the body.
  Result.Dictionary = std::move(Dict);
  uint64_t Lookups = 0, Hits = 0;
  size_t Pos = 0;
  while (Pos < Trace.size()) {
    BlockId Head = Trace[Pos];
    const std::vector<BlockId> *Chain = Result.Dictionary.findChain(Head);
    ++Lookups;
    if (!Chain) {
      Result.Blocks.push_back(Head);
      ++Pos;
      continue;
    }
    ++Hits;
    for (size_t K = 0; K < Chain->size(); ++K) {
      (void)K;
      assert(Pos + K < Trace.size() && Trace[Pos + K] == (*Chain)[K] &&
             "chain occurrence does not match dictionary");
    }
    Result.Blocks.push_back(Head);
    Pos += Chain->size();
  }
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::metrics();
    static obs::Counter &Chains = M.counter(obs::names::DbbChains);
    static obs::Counter &AllLookups = M.counter(obs::names::DbbLookups);
    static obs::Counter &LookupHits = M.counter(obs::names::DbbLookupHits);
    Chains.add(Result.Dictionary.Chains.size());
    AllLookups.add(Lookups);
    LookupHits.add(Hits);
  }
  return Result;
}

void twpp::appendExpansion(const DbbDictionary &Dictionary, BlockId Head,
                           PathTrace &Out) {
  if (const std::vector<BlockId> *Chain = Dictionary.findChain(Head)) {
    Out.insert(Out.end(), Chain->begin(), Chain->end());
    return;
  }
  Out.push_back(Head);
}

PathTrace twpp::expandDbbs(const CompactedTrace &Compacted) {
  PathTrace Out;
  Out.reserve(Compacted.Blocks.size());
  for (BlockId Head : Compacted.Blocks)
    appendExpansion(Compacted.Dictionary, Head, Out);
  return Out;
}
