//===- wpp/Merge.cpp - Merging WPPs from multiple runs --------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Merge.h"

#include <cassert>
#include <unordered_map>

using namespace twpp;

PartitionedWpp twpp::mergePartitionedWpps(
    const std::vector<const PartitionedWpp *> &Runs) {
  PartitionedWpp Out;
  if (Runs.empty())
    return Out;
  size_t FunctionCount = Runs.front()->Functions.size();
  Out.Functions.resize(FunctionCount);

  // Cross-run trace interners, one per function.
  struct Interner {
    std::unordered_multimap<uint64_t, uint32_t> Buckets;

    uint32_t intern(FunctionTraceTable &Table, const PathTrace &Trace) {
      uint64_t Hash = hashBlockSequence(Trace);
      auto Range = Buckets.equal_range(Hash);
      for (auto It = Range.first; It != Range.second; ++It)
        if (Table.UniqueTraces[It->second] == Trace)
          return It->second;
      uint32_t Index = static_cast<uint32_t>(Table.UniqueTraces.size());
      Table.UniqueTraces.push_back(Trace);
      Table.UseCounts.push_back(0);
      Buckets.emplace(Hash, Index);
      return Index;
    }
  };
  std::vector<Interner> Interners(FunctionCount);

  for (const PartitionedWpp *Run : Runs) {
    assert(Run->Functions.size() == FunctionCount &&
           "runs disagree on the function count");
    // Remap every function's unique trace indices into the merged pools.
    std::vector<std::vector<uint32_t>> Remap(FunctionCount);
    for (size_t F = 0; F < FunctionCount; ++F) {
      const FunctionTraceTable &In = Run->Functions[F];
      FunctionTraceTable &Table = Out.Functions[F];
      Remap[F].resize(In.UniqueTraces.size());
      for (size_t T = 0; T < In.UniqueTraces.size(); ++T) {
        uint32_t Merged = Interners[F].intern(Table, In.UniqueTraces[T]);
        Remap[F][T] = Merged;
        Table.UseCounts[Merged] += In.UseCounts[T];
      }
      Table.CallCount += In.CallCount;
      Table.TotalBlockEvents += In.TotalBlockEvents;
    }

    // Append the run's DCG with node indices shifted and trace indices
    // remapped; roots keep run order.
    uint32_t Base = static_cast<uint32_t>(Out.Dcg.Nodes.size());
    for (const DcgNode &Node : Run->Dcg.Nodes) {
      DcgNode Copy = Node;
      Copy.TraceIndex = Remap[Node.Function][Node.TraceIndex];
      for (uint32_t &Child : Copy.Children)
        Child += Base;
      Out.Dcg.Nodes.push_back(std::move(Copy));
    }
    for (uint32_t Root : Run->Dcg.Roots)
      Out.Dcg.Roots.push_back(Root + Base);
  }
  return Out;
}

TwppWpp twpp::mergeCompactedWpps(const std::vector<const TwppWpp *> &Runs) {
  std::vector<PartitionedWpp> Expanded;
  Expanded.reserve(Runs.size());
  for (const TwppWpp *Run : Runs)
    Expanded.push_back(dbbToPartitioned(twppToDbb(*Run)));
  std::vector<const PartitionedWpp *> Pointers;
  Pointers.reserve(Expanded.size());
  for (const PartitionedWpp &Wpp : Expanded)
    Pointers.push_back(&Wpp);
  return convertToTwpp(applyDbbCompaction(mergePartitionedWpps(Pointers)));
}
