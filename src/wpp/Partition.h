//===- wpp/Partition.h - WPP partitioning + redundancy removal --*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 1 and 2 of the compaction pipeline (paper Section 2):
///
///  * Partition the linear WPP into per-call path traces linked by the
///    dynamic call graph, storing all traces of a function together.
///  * Eliminate redundant path traces: different calls of the same function
///    that followed the same path share one stored trace.
///
/// The result is lossless: reconstructRawTrace rebuilds the exact original
/// event stream.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_PARTITION_H
#define TWPP_WPP_PARTITION_H

#include "wpp/DynamicCallGraph.h"
#include "wpp/PathTrace.h"

#include <cstdint>
#include <vector>

namespace twpp {

/// All unique path traces of one function, plus bookkeeping for the
/// compaction statistics (Tables 1-3, Figure 8).
struct FunctionTraceTable {
  /// Unique path traces, in first-occurrence order.
  std::vector<PathTrace> UniqueTraces;
  /// Calls per unique trace, parallel to UniqueTraces.
  std::vector<uint64_t> UseCounts;
  /// Number of calls to this function in the execution.
  uint64_t CallCount = 0;
  /// Total block events over all calls (i.e. what storing every duplicate
  /// would cost); used for the pre-dedup size accounting.
  uint64_t TotalBlockEvents = 0;

  bool operator==(const FunctionTraceTable &Other) const = default;
};

/// The WPP after partitioning and redundant path trace elimination.
struct PartitionedWpp {
  DynamicCallGraph Dcg;
  std::vector<FunctionTraceTable> Functions;

  bool operator==(const PartitionedWpp &Other) const = default;
};

/// Builds the partitioned, redundancy-eliminated representation from the
/// raw event stream. \p Trace must be well formed (see
/// RawTrace::isWellFormed).
PartitionedWpp partitionWpp(const RawTrace &Trace);

/// Inverse of partitionWpp: replays the DCG and path traces back into the
/// original linear event stream.
RawTrace reconstructRawTrace(const PartitionedWpp &Wpp);

} // namespace twpp

#endif // TWPP_WPP_PARTITION_H
