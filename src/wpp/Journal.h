//===- wpp/Journal.h - Checkpoint journal for streaming compaction -*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk journal (*.twppj) behind crash-safe streaming compaction.
/// A journal is an append-only sequence of checkpoint records, each
/// framed as
///
///   fixed32 magic ("TWPJ")  fixed32 version
///   fixed64 payload length  fixed32 crc32(payload)
///   payload bytes
///
/// The writer appends a record per checkpoint and fsyncs before
/// returning, so a crash at any instant leaves at most one torn record at
/// the tail. The scanner walks the framing, validates each CRC,
/// resynchronizes on the magic after damage, and surfaces the *last*
/// valid payload — which is all recovery needs (each checkpoint is a
/// complete snapshot, not a delta). docs/DURABILITY.md documents the
/// format and its guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_WPP_JOURNAL_H
#define TWPP_WPP_JOURNAL_H

#include "support/FileIO.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace twpp {

/// "TWPJ", little-endian, as the archive magic is "TWPP".
inline constexpr uint32_t JournalMagic = 0x4A505754;
inline constexpr uint32_t JournalVersion = 1;
/// magic + version + payload length + crc.
inline constexpr size_t JournalHeaderSize = 4 + 4 + 8 + 4;

/// Appends one framed record holding \p Payload to \p Out (in-memory
/// form, shared by the writer and tests that build damaged journals).
void appendJournalRecord(std::vector<uint8_t> &Out,
                         const std::vector<uint8_t> &Payload);

/// What scanJournal found.
struct JournalScan {
  /// Records whose framing and CRC checked out.
  size_t ValidRecords = 0;
  /// Headers that looked like records but failed the CRC (bit flips,
  /// overwritten tails).
  size_t CorruptRecords = 0;
  /// Bytes after the end of the last valid record (torn tail, garbage).
  uint64_t TornBytes = 0;
  /// Payload of the last valid record — the checkpoint to resume from.
  std::vector<uint8_t> LastPayload;
};

/// Scans \p Bytes for framed records. Tolerant by construction: damage
/// never makes it fail, it only reduces ValidRecords (possibly to zero).
JournalScan scanJournal(const std::vector<uint8_t> &Bytes);

/// Append-mode journal file writer. Every append() is flushed and
/// fsynced before it returns, so an acknowledged checkpoint survives a
/// crash. All IO consults the fault seam under the "journal" operation.
class JournalWriter {
public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(JournalWriter &&Other) noexcept;
  JournalWriter &operator=(JournalWriter &&Other) noexcept;
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Opens \p Path for journaling. \p Append keeps existing records (the
  /// resume path); otherwise the file is truncated.
  IoError open(const std::string &Path, bool Append);

  /// Appends one framed record and makes it durable.
  IoError append(const std::vector<uint8_t> &Payload);

  void close();
  bool isOpen() const { return File != nullptr; }
  const std::string &path() const { return JournalPath; }

private:
  std::FILE *File = nullptr;
  std::string JournalPath;
};

} // namespace twpp

#endif // TWPP_WPP_JOURNAL_H
