//===- wpp/DynamicCallGraph.cpp - DCG linking path traces -----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/DynamicCallGraph.h"

#include "obs/Memory.h"
#include "support/ByteStream.h"

using namespace twpp;

std::vector<uint8_t> twpp::encodeDcg(const DynamicCallGraph &Dcg) {
  ByteWriter Writer;
  Writer.writeVarUint(Dcg.Nodes.size());
  Writer.writeVarUint(Dcg.Roots.size());
  for (uint32_t Root : Dcg.Roots)
    Writer.writeVarUint(Root);
  for (size_t I = 0, E = Dcg.Nodes.size(); I != E; ++I) {
    const DcgNode &Node = Dcg.Nodes[I];
    Writer.writeVarUint(Node.Function);
    Writer.writeVarUint(Node.TraceIndex);
    Writer.writeVarUint(Node.Children.size());
    // Children always have larger indices than their parent (nodes are
    // created in call order), so delta-code against the parent.
    uint32_t PrevAnchor = 0;
    for (size_t C = 0; C < Node.Children.size(); ++C) {
      Writer.writeVarUint(Node.Children[C] - static_cast<uint32_t>(I));
      Writer.writeVarUint(Node.Anchors[C] - PrevAnchor);
      PrevAnchor = Node.Anchors[C];
    }
  }
  return Writer.take();
}

bool twpp::decodeDcg(const std::vector<uint8_t> &Bytes,
                     DynamicCallGraph &Dcg) {
  Dcg = DynamicCallGraph();
  ByteReader Reader(Bytes);
  uint64_t NodeCount = Reader.readVarUint();
  uint64_t RootCount = Reader.readVarUint();
  // Every node costs at least three varint bytes; reject counts the
  // buffer cannot possibly hold before allocating.
  if (Reader.hasError() || NodeCount > Bytes.size() ||
      RootCount > NodeCount)
    return false;
  Dcg.Roots.reserve(RootCount);
  for (uint64_t I = 0; I != RootCount; ++I) {
    uint64_t Root = Reader.readVarUint();
    if (Root >= NodeCount)
      return false;
    Dcg.Roots.push_back(static_cast<uint32_t>(Root));
  }
  Dcg.Nodes.resize(NodeCount);
  for (uint64_t I = 0; I != NodeCount; ++I) {
    DcgNode &Node = Dcg.Nodes[I];
    Node.Function = static_cast<FunctionId>(Reader.readVarUint());
    Node.TraceIndex = static_cast<uint32_t>(Reader.readVarUint());
    uint64_t ChildCount = Reader.readVarUint();
    if (Reader.hasError() || ChildCount > NodeCount)
      return false;
    Node.Children.reserve(ChildCount);
    Node.Anchors.reserve(ChildCount);
    uint32_t PrevAnchor = 0;
    for (uint64_t C = 0; C != ChildCount; ++C) {
      uint64_t Delta = Reader.readVarUint();
      uint64_t Child = I + Delta;
      if (Child >= NodeCount || Child == I)
        return false;
      Node.Children.push_back(static_cast<uint32_t>(Child));
      PrevAnchor += static_cast<uint32_t>(Reader.readVarUint());
      Node.Anchors.push_back(PrevAnchor);
    }
  }
  if (!(Reader.valid() && Reader.atEnd()))
    return false;
  if (obs::memTrackingEnabled()) {
    // Independent tally of obs::deepSize(DynamicCallGraph) for the
    // twpp-mem-reconcile audit.
    uint64_t Bytes = Dcg.Nodes.size() * sizeof(DcgNode);
    for (const DcgNode &Node : Dcg.Nodes)
      Bytes += (Node.Children.size() + Node.Anchors.size()) * sizeof(uint32_t);
    Bytes += Dcg.Roots.size() * sizeof(uint32_t);
    obs::memAllocCurrent(Bytes);
  }
  return true;
}
