//===- tests/VarintFuzzTest.cpp - SWAR vs scalar varint oracle ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
//
// Seeded fuzz/property harness pinning the SWAR varint fast path
// (support/Varint.h) to the scalar reference it replaced. The property on
// every input: both decoders return the same byte count, and when that
// count is non-zero, the same value. This covers well-formed encodings,
// truncations at every prefix length, overlong (all-continuation)
// streams, and reads flush against the end of a heap buffer (the ASan
// jobs turn any OOB load into a hard failure).
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"
#include "support/Varint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <random>
#include <vector>

using namespace twpp;

namespace {

std::vector<uint8_t> encodeVarUint(uint64_t Value) {
  ByteWriter Writer;
  Writer.writeVarUint(Value);
  return Writer.take();
}

/// Decodes with both implementations at the very end of a heap buffer so
/// an OOB read in either trips ASan, and asserts they agree. \returns the
/// common length (0 = both errored).
size_t checkAgreement(const std::vector<uint8_t> &Bytes) {
  // Copy into an exactly-sized heap buffer: the SWAR 8-byte load must
  // prove it never touches [size, size+8).
  std::vector<uint8_t> Exact(Bytes);
  const uint8_t *P = Exact.data();
  const uint8_t *End = P + Exact.size();

  uint64_t ScalarValue = 0xDEAD, SwarValue = 0xBEEF;
  size_t ScalarLen = varint::decodeVarUintScalar(P, End, ScalarValue);
  size_t SwarLen = varint::decodeVarUintSwar(P, End, SwarValue);
  EXPECT_EQ(ScalarLen, SwarLen);
  if (ScalarLen != 0 && ScalarLen == SwarLen) {
    EXPECT_EQ(ScalarValue, SwarValue);
  }
  return SwarLen;
}

const uint64_t BoundaryValues[] = {
    0,
    1,
    0x7F,
    0x80,
    0x3FFF,
    0x4000,
    0x1FFFFF,
    0x200000,
    0xFFFFFFF,
    0x10000000,
    static_cast<uint64_t>(std::numeric_limits<int32_t>::max()),
    static_cast<uint64_t>(std::numeric_limits<int32_t>::max()) + 1,
    static_cast<uint64_t>(std::numeric_limits<uint32_t>::max()),
    1ULL << 35,
    (1ULL << 56) - 1, // largest 8-byte encoding
    1ULL << 56,       // smallest 9-byte encoding
    (1ULL << 63) - 1,
    1ULL << 63,
    std::numeric_limits<uint64_t>::max(),
};

} // namespace

TEST(VarintFuzz, BoundaryValuesRoundTrip) {
  for (uint64_t Value : BoundaryValues) {
    std::vector<uint8_t> Bytes = encodeVarUint(Value);
    const uint8_t *P = Bytes.data();
    uint64_t Out = 0;
    size_t Len = varint::decodeVarUintSwar(P, P + Bytes.size(), Out);
    EXPECT_EQ(Len, Bytes.size()) << "value " << Value;
    EXPECT_EQ(Out, Value);
    checkAgreement(Bytes);
  }
}

TEST(VarintFuzz, TruncatedPrefixesErrorIdentically) {
  for (uint64_t Value : BoundaryValues) {
    std::vector<uint8_t> Bytes = encodeVarUint(Value);
    for (size_t Keep = 0; Keep < Bytes.size(); ++Keep) {
      std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Keep);
      // A strict prefix of an encoding never contains a terminator, so
      // both decoders must error.
      EXPECT_EQ(checkAgreement(Cut), 0u)
          << "value " << Value << " truncated to " << Keep << " bytes";
    }
  }
}

TEST(VarintFuzz, OverlongAllContinuationStreamsError) {
  // 1..16 bytes of pure continuation (0x80): no terminator, and past 10
  // bytes the scalar loop's shift guard fires regardless of buffer size.
  for (size_t N = 1; N <= 16; ++N) {
    std::vector<uint8_t> Bytes(N, 0x80);
    EXPECT_EQ(checkAgreement(Bytes), 0u) << N << " continuation bytes";
  }
}

TEST(VarintFuzz, TenBytePaddedEncodingsMatchScalarTruncation) {
  // Pad a canonical encoding with 0x80 continuations and a final
  // terminator: the scalar loop accepts up to 10 bytes (the 10th only
  // contributing bit 0 into bit 63). Whatever it says, SWAR must agree.
  for (uint64_t Value : BoundaryValues) {
    std::vector<uint8_t> Bytes = encodeVarUint(Value);
    for (size_t Pad = 1; Bytes.size() + Pad <= 12; ++Pad) {
      std::vector<uint8_t> Long(Bytes);
      Long.back() |= 0x80;
      for (size_t I = 1; I < Pad; ++I)
        Long.push_back(0x80);
      for (uint8_t Last : {uint8_t(0x00), uint8_t(0x01), uint8_t(0x7F)}) {
        Long.push_back(Last);
        checkAgreement(Long);
        Long.pop_back();
      }
    }
  }
}

TEST(VarintFuzz, SeededRandomStreamsAgreeAtEveryOffset) {
  std::mt19937_64 Rng(0x7077u); // fixed seed: reproducible corpus
  for (int Round = 0; Round != 200; ++Round) {
    // A stream of random varints with occasional raw garbage bytes.
    ByteWriter Writer;
    std::uniform_int_distribution<int> Shift(0, 63);
    for (int I = 0; I != 32; ++I) {
      if (Rng() % 8 == 0)
        Writer.writeByte(static_cast<uint8_t>(Rng()));
      else
        Writer.writeVarUint(Rng() >> Shift(Rng));
    }
    std::vector<uint8_t> Stream = Writer.take();
    // Decode at every byte offset (not just encoding boundaries) so the
    // corpus includes misaligned and mid-encoding starts.
    for (size_t Off = 0; Off < Stream.size(); ++Off) {
      std::vector<uint8_t> Tail(Stream.begin() + Off, Stream.end());
      checkAgreement(Tail);
    }
  }
}

TEST(VarintFuzz, SignedZigzagAgreesOnSignBoundaries) {
  const int64_t Signed[] = {
      0,
      1,
      -1,
      63,
      64,
      -64,
      -65,
      std::numeric_limits<int32_t>::max(),
      std::numeric_limits<int32_t>::min(),
      static_cast<int64_t>(std::numeric_limits<int32_t>::max()) + 1,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min(),
  };
  for (int64_t Value : Signed) {
    ByteWriter Writer;
    Writer.writeVarInt(Value);
    std::vector<uint8_t> Bytes = Writer.take();
    const uint8_t *P = Bytes.data();
    int64_t ScalarOut = 0, SwarOut = 0;
    size_t ScalarLen =
        varint::decodeVarIntScalar(P, P + Bytes.size(), ScalarOut);
    size_t SwarLen = varint::decodeVarIntSwar(P, P + Bytes.size(), SwarOut);
    EXPECT_EQ(ScalarLen, Bytes.size());
    EXPECT_EQ(SwarLen, Bytes.size());
    EXPECT_EQ(ScalarOut, Value);
    EXPECT_EQ(SwarOut, Value);
  }
}

TEST(VarintFuzz, ByteReaderMatchesScalarSemanticsOnRandomBuffers) {
  // ByteReader::readVarUint now routes through the SWAR decoder; replay
  // random buffers through a reader and the scalar loop in lockstep.
  std::mt19937_64 Rng(0xC0DEu);
  for (int Round = 0; Round != 100; ++Round) {
    std::vector<uint8_t> Bytes(1 + Rng() % 64);
    for (uint8_t &B : Bytes)
      B = static_cast<uint8_t>(Rng());
    ByteReader Reader(Bytes.data(), Bytes.size());
    const uint8_t *P = Bytes.data();
    const uint8_t *End = P + Bytes.size();
    while (!Reader.atEnd() && !Reader.hasError()) {
      uint64_t Expected = 0;
      size_t Len = varint::decodeVarUintScalar(
          P + Reader.position(), End, Expected);
      uint64_t Got = Reader.readVarUint();
      if (Len == 0) {
        EXPECT_TRUE(Reader.hasError());
        break;
      }
      EXPECT_EQ(Got, Expected);
    }
  }
}
