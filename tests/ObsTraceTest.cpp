//===- tests/ObsTraceTest.cpp - Flight recorder & trace export tests -------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <vector>

using namespace twpp;

namespace {

/// Every test starts from a quiet recorder with tracing on; both switches
/// are restored to off so other tests in the process stay unaffected.
/// Rings created by earlier tests persist (they are never destroyed), so
/// assertions count records, not rings.
class ObsTraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::setTracingEnabled(true);
    obs::traceRecorder().reset();
    obs::metrics().reset();
  }
  void TearDown() override {
    obs::setTracingEnabled(false);
    obs::setMetricsEnabled(false);
    obs::traceRecorder().reset();
    obs::metrics().reset();
  }
};

uint64_t totalRecords() {
  uint64_t Total = 0;
  for (const auto &T : obs::traceRecorder().snapshot())
    Total += T.Records.size();
  return Total;
}

//===----------------------------------------------------------------------===//
// A minimal JSON syntax checker (mirrors ObsTest.cpp): enough to assert
// the exporter emits one well-formed document.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : Text(Text) {}

  bool valid() {
    skipSpace();
    if (!value())
      return false;
    skipSpace();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos;
    skipSpace();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (!string())
        return false;
      skipSpace();
      if (peek() != ':')
        return false;
      ++Pos;
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos;
    skipSpace();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos;
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  const std::string &Text;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Exported-event extraction: the exporter writes one event per line, so
// field scraping per line is enough to validate the timeline's shape.
//===----------------------------------------------------------------------===//

struct ExportedEvent {
  char Ph = 0;
  long Tid = -1;
  double Ts = -1;
  uint64_t FlowId = 0;
  bool HasPid = false;
  std::string Line;
};

std::vector<ExportedEvent> exportedEvents(const std::string &Json) {
  std::vector<ExportedEvent> Out;
  size_t Start = 0;
  while (Start < Json.size()) {
    size_t End = Json.find('\n', Start);
    if (End == std::string::npos)
      End = Json.size();
    std::string Line = Json.substr(Start, End - Start);
    Start = End + 1;
    size_t PhPos = Line.find("\"ph\": \"");
    if (PhPos == std::string::npos)
      continue;
    ExportedEvent E;
    E.Line = Line;
    E.Ph = Line[PhPos + 7];
    if (size_t P = Line.find("\"tid\": "); P != std::string::npos)
      E.Tid = std::strtol(Line.c_str() + P + 7, nullptr, 10);
    if (size_t P = Line.find("\"ts\": "); P != std::string::npos)
      E.Ts = std::strtod(Line.c_str() + P + 6, nullptr);
    if (size_t P = Line.find("\"id\": "); P != std::string::npos)
      E.FlowId = std::strtoull(Line.c_str() + P + 6, nullptr, 10);
    E.HasPid = Line.find("\"pid\": ") != std::string::npos;
    Out.push_back(std::move(E));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Ring buffer semantics
//===----------------------------------------------------------------------===//

TEST_F(ObsTraceTest, RingWraparoundKeepsNewestEvents) {
  obs::TraceRing Ring(7, "wrap", 4);
  for (int I = 0; I < 10; ++I)
    Ring.push(obs::TraceRecord::Kind::Instant, "e" + std::to_string(I), 0,
              nullptr, I, true);
  EXPECT_EQ(Ring.pushCount(), 10u);

  std::vector<obs::TraceRecord> Window = Ring.drainOrdered();
  ASSERT_EQ(Window.size(), 4u); // capacity, oldest overwritten
  for (size_t I = 0; I < Window.size(); ++I) {
    EXPECT_EQ(std::string(Window[I].Name), "e" + std::to_string(6 + I));
    EXPECT_EQ(Window[I].Value, static_cast<int64_t>(6 + I));
  }
  // Oldest-first order means timestamps never go backwards.
  for (size_t I = 1; I < Window.size(); ++I)
    EXPECT_GE(Window[I].TsNs, Window[I - 1].TsNs);
}

TEST_F(ObsTraceTest, RingTruncatesLongNamesWithoutAllocating) {
  obs::TraceRing Ring(0, "trunc", 8);
  std::string Long(200, 'x');
  Ring.push(obs::TraceRecord::Kind::Begin, Long, 0, "long_arg_name_beyond",
            1, true);
  std::vector<obs::TraceRecord> Window = Ring.drainOrdered();
  ASSERT_EQ(Window.size(), 1u);
  EXPECT_EQ(std::string(Window[0].Name).size(),
            obs::TraceRecord::NameCapacity - 1);
  EXPECT_EQ(std::string(Window[0].ArgName).size(),
            obs::TraceRecord::ArgNameCapacity - 1);
}

TEST_F(ObsTraceTest, SnapshotReportsDroppedCount) {
  obs::traceRecorder().setRingCapacity(8);
  obs::traceRecorder().reset();
  for (int I = 0; I < 20; ++I)
    obs::traceInstant("spin");
  bool Checked = false;
  for (const auto &T : obs::traceRecorder().snapshot()) {
    if (T.Records.empty())
      continue;
    EXPECT_EQ(T.Records.size(), 8u);
    EXPECT_EQ(T.Dropped, 12u);
    Checked = true;
  }
  EXPECT_TRUE(Checked);
  // Restore the default so later tests get full-size rings.
  obs::traceRecorder().setRingCapacity(
      obs::TraceRecorder::DefaultRingCapacity);
  obs::traceRecorder().reset();
}

TEST_F(ObsTraceTest, DrainFromReturnsOnlyNewRecords) {
  obs::TraceRing Ring(9, "drain", 8);
  uint64_t Cursor = 0, Lost = 0;
  for (int I = 0; I < 3; ++I)
    Ring.push(obs::TraceRecord::Kind::Instant, "a" + std::to_string(I), 0,
              nullptr, I, true);
  std::vector<obs::TraceRecord> First = Ring.drainFrom(Cursor, Lost);
  ASSERT_EQ(First.size(), 3u);
  EXPECT_EQ(Lost, 0u);
  EXPECT_EQ(Cursor, 3u);

  // Nothing new: empty drain, cursor stays put.
  EXPECT_TRUE(Ring.drainFrom(Cursor, Lost).empty());
  EXPECT_EQ(Cursor, 3u);

  for (int I = 3; I < 5; ++I)
    Ring.push(obs::TraceRecord::Kind::Instant, "a" + std::to_string(I), 0,
              nullptr, I, true);
  std::vector<obs::TraceRecord> Second = Ring.drainFrom(Cursor, Lost);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_EQ(Lost, 0u);
  EXPECT_EQ(std::string(Second[0].Name), "a3");
  EXPECT_EQ(std::string(Second[1].Name), "a4");
}

TEST_F(ObsTraceTest, DrainFromCountsRecordsLostToWraparound) {
  obs::TraceRing Ring(9, "drainwrap", 4);
  uint64_t Cursor = 0, Lost = 0;
  // 10 pushes through a 4-slot ring: the first 6 are gone by drain time.
  for (int I = 0; I < 10; ++I)
    Ring.push(obs::TraceRecord::Kind::Instant, "e" + std::to_string(I), 0,
              nullptr, I, true);
  std::vector<obs::TraceRecord> Window = Ring.drainFrom(Cursor, Lost);
  ASSERT_EQ(Window.size(), 4u);
  EXPECT_EQ(Lost, 6u);
  EXPECT_EQ(Cursor, 10u);
  for (size_t I = 0; I < Window.size(); ++I)
    EXPECT_EQ(std::string(Window[I].Name), "e" + std::to_string(6 + I));

  // A second overflow between drains is charged to Lost as well.
  for (int I = 10; I < 19; ++I)
    Ring.push(obs::TraceRecord::Kind::Instant, "e" + std::to_string(I), 0,
              nullptr, I, true);
  Window = Ring.drainFrom(Cursor, Lost);
  ASSERT_EQ(Window.size(), 4u);
  EXPECT_EQ(Lost, 6u + 5u);
  EXPECT_EQ(std::string(Window[0].Name), "e15");
}

TEST_F(ObsTraceTest, RingOverflowBumpsLiveDroppedEventsCounter) {
  obs::setMetricsEnabled(true);
  obs::metrics().reset();
  obs::traceRecorder().setRingCapacity(8);
  obs::traceRecorder().reset();
  for (int I = 0; I < 20; ++I)
    obs::traceInstant("spill");
  // 20 pushes into 8 slots: 12 overwrites, published live without any
  // export in the loop.
  uint64_t Dropped =
      obs::metrics().counter(obs::droppedEventsMetricName()).value();
  EXPECT_EQ(Dropped, 12u);
  obs::traceRecorder().setRingCapacity(
      obs::TraceRecorder::DefaultRingCapacity);
  obs::traceRecorder().reset();
}

TEST_F(ObsTraceTest, DroppedEventsMetricNameMatchesCanonicalName) {
  // The live counter in TraceRing::push and the canonical registry must
  // agree, or the pre-registered export shows a forever-zero series.
  EXPECT_STREQ(obs::droppedEventsMetricName(),
               obs::names::TraceDroppedEvents);
}

//===----------------------------------------------------------------------===//
// Disabled path
//===----------------------------------------------------------------------===//

TEST_F(ObsTraceTest, DisabledTracingRecordsNothing) {
  obs::setTracingEnabled(false);
  obs::traceBegin("off", "arg", 1);
  obs::traceEnd();
  obs::traceInstant("off");
  obs::traceCounter("off", 42);
  uint64_t Flow = obs::traceNextFlowId();
  EXPECT_EQ(Flow, 0u); // 0 = "no flow" at call sites
  obs::traceFlowStart("off", Flow);
  obs::traceFlowFinish("off", Flow);
  { obs::PhaseSpan Span("off_span"); }
  EXPECT_EQ(totalRecords(), 0u);
}

//===----------------------------------------------------------------------===//
// Export format
//===----------------------------------------------------------------------===//

TEST_F(ObsTraceTest, ExportIsValidJsonWithRequiredFields) {
  obs::setCurrentThreadName("main");
  obs::traceBegin("slice", "function", 12);
  obs::traceInstant("moment", "bytes", 99);
  obs::traceCounter("depth", 3);
  obs::traceEnd();

  std::string Json = obs::exportTraceJson(obs::traceRecorder());
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json;

  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"main\""), std::string::npos);
  EXPECT_NE(Json.find("\"schema\": \"twpp-trace-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"args\": {\"function\": 12}"), std::string::npos);
  EXPECT_NE(Json.find("\"args\": {\"value\": 3}"), std::string::npos);

  // Every event carries ph/pid/tid/ts, and per tid timestamps are
  // monotone in export order.
  std::vector<ExportedEvent> Events = exportedEvents(Json);
  ASSERT_GE(Events.size(), 6u); // 2 meta + B/i/C/E
  std::set<char> Phases;
  for (const ExportedEvent &E : Events) {
    EXPECT_TRUE(E.HasPid) << E.Line;
    EXPECT_GE(E.Tid, 0) << E.Line;
    EXPECT_GE(E.Ts, 0.0) << E.Line;
    Phases.insert(E.Ph);
  }
  for (char Ph : {'M', 'B', 'E', 'i', 'C'})
    EXPECT_TRUE(Phases.count(Ph)) << Ph;
  std::vector<double> LastTs(64, 0.0);
  for (const ExportedEvent &E : Events) {
    if (E.Ph == 'M')
      continue;
    ASSERT_LT(static_cast<size_t>(E.Tid), LastTs.size());
    EXPECT_GE(E.Ts, LastTs[E.Tid]) << E.Line;
    LastTs[E.Tid] = E.Ts;
  }
}

TEST_F(ObsTraceTest, ExportBalancesBeginEndPerTid) {
  // An orphaned E (its B lost to wraparound) must be dropped and an
  // unclosed B must gain a synthetic close, so viewers never see a
  // mismatched stack.
  obs::traceEnd(); // orphan
  obs::traceBegin("outer");
  obs::traceBegin("inner");
  obs::traceEnd(); // closes inner; outer left open on purpose

  std::string Json = obs::exportTraceJson(obs::traceRecorder());
  std::vector<long> Depth(64, 0);
  for (const ExportedEvent &E : exportedEvents(Json)) {
    ASSERT_LT(static_cast<size_t>(std::max(E.Tid, 0L)), Depth.size());
    if (E.Ph == 'B')
      ++Depth[E.Tid];
    else if (E.Ph == 'E') {
      --Depth[E.Tid];
      EXPECT_GE(Depth[E.Tid], 0) << "E before any B on tid " << E.Tid;
    }
  }
  for (long D : Depth)
    EXPECT_EQ(D, 0);
}

TEST_F(ObsTraceTest, ExportEscapesHostileNames) {
  obs::traceInstant("quote\" back\\slash\nnewline");
  std::string Json = obs::exportTraceJson(obs::traceRecorder());
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json;
  EXPECT_NE(Json.find("quote\\\" back\\\\slash\\u000anewline"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Cross-thread flows and span attribution through the pool
//===----------------------------------------------------------------------===//

TEST_F(ObsTraceTest, PoolFlowIdsMatchAcrossEnqueueAndExecute) {
  constexpr int TaskCount = 8;
  {
    obs::PhaseSpan Enqueue("compact");
    ThreadPool Pool(2);
    for (int I = 0; I < TaskCount; ++I)
      Pool.run([] {});
    Pool.wait();
  }

  std::multiset<uint64_t> Started, Finished;
  std::set<long> StartTids, FinishTids;
  for (const auto &T : obs::traceRecorder().snapshot())
    for (const obs::TraceRecord &R : T.Records) {
      if (R.K == obs::TraceRecord::Kind::FlowStart) {
        Started.insert(R.FlowId);
        StartTids.insert(T.Tid);
      } else if (R.K == obs::TraceRecord::Kind::FlowFinish) {
        Finished.insert(R.FlowId);
        FinishTids.insert(T.Tid);
      }
    }
  EXPECT_EQ(Started.size(), static_cast<size_t>(TaskCount));
  EXPECT_EQ(Started, Finished); // every arrow lands exactly once
  for (uint64_t Id : Started)
    EXPECT_NE(Id, 0u);
  // Execution happens on pool workers, never on the enqueuing thread.
  for (long Tid : FinishTids)
    EXPECT_FALSE(StartTids.count(Tid));

  // The export renders them as s/f pairs with matching ids, f closing
  // the arrow with bp:"e".
  std::string Json = obs::exportTraceJson(obs::traceRecorder());
  std::multiset<uint64_t> ExportedS, ExportedF;
  for (const ExportedEvent &E : exportedEvents(Json)) {
    if (E.Ph == 's')
      ExportedS.insert(E.FlowId);
    if (E.Ph == 'f') {
      ExportedF.insert(E.FlowId);
      EXPECT_NE(E.Line.find("\"bp\": \"e\""), std::string::npos) << E.Line;
    }
  }
  EXPECT_EQ(ExportedS, Started);
  EXPECT_EQ(ExportedF, Finished);
}

TEST_F(ObsTraceTest, PoolTaskSpansNestUnderEnqueuingPhase) {
  obs::setMetricsEnabled(true);
  obs::metrics().reset();
  {
    obs::PhaseSpan Outer("compact");
    obs::PhaseSpan Stage("dbb");
    ThreadPool Pool(2);
    for (int I = 0; I < 4; ++I)
      Pool.run([] { obs::PhaseSpan Work("task_work"); });
    Pool.wait();
  }

  std::set<std::string> Paths;
  for (const auto &Span : obs::metrics().spanSnapshot())
    Paths.insert(Span.Path);
  EXPECT_TRUE(Paths.count("compact"));
  EXPECT_TRUE(Paths.count("compact/dbb"));
  // The worker-side wrapper span inherits the enqueuing thread's path...
  EXPECT_TRUE(Paths.count("compact/dbb/pool")) << "no attributed pool span";
  // ...and spans the task opens itself nest beneath it.
  EXPECT_TRUE(Paths.count("compact/dbb/pool/task_work"));
  EXPECT_FALSE(Paths.count("pool")) << "unattributed root pool span";

  // The trace timeline shows the same nesting: worker tids carry "pool"
  // Begin slices.
  std::string Json = obs::exportTraceJson(obs::traceRecorder());
  EXPECT_NE(Json.find("\"name\": \"pool\""), std::string::npos);
}

TEST_F(ObsTraceTest, AttributionWorksWithMetricsOnlyToo) {
  // Tracing off, metrics on: the pool still captures the enqueue path.
  obs::setTracingEnabled(false);
  obs::setMetricsEnabled(true);
  obs::metrics().reset();
  {
    obs::PhaseSpan Stage("dbb");
    ThreadPool Pool(1);
    Pool.run([] { obs::PhaseSpan Work("task_work"); });
    Pool.wait();
  }
  std::set<std::string> Paths;
  for (const auto &Span : obs::metrics().spanSnapshot())
    Paths.insert(Span.Path);
  EXPECT_TRUE(Paths.count("dbb/pool"));
  EXPECT_TRUE(Paths.count("dbb/pool/task_work"));
  EXPECT_EQ(totalRecords(), 0u); // nothing leaked into the rings
}

//===----------------------------------------------------------------------===//
// Shared JSON escaping helper (used by both exporters)
//===----------------------------------------------------------------------===//

TEST_F(ObsTraceTest, JsonStringLiteralEscapes) {
  EXPECT_EQ(obs::jsonStringLiteral("plain"), "\"plain\"");
  EXPECT_EQ(obs::jsonStringLiteral("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(obs::jsonStringLiteral("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(obs::jsonStringLiteral(std::string_view("\n\t\x01", 3)),
            "\"\\u000a\\u0009\\u0001\"");
  // High bytes pass through untouched (UTF-8 stays UTF-8), and must not
  // be sign-extended into bogus escapes.
  EXPECT_EQ(obs::jsonStringLiteral("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST_F(ObsTraceTest, MetricsExportEscapesHostileNames) {
  obs::setMetricsEnabled(true);
  obs::metrics().counter("weird\"name\\with\njunk").add(5);
  std::string Json = obs::exportMetricsJson(obs::metrics());
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json;
  EXPECT_NE(Json.find("weird\\\"name\\\\with\\u000ajunk"),
            std::string::npos);

  std::string Lines = obs::exportMetricsJsonLines(obs::metrics(),
                                                  "label\"with quote");
  size_t Start = 0;
  while (Start < Lines.size()) {
    size_t End = Lines.find('\n', Start);
    ASSERT_NE(End, std::string::npos);
    std::string Line = Lines.substr(Start, End - Start);
    JsonChecker LineChecker(Line);
    EXPECT_TRUE(LineChecker.valid()) << Line;
    Start = End + 1;
  }
}

//===----------------------------------------------------------------------===//
// Memory counter tracks (obs/Memory.h sampling into the flight recorder)
//===----------------------------------------------------------------------===//

TEST_F(ObsTraceTest, MemorySampleEmitsCounterTracks) {
  bool WasTracking = obs::memTrackingEnabled();
  obs::setMemTrackingEnabled(true);
  obs::memAlloc("test.sample", 4096);

  obs::sampleMemoryCounters();

  bool SawRss = false, SawTag = false;
  for (const auto &T : obs::traceRecorder().snapshot())
    for (const auto &R : T.Records) {
      if (R.K != obs::TraceRecord::Kind::Counter)
        continue;
      if (std::string_view(R.Name) == "mem.rss_bytes") {
        SawRss = true;
        EXPECT_GT(R.Value, 0); // /proc/self/statm exists on Linux CI
      }
      if (std::string_view(R.Name) == "mem.live_bytes/test.sample") {
        SawTag = true;
        EXPECT_EQ(R.Value, 4096);
      }
    }
  EXPECT_TRUE(SawRss);
  EXPECT_TRUE(SawTag);

  obs::memFree("test.sample", 4096);
  obs::setMemTrackingEnabled(WasTracking);
}

TEST_F(ObsTraceTest, MemorySampleIsInertWithTracingOff) {
  obs::setTracingEnabled(false);
  bool WasTracking = obs::memTrackingEnabled();
  obs::setMemTrackingEnabled(true);
  obs::sampleMemoryCounters();
  EXPECT_EQ(totalRecords(), 0u);
  obs::setMemTrackingEnabled(WasTracking);
}

} // namespace
