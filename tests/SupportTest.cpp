//===- tests/SupportTest.cpp - support/ unit tests -------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"
#include "support/FileIO.h"
#include "support/LZW.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <vector>

using namespace twpp;

namespace {

TEST(ZigzagTest, RoundTripsRepresentativeValues) {
  for (int64_t Value :
       std::initializer_list<int64_t>{0, 1, -1, 2, -2, 1000000, -1000000,
                                      INT64_MAX, INT64_MIN})
    EXPECT_EQ(zigzagDecode(zigzagEncode(Value)), Value) << Value;
}

TEST(ZigzagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(zigzagEncode(0), 0u);
  EXPECT_EQ(zigzagEncode(-1), 1u);
  EXPECT_EQ(zigzagEncode(1), 2u);
  EXPECT_EQ(zigzagEncode(-2), 3u);
}

TEST(ByteStreamTest, VarUintRoundTrip) {
  ByteWriter Writer;
  std::vector<uint64_t> Values = {0, 1, 127, 128, 16383, 16384,
                                  UINT32_MAX, UINT64_MAX};
  for (uint64_t Value : Values)
    Writer.writeVarUint(Value);
  ByteReader Reader(Writer.bytes());
  for (uint64_t Value : Values)
    EXPECT_EQ(Reader.readVarUint(), Value);
  EXPECT_TRUE(Reader.valid());
  EXPECT_TRUE(Reader.atEnd());
}

TEST(ByteStreamTest, VarIntRoundTrip) {
  ByteWriter Writer;
  std::vector<int64_t> Values = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t Value : Values)
    Writer.writeVarInt(Value);
  ByteReader Reader(Writer.bytes());
  for (int64_t Value : Values)
    EXPECT_EQ(Reader.readVarInt(), Value);
  EXPECT_TRUE(Reader.valid());
}

TEST(ByteStreamTest, StringsAndFixedWidth) {
  ByteWriter Writer;
  Writer.writeString("hello");
  Writer.writeFixed32(0xDEADBEEF);
  size_t PatchAt = Writer.size();
  Writer.writeFixed64(0);
  Writer.writeString("");
  Writer.patchFixed64(PatchAt, 0x0123456789ABCDEFULL);

  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readString(), "hello");
  EXPECT_EQ(Reader.readFixed32(), 0xDEADBEEFu);
  EXPECT_EQ(Reader.readFixed64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(Reader.readString(), "");
  EXPECT_TRUE(Reader.valid());
}

TEST(ByteStreamTest, ReaderFlagsTruncation) {
  ByteWriter Writer;
  Writer.writeVarUint(UINT64_MAX);
  std::vector<uint8_t> Bytes = Writer.take();
  Bytes.pop_back();
  ByteReader Reader(Bytes);
  Reader.readVarUint();
  EXPECT_TRUE(Reader.hasError());
}

TEST(ByteStreamTest, ReaderFlagsOutOfRangeSeek) {
  std::vector<uint8_t> Bytes = {1, 2, 3};
  ByteReader Reader(Bytes);
  Reader.seek(3); // end is legal
  EXPECT_TRUE(Reader.valid());
  Reader.seek(4);
  EXPECT_TRUE(Reader.hasError());
}

TEST(LzwTest, EmptyInput) {
  std::vector<uint8_t> Out;
  EXPECT_TRUE(lzwDecompress(lzwCompress({}), Out));
  EXPECT_TRUE(Out.empty());
}

TEST(LzwTest, SingleByteAndKwKwK) {
  // "aaaa..." exercises the KwKwK corner case.
  std::vector<uint8_t> Input(100, 'a');
  std::vector<uint8_t> Out;
  ASSERT_TRUE(lzwDecompress(lzwCompress(Input), Out));
  EXPECT_EQ(Out, Input);
}

TEST(LzwTest, CompressesRepetitiveInput) {
  std::vector<uint8_t> Input;
  for (int I = 0; I < 2000; ++I)
    Input.push_back(static_cast<uint8_t>("abcabcab"[I % 8]));
  std::vector<uint8_t> Compressed = lzwCompress(Input);
  EXPECT_LT(Compressed.size(), Input.size() / 4);
  std::vector<uint8_t> Out;
  ASSERT_TRUE(lzwDecompress(Compressed, Out));
  EXPECT_EQ(Out, Input);
}

TEST(LzwTest, RejectsMalformedStreams) {
  std::vector<uint8_t> Out;
  // First code must be a literal byte (< 256); 0x80 0x02 encodes 256.
  EXPECT_FALSE(lzwDecompress({0x80, 0x02}, Out));
}

/// Property sweep: random byte strings round trip.
class LzwRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzwRoundTrip, RandomBytes) {
  Rng R(GetParam());
  size_t Length = R.nextBelow(5000);
  // Small alphabets compress hard; large alphabets stress literals.
  uint64_t Alphabet = 1 + R.nextBelow(255);
  std::vector<uint8_t> Input;
  Input.reserve(Length);
  for (size_t I = 0; I < Length; ++I)
    Input.push_back(static_cast<uint8_t>(R.nextBelow(Alphabet)));
  std::vector<uint8_t> Out;
  ASSERT_TRUE(lzwDecompress(lzwCompress(Input), Out));
  EXPECT_EQ(Out, Input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzwRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(RandomTest, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, WeightedSamplingHitsAllBuckets) {
  Rng R(9);
  std::vector<double> Weights = {1.0, 2.0, 4.0};
  std::vector<int> Counts(3, 0);
  for (int I = 0; I < 3000; ++I)
    ++Counts[R.nextWeighted(Weights)];
  EXPECT_GT(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[0]); // heavier bucket sampled more
}

TEST(StatsTest, RunningStats) {
  RunningStats S;
  S.add(2.0);
  S.add(4.0);
  S.add(9.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(StatsTest, WelfordVarianceMatchesDirectComputation) {
  RunningStats S;
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  S.add(5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0); // undefined below two samples
  std::vector<double> Samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats W;
  for (double X : Samples)
    W.add(X);
  // Population variance of the classic example set is exactly 4.
  EXPECT_NEAR(W.variance(), 4.0, 1e-12);
  EXPECT_NEAR(W.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(W.mean(), 5.0);
}

TEST(StatsTest, WelfordIsStableForLargeOffsets) {
  // Naive sum-of-squares cancels catastrophically here; Welford must not.
  RunningStats S;
  for (double X : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0})
    S.add(X);
  EXPECT_NEAR(S.variance(), 22.5, 1e-6);
}

TEST(StatsTest, QuantilesExactForSmallSamples) {
  RunningStats S;
  for (double X : {10.0, 20.0, 30.0, 40.0, 50.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.p50(), 30.0);
  EXPECT_DOUBLE_EQ(S.p95(), 50.0);
}

TEST(StatsTest, P2QuantileTracksUniformStream) {
  // Deterministic uniform-ish stream via a multiplicative generator.
  P2Quantile Median(0.5), Tail(0.95);
  uint64_t State = 1;
  const uint64_t Samples = 20000;
  for (uint64_t I = 0; I < Samples; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    double X = static_cast<double>(State >> 11) /
               static_cast<double>(1ull << 53); // [0, 1)
    Median.add(X * 1000.0);
    Tail.add(X * 1000.0);
  }
  EXPECT_EQ(Median.count(), Samples);
  // P-squared is approximate; a few percent of the range is plenty.
  EXPECT_NEAR(Median.estimate(), 500.0, 25.0);
  EXPECT_NEAR(Tail.estimate(), 950.0, 25.0);
}

TEST(StatsTest, P2QuantileHandlesMonotoneStream) {
  P2Quantile Q(0.5);
  for (int I = 1; I <= 1001; ++I)
    Q.add(static_cast<double>(I));
  EXPECT_NEAR(Q.estimate(), 501.0, 50.0);
}

TEST(StatsTest, Formatting) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.00 KB");
  EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(formatFactor(6.3), "x6.30");
}

TEST(FileIoTest, WholeFileAndSliceRoundTrip) {
  std::string Path = ::testing::TempDir() + "/twpp_fileio_test.bin";
  std::vector<uint8_t> Data;
  for (int I = 0; I < 1000; ++I)
    Data.push_back(static_cast<uint8_t>(I * 7));
  ASSERT_TRUE(writeFileBytes(Path, Data));
  ASSERT_TRUE(fileSize(Path).has_value());
  EXPECT_EQ(*fileSize(Path), Data.size());
  EXPECT_FALSE(fileSize(Path + ".does-not-exist").has_value());

  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFileBytes(Path, Back));
  EXPECT_EQ(Back, Data);

  std::vector<uint8_t> Slice;
  ASSERT_TRUE(readFileSlice(Path, 100, 50, Slice));
  EXPECT_EQ(Slice,
            std::vector<uint8_t>(Data.begin() + 100, Data.begin() + 150));
  std::remove(Path.c_str());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter Table("Demo");
  Table.addRow({"Program", "Size"});
  Table.addRow({"a", "100"});
  Table.addRow({"longer-name", "2"});
  std::string Text = Table.render();
  EXPECT_NE(Text.find("== Demo =="), std::string::npos);
  EXPECT_NE(Text.find("longer-name"), std::string::npos);
  EXPECT_NE(Text.find("---"), std::string::npos);
}

} // namespace
