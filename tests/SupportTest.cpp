//===- tests/SupportTest.cpp - support/ unit tests -------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/ByteStream.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "support/Mmap.h"
#include "support/LZW.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

using namespace twpp;

namespace {

TEST(ZigzagTest, RoundTripsRepresentativeValues) {
  for (int64_t Value :
       std::initializer_list<int64_t>{0, 1, -1, 2, -2, 1000000, -1000000,
                                      INT64_MAX, INT64_MIN})
    EXPECT_EQ(zigzagDecode(zigzagEncode(Value)), Value) << Value;
}

TEST(ZigzagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(zigzagEncode(0), 0u);
  EXPECT_EQ(zigzagEncode(-1), 1u);
  EXPECT_EQ(zigzagEncode(1), 2u);
  EXPECT_EQ(zigzagEncode(-2), 3u);
}

TEST(ByteStreamTest, VarUintRoundTrip) {
  ByteWriter Writer;
  std::vector<uint64_t> Values = {0, 1, 127, 128, 16383, 16384,
                                  UINT32_MAX, UINT64_MAX};
  for (uint64_t Value : Values)
    Writer.writeVarUint(Value);
  ByteReader Reader(Writer.bytes());
  for (uint64_t Value : Values)
    EXPECT_EQ(Reader.readVarUint(), Value);
  EXPECT_TRUE(Reader.valid());
  EXPECT_TRUE(Reader.atEnd());
}

TEST(ByteStreamTest, VarIntRoundTrip) {
  ByteWriter Writer;
  std::vector<int64_t> Values = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t Value : Values)
    Writer.writeVarInt(Value);
  ByteReader Reader(Writer.bytes());
  for (int64_t Value : Values)
    EXPECT_EQ(Reader.readVarInt(), Value);
  EXPECT_TRUE(Reader.valid());
}

TEST(ByteStreamTest, StringsAndFixedWidth) {
  ByteWriter Writer;
  Writer.writeString("hello");
  Writer.writeFixed32(0xDEADBEEF);
  size_t PatchAt = Writer.size();
  Writer.writeFixed64(0);
  Writer.writeString("");
  Writer.patchFixed64(PatchAt, 0x0123456789ABCDEFULL);

  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readString(), "hello");
  EXPECT_EQ(Reader.readFixed32(), 0xDEADBEEFu);
  EXPECT_EQ(Reader.readFixed64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(Reader.readString(), "");
  EXPECT_TRUE(Reader.valid());
}

TEST(ByteStreamTest, ReaderFlagsTruncation) {
  ByteWriter Writer;
  Writer.writeVarUint(UINT64_MAX);
  std::vector<uint8_t> Bytes = Writer.take();
  Bytes.pop_back();
  ByteReader Reader(Bytes);
  Reader.readVarUint();
  EXPECT_TRUE(Reader.hasError());
}

TEST(ByteStreamTest, ReaderFlagsOutOfRangeSeek) {
  std::vector<uint8_t> Bytes = {1, 2, 3};
  ByteReader Reader(Bytes);
  Reader.seek(3); // end is legal
  EXPECT_TRUE(Reader.valid());
  Reader.seek(4);
  EXPECT_TRUE(Reader.hasError());
}

TEST(LzwTest, EmptyInput) {
  std::vector<uint8_t> Out;
  EXPECT_TRUE(lzwDecompress(lzwCompress({}), Out));
  EXPECT_TRUE(Out.empty());
}

TEST(LzwTest, SingleByteAndKwKwK) {
  // "aaaa..." exercises the KwKwK corner case.
  std::vector<uint8_t> Input(100, 'a');
  std::vector<uint8_t> Out;
  ASSERT_TRUE(lzwDecompress(lzwCompress(Input), Out));
  EXPECT_EQ(Out, Input);
}

TEST(LzwTest, CompressesRepetitiveInput) {
  std::vector<uint8_t> Input;
  for (int I = 0; I < 2000; ++I)
    Input.push_back(static_cast<uint8_t>("abcabcab"[I % 8]));
  std::vector<uint8_t> Compressed = lzwCompress(Input);
  EXPECT_LT(Compressed.size(), Input.size() / 4);
  std::vector<uint8_t> Out;
  ASSERT_TRUE(lzwDecompress(Compressed, Out));
  EXPECT_EQ(Out, Input);
}

TEST(LzwTest, RejectsMalformedStreams) {
  std::vector<uint8_t> Out;
  // First code must be a literal byte (< 256); 0x80 0x02 encodes 256.
  EXPECT_FALSE(lzwDecompress({0x80, 0x02}, Out));
}

/// Property sweep: random byte strings round trip.
class LzwRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzwRoundTrip, RandomBytes) {
  Rng R(GetParam());
  size_t Length = R.nextBelow(5000);
  // Small alphabets compress hard; large alphabets stress literals.
  uint64_t Alphabet = 1 + R.nextBelow(255);
  std::vector<uint8_t> Input;
  Input.reserve(Length);
  for (size_t I = 0; I < Length; ++I)
    Input.push_back(static_cast<uint8_t>(R.nextBelow(Alphabet)));
  std::vector<uint8_t> Out;
  ASSERT_TRUE(lzwDecompress(lzwCompress(Input), Out));
  EXPECT_EQ(Out, Input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzwRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(RandomTest, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, WeightedSamplingHitsAllBuckets) {
  Rng R(9);
  std::vector<double> Weights = {1.0, 2.0, 4.0};
  std::vector<int> Counts(3, 0);
  for (int I = 0; I < 3000; ++I)
    ++Counts[R.nextWeighted(Weights)];
  EXPECT_GT(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[0]); // heavier bucket sampled more
}

TEST(StatsTest, RunningStats) {
  RunningStats S;
  S.add(2.0);
  S.add(4.0);
  S.add(9.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(StatsTest, WelfordVarianceMatchesDirectComputation) {
  RunningStats S;
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  S.add(5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0); // undefined below two samples
  std::vector<double> Samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats W;
  for (double X : Samples)
    W.add(X);
  // Population variance of the classic example set is exactly 4.
  EXPECT_NEAR(W.variance(), 4.0, 1e-12);
  EXPECT_NEAR(W.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(W.mean(), 5.0);
}

TEST(StatsTest, WelfordIsStableForLargeOffsets) {
  // Naive sum-of-squares cancels catastrophically here; Welford must not.
  RunningStats S;
  for (double X : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0})
    S.add(X);
  EXPECT_NEAR(S.variance(), 22.5, 1e-6);
}

TEST(StatsTest, QuantilesExactForSmallSamples) {
  RunningStats S;
  for (double X : {10.0, 20.0, 30.0, 40.0, 50.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.p50(), 30.0);
  EXPECT_DOUBLE_EQ(S.p95(), 50.0);
}

TEST(StatsTest, P2QuantileTracksUniformStream) {
  // Deterministic uniform-ish stream via a multiplicative generator.
  P2Quantile Median(0.5), Tail(0.95);
  uint64_t State = 1;
  const uint64_t Samples = 20000;
  for (uint64_t I = 0; I < Samples; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    double X = static_cast<double>(State >> 11) /
               static_cast<double>(1ull << 53); // [0, 1)
    Median.add(X * 1000.0);
    Tail.add(X * 1000.0);
  }
  EXPECT_EQ(Median.count(), Samples);
  // P-squared is approximate; a few percent of the range is plenty.
  EXPECT_NEAR(Median.estimate(), 500.0, 25.0);
  EXPECT_NEAR(Tail.estimate(), 950.0, 25.0);
}

TEST(StatsTest, P2QuantileHandlesMonotoneStream) {
  P2Quantile Q(0.5);
  for (int I = 1; I <= 1001; ++I)
    Q.add(static_cast<double>(I));
  EXPECT_NEAR(Q.estimate(), 501.0, 50.0);
}

TEST(StatsTest, Formatting) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.00 KB");
  EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(formatFactor(6.3), "x6.30");
}

TEST(FileIoTest, WholeFileAndSliceRoundTrip) {
  std::string Path = ::testing::TempDir() + "/twpp_fileio_test.bin";
  std::vector<uint8_t> Data;
  for (int I = 0; I < 1000; ++I)
    Data.push_back(static_cast<uint8_t>(I * 7));
  ASSERT_TRUE(writeFileBytes(Path, Data));
  ASSERT_TRUE(fileSize(Path).has_value());
  EXPECT_EQ(*fileSize(Path), Data.size());
  EXPECT_FALSE(fileSize(Path + ".does-not-exist").has_value());

  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFileBytes(Path, Back));
  EXPECT_EQ(Back, Data);

  std::vector<uint8_t> Slice;
  ASSERT_TRUE(readFileSlice(Path, 100, 50, Slice));
  EXPECT_EQ(Slice,
            std::vector<uint8_t>(Data.begin() + 100, Data.begin() + 150));
  std::remove(Path.c_str());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter Table("Demo");
  Table.addRow({"Program", "Size"});
  Table.addRow({"a", "100"});
  Table.addRow({"longer-name", "2"});
  std::string Text = Table.render();
  EXPECT_NE(Text.find("== Demo =="), std::string::npos);
  EXPECT_NE(Text.find("longer-name"), std::string::npos);
  EXPECT_NE(Text.find("---"), std::string::npos);
}


//===----------------------------------------------------------------------===//
// Arena — the decode scratch allocator of the zero-copy read path.
//===----------------------------------------------------------------------===//

TEST(ArenaTest, BumpsWithinOneBlock) {
  Arena A(1024);
  void *P1 = A.allocate(100);
  void *P2 = A.allocate(100);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(A.blockCount(), 1u);
  EXPECT_GE(A.bytesUsed(), 200u);
  EXPECT_EQ(A.bytesReserved(), 1024u);
}

TEST(ArenaTest, ResetReusesBlocksWithoutReacquiring) {
  Arena A(256);
  void *First = A.allocate(200);
  A.allocate(200); // forces a second block
  EXPECT_EQ(A.blockCount(), 2u);
  size_t Reserved = A.bytesReserved();
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  // After reset, allocation restarts at the first pooled block.
  void *Again = A.allocate(200);
  EXPECT_EQ(Again, First);
  EXPECT_EQ(A.blockCount(), 2u);
  EXPECT_EQ(A.bytesReserved(), Reserved);
}

TEST(ArenaTest, AlignmentIsHonoured) {
  Arena A(1024);
  A.allocate(1); // misalign the cursor
  for (size_t Align : {size_t(2), size_t(4), size_t(8), size_t(16)}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "alignment " << Align;
  }
  int64_t *Typed = A.allocateArray<int64_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Typed) % alignof(int64_t), 0u);
  // Writes must land in distinct storage.
  for (int I = 0; I < 5; ++I)
    Typed[I] = I;
  EXPECT_EQ(Typed[4], 4);
}

TEST(ArenaTest, OversizedRequestSpills) {
  Arena A(128);
  void *Big = A.allocate(10000);
  ASSERT_NE(Big, nullptr);
  EXPECT_EQ(A.blockCount(), 1u);
  EXPECT_EQ(A.bytesReserved(), 10000u);
  // The spill block is pooled: a reset makes it reusable.
  A.reset();
  void *Again = A.allocate(9000);
  EXPECT_EQ(Again, Big);
  EXPECT_EQ(A.blockCount(), 1u);
}

TEST(ArenaTest, ReleaseReturnsEverything) {
  Arena A(256);
  A.allocate(1000);
  A.release();
  EXPECT_EQ(A.blockCount(), 0u);
  EXPECT_EQ(A.bytesReserved(), 0u);
  EXPECT_EQ(A.bytesUsed(), 0u);
  // The arena is still usable after release().
  EXPECT_NE(A.allocate(64), nullptr);
  EXPECT_EQ(A.blockCount(), 1u);
}

TEST(ArenaTest, ZeroByteAllocationsAreValid) {
  Arena A(64);
  void *P = A.allocate(0);
  EXPECT_NE(P, nullptr);
}

//===----------------------------------------------------------------------===//
// MappedFile — the mmap(2) RAII wrapper behind IoMode::Mmap.
//===----------------------------------------------------------------------===//

TEST(MmapTest, MapsFileContents) {
  if (!MappedFile::available())
    GTEST_SKIP() << "mmap not available on this platform";
  std::string Path = ::testing::TempDir() + "/mmap_contents.bin";
  std::vector<uint8_t> Payload = {1, 2, 3, 250, 251, 252};
  ASSERT_TRUE(writeFileBytes(Path, Payload));
  MappedFile Map;
  ASSERT_TRUE(Map.map(Path));
  EXPECT_TRUE(Map.mapped());
  ASSERT_EQ(Map.size(), Payload.size());
  ByteSpan Span = Map.span();
  EXPECT_TRUE(std::equal(Span.begin(), Span.end(), Payload.begin()));
  Map.unmap();
  EXPECT_FALSE(Map.mapped());
  EXPECT_EQ(Map.size(), 0u);
  std::remove(Path.c_str());
}

TEST(MmapTest, EmptyFileMapsToNullSpan) {
  // mmap(2) rejects length zero; the wrapper must still report success
  // with an empty span so callers need no special case.
  if (!MappedFile::available())
    GTEST_SKIP() << "mmap not available on this platform";
  std::string Path = ::testing::TempDir() + "/mmap_empty.bin";
  ASSERT_TRUE(writeFileBytes(Path, {}));
  MappedFile Map;
  ASSERT_TRUE(Map.map(Path));
  EXPECT_TRUE(Map.mapped());
  EXPECT_EQ(Map.size(), 0u);
  EXPECT_TRUE(Map.span().empty());
  std::remove(Path.c_str());
}

TEST(MmapTest, MissingFileFailsCleanly) {
  MappedFile Map;
  IoError Error = Map.map(::testing::TempDir() + "/mmap_no_such_file.bin");
  EXPECT_FALSE(Error);
  EXPECT_FALSE(Map.mapped());
}

TEST(MmapTest, RemapReplacesPreviousMapping) {
  if (!MappedFile::available())
    GTEST_SKIP() << "mmap not available on this platform";
  std::string PathA = ::testing::TempDir() + "/mmap_a.bin";
  std::string PathB = ::testing::TempDir() + "/mmap_b.bin";
  ASSERT_TRUE(writeFileBytes(PathA, {1, 1, 1}));
  ASSERT_TRUE(writeFileBytes(PathB, {2, 2}));
  MappedFile Map;
  ASSERT_TRUE(Map.map(PathA));
  ASSERT_TRUE(Map.map(PathB));
  ASSERT_EQ(Map.size(), 2u);
  EXPECT_EQ(Map.span().Data[0], 2);
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

TEST(MmapTest, MoveTransfersOwnership) {
  if (!MappedFile::available())
    GTEST_SKIP() << "mmap not available on this platform";
  std::string Path = ::testing::TempDir() + "/mmap_move.bin";
  ASSERT_TRUE(writeFileBytes(Path, {9, 8, 7}));
  MappedFile A;
  ASSERT_TRUE(A.map(Path));
  MappedFile B = std::move(A);
  EXPECT_FALSE(A.mapped());
  ASSERT_TRUE(B.mapped());
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B.span().Data[0], 9);
  std::remove(Path.c_str());
}

TEST(MmapTest, InjectedFaultFailsMap) {
  if (!MappedFile::available())
    GTEST_SKIP() << "mmap not available on this platform";
  std::string Path = ::testing::TempDir() + "/mmap_fault.bin";
  ASSERT_TRUE(writeFileBytes(Path, {1, 2, 3}));
  fault::ScopedFaultSpec Spec("io:mmap:n=1");
  MappedFile Map;
  EXPECT_FALSE(Map.map(Path));
  EXPECT_FALSE(Map.mapped());
  // The injected budget is spent; a second attempt succeeds.
  EXPECT_TRUE(Map.map(Path));
  std::remove(Path.c_str());
}

} // namespace
