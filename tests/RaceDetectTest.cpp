//===- tests/RaceDetectTest.cpp - Race detector differential tests --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
//
// Hand-built known-race / known-race-free regressions for the compacted
// engine, plus a seeded differential fuzz suite: random well-formed
// interleavings where the compacted engine's report must be byte-equal
// (race list, addresses, access pairs, pair counts) to the
// decompress-and-check oracle's.
//
//===----------------------------------------------------------------------===//

#include "races/RaceDetect.h"
#include "support/Random.h"
#include "trace/ThreadEvents.h"
#include "wpp/Concurrent.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>

using namespace twpp;
using namespace twpp::races;

namespace {

ThreadTrace simpleThread(ThreadId Id, uint32_t Blocks) {
  ThreadTrace T;
  T.Id = Id;
  T.Trace.FunctionCount = 1;
  T.Trace.Events.push_back(TraceEvent::enter(0));
  for (uint32_t B = 1; B <= Blocks; ++B)
    T.Trace.Events.push_back(TraceEvent::block(B));
  T.Trace.Events.push_back(TraceEvent::exit());
  return T;
}

/// ConcurrencyInfo straight from a raw concurrent trace (no compaction —
/// the detector only needs the metadata).
ConcurrencyInfo concInfo(const ConcurrentTrace &Trace) {
  ConcurrencyInfo Conc;
  Conc.FunctionCount = Trace.FunctionCount;
  for (const ThreadTrace &T : Trace.Threads)
    Conc.Threads.push_back({T.Id, T.Trace.blockEventCount()});
  Conc.Edges = deriveHbEdges(Trace);
  Conc.Accesses = buildAccessTables(Trace);
  return Conc;
}

void expectEnginesAgree(const ConcurrencyInfo &Conc) {
  RaceReport Fast = detectRacesCompacted(Conc);
  RaceReport Slow = detectRacesOracle(Conc);
  EXPECT_TRUE(sameVerdict(Fast, Slow))
      << "compacted:\n"
      << renderRaceLines(Fast) << "oracle:\n"
      << renderRaceLines(Slow);
  EXPECT_EQ(renderRaceLines(Fast), renderRaceLines(Slow));
  EXPECT_EQ(Fast.Stats.PairsCovered, Slow.Stats.PairsCovered);
  EXPECT_EQ(Fast.Stats.RacyPairs, Slow.Stats.RacyPairs);
}

TEST(RaceDetectTest, UnsyncedWritesRace) {
  ConcurrentTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Threads.push_back(simpleThread(0, 4));
  Trace.Threads.push_back(simpleThread(1, 4));
  Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 2));
  Trace.Accesses.push_back(AccessEvent::write(1, 0x10, 3));
  ASSERT_TRUE(Trace.isWellFormed());

  ConcurrencyInfo Conc = concInfo(Trace);
  RaceReport Report = detectRacesCompacted(Conc);
  ASSERT_EQ(Report.Races.size(), 1u);
  const RacePair &R = Report.Races[0];
  EXPECT_EQ(R.Addr, 0x10u);
  EXPECT_EQ(R.ThreadA, 0u);
  EXPECT_EQ(R.ThreadB, 1u);
  EXPECT_EQ(R.TimeA, 2u);
  EXPECT_EQ(R.TimeB, 3u);
  EXPECT_EQ(R.KindA, 0u);
  EXPECT_EQ(R.KindB, 0u);
  EXPECT_EQ(R.PairCount, 1u);
  EXPECT_EQ(Report.Stats.RacyPairs, 1u);
  expectEnginesAgree(Conc);
}

TEST(RaceDetectTest, ReadReadNeverRaces) {
  ConcurrentTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Threads.push_back(simpleThread(0, 4));
  Trace.Threads.push_back(simpleThread(1, 4));
  Trace.Accesses.push_back(AccessEvent::read(0, 0x10, 2));
  Trace.Accesses.push_back(AccessEvent::read(1, 0x10, 3));
  ASSERT_TRUE(Trace.isWellFormed());

  ConcurrencyInfo Conc = concInfo(Trace);
  RaceReport Report = detectRacesCompacted(Conc);
  EXPECT_FALSE(Report.racy());
  // Read-read pairs still count as covered candidates.
  EXPECT_EQ(Report.Stats.PairsCovered, 1u);
  expectEnginesAgree(Conc);
}

TEST(RaceDetectTest, LockOrderingSuppressesRace) {
  ConcurrentTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Threads.push_back(simpleThread(0, 4));
  Trace.Threads.push_back(simpleThread(1, 4));
  // T0 writes inside [acq@0, rel@3]; T1 acquires afterwards at its time
  // 0 and writes at time 1 — ordered by the release->acquire edge.
  Trace.Syncs.push_back(SyncEvent::acquire(0, 1, 0));
  Trace.Syncs.push_back(SyncEvent::release(0, 1, 3));
  Trace.Syncs.push_back(SyncEvent::acquire(1, 1, 0));
  Trace.Syncs.push_back(SyncEvent::release(1, 1, 2));
  Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 2));
  Trace.Accesses.push_back(AccessEvent::write(1, 0x10, 1));
  ASSERT_TRUE(Trace.isWellFormed());

  ConcurrencyInfo Conc = concInfo(Trace);
  EXPECT_FALSE(detectRacesCompacted(Conc).racy());
  expectEnginesAgree(Conc);

  // The same trace with an unguarded second address still races there.
  Trace.Accesses.push_back(AccessEvent::write(0, 0x20, 4));
  Trace.Accesses.push_back(AccessEvent::write(1, 0x20, 4));
  ConcurrencyInfo Conc2 = concInfo(Trace);
  RaceReport Report = detectRacesCompacted(Conc2);
  ASSERT_EQ(Report.Races.size(), 1u);
  EXPECT_EQ(Report.Races[0].Addr, 0x20u);
  expectEnginesAgree(Conc2);
}

TEST(RaceDetectTest, ForkJoinOrdering) {
  ConcurrentTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Threads.push_back(simpleThread(0, 8));
  Trace.Threads.push_back(simpleThread(1, 4));
  // Parent writes at 1 (pre-fork, ordered), forks at 2, writes at 3
  // (concurrent with the child), joins at 6, writes at 7 (post-join,
  // ordered). Child writes the same address at 2.
  Trace.Syncs.push_back(SyncEvent::fork(0, 1, 2));
  Trace.Syncs.push_back(SyncEvent::join(0, 1, 6));
  Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 1));
  Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 3));
  Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 7));
  Trace.Accesses.push_back(AccessEvent::write(1, 0x10, 2));
  ASSERT_TRUE(Trace.isWellFormed());

  ConcurrencyInfo Conc = concInfo(Trace);
  RaceReport Report = detectRacesCompacted(Conc);
  ASSERT_EQ(Report.Races.size(), 1u);
  const RacePair &R = Report.Races[0];
  // Only the mid-window write races; it is the reported first pair.
  EXPECT_EQ(R.TimeA, 3u);
  EXPECT_EQ(R.TimeB, 2u);
  EXPECT_EQ(R.PairCount, 1u);
  expectEnginesAgree(Conc);
}

TEST(RaceDetectTest, FirstPairTieBreakPrefersWrites) {
  ConcurrentTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Threads.push_back(simpleThread(0, 4));
  Trace.Threads.push_back(simpleThread(1, 4));
  // Same earliest time on thread 0 with both a read and a write racing:
  // the write (kind 0) must win the tie-break.
  Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 2));
  Trace.Accesses.push_back(AccessEvent::read(0, 0x10, 2));
  Trace.Accesses.push_back(AccessEvent::write(1, 0x10, 1));
  std::sort(Trace.Accesses.begin(), Trace.Accesses.end(),
            [](const AccessEvent &A, const AccessEvent &B) {
              return std::make_tuple(A.Thread, A.Time, A.Addr,
                                     static_cast<uint8_t>(A.EventKind)) <
                     std::make_tuple(B.Thread, B.Time, B.Addr,
                                     static_cast<uint8_t>(B.EventKind));
            });
  ASSERT_TRUE(Trace.isWellFormed());

  ConcurrencyInfo Conc = concInfo(Trace);
  RaceReport Report = detectRacesCompacted(Conc);
  ASSERT_EQ(Report.Races.size(), 1u);
  EXPECT_EQ(Report.Races[0].KindA, 0u);
  EXPECT_EQ(Report.Races[0].PairCount, 2u); // write-write + read-write
  expectEnginesAgree(Conc);
}

//===----------------------------------------------------------------------===//
// Differential fuzz.
//===----------------------------------------------------------------------===//

/// Builds a random well-formed concurrent trace: random per-thread
/// lengths, a random lock-respecting sync interleaving, and random
/// accesses over a small address pool (small so collisions are common).
ConcurrentTrace fuzzTrace(uint64_t Seed) {
  Rng Rand(Seed);
  ConcurrentTrace Trace;
  Trace.FunctionCount = 1;
  const uint32_t Threads = 2 + static_cast<uint32_t>(Rand.nextBelow(3));
  const uint32_t Locks = 1 + static_cast<uint32_t>(Rand.nextBelow(3));
  std::vector<uint32_t> Length(Threads), Cursor(Threads, 0);
  for (uint32_t T = 0; T != Threads; ++T) {
    Length[T] = 4 + static_cast<uint32_t>(Rand.nextBelow(28));
    Trace.Threads.push_back(simpleThread(T, Length[T]));
  }

  std::map<LockId, std::optional<ThreadId>> Holder;
  std::vector<std::vector<LockId>> Held(Threads);
  const uint32_t Steps = 20 + static_cast<uint32_t>(Rand.nextBelow(60));
  for (uint32_t S = 0; S != Steps; ++S) {
    ThreadId T = static_cast<ThreadId>(Rand.nextBelow(Threads));
    // Advance the thread's clock a random amount (possibly zero).
    Cursor[T] = std::min<uint32_t>(
        Length[T],
        Cursor[T] + static_cast<uint32_t>(Rand.nextBelow(4)));
    switch (Rand.nextBelow(3)) {
    case 0: { // try to acquire a free lock
      LockId L = static_cast<LockId>(Rand.nextBelow(Locks));
      if (!Holder[L]) {
        Holder[L] = T;
        Held[T].push_back(L);
        Trace.Syncs.push_back(SyncEvent::acquire(T, L, Cursor[T]));
      }
      break;
    }
    case 1: { // release one held lock
      if (!Held[T].empty()) {
        LockId L = Held[T].back();
        Held[T].pop_back();
        Holder[L].reset();
        Trace.Syncs.push_back(SyncEvent::release(T, L, Cursor[T]));
      }
      break;
    }
    default: { // emit an access at the current position
      if (Cursor[T] >= 1) {
        Address A = 1 + Rand.nextBelow(6);
        bool Write = Rand.nextBool(0.5);
        Trace.Accesses.push_back(
            {Write ? AccessEvent::Kind::Write : AccessEvent::Kind::Read, T,
             A, Cursor[T]});
      }
      break;
    }
    }
  }
  // Drain still-held locks so the next fuzz round starts clean.
  for (uint32_t T = 0; T != Threads; ++T)
    while (!Held[T].empty()) {
      LockId L = Held[T].back();
      Held[T].pop_back();
      Holder[L].reset();
      Trace.Syncs.push_back(SyncEvent::release(T, L, Length[T]));
    }
  std::sort(Trace.Accesses.begin(), Trace.Accesses.end(),
            [](const AccessEvent &A, const AccessEvent &B) {
              return std::make_tuple(A.Thread, A.Time, A.Addr,
                                     static_cast<uint8_t>(A.EventKind)) <
                     std::make_tuple(B.Thread, B.Time, B.Addr,
                                     static_cast<uint8_t>(B.EventKind));
            });
  return Trace;
}

TEST(RaceDetectTest, DifferentialFuzz) {
  uint64_t RacyTraces = 0;
  for (uint64_t Seed = 1; Seed <= 300; ++Seed) {
    ConcurrentTrace Trace = fuzzTrace(Seed);
    ASSERT_TRUE(Trace.isWellFormed()) << "seed " << Seed;
    ConcurrencyInfo Conc = concInfo(Trace);
    RaceReport Fast = detectRacesCompacted(Conc);
    RaceReport Slow = detectRacesOracle(Conc);
    ASSERT_TRUE(sameVerdict(Fast, Slow))
        << "seed " << Seed << "\ncompacted:\n"
        << renderRaceLines(Fast) << "oracle:\n"
        << renderRaceLines(Slow);
    ASSERT_EQ(renderRaceLines(Fast), renderRaceLines(Slow))
        << "seed " << Seed;
    ASSERT_EQ(Fast.Stats.PairsCovered, Slow.Stats.PairsCovered)
        << "seed " << Seed;
    ASSERT_EQ(Fast.Stats.RacyPairs, Slow.Stats.RacyPairs) << "seed " << Seed;
    RacyTraces += Fast.racy();
  }
  // The fuzz distribution must actually exercise both verdicts.
  EXPECT_GT(RacyTraces, 50u);
  EXPECT_LT(RacyTraces, 300u);
}

} // namespace
