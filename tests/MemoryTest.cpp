//===- tests/MemoryTest.cpp - memory observability unit tests --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory observability layer end to end: the allocation tracker
/// primitives (accounts, registry, scopes, gating), the obs::deepSize
/// audit walks, the tracker-vs-deepSize reconcile that twpp-mem-reconcile
/// enforces, the mem.* gauge publication, the RSS poller, and the
/// guarantee that none of it perturbs archive bytes.
///
//===----------------------------------------------------------------------===//

#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/Arena.h"
#include "support/FileIO.h"
#include "support/Mmap.h"
#include "verify/Checks.h"
#include "verify/MemoryChecks.h"
#include "wpp/Archive.h"
#include "wpp/DeepSize.h"
#include "wpp/TimestampSet.h"
#include "wpp/Twpp.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace twpp;

namespace {

/// Every test runs with tracking on and a zeroed registry; the
/// process-global flag is restored afterwards so binaries sharing the
/// process see their configured state.
class MemoryTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasEnabled = obs::memTrackingEnabled();
    obs::setMemTrackingEnabled(true);
    obs::memTracker().reset();
  }
  void TearDown() override {
    obs::memTracker().reset();
    obs::setMemTrackingEnabled(WasEnabled);
  }

  bool WasEnabled = false;
};

int64_t liveOf(const char *Tag) {
  return obs::memTracker().account(Tag).liveBytes();
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// A fully compacted WPP from a random trace, the input the archive-level
/// audits run over.
TwppWpp compactedWpp(uint64_t Seed, uint32_t Functions, uint32_t Events) {
  return convertToTwpp(applyDbbCompaction(
      partitionWpp(fixtures::randomTrace(Seed, Functions, Events))));
}

//===----------------------------------------------------------------------===//
// Tracker primitives
//===----------------------------------------------------------------------===//

TEST_F(MemoryTest, AccountTracksLivePeakAndCumulative) {
  obs::MemAccount Account;
  Account.recordAlloc(100);
  Account.recordAlloc(50);
  EXPECT_EQ(Account.liveBytes(), 150);
  EXPECT_EQ(Account.peakBytes(), 150);
  Account.recordFree(120);
  EXPECT_EQ(Account.liveBytes(), 30);
  EXPECT_EQ(Account.peakBytes(), 150); // peak survives frees
  Account.recordAlloc(40);
  EXPECT_EQ(Account.liveBytes(), 70);
  EXPECT_EQ(Account.peakBytes(), 150); // 70 never exceeded the old peak
  EXPECT_EQ(Account.cumulativeBytes(), 190u);
  EXPECT_EQ(Account.allocCount(), 3u);
  EXPECT_EQ(Account.freeCount(), 1u);
  Account.reset();
  EXPECT_EQ(Account.liveBytes(), 0);
  EXPECT_EQ(Account.peakBytes(), 0);
  EXPECT_EQ(Account.cumulativeBytes(), 0u);
}

TEST_F(MemoryTest, AccountGoesNegativeOnUnbalancedFrees) {
  // Deliberately unbalanced — this is the signal twpp-mem-negative-live
  // exists to catch, so it must not saturate at zero.
  obs::MemAccount Account;
  Account.recordAlloc(10);
  Account.recordFree(25);
  EXPECT_EQ(Account.liveBytes(), -15);
}

TEST_F(MemoryTest, TrackerReturnsStableAccountsAndSortedSnapshots) {
  obs::MemAccount &A = obs::memTracker().account("zz.tag");
  obs::MemAccount &B = obs::memTracker().account("aa.tag");
  EXPECT_EQ(&A, &obs::memTracker().account("zz.tag"));
  A.recordAlloc(7);
  B.recordAlloc(3);
  std::vector<obs::MemTracker::Snapshot> Snaps =
      obs::memTracker().snapshot();
  ASSERT_GE(Snaps.size(), 2u);
  for (size_t I = 1; I < Snaps.size(); ++I)
    EXPECT_LT(Snaps[I - 1].Tag, Snaps[I].Tag);
  EXPECT_GE(obs::memTracker().totalLiveBytes(), 10);
  EXPECT_GE(obs::memTracker().totalAllocs(), 2u);
  obs::memTracker().reset();
  EXPECT_EQ(A.liveBytes(), 0); // reset zeroes in place, refs stay valid
}

TEST_F(MemoryTest, DisabledTrackingDropsRecords) {
  obs::setMemTrackingEnabled(false);
  obs::memAlloc("gated.tag", 1000);
  obs::memAllocCurrent(1000);
  obs::setMemTrackingEnabled(true);
  EXPECT_EQ(liveOf("gated.tag"), 0);
}

//===----------------------------------------------------------------------===//
// Scoped attribution
//===----------------------------------------------------------------------===//

TEST_F(MemoryTest, ScopedRecordsAttributeToInnermostScope) {
  {
    obs::MemScope Outer("outer.tag");
    obs::memAllocCurrent(10);
    {
      obs::MemScope Inner("inner.tag");
      obs::memAllocCurrent(100);
    }
    obs::memAllocCurrent(1);
  }
  EXPECT_EQ(liveOf("outer.tag"), 11);
  EXPECT_EQ(liveOf("inner.tag"), 100);
}

TEST_F(MemoryTest, ScopedRecordsDropWithoutAnOpenScope) {
  obs::memAllocCurrent(4096);
  EXPECT_EQ(obs::memTracker().totalLiveBytes(), 0);
}

TEST_F(MemoryTest, IfUnscopedYieldsToAnOuterScope) {
  // The decode entry points nest IfUnscoped so a measuring caller (the
  // audits) captures their records instead of the archive.decode tag.
  {
    obs::MemScope Outer("outer.tag");
    obs::MemScope Decode("decode.tag", obs::MemScope::Nest::IfUnscoped);
    obs::memAllocCurrent(64);
  }
  EXPECT_EQ(liveOf("outer.tag"), 64);
  EXPECT_EQ(liveOf("decode.tag"), 0);
  {
    obs::MemScope Decode("decode.tag", obs::MemScope::Nest::IfUnscoped);
    obs::memAllocCurrent(32);
  }
  EXPECT_EQ(liveOf("decode.tag"), 32); // opens normally when unscoped
}

TEST_F(MemoryTest, LocalAccountScopeKeepsGlobalTrackerClean) {
  obs::MemAccount Local;
  {
    obs::MemScope Scope(Local);
    obs::memAllocCurrent(500);
    obs::memFreeCurrent(100);
  }
  EXPECT_EQ(Local.liveBytes(), 400);
  EXPECT_EQ(obs::memTracker().totalLiveBytes(), 0);
}

//===----------------------------------------------------------------------===//
// Deep-size audit walks
//===----------------------------------------------------------------------===//

TEST_F(MemoryTest, DeepSizeCountsTimestampSetRuns) {
  TimestampSet Set = TimestampSet::fromSorted({1, 2, 3, 10, 11, 20});
  // {1,2,3}, {10,11}, {20} -> three series runs.
  EXPECT_EQ(obs::deepSize(Set), 3 * sizeof(SeriesRun));
  EXPECT_EQ(obs::deepSize(TimestampSet()), 0u);
}

TEST_F(MemoryTest, DeepSizeCountsTwppTraceElements) {
  TwppTrace Trace;
  Trace.Blocks.emplace_back(1, TimestampSet::fromSorted({1, 2}));
  Trace.Blocks.emplace_back(2, TimestampSet::fromSorted({5}));
  uint64_t PairBytes =
      2 * sizeof(std::pair<BlockId, TimestampSet>);
  EXPECT_EQ(obs::deepSize(Trace), PairBytes + 2 * sizeof(SeriesRun));
}

TEST_F(MemoryTest, DeepSizeCountsDictionaryChains) {
  DbbDictionary Dict;
  Dict.Chains.push_back({1, 2, 3});
  Dict.Chains.push_back({4});
  EXPECT_EQ(obs::deepSize(Dict),
            2 * sizeof(std::vector<BlockId>) + 4 * sizeof(BlockId));
}

TEST_F(MemoryTest, PathTraceDeepSizeMatchesFormula) {
  // deepSize counts element payload only (the top-level header is the
  // caller's); pathTraceDeepSize models a trace nested inside another
  // structure, so it adds the container header on top.
  PathTrace Trace = {1, 2, 3};
  EXPECT_EQ(obs::deepSize(Trace), 3 * sizeof(BlockId));
  EXPECT_EQ(obs::pathTraceDeepSize(3),
            sizeof(PathTrace) + obs::deepSize(Trace));
}

//===----------------------------------------------------------------------===//
// Reconcile: tracker vs deepSize on real archives
//===----------------------------------------------------------------------===//

TEST_F(MemoryTest, AuditReconcilesTrackerAgainstDeepSize) {
  TwppWpp Wpp = compactedWpp(99, 5, 400);
  std::string Path = tempPath("mem_audit.twpp");
  ASSERT_TRUE(writeArchiveFile(Path, Wpp));
  // Building the fixture leaves legitimate dbb.tables/twpp.tables live
  // records behind; clear them so the leak assertion below sees only
  // what the audit itself does.
  obs::memTracker().reset();

  verify::MemoryAudit Audit;
  TwppWpp Decoded;
  ASSERT_TRUE(verify::auditArchiveMemory(Path, Audit, &Decoded));
  EXPECT_TRUE(Audit.Decoded);
  EXPECT_GT(Audit.TrackedBytes, 0u);
  EXPECT_EQ(Audit.DeepBytes, obs::deepSize(Decoded));
  uint64_t Delta = Audit.TrackedBytes > Audit.DeepBytes
                       ? Audit.TrackedBytes - Audit.DeepBytes
                       : Audit.DeepBytes - Audit.TrackedBytes;
  EXPECT_LE(Delta, verify::memReconcileToleranceBytes(Audit.DeepBytes))
      << "tracked " << Audit.TrackedBytes << " vs deep "
      << Audit.DeepBytes;
  // The in-memory footprint dominates the paper's serialized estimate.
  EXPECT_GE(Audit.DeepBytes, Audit.ModelBytes);
  // The audit captured into a private account — the only global residue
  // is the pooled decode-scratch arena (arena.decode), settled by an
  // explicit release. Nothing else leaked.
  releaseArchiveDecodeScratch();
  EXPECT_EQ(obs::memTracker().totalLiveBytes(), 0);
  std::remove(Path.c_str());
}

TEST_F(MemoryTest, AuditReconcilesInBothIoModes) {
  // The audit contract is mode-independent: buffered and mmap decodes of
  // the same archive must both reconcile, with identical deep sizes, and
  // neither the mapping nor the decode arena may leak into the scoped
  // capture the audit reports.
  TwppWpp Wpp = compactedWpp(42, 5, 400);
  std::string Path = tempPath("mem_audit_modes.twpp");
  ASSERT_TRUE(writeArchiveFile(Path, Wpp));
  obs::memTracker().reset();

  verify::MemoryAudit PerMode[2];
  for (IoMode Mode : {IoMode::Buffered, IoMode::Mmap}) {
    verify::MemoryAudit &Audit = PerMode[Mode == IoMode::Mmap ? 1 : 0];
    TwppWpp Decoded;
    ASSERT_TRUE(verify::auditArchiveMemory(Path, Audit, &Decoded, Mode));
    EXPECT_TRUE(Audit.Decoded);
    EXPECT_EQ(Audit.DeepBytes, obs::deepSize(Decoded));
    uint64_t Delta = Audit.TrackedBytes > Audit.DeepBytes
                         ? Audit.TrackedBytes - Audit.DeepBytes
                         : Audit.DeepBytes - Audit.TrackedBytes;
    EXPECT_LE(Delta, verify::memReconcileToleranceBytes(Audit.DeepBytes))
        << ioModeName(Mode) << ": tracked " << Audit.TrackedBytes
        << " vs deep " << Audit.DeepBytes;
  }
  EXPECT_EQ(PerMode[0].DeepBytes, PerMode[1].DeepBytes);
  EXPECT_EQ(PerMode[0].TrackedBytes, PerMode[1].TrackedBytes);
  releaseArchiveDecodeScratch();
  EXPECT_EQ(obs::memTracker().totalLiveBytes(), 0);
  std::remove(Path.c_str());
}

TEST_F(MemoryTest, ArenaLedgerRecordsAndSettles) {
  Arena A(4096, obs::memtags::ArenaDecode);
  EXPECT_EQ(liveOf(obs::memtags::ArenaDecode), 0);
  A.allocate(100);
  EXPECT_EQ(liveOf(obs::memtags::ArenaDecode), 4096);
  A.allocate(8000); // spill block, also ledgered
  EXPECT_EQ(liveOf(obs::memtags::ArenaDecode), 4096 + 8000);
  // reset() keeps the pool (and thus the ledger) intact.
  A.reset();
  EXPECT_EQ(liveOf(obs::memtags::ArenaDecode), 4096 + 8000);
  A.release();
  EXPECT_EQ(liveOf(obs::memtags::ArenaDecode), 0);
}

TEST_F(MemoryTest, ArenaLedgerSurvivesTrackingToggle) {
  // Blocks acquired while tracking is off are never ledgered, so the
  // release after re-enabling must not drive the tag negative.
  Arena A(1024, obs::memtags::ArenaDecode);
  A.allocate(1000); // ledgered
  obs::setMemTrackingEnabled(false);
  A.allocate(1000); // second block, NOT ledgered
  obs::setMemTrackingEnabled(true);
  EXPECT_EQ(liveOf(obs::memtags::ArenaDecode), 1024);
  A.release();
  EXPECT_EQ(liveOf(obs::memtags::ArenaDecode), 0);
}

TEST_F(MemoryTest, MmapLedgerRecordsAndSettles) {
  if (!MappedFile::available())
    GTEST_SKIP() << "mmap not available on this platform";
  std::string Path = tempPath("mem_mmap_ledger.bin");
  std::vector<uint8_t> Payload(513, 0xAB);
  ASSERT_TRUE(writeFileBytes(Path, Payload));
  {
    MappedFile Map;
    ASSERT_TRUE(Map.map(Path));
    EXPECT_EQ(liveOf(obs::memtags::ArchiveMmap),
              static_cast<int64_t>(Payload.size()));
  }
  // RAII unmap settles the ledger.
  EXPECT_EQ(liveOf(obs::memtags::ArchiveMmap), 0);
  std::remove(Path.c_str());
}

TEST_F(MemoryTest, MemoryChecksRunCleanOnAGoodArchive) {
  TwppWpp Wpp = compactedWpp(7, 4, 250);
  std::string Path = tempPath("mem_clean.twpp");
  ASSERT_TRUE(writeArchiveFile(Path, Wpp));
  verify::DiagnosticEngine Engine;
  verify::runMemoryChecks(Path, Engine);
  EXPECT_TRUE(Engine.clean()) << verify::renderDiagnosticsText(Engine);
  std::remove(Path.c_str());
}

TEST_F(MemoryTest, NegativeLiveBytesFireTheCheck) {
  obs::memAlloc("broken.tag", 10);
  obs::memFree("broken.tag", 90);
  verify::DiagnosticEngine Engine;
  verify::runMemoryChecks(tempPath("does_not_exist.twpp"), Engine);
  EXPECT_FALSE(Engine.clean());
  bool Found = false;
  for (const verify::Diagnostic &D : Engine.diagnostics())
    if (D.CheckId == verify::checks::MemNegativeLive)
      Found = true;
  EXPECT_TRUE(Found) << verify::renderDiagnosticsText(Engine);
}

//===----------------------------------------------------------------------===//
// Neutrality: tracking must never change what the pipeline produces
//===----------------------------------------------------------------------===//

TEST_F(MemoryTest, ArchiveBytesIdenticalWithTrackingOnAndOff) {
  RawTrace Trace = fixtures::randomTrace(1234, 6, 600);
  obs::setMemTrackingEnabled(false);
  std::vector<uint8_t> Off =
      encodeArchive(convertToTwpp(applyDbbCompaction(partitionWpp(Trace))));
  obs::setMemTrackingEnabled(true);
  std::vector<uint8_t> On =
      encodeArchive(convertToTwpp(applyDbbCompaction(partitionWpp(Trace))));
  EXPECT_EQ(Off, On);
}

//===----------------------------------------------------------------------===//
// Gauges and the RSS poller
//===----------------------------------------------------------------------===//

TEST_F(MemoryTest, PublishSetsEveryMemGauge) {
  obs::setMetricsEnabled(true);
  obs::metrics().reset();
  obs::memAlloc("gauge.tag", 2048);
  obs::memFree("gauge.tag", 1024);

  obs::publishMemMetrics(obs::metrics());

  EXPECT_EQ(obs::metrics().gauge(obs::names::MemTrackedLiveBytes).value(),
            1024);
  EXPECT_EQ(obs::metrics().gauge(obs::names::MemTrackedPeakBytes).value(),
            2048);
  EXPECT_EQ(obs::metrics().gauge(obs::names::MemAllocs).value(), 1);
  // RSS figures come from /proc on Linux; both gauges must be populated
  // and peak can never trail the current sample it folds in.
  int64_t Rss = obs::metrics().gauge(obs::names::MemRssBytes).value();
  int64_t Peak = obs::metrics().gauge(obs::names::MemPeakBytes).value();
  EXPECT_GT(Rss, 0);
  EXPECT_GE(Peak, Rss);
  obs::setMetricsEnabled(false);
}

TEST_F(MemoryTest, RssReadersReportThisProcess) {
  uint64_t Rss = obs::currentRssBytes();
  EXPECT_GT(Rss, 0u);
  EXPECT_GE(obs::peakRssBytes(), Rss);
}

TEST_F(MemoryTest, WindowPeakFoldsInCurrentRssAndResets) {
  uint64_t First = obs::takeMemWindowPeakBytes();
  EXPECT_GT(First, 0u); // never 0 even without the poller running
  uint64_t Second = obs::takeMemWindowPeakBytes();
  EXPECT_GT(Second, 0u);
}

TEST_F(MemoryTest, PollerStartStopIsIdempotent) {
  obs::startMemPoller(1);
  obs::startMemPoller(1); // second start is a no-op
  obs::stopMemPoller();
  obs::stopMemPoller(); // second stop is a no-op
  EXPECT_GT(obs::takeMemWindowPeakBytes(), 0u);
}

} // namespace
