//===- tests/SinkAssignmentsTest.cpp - liveness, PDE, currency -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "ir/Liveness.h"
#include "ir/SinkAssignments.h"

#include "dataflow/AnnotatedCfg.h"
#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "slicing/Currency.h"
#include "support/Random.h"
#include "trace/UncompactedFile.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

Module compile(const std::string &Source) {
  Module M;
  std::string Error;
  bool Ok = compileProgram(Source, M, Error);
  EXPECT_TRUE(Ok) << Error;
  return M;
}

/// The Figure 12 shape in source form: the second assignment to x is
/// only needed on the then-arm.
const char *Figure12Source = "fn main() {"
                             "  read p;"
                             "  x = 1;"
                             "  x = 2;"
                             "  if (p > 0) { y = x; } else { y = 5; }"
                             "  print y;"
                             "}";

TEST(LivenessTest, StraightLine) {
  Module M = compile("fn main() { read a; b = a + 1; print b; }");
  const Function &Main = M.Functions[M.MainId];
  LivenessInfo Live = computeLiveness(Main);
  VarId A = M.internVar("a");
  VarId B = M.internVar("b");
  // Nothing is live into the entry; a and b die inside the single block.
  EXPECT_TRUE(Live.LiveIn[0].empty());
  EXPECT_FALSE(Live.isLiveOut(1, A));
  EXPECT_FALSE(Live.isLiveOut(1, B));
}

TEST(LivenessTest, BranchArmsDifferInLiveness) {
  Module M = compile(Figure12Source);
  const Function &Main = M.Functions[M.MainId];
  LivenessInfo Live = computeLiveness(Main);
  VarId X = M.internVar("x");
  VarId Y = M.internVar("y");
  // Blocks: 1 entry(+branch), 2 then, 3 else, 4 join.
  EXPECT_TRUE(Live.isLiveIn(2, X));   // then-arm reads x
  EXPECT_FALSE(Live.isLiveIn(3, X));  // else-arm does not
  EXPECT_TRUE(Live.isLiveIn(4, Y));   // join prints y
  EXPECT_FALSE(Live.isLiveOut(4, Y));
}

TEST(LivenessTest, LoopCarriedLiveness) {
  Module M = compile("fn main() {"
                     "  read n; s = 0; i = 0;"
                     "  while (i < n) { s = s + i; i = i + 1; }"
                     "  print s;"
                     "}");
  const Function &Main = M.Functions[M.MainId];
  LivenessInfo Live = computeLiveness(Main);
  VarId S = M.internVar("s");
  VarId I = M.internVar("i");
  // Blocks: 1 entry, 2 header, 3 body, 4 exit.
  EXPECT_TRUE(Live.isLiveIn(2, S)); // s flows around the loop
  EXPECT_TRUE(Live.isLiveIn(2, I));
  EXPECT_TRUE(Live.isLiveOut(3, S)); // body feeds the next iteration
  EXPECT_FALSE(Live.isLiveOut(4, S));
}

TEST(SinkTest, Figure12AssignmentSinks) {
  Module M = compile(Figure12Source);
  const Function &Main = M.Functions[M.MainId];
  SinkResult Sunk = sinkPartiallyDeadAssignments(Main);

  ASSERT_EQ(Sunk.Moves.size(), 1u);
  EXPECT_EQ(Sunk.Moves[0].Var, M.internVar("x"));
  EXPECT_EQ(Sunk.Moves[0].FromBlock, 1u);
  EXPECT_EQ(Sunk.Moves[0].ToBlock, 2u); // the then-arm
  // The then-arm now starts with the moved x = 2.
  const Stmt &First = Sunk.Optimized.block(2).Stmts.front();
  EXPECT_EQ(First.StmtKind, Stmt::Kind::Assign);
  EXPECT_EQ(First.Target, M.internVar("x"));
  // x = 1 stays (it reaches neither use, but sinking only moves the
  // trailing assignment).
  EXPECT_EQ(Sunk.Optimized.block(1).Stmts.size(),
            Main.block(1).Stmts.size() - 1);
}

TEST(SinkTest, FullyLiveAssignmentStays) {
  Module M = compile("fn main() {"
                     "  read p; x = 2;"
                     "  if (p > 0) { y = x; } else { y = x + 1; }"
                     "  print y;"
                     "}");
  SinkResult Sunk = sinkPartiallyDeadAssignments(M.Functions[M.MainId]);
  EXPECT_TRUE(Sunk.Moves.empty());
}

TEST(SinkTest, BranchOnVariableBlocksSinking) {
  Module M = compile("fn main() {"
                     "  read p; x = p + 1;"
                     "  if (x > 0) { y = x; } else { y = 5; }"
                     "  print y;"
                     "}");
  SinkResult Sunk = sinkPartiallyDeadAssignments(M.Functions[M.MainId]);
  EXPECT_TRUE(Sunk.Moves.empty()); // the branch itself reads x
}

TEST(SinkTest, SemanticsPreservedOnRandomInputs) {
  Module M = compile(Figure12Source);
  Module Optimized = M;
  Optimized.Functions[M.MainId] =
      sinkPartiallyDeadAssignments(M.Functions[M.MainId]).Optimized;

  Rng R(321);
  for (int I = 0; I < 40; ++I) {
    std::vector<int64_t> Inputs = {R.nextInRange(-5, 5)};
    ExecutionResult A, B;
    traceExecution(M, Inputs, A);
    traceExecution(Optimized, Inputs, B);
    ASSERT_TRUE(A.Completed && B.Completed);
    EXPECT_EQ(A.Output, B.Output) << "input " << Inputs[0];
  }
}

TEST(CurrencyEndToEndTest, Figure12FromSource) {
  Module M = compile(Figure12Source);
  const Function &Main = M.Functions[M.MainId];
  SinkResult Sunk = sinkPartiallyDeadAssignments(Main);
  VarId X = M.internVar("x");
  CurrencyProblem Problem = currencyProblemFor(Main, Sunk, X);
  ASSERT_EQ(Problem.OriginalDefs.size(), 2u);
  ASSERT_EQ(Problem.OptimizedDefs.size(), 2u);

  // Run the (original-CFG) program both ways; block paths are identical
  // between versions, which is what makes currency decidable.
  for (int64_t P : {+1, -1}) {
    ExecutionResult Result;
    RawTrace Trace = traceExecution(M, {P}, Result);
    ASSERT_TRUE(Result.Completed);
    std::vector<std::vector<BlockId>> BlockTraces;
    extractFunctionTraces(Trace, Main.Id, BlockTraces);
    AnnotatedDynamicCfg Cfg =
        buildAnnotatedCfgFromSequence(BlockTraces[0]);
    // Breakpoint: the join block (4), its only execution.
    Timestamp BreakTime = static_cast<Timestamp>(BlockTraces[0].size());
    ASSERT_EQ(BlockTraces[0].back(), 4u);
    Currency Verdict = checkCurrency(Cfg, BreakTime, Problem);
    if (P > 0)
      EXPECT_EQ(Verdict, Currency::Current) << "then-path";
    else
      EXPECT_EQ(Verdict, Currency::NonCurrent) << "else-path";
  }
}

TEST(SinkTest, OriginsTrackEveryStatement) {
  Module M = compile(Figure12Source);
  const Function &Main = M.Functions[M.MainId];
  SinkResult Sunk = sinkPartiallyDeadAssignments(Main);
  // Every optimized statement's origin must name a statement of the same
  // kind in the original function.
  for (BlockId Block = 1; Block <= Sunk.Optimized.blockCount(); ++Block) {
    const BasicBlock &B = Sunk.Optimized.block(Block);
    for (uint32_t I = 0; I < B.Stmts.size(); ++I) {
      auto [OrigBlock, OrigOrdinal] = Sunk.Origins[Block - 1][I];
      const Stmt &Orig = Main.block(OrigBlock).Stmts[OrigOrdinal];
      EXPECT_EQ(Orig.StmtKind, B.Stmts[I].StmtKind);
      EXPECT_EQ(Orig.Target, B.Stmts[I].Target);
    }
  }
}

} // namespace
