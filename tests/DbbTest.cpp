//===- tests/DbbTest.cpp - dynamic basic block compaction ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Dbb.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(DynamicCfgTest, BuildsAdjacency) {
  PathTrace Trace = {1, 2, 3, 2, 3, 4};
  DynamicCfg Cfg = buildDynamicCfg(Trace);
  ASSERT_EQ(Cfg.Blocks, (std::vector<BlockId>{1, 2, 3, 4}));
  EXPECT_EQ(Cfg.Successors[Cfg.indexOf(1)], (std::vector<BlockId>{2}));
  EXPECT_EQ(Cfg.Successors[Cfg.indexOf(2)], (std::vector<BlockId>{3}));
  EXPECT_EQ(Cfg.Successors[Cfg.indexOf(3)], (std::vector<BlockId>{2, 4}));
  EXPECT_TRUE(Cfg.IsEntry[Cfg.indexOf(1)]);
  EXPECT_TRUE(Cfg.IsExit[Cfg.indexOf(4)]);
  EXPECT_EQ(Cfg.edgeCount(), 4u);
}

TEST(DbbTest, PaperFigure4FirstPath) {
  // f's first unique path: chain 2.3.4.5.6 collapses; trace becomes
  // 1.2.2.2.10 (paper Figures 4-5).
  PathTrace Trace = {1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10};
  CompactedTrace Compacted = compactWithDbbs(Trace);
  EXPECT_EQ(Compacted.Blocks, (std::vector<BlockId>{1, 2, 2, 2, 10}));
  ASSERT_EQ(Compacted.Dictionary.Chains.size(), 1u);
  EXPECT_EQ(Compacted.Dictionary.Chains[0],
            (std::vector<BlockId>{2, 3, 4, 5, 6}));
  EXPECT_EQ(expandDbbs(Compacted), Trace);
}

TEST(DbbTest, PaperFigure4SecondPath) {
  PathTrace Trace = {1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10};
  CompactedTrace Compacted = compactWithDbbs(Trace);
  EXPECT_EQ(Compacted.Blocks, (std::vector<BlockId>{1, 2, 2, 2, 10}));
  ASSERT_EQ(Compacted.Dictionary.Chains.size(), 1u);
  EXPECT_EQ(Compacted.Dictionary.Chains[0],
            (std::vector<BlockId>{2, 7, 8, 9, 6}));
  EXPECT_EQ(expandDbbs(Compacted), Trace);
}

TEST(DbbTest, PaperFigure4MainPath) {
  // main's trace 1.(2.3.4)^5.6 -> 1.2.2.2.2.2.6 with chain {2,3,4}.
  PathTrace Trace = {1, 2, 3, 4, 2, 3, 4, 2, 3, 4, 2, 3, 4, 2, 3, 4, 6};
  CompactedTrace Compacted = compactWithDbbs(Trace);
  EXPECT_EQ(Compacted.Blocks, (std::vector<BlockId>{1, 2, 2, 2, 2, 2, 6}));
  ASSERT_EQ(Compacted.Dictionary.Chains.size(), 1u);
  EXPECT_EQ(Compacted.Dictionary.Chains[0], (std::vector<BlockId>{2, 3, 4}));
  EXPECT_EQ(expandDbbs(Compacted), Trace);
}

TEST(DbbTest, TrivialTraces) {
  EXPECT_EQ(compactWithDbbs({}).Blocks, PathTrace{});
  EXPECT_EQ(compactWithDbbs({7}).Blocks, (PathTrace{7}));
  EXPECT_TRUE(compactWithDbbs({7}).Dictionary.Chains.empty());
}

TEST(DbbTest, StraightLineCollapsesToOneBlock) {
  PathTrace Trace = {1, 2, 3, 4, 5};
  CompactedTrace Compacted = compactWithDbbs(Trace);
  EXPECT_EQ(Compacted.Blocks, (std::vector<BlockId>{1}));
  ASSERT_EQ(Compacted.Dictionary.Chains.size(), 1u);
  EXPECT_EQ(Compacted.Dictionary.Chains[0],
            (std::vector<BlockId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(expandDbbs(Compacted), Trace);
}

TEST(DbbTest, TrailingHeadOccurrenceBlocksChain) {
  // 1.2.1: block 1 both precedes 2 and ends the trace, so no chain may
  // treat 1 as always-followed-by-2 (the virtual exit edge preserves
  // losslessness).
  PathTrace Trace = {1, 2, 1};
  CompactedTrace Compacted = compactWithDbbs(Trace);
  EXPECT_EQ(expandDbbs(Compacted), Trace);
  EXPECT_TRUE(Compacted.Dictionary.Chains.empty());
}

TEST(DbbTest, RepeatedBlockNoChain) {
  PathTrace Trace = {3, 3, 3, 3};
  CompactedTrace Compacted = compactWithDbbs(Trace);
  EXPECT_EQ(expandDbbs(Compacted), Trace);
}

TEST(DbbTest, AlternatingBlocksDoNotLoopForever) {
  PathTrace Trace = {1, 2, 1, 2, 1, 2};
  CompactedTrace Compacted = compactWithDbbs(Trace);
  EXPECT_EQ(expandDbbs(Compacted), Trace);
}

/// Property sweep: DBB compaction is lossless on random walks.
class DbbRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbbRoundTrip, RandomWalks) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 60; ++Iter) {
    // Random walk over a small block alphabet with loop-ish repetition.
    PathTrace Trace;
    size_t Length = 1 + R.nextBelow(300);
    BlockId Current = 1 + static_cast<BlockId>(R.nextBelow(8));
    for (size_t I = 0; I < Length; ++I) {
      Trace.push_back(Current);
      if (R.nextBool(0.6)) {
        Current = Current % 8 + 1; // deterministic chain structure
      } else {
        Current = 1 + static_cast<BlockId>(R.nextBelow(8));
      }
    }
    CompactedTrace Compacted = compactWithDbbs(Trace);
    EXPECT_EQ(expandDbbs(Compacted), Trace);
    EXPECT_LE(Compacted.Blocks.size(), Trace.size());
    // Dictionary chains must be non-trivial and keyed uniquely.
    for (size_t C = 0; C < Compacted.Dictionary.Chains.size(); ++C) {
      EXPECT_GE(Compacted.Dictionary.Chains[C].size(), 2u);
      if (C > 0) {
        EXPECT_LT(Compacted.Dictionary.Chains[C - 1].front(),
                  Compacted.Dictionary.Chains[C].front());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbbRoundTrip,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

} // namespace
