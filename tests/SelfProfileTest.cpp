//===- tests/SelfProfileTest.cpp - TWPP-on-TWPP self-profiling tests -------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Covers the span-path registry (obs/SpanRegistry.h), the B/E -> Enter/
// Exit lowering (obs/SelfProfile.h adaptSpanRecords) including flow-id
// grafting of pool-worker streams and ring-wraparound truncation, the
// sidecar round trip, and the end-to-end SelfProfiler run whose archive
// must satisfy the full verifier.
//
//===----------------------------------------------------------------------===//

#include "obs/PhaseSpan.h"
#include "obs/SelfProfile.h"
#include "obs/SpanRegistry.h"
#include "support/ThreadPool.h"
#include "verify/Verify.h"
#include "wpp/Archive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace twpp;

namespace {

//===----------------------------------------------------------------------===//
// SpanRegistry
//===----------------------------------------------------------------------===//

TEST(SpanRegistry, InternIsDenseAndStable) {
  obs::SpanRegistry Registry(64);
  EXPECT_EQ(Registry.size(), 1u); // "(overflow)" pre-interned as id 0
  FunctionId A = Registry.intern("compact");
  FunctionId B = Registry.intern("compact/dbb");
  EXPECT_NE(A, obs::SpanRegistry::OverflowId);
  EXPECT_NE(B, A);
  EXPECT_EQ(Registry.intern("compact"), A); // dedup
  EXPECT_EQ(Registry.intern("compact/dbb"), B);
  EXPECT_EQ(Registry.size(), 3u);
  EXPECT_EQ(Registry.overflowCount(), 0u);

  std::vector<std::string> Paths = Registry.paths();
  ASSERT_EQ(Paths.size(), 3u);
  EXPECT_EQ(Paths[0], "(overflow)");
  EXPECT_EQ(Paths[A], "compact");
  EXPECT_EQ(Paths[B], "compact/dbb");
}

TEST(SpanRegistry, OverflowCollapsesOntoReservedId) {
  obs::SpanRegistry Registry(4); // rounded to 4: 3 usable + overflow
  std::set<FunctionId> Ids;
  uint64_t Overflowed = 0;
  for (int I = 0; I < 10; ++I) {
    FunctionId Id = Registry.intern("path" + std::to_string(I));
    if (Id == obs::SpanRegistry::OverflowId)
      ++Overflowed;
    Ids.insert(Id);
  }
  EXPECT_GT(Overflowed, 0u);
  EXPECT_EQ(Registry.overflowCount(), Overflowed);
  EXPECT_LE(Registry.size(), Registry.capacity());
  // Interning an already-present path still works after the table fills.
  std::vector<std::string> Paths = Registry.paths();
  for (FunctionId Id : Ids) {
    if (Id != obs::SpanRegistry::OverflowId) {
      EXPECT_EQ(Registry.intern(Paths[Id]), Id);
    }
  }
}

TEST(SpanRegistry, OversizeKeyOverflows) {
  obs::SpanRegistry Registry(64);
  std::string Long(obs::SpanRegistry::KeyCapacity + 10, 'x');
  EXPECT_EQ(Registry.intern(Long), obs::SpanRegistry::OverflowId);
  EXPECT_EQ(Registry.overflowCount(), 1u);
}

TEST(SpanRegistry, ConcurrentInternAgreesAcrossThreads) {
  obs::SpanRegistry Registry(256);
  constexpr int ThreadCount = 8;
  constexpr int PathCount = 100;
  std::vector<std::vector<FunctionId>> Seen(ThreadCount,
                                            std::vector<FunctionId>(PathCount));
  std::atomic<int> Go{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([T, &Registry, &Seen, &Go] {
      Go.fetch_add(1);
      while (Go.load() < ThreadCount) {
      } // start together to maximize collisions
      for (int P = 0; P < PathCount; ++P)
        Seen[T][P] = Registry.intern("stage/" + std::to_string(P));
    });
  for (std::thread &T : Threads)
    T.join();

  // Every thread got the same id for the same path, all ids distinct.
  std::set<FunctionId> Distinct;
  for (int P = 0; P < PathCount; ++P) {
    for (int T = 1; T < ThreadCount; ++T)
      EXPECT_EQ(Seen[T][P], Seen[0][P]) << "path " << P;
    EXPECT_NE(Seen[0][P], obs::SpanRegistry::OverflowId);
    Distinct.insert(Seen[0][P]);
  }
  EXPECT_EQ(Distinct.size(), static_cast<size_t>(PathCount));
  EXPECT_EQ(Registry.size(), 1u + PathCount);
  EXPECT_EQ(Registry.overflowCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Gap buckets
//===----------------------------------------------------------------------===//

TEST(GapBuckets, MonotonicWithBoundedError) {
  uint32_t Last = 0;
  for (uint64_t Ns = 1; Ns < (uint64_t(1) << 40); Ns = Ns * 7 / 4 + 1) {
    uint32_t Bucket = obs::selfprof::gapBucketOf(Ns);
    EXPECT_GE(Bucket, Last) << Ns; // monotone
    Last = std::max(Last, Bucket);
    uint64_t Rep = obs::selfprof::gapBucketRepresentativeNs(Bucket);
    // 2 mantissa bits: the representative midpoint is within ~19% of any
    // value in the bucket.
    double Err = std::abs(static_cast<double>(Rep) - static_cast<double>(Ns)) /
                 static_cast<double>(Ns);
    EXPECT_LE(Err, 0.20) << "ns " << Ns << " rep " << Rep;
  }
  // Tiny gaps are exact.
  for (uint64_t Ns = 1; Ns < 4; ++Ns)
    EXPECT_EQ(obs::selfprof::gapBucketRepresentativeNs(
                  obs::selfprof::gapBucketOf(Ns)),
              Ns);
}

//===----------------------------------------------------------------------===//
// adaptSpanRecords on scripted record streams
//===----------------------------------------------------------------------===//

obs::TraceRecord record(obs::TraceRecord::Kind K, const char *Name,
                        uint64_t TsNs, uint64_t FlowId = 0) {
  obs::TraceRecord R;
  R.K = K;
  R.TsNs = TsNs;
  R.FlowId = FlowId;
  std::snprintf(R.Name, sizeof(R.Name), "%s", Name);
  R.ArgName[0] = '\0';
  return R;
}

using Kind = obs::TraceRecord::Kind;

/// Index of \p Path in the stream's function table, or -1.
int functionOf(const obs::SpanEventStream &Stream, const std::string &Path) {
  for (size_t I = 0; I < Stream.FunctionPaths.size(); ++I)
    if (Stream.FunctionPaths[I] == Path)
      return static_cast<int>(I);
  return -1;
}

TEST(AdaptSpanRecords, SimpleNestLowersToWellFormedTrace) {
  std::vector<std::vector<obs::TraceRecord>> PerThread(1);
  PerThread[0] = {
      record(Kind::Begin, "compact", 1'000'000),
      record(Kind::Begin, "partition", 1'100'000),
      record(Kind::End, "", 1'200'000),
      record(Kind::Begin, "dbb", 1'300'000),
      record(Kind::End, "", 1'500'000),
      record(Kind::End, "", 1'600'000),
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);

  EXPECT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_EQ(Stream.Stats.Spans, 3u);
  EXPECT_EQ(Stream.Stats.TruncatedSpans, 0u);
  EXPECT_EQ(Stream.Stats.UnclosedSpans, 0u);
  EXPECT_EQ(Stream.Trace.callCount(), 3u);

  // Nested paths became distinct functions.
  EXPECT_GE(functionOf(Stream, "compact"), 0);
  EXPECT_GE(functionOf(Stream, "compact/partition"), 0);
  EXPECT_GE(functionOf(Stream, "compact/dbb"), 0);
  EXPECT_EQ(functionOf(Stream, "partition"), -1) << "leaf not pathified";

  // Every Enter is immediately followed by the call-marker block.
  const auto &Events = Stream.Trace.Events;
  for (size_t I = 0; I < Events.size(); ++I)
    if (Events[I].EventKind == TraceEvent::Kind::Enter) {
      ASSERT_LT(I + 1, Events.size());
      EXPECT_EQ(Events[I + 1].EventKind, TraceEvent::Kind::Block);
      EXPECT_EQ(Events[I + 1].Id, obs::selfprof::CallMarkerBlock);
    }

  // compact's exclusive time: gaps 100us (before partition), 100us
  // (between children) and 100us (after dbb) — three gap blocks, each
  // with a representative near 100us.
  std::map<BlockId, uint64_t> GapNs(Stream.GapBlocks.begin(),
                                    Stream.GapBlocks.end());
  uint64_t CompactGaps = 0;
  int Depth = 0;
  for (const TraceEvent &E : Events) {
    if (E.EventKind == TraceEvent::Kind::Enter)
      ++Depth;
    else if (E.EventKind == TraceEvent::Kind::Exit)
      --Depth;
    else if (Depth == 1 && E.Id != obs::selfprof::CallMarkerBlock) {
      ASSERT_TRUE(GapNs.count(E.Id));
      CompactGaps += GapNs[E.Id];
    }
  }
  EXPECT_NEAR(static_cast<double>(CompactGaps), 300'000.0, 60'000.0);
}

TEST(AdaptSpanRecords, ShortGapsAreNotEncoded) {
  std::vector<std::vector<obs::TraceRecord>> PerThread(1);
  PerThread[0] = {
      record(Kind::Begin, "a", 1000),
      record(Kind::End, "", 1400), // 400ns span, below MinGapNs=1024
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);
  EXPECT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_TRUE(Stream.GapBlocks.empty());
  // The call marker still makes the span's path trace non-empty.
  EXPECT_EQ(Stream.Trace.blockEventCount(), 1u);
}

TEST(AdaptSpanRecords, TruncatedAndUnclosedSpansDegradeGracefully) {
  std::vector<std::vector<obs::TraceRecord>> PerThread(1);
  PerThread[0] = {
      record(Kind::End, "", 500), // orphan E: its B was overwritten
      record(Kind::Begin, "outer", 1000),
      record(Kind::Begin, "inner", 2000),
      record(Kind::End, "", 3000),
      // outer never closes: synthesized shut at the last timestamp.
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);
  EXPECT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_EQ(Stream.Stats.TruncatedSpans, 1u);
  EXPECT_EQ(Stream.Stats.UnclosedSpans, 1u);
  EXPECT_EQ(Stream.Stats.Spans, 2u);
  EXPECT_GE(functionOf(Stream, "outer"), 0);
  EXPECT_GE(functionOf(Stream, "outer/inner"), 0);
}

TEST(AdaptSpanRecords, FlowGraftsWorkerRootsUnderOrigin) {
  // Thread 0 enqueues two tasks inside compact/dbb; thread 1 and 2 each
  // run one task whose wrapper span opens with the FlowFinish.
  std::vector<std::vector<obs::TraceRecord>> PerThread(3);
  PerThread[0] = {
      record(Kind::Begin, "compact", 1000),
      record(Kind::Begin, "dbb", 2000),
      record(Kind::FlowStart, "pool.task", 2100, 7),
      record(Kind::FlowStart, "pool.task", 2200, 8),
      record(Kind::End, "", 9000),
      record(Kind::End, "", 9500),
  };
  PerThread[1] = {
      record(Kind::Begin, "pool", 3000),
      record(Kind::FlowFinish, "pool.task", 3001, 7),
      record(Kind::Begin, "dbb_function", 3100),
      record(Kind::End, "", 4000),
      record(Kind::End, "", 4100),
  };
  PerThread[2] = {
      record(Kind::Begin, "pool", 3500),
      record(Kind::FlowFinish, "pool.task", 3501, 8),
      record(Kind::End, "", 4600),
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);

  EXPECT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_EQ(Stream.Stats.OrphanFlows, 0u);
  // Worker spans inherited the enqueuing span's path — the ScopedRoot
  // aggregation, reproduced from raw records.
  EXPECT_GE(functionOf(Stream, "compact/dbb/pool"), 0);
  EXPECT_GE(functionOf(Stream, "compact/dbb/pool/dbb_function"), 0);
  EXPECT_EQ(functionOf(Stream, "pool"), -1) << "ungrafted worker root";
  EXPECT_EQ(Stream.Stats.Spans, 5u); // compact, dbb, 2x pool, dbb_function
}

TEST(AdaptSpanRecords, MainStreamSurvivesLosingTidZeroToPollerThread) {
  // Ring indices are creation order, not "main first": a background
  // metrics poller can push a counter before main's first span and
  // claim tid 0. The enqueuing stream must still root at top level and
  // receive its worker grafts — only streams that recorded a flow
  // finish are pool slices.
  std::vector<std::vector<obs::TraceRecord>> PerThread(3);
  PerThread[0] = {
      record(Kind::Counter, "mem.rss_bytes", 500),
      record(Kind::Counter, "mem.rss_bytes", 5000),
  };
  PerThread[1] = {
      record(Kind::Begin, "compact", 1000),
      record(Kind::FlowStart, "pool.task", 1100, 3),
      record(Kind::End, "", 9000),
      record(Kind::Begin, "archive_encode", 9100),
      record(Kind::End, "", 9900),
  };
  PerThread[2] = {
      record(Kind::Begin, "pool", 2000),
      record(Kind::FlowFinish, "pool.task", 2001, 3),
      record(Kind::End, "", 3000),
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);

  EXPECT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_EQ(Stream.Stats.OrphanFlows, 0u);
  EXPECT_GE(functionOf(Stream, "compact"), 0);
  EXPECT_GE(functionOf(Stream, "archive_encode"), 0);
  EXPECT_GE(functionOf(Stream, "compact/pool"), 0);
  for (const std::string &Path : Stream.FunctionPaths)
    EXPECT_EQ(Path.find("(detached)"), std::string::npos) << Path;
}

TEST(AdaptSpanRecords, SameThreadFlowDoesNotGraftRootIntoOwnSubtree) {
  // A flow started and finished on one thread (inline task execution)
  // must not reparent that thread's own roots — the origin has to be
  // on another thread.
  std::vector<std::vector<obs::TraceRecord>> PerThread(1);
  PerThread[0] = {
      record(Kind::Begin, "compact", 1000),
      record(Kind::FlowStart, "pool.task", 1100, 5),
      record(Kind::End, "", 2000),
      record(Kind::Begin, "pool", 2100),
      record(Kind::FlowFinish, "pool.task", 2101, 5),
      record(Kind::End, "", 3000),
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);

  EXPECT_TRUE(Stream.Trace.isWellFormed());
  // No cross-thread origin: the slice surfaces as detached rather than
  // cycling into compact's subtree.
  EXPECT_EQ(Stream.Stats.OrphanFlows, 1u);
  EXPECT_GE(functionOf(Stream, "compact"), 0);
  EXPECT_GE(functionOf(Stream, "(detached)/pool"), 0);
}

TEST(AdaptSpanRecords, UnmatchedFlowBecomesDetachedRoot) {
  std::vector<std::vector<obs::TraceRecord>> PerThread(2);
  PerThread[0] = {
      record(Kind::Begin, "compact", 1000),
      record(Kind::End, "", 2000),
  };
  // The FlowStart for id 9 was lost to wraparound: the worker root has
  // no origin and must surface as a detached root, not vanish.
  PerThread[1] = {
      record(Kind::Begin, "pool", 3000),
      record(Kind::FlowFinish, "pool.task", 3001, 9),
      record(Kind::End, "", 4000),
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);
  EXPECT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_EQ(Stream.Stats.OrphanFlows, 1u);
  EXPECT_GE(functionOf(Stream, "(detached)/pool"), 0);
  EXPECT_EQ(Stream.Stats.Spans, 2u);
}

TEST(AdaptSpanRecords, RegistryOverflowCountsButStaysWellFormed) {
  std::vector<std::vector<obs::TraceRecord>> PerThread(1);
  uint64_t Ts = 1000;
  for (int I = 0; I < 12; ++I) {
    std::string Name = "s";
    Name += std::to_string(I);
    PerThread[0].push_back(record(Kind::Begin, Name.c_str(), Ts++));
    PerThread[0].push_back(record(Kind::End, "", Ts++));
  }
  obs::SpanRegistry Registry(4);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);
  EXPECT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_GT(Stream.Stats.RegistryOverflows, 0u);
  EXPECT_EQ(Stream.Stats.Spans, 12u); // collapsed, not lost
  EXPECT_EQ(Stream.Trace.callCount(), 12u);
}

//===----------------------------------------------------------------------===//
// Wraparound property: any per-thread suffix of a valid record stream
// (what survives a ring overwrite) still lowers to a well-formed trace.
//===----------------------------------------------------------------------===//

TEST(AdaptSpanRecords, AnySuffixOfStreamStaysWellFormedProperty) {
  // A deterministic, deeply nested two-thread script with flows.
  std::vector<obs::TraceRecord> Main, Worker;
  uint64_t Ts = 1000;
  uint64_t Flow = 1;
  for (int Outer = 0; Outer < 4; ++Outer) {
    Main.push_back(record(Kind::Begin, "compact", Ts += 100));
    for (int Inner = 0; Inner < 3; ++Inner) {
      Main.push_back(record(Kind::Begin, "dbb", Ts += 100));
      Main.push_back(record(Kind::FlowStart, "pool.task", Ts += 10, Flow));
      Worker.push_back(record(Kind::Begin, "pool", Ts += 50));
      Worker.push_back(
          record(Kind::FlowFinish, "pool.task", Ts += 1, Flow));
      Worker.push_back(record(Kind::Begin, "work", Ts += 100));
      Worker.push_back(record(Kind::End, "", Ts += 2000));
      Worker.push_back(record(Kind::End, "", Ts += 100));
      ++Flow;
      Main.push_back(record(Kind::End, "", Ts += 100));
    }
    Main.push_back(record(Kind::End, "", Ts += 100));
  }

  for (size_t DropMain = 0; DropMain <= Main.size(); DropMain += 3)
    for (size_t DropWorker = 0; DropWorker <= Worker.size();
         DropWorker += 2) {
      std::vector<std::vector<obs::TraceRecord>> PerThread(2);
      PerThread[0].assign(Main.begin() + DropMain, Main.end());
      PerThread[1].assign(Worker.begin() + DropWorker, Worker.end());
      obs::SpanRegistry Registry(256);
      obs::SpanEventStream Stream =
          obs::adaptSpanRecords(PerThread, Registry, 1024);
      ASSERT_TRUE(Stream.Trace.isWellFormed())
          << "drop main " << DropMain << " worker " << DropWorker;
      // Whatever survived still compacts and verifies: the full paranoid
      // pipeline check on every truncation combination would be slow, so
      // structural well-formedness is the property here and the full
      // pipeline runs once below.
    }
}

TEST(AdaptSpanRecords, TruncatedStreamSurvivesFullPipeline) {
  std::vector<std::vector<obs::TraceRecord>> PerThread(1);
  // Start mid-stream: two orphan Es, then a normal forest.
  PerThread[0] = {
      record(Kind::End, "", 100),
      record(Kind::End, "", 200),
      record(Kind::Begin, "compact", 1000),
      record(Kind::Begin, "partition", 2000),
      record(Kind::End, "", 52'000),
      record(Kind::Begin, "dbb", 60'000),
      record(Kind::End, "", 160'000),
      record(Kind::End, "", 170'000),
  };
  obs::SpanRegistry Registry(64);
  obs::SpanEventStream Stream =
      obs::adaptSpanRecords(PerThread, Registry, 1024);
  ASSERT_TRUE(Stream.Trace.isWellFormed());
  EXPECT_EQ(Stream.Stats.TruncatedSpans, 2u);

  TwppWpp Compacted = compactWpp(Stream.Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Stream.Trace);
}

//===----------------------------------------------------------------------===//
// Sidecar round trip
//===----------------------------------------------------------------------===//

TEST(SelfProfileMeta, EncodeDecodeRoundTrips) {
  obs::SelfProfileMeta Meta;
  Meta.MinGapNs = 2048;
  Meta.FunctionPaths = {"(overflow)", "compact", "compact/dbb"};
  Meta.GapBlocks = {{2, 1536}, {7, 40'000}};
  Meta.Stats.Spans = 42;
  Meta.Stats.Events = 99;
  Meta.Stats.RecordsDropped = 3;
  Meta.Stats.TraceJsonBytes = 123'456;

  std::string Text = obs::encodeSelfProfileMeta(Meta);
  obs::SelfProfileMeta Back;
  ASSERT_TRUE(obs::decodeSelfProfileMeta(Text, Back));
  EXPECT_EQ(Back.MinGapNs, Meta.MinGapNs);
  EXPECT_EQ(Back.FunctionPaths, Meta.FunctionPaths);
  EXPECT_EQ(Back.GapBlocks, Meta.GapBlocks);
  EXPECT_EQ(Back.Stats.Spans, 42u);
  EXPECT_EQ(Back.Stats.Events, 99u);
  EXPECT_EQ(Back.Stats.RecordsDropped, 3u);
  EXPECT_EQ(Back.Stats.TraceJsonBytes, 123'456u);
}

TEST(SelfProfileMeta, DecodeRejectsGarbage) {
  obs::SelfProfileMeta Meta;
  EXPECT_FALSE(obs::decodeSelfProfileMeta("", Meta));
  EXPECT_FALSE(obs::decodeSelfProfileMeta("not-a-sidecar\n", Meta));
  EXPECT_FALSE(
      obs::decodeSelfProfileMeta("twpp-selfprof-meta-v1\nbogus tag\n", Meta));
}

//===----------------------------------------------------------------------===//
// End to end: profile real PhaseSpans (through the pool), write the
// archive, verify it with the production verifier, read it back.
//===----------------------------------------------------------------------===//

class SelfProfilerEndToEnd : public ::testing::Test {
protected:
  void SetUp() override {
    obs::setTracingEnabled(false);
    obs::traceRecorder().reset();
  }
  void TearDown() override {
    obs::finishSelfProfile(); // tear down any leftover global profiler
    obs::setTracingEnabled(false);
    obs::traceRecorder().reset();
    std::remove(Archive.c_str());
    std::remove((Archive + ".meta").c_str());
  }
  std::string Archive = testing::TempDir() + "selfprof_e2e.twppa";
};

TEST_F(SelfProfilerEndToEnd, ArchiveVerifiesCleanAndMatchesSidecar) {
  obs::SelfProfileConfig Config;
  Config.ArchivePath = Archive;
  Config.CompareTraceJson = true;
  ASSERT_TRUE(obs::enableSelfProfile(Config));
  ASSERT_TRUE(obs::tracingEnabled()) << "enable must turn the recorder on";
  ASSERT_FALSE(obs::enableSelfProfile(Config)) << "second enable must lose";

  {
    obs::PhaseSpan Outer("compact");
    {
      obs::PhaseSpan Stage("partition");
    }
    {
      obs::PhaseSpan Stage("dbb");
      ThreadPool Pool(2);
      for (int I = 0; I < 6; ++I)
        Pool.run([] { obs::PhaseSpan Work("dbb_function"); });
      Pool.wait();
    }
  }
  obs::selfProfiler()->drain();

  obs::SelfProfileStats Stats;
  std::string Error;
  ASSERT_TRUE(obs::finishSelfProfile(&Stats, &Error)) << Error;
  EXPECT_EQ(obs::selfProfiler(), nullptr);
  EXPECT_FALSE(obs::tracingEnabled()) << "finish restores the prior flag";

  EXPECT_GE(Stats.Spans, 9u); // compact, partition, dbb, 6x wrapped task
  EXPECT_GT(Stats.Events, Stats.Spans);
  EXPECT_GT(Stats.Functions, 0u);
  EXPECT_GT(Stats.ArchiveBytes, 0u);
  EXPECT_GT(Stats.TraceJsonBytes, 0u);

  // The archive is a standard .twppa: the production verifier must pass
  // it with zero diagnostics of any severity.
  verify::DiagnosticEngine Engine;
  EXPECT_TRUE(verify::verifyArchiveFile(Archive, Engine));
  EXPECT_EQ(Engine.diagnostics().size(), 0u);

  // Sidecar agrees with the archive's function table.
  obs::SelfProfileMeta Meta;
  ASSERT_TRUE(obs::readSelfProfileMetaFile(Archive + ".meta", Meta));
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Archive));
  TwppWpp Wpp;
  ASSERT_TRUE(Reader.readAll(Wpp));
  EXPECT_EQ(Meta.FunctionPaths.size(), Wpp.Functions.size());
  EXPECT_EQ(Meta.Stats.Spans, Stats.Spans);

  // The pool-worker spans were grafted under the enqueuing stage.
  bool SawGraft = false;
  for (const std::string &Path : Meta.FunctionPaths)
    SawGraft |= Path == "compact/dbb/pool/dbb_function";
  EXPECT_TRUE(SawGraft) << "flow grafting missing in end-to-end run";
}

TEST_F(SelfProfilerEndToEnd, DrainSurvivesRingWraparound) {
  obs::traceRecorder().setRingCapacity(64);
  obs::traceRecorder().reset();
  obs::SelfProfileConfig Config;
  Config.ArchivePath = Archive;
  ASSERT_TRUE(obs::enableSelfProfile(Config));

  // Push far more spans than the ring holds, draining rarely enough
  // that overwrites happen between drains.
  for (int Round = 0; Round < 8; ++Round) {
    for (int I = 0; I < 100; ++I) {
      obs::PhaseSpan Span("spin");
    }
    obs::selfProfiler()->drain();
  }

  obs::SelfProfileStats Stats;
  std::string Error;
  ASSERT_TRUE(obs::finishSelfProfile(&Stats, &Error)) << Error;
  EXPECT_GT(Stats.RecordsDropped, 0u) << "test must actually wrap";
  EXPECT_GT(Stats.Spans, 0u);

  verify::DiagnosticEngine Engine;
  EXPECT_TRUE(verify::verifyArchiveFile(Archive, Engine));
  EXPECT_EQ(Engine.errorCount(), 0u)
      << "wraparound must degrade into counters, not a corrupt archive";

  obs::traceRecorder().setRingCapacity(
      obs::TraceRecorder::DefaultRingCapacity);
  obs::traceRecorder().reset();
}

} // namespace
