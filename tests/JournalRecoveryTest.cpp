//===- tests/JournalRecoveryTest.cpp - crash-safe streaming ----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safety property of the journaled streaming compactor: kill
/// the compactor at any event index (or tear the journal at any byte)
/// and resumeFromJournal() must rebuild a compactor whose recovered
/// prefix compacts byte-identically to an uninterrupted run over the
/// same prefix. The tests stay meaningful under a CI-wide TWPP_FAULT
/// sweep: must-succeed setup IO runs under ScopedFaultSuspend, and the
/// operations under test are allowed to fail — but only gracefully,
/// with a named error and an intact fallback.
///
//===----------------------------------------------------------------------===//

#include "obs/Memory.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "verify/ArchiveChecks.h"
#include "wpp/Archive.h"
#include "wpp/Journal.h"
#include "wpp/Streaming.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace twpp;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

void feedPrefix(StreamingCompactor &Sink, const RawTrace &Trace,
                size_t Events) {
  for (size_t I = 0; I < Events; ++I) {
    const TraceEvent &Event = Trace.Events[I];
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      Sink.onEnter(Event.Id);
      break;
    case TraceEvent::Kind::Block:
      Sink.onBlock(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      Sink.onExit();
      break;
    }
  }
}

/// Archive bytes of an uninterrupted run over the first \p Events events,
/// with still-open calls closed on whatever blocks they had (the same
/// finalization recovery applies).
std::vector<uint8_t> referenceArchive(const RawTrace &Trace, size_t Events) {
  StreamingCompactor Sink(Trace.FunctionCount);
  feedPrefix(Sink, Trace, Events);
  while (!Sink.balanced())
    Sink.onExit();
  return encodeArchive(Sink.takeCompacted());
}

uint64_t journalLe64(const std::vector<uint8_t> &Bytes, size_t Pos) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
  return V;
}

/// End offsets of the well-formed records of a journal we wrote ourselves.
std::vector<size_t> recordEnds(const std::vector<uint8_t> &Journal) {
  std::vector<size_t> Ends;
  size_t Pos = 0;
  while (Pos + JournalHeaderSize <= Journal.size()) {
    uint64_t Length = journalLe64(Journal, Pos + 8);
    Pos += JournalHeaderSize + static_cast<size_t>(Length);
    EXPECT_LE(Pos, Journal.size()) << "journal self-test: truncated record";
    Ends.push_back(Pos);
  }
  return Ends;
}

TEST(JournalFraming, RoundTripAndScan) {
  std::vector<uint8_t> Journal;
  std::vector<uint8_t> A = {1, 2, 3};
  std::vector<uint8_t> B = {9, 8, 7, 6, 5};
  appendJournalRecord(Journal, A);
  appendJournalRecord(Journal, B);
  JournalScan Scan = scanJournal(Journal);
  EXPECT_EQ(Scan.ValidRecords, 2u);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  EXPECT_EQ(Scan.TornBytes, 0u);
  EXPECT_EQ(Scan.LastPayload, B);
}

TEST(JournalFraming, TornTailYieldsLastValidRecord) {
  std::vector<uint8_t> Journal;
  std::vector<uint8_t> A = {1, 2, 3};
  std::vector<uint8_t> B = {4, 5, 6, 7};
  appendJournalRecord(Journal, A);
  size_t AEnd = Journal.size();
  appendJournalRecord(Journal, B);
  // Tear record B anywhere: header-only, mid-payload, one byte short.
  for (size_t Cut : {AEnd + 1, AEnd + JournalHeaderSize,
                     AEnd + JournalHeaderSize + 2, Journal.size() - 1}) {
    std::vector<uint8_t> Torn(Journal.begin(),
                              Journal.begin() + static_cast<long>(Cut));
    JournalScan Scan = scanJournal(Torn);
    EXPECT_EQ(Scan.ValidRecords, 1u) << "cut at " << Cut;
    EXPECT_EQ(Scan.LastPayload, A) << "cut at " << Cut;
    EXPECT_EQ(Scan.TornBytes, Cut - AEnd) << "cut at " << Cut;
  }
}

TEST(JournalFraming, CorruptCrcSkipsRecord) {
  std::vector<uint8_t> Journal;
  std::vector<uint8_t> A = {1, 2, 3};
  std::vector<uint8_t> B = {4, 5, 6};
  appendJournalRecord(Journal, A);
  size_t AEnd = Journal.size();
  appendJournalRecord(Journal, B);
  std::vector<uint8_t> Damaged = Journal;
  Damaged[AEnd + JournalHeaderSize] ^= 0xFF; // flip a payload byte of B
  JournalScan Scan = scanJournal(Damaged);
  EXPECT_EQ(Scan.ValidRecords, 1u);
  EXPECT_GE(Scan.CorruptRecords, 1u);
  EXPECT_EQ(Scan.LastPayload, A);
}

TEST(JournalFraming, ResynchronizesPastGarbage) {
  std::vector<uint8_t> Journal(37, 0xAB); // leading garbage
  std::vector<uint8_t> A = {42, 43};
  appendJournalRecord(Journal, A);
  JournalScan Scan = scanJournal(Journal);
  EXPECT_EQ(Scan.ValidRecords, 1u);
  EXPECT_EQ(Scan.LastPayload, A);
}

TEST(JournalFraming, ResyncAliasingMagicInsideCorruptedPayload) {
  // A checkpoint payload that happens to contain a complete, CRC-valid
  // journal record (a checkpoint-of-a-checkpoint is exactly this shape).
  // While the outer record is intact the inner bytes are payload, full
  // stop. When the outer record's header is smashed, resync walks into
  // the payload and the aliased inner record *does* scan as valid — the
  // recovery contract survives because resume keys on the LAST valid
  // record, and the real successor record still scans.
  std::vector<uint8_t> Inner;
  std::vector<uint8_t> InnerPayload = {77, 78, 79};
  appendJournalRecord(Inner, InnerPayload);

  std::vector<uint8_t> Journal;
  appendJournalRecord(Journal, Inner); // outer record wrapping Inner
  size_t OuterEnd = Journal.size();
  std::vector<uint8_t> B = {1, 2, 3, 4};
  appendJournalRecord(Journal, B);

  // Intact: the aliased magic inside the outer payload is invisible.
  JournalScan Clean = scanJournal(Journal);
  EXPECT_EQ(Clean.ValidRecords, 2u);
  EXPECT_EQ(Clean.LastPayload, B);

  // Smash the outer record's version field: its framing no longer
  // matches, resync slides into the payload, finds the inner record
  // (valid CRC — aliasing at its worst), then still reaches B.
  std::vector<uint8_t> Damaged = Journal;
  Damaged[4] ^= 0xFF;
  JournalScan Scan = scanJournal(Damaged);
  EXPECT_EQ(Scan.ValidRecords, 2u); // the aliased inner record + B
  EXPECT_EQ(Scan.LastPayload, B);   // recovery still lands on the truth
  EXPECT_EQ(Scan.TornBytes, 0u);

  // Same damage with no successor record: recovery now sees the aliased
  // inner payload — stale (it was checkpoint data, and it IS a valid
  // record shape), but never garbage, and restoreState() vets it anyway.
  std::vector<uint8_t> Headless(Damaged.begin(),
                                Damaged.begin() +
                                    static_cast<long>(OuterEnd));
  JournalScan Stale = scanJournal(Headless);
  EXPECT_EQ(Stale.ValidRecords, 1u);
  EXPECT_EQ(Stale.LastPayload, InnerPayload);
}

TEST(JournalFraming, RecordStraddlingReadBufferEdgeScansWhole) {
  // The scanner gets whatever prefix of the file a crashed writer left.
  // Sweep every cut point of a three-record journal — every way a record
  // can straddle the edge of what made it to disk — and require: records
  // wholly before the cut scan valid, the straddling record is torn (not
  // mis-decoded), and the scanner never crashes or spins.
  std::vector<uint8_t> Journal;
  std::vector<uint8_t> A = {10, 11, 12, 13, 14};
  std::vector<uint8_t> B = {20, 21};
  std::vector<uint8_t> C(300, 0x5A); // big enough to dwarf its header
  appendJournalRecord(Journal, A);
  size_t AEnd = Journal.size();
  appendJournalRecord(Journal, B);
  size_t BEnd = Journal.size();
  appendJournalRecord(Journal, C);

  for (size_t Cut = 0; Cut <= Journal.size(); ++Cut) {
    std::vector<uint8_t> Prefix(Journal.begin(),
                                Journal.begin() + static_cast<long>(Cut));
    JournalScan Scan = scanJournal(Prefix);
    size_t WholeRecords = Cut >= Journal.size() ? 3u
                          : Cut >= BEnd         ? 2u
                          : Cut >= AEnd         ? 1u
                                                : 0u;
    ASSERT_EQ(Scan.ValidRecords, WholeRecords) << "cut at " << Cut;
    if (WholeRecords == 3)
      EXPECT_EQ(Scan.LastPayload, C) << "cut at " << Cut;
    else if (WholeRecords == 2)
      EXPECT_EQ(Scan.LastPayload, B) << "cut at " << Cut;
    else if (WholeRecords == 1)
      EXPECT_EQ(Scan.LastPayload, A) << "cut at " << Cut;
    else
      EXPECT_TRUE(Scan.LastPayload.empty()) << "cut at " << Cut;
  }
}

TEST(JournalRecovery, SnapshotRestoreRoundTrip) {
  for (uint64_t Seed : {11u, 22u, 33u}) {
    RawTrace Trace = fixtures::randomTrace(Seed, 5, 400);
    size_t Half = Trace.Events.size() / 2;
    StreamingCompactor Source(Trace.FunctionCount);
    feedPrefix(Source, Trace, Half);
    std::vector<uint8_t> Snapshot = Source.snapshotState();

    StreamingCompactor Restored(Trace.FunctionCount);
    ASSERT_TRUE(Restored.restoreState(Snapshot)) << "seed " << Seed;
    EXPECT_EQ(Restored.eventsConsumed(), Source.eventsConsumed());
    EXPECT_EQ(Restored.openFrames(), Source.openFrames());
    // Snapshots are deterministic: equal state, equal bytes.
    EXPECT_EQ(Restored.snapshotState(), Snapshot) << "seed " << Seed;

    // Both compactors must accept the rest of the trace and agree.
    feedPrefix(Source, Trace, 0); // no-op, keeps symmetry explicit
    for (size_t I = Half; I < Trace.Events.size(); ++I) {
      const TraceEvent &Event = Trace.Events[I];
      switch (Event.EventKind) {
      case TraceEvent::Kind::Enter:
        Source.onEnter(Event.Id);
        Restored.onEnter(Event.Id);
        break;
      case TraceEvent::Kind::Block:
        Source.onBlock(Event.Id);
        Restored.onBlock(Event.Id);
        break;
      case TraceEvent::Kind::Exit:
        Source.onExit();
        Restored.onExit();
        break;
      }
    }
    EXPECT_EQ(encodeArchive(Source.takeCompacted()),
              encodeArchive(Restored.takeCompacted()))
        << "seed " << Seed;
  }
}

TEST(JournalRecovery, RestoreRejectsMalformedPayloads) {
  RawTrace Trace = fixtures::randomTrace(77, 4, 200);
  StreamingCompactor Source(Trace.FunctionCount);
  feedPrefix(Source, Trace, Trace.Events.size() / 2);
  std::vector<uint8_t> Good = Source.snapshotState();

  StreamingCompactor Victim(Trace.FunctionCount);
  // Empty, truncated, and function-count-mismatched payloads must all be
  // rejected without changing the compactor.
  EXPECT_FALSE(Victim.restoreState({}));
  for (size_t Cut = 1; Cut + 1 < Good.size(); Cut += 3) {
    std::vector<uint8_t> Truncated(Good.begin(),
                                   Good.begin() + static_cast<long>(Cut));
    EXPECT_FALSE(Victim.restoreState(Truncated)) << "cut " << Cut;
  }
  StreamingCompactor WrongCount(Trace.FunctionCount + 1);
  EXPECT_FALSE(WrongCount.restoreState(Good));
  EXPECT_EQ(Victim.eventsConsumed(), 0u);
  EXPECT_TRUE(Victim.balanced());
  // A rejected restore leaves the compactor fully usable.
  EXPECT_TRUE(Victim.restoreState(Good));
  EXPECT_EQ(Victim.eventsConsumed(), Source.eventsConsumed());
}

TEST(JournalRecovery, CrashAtEveryEventIndex) {
  RawTrace Trace = fixtures::randomTrace(5, 5, 240);
  const size_t Events = Trace.Events.size();

  // One uninterrupted journaled run, checkpointing after every event.
  // The run is setup (the subject is the kill points below), so it is
  // shielded from any environment fault sweep.
  std::string JournalPath = tempPath("every_event.twppj");
  {
    fault::ScopedFaultSuspend SetupShield;
    StreamingConfig Config;
    Config.JournalPath = JournalPath;
    Config.CheckpointInterval = 1;
    StreamingCompactor Sink(Trace.FunctionCount, Config);
    feedPrefix(Sink, Trace, Events);
    EXPECT_EQ(Sink.checkpointsWritten(), Events);
    while (!Sink.balanced())
      Sink.onExit();
    (void)Sink.takeCompacted();
  }

  std::vector<uint8_t> Journal;
  {
    fault::ScopedFaultSuspend Shield;
    ASSERT_TRUE(readFileBytes(JournalPath, Journal).ok());
  }
  std::vector<size_t> Ends = recordEnds(Journal);

  // Kill after every checkpointed event: the journal prefix ending at
  // record k is exactly what a crash right after event k+1's checkpoint
  // leaves behind. The recovered prefix must compact byte-identically to
  // an uninterrupted run over that prefix.
  for (size_t K = 0; K < Ends.size(); ++K) {
    std::string KillPath = tempPath("kill_" + std::to_string(K) + ".twppj");
    {
      fault::ScopedFaultSuspend Shield;
      std::vector<uint8_t> Prefix(Journal.begin(),
                                  Journal.begin() +
                                      static_cast<long>(Ends[K]));
      ASSERT_TRUE(writeFileBytes(KillPath, Prefix).ok());
    }
    std::string Error;
    std::unique_ptr<StreamingCompactor> Resumed =
        StreamingCompactor::resumeFromJournal(KillPath, StreamingConfig(),
                                              &Error);
    if (!Resumed) {
      // Only an injected fault may defeat resume — and then it must say
      // why, not crash.
      EXPECT_NE(fault::activeFaultSpec(), "") << Error;
      EXPECT_FALSE(Error.empty());
      std::remove(KillPath.c_str());
      continue;
    }
    size_t Recovered = static_cast<size_t>(Resumed->eventsConsumed());
    ASSERT_LE(Recovered, Events);
    while (!Resumed->balanced())
      Resumed->onExit();
    EXPECT_EQ(encodeArchive(Resumed->takeCompacted()),
              referenceArchive(Trace, Recovered))
        << "kill point " << K;
    std::remove(KillPath.c_str());
  }
  std::remove(JournalPath.c_str());
}

TEST(JournalRecovery, TornJournalAtAnyByteRecoversPriorCheckpoint) {
  RawTrace Trace = fixtures::randomTrace(9, 4, 160);
  std::string JournalPath = tempPath("torn_sweep.twppj");
  {
    fault::ScopedFaultSuspend SetupShield; // the cuts below are the subject
    StreamingConfig Config;
    Config.JournalPath = JournalPath;
    Config.CheckpointInterval = 8;
    StreamingCompactor Sink(Trace.FunctionCount, Config);
    feedPrefix(Sink, Trace, Trace.Events.size());
    while (!Sink.balanced())
      Sink.onExit();
    (void)Sink.takeCompacted();
  }
  std::vector<uint8_t> Journal;
  {
    fault::ScopedFaultSuspend Shield;
    ASSERT_TRUE(readFileBytes(JournalPath, Journal).ok());
  }
  ASSERT_FALSE(Journal.empty());

  // Cut the journal at every 7th byte: resume must recover the last
  // checkpoint wholly contained in the prefix, or fail with a named
  // error when no complete record survives.
  for (size_t Cut = 0; Cut <= Journal.size(); Cut += 7) {
    std::string TornPath = tempPath("torn_" + std::to_string(Cut) +
                                    ".twppj");
    {
      fault::ScopedFaultSuspend Shield;
      std::vector<uint8_t> Prefix(Journal.begin(),
                                  Journal.begin() + static_cast<long>(Cut));
      ASSERT_TRUE(writeFileBytes(TornPath, Prefix).ok());
    }
    std::string Error;
    std::unique_ptr<StreamingCompactor> Resumed =
        StreamingCompactor::resumeFromJournal(TornPath, StreamingConfig(),
                                              &Error);
    if (!Resumed) {
      EXPECT_FALSE(Error.empty()) << "cut at " << Cut;
    } else {
      size_t Recovered = static_cast<size_t>(Resumed->eventsConsumed());
      while (!Resumed->balanced())
        Resumed->onExit();
      EXPECT_EQ(encodeArchive(Resumed->takeCompacted()),
                referenceArchive(Trace, Recovered))
          << "cut at " << Cut;
    }
    std::remove(TornPath.c_str());
  }
  std::remove(JournalPath.c_str());
}

TEST(JournalRecovery, ResumedJournalKeepsAppending) {
  RawTrace Trace = fixtures::randomTrace(31, 4, 200);
  size_t Half = Trace.Events.size() / 2;
  std::string JournalPath = tempPath("resume_append.twppj");
  {
    fault::ScopedFaultSuspend SetupShield; // the "crash" is the subject
    StreamingConfig Config;
    Config.JournalPath = JournalPath;
    Config.CheckpointInterval = 4;
    StreamingCompactor Sink(Trace.FunctionCount, Config);
    feedPrefix(Sink, Trace, Half);
  } // "crash": destructor closes the journal mid-run

  StreamingConfig ResumeConfig;
  ResumeConfig.CheckpointInterval = 4;
  std::string Error;
  std::unique_ptr<StreamingCompactor> Resumed =
      StreamingCompactor::resumeFromJournal(JournalPath, ResumeConfig,
                                            &Error);
  if (!Resumed) {
    EXPECT_NE(fault::activeFaultSpec(), "") << Error;
    return;
  }
  uint64_t RecordsBefore = 0;
  {
    fault::ScopedFaultSuspend Shield;
    std::vector<uint8_t> Journal;
    ASSERT_TRUE(readFileBytes(JournalPath, Journal).ok());
    RecordsBefore = scanJournal(Journal).ValidRecords;
  }
  size_t Recovered = static_cast<size_t>(Resumed->eventsConsumed());
  for (size_t I = Recovered; I < Trace.Events.size(); ++I) {
    const TraceEvent &Event = Trace.Events[I];
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      Resumed->onEnter(Event.Id);
      break;
    case TraceEvent::Kind::Block:
      Resumed->onBlock(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      Resumed->onExit();
      break;
    }
  }
  if (Resumed->lastJournalError().ok()) {
    fault::ScopedFaultSuspend Shield;
    std::vector<uint8_t> Journal;
    ASSERT_TRUE(readFileBytes(JournalPath, Journal).ok());
    // Resume keeps the old records and appends new checkpoints.
    EXPECT_GT(scanJournal(Journal).ValidRecords, RecordsBefore);
  }
  while (!Resumed->balanced())
    Resumed->onExit();
  EXPECT_EQ(encodeArchive(Resumed->takeCompacted()),
            referenceArchive(Trace, Trace.Events.size()));
  std::remove(JournalPath.c_str());
}

TEST(JournalRecovery, MemoryBudgetDegradesGracefully) {
  // A recursion-heavy trace under a tiny budget: open-frame detail must
  // be dropped (counted), never aborted on — and the result must still
  // pass the full archive verifier, anchors included. Built by hand so
  // deep frames are guaranteed to hold block detail when the budget
  // trips (a random trace can close frames before the budget matters).
  RawTrace Trace;
  Trace.FunctionCount = 3;
  for (uint32_t Depth = 0; Depth < 12; ++Depth) {
    Trace.Events.push_back(
        TraceEvent::enter(static_cast<FunctionId>(Depth % 3)));
    for (uint32_t B = 0; B < 8; ++B)
      Trace.Events.push_back(
          TraceEvent::block(static_cast<BlockId>(1 + (Depth + B) % 12)));
  }
  for (uint32_t Depth = 0; Depth < 12; ++Depth)
    Trace.Events.push_back(TraceEvent::exit());
  StreamingConfig Config;
  Config.MemoryBudgetBytes = 256;
  StreamingCompactor Sink(Trace.FunctionCount, Config);
  // An unbudgeted twin over the same events pins down what degradation
  // bought: the budget is enforced against trackedStateBytes, so the
  // budgeted compactor must hold strictly fewer tracked bytes and the
  // difference must be exactly the dropped block detail (degradation
  // removes block detail only, never frames or unique traces).
  StreamingCompactor Twin(Trace.FunctionCount);
  feedPrefix(Sink, Trace, Trace.Events.size());
  feedPrefix(Twin, Trace, Trace.Events.size());
  EXPECT_GT(Sink.degradedFrames(), 0u);
  EXPECT_EQ(Twin.degradedFrames(), 0u);
  EXPECT_LT(Sink.trackedStateBytes(), Twin.trackedStateBytes());
  EXPECT_EQ((Twin.trackedStateBytes() - Sink.trackedStateBytes()) %
                sizeof(BlockId),
            0u);
  // The incrementally maintained figure must be exactly what a
  // from-scratch recompute lands on: restoreState rebuilds the ledger
  // from the snapshot, so a restored twin's tracked bytes must match.
  StreamingCompactor Restored(Trace.FunctionCount, Config);
  ASSERT_TRUE(Restored.restoreState(Sink.snapshotState()));
  EXPECT_EQ(Restored.trackedStateBytes(), Sink.trackedStateBytes());
  while (!Sink.balanced())
    Sink.onExit();
  std::vector<uint8_t> Bytes = encodeArchive(Sink.takeCompacted());
  verify::DiagnosticEngine Engine;
  verify::runArchiveBytesChecks(Bytes, Engine);
  EXPECT_TRUE(Engine.clean())
      << verify::renderDiagnosticsText(Engine);
}

TEST(JournalRecovery, TrackedStateBytesMirrorsGlobalTag) {
  // With tracking enabled, the compactor mirrors its instance ledger into
  // the global stream.state tag, so stream.degraded accounting and the
  // mem.live_bytes/stream.state counter track describe the same bytes
  // trackedStateBytes() reports. The flag is process-global: save and
  // restore it around the test.
  bool WasEnabled = obs::memTrackingEnabled();
  obs::setMemTrackingEnabled(true);
  obs::MemAccount &Tag =
      obs::memTracker().account(obs::memtags::StreamState);
  int64_t Before = Tag.liveBytes();
  {
    RawTrace Trace = fixtures::randomTrace(77, 4, 150);
    StreamingCompactor Sink(Trace.FunctionCount);
    feedPrefix(Sink, Trace, Trace.Events.size());
    EXPECT_EQ(Tag.liveBytes() - Before,
              static_cast<int64_t>(Sink.trackedStateBytes()));
    while (!Sink.balanced())
      Sink.onExit();
    (void)Sink.takeCompacted();
  }
  // Destruction releases every mirrored byte.
  EXPECT_EQ(Tag.liveBytes(), Before);
  obs::setMemTrackingEnabled(WasEnabled);
}

TEST(JournalRecovery, UnwritableJournalDegradesNotAborts) {
  RawTrace Trace = fixtures::randomTrace(55, 4, 120);
  StreamingConfig Config;
  Config.JournalPath =
      tempPath("no_such_dir") + "/nested/impossible.twppj";
  Config.CheckpointInterval = 1;
  StreamingCompactor Sink(Trace.FunctionCount, Config);
  EXPECT_FALSE(Sink.lastJournalError().ok());
  // Journaling is disabled, compaction is not.
  feedPrefix(Sink, Trace, Trace.Events.size());
  EXPECT_EQ(Sink.checkpointsWritten(), 0u);
  while (!Sink.balanced())
    Sink.onExit();
  EXPECT_EQ(encodeArchive(Sink.takeCompacted()),
            referenceArchive(Trace, Trace.Events.size()));
}

TEST(JournalRecovery, ResumeFromMissingOrEmptyJournalFails) {
  std::string Error;
  EXPECT_EQ(StreamingCompactor::resumeFromJournal(
                tempPath("does_not_exist.twppj"), StreamingConfig(), &Error),
            nullptr);
  EXPECT_FALSE(Error.empty());

  std::string EmptyPath = tempPath("empty.twppj");
  {
    fault::ScopedFaultSuspend Shield;
    ASSERT_TRUE(writeFileBytes(EmptyPath, {}).ok());
  }
  Error.clear();
  EXPECT_EQ(StreamingCompactor::resumeFromJournal(
                EmptyPath, StreamingConfig(), &Error),
            nullptr);
  EXPECT_FALSE(Error.empty());
  std::remove(EmptyPath.c_str());
}

} // namespace
