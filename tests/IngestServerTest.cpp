//===- tests/IngestServerTest.cpp - Ingestion frontend contract ----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// The degrade-never-abort contract, end to end: a clean multi-producer
// run produces archives byte-identical to an in-process compaction of
// the same traces; every injected failure (wire damage, duplicates,
// reordering, stalls, vanished producers, idle connections, tiny queues,
// memory pressure, a crash between checkpoints) ends in a returned
// report whose counters account for exactly what was lost — never a
// crash, a hang, or a silent drop.
//
//===----------------------------------------------------------------------===//

#include "ingest/Ingest.h"
#include "ingest/Wire.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "wpp/Archive.h"
#include "wpp/Twpp.h"

#include "gtest/gtest.h"

#include <chrono>
#include <thread>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace twpp;
using namespace twpp::ingest;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// A sizable, deterministic trace (~3000 events): fixtures::randomTrace's
/// random walk can end after a handful of events, which would leave the
/// chaos specs' every=N triggers unreached. Frame counts matter here.
RawTrace sizableTrace(uint64_t Seed) {
  RawTrace Trace;
  Trace.FunctionCount = 8;
  for (uint64_t Call = 0; Call < 600; ++Call) {
    Trace.Events.push_back(
        TraceEvent::enter(static_cast<uint32_t>((Seed + Call) % 8)));
    for (uint64_t B = 0; B < 1 + (Seed + Call) % 4; ++B)
      Trace.Events.push_back(
          TraceEvent::block(static_cast<uint32_t>(1 + (Call + B) % 12)));
    Trace.Events.push_back(TraceEvent::exit());
  }
  return Trace;
}

std::vector<RawTrace> sampleTraces(size_t Count) {
  std::vector<RawTrace> Traces;
  for (size_t I = 0; I < Count; ++I)
    Traces.push_back(sizableTrace(1000 + I * 17));
  return Traces;
}

/// The golden bytes the contract compares against: the batch pipeline
/// over the same trace, encoded the same way the server encodes.
std::vector<uint8_t> goldenArchiveBytes(const RawTrace &Trace) {
  return encodeArchive(compactWpp(Trace));
}

std::vector<uint8_t> readAll(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  EXPECT_TRUE(readFileBytes(Path, Bytes).ok()) << Path;
  return Bytes;
}

/// Every producer that completed its handshake must account for every
/// declared event: applied + structurally dropped + lost == declared.
void expectAccountingIdentity(const IngestReport &Report) {
  for (const ProducerReport &P : Report.Producers) {
    if (P.SawBye) {
      EXPECT_EQ(P.EventsApplied + P.EventsDropped + P.eventsLost(),
                P.EventsDeclared)
          << "producer " << P.ProducerId;
    }
  }
}

TEST(IngestServerTest, LoopbackMatchesDirectCompactionByteForByte) {
  std::vector<RawTrace> Traces = sampleTraces(3);
  IngestConfig Config;
  Config.OutPrefix = tempPath("loopback");
  IngestReport Report = runLoopbackIngest(Config, Traces);

  ASSERT_TRUE(Report.clean()) << Report.FatalError;
  ASSERT_EQ(Report.Producers.size(), Traces.size());
  for (size_t I = 0; I < Traces.size(); ++I) {
    const ProducerReport &P = Report.Producers[I];
    EXPECT_EQ(P.ProducerId, static_cast<uint32_t>(I));
    EXPECT_EQ(P.EventsApplied, Traces[I].Events.size());
    EXPECT_EQ(readAll(P.ArchivePath), goldenArchiveBytes(Traces[I]))
        << "producer " << I;
  }
  EXPECT_EQ(Report.CorruptFrames, 0u);
  EXPECT_EQ(Report.ResyncBytes, 0u);
}

TEST(IngestServerTest, TinyQueueUnderBlockPolicyStaysLossless) {
  // Capacity 1 forces constant reader/dispatcher handoff; Block means
  // the producers slow down instead of losing anything.
  std::vector<RawTrace> Traces = sampleTraces(2);
  IngestConfig Config;
  Config.QueueCapacity = 1;
  Config.Policy = BackpressurePolicy::Block;
  ProducerOptions Small;
  Small.BatchEvents = 64; // many frames -> many queue handoffs
  IngestReport Report = runLoopbackIngest(Config, Traces, Small);

  ASSERT_TRUE(Report.clean());
  for (size_t I = 0; I < Traces.size(); ++I)
    EXPECT_EQ(Report.Producers[I].EventsApplied, Traces[I].Events.size());
}

TEST(IngestServerTest, ShedPolicyNeverHangsAndAccountsEveryDrop) {
  // Capacity 1 + a journal fsync per frame makes the dispatcher far
  // slower than the readers: overflow is near-certain. Whether or not
  // sheds actually happen on this machine, the run must terminate and
  // the books must balance.
  std::vector<RawTrace> Traces = sampleTraces(2);
  IngestConfig Config;
  Config.QueueCapacity = 1;
  Config.Policy = BackpressurePolicy::Shed;
  Config.JournalPrefix = tempPath("shed");
  Config.CheckpointIntervalFrames = 1;
  ProducerOptions Small;
  Small.BatchEvents = 64;
  IngestReport Report = runLoopbackIngest(Config, Traces, Small);

  EXPECT_TRUE(Report.FatalError.empty());
  expectAccountingIdentity(Report);
  for (const ProducerReport &P : Report.Producers) {
    if (P.ShedFrames > 0) {
      EXPECT_FALSE(P.lossless());
      EXPECT_GT(P.ShedBytes, 0u);
    }
    EXPECT_FALSE(Report.clean() && P.ShedFrames > 0);
  }
}

struct ChaosCase {
  const char *Name;
  const char *Spec;
  bool Lossy; ///< Whether the fault can cost events (vs only latency).
};

TEST(IngestServerTest, ChaosSweepNeverCrashesHangsOrSilentlyDrops) {
  const ChaosCase Cases[] = {
      {"corrupt", "wire:corrupt:every=7", true},
      {"truncate", "wire:truncate:every=9", true},
      {"duplicate", "wire:duplicate:every=5", false},
      {"reorder", "wire:reorder:every=4", false},
      {"stall", "wire:stall:every=11", false},
  };
  std::vector<RawTrace> Traces = sampleTraces(2);
  ProducerOptions Fast;
  Fast.BatchEvents = 128; // enough frames for every spec to fire
  Fast.StallMs = 1;

  for (const ChaosCase &Case : Cases) {
    fault::ScopedFaultSpec Armed(Case.Spec);
    IngestConfig Config;
    Config.OutPrefix = tempPath(std::string("chaos_") + Case.Name);
    IngestReport Report = runLoopbackIngest(Config, Traces, Fast);

    EXPECT_TRUE(Report.FatalError.empty()) << Case.Name;
    expectAccountingIdentity(Report);

    if (!Case.Lossy) {
      // Duplicates, reordering and stalls are absorbed: the run is
      // clean and the archives match the golden bytes exactly.
      EXPECT_TRUE(Report.clean()) << Case.Name;
      for (size_t I = 0; I < Traces.size(); ++I)
        EXPECT_EQ(readAll(Report.Producers[I].ArchivePath),
                  goldenArchiveBytes(Traces[I]))
            << Case.Name << " producer " << I;
    } else {
      // Damage was injected every Nth frame, so some was certainly hit;
      // the run must say so — corrupt frames counted, losses accounted,
      // clean() false. Nothing vanishes silently.
      EXPECT_GT(Report.CorruptFrames, 0u) << Case.Name;
      EXPECT_FALSE(Report.clean()) << Case.Name;
      uint64_t Accounted = 0;
      for (const ProducerReport &P : Report.Producers)
        Accounted += P.eventsLost() + P.EventsDropped;
      EXPECT_GT(Accounted, 0u) << Case.Name;
    }
  }

  // Sanity: the sweep must not leak an armed spec into later tests.
  EXPECT_EQ(fault::activeFaultSpec(), "");
}

TEST(IngestServerTest, DuplicateAndReorderCountersFire) {
  std::vector<RawTrace> Traces = sampleTraces(1);
  ProducerOptions Fast;
  Fast.BatchEvents = 128;
  {
    fault::ScopedFaultSpec Armed("wire:duplicate:every=5");
    IngestConfig Config;
    IngestReport Report = runLoopbackIngest(Config, Traces, Fast);
    ASSERT_TRUE(Report.clean());
    EXPECT_GT(Report.Producers[0].FramesDuplicate, 0u);
  }
  {
    fault::ScopedFaultSpec Armed("wire:reorder:every=4");
    IngestConfig Config;
    IngestReport Report = runLoopbackIngest(Config, Traces, Fast);
    ASSERT_TRUE(Report.clean());
    EXPECT_GT(Report.Producers[0].FramesReordered, 0u);
  }
}

#if !defined(_WIN32)

/// Sends raw bytes over a socketpair to one IngestServer connection and
/// returns the report. \p Frames is written in one piece, then the
/// producer half closes.
IngestReport ingestRawBytes(const IngestConfig &Config,
                            const std::vector<uint8_t> &Bytes) {
  IngestServer Server(Config);
  int Sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  Server.addConnection(Sv[0]);
  std::thread Producer([&] {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N = ::send(Sv[1], Bytes.data() + Off, Bytes.size() - Off,
                         MSG_NOSIGNAL);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    ::close(Sv[1]);
  });
  IngestReport Report = Server.run();
  Producer.join();
  return Report;
}

TEST(IngestServerTest, DisconnectWithoutByeSynthesizesExitsAndReports) {
  // Hello + one unbalanced Events batch (Enter never exited), then the
  // producer vanishes. The server must balance the stream itself, write
  // a decodable archive, and mark the producer unclean.
  std::vector<TraceEvent> Events = {TraceEvent::enter(2),
                                    TraceEvent::block(1),
                                    TraceEvent::enter(4),
                                    TraceEvent::block(2)};
  std::vector<uint8_t> Bytes;
  appendWireFrame(Bytes, 0, 0, encodeHelloPayload(8));
  appendWireFrame(Bytes, 0, 1,
                  encodeEventsPayload(Events.data(),
                                      Events.data() + Events.size()));
  // no Bye

  IngestConfig Config;
  Config.OutPrefix = tempPath("disconnect");
  IngestReport Report = ingestRawBytes(Config, Bytes);

  ASSERT_EQ(Report.Producers.size(), 1u);
  const ProducerReport &P = Report.Producers[0];
  EXPECT_TRUE(P.SawHello);
  EXPECT_FALSE(P.SawBye);
  EXPECT_TRUE(P.Disconnected);
  EXPECT_EQ(P.SynthesizedExits, 2u); // both open calls closed for us
  EXPECT_FALSE(Report.clean());

  // The archive still decodes: degradation, not destruction.
  TwppWpp Wpp;
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(P.ArchivePath));
  EXPECT_TRUE(Reader.readAll(Wpp));
}

TEST(IngestServerTest, IdleConnectionTimesOutInsteadOfHangingForever) {
  IngestConfig Config;
  Config.IdleTimeoutMs = 50;
  IngestServer Server(Config);
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  Server.addConnection(Sv[0]);

  std::thread Producer([&] {
    std::vector<uint8_t> Bytes;
    appendWireFrame(Bytes, 0, 0, encodeHelloPayload(4));
    ::send(Sv[1], Bytes.data(), Bytes.size(), MSG_NOSIGNAL);
    // ...and then nothing, with the fd deliberately held open far past
    // the idle cutoff.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ::close(Sv[1]);
  });
  auto Start = std::chrono::steady_clock::now();
  IngestReport Report = Server.run();
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  Producer.join();

  EXPECT_GE(Report.IdleTimeouts, 1u);
  EXPECT_FALSE(Report.clean());
  ASSERT_EQ(Report.Producers.size(), 1u);
  EXPECT_TRUE(Report.Producers[0].Disconnected);
  // The server gave up at the timeout, not at the producer's leisure.
  EXPECT_LT(ElapsedMs, 350);
}

TEST(IngestServerTest, CrashBetweenCheckpointsResumesByteIdentical) {
  std::vector<RawTrace> Traces = sampleTraces(2);

  // The golden run: no journal, no crash.
  std::vector<std::vector<uint8_t>> Golden;
  for (const RawTrace &Trace : Traces)
    Golden.push_back(goldenArchiveBytes(Trace));

  IngestConfig Config;
  Config.OutPrefix = tempPath("crashrun");
  Config.JournalPrefix = tempPath("crashrun");
  Config.CheckpointIntervalFrames = 4;
  ProducerOptions Small;
  Small.BatchEvents = 64;

  // Run 1: "crash" after the 3rd checkpoint. The in-process hook just
  // returns, which stops ingestion without finalizing — the same state
  // a SIGKILL leaves on disk (journals flushed, no archives).
  {
    IngestServer Server(Config);
    Server.setCrashAfterCheckpoints(3, [] {});
    std::vector<std::thread> Producers;
    std::vector<int> Fds;
    for (size_t I = 0; I < Traces.size(); ++I) {
      int Sv[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
      Server.addConnection(Sv[0]);
      Fds.push_back(Sv[1]);
    }
    for (size_t I = 0; I < Traces.size(); ++I) {
      ProducerOptions PO = Small;
      PO.ProducerId = static_cast<uint32_t>(I);
      int Fd = Fds[I];
      const RawTrace *Trace = &Traces[I];
      Producers.emplace_back([Fd, Trace, PO] {
        sendTraceOverFd(Fd, *Trace, PO); // EPIPE after the crash is fine
        ::close(Fd);
      });
    }
    IngestReport Report = Server.run();
    for (std::thread &T : Producers)
      T.join();
    EXPECT_TRUE(Report.Aborted);
    EXPECT_FALSE(Report.clean());
  }

  // Run 2: resume from the journals; producers re-send from scratch.
  {
    IngestConfig ResumeConfig = Config;
    ResumeConfig.Resume = true;
    IngestReport Report =
        runLoopbackIngest(ResumeConfig, Traces, Small);
    ASSERT_TRUE(Report.clean()) << Report.FatalError;
    uint64_t Replayed = 0;
    for (size_t I = 0; I < Traces.size(); ++I) {
      const ProducerReport &P = Report.Producers[I];
      Replayed += P.FramesReplayed;
      EXPECT_EQ(readAll(P.ArchivePath), Golden[I]) << "producer " << I;
    }
    // At least one producer was past a checkpoint when the crash hit,
    // so the re-sent prefix must have been recognized and skipped.
    EXPECT_GT(Replayed, 0u);
  }
}

#endif // !defined(_WIN32)

TEST(IngestServerTest, MemoryBudgetDegradesDetailInsteadOfAborting) {
  // Deep nesting with block detail in every open frame: a tiny budget
  // must shed detail (counted), not abort or reject events.
  RawTrace Trace;
  Trace.FunctionCount = 64;
  const int Depth = 60;
  for (int I = 0; I < Depth; ++I) {
    Trace.Events.push_back(TraceEvent::enter(I % 64));
    for (int B = 0; B < 40; ++B)
      Trace.Events.push_back(TraceEvent::block(B));
  }
  for (int I = 0; I < Depth; ++I)
    Trace.Events.push_back(TraceEvent::exit());

  IngestConfig Config;
  Config.OutPrefix = tempPath("budget");
  Config.MemoryBudgetBytes = 2048;
  IngestReport Report = runLoopbackIngest(Config, {Trace});

  ASSERT_EQ(Report.Producers.size(), 1u);
  const ProducerReport &P = Report.Producers[0];
  EXPECT_EQ(P.EventsApplied, Trace.Events.size());
  EXPECT_GT(P.DegradedFrames, 0u);
  EXPECT_FALSE(P.lossless());
  EXPECT_FALSE(Report.clean());
  EXPECT_TRUE(P.ArchiveError.ok());
}

TEST(IngestServerTest, ReportsAreSortedAndTotalled) {
  std::vector<RawTrace> Traces = sampleTraces(4);
  IngestConfig Config;
  IngestReport Report = runLoopbackIngest(Config, Traces);
  ASSERT_EQ(Report.Producers.size(), 4u);
  uint64_t Events = 0;
  for (size_t I = 0; I < Report.Producers.size(); ++I) {
    EXPECT_EQ(Report.Producers[I].ProducerId, static_cast<uint32_t>(I));
    Events += Report.Producers[I].EventsApplied;
  }
  EXPECT_EQ(Report.EventsApplied, Events);
  EXPECT_GT(Report.Frames, 0u);
  EXPECT_GT(Report.ElapsedUs, 0.0);
}

} // namespace
