//===- tests/InterproceduralTest.cpp - call-aware GEN-KILL -----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Interprocedural.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

/// Builds a trace where main (function 0) runs blocks and calls f (1)
/// and g (2); f gens the fact via its block 1, g kills it via its
/// block 1. Effects in main: none.
struct Fixture {
  RawTrace Trace;
  TwppWpp Wpp;
  CallEffectOracle Oracle;

  static BlockEffect effect(FunctionId F, BlockId B) {
    if (F == 1 && B == 1)
      return BlockEffect::Gen;
    if (F == 2 && B == 1)
      return BlockEffect::Kill;
    return BlockEffect::Transparent;
  }

  explicit Fixture(RawTrace T)
      : Trace(std::move(T)), Wpp(compactWpp(Trace)),
        Oracle(Wpp, &Fixture::effect) {}
};

RawTrace simpleTrace() {
  // main: 1 [call f] 2 [call g] 3 [call f] 4 ; query at block 4, 3, 2.
  RawTrace Trace;
  Trace.FunctionCount = 3;
  auto &E = Trace.Events;
  auto Call = [&E](FunctionId F) {
    E.push_back(TraceEvent::enter(F));
    E.push_back(TraceEvent::block(1));
    E.push_back(TraceEvent::exit());
  };
  E.push_back(TraceEvent::enter(0));
  E.push_back(TraceEvent::block(1));
  Call(1); // f gens
  E.push_back(TraceEvent::block(2));
  Call(2); // g kills
  E.push_back(TraceEvent::block(3));
  Call(1); // f gens again
  E.push_back(TraceEvent::block(4));
  E.push_back(TraceEvent::exit());
  return Trace;
}

TEST(CallEffectOracleTest, LeafAndNestedEffects) {
  Fixture Fix(simpleTrace());
  const DynamicCallGraph &Dcg = Fix.Wpp.Dcg;
  const DcgNode &Main = Dcg.Nodes[Dcg.Roots[0]];
  ASSERT_EQ(Main.Children.size(), 3u);
  EXPECT_EQ(Fix.Oracle.callEffect(Main.Children[0]), BlockEffect::Gen);
  EXPECT_EQ(Fix.Oracle.callEffect(Main.Children[1]), BlockEffect::Kill);
  EXPECT_EQ(Fix.Oracle.callEffect(Main.Children[2]), BlockEffect::Gen);
  // main's own net effect: last action is f's gen.
  EXPECT_EQ(Fix.Oracle.callEffect(Dcg.Roots[0]), BlockEffect::Gen);
}

TEST(CallEffectOracleTest, DeepNestingFoldsBottomUp) {
  // main calls h; h calls g (kill) then f (gen): h's net effect is Gen.
  RawTrace Trace;
  Trace.FunctionCount = 4; // 0 main, 1 f(gen), 2 g(kill), 3 h
  auto &E = Trace.Events;
  E.push_back(TraceEvent::enter(0));
  E.push_back(TraceEvent::block(1));
  E.push_back(TraceEvent::enter(3));
  E.push_back(TraceEvent::block(1));
  E.push_back(TraceEvent::enter(2));
  E.push_back(TraceEvent::block(1));
  E.push_back(TraceEvent::exit());
  E.push_back(TraceEvent::block(2));
  E.push_back(TraceEvent::enter(1));
  E.push_back(TraceEvent::block(1));
  E.push_back(TraceEvent::exit());
  E.push_back(TraceEvent::block(3));
  E.push_back(TraceEvent::exit());
  E.push_back(TraceEvent::block(2));
  E.push_back(TraceEvent::exit());
  Fixture Fix(Trace);
  const DynamicCallGraph &Dcg = Fix.Wpp.Dcg;
  const DcgNode &Main = Dcg.Nodes[Dcg.Roots[0]];
  ASSERT_EQ(Main.Children.size(), 1u);
  EXPECT_EQ(Fix.Oracle.callEffect(Main.Children[0]), BlockEffect::Gen);
}

TEST(InterproceduralQueryTest, CallsResolvePerInstance) {
  Fixture Fix(simpleTrace());
  uint32_t Root = Fix.Wpp.Dcg.Roots[0];
  CallInstanceView View = buildCallInstanceView(Fix.Wpp, Root);
  ASSERT_EQ(View.Cfg.Length, 4u);
  // Calls anchored at block events 1, 2 and 3.
  EXPECT_TRUE(View.CallsAt[0].empty());
  EXPECT_EQ(View.CallsAt[1].size(), 1u);
  EXPECT_EQ(View.CallsAt[2].size(), 1u);
  EXPECT_EQ(View.CallsAt[3].size(), 1u);

  // Before block 4 (t=4): block 3's call to f genned -> true.
  size_t N4 = View.Cfg.nodeIndexOf(4);
  QueryResult R4 = propagateBackwardInterprocedural(
      View, Fix.Oracle, 0, N4, View.Cfg.Nodes[N4].Times);
  EXPECT_EQ(R4.True.toVector(), (std::vector<Timestamp>{4}));
  EXPECT_TRUE(R4.False.empty());

  // Before block 3 (t=3): block 2's call to g killed -> false.
  size_t N3 = View.Cfg.nodeIndexOf(3);
  QueryResult R3 = propagateBackwardInterprocedural(
      View, Fix.Oracle, 0, N3, View.Cfg.Nodes[N3].Times);
  EXPECT_EQ(R3.False.toVector(), (std::vector<Timestamp>{3}));
  EXPECT_TRUE(R3.True.empty());

  // Before block 2 (t=2): block 1's call to f genned -> true.
  size_t N2 = View.Cfg.nodeIndexOf(2);
  QueryResult R2 = propagateBackwardInterprocedural(
      View, Fix.Oracle, 0, N2, View.Cfg.Nodes[N2].Times);
  EXPECT_EQ(R2.True.toVector(), (std::vector<Timestamp>{2}));

  // Before block 1 (t=1): nothing ran yet -> at entry.
  size_t N1 = View.Cfg.nodeIndexOf(1);
  QueryResult R1 = propagateBackwardInterprocedural(
      View, Fix.Oracle, 0, N1, View.Cfg.Nodes[N1].Times);
  EXPECT_EQ(R1.AtEntry.toVector(), (std::vector<Timestamp>{1}));
}

TEST(InterproceduralQueryTest, EntryAnchoredCallActsAtBoundary) {
  // main calls f before running any block, then runs blocks 1.2.
  RawTrace Trace;
  Trace.FunctionCount = 2;
  auto &E = Trace.Events;
  E.push_back(TraceEvent::enter(0));
  E.push_back(TraceEvent::enter(1));
  E.push_back(TraceEvent::block(1)); // f's gen block
  E.push_back(TraceEvent::exit());
  E.push_back(TraceEvent::block(1));
  E.push_back(TraceEvent::block(2));
  E.push_back(TraceEvent::exit());
  Fixture Fix(Trace);
  uint32_t Root = Fix.Wpp.Dcg.Roots[0];
  CallInstanceView View = buildCallInstanceView(Fix.Wpp, Root);
  ASSERT_EQ(View.CallsAt[0].size(), 1u);

  // Before block 1 (t=1): the entry-anchored call already genned.
  size_t N1 = View.Cfg.nodeIndexOf(1);
  QueryResult R = propagateBackwardInterprocedural(
      View, Fix.Oracle, 0, N1, View.Cfg.Nodes[N1].Times);
  EXPECT_EQ(R.True.toVector(), (std::vector<Timestamp>{1}));
  EXPECT_TRUE(R.AtEntry.empty());
}

/// Oracle sweep: interprocedural resolution matches a direct event-walk
/// over the raw trace.
class InterproceduralOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterproceduralOracle, MatchesEventWalk) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 10; ++Iter) {
    // Random main trace over blocks 1..6 with random calls to f/g.
    RawTrace Trace;
    Trace.FunctionCount = 3;
    auto &E = Trace.Events;
    E.push_back(TraceEvent::enter(0));
    size_t Blocks = 3 + R.nextBelow(60);
    std::vector<int> EffectAfter; // oracle state after each block event
    int State = 0;                // 0 unknown, 1 gen, -1 kill
    for (size_t I = 0; I < Blocks; ++I) {
      E.push_back(
          TraceEvent::block(1 + static_cast<BlockId>(R.nextBelow(6))));
      if (R.nextBool(0.4)) {
        FunctionId Callee = R.nextBool(0.5) ? 1 : 2;
        E.push_back(TraceEvent::enter(Callee));
        E.push_back(TraceEvent::block(1));
        E.push_back(TraceEvent::exit());
        State = Callee == 1 ? 1 : -1;
      }
      EffectAfter.push_back(State);
    }
    E.push_back(TraceEvent::exit());

    Fixture Fix(Trace);
    uint32_t Root = Fix.Wpp.Dcg.Roots[0];
    CallInstanceView View = buildCallInstanceView(Fix.Wpp, Root);

    for (size_t NodeIdx = 0; NodeIdx < View.Cfg.Nodes.size(); ++NodeIdx) {
      QueryResult Result = propagateBackwardInterprocedural(
          View, Fix.Oracle, 0, NodeIdx, View.Cfg.Nodes[NodeIdx].Times);
      for (Timestamp T : View.Cfg.Nodes[NodeIdx].Times.toVector()) {
        int Expected = T == 1 ? 0 : EffectAfter[T - 2];
        EXPECT_EQ(Result.True.contains(T), Expected == 1) << "t=" << T;
        EXPECT_EQ(Result.False.contains(T), Expected == -1) << "t=" << T;
        EXPECT_EQ(Result.AtEntry.contains(T), Expected == 0) << "t=" << T;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterproceduralOracle,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

} // namespace
